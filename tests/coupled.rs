//! End-to-end coupled-mode tests: monitored beliefs drive generation,
//! and attribution separates deliberate violations from fetch-layer
//! artifacts (the acceptance scenarios of the belief-coupling work).

use botscope::core::attribution::{attribute_table, AttributionCounts};
use botscope::monitor::{
    run_coupled_with_threads, CoupledConfig, CoupledOutput, RefreshModel, ScenarioKind,
};
use botscope::simnet::belief::BelievedPolicy;
use botscope::simnet::scenario::phase_study_table;
use botscope::simnet::server::PolicyCorpus;
use botscope::simnet::SimConfig;

fn small_sim(scale: f64, sites: usize) -> SimConfig {
    SimConfig { scale, sites, spoofing: false, anon_traffic: false, ..SimConfig::default() }
}

fn attribution(out: &CoupledOutput) -> std::collections::BTreeMap<String, AttributionCounts> {
    attribute_table(&out.sim.table, &out.beliefs, &out.served, &PolicyCorpus::new())
}

#[test]
fn stale_cache_violations_appear_under_fleet_refresh_only() {
    // Fleet refresh on a healthy estate: slow-cadence bots crawl the
    // experiment site on stale Base beliefs through v1/v2/v3 — served
    // violations that attribution must flag as stale-cache artifacts,
    // not deliberate defiance.
    let fleet_cfg = CoupledConfig {
        sim: small_sim(0.1, 4),
        scenario: ScenarioKind::Stable,
        refresh: RefreshModel::Fleet,
    };
    let fleet_run = run_coupled_with_threads(&fleet_cfg, 2);
    let fleet_counts = attribution(&fleet_run);
    let stale: u64 = fleet_counts.values().map(|c| c.stale_cache).sum();
    assert!(stale > 0, "stale-cache artifacts must appear under fleet refresh");
    // The excused accesses are precisely NOT in the deliberate bucket:
    // per-bot, deliberate + stale + artifact partitions the violations.
    for (bot, c) in &fleet_counts {
        assert_eq!(
            c.violations_served(),
            c.accesses - c.allowed_served,
            "{bot}: attribution must partition violations: {c:?}"
        );
    }

    // Instant refresh on the same estate: belief ≡ served, so staleness
    // and fetch artifacts are impossible — every violation is deliberate.
    let instant_run =
        run_coupled_with_threads(&CoupledConfig { refresh: RefreshModel::Instant, ..fleet_cfg }, 2);
    let instant_counts = attribution(&instant_run);
    let stale: u64 = instant_counts.values().map(|c| c.stale_cache).sum();
    let artifact: u64 = instant_counts.values().map(|c| c.fetch_artifact).sum();
    assert_eq!(stale, 0, "no staleness with instant refresh");
    assert_eq!(artifact, 0, "no fetch artifacts on a healthy estate");
}

#[test]
fn obedient_bots_halt_through_served_disallow_windows() {
    // Outage weather + instant refresh: during a 5xx window every bot
    // believes disallow-all. Obedient bots halt; the schedule-driven
    // baseline (which cannot see outages) keeps crawling — the coupled
    // layer's signature traffic shift.
    let cfg = CoupledConfig {
        sim: small_sim(0.1, 8),
        scenario: ScenarioKind::Outages,
        refresh: RefreshModel::Instant,
    };
    let coupled = run_coupled_with_threads(&cfg, 2);
    let baseline = phase_study_table(&cfg.sim);

    // Every served disallow-all span, per site.
    let mut windows: Vec<(String, u64, u64)> = Vec::new();
    for (site, timeline) in coupled.served.iter().enumerate() {
        let segments = timeline.segments();
        for (i, &(at, policy)) in segments.iter().enumerate() {
            if policy == BelievedPolicy::DisallowAll {
                let end = segments.get(i + 1).map_or(u64::MAX, |&(next, _)| next);
                windows.push((format!("site-{site:02}.example.edu"), at, end));
            }
        }
    }
    assert!(!windows.is_empty(), "outage scenario must script 5xx windows");

    let pages_in_windows = |records: &[botscope::weblog::AccessRecord], ua: Option<&str>| {
        records
            .iter()
            .filter(|r| {
                !r.is_robots_fetch()
                    && ua.is_none_or(|needle| r.useragent.contains(needle))
                    && windows.iter().any(|(site, lo, hi)| {
                        r.sitename == *site && r.timestamp.unix() >= *lo && r.timestamp.unix() < *hi
                    })
            })
            .count()
    };
    let coupled_records = coupled.sim.table.to_records();
    let baseline_records = baseline.sim.table.to_records();

    let baseline_pages = pages_in_windows(&baseline_records, None);
    let coupled_pages = pages_in_windows(&coupled_records, None);
    assert!(baseline_pages > 0, "the windows must contain baseline traffic");
    assert!(
        coupled_pages < baseline_pages,
        "believed disallow-all must suppress traffic: {coupled_pages} vs {baseline_pages}"
    );
    // The fully obedient bot halts completely.
    assert_eq!(
        pages_in_windows(&coupled_records, Some("ChatGPT-User")),
        0,
        "a disallow-compliance-1.0 bot fetches nothing through a believed 5xx window"
    );
}

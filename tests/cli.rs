//! End-to-end tests of the `botscope` command-line binary.

use std::process::{Command, Output};

fn botscope(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_botscope")).args(args).output().expect("binary runs")
}

fn write_temp(name: &str, content: &str) -> std::path::PathBuf {
    let path = std::env::temp_dir().join(format!("botscope-test-{}-{name}", std::process::id()));
    std::fs::write(&path, content).expect("write temp file");
    path
}

#[test]
fn help_prints_usage() {
    for args in [vec!["help"], vec!["--help"], vec![]] {
        let out = botscope(&args);
        assert!(out.status.success());
        let text = String::from_utf8_lossy(&out.stdout);
        assert!(text.contains("USAGE"), "{text}");
        assert!(text.contains("botscope check"));
    }
}

#[test]
fn unknown_subcommand_fails() {
    let out = botscope(&["frobnicate"]);
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown subcommand"));
}

#[test]
fn check_reports_decisions() {
    let robots = write_temp(
        "check.txt",
        "User-agent: *\nAllow: /page-data/*\nDisallow: /\nCrawl-delay: 30\n",
    );
    let out =
        botscope(&["check", robots.to_str().unwrap(), "GPTBot", "/page-data/x.json", "/news/item"]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("ALLOW /page-data/x.json"), "{text}");
    assert!(text.contains("DENY  /news/item"), "{text}");
    assert!(text.contains("crawl delay for GPTBot: 30s"), "{text}");
    let _ = std::fs::remove_file(robots);
}

#[test]
fn admit_answers_batch_queries_from_compiled_policies() {
    let robots = write_temp(
        "admit-robots.txt",
        "User-agent: GPTBot\nDisallow: /private/\n\nUser-agent: *\nAllow: /\n",
    );
    let queries = write_temp(
        "admit-queries.csv",
        "agent,site,path\n\
         GPTBot,a.example.edu,/private/report\n\
         GPTBot,a.example.edu,/public/page\n\
         ClaudeBot,b.example.edu,/private/report\n",
    );
    let out = botscope(&["admit", "--robots", robots.to_str().unwrap(), queries.to_str().unwrap()]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("DENY  GPTBot a.example.edu /private/report"), "{text}");
    assert!(text.contains("ALLOW GPTBot a.example.edu /public/page"), "{text}");
    assert!(text.contains("ALLOW ClaudeBot b.example.edu /private/report"), "{text}");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("3 queries over 2 site(s)"), "{err}");
    assert!(err.contains("2 policy compile(s)"), "{err}");
    assert!(err.contains("checks/s"), "{err}");
    let _ = std::fs::remove_file(robots);
    let _ = std::fs::remove_file(queries);
}

#[test]
fn admit_corpus_defaults_are_deterministic_and_quiet_suppresses_verdicts() {
    let queries = write_temp(
        "admit-corpus.csv",
        "GPTBot,site-00.example.edu,/news/item-001\n\
         Googlebot,site-01.example.edu,/page-data/item-1/page-data.json\n",
    );
    let a = botscope(&["admit", queries.to_str().unwrap()]);
    let b = botscope(&["admit", queries.to_str().unwrap()]);
    assert!(a.status.success() && b.status.success());
    assert_eq!(a.stdout, b.stdout, "corpus assignment must be stable across runs");
    assert_eq!(String::from_utf8_lossy(&a.stdout).lines().count(), 2);

    let quiet = botscope(&["admit", "--quiet", queries.to_str().unwrap()]);
    assert!(quiet.status.success());
    assert!(quiet.stdout.is_empty(), "--quiet must suppress per-query verdicts");
    assert!(String::from_utf8_lossy(&quiet.stderr).contains("2 queries"), "summary still prints");
    let _ = std::fs::remove_file(queries);
}

#[test]
fn admit_rejects_malformed_queries_cleanly() {
    let queries = write_temp("admit-bad.csv", "GPTBot-only-one-field\n");
    let out = botscope(&["admit", queries.to_str().unwrap()]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("want `agent,site,path`"));
    let _ = std::fs::remove_file(queries);

    let out = botscope(&["admit"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage: botscope admit"));
}

#[test]
fn check_missing_file_fails_cleanly() {
    let out = botscope(&["check", "/no/such/file", "bot", "/x"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot read"));
}

#[test]
fn audit_flags_problems_and_clean_files() {
    let bad = write_temp("audit-bad.txt", "User-agent: *\nDisallow: /x\nDisallow: /x\n");
    let out = botscope(&["audit", bad.to_str().unwrap()]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("DuplicateRule"), "{text}");
    assert!(text.contains("DeadRule"), "{text}");
    let _ = std::fs::remove_file(bad);

    // Wildcard-free single-rule policy: no lints, no divergence hazards.
    let good = write_temp("audit-good.txt", "User-agent: *\nDisallow: /secure/\n");
    let out = botscope(&["audit", good.to_str().unwrap()]);
    assert!(String::from_utf8_lossy(&out.stdout).contains("clean"));
    let _ = std::fs::remove_file(good);
}

#[test]
fn audit_deny_gates_exit_status() {
    let bad = write_temp("audit-deny.txt", "User-agent: *\nDisallow: /x\nDisallow: /x\n");
    let out = botscope(&["audit", "--deny", "warning", bad.to_str().unwrap()]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("at or above warning"));

    // Raising the bar to `error` lets warnings through.
    let out = botscope(&["audit", "--deny", "error", bad.to_str().unwrap()]);
    assert!(out.status.success());
    let _ = std::fs::remove_file(bad);
}

#[test]
fn audit_json_is_machine_readable() {
    let file = write_temp("audit-json.txt", "User-agent: *\nDisallow: ne/ver\n");
    let out = botscope(&["audit", "--json", file.to_str().unwrap()]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.starts_with("{\"files\":["), "{text}");
    assert!(text.contains("\"code\":\"UnreachableRule\""), "{text}");
    assert!(text.contains("\"severity\":\"error\""), "{text}");
    assert!(text.trim_end().ends_with("\"denied\":0}"), "{text}");
    let _ = std::fs::remove_file(file);
}

#[test]
fn audit_json_snapshot_matches_committed() {
    // Same invocation CI runs: relative paths from the repo root, sorted.
    let root = env!("CARGO_MANIFEST_DIR");
    let mut files: Vec<String> = std::fs::read_dir(format!("{root}/tests/fixtures/audit"))
        .expect("fixture dir")
        .map(|e| e.expect("entry").file_name().to_string_lossy().into_owned())
        .filter(|n| n.ends_with(".robots.txt"))
        .map(|n| format!("tests/fixtures/audit/{n}"))
        .collect();
    files.sort();
    let mut args: Vec<&str> = vec!["audit", "--json"];
    args.extend(files.iter().map(String::as_str));
    let out = Command::new(env!("CARGO_BIN_EXE_botscope"))
        .current_dir(root)
        .args(&args)
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let expected = std::fs::read_to_string(format!("{root}/tests/fixtures/audit/snapshot.json"))
        .expect("committed snapshot");
    assert_eq!(
        String::from_utf8_lossy(&out.stdout),
        expected,
        "analyzer output drifted from tests/fixtures/audit/snapshot.json; \
         regenerate it if the change is intentional"
    );
}

#[test]
fn audit_estate_reports_digest_classes_and_recompile_debt() {
    let out = botscope(&["audit", "--estate", "--sites", "8", "--days", "16"]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("version transitions: 12 behavioral"), "{text}");
    assert!(text.contains("admission replay"), "{text}");
    assert!(text.contains("behavioral transitions only"), "{text}");
}

#[test]
fn diff_reports_tightening() {
    let old = write_temp("diff-old.txt", "User-agent: *\nAllow: /\n");
    let new = write_temp("diff-new.txt", "User-agent: *\nDisallow: /\n");
    let out = botscope(&["diff", old.to_str().unwrap(), new.to_str().unwrap()]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("tightened"), "{text}");
    assert!(text.contains("AccessChanged"), "{text}");
    let _ = std::fs::remove_file(old);
    let _ = std::fs::remove_file(new);
}

#[test]
fn simulate_seed_is_deterministic() {
    let pid = std::process::id();
    let run = |name: &str, seed: &str| {
        let path = std::env::temp_dir().join(format!("botscope-test-{pid}-{name}.csv"));
        let out = botscope(&["simulate", "1", "0.02", path.to_str().unwrap(), seed]);
        assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
        let bytes = std::fs::read(&path).expect("read simulated csv");
        let _ = std::fs::remove_file(&path);
        bytes
    };
    let first = run("seed-a", "42");
    let second = run("seed-b", "42");
    assert_eq!(first, second, "same seed must yield a byte-identical log");
    let other = run("seed-c", "43");
    assert_ne!(first, other, "different seeds should yield different logs");
}

#[test]
fn help_documents_thread_knob() {
    let out = botscope(&["help"]);
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("BOTSCOPE_THREADS"), "{text}");
    assert!(text.contains("available parallelism"), "{text}");
}

#[test]
fn simulate_output_is_thread_count_invariant() {
    let run_with_threads = |threads: &str| {
        let out = Command::new(env!("CARGO_BIN_EXE_botscope"))
            .args(["simulate", "1", "0.02", "-", "42"])
            .env("BOTSCOPE_THREADS", threads)
            .output()
            .expect("binary runs");
        assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
        out.stdout
    };
    let serial = run_with_threads("1");
    assert_eq!(serial, run_with_threads("2"), "2 workers must match serial output");
    assert_eq!(serial, run_with_threads("8"), "8 workers must match serial output");
}

#[test]
fn simulate_rejects_bad_seed() {
    let out = botscope(&["simulate", "1", "0.02", "/dev/null", "not-a-seed"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("bad seed"));
}

#[test]
fn simulate_rejects_degenerate_config_cleanly() {
    let out = botscope(&["simulate", "0"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("days must be at least 1"));

    let out = botscope(&["simulate", "1", "-0.5"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("scale must be a positive number"));
}

#[test]
fn simulate_dash_writes_seeded_log_to_stdout() {
    let out = botscope(&["simulate", "1", "0.02", "-", "42"]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let again = botscope(&["simulate", "1", "0.02", "-", "42"]);
    assert_eq!(out.stdout, again.stdout, "seeded stdout runs must be identical");
    assert!(!out.stdout.is_empty());
}

#[test]
fn simulate_then_analyze_roundtrip() {
    let csv = std::env::temp_dir().join(format!("botscope-test-{}-sim.csv", std::process::id()));
    let out = botscope(&["simulate", "2", "0.02", csv.to_str().unwrap()]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(csv.exists());

    let out = botscope(&["analyze", csv.to_str().unwrap()]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("known bots"), "{text}");
    assert!(text.contains("YisouSpider") || text.contains("Applebot"), "{text}");
    let _ = std::fs::remove_file(csv);
}

#[test]
fn monitor_reports_and_streams_csv() {
    // Summary stats go to stderr; stdout carries only report artifacts.
    let out = botscope(&["monitor", "--sites", "8", "--days", "5", "--bots", "3"]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stats = String::from_utf8_lossy(&out.stderr);
    assert!(stats.contains("monitored 8 sites x 3 bots over 5 days"), "{stats}");
    assert!(stats.contains("fetches"), "{stats}");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("re-check coverage from monitored logs"), "{text}");

    // `--out -` streams the fetch log as CSV on stdout, report on stderr.
    let out = botscope(&["monitor", "--sites", "8", "--days", "5", "--bots", "3", "--out", "-"]);
    assert!(out.status.success());
    let csv = String::from_utf8_lossy(&out.stdout);
    assert!(csv.lines().count() > 10, "{csv}");
    assert!(csv.lines().skip(1).all(|l| l.is_empty() || l.contains("/robots.txt")), "{csv}");
    let report = String::from_utf8_lossy(&out.stderr);
    assert!(report.contains("monitored 8 sites"), "{report}");
    assert!(report.contains("re-check coverage from monitored logs"), "{report}");
}

#[test]
fn monitor_is_deterministic_and_thread_count_invariant() {
    let run = |threads: &str| {
        let out = Command::new(env!("CARGO_BIN_EXE_botscope"))
            .args(["monitor", "--sites", "24", "--days", "6", "--bots", "4", "--out", "-"])
            .env("BOTSCOPE_THREADS", threads)
            .output()
            .expect("binary runs");
        assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
        out.stdout
    };
    let serial = run("1");
    assert!(!serial.is_empty());
    assert_eq!(serial, run("1"), "same seed must reproduce");
    assert_eq!(serial, run("2"), "2 workers must match serial output");
    assert_eq!(serial, run("8"), "8 workers must match serial output");
}

#[test]
fn monitor_writes_change_digests() {
    // All sites swap on a horizon long enough to cross the first swap.
    let out = botscope(&[
        "monitor",
        "--sites",
        "4",
        "--days",
        "30",
        "--bots",
        "2",
        "--swap-every",
        "1",
        "--scenario",
        "stable",
        "--changes",
        "-",
    ]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let csv = String::from_utf8_lossy(&out.stdout);
    assert!(csv.starts_with("site,at,from,to,"), "{csv}");
    assert!(csv.lines().count() > 1, "expected at least one change: {csv}");
    assert!(csv.contains("v1 (crawl delay)"), "{csv}");
}

#[test]
fn monitor_stream_matches_materialized_output() {
    let args = ["monitor", "--sites", "12", "--days", "5", "--bots", "3", "--out", "-"];
    let materialized = botscope(&args);
    assert!(materialized.status.success());
    let streamed = botscope(&[
        "monitor", "--sites", "12", "--days", "5", "--bots", "3", "--out", "-", "--stream",
    ]);
    assert!(streamed.status.success(), "{}", String::from_utf8_lossy(&streamed.stderr));
    assert_eq!(materialized.stdout, streamed.stdout, "streamed CSV must be byte-identical");
    let report = String::from_utf8_lossy(&streamed.stderr);
    assert!(report.contains("rows streamed"), "{report}");
}

#[test]
fn coupled_simulate_reports_attribution_and_is_thread_invariant() {
    let run = |threads: &str| {
        let out = Command::new(env!("CARGO_BIN_EXE_botscope"))
            .args(["simulate", "--coupled", "--scale", "0.02", "--sites", "4", "--out", "-"])
            .env("BOTSCOPE_THREADS", threads)
            .output()
            .expect("binary runs");
        assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
        out
    };
    let serial = run("1");
    assert!(!serial.stdout.is_empty());
    let report = String::from_utf8_lossy(&serial.stderr);
    assert!(report.contains("coupled run:"), "{report}");
    assert!(report.contains("belief transitions"), "{report}");
    assert!(report.contains("Stale cache"), "{report}");
    assert_eq!(serial.stdout, run("2").stdout, "2 workers must match serial output");
    assert_eq!(serial.stdout, run("8").stdout, "8 workers must match serial output");

    // Unknown coupled flags fail cleanly.
    let out = botscope(&["simulate", "--coupled", "--refresh", "psychic"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("bad --refresh"));
    let out = botscope(&["simulate", "--coupled", "--basis", "wishful"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("bad --basis"));
}

#[test]
fn coupled_believed_basis_degenerates_under_instant_refresh() {
    // Instant refresh + always-healthy weather: beliefs track the
    // served timelines exactly, so nothing is excused and the believed
    // basis must reproduce the served-basis tables verbatim.
    let run = |basis: &str| {
        let out = botscope(&[
            "simulate",
            "--coupled",
            "--scale",
            "0.02",
            "--sites",
            "4",
            "--refresh",
            "instant",
            "--scenario",
            "stable",
            "--basis",
            basis,
        ]);
        assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
        String::from_utf8_lossy(&out.stdout).into_owned()
    };
    let believed = run("believed");
    let served = run("served");
    assert!(
        believed.contains("compliance tables (believed basis, 0 excused rows dropped):"),
        "{believed}"
    );
    assert!(served.contains("compliance tables (served basis):"), "{served}");
    // Identical everywhere except the one banner line.
    let tables_after_banner = |report: &str| -> String {
        let (_, tail) = report.split_once("compliance tables").expect("banner present");
        tail.split_once('\n').expect("banner line ends").1.to_string()
    };
    assert_eq!(
        tables_after_banner(&believed),
        tables_after_banner(&served),
        "believed basis must degenerate to served tables under instant refresh"
    );
}

#[test]
fn simulate_stream_matches_materialized_at_any_worker_count() {
    let run = |threads: &str, extra: &[&str]| {
        let mut args = vec!["simulate", "1", "0.02", "-", "42"];
        args.extend_from_slice(extra);
        let out = Command::new(env!("CARGO_BIN_EXE_botscope"))
            .args(&args)
            .env("BOTSCOPE_THREADS", threads)
            .output()
            .expect("binary runs");
        assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
        out.stdout
    };
    let materialized = run("1", &[]);
    for threads in ["1", "2", "8"] {
        assert_eq!(
            run(threads, &["--stream"]),
            materialized,
            "{threads} workers: streamed CSV must be byte-identical"
        );
    }
}

#[test]
fn simulate_binary_format_analyzes_identically_and_is_smaller() {
    let pid = std::process::id();
    let csv = std::env::temp_dir().join(format!("botscope-test-{pid}-fmt.csv"));
    let bin = std::env::temp_dir().join(format!("botscope-test-{pid}-fmt.bin"));
    let out = botscope(&["simulate", "2", "0.02", csv.to_str().unwrap(), "42"]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let out = botscope(&["simulate", "2", "0.02", bin.to_str().unwrap(), "42", "--format", "bin"]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));

    let csv_len = std::fs::metadata(&csv).expect("csv written").len();
    let bin_len = std::fs::metadata(&bin).expect("bin written").len();
    assert!(bin_len < csv_len, "binary ({bin_len} B) should beat CSV ({csv_len} B)");

    let from_csv = botscope(&["analyze", csv.to_str().unwrap()]);
    let from_bin = botscope(&["analyze", bin.to_str().unwrap()]);
    assert!(from_csv.status.success() && from_bin.status.success());
    assert_eq!(from_csv.stdout, from_bin.stdout, "formats must analyze identically");
    let _ = std::fs::remove_file(csv);
    let _ = std::fs::remove_file(bin);
}

#[test]
fn phase_report_from_streamed_binary_matches_in_memory_engine() {
    use std::process::Stdio;

    let pid = std::process::id();
    let bin = std::env::temp_dir().join(format!("botscope-test-{pid}-phase.bin"));
    let csv = std::env::temp_dir().join(format!("botscope-test-{pid}-phase.csv"));
    let out = botscope(&[
        "simulate",
        "7",
        "0.02",
        bin.to_str().unwrap(),
        "42",
        "--phase-study",
        "--stream",
        "--format",
        "bin",
    ]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let out = botscope(&["simulate", "7", "0.02", csv.to_str().unwrap(), "42", "--phase-study"]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));

    // Streaming analyzer over the binary file, fed through stdin ("-").
    let streamed = Command::new(env!("CARGO_BIN_EXE_botscope"))
        .args(["analyze", "--phase-report", "-"])
        .stdin(Stdio::from(std::fs::File::open(&bin).expect("open bin")))
        .output()
        .expect("binary runs");
    assert!(streamed.status.success(), "{}", String::from_utf8_lossy(&streamed.stderr));
    let text = String::from_utf8_lossy(&streamed.stdout);
    assert!(text.contains("Table 4."), "{text}");
    assert!(text.contains("Table 10."), "{text}");

    // In-memory engine over the materialized CSV: same bytes.
    let tabled = botscope(&["analyze", "--phase-report", "--table", csv.to_str().unwrap()]);
    assert!(tabled.status.success(), "{}", String::from_utf8_lossy(&tabled.stderr));
    assert_eq!(
        streamed.stdout, tabled.stdout,
        "streamed and in-memory phase reports must be byte-identical"
    );
    let _ = std::fs::remove_file(bin);
    let _ = std::fs::remove_file(csv);
}

#[test]
fn simulate_and_analyze_reject_bad_flags_cleanly() {
    let out = botscope(&["simulate", "1", "0.02", "-", "42", "--format", "xml"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("bad --format"));

    let out = botscope(&["simulate", "--turbo"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown simulate flag"));

    let out = botscope(&["analyze", "--frobnicate", "x.csv"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown analyze flag"));

    let out = botscope(&["analyze", "--table", "x.csv"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--phase-report"));
}

#[test]
fn monitor_rejects_bad_flags_cleanly() {
    let out = botscope(&["monitor", "--scenario", "sunny"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("bad --scenario"));

    let out = botscope(&["monitor", "--ttl", "zero-ish"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("bad --ttl"));

    let out = botscope(&["monitor", "--sites"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("needs a value"));

    let out = botscope(&["monitor", "--frobnicate", "1"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown monitor flag"));
}

#[test]
fn global_telemetry_flags_reject_missing_values() {
    for flag in ["--metrics", "--manifest", "--trace"] {
        let out = botscope(&["monitor", "--sites", "2", flag]);
        assert!(!out.status.success(), "{flag} without a value must fail");
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(err.contains("needs a file"), "{flag}: {err}");
    }
}

/// `--metrics`/`--trace`/`--manifest` must never perturb the data
/// artifacts: stdout is byte-identical with telemetry on vs off, at
/// every worker count, for every instrumented pipeline.
#[test]
fn telemetry_flags_do_not_perturb_output_at_any_worker_count() {
    let pid = std::process::id();
    let queries = write_temp(
        "telemetry-queries.csv",
        "GPTBot,site-00.example.edu,/news/item-001\n\
         Googlebot,site-01.example.edu,/page-data/item-1/page-data.json\n",
    );
    let queries = queries.to_str().expect("utf-8 temp path").to_string();
    let scenarios: [(&str, Vec<&str>); 3] = [
        ("simulate", vec!["simulate", "1", "0.02", "-", "42", "--stream"]),
        ("monitor", vec!["monitor", "--sites", "12", "--days", "5", "--bots", "3", "--out", "-"]),
        ("admit", vec!["admit", &queries]),
    ];
    for (name, args) in &scenarios {
        for threads in ["1", "2", "8"] {
            let run = |telemetry: &[String]| {
                let out = Command::new(env!("CARGO_BIN_EXE_botscope"))
                    .args(args)
                    .args(telemetry)
                    .env("BOTSCOPE_THREADS", threads)
                    .output()
                    .expect("binary runs");
                assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
                out.stdout
            };
            let plain = run(&[]);
            let sink = |kind: &str| {
                std::env::temp_dir()
                    .join(format!("botscope-test-{pid}-telemetry-{name}-{threads}.{kind}"))
                    .to_string_lossy()
                    .into_owned()
            };
            let telemetry = [
                "--metrics".to_string(),
                sink("prom"),
                "--trace".to_string(),
                sink("trace"),
                "--manifest".to_string(),
                sink("manifest"),
            ];
            let instrumented = run(&telemetry);
            assert_eq!(
                plain, instrumented,
                "{name} at {threads} workers: telemetry flags must not change stdout"
            );
            for kind in ["prom", "trace", "manifest"] {
                let _ = std::fs::remove_file(sink(kind));
            }
        }
    }
    let _ = std::fs::remove_file(queries);
}

/// The committed fixture pins the manifest's stable prefix (everything
/// before the volatile `perf` section) for one canonical monitor run.
/// Regenerate with:
///
/// ```text
/// BOTSCOPE_THREADS=2 botscope monitor --sites 8 --days 5 --bots 3 \
///   --manifest /tmp/m.json >/dev/null 2>&1
/// sed -n '/^  "perf"/q;p' /tmp/m.json | grep -v '^  "manifest_digest"' \
///   > tests/fixtures/manifest/monitor.json
/// ```
#[test]
fn manifest_stable_prefix_matches_committed_fixture() {
    let path =
        std::env::temp_dir().join(format!("botscope-test-{}-fixture.manifest", std::process::id()));
    let out = Command::new(env!("CARGO_BIN_EXE_botscope"))
        .args(["monitor", "--sites", "8", "--days", "5", "--bots", "3"])
        .arg("--manifest")
        .arg(&path)
        .env("BOTSCOPE_THREADS", "2")
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let rendered = std::fs::read_to_string(&path).expect("manifest written");
    let _ = std::fs::remove_file(&path);
    let expected = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/fixtures/manifest/monitor.json"
    ))
    .expect("committed fixture");
    assert_eq!(
        botscope::obs::manifest::stable_prefix(&rendered),
        expected,
        "manifest stable prefix drifted from tests/fixtures/manifest/monitor.json; \
         regenerate it if the change is intentional"
    );
}

//! End-to-end validation: the generator plants behaviour, the analyzer
//! must measure it back — the closed loop that substitutes for the
//! paper's (private) raw logs. One shared experiment run keeps the suite
//! fast; each test checks a different published finding against it.

use std::sync::OnceLock;

use botscope::core::analyze::{Directive, Experiment};
use botscope::core::report::FullStudyReport;
use botscope::simnet::scenario::full_study;
use botscope::simnet::SimConfig;
use botscope::useragent::BotCategory;

fn experiment() -> &'static Experiment {
    static EXP: OnceLock<Experiment> = OnceLock::new();
    EXP.get_or_init(|| {
        let cfg = SimConfig { scale: 0.25, ..SimConfig::default() };
        Experiment::run(&cfg)
    })
}

fn full_report() -> &'static FullStudyReport {
    static REP: OnceLock<FullStudyReport> = OnceLock::new();
    REP.get_or_init(|| {
        let cfg = SimConfig { scale: 0.1, ..SimConfig::default() };
        FullStudyReport::new(&full_study(&cfg).records)
    })
}

// ---- RQ1: stricter directives, less compliance -------------------------

#[test]
fn rq1_compliance_decreases_with_strictness() {
    let t = experiment().category_table();
    let cd = t.directive_average[&Directive::CrawlDelay];
    let ep = t.directive_average[&Directive::Endpoint];
    let da = t.directive_average[&Directive::Disallow];
    assert!(
        cd > ep && cd > da,
        "crawl delay {cd:.3} must beat endpoint {ep:.3} and disallow {da:.3}"
    );
}

// ---- RQ2: SEO crawlers most respectful, headless least -----------------

#[test]
fn rq2_seo_most_compliant_headless_least() {
    let t = experiment().category_table();
    let avg = |cat: BotCategory| t.rows.iter().find(|(c, _, _)| *c == cat).map(|(_, _, a)| *a);
    let seo = avg(BotCategory::SeoCrawler).expect("SEO row");
    let headless = avg(BotCategory::HeadlessBrowser).expect("headless row");
    for (cat, _, a) in &t.rows {
        assert!(seo >= *a - 1e-9, "SEO ({seo:.3}) must top the table; {} has {a:.3}", cat.name());
        assert!(
            headless <= *a + 0.12,
            "headless ({headless:.3}) must be near the bottom; {} has {a:.3}",
            cat.name()
        );
    }
}

// ---- Per-bot planted values are recovered (Table 6 spot checks) --------

#[test]
fn table6_planted_values_recovered() {
    let exp = experiment();
    let get = |d: Directive, bot: &str| {
        exp.per_directive[&d].iter().find(|r| r.bot == bot).and_then(|r| r.compliance())
    };
    // (bot, directive, paper value, tolerance)
    let cases = [
        ("ChatGPT-User", Directive::CrawlDelay, 0.910, 0.10),
        ("ChatGPT-User", Directive::Disallow, 1.000, 0.05),
        ("GPTBot", Directive::Disallow, 1.000, 0.05),
        ("HeadlessChrome", Directive::CrawlDelay, 0.036, 0.08),
        ("HeadlessChrome", Directive::Disallow, 0.011, 0.08),
        ("Applebot", Directive::CrawlDelay, 0.841, 0.10),
        ("Applebot", Directive::Disallow, 0.043, 0.08),
        ("SemrushBot", Directive::Endpoint, 0.986, 0.10),
    ];
    for (bot, d, want, tol) in cases {
        if let Some(got) = get(d, bot) {
            assert!(
                (got - want).abs() <= tol,
                "{bot} {d:?}: paper {want}, measured {got:.3} (tol {tol})"
            );
        }
    }
}

// ---- Promise vs practice (RQ3 flavour) ----------------------------------

#[test]
fn bytespider_breaks_promise_amazonbot_keeps_it() {
    let exp = experiment();
    let rows = &exp.per_directive[&Directive::Endpoint];
    if let Some(byte) = rows.iter().find(|r| r.bot == "Bytespider") {
        assert!(byte.compliance().unwrap() < 0.4, "Bytespider does not respect robots.txt");
    }
    if let Some(amazon) = rows.iter().find(|r| r.bot == "Amazonbot") {
        assert!(amazon.compliance().unwrap() > 0.8, "Amazonbot honours its promise");
    }
}

// ---- Table 4: stable traffic across versions ----------------------------

#[test]
fn table4_traffic_stable_across_versions() {
    let exp = experiment();
    let visits: Vec<usize> = exp.phase_traffic.iter().map(|p| p.unique_site_visits).collect();
    let max = *visits.iter().max().unwrap() as f64;
    let min = *visits.iter().min().unwrap() as f64;
    assert!(max / min < 2.0, "site visits should stay roughly stable: {visits:?}");
    let bots: Vec<usize> = exp.phase_traffic.iter().map(|p| p.unique_bot_visitors).collect();
    assert!(bots.iter().all(|&b| b >= 30), "dozens of unique bots per phase: {bots:?}");
}

// ---- Spoofing: planted Table 8 rows rediscovered ------------------------

#[test]
fn spoofing_detected_for_planted_victims() {
    let rep = full_report();
    // The heavy planted spoof victims must be flagged.
    for bot in ["Baiduspider", "Googlebot"] {
        assert!(
            rep.spoof.finding_for(bot).is_some(),
            "{bot} has planted spoof traffic and must be flagged"
        );
    }
    // Every finding's minority share must be below 10%.
    for f in &rep.spoof.findings {
        assert!(f.main_share >= 0.90, "{}: {}", f.bot, f.main_share);
    }
}

#[test]
fn spoofed_requests_are_a_tiny_minority() {
    let exp = experiment();
    for (d, &(legit, spoofed)) in &exp.spoof_volume {
        assert!(
            (spoofed as f64) < 0.1 * legit as f64,
            "{d:?}: spoofed {spoofed} vs legit {legit} (paper Table 9: <0.1%-ish)"
        );
    }
}

// ---- Figure 10: AI bots re-check robots.txt least -----------------------

#[test]
fn figure10_ai_categories_recheck_least() {
    let rep = full_report();
    let p = |cat: BotCategory| rep.recheck.proportions.get(&(cat, 168)).copied();
    let assistants = p(BotCategory::AiAssistant);
    let scrapers = p(BotCategory::Scraper).or(p(BotCategory::IntelligenceGatherer));
    if let (Some(ai), Some(diligent)) = (assistants, scrapers) {
        assert!(
            ai <= diligent + 1e-9,
            "AI assistants ({ai:.2}) must re-check no more than scrapers/intel ({diligent:.2})"
        );
        assert!(ai < 0.8, "paper: fewer than 40% of AI bots re-check within 168h; ours {ai:.2}");
    }
}

// ---- Table 2/3 and figures: dataset overview shape ----------------------

#[test]
fn table2_all_data_dominates_known_bots() {
    let rep = full_report();
    assert!(rep.all.unique_ips > rep.known.unique_ips);
    assert!(rep.all.unique_user_agents > 2 * rep.known.unique_user_agents);
    assert!(rep.all.unique_asns > rep.known.unique_asns);
    assert!(rep.all.total_bytes >= rep.known.total_bytes);
}

#[test]
fn table3_yisou_and_applebot_dominate() {
    let rep = full_report();
    let names: Vec<&str> = rep.bot_stats.iter().take(2).map(|b| b.name.as_str()).collect();
    assert!(names.contains(&"YisouSpider"), "top-2: {names:?}");
    assert!(names.contains(&"Applebot"), "top-2: {names:?}");
    // Together they drive a large share of bot traffic (paper: 30% of all).
    let top2: u64 = rep.bot_stats.iter().take(2).map(|b| b.hits).sum();
    let all: u64 = rep.bot_stats.iter().map(|b| b.hits).sum();
    assert!(top2 as f64 / all as f64 > 0.4, "{top2}/{all}");
}

#[test]
fn figure2_search_categories_lead() {
    let rep = full_report();
    let sessions = |cat: BotCategory| rep.category_sessions.get(&cat).copied().unwrap_or(0);
    let search = sessions(BotCategory::SearchEngineCrawler);
    let ai_search = sessions(BotCategory::AiSearchCrawler);
    let seo = sessions(BotCategory::SeoCrawler);
    let archivers = sessions(BotCategory::Archiver);
    assert!(search > seo, "search engines above SEO in Fig 2");
    assert!(ai_search > archivers, "AI search above archivers in Fig 2");
}

// ---- Determinism across the whole stack ---------------------------------

#[test]
fn same_seed_same_analysis() {
    let cfg = SimConfig { scale: 0.05, sites: 6, ..SimConfig::default() };
    let a = Experiment::run(&cfg);
    let b = Experiment::run(&cfg);
    for d in Directive::ALL {
        let ra = &a.per_directive[&d];
        let rb = &b.per_directive[&d];
        assert_eq!(ra.len(), rb.len());
        for (x, y) in ra.iter().zip(rb.iter()) {
            assert_eq!(x.bot, y.bot);
            assert_eq!(x.experiment, y.experiment);
            assert_eq!(x.baseline, y.baseline);
        }
    }
}

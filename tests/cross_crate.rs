//! Cross-crate consistency: the static data in the useragent, asn and
//! simnet crates must agree with each other — the generator and analyzer
//! meet through these tables.

use std::collections::BTreeSet;

use botscope::asn::catalog::SPOOF_CATALOG;
use botscope::asn::registry::lookup;
use botscope::robots::parser::parse;
use botscope::simnet::phases::{PolicyVersion, EXEMPT_AGENTS};
use botscope::useragent::registry::registry;

#[test]
fn every_bot_home_asn_resolves() {
    for bot in registry().all() {
        assert!(
            lookup(bot.home_asn).is_some(),
            "{}'s home ASN {} missing from the whois directory",
            bot.canonical,
            bot.home_asn
        );
    }
}

#[test]
fn spoof_catalog_bots_exist_in_registry() {
    let reg = registry();
    for profile in SPOOF_CATALOG {
        assert!(
            reg.by_name(profile.bot).is_some(),
            "Table 8 bot {} missing from registry",
            profile.bot
        );
    }
}

#[test]
fn spoof_catalog_main_asn_matches_registry_home() {
    let reg = registry();
    for profile in SPOOF_CATALOG {
        let spec = reg.by_name(profile.bot).unwrap();
        assert_eq!(
            spec.home_asn, profile.main_asn,
            "{}: registry home ASN and Table 8 main ASN disagree",
            profile.bot
        );
    }
}

#[test]
fn exempt_agents_resolve_in_registry() {
    let reg = registry();
    for agent in EXEMPT_AGENTS {
        assert!(reg.by_name(agent).is_some(), "exempt agent {agent} missing from registry");
    }
}

#[test]
fn policy_files_grant_exempt_agents_access() {
    for version in [PolicyVersion::V2EndpointOnly, PolicyVersion::V3DisallowAll] {
        let doc = version.robots_txt();
        for agent in EXEMPT_AGENTS {
            assert!(
                doc.is_allowed(agent, "/news/item-001").allow,
                "{agent} should keep access under {version:?}"
            );
            assert!(
                !doc.is_allowed(agent, "/secure/x").allow,
                "{agent} still barred from /secure under {version:?}"
            );
        }
        // A non-exempt agent is restricted.
        assert!(!doc.is_allowed("GPTBot", "/news/item-001").allow);
    }
}

#[test]
fn policy_files_roundtrip_through_own_parser() {
    // The paper validated its files with the Google parser; we validate
    // with ours: serialize, reparse, same semantics, no warnings.
    for version in PolicyVersion::ALL {
        let doc = version.robots_txt();
        let reparsed = parse(&doc.to_string());
        assert!(reparsed.warnings.is_empty(), "{version:?}: {:?}", reparsed.warnings);
        for agent in ["GPTBot", "Googlebot", "randombot"] {
            for path in ["/", "/page-data/x/page-data.json", "/secure/a", "/404", "/news/item"] {
                assert_eq!(
                    doc.is_allowed(agent, path).allow,
                    reparsed.is_allowed(agent, path).allow,
                    "{version:?} {agent} {path}"
                );
            }
        }
    }
}

#[test]
fn registry_patterns_do_not_shadow_each_other_exactly() {
    // Two bots must never share an identical pattern.
    let mut seen: BTreeSet<&str> = BTreeSet::new();
    for bot in registry().all() {
        for pat in bot.patterns {
            assert!(seen.insert(pat), "pattern {pat:?} appears twice ({})", bot.canonical);
        }
    }
}

#[test]
fn suspicious_asns_are_distinct_from_home_networks() {
    // A Table 8 suspicious ASN must not be the flagged bot's own home —
    // otherwise the generator would plant legitimate traffic there and
    // the detector could never separate them.
    for profile in SPOOF_CATALOG {
        for asn in profile.suspicious_asns {
            assert_ne!(*asn, profile.main_asn, "{}", profile.bot);
        }
    }
}

//! The `botscope` command-line tool.
//!
//! Subcommands for the workflows a site operator or researcher runs
//! day-to-day, each a thin shell over the library:
//!
//! ```text
//! botscope check <robots.txt> <agent> <path>...   access decisions
//! botscope admit [--robots F] <queries.csv|->     batch admission checks
//! botscope audit <robots.txt>                     lint a policy file
//! botscope diff <old> <new> [agent...]            what changed, for whom
//! botscope analyze [--phase-report] <log|->       per-bot compliance report
//! botscope simulate [days] [scale] [out] [seed]   generate synthetic logs
//! botscope monitor [--sites N] [--days N] ...     run the monitoring daemon
//! ```

use std::io::Write as _;
use std::process::ExitCode;

use botscope::core::metrics::{crawl_delay_counts_rows, CRAWL_DELAY_SECS};
use botscope::core::pipeline::standardize_table;
use botscope::core::recheck::{by_category, profiles_from_table};
use botscope::core::spoofdetect::detect_rows;
use botscope::monitor::daemon::{MonitorConfig, MonitorOutput, TtlPolicy};
use botscope::monitor::ScenarioKind;
use botscope::robots::diff::{diff, summarize};
use botscope::robots::RobotsTxt;
use botscope::simnet::{scenario, SimConfig};
use botscope::weblog::codec;

const USAGE: &str = "botscope — robots.txt compliance toolkit

USAGE:
  botscope check <robots.txt> <agent> <path>...
      Print ALLOW/DENY (and crawl delay) for each path.
  botscope admit [--robots FILE] [--quiet] <queries.csv|->
      Batch \"may-I-crawl\" admission: each query row `agent,site,path`
      (header optional; \"-\" reads stdin) is answered ALLOW/DENY on
      stdout from compiled policy automata cached per site, compiled
      lazily on first use. Sites default to the paper's policy corpus
      (version picked by a stable hash of the site name); a throughput
      and compile-cost summary goes to stderr.
        --robots FILE    serve FILE as every site's robots.txt instead
                         of the paper corpus
        --quiet          suppress per-query output (throughput runs)
  botscope audit [--json] [--severity S] [--deny S] <robots.txt>...
      Statically analyze policies: syntactic lints plus automaton-walk
      proofs — dead/shadowed rules with witness paths, rules only
      /robots.txt can match, parser-divergence hazards (first-match,
      wildcard-unaware, $-literal matchers), each with a concrete
      witness path that reproduces the divergence.
        --json           machine-readable findings on stdout
        --severity S     only show findings at/above S (info|warning|error)
        --deny S         exit nonzero when findings at/above S exist
  botscope audit --estate [options]
      Estate-scale analysis: analyze the paper's policy corpus, prove
      every version transition cosmetic or behavioral, run the
      monitoring daemon, classify its change digests, and replay them
      against a warmed admission estate to report the recompile debt
      actually owed (cosmetic digests keep artifacts warm).
        --sites N        estate size (default 36)
        --days N         horizon in simulated days (default 46)
        --seed N         master seed (default 9309)
        --bots N         monitored bots (default 6)
        --scenario K     stable|outages|flapping|redirects|mixed (default mixed)
        --swap-every N   every Nth site swaps policies mid-study (default 4)
        --json / --severity / --deny  as above
  botscope diff <old-robots.txt> <new-robots.txt> [agent]...
      Report decision flips over the file's own rule paths.
      Agents default to: Googlebot GPTBot ClaudeBot Bytespider *anybot*.
  botscope analyze [--phase-report [--table]] <log|->
      Standardize user agents and report per-bot pacing and spoof signals.
      The input is the workspace CSV schema or the columnar binary
      format (auto-detected from the magic bytes); \"-\" reads stdin.
      CSV columns: useragent,timestamp,ip_hash,asn,sitename,uri_path,status,bytes,referer
        --phase-report   treat the log as the 8-week phase study and
                         print the paper's experiment tables via the
                         single-pass streaming analyzer (bounded memory)
        --table          with --phase-report: materialize the table and
                         run the in-memory engine instead — the report
                         is byte-identical, so the two paths can be
                         cmp-verified against each other
  botscope simulate [days=7] [scale=0.05] [out] [seed=9309] [flags]
      Generate a synthetic access log (stdout or out; pass \"-\" for
      out to pipe a seeded run to stdout). The same seed always
      yields a byte-identical log.
        --format F       csv (default) or bin, the columnar binary
                         format (smaller, dictionary-compressed)
        --stream         bounded-memory generation: workers spill
                         sorted runs to disk and a k-way merge streams
                         rows to the output without ever materializing
                         the full table
        --phase-study    generate the 8-week four-phase robots.txt
                         experiment instead of the flat estate study
                         (days is ignored; pair with `analyze
                         --phase-report`)
  botscope simulate --coupled [options]
      Generate the 8-week phase study in *coupled* mode: a monitoring
      daemon first derives each bot's believed policy per site from
      virtual robots.txt fetches (stale caches, 4xx/5xx windows,
      backoff gaps), traffic generation then acts on those beliefs,
      and compliance is attributed against served ground truth
      (deliberate / stale-cache / fetch-artifact split).
        --scale F        traffic multiplier (default 0.05)
        --sites N        estate size (default 36)
        --seed N         master seed (default 9309)
        --scenario K     stable|outages|flapping|redirects|mixed (default mixed)
        --refresh M      fleet|instant belief refresh (default fleet)
        --basis B        believed|served compliance basis for the
                         printed Tables 5/6/10 (default served);
                         believed drops stale-cache and fetch-artifact
                         rows from the non-compliant pool
        --out FILE       write the generated log as CSV (\"-\" = stdout)
  botscope monitor [options]
      Run the robots.txt monitoring daemon over the virtual estate:
      one cache-backed fetch agent per (bot, site), scripted outages /
      redirect chains / policy swaps, conditional revalidation (304s),
      change detection, and a §5.1 re-check report computed from the
      monitored fetch log.
        --sites N        estate size (default 36)
        --days N         horizon in simulated days (default 46)
        --seed N         master seed (default 9309)
        --bots N         monitored bots, top of the fleet (default 6)
        --ttl P          re-check TTL: \"spectrum\" or hours (default spectrum)
        --scenario K     stable|outages|flapping|redirects|mixed (default mixed)
        --swap-every N   every Nth site swaps policies mid-study (default 4; 0 = off)
        --out FILE       write the fetch-event log as CSV (\"-\" = stdout)
        --jsonl FILE     write the fetch-event log as JSONL (\"-\" = stdout)
        --changes FILE   write detected policy changes as CSV (\"-\" = stdout)
        --stream         stream CSV/JSONL row by row through the k-way
                         shard merge instead of materializing the table;
                         the table-derived reports are computed by
                         bounded-memory accumulators on the same stream
                         and print byte-identically to the default path

GLOBAL FLAGS (any subcommand):
  --metrics FILE   write a Prometheus-style text snapshot of every
                   counter, gauge and histogram on exit
  --manifest FILE  write a run-manifest JSON: config, seed, threads,
                   counters, output digests, phase timings, peak RSS
  --trace FILE     stream span events as JSONL while the run executes
      FILE may be \"-\" to write to stderr. Stdout always stays
      reserved for data artifacts, and telemetry never changes
      artifact bytes: instrumented runs are byte-identical to
      uninstrumented ones at any thread count.

ENVIRONMENT:
  BOTSCOPE_THREADS
      Worker threads for log generation (simulate) and the monitor's
      event-queue shards (monitor). Defaults to the machine's
      available parallelism; the output is byte-identical for a fixed
      seed at any thread count.
";

fn main() -> ExitCode {
    let started = std::time::Instant::now();
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let telemetry = match Telemetry::extract(&mut args) {
        Ok(t) => t,
        Err(message) => {
            eprintln!("error: {message}");
            return ExitCode::FAILURE;
        }
    };
    let result = match args.first().map(String::as_str) {
        Some("check") => cmd_check(&args[1..]),
        Some("admit") => cmd_admit(&args[1..]),
        Some("audit") => cmd_audit(&args[1..]),
        Some("diff") => cmd_diff(&args[1..]),
        Some("analyze") => cmd_analyze(&args[1..]),
        Some("simulate") => cmd_simulate(&args[1..]),
        Some("monitor") => cmd_monitor(&args[1..]),
        Some("help") | Some("--help") | Some("-h") | None => {
            print!("{USAGE}");
            Ok(())
        }
        Some(other) => Err(format!("unknown subcommand {other:?}\n\n{USAGE}")),
    };
    let result = result.and_then(|()| telemetry.finish(&args, started));
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}

/// Global telemetry flags, stripped from the argument list before
/// subcommand dispatch so every subcommand stays flag-agnostic.
///
/// Diagnostics never touch stdout: `-` routes metrics, manifests and
/// traces to *stderr*, keeping stdout reserved for data artifacts.
/// Telemetry also never changes artifact bytes — instrumented runs
/// are byte-identical to uninstrumented ones.
struct Telemetry {
    metrics: Option<String>,
    manifest: Option<String>,
    trace: Option<String>,
}

/// Whether `--manifest` is active: the output funnels then wrap every
/// writer in a digest adapter and record `(target, bytes, sha256)`.
static MANIFEST_ACTIVE: std::sync::atomic::AtomicBool = std::sync::atomic::AtomicBool::new(false);

fn manifest_active() -> bool {
    MANIFEST_ACTIVE.load(std::sync::atomic::Ordering::Relaxed)
}

/// A buffered diagnostics writer: a file, or stderr for `-`.
fn diag_writer(path: &str) -> Result<Box<dyn std::io::Write + Send>, String> {
    if path == "-" {
        Ok(Box::new(std::io::BufWriter::new(std::io::stderr())))
    } else {
        std::fs::File::create(path)
            .map(|f| Box::new(std::io::BufWriter::new(f)) as Box<dyn std::io::Write + Send>)
            .map_err(|e| format!("cannot write {path}: {e}"))
    }
}

impl Telemetry {
    /// Strip `--metrics F`, `--manifest F` and `--trace F` from any
    /// position in `args`, enable the registry when at least one is
    /// present, and attach the trace sink up front so spans stream
    /// while the run executes.
    fn extract(args: &mut Vec<String>) -> Result<Telemetry, String> {
        let mut t = Telemetry { metrics: None, manifest: None, trace: None };
        let mut i = 0;
        while i < args.len() {
            let slot: &mut Option<String> = match args[i].as_str() {
                "--metrics" => &mut t.metrics,
                "--manifest" => &mut t.manifest,
                "--trace" => &mut t.trace,
                _ => {
                    i += 1;
                    continue;
                }
            };
            let flag = args.remove(i);
            if i >= args.len() {
                return Err(format!("{flag} needs a file (or \"-\" for stderr)"));
            }
            *slot = Some(args.remove(i));
        }
        if t.metrics.is_some() || t.manifest.is_some() || t.trace.is_some() {
            botscope::obs::global().set_enabled(true);
        }
        if t.manifest.is_some() {
            MANIFEST_ACTIVE.store(true, std::sync::atomic::Ordering::Relaxed);
        }
        if let Some(path) = &t.trace {
            botscope::obs::global().set_trace(diag_writer(path)?);
        }
        Ok(t)
    }

    /// After the subcommand succeeds: flush the trace, render the
    /// metrics snapshot, and write the run manifest.
    fn finish(&self, args: &[String], started: std::time::Instant) -> Result<(), String> {
        let obs = botscope::obs::global();
        if !obs.enabled() {
            return Ok(());
        }
        obs.close_trace().map_err(|e| format!("cannot flush trace: {e}"))?;
        if let Some(path) = &self.metrics {
            let text = obs.render_prometheus();
            let mut w = diag_writer(path)?;
            w.write_all(text.as_bytes())
                .and_then(|()| w.flush())
                .map_err(|e| format!("cannot write metrics: {e}"))?;
        }
        if let Some(path) = &self.manifest {
            let manifest = build_manifest(args, started);
            let mut w = diag_writer(path)?;
            w.write_all(manifest.render().as_bytes())
                .and_then(|()| w.flush())
                .map_err(|e| format!("cannot write manifest: {e}"))?;
        }
        Ok(())
    }
}

/// Assemble the run manifest: identity and config first (the stable
/// prefix CI snapshots), volatile perf numbers last.
fn build_manifest(
    args: &[String],
    started: std::time::Instant,
) -> botscope::obs::manifest::RunManifest {
    use botscope::obs::manifest::{PerfSection, RunManifest};

    let obs = botscope::obs::global();
    let rest = args.get(1..).unwrap_or_default();
    let mut config = std::collections::BTreeMap::new();
    let mut seed = None;
    let mut i = 0;
    while i < rest.len() {
        if let Some(name) = rest[i].strip_prefix("--") {
            // Mirror the subcommand parsers without naming every flag:
            // a following non-flag token is that flag's value, a flag
            // with no value is a bare switch.
            match rest.get(i + 1) {
                Some(v) if !v.starts_with("--") => {
                    if name == "seed" {
                        seed = v.parse().ok();
                    }
                    config.insert(name.to_string(), v.clone());
                    i += 2;
                    continue;
                }
                _ => {
                    config.insert(name.to_string(), "true".to_string());
                }
            }
        }
        i += 1;
    }
    if let Ok(threads) = std::env::var("BOTSCOPE_THREADS") {
        config.insert("env.BOTSCOPE_THREADS".to_string(), threads);
    }
    let mut counters = obs.snapshot_counters();
    counters.extend(obs.snapshot_gauges());
    let mem = botscope::obs::rss::sample_self().unwrap_or_default();
    RunManifest {
        tool: "botscope".to_string(),
        version: env!("CARGO_PKG_VERSION").to_string(),
        command: args.first().cloned().unwrap_or_default(),
        args: rest.to_vec(),
        seed,
        threads: botscope::simnet::worker_threads(),
        config,
        counters,
        outputs: obs.snapshot_outputs(),
        perf: PerfSection {
            wall_ms: started.elapsed().as_secs_f64() * 1e3,
            host_cores: botscope::obs::bench::host_cores(),
            rss_kb: mem.rss_kb,
            peak_rss_kb: mem.peak_rss_kb,
            phases: obs.snapshot_phases(),
        },
    }
}

fn read_file(path: &str) -> Result<String, String> {
    std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))
}

fn cmd_check(args: &[String]) -> Result<(), String> {
    let [file, agent, paths @ ..] = args else {
        return Err("usage: botscope check <robots.txt> <agent> <path>...".into());
    };
    if paths.is_empty() {
        return Err("no paths given".into());
    }
    let doc = RobotsTxt::parse(&read_file(file)?);
    if !doc.warnings.is_empty() {
        eprintln!(
            "note: {} parse warning(s); run `botscope audit` for details",
            doc.warnings.len()
        );
    }
    if let Some(delay) = doc.crawl_delay(agent) {
        println!("crawl delay for {agent}: {delay}s");
    }
    for path in paths {
        let d = doc.is_allowed(agent, path);
        let verdict = if d.allow { "ALLOW" } else { "DENY " };
        match d.matched_rule {
            Some(rule) => println!("{verdict} {path}  ({}: {})", rule.verb.as_str(), rule.pattern),
            None => println!("{verdict} {path}  (default)"),
        }
    }
    Ok(())
}

/// Deterministic corpus assignment for `admit` sites without an
/// explicit robots file: FNV-1a over the site name picks one of the
/// paper's four policy versions, so repeated runs (and the CLI tests)
/// always see the same estate.
fn admit_site_version(site: &str) -> botscope::simnet::PolicyVersion {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in site.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0100_0000_01b3);
    }
    botscope::simnet::PolicyVersion::ALL[(h % 4) as usize]
}

fn cmd_admit(args: &[String]) -> Result<(), String> {
    use botscope::robots::PolicyEstate;

    let mut quiet = false;
    let mut robots_file: Option<&str> = None;
    let mut input: Option<&str> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quiet" => quiet = true,
            "--robots" => {
                robots_file =
                    Some(args.get(i + 1).ok_or("--robots needs a file (see `botscope help`)")?);
                i += 1;
            }
            other if other.starts_with("--") => {
                return Err(format!("unknown admit flag {other:?} (see `botscope help`)"))
            }
            value => {
                if input.replace(value).is_some() {
                    return Err("admit takes exactly one query file (see `botscope help`)".into());
                }
            }
        }
        i += 1;
    }
    let Some(file) = input else {
        return Err("usage: botscope admit [--robots FILE] [--quiet] <queries.csv|->".into());
    };

    let text = if file == "-" {
        use std::io::Read as _;
        let mut buf = String::new();
        std::io::stdin().read_to_string(&mut buf).map_err(|e| format!("cannot read stdin: {e}"))?;
        buf
    } else {
        read_file(file)?
    };

    // Parse every query up front so the timed loop measures admission
    // checks (plus lazy compiles), not file IO. `splitn` keeps commas
    // inside the path intact.
    let mut queries: Vec<(&str, &str, &str)> = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || (lineno == 0 && line == "agent,site,path") {
            continue;
        }
        let mut fields = line.splitn(3, ',');
        match (fields.next(), fields.next(), fields.next()) {
            (Some(agent), Some(site), Some(path)) if !agent.is_empty() && !site.is_empty() => {
                queries.push((agent, site, path));
            }
            _ => return Err(format!("line {}: want `agent,site,path`, got {line:?}", lineno + 1)),
        }
    }
    if queries.is_empty() {
        return Err("no queries (want `agent,site,path` rows)".into());
    }

    // Register every queried site; compilation stays lazy so the first
    // check against each site pays its compile below, inside the timed
    // loop — that cost is what the stderr summary reports.
    let robots_text = robots_file.map(read_file).transpose()?;
    let mut estate = PolicyEstate::new();
    for &(_, site, _) in &queries {
        if estate.doc(site).is_none() {
            match &robots_text {
                Some(text) => estate.insert_text(site, text),
                None => estate.insert(site, admit_site_version(site).robots_txt()),
            }
        }
    }
    let sites = estate.len();

    let obs = botscope::obs::global();
    let check_span = obs.span("admit_check");
    let started = std::time::Instant::now();
    let mut verdicts = Vec::with_capacity(queries.len());
    let mut allowed = 0u64;
    for &(agent, site, path) in &queries {
        // Sites were all primed above, so the estate always answers.
        let allow = estate.check(site, agent, path).unwrap_or(false);
        allowed += u64::from(allow);
        verdicts.push(allow);
    }
    let elapsed = started.elapsed();
    drop(check_span);
    obs.counter("admit_queries_total").add(queries.len() as u64);
    obs.counter("admit_allowed_total").add(allowed);
    obs.counter("robotstxt_compiles_total").add(estate.compiles());
    obs.counter("robotstxt_cache_hits_total").add(estate.cache_hits());
    obs.gauge("robotstxt_compile_debt").set(estate.compile_debt() as u64);

    if !quiet {
        write_output("-", |w| {
            for (&(agent, site, path), &allow) in queries.iter().zip(&verdicts) {
                let verdict = if allow { "ALLOW" } else { "DENY " };
                writeln!(w, "{verdict} {agent} {site} {path}")?;
            }
            Ok(())
        })?;
    }

    let secs = elapsed.as_secs_f64();
    let rate = if secs > 0.0 { queries.len() as f64 / secs } else { f64::INFINITY };
    eprintln!(
        "{} queries over {} site(s): {} allowed, {} denied; {} policy compile(s); {:.3} ms ({:.0} checks/s)",
        queries.len(),
        sites,
        allowed,
        queries.len() as u64 - allowed,
        estate.compiles(),
        secs * 1e3,
        rate
    );
    Ok(())
}

fn cmd_audit(args: &[String]) -> Result<(), String> {
    use botscope::robots::analysis::Severity;

    let mut json = false;
    let mut estate = false;
    let mut severity = Severity::Info;
    let mut deny: Option<Severity> = None;
    let mut files: Vec<&str> = Vec::new();
    let mut cfg = MonitorConfig::default();
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        match flag {
            "--json" => {
                json = true;
                i += 1;
                continue;
            }
            "--estate" => {
                estate = true;
                i += 1;
                continue;
            }
            _ => {}
        }
        if !flag.starts_with("--") {
            files.push(flag);
            i += 1;
            continue;
        }
        let value =
            args.get(i + 1).ok_or_else(|| format!("{flag} needs a value (see `botscope help`)"))?;
        match flag {
            "--severity" => severity = value.parse()?,
            "--deny" => deny = Some(value.parse()?),
            "--sites" => cfg.sites = value.parse().map_err(|_| format!("bad --sites {value}"))?,
            "--days" => cfg.days = value.parse().map_err(|_| format!("bad --days {value}"))?,
            "--seed" => cfg.seed = value.parse().map_err(|_| format!("bad --seed {value}"))?,
            "--bots" => cfg.bots = value.parse().map_err(|_| format!("bad --bots {value}"))?,
            "--scenario" => {
                cfg.scenario = ScenarioKind::parse(value).ok_or_else(|| {
                    format!("bad --scenario {value} (want stable|outages|flapping|redirects|mixed)")
                })?
            }
            "--swap-every" => {
                cfg.swap_every = value.parse().map_err(|_| format!("bad --swap-every {value}"))?
            }
            other => return Err(format!("unknown audit flag {other:?} (see `botscope help`)")),
        }
        i += 2;
    }

    if estate {
        return audit_estate(&cfg, json, severity, deny);
    }
    if files.is_empty() {
        return Err(
            "usage: botscope audit [--json] [--severity S] [--deny S] <robots.txt>...".into()
        );
    }
    audit_files(&files, json, severity, deny)
}

/// Render one finding list as JSON objects (stable field order).
fn findings_json(out: &mut String, analysis: &botscope::robots::analysis::Analysis) {
    use std::fmt::Write as _;
    out.push('[');
    for (i, f) in analysis.findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{{\"severity\":\"{}\",\"code\":\"{}\"", f.severity, f.code);
        if let Some(agent) = &f.agent {
            let _ = write!(out, ",\"agent\":\"{}\"", json_escape(agent));
        }
        let _ = write!(out, ",\"message\":\"{}\"", json_escape(&f.message));
        if let Some(w) = &f.witness {
            let _ = write!(out, ",\"witness\":\"{}\"", json_escape(w));
        }
        out.push('}');
    }
    out.push(']');
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use std::fmt::Write as _;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn audit_files(
    files: &[&str],
    json: bool,
    severity: botscope::robots::analysis::Severity,
    deny: Option<botscope::robots::analysis::Severity>,
) -> Result<(), String> {
    use botscope::robots::analysis::analyze;
    use std::fmt::Write as _;

    let mut denied = 0usize;
    let mut json_out = String::from("{\"files\":[");
    for (fi, file) in files.iter().enumerate() {
        let doc = RobotsTxt::parse(&read_file(file)?);
        let mut analysis = analyze(&doc);
        analysis.findings.retain(|f| f.severity >= severity);
        if let Some(threshold) = deny {
            denied += analysis.at_or_above(threshold);
        }
        if json {
            if fi > 0 {
                json_out.push(',');
            }
            let _ = write!(
                json_out,
                "{{\"file\":\"{}\",\"complete\":{},\"parse_warnings\":{},\"findings\":",
                json_escape(file),
                analysis.complete,
                doc.warnings.len()
            );
            findings_json(&mut json_out, &analysis);
            json_out.push('}');
            continue;
        }
        if files.len() > 1 {
            println!("== {file}");
        }
        for w in &doc.warnings {
            println!("parse: {w:?}");
        }
        if analysis.findings.is_empty() && doc.warnings.is_empty() {
            println!(
                "clean: {} group(s), {} rule(s), no findings",
                doc.groups.len(),
                doc.rule_count()
            );
        }
        for f in &analysis.findings {
            println!("{f}");
        }
    }
    if json {
        use std::fmt::Write as _;
        let _ = write!(json_out, "],\"denied\":{denied}}}");
        println!("{json_out}");
    }
    if denied > 0 {
        let threshold = deny.expect("denied implies a threshold");
        return Err(format!("audit: {denied} finding(s) at or above {threshold}"));
    }
    Ok(())
}

/// `audit --estate`: corpus analysis + transition proofs + digest
/// classification + admission replay.
fn audit_estate(
    cfg: &MonitorConfig,
    json: bool,
    severity: botscope::robots::analysis::Severity,
    deny: Option<botscope::robots::analysis::Severity>,
) -> Result<(), String> {
    use botscope::core::recheck::{coalesce_behavioral_windows, phase_check_matrix};
    use botscope::core::report::table7_behavioral;
    use botscope::monitor::{apply_digests, prime_estate};
    use botscope::robots::analysis::{analyze, classify_change, ChangeClass};
    use botscope::robots::PolicyEstate;
    use botscope::simnet::server::PolicyCorpus;
    use botscope::simnet::PolicyVersion;
    use std::fmt::Write as _;

    if cfg.sites == 0 || cfg.days == 0 || cfg.bots == 0 {
        return Err("--sites, --days and --bots must be at least 1".into());
    }

    // 1. Analyze every corpus policy.
    let corpus = PolicyCorpus::new();
    let started = std::time::Instant::now();
    let mut analyses = Vec::new();
    let mut denied = 0usize;
    for version in PolicyVersion::ALL {
        let mut analysis = analyze(corpus.doc(version));
        analysis.findings.retain(|f| f.severity >= severity);
        if let Some(threshold) = deny {
            denied += analysis.at_or_above(threshold);
        }
        analyses.push((version, analysis));
    }
    let analyze_ms = started.elapsed().as_secs_f64() * 1e3;

    // 2. Prove every ordered version transition cosmetic or behavioral.
    let mut behavioral_matrix = [[false; 4]; 4];
    let mut behavioral_transitions = 0usize;
    let mut cosmetic_transitions = 0usize;
    for from in PolicyVersion::ALL {
        for to in PolicyVersion::ALL {
            if from == to {
                continue;
            }
            let class = classify_change(corpus.doc(from), corpus.doc(to));
            behavioral_matrix[from.index()][to.index()] = class == ChangeClass::Behavioral;
            match class {
                ChangeClass::Behavioral => behavioral_transitions += 1,
                ChangeClass::Cosmetic => cosmetic_transitions += 1,
            }
        }
    }

    // 3. Run the monitor and classify its digests.
    let out = botscope::monitor::run(cfg);
    let behavioral_digests =
        out.changes.iter().filter(|c| c.class == ChangeClass::Behavioral).count();
    let cosmetic_digests = out.changes.len() - behavioral_digests;

    // 4. Replay the digests against a warmed admission estate.
    let mut estate = PolicyEstate::new();
    let deployment: Vec<(&str, PolicyVersion)> = out
        .site_windows
        .iter()
        .filter_map(|(site, spans)| spans.first().map(|&(v, _, _)| (site.as_str(), v)))
        .collect();
    prime_estate(&mut estate, deployment.iter().copied());
    for (site, _) in &deployment {
        estate.check(site, "GPTBot", "/");
    }
    let warmed = estate.compiled_count();
    let outcome = apply_digests(&mut estate, &out.changes);
    let obs = botscope::obs::global();
    obs.counter("robotstxt_compiles_total").add(estate.compiles());
    obs.counter("robotstxt_cache_hits_total").add(estate.cache_hits());
    obs.counter("audit_behavioral_digests_total").add(behavioral_digests as u64);
    obs.counter("audit_cosmetic_digests_total").add(cosmetic_digests as u64);

    // 5. Behavioral-only Table 7: coalesce windows across cosmetic swaps.
    let raw_spans: usize = out.site_windows.values().map(Vec::len).sum();
    let coalesced = coalesce_behavioral_windows(&out.site_windows, |from, to| {
        behavioral_matrix[from.index()][to.index()]
    });
    let coalesced_spans: usize = coalesced.values().map(Vec::len).sum();
    let matrix = phase_check_matrix(&out.table, &coalesced);

    if json {
        let mut j = String::from("{\"policies\":[");
        for (i, (version, analysis)) in analyses.iter().enumerate() {
            if i > 0 {
                j.push(',');
            }
            let _ = write!(
                j,
                "{{\"version\":\"{}\",\"complete\":{},\"findings\":",
                version.label(),
                analysis.complete
            );
            findings_json(&mut j, analysis);
            j.push('}');
        }
        let _ = write!(
            j,
            "],\"transitions\":{{\"behavioral\":{behavioral_transitions},\"cosmetic\":{cosmetic_transitions}}}"
        );
        let _ = write!(
            j,
            ",\"digests\":{{\"total\":{},\"behavioral\":{behavioral_digests},\"cosmetic\":{cosmetic_digests}}}",
            out.changes.len()
        );
        let _ = write!(
            j,
            ",\"admission\":{{\"sites\":{},\"warmed\":{warmed},\"dropped\":{},\"cosmetic_skips\":{}}}",
            deployment.len(),
            outcome.dropped,
            outcome.cosmetic_skips
        );
        let _ = write!(
            j,
            ",\"windows\":{{\"raw\":{raw_spans},\"coalesced\":{coalesced_spans}}},\"denied\":{denied}}}"
        );
        println!("{j}");
    } else {
        println!(
            "audit --estate: sites={} days={} seed={} scenario={:?} swap-every={}",
            cfg.sites, cfg.days, cfg.seed, cfg.scenario, cfg.swap_every
        );
        println!();
        println!("== corpus policies ({analyze_ms:.2} ms analyzer time)");
        for (version, analysis) in &analyses {
            if analysis.findings.is_empty() {
                println!("{}: clean", version.label());
            } else {
                println!("{}: {} finding(s)", version.label(), analysis.findings.len());
                for f in &analysis.findings {
                    println!("  {f}");
                }
            }
        }
        println!();
        println!(
            "== version transitions: {behavioral_transitions} behavioral, {cosmetic_transitions} cosmetic (of 12 ordered pairs)"
        );
        println!(
            "== monitored digests: {} total, {behavioral_digests} behavioral, {cosmetic_digests} cosmetic",
            out.changes.len()
        );
        println!(
            "== admission replay: {} site(s) primed, {warmed} artifact(s) warmed; dropped={} cosmetic_skips={}",
            deployment.len(),
            outcome.dropped,
            outcome.cosmetic_skips
        );
        println!(
            "== deployment windows: {raw_spans} span(s) -> {coalesced_spans} after cosmetic coalescing"
        );
        println!();
        print!("{}", table7_behavioral(&matrix));
    }

    if denied > 0 {
        let threshold = deny.expect("denied implies a threshold");
        return Err(format!("audit: {denied} finding(s) at or above {threshold}"));
    }
    Ok(())
}

fn cmd_diff(args: &[String]) -> Result<(), String> {
    let [old_file, new_file, agents @ ..] = args else {
        return Err("usage: botscope diff <old> <new> [agent]...".into());
    };
    let old = RobotsTxt::parse(&read_file(old_file)?);
    let new = RobotsTxt::parse(&read_file(new_file)?);

    let default_agents = ["Googlebot", "GPTBot", "ClaudeBot", "Bytespider", "anybot"];
    let agents: Vec<&str> = if agents.is_empty() {
        default_agents.to_vec()
    } else {
        agents.iter().map(String::as_str).collect()
    };

    // Probe over every rule path mentioned in either file, plus roots.
    let mut paths: Vec<String> = vec!["/".into()];
    for doc in [&old, &new] {
        for g in &doc.groups {
            for r in &g.rules {
                let raw = r.pattern.as_str().trim_end_matches(['*', '$']).to_string();
                if !raw.is_empty() && !paths.contains(&raw) {
                    paths.push(raw.clone());
                    paths.push(format!("{}probe", raw.trim_end_matches('/').to_owned() + "/"));
                }
            }
        }
    }
    let path_refs: Vec<&str> = paths.iter().map(String::as_str).collect();
    let changes = diff(&old, &new, &agents, &path_refs);
    let (tightened, loosened) = summarize(&changes);
    println!("{} change(s): {tightened} tightened, {loosened} loosened", changes.len());
    for c in &changes {
        println!("  {c:?}");
    }
    Ok(())
}

fn cmd_analyze(args: &[String]) -> Result<(), String> {
    let mut phase_report = false;
    let mut use_table = false;
    let mut input: Option<&str> = None;
    for arg in args {
        match arg.as_str() {
            "--phase-report" => phase_report = true,
            "--table" => use_table = true,
            other if other.starts_with("--") => {
                return Err(format!("unknown analyze flag {other:?} (see `botscope help`)"))
            }
            path => {
                if input.replace(path).is_some() {
                    return Err("analyze takes exactly one input (see `botscope help`)".into());
                }
            }
        }
    }
    let Some(file) = input else {
        return Err("usage: botscope analyze [--phase-report [--table]] <log.csv|log.bin|->".into());
    };
    if use_table && !phase_report {
        return Err("--table only applies together with --phase-report".into());
    }

    let mut reader: Box<dyn std::io::BufRead> = if file == "-" {
        Box::new(std::io::stdin().lock())
    } else {
        std::fs::File::open(file)
            .map(|f| Box::new(std::io::BufReader::new(f)) as Box<dyn std::io::BufRead>)
            .map_err(|e| format!("cannot read {file}: {e}"))?
    };
    // Sniff the columnar magic so either format works, even on a pipe.
    let is_binary = std::io::BufRead::fill_buf(&mut reader)
        .map_err(|e| format!("cannot read {file}: {e}"))?
        .starts_with(&botscope::weblog::colfmt::MAGIC);

    if phase_report {
        return analyze_phase_report(reader, is_binary, use_table);
    }

    // Stream the input into the interned table so multi-GB logs never
    // need a full in-memory copy of their text or their strings.
    let table = if is_binary {
        botscope::weblog::colfmt::read_table(reader).map_err(|e| e.to_string())?
    } else {
        codec::decode_table_read(reader).map_err(|e| e.to_string())?
    };
    println!("{} records", table.len());
    let logs = standardize_table(&table);
    println!(
        "{} known bots ({} records), {} anonymous records\n",
        logs.bots.len(),
        logs.known_bot_records(),
        logs.anonymous.len()
    );
    println!("{:<28} {:>8} {:>14}", "bot", "records", "pace>=30s");
    for view in logs.bots.values() {
        let counts = crawl_delay_counts_rows(&view.rows, CRAWL_DELAY_SECS);
        println!(
            "{:<28} {:>8} {:>14}",
            view.name,
            view.rows.len(),
            counts.ratio().map(|r| format!("{r:.3}")).unwrap_or_else(|| "-".into())
        );
    }
    let spoof = detect_rows(&table, &logs.per_bot_rows());
    if spoof.findings.is_empty() {
        println!("\nno spoofing signals (≥90% single-ASN dominance heuristic)");
    } else {
        println!("\npossible spoofing:");
        for f in &spoof.findings {
            println!(
                "  {}: {} requests outside {} ({:.1}% dominant)",
                f.bot,
                f.spoofed_requests,
                f.main_asn,
                f.main_share * 100.0
            );
        }
    }
    Ok(())
}

/// `analyze --phase-report`: reconstruct the paper's 8-week schedule
/// and print its experiment tables, either from the single-pass
/// streaming analyzer (the default, bounded memory) or from the
/// materialized in-memory engine (`--table`). Both paths print the
/// exact same bytes for the same log.
fn analyze_phase_report(
    reader: Box<dyn std::io::BufRead>,
    is_binary: bool,
    use_table: bool,
) -> Result<(), String> {
    use botscope::core::analyze::Experiment;
    use botscope::weblog::Timestamp;

    let start = Timestamp::from_date(2025, 1, 15);
    let schedule = botscope::simnet::PhaseSchedule::paper_schedule(
        start,
        botscope::simnet::site::EXPERIMENT_SITE,
    );
    let exp = if use_table {
        let table = if is_binary {
            botscope::weblog::colfmt::read_table(reader).map_err(|e| e.to_string())?
        } else {
            codec::decode_table_read(reader).map_err(|e| e.to_string())?
        };
        Experiment::analyze_table_with_threads(
            &table,
            &schedule,
            botscope::simnet::worker_threads(),
        )
    } else if is_binary {
        let mut stream =
            botscope::weblog::colfmt::BinReader::new(reader).map_err(|e| e.to_string())?;
        Experiment::analyze_stream(&mut stream, &schedule).map_err(|e| e.to_string())?
    } else {
        let mut stream =
            botscope::weblog::stream::CsvRowStream::new(reader).map_err(|e| e.to_string())?;
        Experiment::analyze_stream(&mut stream, &schedule).map_err(|e| e.to_string())?
    };
    write_output("-", |w| w.write_all(phase_report_text(&exp).as_bytes()))
}

/// The deterministic phase-study report: a pure function of the
/// analysis result, so streamed and materialized runs byte-compare.
fn phase_report_text(exp: &botscope::core::analyze::Experiment) -> String {
    use botscope::core::report;
    let mut r = String::new();
    for section in [
        report::table4(exp),
        report::table5(exp),
        report::table6(exp),
        report::table7(exp),
        report::table9(exp),
        report::table10(exp),
        report::figure9(exp, false),
        report::figure9(exp, true),
    ] {
        r.push_str(&section);
        if !section.ends_with('\n') {
            r.push('\n');
        }
        r.push('\n');
    }
    r
}

/// Run `f` against a buffered writer for `path` (`-` = stdout), then
/// flush and surface every error — including the final flush, which a
/// bare `BufWriter` drop would swallow. The single funnel for all data
/// output.
fn write_output<F>(path: &str, f: F) -> Result<(), String>
where
    F: FnOnce(&mut dyn std::io::Write) -> std::io::Result<()>,
{
    fn run<W: std::io::Write>(
        w: W,
        target: &str,
        f: impl FnOnce(&mut dyn std::io::Write) -> std::io::Result<()>,
    ) -> std::io::Result<()> {
        if manifest_active() {
            // Fingerprint the artifact as it streams out; the digest
            // adapter is pass-through, so the bytes never change.
            let mut w = botscope::obs::digest::DigestWriter::new(w);
            f(&mut w)?;
            w.flush()?;
            botscope::obs::global().record_output(target, w.bytes(), w.hex_digest());
            Ok(())
        } else {
            let mut w = w;
            f(&mut w)?;
            w.flush()
        }
    }
    let target = if path == "-" { "stdout" } else { path };
    let result = if path == "-" {
        let stdout = std::io::stdout();
        run(std::io::BufWriter::new(stdout.lock()), target, f)
    } else {
        std::fs::File::create(path).and_then(|file| run(std::io::BufWriter::new(file), target, f))
    };
    result.map_err(|e| format!("cannot write {target}: {e}"))
}

/// Pass-through writer that records its artifact `(target, bytes,
/// sha256)` into the registry when dropped — the owning sink decides
/// when writing ends, so Drop is the only reliable hook.
struct RecordingWriter {
    target: String,
    inner: botscope::obs::digest::DigestWriter<Box<dyn std::io::Write>>,
}

impl std::io::Write for RecordingWriter {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        std::io::Write::write(&mut self.inner, buf)
    }

    fn flush(&mut self) -> std::io::Result<()> {
        std::io::Write::flush(&mut self.inner)
    }
}

impl Drop for RecordingWriter {
    fn drop(&mut self) {
        botscope::obs::global().record_output(
            &self.target,
            self.inner.bytes(),
            self.inner.hex_digest(),
        );
    }
}

/// A boxed buffered writer for `path` (`-` = stdout), for sinks that
/// own their writer; the sink's `finish` flushes it.
fn writer_for(path: &str) -> Result<Box<dyn std::io::Write>, String> {
    let inner: Box<dyn std::io::Write> = if path == "-" {
        Box::new(std::io::BufWriter::new(std::io::stdout()))
    } else {
        std::fs::File::create(path)
            .map(|f| Box::new(std::io::BufWriter::new(f)) as Box<dyn std::io::Write>)
            .map_err(|e| format!("cannot write {path}: {e}"))?
    };
    if manifest_active() {
        let target = if path == "-" { "stdout" } else { path };
        Ok(Box::new(RecordingWriter {
            target: target.to_string(),
            inner: botscope::obs::digest::DigestWriter::new(inner),
        }))
    } else {
        Ok(inner)
    }
}

/// Write `table` as CSV to `path` (`-` = stdout).
fn write_csv(path: &str, table: &botscope::weblog::LogTable) -> Result<(), String> {
    write_output(path, |mut w| codec::write_table(&mut w, table))
}

/// Write `table` in the columnar binary format to `path` (`-` = stdout).
fn write_bin(path: &str, table: &botscope::weblog::LogTable) -> Result<(), String> {
    write_output(path, |mut w| botscope::weblog::colfmt::write_table(&mut w, table))
}

fn cmd_monitor(args: &[String]) -> Result<(), String> {
    let mut cfg = MonitorConfig::default();
    let mut out_path: Option<String> = None;
    let mut jsonl_path: Option<String> = None;
    let mut changes_path: Option<String> = None;
    let mut stream = false;

    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        if flag == "--stream" {
            stream = true;
            i += 1;
            continue;
        }
        let value =
            args.get(i + 1).ok_or_else(|| format!("{flag} needs a value (see `botscope help`)"))?;
        match flag {
            "--sites" => cfg.sites = value.parse().map_err(|_| format!("bad --sites {value}"))?,
            "--days" => cfg.days = value.parse().map_err(|_| format!("bad --days {value}"))?,
            "--seed" => cfg.seed = value.parse().map_err(|_| format!("bad --seed {value}"))?,
            "--bots" => cfg.bots = value.parse().map_err(|_| format!("bad --bots {value}"))?,
            "--ttl" => {
                cfg.ttl = TtlPolicy::parse(value)
                    .ok_or_else(|| format!("bad --ttl {value} (want \"spectrum\" or hours)"))?
            }
            "--scenario" => {
                cfg.scenario = ScenarioKind::parse(value).ok_or_else(|| {
                    format!("bad --scenario {value} (want stable|outages|flapping|redirects|mixed)")
                })?
            }
            "--swap-every" => {
                cfg.swap_every = value.parse().map_err(|_| format!("bad --swap-every {value}"))?
            }
            "--out" => out_path = Some(value.clone()),
            "--jsonl" => jsonl_path = Some(value.clone()),
            "--changes" => changes_path = Some(value.clone()),
            other => return Err(format!("unknown monitor flag {other:?} (see `botscope help`)")),
        }
        i += 2;
    }
    if cfg.sites == 0 || cfg.days == 0 || cfg.bots == 0 {
        return Err("--sites, --days and --bots must be at least 1".into());
    }

    if stream {
        return cmd_monitor_streaming(&cfg, &out_path, &jsonl_path, &changes_path);
    }

    let out = botscope::monitor::run(&cfg);

    if let Some(path) = &out_path {
        write_csv(path, &out.table)?;
    }
    if let Some(path) = &jsonl_path {
        let table = &out.table;
        write_output(path, |w| {
            for record in table.iter_records() {
                writeln!(w, "{}", botscope::weblog::jsonl::encode_record(&record))?;
            }
            Ok(())
        })?;
    }
    if let Some(path) = &changes_path {
        write_changes(path, &out.changes)?;
    }

    // Summary stats always go to stderr; the table-derived report
    // artifacts go to stdout unless stdout already carries data.
    let data_on_stdout =
        [&out_path, &jsonl_path, &changes_path].iter().any(|p| p.as_deref() == Some("-"));
    print_monitor_report(&cfg, &out, data_on_stdout)?;
    Ok(())
}

/// Write detected policy changes as CSV (`-` = stdout).
fn write_changes(path: &str, changes: &[botscope::monitor::ChangeDigest]) -> Result<(), String> {
    let mut body = String::from("site,at,from,to,observers,tightened,loosened,delay_changes\n");
    for c in changes {
        use std::fmt::Write as _;
        let _ = writeln!(
            body,
            "{},{},{},{},{},{},{},{}",
            c.site,
            botscope::weblog::Timestamp::from_unix(c.at).to_iso8601(),
            c.from.label(),
            c.to.label(),
            c.observers,
            c.tightened,
            c.loosened,
            c.delay_changes
        );
    }
    write_output(path, |w| w.write_all(body.as_bytes()))
}

/// The `--stream` path: fetch events flow through row sinks, and the
/// table-derived reports (re-check coverage, monitored Table 7) are
/// computed by a bounded-memory [`RecheckAccumulator`] riding the same
/// stream — the merged table never exists, yet stdout carries the same
/// report bytes as the materialized path.
///
/// [`RecheckAccumulator`]: botscope::core::recheck::RecheckAccumulator
fn cmd_monitor_streaming(
    cfg: &MonitorConfig,
    out_path: &Option<String>,
    jsonl_path: &Option<String>,
    changes_path: &Option<String>,
) -> Result<(), String> {
    use botscope::weblog::sink::{CsvSink, JsonlSink, RowSink};

    let mut csv = match out_path {
        Some(path) => {
            Some(CsvSink::new(writer_for(path)?).map_err(|e| format!("cannot write header: {e}"))?)
        }
        None => None,
    };
    let mut jsonl =
        jsonl_path.as_deref().map(|path| writer_for(path).map(JsonlSink::new)).transpose()?;
    // The accumulator needs each site's deployment windows *before*
    // streaming starts; they are a pure function of the config.
    let mut recheck = botscope::core::recheck::RecheckAccumulator::new(
        botscope::monitor::config_site_windows(cfg),
        cfg.horizon_end(),
    );
    let mut sinks: Vec<&mut dyn RowSink> = Vec::new();
    if let Some(sink) = csv.as_mut() {
        sinks.push(sink);
    }
    if let Some(sink) = jsonl.as_mut() {
        sinks.push(sink);
    }
    sinks.push(&mut recheck);

    let summary =
        botscope::monitor::run_streaming(cfg, botscope::simnet::worker_threads(), &mut sinks)
            .map_err(|e| format!("streaming write failed: {e}"))?;
    drop(sinks);

    if let Some(path) = changes_path {
        write_changes(path, &summary.changes)?;
    }

    // Summary stats are diagnostics: always stderr.
    use std::fmt::Write as _;
    let s = &summary.stats;
    let mut r = String::new();
    let _ = writeln!(
        r,
        "monitored {} sites x {} bots over {} days (seed {}, scenario {}, streamed)",
        cfg.sites,
        summary.bots.len(),
        cfg.days,
        cfg.seed,
        cfg.scenario.label()
    );
    let _ = writeln!(
        r,
        "{} rows streamed; {} agents, {} fetches: {} ok ({} revalidated, {} B saved), {} 4xx, {} 5xx, {} network",
        summary.rows,
        s.agents,
        s.fetches,
        s.success,
        s.revalidated,
        s.revalidated_bytes_saved,
        s.client_errors,
        s.server_errors,
        s.network_errors
    );
    let _ = writeln!(
        r,
        "policy changes: {} observations, {} distinct transitions",
        s.policy_changes_observed,
        summary.changes.len()
    );
    eprint!("{r}");

    let data_on_stdout =
        [out_path, jsonl_path, changes_path].iter().any(|p| p.as_deref() == Some("-"));
    let matrix = recheck.phase_rows();
    let agg = recheck.by_category();
    emit_monitor_report_tables(recheck.site_windows(), &matrix, &agg, data_on_stdout)
}

/// Monitor reporting, split per the output contract: run *stats* are
/// diagnostics and always go to stderr; the table-derived *reports*
/// (monitored Table 7, re-check coverage) are artifacts and go to
/// stdout through the [`write_output`] funnel — unless a data flag
/// already claimed stdout, in which case they fall back to stderr.
fn print_monitor_report(
    cfg: &MonitorConfig,
    out: &MonitorOutput,
    data_on_stdout: bool,
) -> Result<(), String> {
    use std::fmt::Write as _;
    let s = &out.stats;
    let mut r = String::new();
    let ttl = match cfg.ttl {
        TtlPolicy::Spectrum => "spectrum".to_string(),
        TtlPolicy::FixedHours(h) => format!("{h}h"),
    };
    let _ = writeln!(
        r,
        "monitored {} sites x {} bots over {} days (seed {}, scenario {}, ttl {})",
        cfg.sites,
        out.bots.len(),
        cfg.days,
        cfg.seed,
        cfg.scenario.label(),
        ttl
    );
    let _ = writeln!(r, "bots: {}", out.bots.join(", "));
    let _ = writeln!(
        r,
        "{} agents, {} fetches: {} ok ({} revalidated, {} B saved by 304s), {} 4xx, {} 5xx, {} network",
        s.agents,
        s.fetches,
        s.success,
        s.revalidated,
        s.revalidated_bytes_saved,
        s.client_errors,
        s.server_errors,
        s.network_errors
    );
    let mean_latency = s.latency_ms_sum.checked_div(s.fetches).unwrap_or(0);
    let _ = writeln!(
        r,
        "redirects: {} hops followed, {} chains capped at 5 hops; {} backoff retries; latency mean {} ms max {} ms",
        s.redirects_followed, s.redirects_capped, s.backoff_retries, mean_latency, s.latency_ms_max
    );
    let _ = writeln!(
        r,
        "policy changes: {} observations, {} distinct transitions",
        s.policy_changes_observed,
        out.changes.len()
    );
    for c in out.changes.iter().take(8) {
        let _ = writeln!(
            r,
            "  {} @{}: {} -> {} ({} observers, {} tightened, {} loosened, {} delay changes)",
            c.site,
            botscope::weblog::Timestamp::from_unix(c.at).to_iso8601(),
            c.from.label(),
            c.to.label(),
            c.observers,
            c.tightened,
            c.loosened,
            c.delay_changes
        );
    }
    if out.changes.len() > 8 {
        let _ = writeln!(r, "  ... and {} more", out.changes.len() - 8);
    }

    eprint!("{r}");

    let matrix = botscope::core::recheck::phase_check_matrix(&out.table, &out.site_windows);
    let profiles = profiles_from_table(&out.table, out.horizon_end);
    let agg = by_category(&profiles);
    emit_monitor_report_tables(&out.site_windows, &matrix, &agg, data_on_stdout)
}

/// Render the monitor's table-derived report artifacts — the monitored
/// Table 7 (only meaningful when the estate deploys swaps) and the §5.1
/// re-check coverage table — and emit them on stdout through the
/// [`write_output`] funnel (stderr when stdout already carries data).
/// Both the materialized and the streaming monitor paths funnel through
/// here, so their stdout bytes are identical by construction.
fn emit_monitor_report_tables(
    site_windows: &botscope::core::recheck::SiteVersionWindows,
    matrix: &[botscope::core::recheck::PhaseCheckRow],
    agg: &botscope::core::recheck::RecheckByCategory,
    data_on_stdout: bool,
) -> Result<(), String> {
    use std::fmt::Write as _;
    let mut report = String::new();

    // Table 7 digest windows from monitored logs: did each bot fetch
    // robots.txt on some site *while* each policy version was live?
    if site_windows.values().any(|w| w.len() > 1) {
        let _ = writeln!(report, "{}", botscope::core::report::table7_from_monitor(matrix));
    }

    // Figure 10 from *monitored* logs: share of checking bots per
    // category that re-checked within every window.
    if !agg.checking_bots.is_empty() {
        let _ =
            writeln!(report, "re-check coverage from monitored logs (share of bots per window):");
        let _ = writeln!(
            report,
            "  {:<24} {:>5} {:>6} {:>6} {:>6} {:>6} {:>6}",
            "category", "bots", "12h", "24h", "48h", "72h", "168h"
        );
        for (cat, n) in &agg.checking_bots {
            let mut line = format!("  {:<24} {:>5}", cat.to_string(), n);
            for h in [12u64, 24, 48, 72, 168] {
                let p = agg.proportions.get(&(*cat, h)).copied().unwrap_or(0.0);
                let _ = write!(line, " {p:>6.2}");
            }
            let _ = writeln!(report, "{line}");
        }
    }

    if report.is_empty() {
        return Ok(());
    }
    if data_on_stdout {
        eprint!("{report}");
        Ok(())
    } else {
        write_output("-", |w| w.write_all(report.as_bytes()))
    }
}

/// `simulate --coupled`: belief-driven generation plus attribution
/// scoring against served ground truth.
fn cmd_simulate_coupled(args: &[String]) -> Result<(), String> {
    use botscope::core::attribution::PolicyBasis;
    use botscope::monitor::{CoupledConfig, RefreshModel, ScenarioKind};

    let mut cfg = CoupledConfig::default();
    cfg.sim.scale = 0.05;
    let mut out_path: Option<String> = None;
    let mut basis = PolicyBasis::Served;

    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        let value =
            args.get(i + 1).ok_or_else(|| format!("{flag} needs a value (see `botscope help`)"))?;
        match flag {
            "--scale" => {
                cfg.sim.scale = value.parse().map_err(|_| format!("bad --scale {value}"))?
            }
            "--sites" => {
                cfg.sim.sites = value.parse().map_err(|_| format!("bad --sites {value}"))?
            }
            "--seed" => cfg.sim.seed = value.parse().map_err(|_| format!("bad --seed {value}"))?,
            "--scenario" => {
                cfg.scenario = ScenarioKind::parse(value).ok_or_else(|| {
                    format!("bad --scenario {value} (want stable|outages|flapping|redirects|mixed)")
                })?
            }
            "--refresh" => {
                cfg.refresh = RefreshModel::parse(value)
                    .ok_or_else(|| format!("bad --refresh {value} (want fleet|instant)"))?
            }
            "--out" => out_path = Some(value.clone()),
            "--basis" => {
                basis = match value.as_str() {
                    "believed" => PolicyBasis::Believed,
                    "served" => PolicyBasis::Served,
                    _ => return Err(format!("bad --basis {value} (want believed|served)")),
                }
            }
            other => return Err(format!("unknown --coupled flag {other:?} (see `botscope help`)")),
        }
        i += 2;
    }
    if !(cfg.sim.scale > 0.0 && cfg.sim.scale.is_finite()) {
        return Err(format!("scale must be a positive number, got {}", cfg.sim.scale));
    }
    if cfg.sim.sites == 0 || cfg.sim.sites > 64 {
        return Err("--sites must be between 1 and 64".into());
    }

    let out = botscope::monitor::run_coupled(&cfg);
    if let Some(path) = &out_path {
        write_csv(path, &out.sim.table)?;
    }

    use std::fmt::Write as _;
    let mut r = String::new();
    let _ = writeln!(
        r,
        "coupled run: {} records over {} sites (seed {}, scenario {}, refresh {})",
        out.sim.table.len(),
        cfg.sim.sites,
        cfg.sim.seed,
        cfg.scenario.label(),
        cfg.refresh.label()
    );
    let _ = writeln!(
        r,
        "beliefs: {} bots x {} sites, {} belief transitions",
        out.beliefs.bots.len(),
        out.beliefs.n_sites(),
        out.beliefs.total_transitions()
    );
    if let Some(s) = &out.monitor_stats {
        let _ = writeln!(
            r,
            "belief agents: {} fetches, {} ok ({} revalidated, {} B saved), {} 4xx, {} 5xx, {} network",
            s.fetches,
            s.success,
            s.revalidated,
            s.revalidated_bytes_saved,
            s.client_errors,
            s.server_errors,
            s.network_errors
        );
    }
    let corpus = botscope::simnet::server::PolicyCorpus::new();
    let counts = botscope::core::attribution::attribute_table(
        &out.sim.table,
        &out.beliefs,
        &out.served,
        &corpus,
    );
    let violating: usize = counts.values().filter(|c| c.violations_served() > 0).count();
    let _ = writeln!(
        r,
        "attribution: {} bots scored, {} with served-policy violations",
        counts.len(),
        violating
    );
    let _ = writeln!(r, "{}", botscope::core::report::attribution_report(&counts));

    // Tables 5/6/10 under the selected basis: served is the plain
    // analysis; believed drops the excused (stale-cache / fetch-
    // artifact) rows before scoring.
    let ctx = botscope::core::analyze::BeliefContext {
        beliefs: &out.beliefs,
        served: &out.served,
        corpus: &corpus,
    };
    let exp = botscope::core::analyze::Experiment::analyze_table_with_basis(
        &out.sim.table,
        &out.schedule,
        &ctx,
        basis,
        botscope::simnet::worker_threads(),
    );
    match basis {
        PolicyBasis::Served => {
            let _ = writeln!(r, "compliance tables (served basis):");
        }
        PolicyBasis::Believed => {
            let excused: u64 = counts.values().map(|c| c.excused()).sum();
            let _ =
                writeln!(r, "compliance tables (believed basis, {excused} excused rows dropped):");
        }
    }
    let _ = writeln!(r, "{}", botscope::core::report::table5(&exp));
    let _ = writeln!(r, "{}", botscope::core::report::table6(&exp));
    let _ = writeln!(r, "{}", botscope::core::report::table10(&exp));

    if out_path.as_deref() == Some("-") {
        eprint!("{r}");
    } else {
        print!("{r}");
    }
    Ok(())
}

/// On-disk log format selector for `simulate`.
#[derive(Clone, Copy, PartialEq)]
enum LogFormat {
    Csv,
    Bin,
}

impl LogFormat {
    fn parse(s: &str) -> Option<LogFormat> {
        match s {
            "csv" => Some(LogFormat::Csv),
            "bin" => Some(LogFormat::Bin),
            _ => None,
        }
    }
}

fn cmd_simulate(args: &[String]) -> Result<(), String> {
    if args.first().map(String::as_str) == Some("--coupled") {
        return cmd_simulate_coupled(&args[1..]);
    }
    let mut stream = false;
    let mut phase_study = false;
    let mut format = LogFormat::Csv;
    let mut positional: Vec<&str> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--stream" => stream = true,
            "--phase-study" => phase_study = true,
            "--format" => {
                let value = args
                    .get(i + 1)
                    .ok_or("--format needs a value (csv or bin, see `botscope help`)")?;
                format = LogFormat::parse(value)
                    .ok_or_else(|| format!("bad --format {value} (want csv or bin)"))?;
                i += 1;
            }
            other if other.starts_with("--") => {
                return Err(format!("unknown simulate flag {other:?} (see `botscope help`)"))
            }
            value => positional.push(value),
        }
        i += 1;
    }
    let days: u64 =
        positional.first().map(|s| s.parse().map_err(|_| "bad days")).transpose()?.unwrap_or(7);
    let scale: f64 =
        positional.get(1).map(|s| s.parse().map_err(|_| "bad scale")).transpose()?.unwrap_or(0.05);
    // "-" selects stdout explicitly, so a seed can be combined with piping.
    let out_path = positional.get(2).copied().unwrap_or("-");
    let seed: u64 = positional
        .get(3)
        .map(|s| s.parse().map_err(|_| "bad seed"))
        .transpose()?
        .unwrap_or_else(|| SimConfig::default().seed);
    if days == 0 {
        return Err("days must be at least 1".into());
    }
    if !(scale > 0.0 && scale.is_finite()) {
        return Err(format!("scale must be a positive number, got {scale}"));
    }

    let cfg = SimConfig { days, scale, seed, ..SimConfig::default() };
    cfg.assert_valid();

    if stream {
        return simulate_streaming(&cfg, phase_study, format, out_path);
    }

    let table = if phase_study {
        scenario::phase_study_table(&cfg).sim.table
    } else {
        scenario::full_study_table(&cfg).table
    };
    match format {
        LogFormat::Csv => write_csv(out_path, &table)?,
        LogFormat::Bin => write_bin(out_path, &table)?,
    }
    if out_path != "-" {
        eprintln!("{} records -> {out_path}", table.len());
    }
    Ok(())
}

/// `simulate --stream`: generation workers spill canonically sorted
/// runs to disk and the k-way merge streams rows straight into the
/// output sink, so peak memory is bounded by the string dictionaries
/// plus one run per worker — never the whole table.
fn simulate_streaming(
    cfg: &SimConfig,
    phase_study: bool,
    format: LogFormat,
    out_path: &str,
) -> Result<(), String> {
    use botscope::simnet::{worker_threads, StreamOptions};
    use botscope::weblog::colfmt::BinSink;
    use botscope::weblog::sink::{CsvSink, RowSink};

    let writer = writer_for(out_path)?;
    let threads = worker_threads();
    let opts = StreamOptions::default();
    let run =
        |sinks: &mut [&mut dyn RowSink]| -> Result<botscope::simnet::SimStreamOutput, String> {
            let result = if phase_study {
                scenario::phase_study_stream(cfg, threads, &opts, sinks).map(|out| out.sim)
            } else {
                scenario::full_study_stream(cfg, threads, &opts, sinks)
            };
            result.map_err(|e| format!("streaming simulate failed: {e}"))
        };
    // `merge_runs` calls `finish` on every sink, which flushes the
    // buffered writer; errors propagate through the result.
    let out = match format {
        LogFormat::Csv => {
            let mut sink = CsvSink::new(writer).map_err(|e| format!("cannot write header: {e}"))?;
            run(&mut [&mut sink as &mut dyn RowSink])?
        }
        LogFormat::Bin => {
            let mut sink = BinSink::new(writer).map_err(|e| format!("cannot write header: {e}"))?;
            run(&mut [&mut sink as &mut dyn RowSink])?
        }
    };
    if out_path != "-" {
        eprintln!("{} records -> {out_path} (streamed)", out.rows);
    }
    Ok(())
}

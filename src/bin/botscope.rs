//! The `botscope` command-line tool.
//!
//! Subcommands for the workflows a site operator or researcher runs
//! day-to-day, each a thin shell over the library:
//!
//! ```text
//! botscope check <robots.txt> <agent> <path>...   access decisions
//! botscope audit <robots.txt>                     lint a policy file
//! botscope diff <old> <new> [agent...]            what changed, for whom
//! botscope analyze <access.csv>                   per-bot compliance report
//! botscope simulate [days] [scale] [out.csv] [seed]   generate synthetic logs
//! botscope monitor [--sites N] [--days N] ...     run the monitoring daemon
//! ```

use std::process::ExitCode;

use botscope::core::metrics::{crawl_delay_counts_rows, CRAWL_DELAY_SECS};
use botscope::core::pipeline::standardize_table;
use botscope::core::recheck::{by_category, profiles_from_table};
use botscope::core::spoofdetect::detect_rows;
use botscope::monitor::daemon::{MonitorConfig, MonitorOutput, TtlPolicy};
use botscope::monitor::ScenarioKind;
use botscope::robots::audit::audit;
use botscope::robots::diff::{diff, summarize};
use botscope::robots::RobotsTxt;
use botscope::simnet::{scenario, SimConfig};
use botscope::weblog::codec;

const USAGE: &str = "botscope — robots.txt compliance toolkit

USAGE:
  botscope check <robots.txt> <agent> <path>...
      Print ALLOW/DENY (and crawl delay) for each path.
  botscope audit <robots.txt>
      Lint the policy: dead rules, contradictions, missing wildcard group.
  botscope diff <old-robots.txt> <new-robots.txt> [agent]...
      Report decision flips over the file's own rule paths.
      Agents default to: Googlebot GPTBot ClaudeBot Bytespider *anybot*.
  botscope analyze <access.csv>
      Standardize user agents and report per-bot pacing and spoof signals.
      CSV columns: useragent,timestamp,ip_hash,asn,sitename,uri_path,status,bytes,referer
  botscope simulate [days=7] [scale=0.05] [out.csv] [seed=9309]
      Generate a synthetic access log (stdout or out.csv; pass \"-\" for
      out.csv to pipe a seeded run to stdout). The same seed always
      yields a byte-identical log.
  botscope monitor [options]
      Run the robots.txt monitoring daemon over the virtual estate:
      one cache-backed fetch agent per (bot, site), scripted outages /
      redirect chains / policy swaps, change detection, and a §5.1
      re-check report computed from the monitored fetch log.
        --sites N        estate size (default 36)
        --days N         horizon in simulated days (default 46)
        --seed N         master seed (default 9309)
        --bots N         monitored bots, top of the fleet (default 6)
        --ttl P          re-check TTL: \"spectrum\" or hours (default spectrum)
        --scenario K     stable|outages|flapping|redirects|mixed (default mixed)
        --swap-every N   every Nth site swaps policies mid-study (default 4; 0 = off)
        --out FILE       write the fetch-event log as CSV (\"-\" = stdout)
        --jsonl FILE     write the fetch-event log as JSONL (\"-\" = stdout)
        --changes FILE   write detected policy changes as CSV (\"-\" = stdout)

ENVIRONMENT:
  BOTSCOPE_THREADS
      Worker threads for log generation (simulate) and the monitor's
      event-queue shards (monitor). Defaults to the machine's
      available parallelism; the output is byte-identical for a fixed
      seed at any thread count.
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("check") => cmd_check(&args[1..]),
        Some("audit") => cmd_audit(&args[1..]),
        Some("diff") => cmd_diff(&args[1..]),
        Some("analyze") => cmd_analyze(&args[1..]),
        Some("simulate") => cmd_simulate(&args[1..]),
        Some("monitor") => cmd_monitor(&args[1..]),
        Some("help") | Some("--help") | Some("-h") | None => {
            print!("{USAGE}");
            Ok(())
        }
        Some(other) => Err(format!("unknown subcommand {other:?}\n\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}

fn read_file(path: &str) -> Result<String, String> {
    std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))
}

fn cmd_check(args: &[String]) -> Result<(), String> {
    let [file, agent, paths @ ..] = args else {
        return Err("usage: botscope check <robots.txt> <agent> <path>...".into());
    };
    if paths.is_empty() {
        return Err("no paths given".into());
    }
    let doc = RobotsTxt::parse(&read_file(file)?);
    if !doc.warnings.is_empty() {
        eprintln!(
            "note: {} parse warning(s); run `botscope audit` for details",
            doc.warnings.len()
        );
    }
    if let Some(delay) = doc.crawl_delay(agent) {
        println!("crawl delay for {agent}: {delay}s");
    }
    for path in paths {
        let d = doc.is_allowed(agent, path);
        let verdict = if d.allow { "ALLOW" } else { "DENY " };
        match d.matched_rule {
            Some(rule) => println!("{verdict} {path}  ({}: {})", rule.verb.as_str(), rule.pattern),
            None => println!("{verdict} {path}  (default)"),
        }
    }
    Ok(())
}

fn cmd_audit(args: &[String]) -> Result<(), String> {
    let [file] = args else {
        return Err("usage: botscope audit <robots.txt>".into());
    };
    let doc = RobotsTxt::parse(&read_file(file)?);
    for w in &doc.warnings {
        println!("parse: {w:?}");
    }
    let findings = audit(&doc);
    if findings.is_empty() && doc.warnings.is_empty() {
        println!("clean: {} group(s), {} rule(s), no findings", doc.groups.len(), doc.rule_count());
    }
    for f in &findings {
        println!("audit: {f:?}");
    }
    Ok(())
}

fn cmd_diff(args: &[String]) -> Result<(), String> {
    let [old_file, new_file, agents @ ..] = args else {
        return Err("usage: botscope diff <old> <new> [agent]...".into());
    };
    let old = RobotsTxt::parse(&read_file(old_file)?);
    let new = RobotsTxt::parse(&read_file(new_file)?);

    let default_agents = ["Googlebot", "GPTBot", "ClaudeBot", "Bytespider", "anybot"];
    let agents: Vec<&str> = if agents.is_empty() {
        default_agents.to_vec()
    } else {
        agents.iter().map(String::as_str).collect()
    };

    // Probe over every rule path mentioned in either file, plus roots.
    let mut paths: Vec<String> = vec!["/".into()];
    for doc in [&old, &new] {
        for g in &doc.groups {
            for r in &g.rules {
                let raw = r.pattern.as_str().trim_end_matches(['*', '$']).to_string();
                if !raw.is_empty() && !paths.contains(&raw) {
                    paths.push(raw.clone());
                    paths.push(format!("{}probe", raw.trim_end_matches('/').to_owned() + "/"));
                }
            }
        }
    }
    let path_refs: Vec<&str> = paths.iter().map(String::as_str).collect();
    let changes = diff(&old, &new, &agents, &path_refs);
    let (tightened, loosened) = summarize(&changes);
    println!("{} change(s): {tightened} tightened, {loosened} loosened", changes.len());
    for c in &changes {
        println!("  {c:?}");
    }
    Ok(())
}

fn cmd_analyze(args: &[String]) -> Result<(), String> {
    let [file] = args else {
        return Err("usage: botscope analyze <access.csv>".into());
    };
    // Stream the CSV into the interned table so multi-GB logs never
    // need a full in-memory copy of their text or their strings.
    let reader = std::fs::File::open(file)
        .map(std::io::BufReader::new)
        .map_err(|e| format!("cannot read {file}: {e}"))?;
    let table = codec::decode_table_read(reader).map_err(|e| e.to_string())?;
    println!("{} records", table.len());
    let logs = standardize_table(&table);
    println!(
        "{} known bots ({} records), {} anonymous records\n",
        logs.bots.len(),
        logs.known_bot_records(),
        logs.anonymous.len()
    );
    println!("{:<28} {:>8} {:>14}", "bot", "records", "pace>=30s");
    for view in logs.bots.values() {
        let counts = crawl_delay_counts_rows(&view.rows, CRAWL_DELAY_SECS);
        println!(
            "{:<28} {:>8} {:>14}",
            view.name,
            view.rows.len(),
            counts.ratio().map(|r| format!("{r:.3}")).unwrap_or_else(|| "-".into())
        );
    }
    let spoof = detect_rows(&table, &logs.per_bot_rows());
    if spoof.findings.is_empty() {
        println!("\nno spoofing signals (≥90% single-ASN dominance heuristic)");
    } else {
        println!("\npossible spoofing:");
        for f in &spoof.findings {
            println!(
                "  {}: {} requests outside {} ({:.1}% dominant)",
                f.bot,
                f.spoofed_requests,
                f.main_asn,
                f.main_share * 100.0
            );
        }
    }
    Ok(())
}

/// Write `table` as CSV to `path` (`-` = stdout).
fn write_csv(path: &str, table: &botscope::weblog::LogTable) -> Result<(), String> {
    fn write<W: std::io::Write>(
        mut w: W,
        table: &botscope::weblog::LogTable,
    ) -> std::io::Result<()> {
        codec::write_table(&mut w, table)?;
        w.flush()
    }
    if path == "-" {
        let stdout = std::io::stdout();
        write(std::io::BufWriter::new(stdout.lock()), table)
            .map_err(|e| format!("cannot write to stdout: {e}"))
    } else {
        let file = std::fs::File::create(path).map_err(|e| format!("cannot write {path}: {e}"))?;
        write(std::io::BufWriter::new(file), table).map_err(|e| format!("cannot write {path}: {e}"))
    }
}

fn cmd_monitor(args: &[String]) -> Result<(), String> {
    let mut cfg = MonitorConfig::default();
    let mut out_path: Option<String> = None;
    let mut jsonl_path: Option<String> = None;
    let mut changes_path: Option<String> = None;

    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        let value =
            args.get(i + 1).ok_or_else(|| format!("{flag} needs a value (see `botscope help`)"))?;
        match flag {
            "--sites" => cfg.sites = value.parse().map_err(|_| format!("bad --sites {value}"))?,
            "--days" => cfg.days = value.parse().map_err(|_| format!("bad --days {value}"))?,
            "--seed" => cfg.seed = value.parse().map_err(|_| format!("bad --seed {value}"))?,
            "--bots" => cfg.bots = value.parse().map_err(|_| format!("bad --bots {value}"))?,
            "--ttl" => {
                cfg.ttl = TtlPolicy::parse(value)
                    .ok_or_else(|| format!("bad --ttl {value} (want \"spectrum\" or hours)"))?
            }
            "--scenario" => {
                cfg.scenario = ScenarioKind::parse(value).ok_or_else(|| {
                    format!("bad --scenario {value} (want stable|outages|flapping|redirects|mixed)")
                })?
            }
            "--swap-every" => {
                cfg.swap_every = value.parse().map_err(|_| format!("bad --swap-every {value}"))?
            }
            "--out" => out_path = Some(value.clone()),
            "--jsonl" => jsonl_path = Some(value.clone()),
            "--changes" => changes_path = Some(value.clone()),
            other => return Err(format!("unknown monitor flag {other:?} (see `botscope help`)")),
        }
        i += 2;
    }
    if cfg.sites == 0 || cfg.days == 0 || cfg.bots == 0 {
        return Err("--sites, --days and --bots must be at least 1".into());
    }

    let out = botscope::monitor::run(&cfg);

    if let Some(path) = &out_path {
        write_csv(path, &out.table)?;
    }
    if let Some(path) = &jsonl_path {
        fn write_jsonl<W: std::io::Write>(
            mut w: W,
            table: &botscope::weblog::LogTable,
        ) -> std::io::Result<()> {
            for record in table.iter_records() {
                writeln!(w, "{}", botscope::weblog::jsonl::encode_record(&record))?;
            }
            w.flush()
        }
        let result = if path == "-" {
            let stdout = std::io::stdout();
            write_jsonl(std::io::BufWriter::new(stdout.lock()), &out.table)
        } else {
            std::fs::File::create(path)
                .and_then(|f| write_jsonl(std::io::BufWriter::new(f), &out.table))
        };
        result.map_err(|e| format!("cannot write {path}: {e}"))?;
    }
    if let Some(path) = &changes_path {
        let mut body = String::from("site,at,from,to,observers,tightened,loosened,delay_changes\n");
        for c in &out.changes {
            use std::fmt::Write as _;
            let _ = writeln!(
                body,
                "{},{},{},{},{},{},{},{}",
                c.site,
                botscope::weblog::Timestamp::from_unix(c.at).to_iso8601(),
                c.from.label(),
                c.to.label(),
                c.observers,
                c.tightened,
                c.loosened,
                c.delay_changes
            );
        }
        if path == "-" {
            print!("{body}");
        } else {
            std::fs::write(path, body).map_err(|e| format!("cannot write {path}: {e}"))?;
        }
    }

    // The human report goes to stdout unless stdout carries data.
    let data_on_stdout =
        [&out_path, &jsonl_path, &changes_path].iter().any(|p| p.as_deref() == Some("-"));
    print_monitor_report(&cfg, &out, data_on_stdout);
    Ok(())
}

fn print_monitor_report(cfg: &MonitorConfig, out: &MonitorOutput, to_stderr: bool) {
    use std::fmt::Write as _;
    let s = &out.stats;
    let mut r = String::new();
    let ttl = match cfg.ttl {
        TtlPolicy::Spectrum => "spectrum".to_string(),
        TtlPolicy::FixedHours(h) => format!("{h}h"),
    };
    let _ = writeln!(
        r,
        "monitored {} sites x {} bots over {} days (seed {}, scenario {}, ttl {})",
        cfg.sites,
        out.bots.len(),
        cfg.days,
        cfg.seed,
        cfg.scenario.label(),
        ttl
    );
    let _ = writeln!(r, "bots: {}", out.bots.join(", "));
    let _ = writeln!(
        r,
        "{} agents, {} fetches: {} ok ({} revalidated), {} 4xx, {} 5xx, {} network",
        s.agents,
        s.fetches,
        s.success,
        s.revalidated,
        s.client_errors,
        s.server_errors,
        s.network_errors
    );
    let mean_latency = s.latency_ms_sum.checked_div(s.fetches).unwrap_or(0);
    let _ = writeln!(
        r,
        "redirects: {} hops followed, {} chains capped at 5 hops; {} backoff retries; latency mean {} ms max {} ms",
        s.redirects_followed, s.redirects_capped, s.backoff_retries, mean_latency, s.latency_ms_max
    );
    let _ = writeln!(
        r,
        "policy changes: {} observations, {} distinct transitions",
        s.policy_changes_observed,
        out.changes.len()
    );
    for c in out.changes.iter().take(8) {
        let _ = writeln!(
            r,
            "  {} @{}: {} -> {} ({} observers, {} tightened, {} loosened, {} delay changes)",
            c.site,
            botscope::weblog::Timestamp::from_unix(c.at).to_iso8601(),
            c.from.label(),
            c.to.label(),
            c.observers,
            c.tightened,
            c.loosened,
            c.delay_changes
        );
    }
    if out.changes.len() > 8 {
        let _ = writeln!(r, "  ... and {} more", out.changes.len() - 8);
    }

    // Figure 10 from *monitored* logs: share of checking bots per
    // category that re-checked within every window.
    let profiles = profiles_from_table(&out.table, out.horizon_end);
    let agg = by_category(&profiles);
    if !agg.checking_bots.is_empty() {
        let _ = writeln!(r, "re-check coverage from monitored logs (share of bots per window):");
        let _ = writeln!(
            r,
            "  {:<24} {:>5} {:>6} {:>6} {:>6} {:>6} {:>6}",
            "category", "bots", "12h", "24h", "48h", "72h", "168h"
        );
        for (cat, n) in &agg.checking_bots {
            let mut line = format!("  {:<24} {:>5}", cat.to_string(), n);
            for h in [12u64, 24, 48, 72, 168] {
                let p = agg.proportions.get(&(*cat, h)).copied().unwrap_or(0.0);
                let _ = write!(line, " {p:>6.2}");
            }
            let _ = writeln!(r, "{line}");
        }
    }

    if to_stderr {
        eprint!("{r}");
    } else {
        print!("{r}");
    }
}

fn cmd_simulate(args: &[String]) -> Result<(), String> {
    let days: u64 =
        args.first().map(|s| s.parse().map_err(|_| "bad days")).transpose()?.unwrap_or(7);
    let scale: f64 =
        args.get(1).map(|s| s.parse().map_err(|_| "bad scale")).transpose()?.unwrap_or(0.05);
    // "-" selects stdout explicitly, so a seed can be combined with piping.
    let out_path = args.get(2).filter(|p| p.as_str() != "-");
    let seed: u64 = args
        .get(3)
        .map(|s| s.parse().map_err(|_| "bad seed"))
        .transpose()?
        .unwrap_or_else(|| SimConfig::default().seed);
    if days == 0 {
        return Err("days must be at least 1".into());
    }
    if !(scale > 0.0 && scale.is_finite()) {
        return Err(format!("scale must be a positive number, got {scale}"));
    }

    let cfg = SimConfig { days, scale, seed, ..SimConfig::default() };
    cfg.assert_valid();
    let out = scenario::full_study_table(&cfg);
    match out_path {
        Some(path) => {
            write_csv(path, &out.table)?;
            eprintln!("{} records -> {path}", out.table.len());
        }
        None => write_csv("-", &out.table)?,
    }
    Ok(())
}

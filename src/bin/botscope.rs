//! The `botscope` command-line tool.
//!
//! Subcommands for the workflows a site operator or researcher runs
//! day-to-day, each a thin shell over the library:
//!
//! ```text
//! botscope check <robots.txt> <agent> <path>...   access decisions
//! botscope audit <robots.txt>                     lint a policy file
//! botscope diff <old> <new> [agent...]            what changed, for whom
//! botscope analyze <access.csv>                   per-bot compliance report
//! botscope simulate [days] [scale] [out.csv] [seed]   generate synthetic logs
//! ```

use std::process::ExitCode;

use botscope::core::metrics::{crawl_delay_counts_rows, CRAWL_DELAY_SECS};
use botscope::core::pipeline::standardize_table;
use botscope::core::spoofdetect::detect_rows;
use botscope::robots::audit::audit;
use botscope::robots::diff::{diff, summarize};
use botscope::robots::RobotsTxt;
use botscope::simnet::{scenario, SimConfig};
use botscope::weblog::codec;

const USAGE: &str = "botscope — robots.txt compliance toolkit

USAGE:
  botscope check <robots.txt> <agent> <path>...
      Print ALLOW/DENY (and crawl delay) for each path.
  botscope audit <robots.txt>
      Lint the policy: dead rules, contradictions, missing wildcard group.
  botscope diff <old-robots.txt> <new-robots.txt> [agent]...
      Report decision flips over the file's own rule paths.
      Agents default to: Googlebot GPTBot ClaudeBot Bytespider *anybot*.
  botscope analyze <access.csv>
      Standardize user agents and report per-bot pacing and spoof signals.
      CSV columns: useragent,timestamp,ip_hash,asn,sitename,uri_path,status,bytes,referer
  botscope simulate [days=7] [scale=0.05] [out.csv] [seed=9309]
      Generate a synthetic access log (stdout or out.csv; pass \"-\" for
      out.csv to pipe a seeded run to stdout). The same seed always
      yields a byte-identical log.

ENVIRONMENT:
  BOTSCOPE_THREADS
      Worker threads for log generation (simulate). Defaults to the
      machine's available parallelism; the output is byte-identical
      for a fixed seed at any thread count.
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("check") => cmd_check(&args[1..]),
        Some("audit") => cmd_audit(&args[1..]),
        Some("diff") => cmd_diff(&args[1..]),
        Some("analyze") => cmd_analyze(&args[1..]),
        Some("simulate") => cmd_simulate(&args[1..]),
        Some("help") | Some("--help") | Some("-h") | None => {
            print!("{USAGE}");
            Ok(())
        }
        Some(other) => Err(format!("unknown subcommand {other:?}\n\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}

fn read_file(path: &str) -> Result<String, String> {
    std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))
}

fn cmd_check(args: &[String]) -> Result<(), String> {
    let [file, agent, paths @ ..] = args else {
        return Err("usage: botscope check <robots.txt> <agent> <path>...".into());
    };
    if paths.is_empty() {
        return Err("no paths given".into());
    }
    let doc = RobotsTxt::parse(&read_file(file)?);
    if !doc.warnings.is_empty() {
        eprintln!(
            "note: {} parse warning(s); run `botscope audit` for details",
            doc.warnings.len()
        );
    }
    if let Some(delay) = doc.crawl_delay(agent) {
        println!("crawl delay for {agent}: {delay}s");
    }
    for path in paths {
        let d = doc.is_allowed(agent, path);
        let verdict = if d.allow { "ALLOW" } else { "DENY " };
        match d.matched_rule {
            Some(rule) => println!("{verdict} {path}  ({}: {})", rule.verb.as_str(), rule.pattern),
            None => println!("{verdict} {path}  (default)"),
        }
    }
    Ok(())
}

fn cmd_audit(args: &[String]) -> Result<(), String> {
    let [file] = args else {
        return Err("usage: botscope audit <robots.txt>".into());
    };
    let doc = RobotsTxt::parse(&read_file(file)?);
    for w in &doc.warnings {
        println!("parse: {w:?}");
    }
    let findings = audit(&doc);
    if findings.is_empty() && doc.warnings.is_empty() {
        println!("clean: {} group(s), {} rule(s), no findings", doc.groups.len(), doc.rule_count());
    }
    for f in &findings {
        println!("audit: {f:?}");
    }
    Ok(())
}

fn cmd_diff(args: &[String]) -> Result<(), String> {
    let [old_file, new_file, agents @ ..] = args else {
        return Err("usage: botscope diff <old> <new> [agent]...".into());
    };
    let old = RobotsTxt::parse(&read_file(old_file)?);
    let new = RobotsTxt::parse(&read_file(new_file)?);

    let default_agents = ["Googlebot", "GPTBot", "ClaudeBot", "Bytespider", "anybot"];
    let agents: Vec<&str> = if agents.is_empty() {
        default_agents.to_vec()
    } else {
        agents.iter().map(String::as_str).collect()
    };

    // Probe over every rule path mentioned in either file, plus roots.
    let mut paths: Vec<String> = vec!["/".into()];
    for doc in [&old, &new] {
        for g in &doc.groups {
            for r in &g.rules {
                let raw = r.pattern.as_str().trim_end_matches(['*', '$']).to_string();
                if !raw.is_empty() && !paths.contains(&raw) {
                    paths.push(raw.clone());
                    paths.push(format!("{}probe", raw.trim_end_matches('/').to_owned() + "/"));
                }
            }
        }
    }
    let path_refs: Vec<&str> = paths.iter().map(String::as_str).collect();
    let changes = diff(&old, &new, &agents, &path_refs);
    let (tightened, loosened) = summarize(&changes);
    println!("{} change(s): {tightened} tightened, {loosened} loosened", changes.len());
    for c in &changes {
        println!("  {c:?}");
    }
    Ok(())
}

fn cmd_analyze(args: &[String]) -> Result<(), String> {
    let [file] = args else {
        return Err("usage: botscope analyze <access.csv>".into());
    };
    // Stream the CSV into the interned table so multi-GB logs never
    // need a full in-memory copy of their text or their strings.
    let reader = std::fs::File::open(file)
        .map(std::io::BufReader::new)
        .map_err(|e| format!("cannot read {file}: {e}"))?;
    let table = codec::decode_table_read(reader).map_err(|e| e.to_string())?;
    println!("{} records", table.len());
    let logs = standardize_table(&table);
    println!(
        "{} known bots ({} records), {} anonymous records\n",
        logs.bots.len(),
        logs.known_bot_records(),
        logs.anonymous.len()
    );
    println!("{:<28} {:>8} {:>14}", "bot", "records", "pace>=30s");
    for view in logs.bots.values() {
        let counts = crawl_delay_counts_rows(&view.rows, CRAWL_DELAY_SECS);
        println!(
            "{:<28} {:>8} {:>14}",
            view.name,
            view.rows.len(),
            counts.ratio().map(|r| format!("{r:.3}")).unwrap_or_else(|| "-".into())
        );
    }
    let spoof = detect_rows(&table, &logs.per_bot_rows());
    if spoof.findings.is_empty() {
        println!("\nno spoofing signals (≥90% single-ASN dominance heuristic)");
    } else {
        println!("\npossible spoofing:");
        for f in &spoof.findings {
            println!(
                "  {}: {} requests outside {} ({:.1}% dominant)",
                f.bot,
                f.spoofed_requests,
                f.main_asn,
                f.main_share * 100.0
            );
        }
    }
    Ok(())
}

fn cmd_simulate(args: &[String]) -> Result<(), String> {
    let days: u64 =
        args.first().map(|s| s.parse().map_err(|_| "bad days")).transpose()?.unwrap_or(7);
    let scale: f64 =
        args.get(1).map(|s| s.parse().map_err(|_| "bad scale")).transpose()?.unwrap_or(0.05);
    // "-" selects stdout explicitly, so a seed can be combined with piping.
    let out_path = args.get(2).filter(|p| p.as_str() != "-");
    let seed: u64 = args
        .get(3)
        .map(|s| s.parse().map_err(|_| "bad seed"))
        .transpose()?
        .unwrap_or_else(|| SimConfig::default().seed);
    if days == 0 {
        return Err("days must be at least 1".into());
    }
    if !(scale > 0.0 && scale.is_finite()) {
        return Err(format!("scale must be a positive number, got {scale}"));
    }

    let cfg = SimConfig { days, scale, seed, ..SimConfig::default() };
    cfg.assert_valid();
    let out = scenario::full_study_table(&cfg);
    match out_path {
        Some(path) => {
            let file =
                std::fs::File::create(path).map_err(|e| format!("cannot write {path}: {e}"))?;
            let mut w = std::io::BufWriter::new(file);
            codec::write_table(&mut w, &out.table)
                .and_then(|()| std::io::Write::flush(&mut w))
                .map_err(|e| format!("cannot write {path}: {e}"))?;
            eprintln!("{} records -> {path}", out.table.len());
        }
        None => {
            let stdout = std::io::stdout();
            let mut w = std::io::BufWriter::new(stdout.lock());
            codec::write_table(&mut w, &out.table)
                .and_then(|()| std::io::Write::flush(&mut w))
                .map_err(|e| format!("cannot write to stdout: {e}"))?;
        }
    }
    Ok(())
}

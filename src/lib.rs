//! # botscope
//!
//! A toolkit for measuring web-scraper compliance with `robots.txt`
//! directives — a full, from-scratch reproduction of *"Scrapers
//! Selectively Respect robots.txt Directives: Evidence From a Large-Scale
//! Empirical Study"* (IMC '25).
//!
//! This facade crate re-exports the whole workspace:
//!
//! | Module | Crate | What it gives you |
//! |---|---|---|
//! | [`robots`] | `botscope-robotstxt` | RFC 9309 parser/matcher, crawl-delay & sitemap extensions, fetch semantics, builder |
//! | [`useragent`] | `botscope-useragent` | bot registry (~130 crawlers), UA standardization, categories |
//! | [`asn`] | `botscope-asn` | whois directory, spoofing catalog, simulated IP allocation |
//! | [`weblog`] | `botscope-weblog` | access-record schema, civil time, IP hashing, CSV codec, sessionization |
//! | [`stats`] | `botscope-stats` | two-proportion z-test, normal distribution, ECDFs, window coverage |
//! | [`simnet`] | `botscope-simnet` | deterministic synthetic traffic generator (the data substrate) |
//! | [`core`] | `botscope-core` | the compliance-measurement pipeline and report generation |
//! | [`monitor`] | `botscope-monitor` | virtual robots.txt transport + live monitoring daemon |
//! | [`obs`] | `botscope-obs` | flight-recorder telemetry: counters, spans, run manifests |
//!
//! ## Quickstart: is this bot allowed?
//!
//! ```
//! use botscope::robots::RobotsTxt;
//!
//! let policy = RobotsTxt::parse("User-agent: *\nDisallow: /secure/*\nCrawl-delay: 30\n");
//! assert!(!policy.is_allowed("GPTBot", "/secure/grades").allow);
//! assert!(policy.is_allowed("GPTBot", "/courses").allow);
//! assert_eq!(policy.crawl_delay("GPTBot"), Some(30.0));
//! ```
//!
//! ## Quickstart: measure compliance from logs
//!
//! ```
//! use botscope::core::Experiment;
//! use botscope::simnet::SimConfig;
//!
//! // Generate the paper's 8-week robots.txt experiment synthetically and
//! // measure scraper compliance back out of the logs.
//! let cfg = SimConfig { scale: 0.02, sites: 4, ..SimConfig::default() };
//! let experiment = Experiment::run(&cfg);
//! let table5 = experiment.category_table();
//! assert!(!table5.rows.is_empty());
//! ```
//!
//! See `examples/` for runnable scenarios and `crates/bench/src/bin/` for
//! the binaries that regenerate every table and figure of the paper.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

// Run the README's Rust code blocks as doctests so the documented
// quickstart can never drift from the actual API.
#[cfg(doctest)]
#[doc = include_str!("../README.md")]
pub struct ReadmeDoctests;

/// RFC 9309 Robots Exclusion Protocol implementation.
pub mod robots {
    pub use botscope_robotstxt::*;
}

/// User-agent intelligence: registry, standardization, categories.
pub mod useragent {
    pub use botscope_useragent::*;
}

/// Autonomous-system intelligence: whois directory, spoof catalog.
pub mod asn {
    pub use botscope_asn::*;
}

/// Web-log substrate: records, time, hashing, sessions, codecs.
pub mod weblog {
    pub use botscope_weblog::*;
}

/// Statistics: z-tests, normal distribution, ECDFs, window coverage.
pub mod stats {
    pub use botscope_stats::*;
}

/// Deterministic synthetic traffic generation.
pub mod simnet {
    pub use botscope_simnet::*;
}

/// The compliance-measurement pipeline (the paper's contribution).
pub mod core {
    pub use botscope_core::*;
}

/// Virtual-network transport and robots.txt monitoring daemon.
pub mod monitor {
    pub use botscope_monitor::*;
}

/// Flight-recorder telemetry: counters, spans, manifests, exporters.
pub mod obs {
    pub use botscope_obs::*;
}

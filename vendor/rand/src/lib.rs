//! Self-contained stand-in for the subset of the `rand` 0.8 API that the
//! botscope workspace uses. The build image has no access to crates.io, so
//! the workspace vendors this crate by path; it preserves the call-site API
//! (`StdRng::seed_from_u64`, `Rng::gen_range`, `Rng::gen_bool`) while
//! implementing its own deterministic generator.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — high quality
//! for simulation workloads, byte-for-byte reproducible for a given seed,
//! and dependency-free. It is **not** cryptographically secure; nothing in
//! botscope needs a CSPRNG (the only security-adjacent primitive, IP
//! hashing, lives in `botscope-weblog::iphash`).

#![forbid(unsafe_code)]

use core::ops::Range;

/// Low-level entropy source: everything derives from `next_u64`.
pub trait RngCore {
    /// Produce the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Produce the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// User-facing sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore + Sized {
    /// Sample uniformly from a half-open range, e.g. `rng.gen_range(0..10)`
    /// or `rng.gen_range(0.25..0.75)`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// Return `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        unit_f64(self.next_u64()) < p
    }
}

impl<T: RngCore + Sized> Rng for T {}

/// Seeding interface, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Build a generator from a single `u64`, expanding it with SplitMix64.
    fn seed_from_u64(state: u64) -> Self;
}

/// Map 64 random bits to a uniform `f64` in `[0, 1)` using the top 53 bits.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types that can be drawn uniformly from a range. Keeping the blanket
/// `SampleRange` impl generic over `T: SampleUniform` ties the inferred
/// sample type to the range's element type, exactly like upstream rand —
/// `t += rng.gen_range(5..120)` infers `u64` from `t`, not `i32`.
pub trait SampleUniform: Sized {
    /// Uniform draw from `[lo, hi)`.
    fn sample_range<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

/// Ranges that can be sampled uniformly; the `T` parameter drives inference
/// at `gen_range` call sites.
pub trait SampleRange<T> {
    /// Draw one uniform sample from the range.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_range(self.start, self.end, rng)
    }
}

macro_rules! impl_sample_uniform_uint {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                let span = (hi as u128) - (lo as u128);
                // Modulo bias is < 2^-64 per draw for every span the
                // workspace uses; acceptable for simulation sampling.
                let offset = (rng.next_u64() as u128) % span;
                (lo as u128 + offset) as $t
            }
        }
    )*};
}

impl_sample_uniform_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                let span = (hi as i128 - lo as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (lo as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                lo + (unit_f64(rng.next_u64()) as $t) * (hi - lo)
            }
        }
    )*};
}

impl_sample_uniform_float!(f32, f64);

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn splitmix64(state: &mut u64) -> u64 {
            *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = *state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = Self::splitmix64(&mut state);
            }
            // A zero state would be a fixed point; SplitMix64 cannot emit
            // four zeros for any seed, but keep the guard explicit.
            if s == [0; 4] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(3u64..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(-5i32..5);
            assert!((-5..5).contains(&y));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let u = rng.gen_range(0usize..4);
            assert!(u < 4);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(11);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4_000..6_000).contains(&heads), "{heads}");
    }
}

//! Self-contained stand-in for the subset of the `criterion` API that the
//! botscope benches use. The build image has no access to crates.io, so
//! the workspace vendors this crate by path.
//!
//! Call sites keep the upstream surface (`criterion_group!`,
//! `criterion_main!`, `Criterion::bench_function`, benchmark groups with
//! throughput and parametrized inputs, `iter_batched`, `black_box`).
//! Instead of upstream's statistical engine this harness runs an adaptive
//! warm-up, measures a fixed wall-clock budget per benchmark, and prints
//! mean ns/iter plus derived throughput — enough to compare hot paths
//! run-over-run and to keep `cargo bench` working offline. Expect more
//! run-to-run noise than real criterion; commit trends, not single runs.
//!
//! Two harness extensions:
//!
//! * `cargo bench -- --test` runs every benchmark exactly once (upstream's
//!   smoke semantics) — CI uses it as a cheap bench-rot gate;
//! * `BOTSCOPE_BENCH_JSON=<path>` writes the run's results as a JSON array
//!   of schema-v2 lines (label, mean_ns, iters, throughput_per_iter,
//!   host_cores, manifest_digest), which is how the committed
//!   `BENCH_*.json` baselines are produced. The line format is owned by
//!   `botscope-obs::bench`; this crate re-implements it locally so it
//!   stays dependency-free, and a pinning test holds the two renderers
//!   byte-identical.

#![forbid(unsafe_code)]

use std::fmt::{self, Display};
use std::sync::Mutex;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Wall-clock budget spent measuring each benchmark after warm-up.
const MEASURE_BUDGET: Duration = Duration::from_millis(200);
/// Iterations per timing batch are tuned so one batch costs about this.
const BATCH_TARGET: Duration = Duration::from_millis(10);

/// Whether `--test` was passed (upstream semantics: run every benchmark
/// once as a smoke test instead of measuring). CI uses
/// `cargo bench -- --test` as a cheap bench-rot gate.
fn quick_mode() -> bool {
    std::env::args().any(|a| a == "--test")
}

/// One measured result held until `flush_json` renders the whole file
/// (the manifest digest covers every label, so rendering is deferred).
struct JsonResult {
    label: String,
    mean_ns: f64,
    iters: u64,
    throughput_per_iter: f64,
}

/// Results accumulated for the optional JSON baseline sink.
static JSON_RESULTS: Mutex<Vec<JsonResult>> = Mutex::new(Vec::new());

/// BENCH line schema version; must match `botscope-obs::bench`.
pub const BENCH_SCHEMA_VERSION: u32 = 2;

/// Host logical core count (1 when undetectable).
pub fn host_cores() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// FNV-1a 64-bit over `data`.
pub fn fnv1a64(data: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in data {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Mini-manifest digest over the sorted labels, core count, and the
/// botscope run-shape environment. Local copy of
/// `botscope-obs::bench::mini_manifest_digest` — keep byte-identical.
pub fn mini_manifest_digest(labels: &[String], host_cores: usize) -> String {
    let mut sorted: Vec<&str> = labels.iter().map(String::as_str).collect();
    sorted.sort_unstable();
    let mut blob = sorted.join("\n");
    let env = |k: &str| std::env::var(k).unwrap_or_else(|_| "-".to_string());
    use std::fmt::Write as _;
    let _ = write!(
        blob,
        "\n|cores={host_cores}|seed={}|scale={}|threads={}",
        env("BOTSCOPE_SEED"),
        env("BOTSCOPE_SCALE"),
        env("BOTSCOPE_THREADS")
    );
    format!("fnv64:{:016x}", fnv1a64(blob.as_bytes()))
}

/// Render one schema-v2 line. Local copy of
/// `botscope-obs::bench::render_line` — keep byte-identical.
fn render_line_v2(r: &JsonResult, host_cores: usize, manifest_digest: &str) -> String {
    format!(
        "  {{\"schema_version\": {BENCH_SCHEMA_VERSION}, \"label\": \"{}\", \"mean_ns\": {:.1}, \"iters\": {}, \"throughput_per_iter\": {:.1}, \"host_cores\": {host_cores}, \"manifest_digest\": \"{manifest_digest}\"}}",
        json_escape(&r.label),
        r.mean_ns,
        r.iters,
        r.throughput_per_iter,
    )
}

/// Write accumulated results as a JSON array to `$BOTSCOPE_BENCH_JSON`,
/// if set. Called by `criterion_main!` after all groups run; baselines
/// are committed as `BENCH_<bench>.json` for run-over-run comparison.
pub fn flush_json() {
    let Ok(path) = std::env::var("BOTSCOPE_BENCH_JSON") else { return };
    let results = JSON_RESULTS.lock().expect("no poisoned benches");
    let cores = host_cores();
    let labels: Vec<String> = results.iter().map(|r| r.label.clone()).collect();
    let digest = mini_manifest_digest(&labels, cores);
    let lines: Vec<String> = results.iter().map(|r| render_line_v2(r, cores, &digest)).collect();
    let body = format!("[\n{}\n]\n", lines.join(",\n"));
    if let Err(e) = std::fs::write(&path, body) {
        eprintln!("warning: cannot write bench baseline {path}: {e}");
    }
}

/// Minimal JSON string escaping; mirrors `botscope-obs::json_escape`.
fn json_escape(s: &str) -> String {
    use std::fmt::Write as _;
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Top-level benchmark driver.
pub struct Criterion {
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench -- <substring>` filters benchmarks like upstream.
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-') && a != "--bench");
        Criterion { filter }
    }
}

impl Criterion {
    /// Benchmark a single routine.
    pub fn bench_function<F>(&mut self, id: impl Display, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&self.filter, &id.to_string(), None, &mut routine);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into(), throughput: None }
    }
}

/// A group of related benchmarks sharing a name prefix and throughput.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; this harness sizes runs by time.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Report per-iteration throughput alongside timing.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Benchmark a routine within the group.
    pub fn bench_function<F>(&mut self, id: impl Display, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        run_one(&self.criterion.filter, &label, self.throughput, &mut routine);
        self
    }

    /// Benchmark a routine parametrized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        run_one(&self.criterion.filter, &label, self.throughput, &mut |b| routine(b, input));
        self
    }

    /// End the group (no-op; exists for API compatibility).
    pub fn finish(self) {}
}

/// Identifier for a parametrized benchmark.
pub struct BenchmarkId {
    function: Option<String>,
    parameter: String,
}

impl BenchmarkId {
    /// `function/parameter` identifier.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { function: Some(function.into()), parameter: parameter.to_string() }
    }

    /// Identifier carrying only the parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { function: None, parameter: parameter.to_string() }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.function {
            Some(function) => write!(f, "{function}/{}", self.parameter),
            None => write!(f, "{}", self.parameter),
        }
    }
}

/// Work processed per iteration, for derived rates.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// How `iter_batched` sizes its batches. This harness always runs one
/// setup per routine call, so the variants only document intent.
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// Re-create input on every iteration.
    PerIteration,
}

/// Passed to every benchmark closure; collects timing.
pub struct Bencher {
    /// Mean nanoseconds per iteration, filled in by `iter`/`iter_batched`.
    mean_ns: f64,
    iters: u64,
}

impl Bencher {
    /// Time `routine` repeatedly.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm up and size a batch so timer overhead stays negligible.
        let once = time_once(&mut routine);
        if quick_mode() {
            self.mean_ns = once.as_nanos() as f64;
            self.iters = 1;
            return;
        }
        let per_batch =
            (BATCH_TARGET.as_nanos() / once.as_nanos().max(1)).clamp(1, 1_000_000) as u64;
        let started = Instant::now();
        let mut iters = 0u64;
        let mut spent = Duration::ZERO;
        while started.elapsed() < MEASURE_BUDGET {
            let batch_started = Instant::now();
            for _ in 0..per_batch {
                black_box(routine());
            }
            spent += batch_started.elapsed();
            iters += per_batch;
        }
        self.mean_ns = spent.as_nanos() as f64 / iters.max(1) as f64;
        self.iters = iters;
    }

    /// Time `routine` over inputs built by `setup`; setup time is excluded.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let started = Instant::now();
        let mut iters = 0u64;
        let mut spent = Duration::ZERO;
        loop {
            let input = setup();
            let call_started = Instant::now();
            black_box(routine(input));
            spent += call_started.elapsed();
            iters += 1;
            if quick_mode() || started.elapsed() >= MEASURE_BUDGET {
                break;
            }
        }
        self.mean_ns = spent.as_nanos() as f64 / iters.max(1) as f64;
        self.iters = iters;
    }
}

fn time_once<O, F: FnMut() -> O>(routine: &mut F) -> Duration {
    let started = Instant::now();
    black_box(routine());
    started.elapsed()
}

fn run_one(
    filter: &Option<String>,
    label: &str,
    throughput: Option<Throughput>,
    routine: &mut dyn FnMut(&mut Bencher),
) {
    if let Some(f) = filter {
        if !label.contains(f.as_str()) {
            return;
        }
    }
    let mut bencher = Bencher { mean_ns: 0.0, iters: 0 };
    routine(&mut bencher);
    let rate = throughput.map(|t| match t {
        Throughput::Elements(n) => format!("  {:>12}/s", human(n as f64 * 1e9 / bencher.mean_ns)),
        Throughput::Bytes(n) => format!("  {:>10}B/s", human(n as f64 * 1e9 / bencher.mean_ns)),
    });
    println!(
        "bench: {label:<48} {:>14} ns/iter  ({} iters){}",
        format_ns(bencher.mean_ns),
        bencher.iters,
        rate.unwrap_or_default()
    );
    let per_iter = throughput.map(|t| match t {
        Throughput::Elements(n) | Throughput::Bytes(n) => n,
    });
    JSON_RESULTS.lock().expect("no poisoned benches").push(JsonResult {
        label: label.to_string(),
        mean_ns: bencher.mean_ns,
        iters: bencher.iters,
        // A bench with no declared throughput processes one item/iter.
        throughput_per_iter: per_iter.map_or(1.0, |n| n as f64),
    });
}

fn format_ns(ns: f64) -> String {
    if ns >= 100.0 {
        format!("{:.0}", ns)
    } else {
        format!("{:.1}", ns)
    }
}

fn human(rate: f64) -> String {
    if rate >= 1e9 {
        format!("{:.2}G", rate / 1e9)
    } else if rate >= 1e6 {
        format!("{:.2}M", rate / 1e6)
    } else if rate >= 1e3 {
        format!("{:.2}k", rate / 1e3)
    } else {
        format!("{:.1}", rate)
    }
}

/// Bundle benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Entry point for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
            $crate::flush_json();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_routine() {
        let mut ran = 0u64;
        let mut c = Criterion { filter: None };
        c.bench_function("smoke", |b| b.iter(|| ran += 1));
        assert!(ran > 0);
    }

    #[test]
    fn schema_v2_renderer_matches_obs_bench_byte_for_byte() {
        use botscope_obs::bench as obs;
        assert_eq!(BENCH_SCHEMA_VERSION, obs::BENCH_SCHEMA_VERSION);

        let labels = vec!["obs/span_enabled".to_string(), "obs/counter_disabled".to_string()];
        let cores = 7;
        // Same process, same environment: the digests must agree.
        assert_eq!(mini_manifest_digest(&labels, cores), obs::mini_manifest_digest(&labels, cores));

        let local = JsonResult {
            label: "pipeline/merge \"quoted\"".into(),
            mean_ns: 123.456,
            iters: 98_765,
            throughput_per_iter: 4096.0,
        };
        let owned = obs::BenchLine {
            label: local.label.clone(),
            mean_ns: local.mean_ns,
            iters: local.iters,
            throughput_per_iter: local.throughput_per_iter,
        };
        let digest = mini_manifest_digest(&labels, cores);
        assert_eq!(
            render_line_v2(&local, cores, &digest),
            obs::render_line(&owned, cores, &digest)
        );
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion { filter: None };
        let mut g = c.benchmark_group("g");
        g.sample_size(10);
        g.throughput(Throughput::Elements(4));
        g.bench_function("f", |b| b.iter(|| black_box(2 + 2)));
        g.bench_with_input(BenchmarkId::new("param", 3), &3u32, |b, &x| {
            b.iter(|| black_box(x * 2))
        });
        g.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
        g.finish();
    }
}

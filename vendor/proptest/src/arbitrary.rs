//! `any::<T>()` for primitive types.

use core::marker::PhantomData;

use rand::{Rng, RngCore};

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical full-range strategy.
pub trait Arbitrary {
    /// Sample an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// Strategy returned by [`any`].
pub struct Any<T> {
    _marker: PhantomData<T>,
}

/// The full-range strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any { _marker: PhantomData }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.gen_bool(0.5)
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite values only: a full bit-pattern f64 (NaN, infinities)
        // poisons ordinary arithmetic properties.
        rng.gen_range(-1e12f64..1e12)
    }
}

//! Option strategies (`prop::option::of`).

use rand::Rng;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Strategy returned by [`of`].
pub struct OptionStrategy<S> {
    inner: S,
}

/// `Some` of the inner strategy three times out of four, `None` otherwise
/// (upstream's default weighting).
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        if rng.gen_bool(0.75) {
            Some(self.inner.generate(rng))
        } else {
            None
        }
    }
}

//! Collection strategies (`prop::collection::vec`).

use core::ops::Range;

use rand::Rng;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Strategy returned by [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

/// A `Vec` whose length is drawn from `size` and whose elements are drawn
/// from `element`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, size }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len =
            if self.size.is_empty() { self.size.start } else { rng.gen_range(self.size.clone()) };
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

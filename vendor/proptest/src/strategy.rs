//! The `Strategy` trait and its built-in implementations: numeric ranges,
//! string-literal regexes, tuples, and the `prop_map` combinator.

use core::ops::Range;

use rand::Rng;

use crate::test_runner::TestRng;

/// A recipe for producing values of `Self::Value` from an RNG.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Sample one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform every sampled value through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

impl<T> Strategy for Range<T>
where
    T: rand::SampleUniform + PartialOrd + Clone,
{
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        rng.gen_range(self.clone())
    }
}

/// A bare string literal is a regex strategy producing matching strings.
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        crate::string::string_regex(self)
            .unwrap_or_else(|e| panic!("invalid regex strategy {self:?}: {e:?}"))
            .generate(rng)
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J, K);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J, K, L);

//! A generator for the small regex subset the botscope suites use as
//! string strategies:
//!
//! * literal characters,
//! * character classes `[a-z0-9._-]` (ranges plus literal members; a `-`
//!   that is first or last in the class is literal),
//! * the escapes `\PC` (any non-control character), `\$`, `\.`, `\\`,
//!   `\*`, `\?`, and
//! * the quantifiers `*`, `?`, `{n}`, `{m,n}` applied to the previous
//!   atom.
//!
//! Alternation, groups, anchors and negated classes are not implemented;
//! patterns using them are rejected with [`Error`] so a new test pattern
//! fails loudly rather than sampling from the wrong distribution.

use rand::Rng;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Rejected pattern, with the reason.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Error(pub String);

/// An unbounded `*` samples at most this many repetitions.
const STAR_MAX: u32 = 16;

/// Sampled in place of `\PC` roughly one time in ten, so "any printable
/// character" strategies exercise multi-byte UTF-8 too.
const NON_ASCII_SAMPLES: &[char] = &['é', 'ß', 'λ', 'Ж', '中', '\u{00A0}', '\u{2028}', '😀'];

#[derive(Clone, Debug)]
enum Atom {
    Literal(char),
    /// Inclusive character ranges, pre-expanded from a `[...]` class.
    Class(Vec<(char, char)>),
    /// `\PC`: any character outside the Unicode control category.
    NonControl,
}

#[derive(Clone, Copy, Debug)]
struct Quant {
    min: u32,
    max: u32,
}

/// Strategy returned by [`string_regex`].
#[derive(Clone, Debug)]
pub struct RegexGeneratorStrategy {
    elements: Vec<(Atom, Quant)>,
}

/// Compile `pattern` into a string-producing strategy.
pub fn string_regex(pattern: &str) -> Result<RegexGeneratorStrategy, Error> {
    let mut chars = pattern.chars().peekable();
    let mut elements: Vec<(Atom, Quant)> = Vec::new();
    while let Some(c) = chars.next() {
        let atom = match c {
            '\\' => match chars.next() {
                Some('P') => match chars.next() {
                    Some('C') => Atom::NonControl,
                    other => {
                        return Err(Error(format!("unsupported escape \\P{other:?}")));
                    }
                },
                Some(esc @ ('$' | '.' | '*' | '?' | '\\' | '[' | ']' | '{' | '}' | '/')) => {
                    Atom::Literal(esc)
                }
                other => return Err(Error(format!("unsupported escape \\{other:?}"))),
            },
            '[' => Atom::Class(parse_class(&mut chars)?),
            '*' | '?' | '{' | '}' | ']' => {
                return Err(Error(format!("dangling {c:?} in {pattern:?}")));
            }
            '(' | ')' | '|' | '^' | '$' | '.' | '+' => {
                return Err(Error(format!("unsupported regex feature {c:?} in {pattern:?}")));
            }
            literal => Atom::Literal(literal),
        };
        let quant = match chars.peek() {
            Some('*') => {
                chars.next();
                Quant { min: 0, max: STAR_MAX }
            }
            Some('?') => {
                chars.next();
                Quant { min: 0, max: 1 }
            }
            Some('{') => {
                chars.next();
                parse_counted_quant(&mut chars)?
            }
            _ => Quant { min: 1, max: 1 },
        };
        elements.push((atom, quant));
    }
    Ok(RegexGeneratorStrategy { elements })
}

fn parse_class(
    chars: &mut core::iter::Peekable<core::str::Chars<'_>>,
) -> Result<Vec<(char, char)>, Error> {
    let mut ranges: Vec<(char, char)> = Vec::new();
    let mut pending: Option<char> = None;
    loop {
        let c = chars.next().ok_or_else(|| Error("unterminated class".into()))?;
        match c {
            ']' => {
                if let Some(p) = pending {
                    ranges.push((p, p));
                }
                if ranges.is_empty() {
                    return Err(Error("empty character class".into()));
                }
                return Ok(ranges);
            }
            '^' if ranges.is_empty() && pending.is_none() => {
                return Err(Error("negated classes unsupported".into()));
            }
            '\\' => {
                let esc = chars.next().ok_or_else(|| Error("trailing backslash".into()))?;
                if let Some(p) = pending {
                    ranges.push((p, p));
                }
                pending = Some(esc);
            }
            '-' => match (pending.take(), chars.peek()) {
                // `-` with a pending start and a non-`]` successor: range.
                (Some(start), Some(&end)) if end != ']' => {
                    chars.next();
                    if start > end {
                        return Err(Error(format!("inverted range {start}-{end}")));
                    }
                    ranges.push((start, end));
                }
                // Literal `-` (leading, trailing, or after a completed range).
                (prev, _) => {
                    if let Some(p) = prev {
                        ranges.push((p, p));
                    }
                    ranges.push(('-', '-'));
                }
            },
            member => {
                if let Some(p) = pending {
                    ranges.push((p, p));
                }
                pending = Some(member);
            }
        }
    }
}

fn parse_counted_quant(
    chars: &mut core::iter::Peekable<core::str::Chars<'_>>,
) -> Result<Quant, Error> {
    let mut first = String::new();
    let mut second: Option<String> = None;
    loop {
        let c = chars.next().ok_or_else(|| Error("unterminated quantifier".into()))?;
        match c {
            '}' => break,
            ',' if second.is_none() => second = Some(String::new()),
            d if d.is_ascii_digit() => match &mut second {
                Some(s) => s.push(d),
                None => first.push(d),
            },
            other => return Err(Error(format!("bad quantifier char {other:?}"))),
        }
    }
    let min: u32 = first.parse().map_err(|_| Error("bad quantifier minimum".into()))?;
    let max: u32 = match second {
        None => min,
        Some(s) if s.is_empty() => min + STAR_MAX,
        Some(s) => s.parse().map_err(|_| Error("bad quantifier maximum".into()))?,
    };
    if min > max {
        return Err(Error(format!("quantifier {{{min},{max}}} inverted")));
    }
    Ok(Quant { min, max })
}

impl Strategy for RegexGeneratorStrategy {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for (atom, quant) in &self.elements {
            let count = if quant.min == quant.max {
                quant.min
            } else {
                rng.gen_range(quant.min..quant.max + 1)
            };
            for _ in 0..count {
                out.push(sample_atom(atom, rng));
            }
        }
        out
    }
}

fn sample_atom(atom: &Atom, rng: &mut TestRng) -> char {
    match atom {
        Atom::Literal(c) => *c,
        Atom::Class(ranges) => {
            let total: u32 = ranges.iter().map(|(lo, hi)| *hi as u32 - *lo as u32 + 1).sum();
            let mut pick = rng.gen_range(0u32..total);
            for (lo, hi) in ranges {
                let span = *hi as u32 - *lo as u32 + 1;
                if pick < span {
                    return char::from_u32(*lo as u32 + pick).expect("class range stays in char");
                }
                pick -= span;
            }
            unreachable!("pick bounded by total")
        }
        Atom::NonControl => {
            if rng.gen_bool(0.1) {
                NON_ASCII_SAMPLES[rng.gen_range(0..NON_ASCII_SAMPLES.len())]
            } else {
                char::from_u32(rng.gen_range(0x20u32..0x7F)).expect("printable ASCII")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::rng_for_test;

    fn samples(pattern: &str, n: usize) -> Vec<String> {
        let strat = string_regex(pattern).expect("pattern compiles");
        let mut rng = rng_for_test(pattern);
        (0..n).map(|_| strat.generate(&mut rng)).collect()
    }

    #[test]
    fn corpus_patterns_compile_and_match_shape() {
        for s in samples("/[a-z0-9/*._-]{0,20}\\$?", 200) {
            assert!(s.starts_with('/'));
            assert!(s.len() <= 22);
        }
        for s in samples("[a-z]{1,12}", 200) {
            assert!(!s.is_empty() && s.len() <= 12);
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
        }
        for s in samples("[ -~]{0,50}", 200) {
            assert!(s.chars().all(|c| (' '..='~').contains(&c)));
        }
        for s in samples("[A-Za-z0-9_-]{1,24}", 200) {
            assert!(s.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-'));
        }
        for s in samples("\\PC*", 200) {
            assert!(s.chars().all(|c| !c.is_control()));
        }
        for s in samples("[a-z][a-z0-9-]{0,10}", 200) {
            assert!(s.chars().next().unwrap().is_ascii_lowercase());
        }
    }

    #[test]
    fn unsupported_features_are_rejected() {
        assert!(string_regex("(a|b)").is_err());
        assert!(string_regex("[^a]").is_err());
        assert!(string_regex("a+").is_err());
        assert!(string_regex("[unterminated").is_err());
    }
}

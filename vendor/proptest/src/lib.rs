//! Self-contained stand-in for the subset of the `proptest` API that the
//! botscope test suites use. The build image has no access to crates.io,
//! so the workspace vendors this crate by path.
//!
//! Call sites keep the upstream surface — `proptest! { ... }`,
//! `prop_assert*!`, bare string-literal regex strategies, numeric range
//! strategies, `any::<T>()`, tuples, `prop::collection::vec`,
//! `prop::option::of`, `proptest::string::string_regex`, `.prop_map(..)`
//! and `#![proptest_config(ProptestConfig::with_cases(n))]`.
//!
//! Differences from upstream, deliberate for an offline harness:
//!
//! * no shrinking — a failing case panics with the sampled inputs instead
//!   of a minimized counterexample,
//! * the regex strategy implements the small pattern subset the suites
//!   actually use (literals, classes, `\PC`, `*`, `?`, `{m,n}`), and
//! * runs are deterministic: the RNG seed derives from the test name, so
//!   failures reproduce exactly across runs.

#![forbid(unsafe_code)]

pub mod arbitrary;
pub mod collection;
pub mod option;
pub mod strategy;
pub mod string;
pub mod test_runner;

/// The glob import every suite starts from.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// The `prop::` namespace (`prop::collection::vec`, `prop::option::of`).
    pub mod prop {
        pub use crate::collection;
        pub use crate::option;
        pub use crate::string;
    }
}

/// Define property tests. Each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that samples the strategies `cases` times and runs
/// the body on each sample.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { cfg = ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! {
            cfg = ($crate::test_runner::ProptestConfig::default())
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (cfg = ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::rng_for_test(stringify!($name));
            for case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                // Materialize the report eagerly: the body is free to move
                // the bindings (there is no shrinking pass to rerun them).
                let inputs = {
                    let mut s = ::std::string::String::new();
                    $(s.push_str(&::std::format!("  {} = {:?}\n", stringify!($arg), &$arg));)+
                    s
                };
                let outcome = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(|| $body));
                if let ::std::result::Result::Err(cause) = outcome {
                    ::std::eprintln!(
                        "proptest {} failed at case {}/{} with inputs:\n{}",
                        stringify!($name),
                        case + 1,
                        config.cases,
                        inputs
                    );
                    ::std::panic::resume_unwind(cause);
                }
            }
        }
    )*};
}

/// Assert a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { ::std::assert!($($tt)*) };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { ::std::assert_eq!($($tt)*) };
}

/// Assert inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { ::std::assert_ne!($($tt)*) };
}

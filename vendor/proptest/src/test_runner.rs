//! Test configuration and the deterministic RNG behind every strategy.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// The generator strategies draw from. Re-exported so downstream code can
/// name it in `impl Strategy` signatures.
pub type TestRng = StdRng;

/// Per-test configuration. Only `cases` is honoured.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of sampled cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run `cases` sampled cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; 64 keeps the heavier generator-backed
        // suites fast while still exercising a meaningful sample.
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic seed derived from the test name (FNV-1a), so a failing
/// property reproduces identically on every run.
pub fn rng_for_test(name: &str) -> TestRng {
    let mut hash: u64 = 0xCBF2_9CE4_8422_2325;
    for byte in name.bytes() {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    StdRng::seed_from_u64(hash)
}

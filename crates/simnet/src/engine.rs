//! The discrete-event generation engine.
//!
//! Each fleet bot is an independent process: a Poisson stream of sessions,
//! each session a paced run of page fetches against one site, shaped by
//! the robots.txt policy live on that site at that moment and by the
//! bot's planted compliance profile. Bots are simulated one at a time in
//! fleet order with a per-bot RNG derived from (seed, bot index), so the
//! output is a pure function of the configuration — independent even of
//! map iteration order.

use std::collections::BTreeMap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use botscope_asn::ip_for;
use botscope_weblog::iphash::IpHasher;
use botscope_weblog::record::AccessRecord;
use botscope_weblog::time::Timestamp;

use crate::behavior::{BotBehavior, RobotsCheckPolicy};
use crate::config::SimConfig;
use crate::fleet::{build_fleet, SimBot};
use crate::phases::{PhaseSchedule, PolicyVersion};
use crate::site::{Page, PageKind, Site, DIRECTORY_SITE, EXPERIMENT_SITE};

/// Ground truth planted by the generator, for validation by tests and the
/// EXPERIMENTS.md harness.
#[derive(Debug, Clone, Default)]
pub struct GroundTruth {
    /// Planted behaviour per canonical bot name.
    pub behaviors: BTreeMap<String, BotBehavior>,
    /// Canonical names of the SEO-exempt agents present in the fleet.
    pub exempt: Vec<String>,
    /// Number of spoofed requests planted, per spoofed bot name.
    pub spoofed_requests: BTreeMap<String, u64>,
}

/// The generator's output.
#[derive(Debug, Clone, Default)]
pub struct SimOutput {
    /// All access records, time-sorted.
    pub records: Vec<AccessRecord>,
    /// What was planted.
    pub truth: GroundTruth,
}

/// Exponential sample with the given mean.
fn exp_sample(rng: &mut StdRng, mean: f64) -> f64 {
    let u: f64 = rng.gen_range(0.0..1.0);
    -mean * (1.0 - u).ln()
}

/// Derive a child seed; avoids correlated streams between bots.
fn child_seed(seed: u64, stream: u64) -> u64 {
    // splitmix-style mix.
    let mut z = seed ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Run the generator for the given config and robots.txt schedule.
pub fn simulate(cfg: &SimConfig, schedule: &PhaseSchedule) -> SimOutput {
    cfg.assert_valid();
    let estate = Site::estate(cfg.sites);
    let fleet = build_fleet();
    let hasher = IpHasher::from_seed(cfg.seed);

    let mut records: Vec<AccessRecord> = Vec::new();
    let mut truth = GroundTruth::default();

    for (idx, bot) in fleet.iter().enumerate() {
        let mut rng = StdRng::seed_from_u64(child_seed(cfg.seed, idx as u64));
        simulate_bot(cfg, schedule, &estate, bot, &hasher, &mut rng, &mut records);
        truth.behaviors.insert(bot.spec.canonical.to_string(), bot.behavior.clone());
        if bot.exempt {
            truth.exempt.push(bot.spec.canonical.to_string());
        }
    }

    if cfg.anon_traffic {
        crate::anon::generate(cfg, &estate, &hasher, &mut records);
    }
    if cfg.spoofing {
        let planted = crate::spoof::generate(cfg, schedule, &estate, &fleet, &hasher, &mut records);
        truth.spoofed_requests = planted;
    }

    records.sort_by(|a, b| {
        (a.timestamp, &a.useragent, a.ip_hash, &a.uri_path).cmp(&(
            b.timestamp,
            &b.useragent,
            b.ip_hash,
            &b.uri_path,
        ))
    });
    SimOutput { records, truth }
}

/// Simulate one bot over the whole horizon.
fn simulate_bot(
    cfg: &SimConfig,
    schedule: &PhaseSchedule,
    estate: &[Site],
    bot: &SimBot,
    hasher: &IpHasher,
    rng: &mut StdRng,
    out: &mut Vec<AccessRecord>,
) {
    let bb = &bot.behavior;
    let horizon_secs = cfg.days as f64 * 86_400.0;
    let daily_sessions = (bb.daily_hits * cfg.scale / bb.pages_per_session).max(1e-9);
    let mean_gap_secs = 86_400.0 / daily_sessions;

    // Diligent pollers fetch robots.txt on a timer, independent of
    // sessions. Polling cadence does NOT scale with traffic volume —
    // checking the rules is a fixed cost. The poll stream targets one
    // ordinary site: the §5.1 re-check analysis pools robots.txt fetches
    // across the estate, while the §4 compliance analysis reads only the
    // experiment site, whose record mix must stay proportional to page
    // traffic at every simulation scale.
    if let RobotsCheckPolicy::Poll(hours) = bb.robots_check {
        let interval = hours as f64 * 3600.0;
        let site = &estate[estate.len() - 1];
        let ip_index = rng.gen_range(0..bb.ip_pool);
        let mut t = rng.gen_range(0.0..interval.min(horizon_secs));
        while t < horizon_secs {
            let now = cfg.start.plus_secs(t as u64);
            emit(out, bot, hasher, ip_index, site, "/robots.txt", 430, 200, now);
            // Small jitter so poll streams don't alias with window edges.
            t += interval * rng.gen_range(0.90..0.99);
        }
    }

    // Lazy-cache bookkeeping: one cache per bot (bots reuse one fetched
    // policy across their crawl of the estate).
    let mut last_check: Option<u64> = None;

    let mut t = exp_sample(rng, mean_gap_secs);
    while t < horizon_secs {
        let now = cfg.start.plus_secs(t as u64);
        session(schedule, estate, bot, hasher, rng, now, &mut last_check, out);
        t += exp_sample(rng, mean_gap_secs);
    }
}

/// Pick the session's target site.
fn pick_site<'a>(estate: &'a [Site], rng: &mut StdRng, directory_affinity: f64) -> &'a Site {
    if estate.len() > DIRECTORY_SITE && rng.gen_bool(directory_affinity.clamp(0.0, 1.0)) {
        return &estate[DIRECTORY_SITE];
    }
    // Experiment site is the high-traffic one ("chosen because of its
    // observed high bot traffic", §4.1): weight 30, others 1.
    let weights: Vec<f64> =
        estate.iter().map(|s| if s.index == EXPERIMENT_SITE { 30.0 } else { 1.0 }).collect();
    let total: f64 = weights.iter().sum();
    let mut pick = rng.gen_range(0.0..total);
    for (site, w) in estate.iter().zip(weights) {
        if pick < w {
            return site;
        }
        pick -= w;
    }
    estate.last().expect("non-empty estate")
}

/// Pick a page for a normal (baseline-policy) access.
fn pick_natural_page<'a>(site: &'a Site, rng: &mut StdRng, natural_pagedata: f64) -> &'a Page {
    if rng.gen_bool(natural_pagedata.clamp(0.0, 1.0)) {
        let pd = site.pages_of(PageKind::PageData);
        if !pd.is_empty() {
            return pd[rng.gen_range(0..pd.len())];
        }
    }
    // Mostly content/directory, occasionally landing, rarely restricted
    // (bots do stumble into /secure/* — the base file's disallows are the
    // everyday compliance signal).
    let roll: f64 = rng.gen_range(0.0..1.0);
    let kind = if roll < 0.10 {
        PageKind::Landing
    } else if roll < 0.60 {
        PageKind::Content
    } else if roll < 0.97 {
        PageKind::Directory
    } else {
        PageKind::Restricted
    };
    let pool = site.pages_of(kind);
    if pool.is_empty() {
        return &site.pages[rng.gen_range(0..site.pages.len())];
    }
    pool[rng.gen_range(0..pool.len())]
}

/// Pick a page that is not in the `/page-data/*` family (used for
/// non-compliant fetches under the v2 endpoint restriction).
fn pick_non_pagedata_page<'a>(site: &'a Site, rng: &mut StdRng) -> &'a Page {
    let pool: Vec<&Page> = site.pages.iter().filter(|p| p.kind != PageKind::PageData).collect();
    if pool.is_empty() {
        return &site.pages[0];
    }
    pool[rng.gen_range(0..pool.len())]
}

/// Emit one record.
#[allow(clippy::too_many_arguments)]
fn emit(
    out: &mut Vec<AccessRecord>,
    bot: &SimBot,
    hasher: &IpHasher,
    ip_index: u32,
    site: &Site,
    path: &str,
    bytes: u64,
    status: u16,
    at: Timestamp,
) {
    let ip = ip_for(bot.spec.home_asn, ip_index).unwrap_or_else(|| {
        panic!("unknown home ASN {} for {}", bot.spec.home_asn, bot.spec.canonical)
    });
    out.push(AccessRecord {
        useragent: bot.ua_string.clone(),
        timestamp: at,
        ip_hash: hasher.hash_ipv4(ip),
        asn: bot.spec.home_asn.to_string(),
        sitename: site.name.clone(),
        uri_path: path.to_string(),
        status,
        bytes,
        referer: None,
    });
}

/// One crawling session.
#[allow(clippy::too_many_arguments)]
fn session(
    schedule: &PhaseSchedule,
    estate: &[Site],
    bot: &SimBot,
    hasher: &IpHasher,
    rng: &mut StdRng,
    start: Timestamp,
    last_check: &mut Option<u64>,
    out: &mut Vec<AccessRecord>,
) {
    let bb = &bot.behavior;
    let site = pick_site(estate, rng, bb.directory_affinity);
    let ip_index = rng.gen_range(0..bb.ip_pool);

    let mut now = start;

    // Lazy-cache robots.txt fetch: refresh at the first crawl opportunity
    // after the TTL lapses.
    if let RobotsCheckPolicy::EveryHours(h) = bb.robots_check {
        let due = match *last_check {
            None => true,
            Some(at) => now.unix().saturating_sub(at) >= h * 3600,
        };
        if due {
            emit(out, bot, hasher, ip_index, site, "/robots.txt", 430, 200, now);
            *last_check = Some(now.unix());
            now = now.plus_secs(1 + exp_sample(rng, 2.0) as u64);
        }
    }

    let version = schedule.policy_at(site.index, now);
    let pages = 1 + exp_sample(rng, (bb.pages_per_session - 1.0).max(0.0)) as u64;

    for i in 0..pages {
        // Pacing between page fetches (the crawl-delay signal).
        if i > 0 {
            let comply_pace = match version {
                PolicyVersion::V1CrawlDelay => rng.gen_bool(bb.compliance.crawl_delay),
                _ => rng.gen_bool(bb.compliance.natural_slow),
            };
            let delta = if comply_pace {
                30.0 + exp_sample(rng, 25.0)
            } else {
                1.0 + exp_sample(rng, bb.fast_pacing_secs)
            };
            now = now.plus_secs(delta.max(1.0) as u64);
        }

        // Target selection under the live policy.
        let page: &Page = match version {
            PolicyVersion::V3DisallowAll if !bot.exempt => {
                if rng.gen_bool(bb.compliance.disallow) {
                    // The bot obeys: instead of the page it re-consults the
                    // policy file — the only permitted target. This is what
                    // the paper's fully-compliant bots look like in the
                    // logs (e.g. ChatGPT-User's all-robots.txt traffic
                    // under disallow-all, Table 6).
                    emit(out, bot, hasher, ip_index, site, "/robots.txt", 430, 200, now);
                    continue;
                }
                pick_natural_page(site, rng, bb.compliance.natural_pagedata)
            }
            PolicyVersion::V2EndpointOnly if !bot.exempt => {
                if rng.gen_bool(bb.compliance.endpoint) {
                    let pd = site.pages_of(PageKind::PageData);
                    if pd.is_empty() {
                        continue;
                    }
                    pd[rng.gen_range(0..pd.len())]
                } else {
                    // A non-compliant fetch under v2 goes where the bot was
                    // going anyway — which is *not* the page-data endpoint
                    // (that family is a compliance signal now, and the
                    // paper observes several bots shifting away from it:
                    // the negative endpoint z-scores of Table 10).
                    pick_non_pagedata_page(site, rng)
                }
            }
            _ => pick_natural_page(site, rng, bb.compliance.natural_pagedata),
        };

        let jitter: f64 = rng.gen_range(0.5..1.5);
        let bytes = ((page.bytes as f64) * bb.bytes_factor * jitter).max(200.0) as u64;
        let status = if page.path == "/404" || page.path == "/dev-404-page" { 404 } else { 200 };
        emit(out, bot, hasher, ip_index, site, &page.path, bytes, status, now);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::phases::PhaseSchedule;

    fn small_cfg() -> SimConfig {
        SimConfig::test_small()
    }

    fn base_schedule(cfg: &SimConfig) -> PhaseSchedule {
        PhaseSchedule::always_base(EXPERIMENT_SITE, cfg.start, cfg.end())
    }

    #[test]
    fn deterministic_output() {
        let cfg = small_cfg();
        let schedule = base_schedule(&cfg);
        let a = simulate(&cfg, &schedule);
        let b = simulate(&cfg, &schedule);
        assert_eq!(a.records, b.records);
        assert!(!a.records.is_empty());
    }

    #[test]
    fn different_seeds_differ() {
        let cfg = small_cfg();
        let schedule = base_schedule(&cfg);
        let a = simulate(&cfg, &schedule);
        let b = simulate(&SimConfig { seed: 1234, ..cfg.clone() }, &schedule);
        assert_ne!(a.records, b.records);
    }

    #[test]
    fn records_sorted_and_in_window() {
        let cfg = small_cfg();
        let schedule = base_schedule(&cfg);
        let out = simulate(&cfg, &schedule);
        assert!(out.records.windows(2).all(|w| w[0].timestamp <= w[1].timestamp));
        // Sessions may start just before the horizon and run slightly past
        // it; allow one hour of slack.
        let hard_end = cfg.end().plus_secs(3600 * 2);
        assert!(out.records.iter().all(|r| r.timestamp >= cfg.start && r.timestamp < hard_end));
    }

    #[test]
    fn heavy_bots_dominate() {
        let cfg = SimConfig { days: 4, ..small_cfg() };
        let schedule = base_schedule(&cfg);
        let out = simulate(&cfg, &schedule);
        let count =
            |needle: &str| out.records.iter().filter(|r| r.useragent.contains(needle)).count();
        assert!(count("YisouSpider") > count("GPTBot"), "Table 3 ordering");
        assert!(count("Applebot") > count("ClaudeBot"));
    }

    #[test]
    fn robots_checks_present_for_checking_bots() {
        let cfg = SimConfig { days: 4, scale: 0.05, ..small_cfg() };
        let schedule = base_schedule(&cfg);
        let out = simulate(&cfg, &schedule);
        let robots_by_gpt = out
            .records
            .iter()
            .filter(|r| r.useragent.contains("GPTBot") && r.is_robots_fetch())
            .count();
        assert!(robots_by_gpt > 0, "GPTBot checks robots.txt every 24h");
        // Never-checkers never fetch it.
        let robots_by_axios = out
            .records
            .iter()
            .filter(|r| r.useragent.starts_with("axios") && r.is_robots_fetch())
            .count();
        assert_eq!(robots_by_axios, 0);
    }

    #[test]
    fn disallow_all_suppresses_obedient_bots() {
        // Whole horizon under v3: ChatGPT-User (disallow compliance 1.0)
        // must fetch nothing but robots.txt; HeadlessChrome keeps crawling.
        let cfg = SimConfig {
            days: 6,
            scale: 0.3,
            sites: 3,
            spoofing: false,
            anon_traffic: false,
            ..small_cfg()
        };
        let schedule = PhaseSchedule {
            phases: vec![crate::phases::Phase {
                version: PolicyVersion::V3DisallowAll,
                start: cfg.start,
                end: cfg.end().plus_secs(86_400 * 2),
            }],
            experiment_site: EXPERIMENT_SITE,
        };
        let out = simulate(&cfg, &schedule);
        let exp_site = "site-00.example.edu";
        let gpt_pages = out
            .records
            .iter()
            .filter(|r| {
                r.useragent.contains("ChatGPT-User")
                    && r.sitename == exp_site
                    && !r.is_robots_fetch()
            })
            .count();
        assert_eq!(gpt_pages, 0, "fully obedient bot fetched pages under disallow-all");
        let headless_pages = out
            .records
            .iter()
            .filter(|r| {
                r.useragent.contains("HeadlessChrome")
                    && r.sitename == exp_site
                    && !r.is_robots_fetch()
            })
            .count();
        assert!(headless_pages > 0, "headless browser should ignore disallow-all");
    }

    #[test]
    fn exempt_bots_keep_crawling_under_v3() {
        let cfg = SimConfig {
            days: 6,
            scale: 0.3,
            sites: 3,
            spoofing: false,
            anon_traffic: false,
            ..small_cfg()
        };
        let schedule = PhaseSchedule {
            phases: vec![crate::phases::Phase {
                version: PolicyVersion::V3DisallowAll,
                start: cfg.start,
                end: cfg.end().plus_secs(86_400 * 2),
            }],
            experiment_site: EXPERIMENT_SITE,
        };
        let out = simulate(&cfg, &schedule);
        let googlebot_pages = out
            .records
            .iter()
            .filter(|r| {
                r.useragent.contains("Googlebot/2.1")
                    && r.sitename == "site-00.example.edu"
                    && !r.is_robots_fetch()
            })
            .count();
        assert!(googlebot_pages > 0, "exempt Googlebot must continue crawling");
    }

    #[test]
    fn ground_truth_populated() {
        let cfg = small_cfg();
        let out = simulate(&cfg, &base_schedule(&cfg));
        assert!(out.truth.behaviors.len() >= 120);
        assert!(out.truth.exempt.iter().any(|n| n == "Googlebot"));
        assert!(!out.truth.spoofed_requests.is_empty());
    }

    #[test]
    fn asn_matches_home_network() {
        let cfg = small_cfg();
        let out = simulate(&SimConfig { spoofing: false, ..cfg.clone() }, &base_schedule(&cfg));
        for r in out.records.iter().filter(|r| r.useragent.contains("ClaudeBot")) {
            assert_eq!(r.asn, "AMAZON-02");
        }
    }

    #[test]
    fn scale_scales_volume() {
        let cfg1 = SimConfig { scale: 0.02, anon_traffic: false, spoofing: false, ..small_cfg() };
        let cfg2 = SimConfig { scale: 0.08, ..cfg1.clone() };
        let schedule = base_schedule(&cfg1);
        let n1 = simulate(&cfg1, &schedule).records.len() as f64;
        let n2 = simulate(&cfg2, &schedule).records.len() as f64;
        let ratio = n2 / n1;
        assert!(ratio > 2.0 && ratio < 8.0, "4x scale gave ratio {ratio}");
    }
}

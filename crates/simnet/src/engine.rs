//! The discrete-event generation engine.
//!
//! Each fleet bot is an independent process: a Poisson stream of sessions,
//! each session a paced run of page fetches against one site, shaped by
//! the robots.txt policy live on that site at that moment and by the
//! bot's planted compliance profile. Every bot runs on its own RNG
//! derived from (seed, bot index) — as do the anonymous-traffic and
//! spoofing generators — so each stream is a pure function of the
//! configuration, independent even of execution order.
//!
//! That independence is what the parallel path exploits: each stream is
//! a **generation unit** that emits interned rows into its own
//! [`LogTable`] shard; shards are distributed over `std::thread::scope`
//! workers, concatenated in unit order, and stable-sorted by timestamp.
//! The result is byte-identical for a fixed seed no matter how many
//! workers run ([`worker_threads`] reads `BOTSCOPE_THREADS`, defaulting
//! to the machine's available parallelism).

use std::collections::BTreeMap;
use std::fs::File;
use std::io::{self, BufReader, BufWriter, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use botscope_asn::ip_for;
use botscope_weblog::colfmt;
use botscope_weblog::intern::{StringInterner, Sym};
use botscope_weblog::iphash::IpHasher;
use botscope_weblog::record::AccessRecord;
use botscope_weblog::sink::RowSink;
use botscope_weblog::table::{LogTable, RecordRow};
use botscope_weblog::time::Timestamp;
use botscope_weblog::{merge_runs_parallel, MergeRun};

use crate::behavior::{BotBehavior, RobotsCheckPolicy};
use crate::belief::{LensTable, PolicyOracle, ScheduleOracle};
use crate::config::SimConfig;
use crate::fleet::{build_fleet, SimBot};
use crate::phases::PhaseSchedule;
use crate::server::PolicyCorpus;
use crate::site::{Page, PageKind, Site, DIRECTORY_SITE, EXPERIMENT_SITE};

/// Ground truth planted by the generator, for validation by tests and the
/// EXPERIMENTS.md harness.
#[derive(Debug, Clone, Default)]
pub struct GroundTruth {
    /// Planted behaviour per canonical bot name.
    pub behaviors: BTreeMap<String, BotBehavior>,
    /// Canonical names of the SEO-exempt agents present in the fleet.
    pub exempt: Vec<String>,
    /// Number of spoofed requests planted, per spoofed bot name.
    pub spoofed_requests: BTreeMap<String, u64>,
}

/// The generator's output, materialized for record-slice consumers.
#[derive(Debug, Clone, Default)]
pub struct SimOutput {
    /// All access records, time-sorted.
    pub records: Vec<AccessRecord>,
    /// What was planted.
    pub truth: GroundTruth,
}

/// The generator's native output: the interned table.
#[derive(Debug, Clone, Default)]
pub struct SimTableOutput {
    /// All access rows, time-sorted, with their interner.
    pub table: LogTable,
    /// What was planted.
    pub truth: GroundTruth,
}

/// Exponential sample with the given mean.
fn exp_sample(rng: &mut StdRng, mean: f64) -> f64 {
    let u: f64 = rng.gen_range(0.0..1.0);
    -mean * (1.0 - u).ln()
}

/// Derive a child seed for an independent RNG stream; avoids correlated
/// streams between generation units. This is the workspace's
/// seed-derivation discipline: every subsystem that runs many
/// independent seeded streams (the generator's per-bot units, the
/// monitor daemon's per-agent and per-site streams) derives them from
/// one master seed through this mix.
pub fn child_seed(seed: u64, stream: u64) -> u64 {
    // splitmix-style mix.
    let mut z = seed ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Generation worker count: `BOTSCOPE_THREADS` when set to a positive
/// integer, otherwise the machine's available parallelism.
pub fn worker_threads() -> usize {
    worker_threads_from(
        std::env::var("BOTSCOPE_THREADS").ok().as_deref(),
        std::thread::available_parallelism().map_or(1, std::num::NonZero::get),
    )
}

/// The pure core of [`worker_threads`]: `env` is the raw
/// `BOTSCOPE_THREADS` value (if set), `hardware` the machine's
/// available parallelism. An explicit positive setting always wins —
/// output is byte-identical at any worker count, so oversubscription is
/// safe to *ask* for — but the default never exceeds the hardware:
/// fanning out 8 workers on a 1-core container measurably loses to
/// running serial.
pub fn worker_threads_from(env: Option<&str>, hardware: usize) -> usize {
    env.and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or_else(|| hardware.max(1))
}

/// Precomputed page pools per site, shared read-only across workers so
/// the per-fetch pick never rebuilds a filtered vector.
struct SitePools<'a> {
    site: &'a Site,
    landing: Vec<&'a Page>,
    content: Vec<&'a Page>,
    directory: Vec<&'a Page>,
    page_data: Vec<&'a Page>,
    restricted: Vec<&'a Page>,
    non_pagedata: Vec<&'a Page>,
    crawlable: Vec<&'a Page>,
}

impl<'a> SitePools<'a> {
    fn build(site: &'a Site) -> SitePools<'a> {
        let of = |kind: PageKind| -> Vec<&'a Page> {
            site.pages.iter().filter(|p| p.kind == kind).collect()
        };
        SitePools {
            site,
            landing: of(PageKind::Landing),
            content: of(PageKind::Content),
            directory: of(PageKind::Directory),
            page_data: of(PageKind::PageData),
            restricted: of(PageKind::Restricted),
            non_pagedata: site.pages.iter().filter(|p| p.kind != PageKind::PageData).collect(),
            crawlable: site.pages.iter().filter(|p| p.kind != PageKind::Restricted).collect(),
        }
    }

    fn of_kind(&self, kind: PageKind) -> &[&'a Page] {
        match kind {
            PageKind::Landing => &self.landing,
            PageKind::Content => &self.content,
            PageKind::Directory => &self.directory,
            PageKind::PageData => &self.page_data,
            PageKind::Restricted => &self.restricted,
        }
    }
}

/// The shared, read-only world every generation unit sees. Policy is
/// deliberately absent: fleet bots consult their [`PolicyOracle`], and
/// the anon/spoof units never read robots.txt at all.
pub(crate) struct World<'a> {
    pub(crate) cfg: &'a SimConfig,
    pub(crate) hasher: &'a IpHasher,
    estate: &'a [Site],
    pools: Vec<SitePools<'a>>,
    /// The policy corpus every session's believed policy is projected
    /// through (compiled automata by default, `BOTSCOPE_MATCHER` selects).
    corpus: PolicyCorpus,
    /// Session-target weights per site (experiment site is the heavy one).
    site_weights: Vec<f64>,
    site_weight_total: f64,
}

impl<'a> World<'a> {
    fn new(cfg: &'a SimConfig, estate: &'a [Site], hasher: &'a IpHasher) -> World<'a> {
        // Experiment site is the high-traffic one ("chosen because of its
        // observed high bot traffic", §4.1): weight 30, others 1.
        let site_weights: Vec<f64> =
            estate.iter().map(|s| if s.index == EXPERIMENT_SITE { 30.0 } else { 1.0 }).collect();
        let site_weight_total = site_weights.iter().sum();
        World {
            cfg,
            hasher,
            estate,
            pools: estate.iter().map(SitePools::build).collect(),
            corpus: PolicyCorpus::new(),
            site_weights,
            site_weight_total,
        }
    }

    pub(crate) fn n_sites(&self) -> usize {
        self.estate.len()
    }

    /// Test-only constructor so the anon/spoof unit tests can drive
    /// their generator in isolation.
    #[cfg(test)]
    pub(crate) fn new_for_tests(
        cfg: &'a SimConfig,
        estate: &'a [Site],
        hasher: &'a IpHasher,
    ) -> World<'a> {
        World::new(cfg, estate, hasher)
    }
}

/// A generation unit's output shard.
struct Shard {
    table: LogTable,
    /// Spoofed request counts (only the spoof unit fills this).
    planted: BTreeMap<String, u64>,
}

/// Disk-spill state of a streaming [`ShardWriter`]: where sorted runs
/// go, and the first write error (surfaced at [`ShardWriter::finish_spill`]
/// because the emit path is infallible by design).
struct SpillState {
    dir: PathBuf,
    unit: usize,
    rows_per_run: usize,
    paths: Vec<PathBuf>,
    err: Option<io::Error>,
}

/// Per-unit emit context: the shard table plus the symbols that are
/// fixed for the unit (interned once, not once per row).
pub(crate) struct ShardWriter {
    pub(crate) table: LogTable,
    robots_path: Sym,
    site_syms: Vec<Sym>,
    spill: Option<SpillState>,
}

impl ShardWriter {
    pub(crate) fn new(world: &World<'_>) -> ShardWriter {
        let mut table = LogTable::new();
        let robots_path = table.intern("/robots.txt");
        let site_syms = world.estate.iter().map(|s| table.intern(&s.name)).collect();
        ShardWriter { table, robots_path, site_syms, spill: None }
    }

    /// A writer that spills every `rows_per_run` rows to a canonically
    /// sorted binary run file under `dir`, keeping memory bounded by one
    /// run plus the unit's dictionary.
    fn new_spilling(
        world: &World<'_>,
        dir: PathBuf,
        unit: usize,
        rows_per_run: usize,
    ) -> ShardWriter {
        assert!(rows_per_run >= 1, "rows_per_run must be positive");
        let mut writer = ShardWriter::new(world);
        writer.spill = Some(SpillState { dir, unit, rows_per_run, paths: Vec::new(), err: None });
        writer
    }

    /// Sort the buffered rows canonically and write them as one binary
    /// run file. The interner survives intact: the generators hold
    /// [`Sym`]s (unit UA/ASN, site names, referer templates) across the
    /// whole unit, so only the rows may drain.
    fn flush_run(&mut self) {
        let spill = match self.spill.as_mut() {
            Some(spill) if spill.err.is_none() && !self.table.is_empty() => spill,
            _ => return,
        };
        let mut run = std::mem::take(&mut self.table);
        run.sort_canonical();
        let path = spill.dir.join(format!("unit{:04}-run{:05}.bin", spill.unit, spill.paths.len()));
        let result = File::create(&path).and_then(|file| {
            let mut w = BufWriter::new(file);
            colfmt::write_table(&mut w, &run)?;
            w.flush()
        });
        match result {
            Ok(()) => spill.paths.push(path),
            Err(e) => spill.err = Some(e),
        }
        let (interner, mut rows) = run.into_parts();
        rows.clear();
        self.table = LogTable::from_parts(interner, rows);
    }

    /// Flush the final run and hand back the unit's full dictionary (an
    /// append-only superset of every run's) plus the run paths in
    /// emission order.
    fn finish_spill(mut self) -> io::Result<(Arc<StringInterner>, Vec<PathBuf>)> {
        self.flush_run();
        let spill = self.spill.take().expect("finish_spill requires a spilling writer");
        if let Some(err) = spill.err {
            return Err(err);
        }
        let (interner, _) = self.table.into_parts();
        Ok((Arc::new(interner), spill.paths))
    }

    pub(crate) fn site_sym(&self, index: usize) -> Sym {
        self.site_syms[index]
    }

    /// Emit one row. `path` is interned (deduplicated) per shard.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn emit(
        &mut self,
        ua: Sym,
        asn: Sym,
        site: Sym,
        ip_hash: u64,
        path: &str,
        bytes: u64,
        status: u16,
        referer: Option<Sym>,
        at: Timestamp,
    ) {
        let uri_path =
            if path == "/robots.txt" { self.robots_path } else { self.table.intern(path) };
        self.table.push_row(RecordRow {
            useragent: ua,
            asn,
            sitename: site,
            uri_path,
            referer,
            timestamp: at,
            ip_hash,
            bytes,
            status,
        });
        if let Some(spill) = &self.spill {
            if self.table.len() >= spill.rows_per_run {
                self.flush_run();
            }
        }
    }
}

/// Run the generator for the given config and robots.txt schedule,
/// materializing `Vec<AccessRecord>` output (compatibility path).
pub fn simulate(cfg: &SimConfig, schedule: &PhaseSchedule) -> SimOutput {
    let out = simulate_table(cfg, schedule);
    SimOutput { records: out.table.to_records(), truth: out.truth }
}

/// Run the generator into a [`LogTable`], sharding generation units over
/// [`worker_threads`] scoped workers.
pub fn simulate_table(cfg: &SimConfig, schedule: &PhaseSchedule) -> SimTableOutput {
    simulate_table_with_threads(cfg, schedule, worker_threads())
}

/// [`simulate_table`] with an explicit worker count. Output is
/// byte-identical for a fixed seed regardless of `threads`.
pub fn simulate_table_with_threads(
    cfg: &SimConfig,
    schedule: &PhaseSchedule,
    threads: usize,
) -> SimTableOutput {
    simulate_table_oracle(cfg, &ScheduleOracle { schedule }, threads)
}

/// [`simulate_table_with_threads`] with an explicit [`PolicyOracle`]:
/// every fleet bot consults `oracle` for the policy it *believes* is
/// live instead of reading the schedule directly. With
/// [`ScheduleOracle`] this is byte-identical to the schedule-driven
/// path; with a monitored [`crate::belief::BeliefAtlas`] it is the
/// coupled mode — obedient bots halt through a believed 5xx
/// disallow-all window, keep crawling on a stale allow-all cache, and
/// never-checking bots (belief stuck at `Unfetched`) ignore everything.
///
/// The anonymous-traffic and spoofing units never consult the oracle:
/// browsers don't read robots.txt, and spoofers ignore it by
/// definition.
pub fn simulate_table_oracle<O: PolicyOracle>(
    cfg: &SimConfig,
    oracle: &O,
    threads: usize,
) -> SimTableOutput {
    cfg.assert_valid();
    assert!(threads >= 1, "at least one worker required");
    let obs = botscope_obs::global();
    let gen_span = obs.phase("simnet_generate");
    let estate = Site::estate(cfg.sites);
    let fleet = build_fleet();
    let hasher = IpHasher::from_seed(cfg.seed);
    let world = World::new(cfg, &estate, &hasher);

    // Units: one per fleet bot, then anonymous traffic, then spoofing.
    let n_units = fleet.len() + 2;
    let run_unit = |unit: usize| -> Shard {
        if unit < fleet.len() {
            let bot = &fleet[unit];
            let mut rng = StdRng::seed_from_u64(child_seed(cfg.seed, unit as u64));
            let mut writer = ShardWriter::new(&world);
            simulate_bot(&world, oracle, unit, bot, &mut rng, &mut writer);
            Shard { table: writer.table, planted: BTreeMap::new() }
        } else if unit == fleet.len() {
            let mut writer = ShardWriter::new(&world);
            if cfg.anon_traffic {
                crate::anon::generate(&world, &mut writer);
            }
            Shard { table: writer.table, planted: BTreeMap::new() }
        } else {
            let mut writer = ShardWriter::new(&world);
            let planted = if cfg.spoofing {
                crate::spoof::generate(&world, &fleet, &mut writer)
            } else {
                BTreeMap::new()
            };
            Shard { table: writer.table, planted }
        }
    };

    let mut shards: Vec<(usize, Shard)> = Vec::with_capacity(n_units);
    let threads = threads.min(n_units);
    if threads == 1 {
        for unit in 0..n_units {
            shards.push((unit, run_unit(unit)));
        }
    } else {
        let next = AtomicUsize::new(0);
        let results: Mutex<Vec<(usize, Shard)>> = Mutex::new(Vec::with_capacity(n_units));
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| loop {
                    let unit = next.fetch_add(1, Ordering::Relaxed);
                    if unit >= n_units {
                        break;
                    }
                    let shard = run_unit(unit);
                    results.lock().expect("no poisoned workers").push((unit, shard));
                });
            }
        });
        shards = results.into_inner().expect("workers joined");
        // Concatenation must follow unit order, not completion order, so
        // the later stable sort sees the exact serial emission sequence.
        shards.sort_by_key(|&(unit, _)| unit);
    }

    drop(gen_span);
    obs.counter("simnet_units_total").add(n_units as u64);

    let total_rows: usize = shards.iter().map(|(_, s)| s.table.len()).sum();
    obs.counter("simnet_rows_total").add(total_rows as u64);
    let merge_span = obs.phase("simnet_absorb_sort");
    let mut table = LogTable::with_capacity(total_rows, 1024);
    let mut truth = GroundTruth::default();
    for (_, shard) in &shards {
        table.absorb(&shard.table);
        for (bot, count) in &shard.planted {
            *truth.spoofed_requests.entry(bot.clone()).or_default() += count;
        }
    }
    table.sort_canonical();
    drop(merge_span);

    for bot in &fleet {
        truth.behaviors.insert(bot.spec.canonical.to_string(), bot.behavior.clone());
        if bot.exempt {
            truth.exempt.push(bot.spec.canonical.to_string());
        }
    }
    SimTableOutput { table, truth }
}

/// Tuning for the disk-spilling streaming generator.
#[derive(Debug, Clone)]
pub struct StreamOptions {
    /// Rows each worker buffers before spilling a sorted run to disk.
    /// The default (2^19 rows ≈ 24 MB of row storage per in-flight
    /// unit) keeps per-worker memory flat at any simulation scale.
    pub rows_per_run: usize,
    /// Directory for spill files. `None` creates — and afterwards
    /// removes — a unique directory under the system temp dir. Spill
    /// files are always deleted after the merge; with an explicit
    /// directory, cleanup of files from a unit that *failed* mid-write
    /// is best-effort.
    pub spill_dir: Option<PathBuf>,
}

impl Default for StreamOptions {
    fn default() -> StreamOptions {
        StreamOptions { rows_per_run: 1 << 19, spill_dir: None }
    }
}

/// The streaming generator's output: what was planted plus how many
/// rows went through the sinks. The rows themselves never materialize —
/// they live on disk as sorted runs until the merge streams them out.
#[derive(Debug, Clone, Default)]
pub struct SimStreamOutput {
    /// What was planted.
    pub truth: GroundTruth,
    /// Rows delivered to every sink, in canonical order.
    pub rows: u64,
}

/// Run the generator straight into row sinks with bounded memory:
/// workers spill canonically sorted binary runs to disk, and a k-way
/// merge streams the global canonical order into `sinks` without ever
/// materializing the table. Output bytes are identical to writing
/// [`simulate_table`]'s result, at any worker count.
pub fn simulate_stream(
    cfg: &SimConfig,
    schedule: &PhaseSchedule,
    sinks: &mut [&mut dyn RowSink],
) -> io::Result<SimStreamOutput> {
    simulate_stream_with_threads(cfg, schedule, worker_threads(), &StreamOptions::default(), sinks)
}

/// [`simulate_stream`] with explicit worker count and spill tuning.
pub fn simulate_stream_with_threads(
    cfg: &SimConfig,
    schedule: &PhaseSchedule,
    threads: usize,
    opts: &StreamOptions,
    sinks: &mut [&mut dyn RowSink],
) -> io::Result<SimStreamOutput> {
    simulate_stream_oracle(cfg, &ScheduleOracle { schedule }, threads, opts, sinks)
}

/// Per-unit result of a streaming worker: the unit's final dictionary
/// (valid for all of its runs) and its run files in emission order.
struct UnitRuns {
    interner: Arc<StringInterner>,
    paths: Vec<PathBuf>,
    planted: BTreeMap<String, u64>,
}

/// [`simulate_stream_with_threads`] with an explicit [`PolicyOracle`]
/// (the streaming dual of [`simulate_table_oracle`]).
pub fn simulate_stream_oracle<O: PolicyOracle>(
    cfg: &SimConfig,
    oracle: &O,
    threads: usize,
    opts: &StreamOptions,
    sinks: &mut [&mut dyn RowSink],
) -> io::Result<SimStreamOutput> {
    cfg.assert_valid();
    assert!(threads >= 1, "at least one worker required");
    assert!(opts.rows_per_run >= 1, "rows_per_run must be positive");
    let obs = botscope_obs::global();
    let gen_span = obs.phase("simnet_generate");
    let estate = Site::estate(cfg.sites);
    let fleet = build_fleet();
    let hasher = IpHasher::from_seed(cfg.seed);
    let world = World::new(cfg, &estate, &hasher);

    // Spill directory: the caller's, or a unique one we own and remove.
    // The counter (not time or randomness) disambiguates concurrent
    // streams within one process.
    static SPILL_COUNTER: AtomicU64 = AtomicU64::new(0);
    let (spill_dir, own_dir) = match &opts.spill_dir {
        Some(dir) => (dir.clone(), false),
        None => {
            let n = SPILL_COUNTER.fetch_add(1, Ordering::Relaxed);
            let dir =
                std::env::temp_dir().join(format!("botscope-spill-{}-{n}", std::process::id()));
            (dir, true)
        }
    };
    std::fs::create_dir_all(&spill_dir)?;

    let n_units = fleet.len() + 2;
    let run_unit = |unit: usize| -> io::Result<UnitRuns> {
        let mut writer =
            ShardWriter::new_spilling(&world, spill_dir.clone(), unit, opts.rows_per_run);
        let mut planted = BTreeMap::new();
        if unit < fleet.len() {
            let bot = &fleet[unit];
            let mut rng = StdRng::seed_from_u64(child_seed(cfg.seed, unit as u64));
            simulate_bot(&world, oracle, unit, bot, &mut rng, &mut writer);
        } else if unit == fleet.len() {
            if cfg.anon_traffic {
                crate::anon::generate(&world, &mut writer);
            }
        } else if cfg.spoofing {
            planted = crate::spoof::generate(&world, &fleet, &mut writer);
        }
        let (interner, paths) = writer.finish_spill()?;
        Ok(UnitRuns { interner, paths, planted })
    };

    let threads = threads.min(n_units);
    let mut units: Vec<(usize, io::Result<UnitRuns>)> = Vec::with_capacity(n_units);
    if threads == 1 {
        for unit in 0..n_units {
            units.push((unit, run_unit(unit)));
        }
    } else {
        let next = AtomicUsize::new(0);
        let results: Mutex<Vec<(usize, io::Result<UnitRuns>)>> =
            Mutex::new(Vec::with_capacity(n_units));
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| loop {
                    let unit = next.fetch_add(1, Ordering::Relaxed);
                    if unit >= n_units {
                        break;
                    }
                    let out = run_unit(unit);
                    results.lock().expect("no poisoned workers").push((unit, out));
                });
            }
        });
        units = results.into_inner().expect("workers joined");
        units.sort_by_key(|&(unit, _)| unit);
    }

    // Runs enter the merge in (unit, run) order: a unit's runs are
    // consecutive emission-position blocks, so this global order makes
    // the merge byte-identical to concatenate-in-unit-order + stable
    // sort — i.e. to the materialized path.
    drop(gen_span);
    obs.counter("simnet_units_total").add(n_units as u64);
    let merge_span = obs.phase("simnet_spill_merge");
    let mut truth = GroundTruth::default();
    let mut spilled: Vec<PathBuf> = Vec::new();
    let merged: io::Result<u64> = (|| {
        let mut runs: Vec<MergeRun> = Vec::new();
        for (_, result) in units {
            let unit_runs = result?;
            spilled.extend(unit_runs.paths.iter().cloned());
            for (bot, count) in &unit_runs.planted {
                *truth.spoofed_requests.entry(bot.clone()).or_default() += count;
            }
            for path in &unit_runs.paths {
                let reader = BufReader::with_capacity(64 << 10, File::open(path)?);
                // Raw mode: spill files preserve the unit interner's ids
                // (`write_table`), so readers need no per-file dictionary
                // copy — merge memory stays one dictionary per unit, not
                // one per run.
                let bin = colfmt::BinReader::new_raw(reader)
                    .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
                runs.push(MergeRun::from_sorted_stream(unit_runs.interner.clone(), Box::new(bin)));
            }
        }
        // Tournament merge over the spilled runs, fanned across the same
        // worker budget generation used; byte-identical to the serial
        // merge at any worker count.
        merge_runs_parallel(runs, sinks, threads)
    })();
    drop(merge_span);
    obs.counter("simnet_spill_runs_total").add(spilled.len() as u64);
    if own_dir {
        let _ = std::fs::remove_dir_all(&spill_dir);
    } else {
        for path in &spilled {
            let _ = std::fs::remove_file(path);
        }
    }
    let rows = merged?;
    obs.counter("simnet_rows_total").add(rows);

    for bot in &fleet {
        truth.behaviors.insert(bot.spec.canonical.to_string(), bot.behavior.clone());
        if bot.exempt {
            truth.exempt.push(bot.spec.canonical.to_string());
        }
    }
    Ok(SimStreamOutput { truth, rows })
}

/// Simulate one bot over the whole horizon. `unit` is the bot's fleet
/// index — the identity the [`PolicyOracle`] keys beliefs by.
fn simulate_bot<O: PolicyOracle>(
    world: &World<'_>,
    oracle: &O,
    unit: usize,
    bot: &SimBot,
    rng: &mut StdRng,
    out: &mut ShardWriter,
) {
    let cfg = world.cfg;
    let bb = &bot.behavior;
    let horizon_secs = cfg.days as f64 * 86_400.0;
    let daily_sessions = (bb.daily_hits * cfg.scale / bb.pages_per_session).max(1e-9);
    let mean_gap_secs = 86_400.0 / daily_sessions;

    let ua = out.table.intern(&bot.ua_string);
    let asn = out.table.intern(bot.spec.home_asn);
    let ip_hash_of = |ip_index: u32| -> u64 {
        let ip = ip_for(bot.spec.home_asn, ip_index).unwrap_or_else(|| {
            panic!("unknown home ASN {} for {}", bot.spec.home_asn, bot.spec.canonical)
        });
        world.hasher.hash_ipv4(ip)
    };

    // Diligent pollers fetch robots.txt on a timer, independent of
    // sessions. Polling cadence does NOT scale with traffic volume —
    // checking the rules is a fixed cost. The poll stream targets one
    // ordinary site: the §5.1 re-check analysis pools robots.txt fetches
    // across the estate, while the §4 compliance analysis reads only the
    // experiment site, whose record mix must stay proportional to page
    // traffic at every simulation scale.
    if let RobotsCheckPolicy::Poll(hours) = bb.robots_check {
        let interval = hours as f64 * 3600.0;
        let site = out.site_sym(world.n_sites() - 1);
        let ip_hash = ip_hash_of(rng.gen_range(0..bb.ip_pool));
        let mut t = rng.gen_range(0.0..interval.min(horizon_secs));
        while t < horizon_secs {
            let now = cfg.start.plus_secs(t as u64);
            out.emit(ua, asn, site, ip_hash, "/robots.txt", 430, 200, None, now);
            // Small jitter so poll streams don't alias with window edges.
            t += interval * rng.gen_range(0.90..0.99);
        }
    }

    // Lazy-cache bookkeeping: one cache per bot (bots reuse one fetched
    // policy across their crawl of the estate).
    let mut last_check: Option<u64> = None;

    // Probe the corpus once per bot: sessions resolve their believed
    // policy against this table instead of re-running matcher probes.
    let lenses = LensTable::for_bot(&world.corpus, bot.spec.canonical, bot.exempt);

    let mut t = exp_sample(rng, mean_gap_secs);
    while t < horizon_secs {
        let now = cfg.start.plus_secs(t as u64);
        session(
            world,
            oracle,
            unit,
            bot,
            ua,
            asn,
            &ip_hash_of,
            rng,
            now,
            &lenses,
            &mut last_check,
            out,
        );
        t += exp_sample(rng, mean_gap_secs);
    }
}

/// Pick the session's target site (by estate index).
fn pick_site(world: &World<'_>, rng: &mut StdRng, directory_affinity: f64) -> usize {
    if world.n_sites() > DIRECTORY_SITE && rng.gen_bool(directory_affinity.clamp(0.0, 1.0)) {
        return DIRECTORY_SITE;
    }
    let mut pick = rng.gen_range(0.0..world.site_weight_total);
    for (index, w) in world.site_weights.iter().enumerate() {
        if pick < *w {
            return index;
        }
        pick -= w;
    }
    world.n_sites() - 1
}

/// Pick a page for a normal (baseline-policy) access.
fn pick_natural_page<'a>(
    pools: &SitePools<'a>,
    rng: &mut StdRng,
    natural_pagedata: f64,
) -> &'a Page {
    if rng.gen_bool(natural_pagedata.clamp(0.0, 1.0)) {
        let pd = &pools.page_data;
        if !pd.is_empty() {
            return pd[rng.gen_range(0..pd.len())];
        }
    }
    // Mostly content/directory, occasionally landing, rarely restricted
    // (bots do stumble into /secure/* — the base file's disallows are the
    // everyday compliance signal).
    let roll: f64 = rng.gen_range(0.0..1.0);
    let kind = if roll < 0.10 {
        PageKind::Landing
    } else if roll < 0.60 {
        PageKind::Content
    } else if roll < 0.97 {
        PageKind::Directory
    } else {
        PageKind::Restricted
    };
    let pool = pools.of_kind(kind);
    if pool.is_empty() {
        return &pools.site.pages[rng.gen_range(0..pools.site.pages.len())];
    }
    pool[rng.gen_range(0..pool.len())]
}

/// One crawling session.
#[allow(clippy::too_many_arguments)]
fn session<O: PolicyOracle>(
    world: &World<'_>,
    oracle: &O,
    unit: usize,
    bot: &SimBot,
    ua: Sym,
    asn: Sym,
    ip_hash_of: &dyn Fn(u32) -> u64,
    rng: &mut StdRng,
    start: Timestamp,
    lenses: &LensTable,
    last_check: &mut Option<u64>,
    out: &mut ShardWriter,
) {
    let bb = &bot.behavior;
    let site_index = pick_site(world, rng, bb.directory_affinity);
    let pools = &world.pools[site_index];
    let site = out.site_sym(site_index);
    let ip_hash = ip_hash_of(rng.gen_range(0..bb.ip_pool));

    let mut now = start;

    // Lazy-cache robots.txt fetch: refresh at the first crawl opportunity
    // after the TTL lapses.
    if let RobotsCheckPolicy::EveryHours(h) = bb.robots_check {
        let due = match *last_check {
            None => true,
            Some(at) => now.unix().saturating_sub(at) >= h * 3600,
        };
        if due {
            out.emit(ua, asn, site, ip_hash, "/robots.txt", 430, 200, None, now);
            *last_check = Some(now.unix());
            now = now.plus_secs(1 + exp_sample(rng, 2.0) as u64);
        }
    }

    // The policy the bot *believes* is live (the schedule itself in the
    // baseline, a monitored belief timeline in coupled mode), projected
    // onto the engine's behavioural axes via the policy matcher: the bot
    // reacts to what the believed file *says*, not to which enum variant
    // carried it.
    let believed = oracle.believed(unit, site_index, now);
    let lens = lenses.lens(believed);
    let pages = 1 + exp_sample(rng, (bb.pages_per_session - 1.0).max(0.0)) as u64;

    for i in 0..pages {
        // Pacing between page fetches (the crawl-delay signal).
        if i > 0 {
            let comply_pace = if lens.delayed {
                rng.gen_bool(bb.compliance.crawl_delay)
            } else {
                rng.gen_bool(bb.compliance.natural_slow)
            };
            let delta = if comply_pace {
                30.0 + exp_sample(rng, 25.0)
            } else {
                1.0 + exp_sample(rng, bb.fast_pacing_secs)
            };
            now = now.plus_secs(delta.max(1.0) as u64);
        }

        // Target selection under the believed policy. `disallow_all`
        // covers both a served disallow-all file (for bots it does not
        // exempt) and the RFC 9309 §2.3.1.4 unreachable state — in the
        // latter there is no served file to grant the SEO agents their
        // exemption, so even exempt bots face the gamble.
        let page: &Page = if lens.disallow_all {
            if rng.gen_bool(bb.compliance.disallow) {
                // The bot obeys: instead of the page it re-consults the
                // policy file — the only permitted target. This is what
                // the paper's fully-compliant bots look like in the
                // logs (e.g. ChatGPT-User's all-robots.txt traffic
                // under disallow-all, Table 6).
                out.emit(ua, asn, site, ip_hash, "/robots.txt", 430, 200, None, now);
                continue;
            }
            pick_natural_page(pools, rng, bb.compliance.natural_pagedata)
        } else if lens.endpoint_only {
            if rng.gen_bool(bb.compliance.endpoint) {
                let pd = &pools.page_data;
                if pd.is_empty() {
                    continue;
                }
                pd[rng.gen_range(0..pd.len())]
            } else {
                // A non-compliant fetch under v2 goes where the bot was
                // going anyway — which is *not* the page-data endpoint
                // (that family is a compliance signal now, and the
                // paper observes several bots shifting away from it:
                // the negative endpoint z-scores of Table 10).
                let pool = &pools.non_pagedata;
                if pool.is_empty() {
                    &pools.site.pages[0]
                } else {
                    pool[rng.gen_range(0..pool.len())]
                }
            }
        } else {
            pick_natural_page(pools, rng, bb.compliance.natural_pagedata)
        };

        let jitter: f64 = rng.gen_range(0.5..1.5);
        let bytes = ((page.bytes as f64) * bb.bytes_factor * jitter).max(200.0) as u64;
        let status = if page.path == "/404" || page.path == "/dev-404-page" { 404 } else { 200 };
        out.emit(ua, asn, site, ip_hash, &page.path, bytes, status, None, now);
    }
}

/// Crawlable-page pool of a site, for the anon/spoof generators.
pub(crate) fn crawlable_pool<'w>(world: &'w World<'_>, site_index: usize) -> &'w [&'w Page] {
    &world.pools[site_index].crawlable
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::phases::{PhaseSchedule, PolicyVersion};

    fn small_cfg() -> SimConfig {
        SimConfig::test_small()
    }

    fn base_schedule(cfg: &SimConfig) -> PhaseSchedule {
        PhaseSchedule::always_base(EXPERIMENT_SITE, cfg.start, cfg.end())
    }

    #[test]
    fn deterministic_output() {
        let cfg = small_cfg();
        let schedule = base_schedule(&cfg);
        let a = simulate(&cfg, &schedule);
        let b = simulate(&cfg, &schedule);
        assert_eq!(a.records, b.records);
        assert!(!a.records.is_empty());
    }

    #[test]
    fn different_seeds_differ() {
        let cfg = small_cfg();
        let schedule = base_schedule(&cfg);
        let a = simulate(&cfg, &schedule);
        let b = simulate(&SimConfig { seed: 1234, ..cfg.clone() }, &schedule);
        assert_ne!(a.records, b.records);
    }

    #[test]
    fn worker_counts_agree() {
        let cfg = small_cfg();
        let schedule = base_schedule(&cfg);
        let serial = simulate_table_with_threads(&cfg, &schedule, 1);
        for threads in [2, 8] {
            let parallel = simulate_table_with_threads(&cfg, &schedule, threads);
            assert_eq!(
                serial.table.rows(),
                parallel.table.rows(),
                "rows differ at {threads} workers"
            );
            assert_eq!(serial.table.to_records(), parallel.table.to_records());
        }
    }

    #[test]
    fn table_and_record_paths_agree() {
        let cfg = small_cfg();
        let schedule = base_schedule(&cfg);
        let records = simulate(&cfg, &schedule).records;
        let table = simulate_table(&cfg, &schedule).table;
        assert_eq!(table.to_records(), records);
        // The interned representation is the compact one.
        assert!(
            table.heap_bytes() < botscope_weblog::table::records_heap_bytes(&records),
            "table {}B should undercut records {}B",
            table.heap_bytes(),
            botscope_weblog::table::records_heap_bytes(&records)
        );
    }

    #[test]
    fn records_sorted_and_in_window() {
        let cfg = small_cfg();
        let schedule = base_schedule(&cfg);
        let out = simulate(&cfg, &schedule);
        assert!(out.records.windows(2).all(|w| w[0].timestamp <= w[1].timestamp));
        // Sessions may start just before the horizon and run slightly past
        // it; allow one hour of slack.
        let hard_end = cfg.end().plus_secs(3600 * 2);
        assert!(out.records.iter().all(|r| r.timestamp >= cfg.start && r.timestamp < hard_end));
    }

    #[test]
    fn heavy_bots_dominate() {
        let cfg = SimConfig { days: 4, ..small_cfg() };
        let schedule = base_schedule(&cfg);
        let out = simulate(&cfg, &schedule);
        let count =
            |needle: &str| out.records.iter().filter(|r| r.useragent.contains(needle)).count();
        assert!(count("YisouSpider") > count("GPTBot"), "Table 3 ordering");
        assert!(count("Applebot") > count("ClaudeBot"));
    }

    #[test]
    fn robots_checks_present_for_checking_bots() {
        let cfg = SimConfig { days: 4, scale: 0.05, ..small_cfg() };
        let schedule = base_schedule(&cfg);
        let out = simulate(&cfg, &schedule);
        let robots_by_gpt = out
            .records
            .iter()
            .filter(|r| r.useragent.contains("GPTBot") && r.is_robots_fetch())
            .count();
        assert!(robots_by_gpt > 0, "GPTBot checks robots.txt every 24h");
        // Never-checkers never fetch it.
        let robots_by_axios = out
            .records
            .iter()
            .filter(|r| r.useragent.starts_with("axios") && r.is_robots_fetch())
            .count();
        assert_eq!(robots_by_axios, 0);
    }

    #[test]
    fn disallow_all_suppresses_obedient_bots() {
        // Whole horizon under v3: ChatGPT-User (disallow compliance 1.0)
        // must fetch nothing but robots.txt; HeadlessChrome keeps crawling.
        let cfg = SimConfig {
            days: 6,
            scale: 0.3,
            sites: 3,
            spoofing: false,
            anon_traffic: false,
            ..small_cfg()
        };
        let schedule = PhaseSchedule {
            phases: vec![crate::phases::Phase {
                version: PolicyVersion::V3DisallowAll,
                start: cfg.start,
                end: cfg.end().plus_secs(86_400 * 2),
            }],
            experiment_site: EXPERIMENT_SITE,
        };
        let out = simulate(&cfg, &schedule);
        let exp_site = "site-00.example.edu";
        let gpt_pages = out
            .records
            .iter()
            .filter(|r| {
                r.useragent.contains("ChatGPT-User")
                    && r.sitename == exp_site
                    && !r.is_robots_fetch()
            })
            .count();
        assert_eq!(gpt_pages, 0, "fully obedient bot fetched pages under disallow-all");
        let headless_pages = out
            .records
            .iter()
            .filter(|r| {
                r.useragent.contains("HeadlessChrome")
                    && r.sitename == exp_site
                    && !r.is_robots_fetch()
            })
            .count();
        assert!(headless_pages > 0, "headless browser should ignore disallow-all");
    }

    #[test]
    fn exempt_bots_keep_crawling_under_v3() {
        let cfg = SimConfig {
            days: 6,
            scale: 0.3,
            sites: 3,
            spoofing: false,
            anon_traffic: false,
            ..small_cfg()
        };
        let schedule = PhaseSchedule {
            phases: vec![crate::phases::Phase {
                version: PolicyVersion::V3DisallowAll,
                start: cfg.start,
                end: cfg.end().plus_secs(86_400 * 2),
            }],
            experiment_site: EXPERIMENT_SITE,
        };
        let out = simulate(&cfg, &schedule);
        let googlebot_pages = out
            .records
            .iter()
            .filter(|r| {
                r.useragent.contains("Googlebot/2.1")
                    && r.sitename == "site-00.example.edu"
                    && !r.is_robots_fetch()
            })
            .count();
        assert!(googlebot_pages > 0, "exempt Googlebot must continue crawling");
    }

    #[test]
    fn ground_truth_populated() {
        let cfg = small_cfg();
        let out = simulate(&cfg, &base_schedule(&cfg));
        assert!(out.truth.behaviors.len() >= 120);
        assert!(out.truth.exempt.iter().any(|n| n == "Googlebot"));
        assert!(!out.truth.spoofed_requests.is_empty());
    }

    #[test]
    fn asn_matches_home_network() {
        let cfg = small_cfg();
        let out = simulate(&SimConfig { spoofing: false, ..cfg.clone() }, &base_schedule(&cfg));
        for r in out.records.iter().filter(|r| r.useragent.contains("ClaudeBot")) {
            assert_eq!(r.asn, "AMAZON-02");
        }
    }

    #[test]
    fn scale_scales_volume() {
        let cfg1 = SimConfig { scale: 0.02, anon_traffic: false, spoofing: false, ..small_cfg() };
        let cfg2 = SimConfig { scale: 0.08, ..cfg1.clone() };
        let schedule = base_schedule(&cfg1);
        let n1 = simulate(&cfg1, &schedule).records.len() as f64;
        let n2 = simulate(&cfg2, &schedule).records.len() as f64;
        let ratio = n2 / n1;
        assert!(ratio > 2.0 && ratio < 8.0, "4x scale gave ratio {ratio}");
    }

    #[test]
    fn worker_threads_env_parsing() {
        // Only asserts the default is sane; the env override is covered
        // by the explicit-thread-count API used everywhere in tests.
        assert!(worker_threads() >= 1);
    }

    #[test]
    fn worker_threads_default_never_exceeds_hardware() {
        // The BENCH regression this pins: defaulting to 8 workers on a
        // 1-core container was slower than running serial.
        assert_eq!(worker_threads_from(None, 1), 1);
        assert_eq!(worker_threads_from(None, 4), 4);
        assert_eq!(worker_threads_from(None, 0), 1); // defensive floor
    }

    #[test]
    fn worker_threads_explicit_setting_wins() {
        // An explicit positive BOTSCOPE_THREADS wins even beyond the
        // hardware (byte-identity makes oversubscription safe).
        assert_eq!(worker_threads_from(Some("8"), 1), 8);
        assert_eq!(worker_threads_from(Some(" 2 "), 16), 2);
        // Zero, junk, and empty fall back to the hardware default.
        assert_eq!(worker_threads_from(Some("0"), 3), 3);
        assert_eq!(worker_threads_from(Some("lots"), 3), 3);
        assert_eq!(worker_threads_from(Some(""), 3), 3);
        assert_eq!(worker_threads_from(Some("-1"), 3), 3);
    }

    #[test]
    fn streamed_simulate_matches_materialized() {
        use botscope_weblog::sink::TableSink;

        let cfg = small_cfg();
        let schedule = base_schedule(&cfg);
        let reference = simulate_table_with_threads(&cfg, &schedule, 1);
        // Tiny runs force every unit to spill multiple times.
        let opts = StreamOptions { rows_per_run: 64, spill_dir: None };
        for threads in [1, 2, 8] {
            let mut sink = TableSink::new();
            let out = simulate_stream_with_threads(
                &cfg,
                &schedule,
                threads,
                &opts,
                &mut [&mut sink as &mut dyn RowSink],
            )
            .expect("streaming simulate");
            assert_eq!(out.rows as usize, reference.table.len(), "{threads} workers");
            assert_eq!(sink.table.to_records(), reference.table.to_records(), "{threads} workers");
            assert_eq!(out.truth.spoofed_requests, reference.truth.spoofed_requests);
            assert_eq!(out.truth.behaviors, reference.truth.behaviors);
            assert_eq!(out.truth.exempt, reference.truth.exempt);
        }
    }

    #[test]
    fn streamed_simulate_cleans_up_spill_files() {
        let cfg = SimConfig { days: 1, ..small_cfg() };
        let schedule = base_schedule(&cfg);
        let dir = std::env::temp_dir().join(format!("botscope-spill-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let opts = StreamOptions { rows_per_run: 128, spill_dir: Some(dir.clone()) };
        let mut sink = botscope_weblog::sink::CountingSink::default();
        simulate_stream_with_threads(
            &cfg,
            &schedule,
            1,
            &opts,
            &mut [&mut sink as &mut dyn RowSink],
        )
        .expect("streaming simulate");
        assert!(sink.rows > 0);
        let leftovers: Vec<_> = std::fs::read_dir(&dir).unwrap().collect();
        assert!(leftovers.is_empty(), "spill files not cleaned: {leftovers:?}");
        std::fs::remove_dir(&dir).unwrap();
    }
}

//! # botscope-simnet
//!
//! A deterministic, discrete-event web-traffic generator that stands in
//! for the IMC '25 study's private institutional logs (see DESIGN.md §2
//! for the substitution argument).
//!
//! The simulator models:
//!
//! * a **36-site university web estate** ([`site`]) with realistic page
//!   inventories — a people directory, `/page-data/*` JSON endpoints, news
//!   and events pages, and the `/404`, `/dev-404-page`, `/secure/*` paths
//!   restricted by the institution's base robots.txt,
//! * a **fleet of ~130 known bots** ([`fleet`], [`behavior`]) drawn from
//!   the `botscope-useragent` registry. The ~30 bots the paper reports
//!   individually are calibrated to the paper's own numbers: traffic
//!   volume from Table 3, per-directive compliance from Table 6, re-check
//!   cadence from Table 7 / Figure 10, home networks from Table 8,
//! * **anonymous traffic** ([`anon`]): browsers from residential networks
//!   and unlabelled headless scrapers,
//! * **user-agent spoofers** ([`spoof`]): minority-network impostors
//!   planted per Table 8/9, which the analysis pipeline must rediscover,
//! * the **four-phase robots.txt experiment** ([`phases`]): base → crawl
//!   delay → endpoint-only → disallow-all, two weeks each, on the
//!   high-traffic experiment site (paper §4.1, Figures 5–8).
//!
//! Everything is a pure function of a single `u64` seed: identical seeds
//! produce byte-identical record streams. The generator *plants* ground-
//! truth behaviour; `botscope-core` must *measure* it back — closing the
//! generator→analyzer validation loop that replaces comparison against
//! the unavailable raw logs.
//!
//! ```
//! use botscope_simnet::{scenario, SimConfig};
//!
//! let cfg = SimConfig { days: 2, scale: 0.05, ..SimConfig::default() };
//! let out = scenario::full_study(&cfg);
//! let out2 = scenario::full_study(&cfg);
//! assert_eq!(out.records.len(), out2.records.len()); // deterministic
//! assert!(!out.records.is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod anon;
pub mod behavior;
pub mod belief;
pub mod config;
pub mod engine;
pub mod fleet;
pub mod phases;
pub mod scenario;
pub mod server;
pub mod site;
pub mod spoof;

pub use belief::{BeliefAtlas, BeliefTimeline, BelievedPolicy, PolicyOracle, ScheduleOracle};
pub use config::SimConfig;
pub use engine::{
    child_seed, worker_threads, worker_threads_from, SimOutput, SimStreamOutput, SimTableOutput,
    StreamOptions,
};
pub use phases::{PhaseSchedule, PolicyVersion};

//! User-agent spoofing traffic (paper §5.2, Tables 8/9, Figure 11).
//!
//! For each Table 8 profile we plant a trickle of requests carrying the
//! spoofed bot's exact `User-Agent` header but originating from the
//! profile's suspicious minority networks. Volumes follow the paper: "on
//! average, less than 5 web accesses associated with these infrequent
//! ASNs for most of the flagged bots", with the three notable exceptions
//! scaled from Table 8's text — Baiduspider 381/15132, Googlebot 33/9103,
//! SkypeURIPreview 26/831 over the 40-day window. Spoofers ignore
//! robots.txt entirely (they never fetch it and never comply), which is
//! what Figure 11 observes for most spoofed bots.

use std::collections::BTreeMap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use botscope_asn::catalog::SPOOF_CATALOG;
use botscope_asn::ip_for;

use crate::engine::{crawlable_pool, ShardWriter, World};
use crate::fleet::SimBot;

/// Total spoofed accesses per bot over the paper's 40-day window
/// (exceptions from §5.2; everything else defaults to ~3 per ASN).
fn spoof_budget(bot: &str, n_suspicious: usize) -> f64 {
    match bot {
        "Baiduspider" => 381.0,
        "Googlebot" => 33.0,
        "SkypeUriPreview" => 26.0,
        _ => 6.0 * n_suspicious as f64,
    }
}

/// Plant spoofed traffic; returns planted request counts per bot name.
pub(crate) fn generate(
    world: &World<'_>,
    fleet: &[SimBot],
    out: &mut ShardWriter,
) -> BTreeMap<String, u64> {
    let cfg = world.cfg;
    // Spoofers ignore the robots.txt schedule by definition.
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x5B00F);
    let mut planted: BTreeMap<String, u64> = BTreeMap::new();
    let horizon = cfg.days * 86_400;

    for profile in SPOOF_CATALOG {
        // The spoofer sends the *exact* UA header the real bot sends, so
        // the analysis pipeline groups them together — that's the attack.
        let Some(victim) = fleet.iter().find(|b| b.spec.canonical == profile.bot) else {
            continue;
        };
        let ua = out.table.intern(&victim.ua_string);
        let total =
            spoof_budget(profile.bot, profile.suspicious_asns.len()) * cfg.scale * cfg.days as f64
                / 40.0;
        // At least one request per suspicious ASN so Table 8 rows are
        // rediscoverable at any scale.
        for (ai, asn) in profile.suspicious_asns.iter().enumerate() {
            let share = (total / profile.suspicious_asns.len() as f64).ceil().max(1.0) as u64;
            let ip = ip_for(asn, 7000 + ai as u32).expect("suspicious ASN in directory");
            let ip_hash = world.hasher.hash_ipv4(ip);
            let asn_sym = out.table.intern(asn);
            for _ in 0..share {
                let t = rng.gen_range(0..horizon);
                // Spoofers chase content where it is: half their requests
                // hit the high-traffic experiment site — which is also
                // what makes them visible in the per-phase spoof counts
                // (paper Table 9) and Figure 11.
                let site_index =
                    if rng.gen_bool(0.5) { 0 } else { rng.gen_range(0..world.n_sites()) };
                let pool = crawlable_pool(world, site_index);
                let page = pool[rng.gen_range(0..pool.len())];
                let bytes = (page.bytes as f64 * rng.gen_range(0.5..1.5)) as u64;
                out.emit(
                    ua,
                    asn_sym,
                    out.site_sym(site_index),
                    ip_hash,
                    &page.path,
                    bytes,
                    200,
                    None,
                    cfg.start.plus_secs(t),
                );
                *planted.entry(profile.bot.to_string()).or_default() += 1;
            }
        }
    }
    planted
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimConfig;
    use crate::fleet::build_fleet;

    use crate::site::Site;
    use botscope_weblog::iphash::IpHasher;
    use botscope_weblog::record::AccessRecord;

    /// Run only the spoof generator into a shard.
    fn generate_only(cfg: &SimConfig) -> (Vec<AccessRecord>, BTreeMap<String, u64>, Vec<SimBot>) {
        let estate = Site::estate(cfg.sites);
        let hasher = IpHasher::from_seed(cfg.seed);
        let fleet = build_fleet();
        let world = World::new_for_tests(cfg, &estate, &hasher);
        let mut writer = ShardWriter::new(&world);
        let planted = generate(&world, &fleet, &mut writer);
        (writer.table.to_records(), planted, fleet)
    }

    #[test]
    fn plants_every_catalog_bot() {
        let (_, planted, fleet) = generate_only(&SimConfig::test_small());
        // Every catalog bot present in the fleet got at least one spoof.
        for profile in SPOOF_CATALOG {
            if fleet.iter().any(|b| b.spec.canonical == profile.bot) {
                assert!(planted.get(profile.bot).copied().unwrap_or(0) > 0, "{}", profile.bot);
            }
        }
    }

    #[test]
    fn spoofs_come_from_suspicious_asns_only() {
        let (out, _, fleet) = generate_only(&SimConfig::test_small());
        for r in &out {
            let profile = SPOOF_CATALOG
                .iter()
                .find(|p| {
                    fleet.iter().any(|b| b.spec.canonical == p.bot && b.ua_string == r.useragent)
                })
                .expect("spoof record belongs to a catalog bot");
            assert!(
                profile.suspicious_asns.contains(&r.asn.as_str()),
                "{} spoofed from unexpected ASN {}",
                profile.bot,
                r.asn
            );
            assert_ne!(r.asn, profile.main_asn);
        }
    }

    #[test]
    fn baiduspider_dominates_spoof_volume() {
        let (_, planted, _) = generate_only(&SimConfig::test_small());
        let baidu = planted.get("Baiduspider").copied().unwrap_or(0);
        let claude = planted.get("ClaudeBot").copied().unwrap_or(0);
        assert!(baidu > claude, "Baiduspider has the §5.2 spoof exception");
    }

    #[test]
    fn spoofers_never_fetch_robots() {
        let (out, _, _) = generate_only(&SimConfig::test_small());
        assert!(out.iter().all(|r| !r.is_robots_fetch()));
    }

    #[test]
    fn deterministic() {
        let a = generate_only(&SimConfig::test_small());
        let b = generate_only(&SimConfig::test_small());
        assert_eq!(a.0, b.0);
        assert_eq!(a.1, b.1);
    }
}

//! The simulated web estate.
//!
//! Thirty-six institution sites (paper §3.1: IT department, campus dining,
//! a personnel directory, …). Each site owns a deterministic page
//! inventory including the path families the experiment's robots.txt
//! files regulate: `/page-data/*` (the endpoint v2 allows), `/404`,
//! `/dev-404-page` and `/secure/*` (restricted by every version), and
//! ordinary content pages. Site 0 is the high-traffic experiment site;
//! site 1 is the people directory YisouSpider hammered (paper §3.2).

/// A page's broad class, used by bots to bias their crawl mix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PageKind {
    /// The site root and top-level navigation pages.
    Landing,
    /// Ordinary content (news, events, department pages).
    Content,
    /// Person profile pages (the directory site has thousands).
    Directory,
    /// Gatsby-style `/page-data/*.json` assets — "a common target for
    /// scrapers" (paper §4.1).
    PageData,
    /// Paths the base robots.txt restricts (`/404`, `/dev-404-page`,
    /// `/secure/*`).
    Restricted,
}

/// One page.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Page {
    /// URI path.
    pub path: String,
    /// Class.
    pub kind: PageKind,
    /// Nominal transfer size in bytes.
    pub bytes: u64,
}

/// One site with its inventory.
#[derive(Debug, Clone)]
pub struct Site {
    /// Hostname, `site-NN.example.edu`.
    pub name: String,
    /// Index in the estate.
    pub index: usize,
    /// Page inventory.
    pub pages: Vec<Page>,
}

/// Index of the experiment site (robots.txt phases apply here).
pub const EXPERIMENT_SITE: usize = 0;
/// Index of the people-directory site.
pub const DIRECTORY_SITE: usize = 1;

impl Site {
    /// Deterministically build site `index` of `total`.
    pub fn build(index: usize, _total: usize) -> Site {
        let name = format!("site-{index:02}.example.edu");
        let mut pages = Vec::new();

        pages.push(Page { path: "/".into(), kind: PageKind::Landing, bytes: 18_000 });
        pages.push(Page { path: "/about".into(), kind: PageKind::Landing, bytes: 12_000 });
        pages.push(Page { path: "/contact".into(), kind: PageKind::Landing, bytes: 9_000 });

        // Content volume varies by site; the experiment site is rich.
        let content_pages = match index {
            EXPERIMENT_SITE => 120,
            DIRECTORY_SITE => 30,
            _ => 20 + (index * 7) % 40,
        };
        for i in 0..content_pages {
            let (family, bytes) = match i % 3 {
                0 => ("news", 26_000),
                1 => ("events", 14_000),
                _ => ("programs", 31_000),
            };
            pages.push(Page {
                path: format!("/{family}/item-{i:03}"),
                kind: PageKind::Content,
                bytes,
            });
        }

        // The directory site carries a large people directory; every site
        // has a small one.
        let people = if index == DIRECTORY_SITE { 400 } else { 12 };
        for i in 0..people {
            pages.push(Page {
                path: format!("/people/person-{i:04}"),
                kind: PageKind::Directory,
                bytes: 22_000,
            });
        }

        // Gatsby page-data mirrors of the content pages.
        let page_data = content_pages.min(60);
        for i in 0..page_data {
            pages.push(Page {
                path: format!("/page-data/item-{i:03}/page-data.json"),
                kind: PageKind::PageData,
                bytes: 4_500,
            });
        }
        pages.push(Page {
            path: "/page-data/index/page-data.json".into(),
            kind: PageKind::PageData,
            bytes: 3_000,
        });

        // Restricted paths from the base robots.txt (Figure 5).
        pages.push(Page { path: "/404".into(), kind: PageKind::Restricted, bytes: 2_000 });
        pages.push(Page { path: "/dev-404-page".into(), kind: PageKind::Restricted, bytes: 2_000 });
        for i in 0..4 {
            pages.push(Page {
                path: format!("/secure/admin-{i}"),
                kind: PageKind::Restricted,
                bytes: 5_000,
            });
        }

        Site { name, index, pages }
    }

    /// Build the whole estate.
    pub fn estate(total: usize) -> Vec<Site> {
        (0..total).map(|i| Site::build(i, total)).collect()
    }

    /// Pages of one kind.
    pub fn pages_of(&self, kind: PageKind) -> Vec<&Page> {
        self.pages.iter().filter(|p| p.kind == kind).collect()
    }

    /// Pages that are *not* restricted (the legitimate crawl surface).
    pub fn crawlable(&self) -> Vec<&Page> {
        self.pages.iter().filter(|p| p.kind != PageKind::Restricted).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn estate_shape() {
        let estate = Site::estate(36);
        assert_eq!(estate.len(), 36);
        assert_eq!(estate[0].name, "site-00.example.edu");
        assert_eq!(estate[35].name, "site-35.example.edu");
    }

    #[test]
    fn determinism() {
        let a = Site::build(5, 36);
        let b = Site::build(5, 36);
        assert_eq!(a.pages, b.pages);
    }

    #[test]
    fn directory_site_is_people_heavy() {
        let estate = Site::estate(36);
        let dir_people = estate[DIRECTORY_SITE].pages_of(PageKind::Directory).len();
        let other_people = estate[3].pages_of(PageKind::Directory).len();
        assert!(dir_people > 10 * other_people);
    }

    #[test]
    fn every_site_has_the_regulated_paths() {
        for site in Site::estate(36) {
            assert!(site.pages.iter().any(|p| p.path == "/404"));
            assert!(site.pages.iter().any(|p| p.path == "/dev-404-page"));
            assert!(site.pages.iter().any(|p| p.path.starts_with("/secure/")));
            assert!(!site.pages_of(PageKind::PageData).is_empty());
        }
    }

    #[test]
    fn crawlable_excludes_restricted() {
        let site = Site::build(0, 36);
        assert!(site.crawlable().iter().all(|p| p.kind != PageKind::Restricted));
        assert!(site.crawlable().len() < site.pages.len());
    }

    #[test]
    fn experiment_site_is_rich() {
        let estate = Site::estate(36);
        let exp = estate[EXPERIMENT_SITE].pages.len();
        assert!(exp > estate[20].pages.len());
    }
}

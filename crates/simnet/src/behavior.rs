//! Per-bot behaviour models.
//!
//! A bot's behaviour has three independent axes, mirroring what the study
//! measures:
//!
//! * **volume & shape** — session arrival rate, pages per session, pacing,
//!   bytes per page (what Tables 2/3 and Figures 2–4 see),
//! * **directive compliance** — the probability of honouring each of the
//!   three experimental directives, plus the bot's *natural* behaviour
//!   under the permissive baseline (what Tables 5/6/10 and Figure 9 see),
//! * **robots.txt cadence** — how often the bot re-fetches the policy
//!   file, if ever (what Table 7 and Figure 10 see).

/// Probabilities of honouring each directive (paper Table 6 columns).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompliancePolicy {
    /// P(inter-access delta ≥ 30 s) while the crawl-delay file is live.
    pub crawl_delay: f64,
    /// P(access goes to an allowed target) while the endpoint file is live.
    pub endpoint: f64,
    /// P(page fetch suppressed) while the disallow-all file is live.
    pub disallow: f64,
    /// Natural P(delta ≥ 30 s) under the baseline file — many bots pace
    /// slowly anyway, which the paper observes as high default compliance.
    pub natural_slow: f64,
    /// Natural share of accesses landing on `/page-data/*` under the
    /// baseline file (scrapers target it; previews rarely do).
    pub natural_pagedata: f64,
}

impl CompliancePolicy {
    /// Validate all fields are probabilities.
    pub fn assert_valid(&self) {
        for (name, v) in [
            ("crawl_delay", self.crawl_delay),
            ("endpoint", self.endpoint),
            ("disallow", self.disallow),
            ("natural_slow", self.natural_slow),
            ("natural_pagedata", self.natural_pagedata),
        ] {
            assert!((0.0..=1.0).contains(&v), "{name}={v} not a probability");
        }
    }

    /// A perfectly obedient profile.
    pub fn obedient() -> Self {
        CompliancePolicy {
            crawl_delay: 1.0,
            endpoint: 1.0,
            disallow: 1.0,
            natural_slow: 0.6,
            natural_pagedata: 0.2,
        }
    }

    /// A fully defiant profile.
    pub fn defiant() -> Self {
        CompliancePolicy {
            crawl_delay: 0.0,
            endpoint: 0.0,
            disallow: 0.0,
            natural_slow: 0.1,
            natural_pagedata: 0.2,
        }
    }
}

/// How often a bot re-fetches robots.txt (paper §5.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RobotsCheckPolicy {
    /// Never fetches robots.txt at all (Table 7 rows).
    Never,
    /// Lazy cache: re-fetches at the next crawl opportunity once the
    /// cached copy is older than this many hours (Google's documented
    /// convention is 24). Actual fetch times depend on when the bot
    /// happens to crawl, so re-checks are irregular.
    EveryHours(u64),
    /// Diligent scheduled polling: fetches robots.txt every N hours on a
    /// timer, independent of crawl sessions. This is what the §5.1
    /// analysis sees as a bot that re-checks "within every window" —
    /// only scheduled pollers can cover every 12-hour window of a
    /// 46-day dataset.
    Poll(u64),
}

impl RobotsCheckPolicy {
    /// The cache TTL this cadence implies for a coupled fetch agent:
    /// the belief a bot holds goes stale after this many seconds.
    /// `None` means the bot never fetches robots.txt at all — its
    /// belief stays `Unfetched` forever.
    pub fn ttl_secs(self) -> Option<u64> {
        match self {
            RobotsCheckPolicy::Never => None,
            RobotsCheckPolicy::EveryHours(h) | RobotsCheckPolicy::Poll(h) => Some(h.max(1) * 3600),
        }
    }
}

/// The full behavioural profile of one simulated bot.
#[derive(Debug, Clone, PartialEq)]
pub struct BotBehavior {
    /// Mean page accesses per day at scale 1.0 (Table 3's hits ÷ 40).
    pub daily_hits: f64,
    /// Mean pages per session (geometric distribution).
    pub pages_per_session: f64,
    /// Mean seconds between requests inside a session when *not*
    /// honouring a crawl delay.
    pub fast_pacing_secs: f64,
    /// Mean bytes per page multiplier (1.0 = the page's nominal size;
    /// preview bots fetch less, data scrapers fetch assets too).
    pub bytes_factor: f64,
    /// Number of distinct source IPs inside the home network.
    pub ip_pool: u32,
    /// Compliance profile.
    pub compliance: CompliancePolicy,
    /// robots.txt fetch cadence.
    pub robots_check: RobotsCheckPolicy,
    /// Share of this bot's traffic aimed at the people-directory site
    /// (YisouSpider ≈ 1.0; most bots spread evenly).
    pub directory_affinity: f64,
}

impl BotBehavior {
    /// A neutral default used for registry bots without explicit
    /// calibration: modest, slow-ish, mostly polite.
    pub fn default_minor() -> Self {
        BotBehavior {
            daily_hits: 3.0,
            pages_per_session: 4.0,
            fast_pacing_secs: 12.0,
            bytes_factor: 1.0,
            ip_pool: 2,
            compliance: CompliancePolicy {
                crawl_delay: 0.7,
                endpoint: 0.4,
                disallow: 0.3,
                natural_slow: 0.5,
                natural_pagedata: 0.15,
            },
            robots_check: RobotsCheckPolicy::EveryHours(48),
            directory_affinity: 0.1,
        }
    }

    /// Validate invariants.
    pub fn assert_valid(&self) {
        assert!(self.daily_hits > 0.0, "daily_hits must be positive");
        assert!(self.pages_per_session >= 1.0, "sessions need at least one page");
        assert!(self.fast_pacing_secs > 0.0);
        assert!(self.bytes_factor > 0.0);
        assert!(self.ip_pool >= 1);
        assert!((0.0..=1.0).contains(&self.directory_affinity));
        self.compliance.assert_valid();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_valid() {
        CompliancePolicy::obedient().assert_valid();
        CompliancePolicy::defiant().assert_valid();
        BotBehavior::default_minor().assert_valid();
    }

    #[test]
    #[should_panic(expected = "not a probability")]
    fn bad_probability_caught() {
        CompliancePolicy { crawl_delay: 1.5, ..CompliancePolicy::obedient() }.assert_valid();
    }

    #[test]
    #[should_panic(expected = "daily_hits")]
    fn zero_rate_caught() {
        BotBehavior { daily_hits: 0.0, ..BotBehavior::default_minor() }.assert_valid();
    }

    #[test]
    fn check_policy_variants() {
        assert_ne!(RobotsCheckPolicy::Never, RobotsCheckPolicy::EveryHours(24));
        assert_eq!(RobotsCheckPolicy::EveryHours(24), RobotsCheckPolicy::EveryHours(24));
    }
}

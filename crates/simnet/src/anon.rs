//! Anonymous background traffic.
//!
//! The study's dataset is dominated by agents that are *not* known bots:
//! Table 2 counts 231,859 unique IPs and 19,250 unique user agents overall
//! against 11,291 IPs and 405 user agents for known bots. We model that
//! long tail as interactive browser sessions from residential and
//! university networks, with per-entity browser version jitter so the
//! unique-user-agent gap in Table 2 reproduces.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use botscope_asn::ip_for;

use crate::engine::{crawlable_pool, ShardWriter, World};
use crate::site::PageKind;

/// Residential/consumer networks anonymous visitors arrive from.
const ANON_ASNS: [&str; 5] = ["COMCAST-7922", "ATT-7018", "VERIZON-701", "DTAG", "UNIVERSITY-NET"];

/// Browser UA templates; `{v}` is replaced with a per-entity version.
const BROWSER_TEMPLATES: [&str; 4] = [
    "Mozilla/5.0 (Windows NT 10.0; Win64; x64) AppleWebKit/537.36 (KHTML, like Gecko) Chrome/{v}.0.0.0 Safari/537.36",
    "Mozilla/5.0 (Macintosh; Intel Mac OS X 10_15_7) AppleWebKit/605.1.15 (KHTML, like Gecko) Version/{v}.1 Safari/605.1.15",
    "Mozilla/5.0 (X11; Linux x86_64; rv:{v}.0) Gecko/20100101 Firefox/{v}.0",
    "Mozilla/5.0 (Windows NT 10.0; Win64; x64) AppleWebKit/537.36 (KHTML, like Gecko) Chrome/{v}.0.0.0 Safari/537.36 Edg/{v}.0",
];

/// Number of anonymous entities at scale 1.0 over the paper's 46 days.
const ENTITIES_AT_SCALE_1: f64 = 3000.0;

/// Generate the anonymous traffic into the shard.
pub(crate) fn generate(world: &World<'_>, out: &mut ShardWriter) {
    let cfg = world.cfg;
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xA11_0A11);
    let entities =
        ((ENTITIES_AT_SCALE_1 * cfg.scale * cfg.days as f64 / 46.0).ceil() as usize).max(1);
    let horizon = cfg.days * 86_400;
    let referer_sym = out.table.intern("https://www.google.com/search");

    for e in 0..entities {
        let template = BROWSER_TEMPLATES[e % BROWSER_TEMPLATES.len()];
        let version = 100 + rng.gen_range(0..30);
        let build = rng.gen_range(1000..7000);
        // Per-entity build jitter reproduces Table 2's wide unique-UA gap
        // between all traffic and known bots.
        let ua = out.table.intern(&template.replace("{v}", &format!("{version}.{build}")));
        // 60% arrive from the big consumer ISPs; the rest from a long tail
        // of small networks (Table 2 counts 8,841 unique ASNs overall vs
        // 179 for known bots).
        let (asn, ip_hash) = if e % 5 < 3 {
            let asn = ANON_ASNS[e % ANON_ASNS.len()];
            let ip = ip_for(asn, e as u32).expect("anon ASN in directory");
            (out.table.intern(asn), world.hasher.hash_ipv4(ip))
        } else {
            let asn = format!("AS{}", 20_000 + e);
            (out.table.intern(&asn), world.hasher.hash_bytes(&(e as u64).to_le_bytes()))
        };

        // Each entity browses in a handful of short sessions.
        let sessions = 1 + rng.gen_range(0..4);
        for _ in 0..sessions {
            let mut t = rng.gen_range(0..horizon);
            let site_index = rng.gen_range(0..world.n_sites());
            let site = out.site_sym(site_index);
            let pages = 1 + rng.gen_range(0..6);
            for _ in 0..pages {
                let pool = crawlable_pool(world, site_index);
                let page = pool[rng.gen_range(0..pool.len())];
                // Humans skim; they rarely pull page-data assets directly.
                if page.kind == PageKind::PageData && rng.gen_bool(0.8) {
                    continue;
                }
                let bytes = (page.bytes as f64 * rng.gen_range(0.8..1.2)) as u64;
                let referer = if rng.gen_bool(0.4) { Some(referer_sym) } else { None };
                out.emit(
                    ua,
                    asn,
                    site,
                    ip_hash,
                    &page.path,
                    bytes,
                    200,
                    referer,
                    cfg.start.plus_secs(t),
                );
                t += rng.gen_range(5..120);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimConfig;
    use botscope_weblog::record::AccessRecord;

    fn browser_asn(asn: &str) -> bool {
        ANON_ASNS.contains(&asn) || asn.starts_with("AS2")
    }

    /// Direct harness: run only the anon generator into a shard.
    fn generate_only(cfg: &SimConfig) -> Vec<AccessRecord> {
        let estate = crate::site::Site::estate(cfg.sites);
        let hasher = botscope_weblog::iphash::IpHasher::from_seed(cfg.seed);
        let world = World::new_for_tests(cfg, &estate, &hasher);
        let mut writer = ShardWriter::new(&world);
        generate(&world, &mut writer);
        writer.table.to_records()
    }

    #[test]
    fn generates_browser_traffic() {
        let cfg = SimConfig { anon_traffic: true, ..SimConfig::test_small() };
        let out = generate_only(&cfg);
        assert!(!out.is_empty());
        assert!(out.iter().all(|r| r.useragent.starts_with("Mozilla/5.0")));
        assert!(out.iter().all(|r| browser_asn(&r.asn)));
    }

    #[test]
    fn deterministic() {
        let cfg = SimConfig::test_small();
        assert_eq!(generate_only(&cfg), generate_only(&cfg));
    }

    #[test]
    fn many_unique_user_agents() {
        let cfg = SimConfig { scale: 0.2, ..SimConfig::test_small() };
        let out = generate_only(&cfg);
        let uas: std::collections::HashSet<&str> =
            out.iter().map(|r| r.useragent.as_str()).collect();
        assert!(uas.len() > 10, "browser UA variety expected, got {}", uas.len());
    }

    #[test]
    fn no_robots_fetches() {
        let cfg = SimConfig::test_small();
        let out = generate_only(&cfg);
        assert!(out.iter().all(|r| !r.is_robots_fetch()), "browsers don't read robots.txt");
    }
}

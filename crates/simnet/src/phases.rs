//! The four-phase robots.txt experiment (paper §4.1, Figures 5–8).
//!
//! Four policy files of increasing strictness, each deployed for two weeks
//! on the experiment site:
//!
//! * **Base** (Fig. 5) — allow everything except `/404`, `/dev-404-page`,
//!   `/secure/*`;
//! * **V1** (Fig. 6) — base plus `Crawl-delay: 30` for everyone;
//! * **V2** (Fig. 7) — eight SEO bots keep base access; everyone else may
//!   only fetch `/page-data/*`;
//! * **V3** (Fig. 8) — eight SEO bots keep base access; everyone else is
//!   denied entirely.

use botscope_robotstxt::{RobotsTxt, RobotsTxtBuilder};
use botscope_weblog::time::Timestamp;

/// The eight search-engine bots exempted from v2/v3 restrictions "per our
/// institution's request, to ensure the sites remain easily findable
/// online" (paper §4.1).
pub const EXEMPT_AGENTS: [&str; 8] = [
    "Googlebot",
    "Slurp",
    "bingbot",
    "Yandexbot",
    "DuckDuckBot",
    "BaiduSpider",
    "DuckAssistBot",
    "ia_archiver",
];

/// Which robots.txt file is live.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum PolicyVersion {
    /// The institution's standard file (Figure 5).
    Base,
    /// 30-second crawl delay for all bots (Figure 6).
    V1CrawlDelay,
    /// `/page-data/*` only, SEO bots exempt (Figure 7).
    V2EndpointOnly,
    /// Full denial, SEO bots exempt (Figure 8).
    V3DisallowAll,
}

impl PolicyVersion {
    /// All four versions in deployment order.
    pub const ALL: [PolicyVersion; 4] = [
        PolicyVersion::Base,
        PolicyVersion::V1CrawlDelay,
        PolicyVersion::V2EndpointOnly,
        PolicyVersion::V3DisallowAll,
    ];

    /// Position of this version in [`PolicyVersion::ALL`] — a stable
    /// small integer for array indexing (policy corpora, change
    /// matrices).
    pub fn index(self) -> usize {
        match self {
            PolicyVersion::Base => 0,
            PolicyVersion::V1CrawlDelay => 1,
            PolicyVersion::V2EndpointOnly => 2,
            PolicyVersion::V3DisallowAll => 3,
        }
    }

    /// Short label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            PolicyVersion::Base => "Base",
            PolicyVersion::V1CrawlDelay => "v1 (crawl delay)",
            PolicyVersion::V2EndpointOnly => "v2 (endpoint access)",
            PolicyVersion::V3DisallowAll => "v3 (disallow all)",
        }
    }

    /// Construct the robots.txt document for this version, exactly as the
    /// paper's figures show.
    pub fn robots_txt(self) -> RobotsTxt {
        let base_rules = |g: botscope_robotstxt::builder::GroupBuilder| {
            g.allow("/").disallow("/404").disallow("/dev-404-page").disallow("/secure/*")
        };
        match self {
            PolicyVersion::Base => RobotsTxtBuilder::new().group(["*"], base_rules).build(),
            PolicyVersion::V1CrawlDelay => {
                RobotsTxtBuilder::new().group(["*"], |g| base_rules(g).crawl_delay(30.0)).build()
            }
            PolicyVersion::V2EndpointOnly => {
                let mut b = RobotsTxtBuilder::new();
                for agent in EXEMPT_AGENTS {
                    b = b.group([agent], base_rules);
                }
                b.group(["*"], |g| g.allow("/page-data/*").disallow("/")).build()
            }
            PolicyVersion::V3DisallowAll => {
                let mut b = RobotsTxtBuilder::new();
                for agent in EXEMPT_AGENTS {
                    b = b.group([agent], base_rules);
                }
                b.group(["*"], |g| g.disallow("/")).build()
            }
        }
    }
}

/// One deployment window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Phase {
    /// The live file.
    pub version: PolicyVersion,
    /// Start (inclusive).
    pub start: Timestamp,
    /// End (exclusive).
    pub end: Timestamp,
}

/// The deployment schedule on the experiment site. Sites other than
/// [`crate::site::EXPERIMENT_SITE`] always serve the base file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseSchedule {
    /// Phases in time order, contiguous.
    pub phases: Vec<Phase>,
    /// The site index the schedule applies to.
    pub experiment_site: usize,
}

impl PhaseSchedule {
    /// The paper's schedule: four contiguous two-week phases starting at
    /// `start`.
    pub fn paper_schedule(start: Timestamp, experiment_site: usize) -> PhaseSchedule {
        const TWO_WEEKS: u64 = 14 * 86_400;
        let phases = PolicyVersion::ALL
            .iter()
            .enumerate()
            .map(|(i, &version)| Phase {
                version,
                start: start.plus_secs(i as u64 * TWO_WEEKS),
                end: start.plus_secs((i as u64 + 1) * TWO_WEEKS),
            })
            .collect();
        PhaseSchedule { phases, experiment_site }
    }

    /// A schedule that serves the base file everywhere, forever (study 1).
    pub fn always_base(experiment_site: usize, start: Timestamp, end: Timestamp) -> PhaseSchedule {
        PhaseSchedule {
            phases: vec![Phase { version: PolicyVersion::Base, start, end }],
            experiment_site,
        }
    }

    /// The policy live on `site` at `time`.
    pub fn policy_at(&self, site: usize, time: Timestamp) -> PolicyVersion {
        if site != self.experiment_site {
            return PolicyVersion::Base;
        }
        for p in &self.phases {
            if time >= p.start && time < p.end {
                return p.version;
            }
        }
        PolicyVersion::Base
    }

    /// Total schedule window.
    pub fn bounds(&self) -> (Timestamp, Timestamp) {
        (
            self.phases.first().expect("non-empty schedule").start,
            self.phases.last().expect("non-empty schedule").end,
        )
    }

    /// The window of one version, if scheduled.
    pub fn window_of(&self, version: PolicyVersion) -> Option<(Timestamp, Timestamp)> {
        self.phases.iter().find(|p| p.version == version).map(|p| (p.start, p.end))
    }
}

/// Whether an agent token is one of the eight exempt SEO bots.
pub fn is_exempt_agent(token: &str) -> bool {
    EXEMPT_AGENTS.iter().any(|a| a.eq_ignore_ascii_case(token))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure5_text() {
        let text = PolicyVersion::Base.robots_txt().to_string();
        assert_eq!(
            text,
            "User-agent: *\nAllow: /\nDisallow: /404\nDisallow: /dev-404-page\nDisallow: /secure/*\n"
        );
    }

    #[test]
    fn figure6_adds_crawl_delay() {
        let doc = PolicyVersion::V1CrawlDelay.robots_txt();
        assert_eq!(doc.crawl_delay("GPTBot"), Some(30.0));
        assert_eq!(doc.crawl_delay("Googlebot"), Some(30.0));
        assert!(doc.is_allowed("GPTBot", "/news/item-001").allow);
        assert!(!doc.is_allowed("GPTBot", "/secure/admin-0").allow);
    }

    #[test]
    fn figure7_endpoint_semantics() {
        let doc = PolicyVersion::V2EndpointOnly.robots_txt();
        // Exempt bots retain full access.
        assert!(doc.is_allowed("Googlebot", "/news/item-001").allow);
        assert!(doc.is_allowed("bingbot", "/people/person-0001").allow);
        assert!(!doc.is_allowed("Googlebot", "/secure/x").allow);
        // Everyone else: page-data only.
        assert!(doc.is_allowed("GPTBot", "/page-data/item-001/page-data.json").allow);
        assert!(!doc.is_allowed("GPTBot", "/news/item-001").allow);
        assert!(!doc.is_allowed("ClaudeBot", "/").allow);
    }

    #[test]
    fn figure8_disallow_all_semantics() {
        let doc = PolicyVersion::V3DisallowAll.robots_txt();
        assert!(doc.is_allowed("Googlebot", "/news/item-001").allow);
        assert!(!doc.is_allowed("GPTBot", "/page-data/x").allow);
        assert!(!doc.is_allowed("GPTBot", "/").allow);
        // robots.txt itself always fetchable.
        assert!(doc.is_allowed("GPTBot", "/robots.txt").allow);
    }

    #[test]
    fn exempt_list_matches_paper() {
        assert_eq!(EXEMPT_AGENTS.len(), 8);
        assert!(is_exempt_agent("googlebot"));
        assert!(is_exempt_agent("ia_archiver"));
        assert!(!is_exempt_agent("GPTBot"));
    }

    #[test]
    fn schedule_windows() {
        let start = Timestamp::from_date(2025, 1, 15);
        let s = PhaseSchedule::paper_schedule(start, 0);
        assert_eq!(s.phases.len(), 4);
        let (lo, hi) = s.bounds();
        assert_eq!(hi.days_since(lo), 56);
        // Contiguity.
        for w in s.phases.windows(2) {
            assert_eq!(w[0].end, w[1].start);
        }
    }

    #[test]
    fn policy_at_lookup() {
        let start = Timestamp::from_date(2025, 1, 15);
        let s = PhaseSchedule::paper_schedule(start, 0);
        assert_eq!(s.policy_at(0, start), PolicyVersion::Base);
        assert_eq!(s.policy_at(0, start.plus_secs(15 * 86_400)), PolicyVersion::V1CrawlDelay);
        assert_eq!(s.policy_at(0, start.plus_secs(29 * 86_400)), PolicyVersion::V2EndpointOnly);
        assert_eq!(s.policy_at(0, start.plus_secs(55 * 86_400)), PolicyVersion::V3DisallowAll);
        // Out of window → base; other sites → always base.
        assert_eq!(s.policy_at(0, start.plus_secs(100 * 86_400)), PolicyVersion::Base);
        assert_eq!(s.policy_at(7, start.plus_secs(29 * 86_400)), PolicyVersion::Base);
    }

    #[test]
    fn window_of_versions() {
        let start = Timestamp::from_date(2025, 1, 15);
        let s = PhaseSchedule::paper_schedule(start, 0);
        let (v2s, v2e) = s.window_of(PolicyVersion::V2EndpointOnly).unwrap();
        assert_eq!(v2e.days_since(v2s), 14);
        let always = PhaseSchedule::always_base(0, start, start.plus_secs(86_400));
        assert!(always.window_of(PolicyVersion::V1CrawlDelay).is_none());
    }

    #[test]
    fn all_versions_parse_and_roundtrip() {
        for v in PolicyVersion::ALL {
            let doc = v.robots_txt();
            let reparsed = botscope_robotstxt::parser::parse(&doc.to_string());
            assert_eq!(reparsed.groups, doc.groups, "{v:?}");
            assert!(reparsed.warnings.is_empty(), "{v:?}");
        }
    }
}

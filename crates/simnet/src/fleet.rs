//! Fleet assembly: one simulated bot per registry entry, calibrated to
//! the paper's measurements.
//!
//! Calibration sources:
//!
//! * **volume** (`daily_hits`, `bytes_factor`) — Table 3: total hits over
//!   the 40-day window ÷ 40, and GB scraped ÷ hits ÷ nominal page size,
//! * **compliance** — Table 6's three per-bot compliance columns, with
//!   the *natural* baseline parameters chosen to reproduce the sign of
//!   the paper's Table 10 z-scores (e.g. GPTBot's large positive shifts
//!   mean it is naturally fast and on-site-wide paths, but honours the
//!   directives once deployed),
//! * **cadence** — Table 7's never-checked rows and Figure 10's
//!   category-level re-check proportions,
//! * **exemption** — the eight SEO agents of §4.1 crawl unrestricted
//!   under v2/v3.
//!
//! Bots the paper does not report individually receive category-default
//! profiles (Table 5 row values) with deterministic per-bot jitter.

use botscope_useragent::registry::{registry, BotSpec};
use botscope_useragent::BotCategory;

use crate::behavior::{BotBehavior, CompliancePolicy, RobotsCheckPolicy};
use crate::phases::is_exempt_agent;

/// One fleet member.
#[derive(Debug, Clone)]
pub struct SimBot {
    /// Registry identity.
    pub spec: &'static BotSpec,
    /// The full `User-Agent` header this bot sends.
    pub ua_string: String,
    /// Behaviour profile.
    pub behavior: BotBehavior,
    /// Whether the bot is one of the eight SEO-exempt agents.
    pub exempt: bool,
}

/// Build the full fleet from the registry.
pub fn build_fleet() -> Vec<SimBot> {
    let reg = registry();
    reg.all()
        .iter()
        .map(|spec| {
            let behavior = calibrate(spec);
            behavior.assert_valid();
            SimBot {
                spec,
                ua_string: ua_header(spec),
                behavior,
                exempt: is_exempt_agent(spec.canonical),
            }
        })
        .collect()
}

/// Correct a target delta-compliance ratio for the cross-session deltas
/// that are always ≥ 30 s: if a fraction `1/pages` of a τ-tuple's deltas
/// are session boundaries, planting probability `p` yields a measured
/// ratio `≈ p·(1-1/pages) + 1/pages`. Invert that so the *measured* value
/// lands on the paper's number.
fn invert_delta_mix(target: f64, pages_per_session: f64) -> f64 {
    let cross = 1.0 / pages_per_session.max(1.0);
    ((target - cross) / (1.0 - cross)).clamp(0.0, 1.0)
}

/// Deterministic small jitter in `[0, 1)` from a bot name (no RNG: fleet
/// construction must be reproducible and order-free).
fn name_jitter(name: &str) -> f64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// The per-bot calibration. Names match the `botscope-useragent` registry.
fn calibrate(spec: &'static BotSpec) -> BotBehavior {
    // (daily_hits, pages/session, bytes_factor) from Table 3 where listed.
    // Compliance columns (crawl, endpoint, disallow) from Table 6.
    // natural_slow / natural_pagedata chosen per Table 10 z-signs.
    // Cadence: Never per Table 7; hours otherwise.
    let c = |crawl: f64, endpoint: f64, disallow: f64, nslow: f64, npd: f64| CompliancePolicy {
        crawl_delay: crawl,
        endpoint,
        disallow,
        natural_slow: nslow,
        natural_pagedata: npd,
    };
    let b = |daily: f64,
             pages: f64,
             bytes: f64,
             ips: u32,
             comp: CompliancePolicy,
             check: RobotsCheckPolicy,
             dir: f64| {
        BotBehavior {
            daily_hits: daily,
            pages_per_session: pages,
            fast_pacing_secs: 8.0,
            bytes_factor: bytes,
            ip_pool: ips,
            compliance: CompliancePolicy {
                crawl_delay: invert_delta_mix(comp.crawl_delay, pages),
                natural_slow: invert_delta_mix(comp.natural_slow, pages),
                ..comp
            },
            robots_check: check,
            directory_affinity: dir,
        }
    };
    use RobotsCheckPolicy::{EveryHours, Never};

    match spec.canonical {
        // ---- Table 3 heavyweights ----
        // YisouSpider paces slowly (it survives the crawl-delay analysis
        // with the rest of the search-engine category, paper Table 5 row
        // 0.780) but ignores access restrictions outright, and lives
        // almost entirely on the people directory (§3.2).
        "YisouSpider" => {
            b(3037.0, 10.0, 3.5, 24, c(0.85, 0.30, 0.04, 0.82, 0.05), EveryHours(168), 0.88)
        }
        // Applebot's volume also concentrates on the directory site, which
        // is why its experiment-site weight in Table 5 is modest relative
        // to its Table 3 rank.
        "Applebot" => {
            b(2956.0, 6.0, 0.10, 16, c(0.841, 0.444, 0.043, 0.86, 0.45), EveryHours(300), 0.85)
        }
        "Baiduspider" => b(378.0, 5.0, 0.18, 8, c(1.0, 0.51, 0.0, 0.97, 0.10), Never, 0.10),
        "bingbot" => b(
            322.0,
            5.0,
            3.2,
            8,
            c(0.80, 0.40, 0.20, 0.78, 0.15),
            RobotsCheckPolicy::Poll(24),
            0.08,
        ),
        "meta-externalagent" => {
            b(321.0, 6.0, 3.5, 6, c(0.60, 0.35, 0.70, 0.55, 0.20), EveryHours(24), 0.05)
        }
        "Googlebot" => b(
            228.0,
            5.0,
            4.8,
            10,
            c(0.65, 0.40, 0.20, 0.66, 0.15),
            RobotsCheckPolicy::Poll(12),
            0.08,
        ),
        // Long sessions, many IPs: headless scrapers hammer in bursts, so
        // their within-session deltas dominate and the measured crawl-delay
        // ratio can sit near the paper's 0.036.
        "HeadlessChrome" => {
            b(209.0, 14.0, 7.5, 12, c(0.036, 0.278, 0.011, 0.07, 0.40), Never, 0.20)
        }
        "ChatGPT-User" => {
            b(76.0, 3.0, 17.0, 5, c(0.910, 0.131, 1.0, 0.96, 0.14), EveryHours(200), 0.10)
        }
        "yandex.com/bots" => b(
            54.0,
            5.0,
            6.7,
            4,
            c(0.992, 0.361, 0.363, 0.999, 0.40),
            RobotsCheckPolicy::Poll(12),
            0.05,
        ),
        "SemrushBot" => b(
            53.0,
            6.0,
            1.5,
            4,
            c(0.521, 0.986, 0.993, 0.48, 0.20),
            RobotsCheckPolicy::Poll(12),
            0.05,
        ),
        "GPTBot" => b(31.0, 5.0, 10.5, 4, c(0.634, 0.305, 1.0, 0.25, 0.12), EveryHours(24), 0.08),
        "dotbot" => b(27.0, 5.0, 0.5, 2, c(0.615, 1.0, 0.988, 0.62, 0.18), EveryHours(24), 0.05),
        "Amazonbot" => b(25.0, 4.0, 3.6, 4, c(0.973, 1.0, 1.0, 0.96, 0.30), EveryHours(24), 0.05),
        "AhrefsBot" => {
            b(22.0, 5.0, 1.2, 3, c(0.697, 1.0, 1.0, 0.70, 0.20), RobotsCheckPolicy::Poll(12), 0.05)
        }
        "SkypeUriPreview" => b(21.0, 2.0, 5.6, 3, c(0.726, 0.0, 0.0, 0.70, 0.02), Never, 0.02),
        "facebookexternalhit" => {
            b(20.0, 2.0, 3.3, 3, c(0.920, 0.281, 0.375, 0.90, 0.10), EveryHours(72), 0.02)
        }
        "BrightEdge Crawler" => b(18.0, 4.0, 4.2, 2, c(1.0, 0.284, 0.0, 0.90, 0.20), Never, 0.05),
        "Scrapy" => b(
            18.0,
            8.0,
            13.0,
            10,
            c(0.30, 0.20, 0.05, 0.25, 0.25),
            RobotsCheckPolicy::Poll(12),
            0.15,
        ),
        "ClaudeBot" => b(17.0, 5.0, 6.8, 4, c(0.480, 1.0, 1.0, 0.45, 0.35), EveryHours(24), 0.08),
        "Bytespider" => {
            b(14.0, 5.0, 7.4, 5, c(0.398, 0.0, 0.02, 0.55, 0.15), EveryHours(120), 0.10)
        }

        // ---- Other Table 6 / Table 7 bots ----
        "AcademicBotRTU" => {
            b(9.0, 4.0, 1.0, 2, c(0.939, 0.032, 0.045, 0.95, 0.03), EveryHours(48), 0.30)
        }
        "Apache-HttpClient" => b(10.0, 4.0, 1.0, 8, c(0.091, 0.043, 0.0, 0.08, 0.04), Never, 0.10),
        "Axios" => b(10.0, 3.0, 1.0, 8, c(0.060, 0.0, 0.0, 0.08, 0.02), Never, 0.10),
        "Coccoc" => b(8.0, 5.0, 1.0, 2, c(0.704, 0.941, 0.929, 0.68, 0.15), EveryHours(24), 0.05),
        "DataForSEOBot" => {
            b(9.0, 5.0, 1.0, 2, c(0.573, 0.667, 0.024, 0.40, 0.15), EveryHours(24), 0.05)
        }
        "Go-http-client" => {
            b(12.0, 4.0, 1.0, 10, c(0.474, 0.167, 0.012, 0.10, 0.02), EveryHours(96), 0.10)
        }
        "Iframely" => b(8.0, 2.0, 1.0, 2, c(0.254, 0.0, 0.0, 0.22, 0.01), Never, 0.02),
        "MicrosoftPreview" => b(8.0, 2.0, 1.0, 2, c(0.294, 0.0, 0.0, 0.35, 0.01), Never, 0.02),
        "PerplexityBot" => {
            b(10.0, 4.0, 2.0, 3, c(0.933, 0.897, 0.202, 0.94, 0.50), EveryHours(200), 0.05)
        }
        "PetalBot" => b(9.0, 5.0, 1.0, 3, c(0.812, 0.643, 1.0, 0.79, 0.60), EveryHours(24), 0.05),
        "Python-requests" => {
            b(12.0, 4.0, 1.0, 12, c(0.462, 0.051, 0.0, 0.12, 0.01), EveryHours(120), 0.10)
        }
        "SemanticScholarBot" => {
            b(9.0, 5.0, 1.0, 2, c(0.663, 1.0, 1.0, 0.20, 0.30), EveryHours(24), 0.20)
        }
        "SeznamBot" => b(8.0, 5.0, 1.0, 2, c(0.565, 0.833, 1.0, 0.58, 0.25), EveryHours(24), 0.05),
        "Slack-ImgProxy" => b(8.0, 2.0, 1.0, 2, c(0.917, 0.0, 0.0, 0.92, 0.01), Never, 0.02),

        // ---- SEO-exempt search bots without Table 6 rows ----
        "Slurp" => b(6.0, 4.0, 1.0, 2, c(0.75, 0.5, 0.3, 0.75, 0.15), EveryHours(24), 0.05),
        "Yandexbot" => b(7.0, 5.0, 1.0, 2, c(0.95, 0.5, 0.3, 0.95, 0.15), EveryHours(24), 0.05),
        "DuckDuckBot" => b(6.0, 4.0, 1.0, 2, c(0.07, 0.0, 0.02, 0.10, 0.10), EveryHours(48), 0.05),
        "DuckAssistBot" => b(5.0, 3.0, 1.0, 2, c(0.80, 0.5, 0.3, 0.80, 0.15), EveryHours(96), 0.05),
        "ia_archiver" => b(5.0, 6.0, 1.0, 2, c(0.85, 0.6, 0.5, 0.85, 0.10), EveryHours(12), 0.05),
        "Googlebot-Image" => b(8.0, 4.0, 2.0, 4, c(0.98, 0.0, 0.0, 0.97, 0.05), Never, 0.05),

        // ---- Everything else: category defaults + deterministic jitter ----
        _ => category_default(spec),
    }
}

/// Category-default behaviour for bots the paper does not report
/// individually. Values follow the paper's Table 5 category rows and
/// Figure 10 cadence ordering.
fn category_default(spec: &'static BotSpec) -> BotBehavior {
    let j = name_jitter(spec.canonical); // [0,1), stable per name
    let jig = |base: f64, spread: f64| (base + spread * (j - 0.5)).clamp(0.01, 1.0);

    let (comp, check, daily, pages): (CompliancePolicy, RobotsCheckPolicy, f64, f64) = match spec
        .category
    {
        BotCategory::SeoCrawler => (
            CompliancePolicy {
                crawl_delay: jig(0.635, 0.2),
                endpoint: jig(0.831, 0.2),
                disallow: jig(0.639, 0.2),
                natural_slow: jig(0.6, 0.2),
                natural_pagedata: 0.2,
            },
            if j < 0.45 {
                RobotsCheckPolicy::Poll(12)
            } else if j < 0.60 {
                RobotsCheckPolicy::Poll(96)
            } else {
                RobotsCheckPolicy::EveryHours(24)
            },
            4.0 + 8.0 * j,
            5.0,
        ),
        BotCategory::SearchEngineCrawler => (
            CompliancePolicy {
                crawl_delay: jig(0.78, 0.25),
                endpoint: jig(0.37, 0.25),
                disallow: jig(0.19, 0.2),
                natural_slow: jig(0.75, 0.2),
                natural_pagedata: 0.15,
            },
            if j < 0.30 {
                RobotsCheckPolicy::Poll(12)
            } else if j < 0.55 {
                RobotsCheckPolicy::Poll(96)
            } else {
                RobotsCheckPolicy::EveryHours(24)
            },
            4.0 + 8.0 * j,
            5.0,
        ),
        BotCategory::AiDataScraper => (
            CompliancePolicy {
                crawl_delay: jig(0.56, 0.3),
                endpoint: jig(0.35, 0.3),
                disallow: jig(0.77, 0.3),
                natural_slow: jig(0.45, 0.2),
                natural_pagedata: 0.25,
            },
            if j < 0.42 {
                RobotsCheckPolicy::Poll(12)
            } else if j < 0.50 {
                RobotsCheckPolicy::Poll(96)
            } else {
                RobotsCheckPolicy::EveryHours(48)
            },
            4.0 + 6.0 * j,
            6.0,
        ),
        BotCategory::AiAssistant => (
            CompliancePolicy {
                crawl_delay: jig(0.91, 0.15),
                endpoint: jig(0.13, 0.15),
                disallow: jig(0.9, 0.2),
                natural_slow: jig(0.9, 0.1),
                natural_pagedata: 0.1,
            },
            if j < 0.12 {
                RobotsCheckPolicy::Poll(12)
            } else if j < 0.25 {
                RobotsCheckPolicy::Poll(150)
            } else if j < 0.65 {
                RobotsCheckPolicy::EveryHours(200)
            } else {
                RobotsCheckPolicy::Never
            },
            3.0 + 5.0 * j,
            3.0,
        ),
        BotCategory::AiSearchCrawler => (
            CompliancePolicy {
                crawl_delay: jig(0.895, 0.15),
                endpoint: jig(0.623, 0.25),
                disallow: jig(0.348, 0.25),
                natural_slow: jig(0.85, 0.15),
                natural_pagedata: 0.3,
            },
            if j < 0.12 {
                RobotsCheckPolicy::Poll(12)
            } else if j < 0.25 {
                RobotsCheckPolicy::Poll(150)
            } else if j < 0.65 {
                RobotsCheckPolicy::EveryHours(300)
            } else {
                RobotsCheckPolicy::Never
            },
            3.0 + 6.0 * j,
            4.0,
        ),
        BotCategory::AiAgent | BotCategory::UndocumentedAiAgent => (
            CompliancePolicy {
                crawl_delay: jig(0.5, 0.4),
                endpoint: jig(0.3, 0.3),
                disallow: jig(0.3, 0.3),
                natural_slow: jig(0.4, 0.3),
                natural_pagedata: 0.15,
            },
            if j < 0.10 {
                RobotsCheckPolicy::Poll(96)
            } else if j < 0.50 {
                RobotsCheckPolicy::EveryHours(168)
            } else {
                RobotsCheckPolicy::Never
            },
            2.0 + 4.0 * j,
            3.0,
        ),
        BotCategory::Fetcher => (
            CompliancePolicy {
                crawl_delay: jig(0.925, 0.1),
                endpoint: jig(0.283, 0.25),
                disallow: jig(0.377, 0.25),
                natural_slow: jig(0.9, 0.1),
                natural_pagedata: 0.03,
            },
            if j < 0.25 {
                RobotsCheckPolicy::Poll(12)
            } else if j < 0.45 {
                RobotsCheckPolicy::Poll(96)
            } else {
                RobotsCheckPolicy::EveryHours(48)
            },
            5.0 + 7.0 * j,
            2.0,
        ),
        BotCategory::HeadlessBrowser => (
            CompliancePolicy {
                crawl_delay: jig(0.05, 0.08),
                endpoint: jig(0.28, 0.2),
                disallow: jig(0.02, 0.03),
                natural_slow: jig(0.08, 0.1),
                natural_pagedata: 0.35,
            },
            if j < 0.25 {
                RobotsCheckPolicy::Poll(12)
            } else if j < 0.60 {
                RobotsCheckPolicy::EveryHours(48)
            } else {
                RobotsCheckPolicy::Never
            },
            4.0 + 8.0 * j,
            7.0,
        ),
        BotCategory::IntelligenceGatherer => (
            CompliancePolicy {
                crawl_delay: jig(0.809, 0.2),
                endpoint: jig(0.372, 0.25),
                disallow: jig(0.094, 0.1),
                natural_slow: jig(0.75, 0.2),
                natural_pagedata: 0.15,
            },
            if j < 0.55 { RobotsCheckPolicy::Poll(12) } else { RobotsCheckPolicy::EveryHours(12) },
            4.0 + 8.0 * j,
            4.0,
        ),
        BotCategory::Archiver => (
            CompliancePolicy {
                crawl_delay: jig(0.8, 0.2),
                endpoint: jig(0.65, 0.2),
                disallow: jig(0.6, 0.2),
                natural_slow: jig(0.7, 0.2),
                natural_pagedata: 0.1,
            },
            if j < 0.60 { RobotsCheckPolicy::Poll(12) } else { RobotsCheckPolicy::EveryHours(12) },
            3.0 + 5.0 * j,
            8.0,
        ),
        BotCategory::DeveloperHelper => (
            CompliancePolicy {
                crawl_delay: jig(0.7, 0.2),
                endpoint: jig(0.5, 0.2),
                disallow: jig(0.4, 0.2),
                natural_slow: jig(0.7, 0.2),
                natural_pagedata: 0.05,
            },
            if j < 0.30 { RobotsCheckPolicy::Poll(24) } else { RobotsCheckPolicy::EveryHours(24) },
            2.0 + 4.0 * j,
            2.0,
        ),
        BotCategory::Scraper => (
            CompliancePolicy {
                crawl_delay: jig(0.3, 0.25),
                endpoint: jig(0.2, 0.2),
                disallow: jig(0.08, 0.1),
                natural_slow: jig(0.25, 0.2),
                natural_pagedata: 0.3,
            },
            if j < 0.60 { RobotsCheckPolicy::Poll(12) } else { RobotsCheckPolicy::EveryHours(24) },
            4.0 + 8.0 * j,
            8.0,
        ),
        BotCategory::Other | BotCategory::Uncategorized => (
            CompliancePolicy {
                crawl_delay: jig(0.486, 0.3),
                endpoint: jig(0.139, 0.15),
                disallow: jig(0.019, 0.03),
                natural_slow: jig(0.4, 0.3),
                natural_pagedata: 0.05,
            },
            if j < 0.20 {
                RobotsCheckPolicy::Poll(12)
            } else if j < 0.35 {
                RobotsCheckPolicy::Poll(96)
            } else if j < 0.70 {
                RobotsCheckPolicy::Never
            } else {
                RobotsCheckPolicy::EveryHours(72)
            },
            4.0 + 8.0 * j,
            3.0,
        ),
    };

    BotBehavior {
        daily_hits: daily,
        pages_per_session: pages,
        fast_pacing_secs: 6.0 + 10.0 * j,
        bytes_factor: 0.5 + 2.0 * j,
        ip_pool: 1 + (j * 4.0) as u32,
        compliance: CompliancePolicy {
            crawl_delay: invert_delta_mix(comp.crawl_delay, pages),
            natural_slow: invert_delta_mix(comp.natural_slow, pages),
            ..comp
        },
        robots_check: check,
        directory_affinity: 0.05 + 0.1 * j,
    }
}

/// A realistic `User-Agent` header for a registry bot.
fn ua_header(spec: &'static BotSpec) -> String {
    match spec.canonical {
        "Googlebot" => "Mozilla/5.0 (compatible; Googlebot/2.1; +http://www.google.com/bot.html)".into(),
        "bingbot" => "Mozilla/5.0 (compatible; bingbot/2.0; +http://www.bing.com/bingbot.htm)".into(),
        "GPTBot" => "Mozilla/5.0 AppleWebKit/537.36 (KHTML, like Gecko); compatible; GPTBot/1.2; +https://openai.com/gptbot".into(),
        "ChatGPT-User" => "Mozilla/5.0 AppleWebKit/537.36 (KHTML, like Gecko); compatible; ChatGPT-User/1.0; +https://openai.com/bot".into(),
        "ClaudeBot" => "Mozilla/5.0 AppleWebKit/537.36 (KHTML, like Gecko; compatible; ClaudeBot/1.0; +claudebot@anthropic.com)".into(),
        "Bytespider" => "Mozilla/5.0 (Linux; Android 5.0) AppleWebKit/537.36 (KHTML, like Gecko) Mobile Safari/537.36 (compatible; Bytespider; spider-feedback@bytedance.com)".into(),
        "Applebot" => "Mozilla/5.0 (Macintosh; Intel Mac OS X 10_15_7) AppleWebKit/605.1.15 (KHTML, like Gecko) Version/16.4 Safari/605.1.15 (Applebot/0.1; +http://www.apple.com/go/applebot)".into(),
        "Amazonbot" => "Mozilla/5.0 (Macintosh; Intel Mac OS X 10_10_1) AppleWebKit/600.2.5 (KHTML, like Gecko) Version/8.0.2 Safari/600.2.5 (Amazonbot/0.1; +https://developer.amazon.com/support/amazonbot)".into(),
        "YisouSpider" => "Mozilla/5.0 (Windows NT 6.1; Win64; x64) AppleWebKit/537.36 (KHTML, like Gecko) Chrome/69.0.3497.81 YisouSpider/5.0 Safari/537.36".into(),
        "HeadlessChrome" => "Mozilla/5.0 (X11; Linux x86_64) AppleWebKit/537.36 (KHTML, like Gecko) HeadlessChrome/119.0.6045.105 Safari/537.36".into(),
        "Baiduspider" => "Mozilla/5.0 (compatible; Baiduspider/2.0; +http://www.baidu.com/search/spider.html)".into(),
        "yandex.com/bots" => "Mozilla/5.0 (compatible; YandexBot/3.0; +http://yandex.com/bots)".into(),
        "Python-requests" => "python-requests/2.31.0".into(),
        "Go-http-client" => "Go-http-client/2.0".into(),
        "Axios" => "axios/1.6.2".into(),
        "Apache-HttpClient" => "Apache-HttpClient/4.5.14 (Java/17.0.8)".into(),
        "Scrapy" => "Scrapy/2.11.0 (+https://scrapy.org)".into(),
        "curl" => "curl/8.4.0".into(),
        "Wget" => "Wget/1.21.4".into(),
        "facebookexternalhit" => "facebookexternalhit/1.1 (+http://www.facebook.com/externalhit_uatext.php)".into(),
        "meta-externalagent" => "meta-externalagent/1.1 (+https://developers.facebook.com/docs/sharing/webmasters/crawler)".into(),
        "SemrushBot" => "Mozilla/5.0 (compatible; SemrushBot/7~bl; +http://www.semrush.com/bot.html)".into(),
        "AhrefsBot" => "Mozilla/5.0 (compatible; AhrefsBot/7.0; +http://ahrefs.com/robot/)".into(),
        "PerplexityBot" => "Mozilla/5.0 AppleWebKit/537.36 (KHTML, like Gecko; compatible; PerplexityBot/1.0; +https://perplexity.ai/perplexitybot)".into(),
        "PetalBot" => "Mozilla/5.0 (compatible;PetalBot;+https://webmaster.petalsearch.com/site/petalbot)".into(),
        "Operator" => "Mozilla/5.0 AppleWebKit/537.36 (KHTML, like Gecko; compatible; OpenAI-Operator/1.0; +https://openai.com/operator)".into(),
        "Java-http-client" => "Java/17.0.8".into(),
        "got" => "got (https://github.com/sindresorhus/got)".into(),
        "colly" => "colly - https://github.com/gocolly/colly".into(),
        "Faraday" => "Faraday v2.7.11".into(),
        "Guzzle" => "GuzzleHttp/7.8".into(),
        _ => format!(
            "Mozilla/5.0 (compatible; {}/1.0; +https://bots.example/{})",
            spec.canonical,
            spec.canonical.to_ascii_lowercase().replace([' ', '/'], "-")
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fleet_covers_registry() {
        let fleet = build_fleet();
        assert_eq!(fleet.len(), registry().len());
        for bot in &fleet {
            bot.behavior.assert_valid();
            assert!(!bot.ua_string.is_empty());
        }
    }

    #[test]
    fn fleet_is_deterministic() {
        let a = build_fleet();
        let b = build_fleet();
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.behavior, y.behavior, "{}", x.spec.canonical);
            assert_eq!(x.ua_string, y.ua_string);
        }
    }

    #[test]
    fn table3_volume_ordering() {
        let fleet = build_fleet();
        let rate = |name: &str| {
            fleet.iter().find(|b| b.spec.canonical == name).unwrap().behavior.daily_hits
        };
        assert!(rate("YisouSpider") > rate("Applebot"));
        assert!(rate("Applebot") > rate("Baiduspider"));
        assert!(rate("Baiduspider") > rate("GPTBot"));
        assert!(rate("GPTBot") > rate("Bytespider"));
    }

    #[test]
    fn exempt_flags() {
        let fleet = build_fleet();
        let exempt: Vec<&str> =
            fleet.iter().filter(|b| b.exempt).map(|b| b.spec.canonical).collect();
        assert!(exempt.contains(&"Googlebot"));
        assert!(exempt.contains(&"bingbot"));
        assert!(exempt.contains(&"ia_archiver"));
        assert!(!exempt.contains(&"GPTBot"));
        // Eight names, but registry may express some as separate entries
        // (e.g. Baiduspider) — at least 7 must resolve.
        assert!(exempt.len() >= 7, "{exempt:?}");
    }

    #[test]
    fn never_checkers_match_table7() {
        let fleet = build_fleet();
        for name in [
            "Apache-HttpClient",
            "Axios",
            "BrightEdge Crawler",
            "Iframely",
            "MicrosoftPreview",
            "Slack-ImgProxy",
            "Googlebot-Image",
            "Baiduspider",
        ] {
            let bot = fleet.iter().find(|b| b.spec.canonical == name).unwrap();
            assert_eq!(
                bot.behavior.robots_check,
                RobotsCheckPolicy::Never,
                "{name} should never check robots.txt"
            );
        }
        let gpt = fleet.iter().find(|b| b.spec.canonical == "GPTBot").unwrap();
        assert_ne!(gpt.behavior.robots_check, RobotsCheckPolicy::Never);
    }

    #[test]
    fn invert_delta_mix_roundtrip() {
        // Planting p and measuring p(1-1/n)+1/n must recover the target.
        for target in [0.2, 0.5, 0.9] {
            for pages in [2.0, 5.0, 10.0] {
                let p = invert_delta_mix(target, pages);
                let measured = p * (1.0 - 1.0 / pages) + 1.0 / pages;
                if target >= 1.0 / pages {
                    assert!((measured - target).abs() < 1e-9, "t={target} n={pages}");
                }
            }
        }
        // Clamped at the extremes.
        assert_eq!(invert_delta_mix(0.0, 5.0), 0.0);
        assert_eq!(invert_delta_mix(1.0, 5.0), 1.0);
    }

    #[test]
    fn jitter_is_stable_and_spread() {
        assert_eq!(name_jitter("GPTBot"), name_jitter("GPTBot"));
        assert_ne!(name_jitter("GPTBot"), name_jitter("ClaudeBot"));
        let js: Vec<f64> = ["a", "b", "c", "d", "e"].iter().map(|n| name_jitter(n)).collect();
        assert!(js.iter().all(|&x| (0.0..1.0).contains(&x)));
    }

    #[test]
    fn ua_headers_resolve_back_to_spec() {
        use botscope_useragent::registry::registry;
        let reg = registry();
        let fleet = build_fleet();
        let mut misses = Vec::new();
        for bot in &fleet {
            match reg.match_user_agent(&bot.ua_string) {
                Some(m) if m.canonical == bot.spec.canonical => {}
                other => misses.push((bot.spec.canonical, other.map(|m| m.canonical))),
            }
        }
        assert!(misses.is_empty(), "UA strings that do not resolve to their bot: {misses:?}");
    }
}

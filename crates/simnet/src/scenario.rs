//! Canonical scenarios: the paper's two studies, packaged.
//!
//! * [`full_study`] — study 1 (paper §3): the 36-site estate observed for
//!   46 days under the base robots.txt everywhere. Feeds Tables 2/3,
//!   Figures 2/3/4, the re-check analysis (Figure 10) and the spoofing
//!   analysis (Table 8/9).
//! * [`phase_study`] — study 2 (paper §4): the four-version robots.txt
//!   experiment on the high-traffic site, two weeks per version. Feeds
//!   Tables 4/5/6/7/10 and Figures 9/11.

use std::io;

use botscope_weblog::sink::RowSink;
use botscope_weblog::time::Timestamp;

use crate::config::SimConfig;
use crate::engine::{
    simulate, simulate_stream_with_threads, simulate_table, SimOutput, SimStreamOutput,
    SimTableOutput, StreamOptions,
};
use crate::phases::PhaseSchedule;
use crate::site::EXPERIMENT_SITE;

/// Output of the phase study: records plus the schedule that produced
/// them (the analysis slices per-phase windows out of it).
#[derive(Debug, Clone)]
pub struct PhaseStudyOutput {
    /// The generator output.
    pub sim: SimOutput,
    /// The 4-phase schedule.
    pub schedule: PhaseSchedule,
}

/// Table-native output of the phase study.
#[derive(Debug, Clone)]
pub struct PhaseStudyTableOutput {
    /// The generator output, interned.
    pub sim: SimTableOutput,
    /// The 4-phase schedule.
    pub schedule: PhaseSchedule,
}

/// Study 1: passive observation of the whole estate under the base file.
pub fn full_study(cfg: &SimConfig) -> SimOutput {
    let schedule = PhaseSchedule::always_base(EXPERIMENT_SITE, cfg.start, cfg.end());
    simulate(cfg, &schedule)
}

/// [`full_study`] without materializing records: the scalable path.
pub fn full_study_table(cfg: &SimConfig) -> SimTableOutput {
    let schedule = PhaseSchedule::always_base(EXPERIMENT_SITE, cfg.start, cfg.end());
    simulate_table(cfg, &schedule)
}

/// [`full_study`] streamed straight into sinks with bounded memory:
/// workers spill sorted runs to disk and a k-way merge delivers the
/// canonical row order without materializing the table.
pub fn full_study_stream(
    cfg: &SimConfig,
    threads: usize,
    opts: &StreamOptions,
    sinks: &mut [&mut dyn RowSink],
) -> io::Result<SimStreamOutput> {
    let schedule = PhaseSchedule::always_base(EXPERIMENT_SITE, cfg.start, cfg.end());
    simulate_stream_with_threads(cfg, &schedule, threads, opts, sinks)
}

/// Study 2: the controlled robots.txt experiment. `cfg.start`/`cfg.days`
/// are overridden by the 8-week schedule (starting 2025-01-15, matching
/// the paper's January baseline).
pub fn phase_study(cfg: &SimConfig) -> PhaseStudyOutput {
    let out = phase_study_table(cfg);
    let sim = SimOutput { records: out.sim.table.to_records(), truth: out.sim.truth };
    PhaseStudyOutput { sim, schedule: out.schedule }
}

/// [`phase_study`] without materializing records: the scalable path.
pub fn phase_study_table(cfg: &SimConfig) -> PhaseStudyTableOutput {
    let start = Timestamp::from_date(2025, 1, 15);
    let schedule = PhaseSchedule::paper_schedule(start, EXPERIMENT_SITE);
    let (lo, hi) = schedule.bounds();
    let cfg = SimConfig { start: lo, days: hi.days_since(lo), ..cfg.clone() };
    let sim = simulate_table(&cfg, &schedule);
    PhaseStudyTableOutput { sim, schedule }
}

/// Streaming output of the phase study: planted truth, row count, and
/// the schedule that produced the stream.
#[derive(Debug, Clone)]
pub struct PhaseStudyStreamOutput {
    /// The streaming generator output (truth + row count).
    pub sim: SimStreamOutput,
    /// The 4-phase schedule.
    pub schedule: PhaseSchedule,
}

/// [`phase_study`] streamed straight into sinks with bounded memory.
pub fn phase_study_stream(
    cfg: &SimConfig,
    threads: usize,
    opts: &StreamOptions,
    sinks: &mut [&mut dyn RowSink],
) -> io::Result<PhaseStudyStreamOutput> {
    let start = Timestamp::from_date(2025, 1, 15);
    let schedule = PhaseSchedule::paper_schedule(start, EXPERIMENT_SITE);
    let (lo, hi) = schedule.bounds();
    let cfg = SimConfig { start: lo, days: hi.days_since(lo), ..cfg.clone() };
    let sim = simulate_stream_with_threads(&cfg, &schedule, threads, opts, sinks)?;
    Ok(PhaseStudyStreamOutput { sim, schedule })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::phases::PolicyVersion;
    use botscope_weblog::filter::restrict_window;

    #[test]
    fn full_study_runs() {
        let cfg = SimConfig::test_small();
        let out = full_study(&cfg);
        assert!(!out.records.is_empty());
        // Both bot and anonymous traffic present.
        assert!(out.records.iter().any(|r| r.useragent.contains("YisouSpider")));
        assert!(out.records.iter().any(|r| r.referer.is_some()));
    }

    #[test]
    fn phase_study_covers_eight_weeks() {
        let cfg = SimConfig { days: 0, scale: 0.02, sites: 4, ..SimConfig::default() };
        let out = phase_study(&cfg);
        let (lo, hi) = out.schedule.bounds();
        assert_eq!(hi.days_since(lo), 56);
        // Records exist in every phase window.
        for v in PolicyVersion::ALL {
            let (s, e) = out.schedule.window_of(v).unwrap();
            let in_phase = restrict_window(&out.sim.records, s, e);
            assert!(!in_phase.is_empty(), "no traffic in {v:?}");
        }
    }

    #[test]
    fn phase_study_deterministic() {
        let cfg = SimConfig { scale: 0.02, sites: 4, ..SimConfig::default() };
        let a = phase_study(&cfg);
        let b = phase_study(&cfg);
        assert_eq!(a.sim.records, b.sim.records);
    }
}

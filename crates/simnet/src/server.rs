//! Site → robots.txt server-model adapter.
//!
//! The monitoring daemon (`botscope-monitor`) needs the *server side* of
//! the estate: which robots.txt document each site serves at each
//! instant. The experiment's mid-study policy swaps are already encoded
//! by [`PhaseSchedule`]; this module projects a schedule into a flat,
//! binary-searchable per-site timeline ([`SitePolicyServer`]) and
//! renders/parses the four policy files exactly once ([`PolicyCorpus`])
//! so a 100k-site estate shares four bodies instead of building 100k.

use botscope_robotstxt::compiled::CompiledPolicy;
use botscope_robotstxt::RobotsTxt;
use botscope_weblog::time::Timestamp;

use crate::phases::{PhaseSchedule, PolicyVersion};

/// Which matcher implementation answers policy checks.
///
/// The compiled automaton is the default; the interpreted rule-list scan is
/// kept selectable (`BOTSCOPE_MATCHER=interpreted`) so CI can verify the
/// two produce byte-identical simulation output.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MatcherMode {
    /// Compiled per-group automata (`botscope_robotstxt::compiled`).
    #[default]
    Compiled,
    /// Interpreted per-rule scan (`RobotsTxt::is_allowed`).
    Interpreted,
}

impl MatcherMode {
    /// Read the mode from `BOTSCOPE_MATCHER` (`compiled` | `interpreted`,
    /// default compiled; unknown values fall back to the default).
    pub fn from_env() -> MatcherMode {
        match std::env::var("BOTSCOPE_MATCHER").as_deref() {
            Ok("interpreted") => MatcherMode::Interpreted,
            _ => MatcherMode::Compiled,
        }
    }
}

/// The four experimental policy files, rendered once (the text a server
/// puts on the wire), parsed once (the document a crawler-side cache
/// evaluates and diffs), and compiled once (the automaton every admission
/// check runs against).
#[derive(Debug, Clone)]
pub struct PolicyCorpus {
    texts: [String; 4],
    docs: [RobotsTxt; 4],
    compiled: [CompiledPolicy; 4],
    mode: MatcherMode,
}

impl Default for PolicyCorpus {
    fn default() -> Self {
        PolicyCorpus::new()
    }
}

impl PolicyCorpus {
    /// Render, parse and compile all four versions; the matcher mode comes
    /// from `BOTSCOPE_MATCHER` (compiled by default).
    pub fn new() -> PolicyCorpus {
        PolicyCorpus::with_mode(MatcherMode::from_env())
    }

    /// Render, parse and compile all four versions with an explicit mode.
    pub fn with_mode(mode: MatcherMode) -> PolicyCorpus {
        let docs = PolicyVersion::ALL.map(super::phases::PolicyVersion::robots_txt);
        let texts = [0, 1, 2, 3].map(|i: usize| docs[i].to_string());
        let compiled = [0, 1, 2, 3].map(|i: usize| CompiledPolicy::compile(&docs[i]));
        PolicyCorpus { texts, docs, compiled, mode }
    }

    /// The active matcher mode.
    pub fn mode(&self) -> MatcherMode {
        self.mode
    }

    /// The serialized robots.txt body of `version`.
    pub fn text(&self, version: PolicyVersion) -> &str {
        &self.texts[version.index()]
    }

    /// The parsed document of `version`.
    pub fn doc(&self, version: PolicyVersion) -> &RobotsTxt {
        &self.docs[version.index()]
    }

    /// The compiled automaton of `version`.
    pub fn compiled(&self, version: PolicyVersion) -> &CompiledPolicy {
        &self.compiled[version.index()]
    }

    /// Whether `agent` may fetch `path` under `version`, via the active
    /// matcher. The two matchers are differentially tested to agree on
    /// every decision, so the mode never changes simulation output.
    pub fn check(&self, version: PolicyVersion, agent: &str, path: &str) -> bool {
        match self.mode {
            MatcherMode::Compiled => self.compiled[version.index()].check(agent, path).allow,
            MatcherMode::Interpreted => self.docs[version.index()].is_allowed(agent, path).allow,
        }
    }

    /// The crawl delay `version` declares for `agent`, via the active
    /// matcher.
    pub fn delay(&self, version: PolicyVersion, agent: &str) -> Option<f64> {
        match self.mode {
            MatcherMode::Compiled => self.compiled[version.index()].crawl_delay(agent),
            MatcherMode::Interpreted => self.docs[version.index()].crawl_delay(agent),
        }
    }
}

/// One site's serving timeline: which [`PolicyVersion`] is live when.
///
/// Stored as `(from_unix_sec, version)` segments in ascending time
/// order; the first segment always starts at 0, so every instant maps to
/// exactly one version.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SitePolicyServer {
    segments: Vec<(u64, PolicyVersion)>,
}

impl SitePolicyServer {
    /// A site that serves one version forever.
    pub fn always(version: PolicyVersion) -> SitePolicyServer {
        SitePolicyServer { segments: vec![(0, version)] }
    }

    /// Project `schedule` onto `site`: the experiment site swaps through
    /// the scheduled phases (Base before the window, Base again after
    /// it — the operator restores the standard file); every other site
    /// serves Base forever.
    pub fn from_schedule(schedule: &PhaseSchedule, site: usize) -> SitePolicyServer {
        if site != schedule.experiment_site || schedule.phases.is_empty() {
            return SitePolicyServer::always(PolicyVersion::Base);
        }
        let mut segments: Vec<(u64, PolicyVersion)> = vec![(0, PolicyVersion::Base)];
        for phase in &schedule.phases {
            segments.push((phase.start.unix(), phase.version));
        }
        let (_, end) = schedule.bounds();
        segments.push((end.unix(), PolicyVersion::Base));
        // Collapse adjacent segments serving the same version (a schedule
        // starting with Base would otherwise yield a zero-information
        // boundary) and zero-length segments (contiguous phases share
        // their boundary instant).
        segments.sort_by_key(|&(at, _)| at);
        let mut collapsed: Vec<(u64, PolicyVersion)> = Vec::with_capacity(segments.len());
        for (at, version) in segments {
            if let Some(&mut (last_at, ref mut last_v)) = collapsed.last_mut() {
                if last_at == at {
                    *last_v = version;
                    continue;
                }
                if *last_v == version {
                    continue;
                }
            }
            collapsed.push((at, version));
        }
        SitePolicyServer { segments: collapsed }
    }

    /// The version live at `unix` seconds.
    pub fn version_at(&self, unix: u64) -> PolicyVersion {
        let idx = self.segments.partition_point(|&(at, _)| at <= unix);
        // partition_point ≥ 1 because segment 0 starts at time 0.
        self.segments[idx.saturating_sub(1)].1
    }

    /// The instant the segment live at `unix` began — the `Last-Modified`
    /// a server would advertise for the currently served body.
    pub fn live_since(&self, unix: u64) -> u64 {
        let idx = self.segments.partition_point(|&(at, _)| at <= unix);
        self.segments[idx.saturating_sub(1)].0
    }

    /// The timeline's swap instants (excluding the initial segment):
    /// the ground truth a change-detection test compares against.
    pub fn swaps(&self) -> &[(u64, PolicyVersion)] {
        &self.segments[1..]
    }

    /// Whether this site ever changes its served file.
    pub fn is_static(&self) -> bool {
        self.segments.len() == 1
    }

    /// The raw `(from_unix_sec, version)` segments.
    pub fn segments(&self) -> &[(u64, PolicyVersion)] {
        &self.segments
    }

    /// The timeline as closed `(version, start, end)` windows clipped to
    /// `[0, horizon_end)` — the per-site phase windows Table 7's
    /// "checked robots.txt while vN was live" columns are judged
    /// against. Zero-length windows (segments entirely past the
    /// horizon) are dropped.
    pub fn version_windows(&self, horizon_end: u64) -> Vec<(PolicyVersion, u64, u64)> {
        let mut out = Vec::with_capacity(self.segments.len());
        for (i, &(start, version)) in self.segments.iter().enumerate() {
            let end = self.segments.get(i + 1).map_or(horizon_end, |&(next, _)| next);
            let end = end.min(horizon_end);
            if start < end {
                out.push((version, start, end));
            }
        }
        out
    }
}

/// Convenience: the timestamp-typed twin of [`SitePolicyServer::version_at`].
pub fn served_version(server: &SitePolicyServer, at: Timestamp) -> PolicyVersion {
    server.version_at(at.unix())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_matches_versions() {
        let corpus = PolicyCorpus::new();
        for v in PolicyVersion::ALL {
            assert_eq!(corpus.text(v), v.robots_txt().to_string());
            assert_eq!(corpus.doc(v).groups, v.robots_txt().groups);
        }
        // The four files are genuinely distinct bodies.
        let texts: std::collections::BTreeSet<&str> =
            PolicyVersion::ALL.iter().map(|&v| corpus.text(v)).collect();
        assert_eq!(texts.len(), 4);
    }

    #[test]
    fn matcher_modes_agree_on_corpus_decisions() {
        let compiled = PolicyCorpus::with_mode(MatcherMode::Compiled);
        let interpreted = PolicyCorpus::with_mode(MatcherMode::Interpreted);
        let agents = ["Googlebot", "Googlebot-Image", "GPTBot", "ClaudeBot", "*", "ia_archiver"];
        let paths = [
            "/",
            "/news/item-001",
            "/page-data/item-001/page-data.json",
            "/secure/admin",
            "/404",
            "/robots.txt",
        ];
        for v in PolicyVersion::ALL {
            for agent in agents {
                for path in paths {
                    assert_eq!(
                        compiled.check(v, agent, path),
                        interpreted.check(v, agent, path),
                        "{v:?} {agent} {path}"
                    );
                }
                assert_eq!(compiled.delay(v, agent), interpreted.delay(v, agent), "{v:?} {agent}");
            }
        }
    }

    #[test]
    fn non_experiment_site_is_static_base() {
        let start = Timestamp::from_date(2025, 1, 15);
        let schedule = PhaseSchedule::paper_schedule(start, 0);
        let s = SitePolicyServer::from_schedule(&schedule, 7);
        assert!(s.is_static());
        assert_eq!(s.version_at(0), PolicyVersion::Base);
        assert_eq!(s.version_at(u64::MAX), PolicyVersion::Base);
    }

    #[test]
    fn experiment_site_follows_schedule() {
        let start = Timestamp::from_date(2025, 1, 15);
        let schedule = PhaseSchedule::paper_schedule(start, 3);
        let s = SitePolicyServer::from_schedule(&schedule, 3);
        assert!(!s.is_static());
        // Before the window: Base. Then each phase. After: Base again.
        assert_eq!(s.version_at(start.unix() - 1), PolicyVersion::Base);
        for (i, v) in PolicyVersion::ALL.iter().enumerate() {
            let mid = start.plus_secs((i as u64 * 14 + 7) * 86_400);
            assert_eq!(s.version_at(mid.unix()), *v, "phase {i}");
            assert_eq!(served_version(&s, mid), *v);
        }
        let after = start.plus_secs(57 * 86_400);
        assert_eq!(s.version_at(after.unix()), PolicyVersion::Base);
        // Swap instants: v1, v2, v3 starts plus the final restore. The
        // schedule's first phase *is* Base, so it collapses into the
        // initial segment.
        assert_eq!(s.swaps().len(), 4);
        assert_eq!(
            s.swaps()[0],
            (start.plus_secs(14 * 86_400).unix(), PolicyVersion::V1CrawlDelay)
        );
        assert_eq!(s.swaps()[3].1, PolicyVersion::Base);
    }

    #[test]
    fn boundary_instants_belong_to_the_new_segment() {
        let start = Timestamp::from_date(2025, 1, 15);
        let schedule = PhaseSchedule::paper_schedule(start, 0);
        let s = SitePolicyServer::from_schedule(&schedule, 0);
        let v1_start = start.plus_secs(14 * 86_400).unix();
        assert_eq!(s.version_at(v1_start - 1), PolicyVersion::Base);
        assert_eq!(s.version_at(v1_start), PolicyVersion::V1CrawlDelay);
    }

    #[test]
    fn always_base_schedule_collapses_to_static() {
        let start = Timestamp::from_date(2025, 2, 12);
        let schedule = PhaseSchedule::always_base(0, start, start.plus_secs(86_400));
        let s = SitePolicyServer::from_schedule(&schedule, 0);
        assert!(s.is_static(), "base-only schedule should not record swaps: {s:?}");
    }
}

//! Simulation configuration.

use botscope_weblog::time::Timestamp;

/// Top-level simulation parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct SimConfig {
    /// Master seed; everything derives from it.
    pub seed: u64,
    /// First instant of the simulation (UTC midnight recommended).
    pub start: Timestamp,
    /// Horizon in days.
    pub days: u64,
    /// Global traffic multiplier. `1.0` approximates the paper's volumes
    /// (≈3.9 M raw rows over 46 days); bench binaries default to `0.1`
    /// and tests to `0.02`, which preserves every *shape* the evaluation
    /// reproduces while keeping memory modest.
    pub scale: f64,
    /// Number of sites in the estate (the paper monitors 36).
    pub sites: usize,
    /// Whether to plant the Table 8/9 spoofed traffic.
    pub spoofing: bool,
    /// Whether to generate anonymous browser/background traffic.
    pub anon_traffic: bool,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            seed: 9309, // RFC 9309, naturally
            // Paper study 1 window: February 12 – March 29, 2025.
            start: Timestamp::from_date(2025, 2, 12),
            days: 46,
            scale: 0.1,
            sites: 36,
            spoofing: true,
            anon_traffic: true,
        }
    }
}

impl SimConfig {
    /// End of the horizon (exclusive).
    pub fn end(&self) -> Timestamp {
        self.start.plus_secs(self.days * 86_400)
    }

    /// A small configuration for unit tests: 3 days, 2 % scale, 6 sites.
    pub fn test_small() -> Self {
        SimConfig { days: 3, scale: 0.02, sites: 6, ..SimConfig::default() }
    }

    /// Validate invariants; panics on nonsense (caller logic errors).
    pub fn assert_valid(&self) {
        assert!(self.days > 0, "zero-day simulation");
        assert!(self.scale > 0.0 && self.scale.is_finite(), "bad scale {}", self.scale);
        assert!(self.sites > 0, "no sites");
        assert!(self.sites <= 64, "at most 64 sites supported");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_window() {
        let c = SimConfig::default();
        assert_eq!(c.start.to_iso8601(), "2025-02-12T00:00:00Z");
        assert_eq!(c.end().to_iso8601(), "2025-03-30T00:00:00Z");
        assert_eq!(c.sites, 36);
        c.assert_valid();
    }

    #[test]
    fn test_config_valid() {
        SimConfig::test_small().assert_valid();
    }

    #[test]
    #[should_panic(expected = "zero-day")]
    fn zero_days_invalid() {
        SimConfig { days: 0, ..SimConfig::default() }.assert_valid();
    }

    #[test]
    #[should_panic(expected = "bad scale")]
    fn zero_scale_invalid() {
        SimConfig { scale: 0.0, ..SimConfig::default() }.assert_valid();
    }
}

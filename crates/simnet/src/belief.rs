//! The belief-vs-ground-truth policy layer.
//!
//! The paper's central claim — scrapers *selectively* respect robots.txt
//! — is only meaningful once deliberate non-compliance can be separated
//! from artifacts of the fetch layer: a bot crawling on a stale cached
//! allow-all, a bot that saw a 404 and is entitled to crawl without
//! restriction, a bot halting through a 5xx window it must treat as
//! complete disallow (RFC 9309 §2.3.1). This module gives the workspace
//! one vocabulary for both sides of that comparison:
//!
//! * [`BelievedPolicy`] — what one crawler *thinks* the live policy is,
//!   including the RFC 9309 error-state policies and the
//!   never-looked-at-it state;
//! * [`BeliefTimeline`] — a stepwise per-(bot, site) timeline of
//!   believed policies, built from fetch events (the monitoring daemon
//!   exports one per agent) or from server ground truth (what a site
//!   *actually* served, weather included);
//! * [`PolicyOracle`] — the generation engine's policy source. The
//!   schedule-driven baseline ([`ScheduleOracle`]) answers with the
//!   scheduled version; the coupled mode answers from a
//!   [`BeliefAtlas`] of monitored belief timelines; [`ServedOracle`]
//!   answers from per-site ground-truth timelines (a crawler with an
//!   always-fresh cache).
//!
//! Timelines are plain `(from_unix_sec, policy)` step functions, exactly
//! like [`crate::server::SitePolicyServer`] — a belief timeline under an
//! always-healthy server with instant refresh *is* the served timeline,
//! which is the degenerate-equivalence property the coupled engine tests
//! pin.

use botscope_weblog::time::Timestamp;

use crate::phases::{PhaseSchedule, PolicyVersion};
use crate::server::PolicyCorpus;

/// What a crawler believes the live policy of a site to be (or, for
/// ground-truth timelines, what the site effectively served).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum BelievedPolicy {
    /// The crawler never fetched robots.txt here. It crawls without
    /// restriction — but unlike [`BelievedPolicy::AllowAll`] this is a
    /// *choice*, not an RFC entitlement, and attribution treats
    /// violations under it as deliberate.
    Unfetched,
    /// A successfully fetched policy document (one of the four
    /// experimental versions).
    Version(PolicyVersion),
    /// Crawl without restriction: the file resolved 4xx / vanished /
    /// sat behind a redirect chain past the five-hop budget
    /// (RFC 9309 §2.3.1.3 "unavailable").
    AllowAll,
    /// Fetch nothing but robots.txt: the file resolved 5xx or the host
    /// was unreachable (RFC 9309 §2.3.1.4 "unreachable").
    DisallowAll,
}

impl BelievedPolicy {
    /// Whether `agent` may fetch `path` under this belief. `corpus`
    /// resolves [`BelievedPolicy::Version`] through its active matcher
    /// (the compiled automaton by default).
    pub fn allows(self, corpus: &PolicyCorpus, agent: &str, path: &str) -> bool {
        match self {
            BelievedPolicy::Unfetched | BelievedPolicy::AllowAll => true,
            BelievedPolicy::Version(v) => corpus.check(v, agent, path),
            // robots.txt itself stays fetchable even in disallow-all.
            BelievedPolicy::DisallowAll => path == "/robots.txt",
        }
    }

    /// The crawl delay `agent` must honour under this belief, if any.
    pub fn crawl_delay(self, corpus: &PolicyCorpus, agent: &str) -> Option<f64> {
        match self {
            BelievedPolicy::Version(v) => corpus.delay(v, agent),
            _ => None,
        }
    }

    /// Project this belief onto the generation engine's three behavioural
    /// axes by probing the policy through the corpus matcher.
    ///
    /// `agent` is the bot's canonical product token and `exempt` the
    /// engine's planted exemption flag: exempt bots read their own named
    /// group, everyone else the wildcard group. (Group choice is gated on
    /// the planted flag rather than pure matcher selection so that fleet
    /// variants like `Googlebot-Image` — not on the exemption list, but a
    /// boundary-prefix match for the exempt `googlebot` group — keep the
    /// behaviour the study assigns them.)
    pub fn lens(self, corpus: &PolicyCorpus, agent: &str, exempt: bool) -> PolicyLens {
        match self {
            BelievedPolicy::Unfetched | BelievedPolicy::AllowAll => PolicyLens::default(),
            BelievedPolicy::DisallowAll => {
                PolicyLens { disallow_all: true, endpoint_only: false, delayed: false }
            }
            BelievedPolicy::Version(v) => {
                let token = if exempt { agent } else { "*" };
                let content = corpus.check(v, token, PROBE_CONTENT);
                let pagedata = corpus.check(v, token, PROBE_PAGEDATA);
                PolicyLens {
                    disallow_all: !content && !pagedata,
                    endpoint_only: !content && pagedata,
                    delayed: corpus.delay(v, token).is_some(),
                }
            }
        }
    }

    /// Short label for reports.
    pub fn label(self) -> &'static str {
        match self {
            BelievedPolicy::Unfetched => "unfetched",
            BelievedPolicy::Version(v) => v.label(),
            BelievedPolicy::AllowAll => "allow-all (4xx)",
            BelievedPolicy::DisallowAll => "disallow-all (5xx)",
        }
    }
}

/// Representative content path probed by [`BelievedPolicy::lens`]: blocked
/// only by a full disallow.
pub const PROBE_CONTENT: &str = "/news/item-001";

/// Representative page-data endpoint probed by [`BelievedPolicy::lens`]:
/// carved out by the V2 endpoint-only policy's `Allow: /page-data/*`.
pub const PROBE_PAGEDATA: &str = "/page-data/item-001/page-data.json";

/// A believed policy projected onto the generation engine's behavioural
/// axes — derived through the policy matcher instead of hard-coded per
/// [`PolicyVersion`] branches, so the engine reacts to what the policy
/// *says* rather than which enum variant it is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PolicyLens {
    /// The bot's whole content surface is disallowed (obedient bots fall
    /// back to robots.txt-only traffic).
    pub disallow_all: bool,
    /// Content is disallowed but the page-data endpoint is carved out
    /// (obedient bots shift to `/page-data/`).
    pub endpoint_only: bool,
    /// A crawl delay applies (obedient bots stretch inter-request gaps).
    pub delayed: bool,
}

/// Every [`PolicyLens`] one bot can see, probed once up front so the
/// per-session hot path is an array lookup instead of matcher calls.
///
/// A lens is a pure function of `(believed policy, bot)`, and the
/// believed policy ranges over only the corpus versions plus three
/// trivial states — so [`simulate`](crate::engine::simulate)-scale
/// callers precompute the four version lenses per bot and resolve each
/// session's belief against the table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LensTable {
    versions: [PolicyLens; PolicyVersion::ALL.len()],
}

impl LensTable {
    /// Probe all four corpus versions for one bot.
    pub fn for_bot(corpus: &PolicyCorpus, agent: &str, exempt: bool) -> LensTable {
        LensTable {
            versions: PolicyVersion::ALL
                .map(|v| BelievedPolicy::Version(v).lens(corpus, agent, exempt)),
        }
    }

    /// The lens for `believed` — identical to
    /// [`BelievedPolicy::lens`] with the bot this table was built for.
    pub fn lens(&self, believed: BelievedPolicy) -> PolicyLens {
        match believed {
            BelievedPolicy::Unfetched | BelievedPolicy::AllowAll => PolicyLens::default(),
            BelievedPolicy::DisallowAll => {
                PolicyLens { disallow_all: true, endpoint_only: false, delayed: false }
            }
            BelievedPolicy::Version(v) => self.versions[v.index()],
        }
    }
}

/// A stepwise policy timeline: `(from_unix_sec, policy)` segments in
/// ascending time order. The first segment starts at 0, so every
/// instant maps to exactly one policy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BeliefTimeline {
    segments: Vec<(u64, BelievedPolicy)>,
}

impl Default for BeliefTimeline {
    fn default() -> Self {
        BeliefTimeline::new()
    }
}

impl BeliefTimeline {
    /// A timeline that starts out never-fetched.
    pub fn new() -> BeliefTimeline {
        BeliefTimeline { segments: vec![(0, BelievedPolicy::Unfetched)] }
    }

    /// A timeline holding one policy forever.
    pub fn always(policy: BelievedPolicy) -> BeliefTimeline {
        BeliefTimeline { segments: vec![(0, policy)] }
    }

    /// Record that the belief became `policy` at `at`. Consecutive
    /// identical beliefs collapse; a same-instant re-record overwrites
    /// (the later fetch wins). `at` must not go backwards.
    pub fn record(&mut self, at: u64, policy: BelievedPolicy) {
        let &(last_at, last) = self.segments.last().expect("timeline never empty");
        assert!(at >= last_at, "belief recorded out of order: {at} < {last_at}");
        if last == policy {
            return;
        }
        if at == last_at && self.segments.len() > 1 {
            let n = self.segments.len();
            self.segments[n - 1].1 = policy;
            // Overwriting may re-create a collapse with the predecessor.
            if self.segments[n - 2].1 == policy {
                self.segments.pop();
            }
            return;
        }
        if at == last_at {
            // Overwriting the initial segment.
            self.segments[0].1 = policy;
            return;
        }
        self.segments.push((at, policy));
    }

    /// The policy believed at `unix` seconds.
    pub fn at(&self, unix: u64) -> BelievedPolicy {
        let idx = self.segments.partition_point(|&(from, _)| from <= unix);
        // partition_point ≥ 1 because segment 0 starts at time 0.
        self.segments[idx.saturating_sub(1)].1
    }

    /// [`BeliefTimeline::at`] for timestamp-typed callers.
    pub fn at_time(&self, t: Timestamp) -> BelievedPolicy {
        self.at(t.unix())
    }

    /// The raw `(from_unix_sec, policy)` segments.
    pub fn segments(&self) -> &[(u64, BelievedPolicy)] {
        &self.segments
    }

    /// Number of belief *transitions* (segments minus the initial one).
    pub fn transitions(&self) -> usize {
        self.segments.len() - 1
    }
}

/// Where the generation engine looks up the policy a bot acts on.
///
/// `bot` is the fleet index (the engine's generation-unit index for
/// fleet bots); `site` is the estate index. Implementations must be
/// pure: the engine consults the oracle from many worker threads and
/// requires byte-identical output at any worker count.
pub trait PolicyOracle: Sync {
    /// The policy fleet bot `bot` believes is live on `site` at `at`.
    fn believed(&self, bot: usize, site: usize, at: Timestamp) -> BelievedPolicy;
}

/// The schedule-driven baseline: every bot magically believes exactly
/// what the schedule deploys — the pre-coupling engine behaviour.
#[derive(Debug, Clone, Copy)]
pub struct ScheduleOracle<'a> {
    /// The deployment schedule consulted.
    pub schedule: &'a PhaseSchedule,
}

impl PolicyOracle for ScheduleOracle<'_> {
    fn believed(&self, _bot: usize, site: usize, at: Timestamp) -> BelievedPolicy {
        BelievedPolicy::Version(self.schedule.policy_at(site, at))
    }
}

/// Ground-truth-as-belief: every bot believes, at every instant, what
/// the server effectively serves (weather included) — a crawler whose
/// cache refreshes instantly. Under always-healthy servers this is
/// exactly [`ScheduleOracle`], which is the coupled engine's
/// degenerate-equivalence anchor.
#[derive(Debug, Clone)]
pub struct ServedOracle<'a> {
    /// Per-site effective served-policy timelines, estate order.
    pub sites: &'a [BeliefTimeline],
}

impl PolicyOracle for ServedOracle<'_> {
    fn believed(&self, _bot: usize, site: usize, at: Timestamp) -> BelievedPolicy {
        self.sites[site].at(at.unix())
    }
}

/// Per-(bot, site) belief timelines, bot-major — the monitoring
/// daemon's export, and the coupled engine's oracle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BeliefAtlas {
    /// Canonical bot names, fleet order (index = the oracle's `bot`).
    pub bots: Vec<String>,
    sites: usize,
    timelines: Vec<BeliefTimeline>,
}

impl BeliefAtlas {
    /// An atlas where every (bot, site) starts never-fetched.
    pub fn new(bots: Vec<String>, sites: usize) -> BeliefAtlas {
        let timelines = vec![BeliefTimeline::new(); bots.len() * sites];
        BeliefAtlas { bots, sites, timelines }
    }

    /// Number of sites per bot.
    pub fn n_sites(&self) -> usize {
        self.sites
    }

    /// The timeline of `(bot, site)`.
    pub fn timeline(&self, bot: usize, site: usize) -> &BeliefTimeline {
        &self.timelines[bot * self.sites + site]
    }

    /// Mutable access, for builders.
    pub fn timeline_mut(&mut self, bot: usize, site: usize) -> &mut BeliefTimeline {
        &mut self.timelines[bot * self.sites + site]
    }

    /// Total belief transitions across the atlas (reporting).
    pub fn total_transitions(&self) -> usize {
        self.timelines.iter().map(BeliefTimeline::transitions).sum()
    }
}

impl PolicyOracle for BeliefAtlas {
    fn believed(&self, bot: usize, site: usize, at: Timestamp) -> BelievedPolicy {
        self.timeline(bot, site).at(at.unix())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timeline_steps_and_lookup() {
        let mut t = BeliefTimeline::new();
        assert_eq!(t.at(0), BelievedPolicy::Unfetched);
        t.record(100, BelievedPolicy::Version(PolicyVersion::Base));
        t.record(200, BelievedPolicy::DisallowAll);
        t.record(300, BelievedPolicy::Version(PolicyVersion::V3DisallowAll));
        assert_eq!(t.at(99), BelievedPolicy::Unfetched);
        assert_eq!(t.at(100), BelievedPolicy::Version(PolicyVersion::Base));
        assert_eq!(t.at(250), BelievedPolicy::DisallowAll);
        assert_eq!(t.at(1_000_000), BelievedPolicy::Version(PolicyVersion::V3DisallowAll));
        assert_eq!(t.transitions(), 3);
    }

    #[test]
    fn timeline_collapses_identical_beliefs() {
        let mut t = BeliefTimeline::new();
        t.record(10, BelievedPolicy::AllowAll);
        t.record(20, BelievedPolicy::AllowAll);
        assert_eq!(t.segments().len(), 2);
        // Same-instant overwrite: the later record wins.
        t.record(30, BelievedPolicy::DisallowAll);
        t.record(30, BelievedPolicy::Version(PolicyVersion::Base));
        assert_eq!(t.at(30), BelievedPolicy::Version(PolicyVersion::Base));
        // Overwrite back to the predecessor collapses the segment.
        let mut t = BeliefTimeline::new();
        t.record(10, BelievedPolicy::AllowAll);
        t.record(20, BelievedPolicy::DisallowAll);
        t.record(20, BelievedPolicy::AllowAll);
        assert_eq!(t.segments().len(), 2);
        assert_eq!(t.at(25), BelievedPolicy::AllowAll);
    }

    #[test]
    #[should_panic(expected = "out of order")]
    fn timeline_rejects_backwards_time() {
        let mut t = BeliefTimeline::new();
        t.record(100, BelievedPolicy::AllowAll);
        t.record(50, BelievedPolicy::DisallowAll);
    }

    #[test]
    fn believed_policy_allows() {
        let corpus = PolicyCorpus::new();
        let v3 = BelievedPolicy::Version(PolicyVersion::V3DisallowAll);
        assert!(!v3.allows(&corpus, "GPTBot", "/news/item-001"));
        assert!(v3.allows(&corpus, "Googlebot", "/news/item-001"), "exempt in the served file");
        assert!(v3.allows(&corpus, "GPTBot", "/robots.txt"));
        assert!(BelievedPolicy::AllowAll.allows(&corpus, "GPTBot", "/secure/admin-0"));
        assert!(BelievedPolicy::Unfetched.allows(&corpus, "GPTBot", "/secure/admin-0"));
        assert!(!BelievedPolicy::DisallowAll.allows(&corpus, "Googlebot", "/"));
        assert!(BelievedPolicy::DisallowAll.allows(&corpus, "Googlebot", "/robots.txt"));
        assert_eq!(
            BelievedPolicy::Version(PolicyVersion::V1CrawlDelay).crawl_delay(&corpus, "GPTBot"),
            Some(30.0)
        );
        assert_eq!(BelievedPolicy::AllowAll.crawl_delay(&corpus, "GPTBot"), None);
    }

    #[test]
    fn lens_reproduces_version_branches_for_the_fleet() {
        use crate::fleet::build_fleet;
        use crate::server::MatcherMode;

        let beliefs = [
            BelievedPolicy::Unfetched,
            BelievedPolicy::AllowAll,
            BelievedPolicy::DisallowAll,
            BelievedPolicy::Version(PolicyVersion::Base),
            BelievedPolicy::Version(PolicyVersion::V1CrawlDelay),
            BelievedPolicy::Version(PolicyVersion::V2EndpointOnly),
            BelievedPolicy::Version(PolicyVersion::V3DisallowAll),
        ];
        let compiled = PolicyCorpus::with_mode(MatcherMode::Compiled);
        let interpreted = PolicyCorpus::with_mode(MatcherMode::Interpreted);
        for bot in build_fleet() {
            let agent = bot.spec.canonical;
            for believed in beliefs {
                let lens = believed.lens(&compiled, agent, bot.exempt);
                assert_eq!(
                    lens,
                    believed.lens(&interpreted, agent, bot.exempt),
                    "matcher modes disagree: {agent} {believed:?}"
                );
                // The lens must reproduce the engine's historical
                // hard-coded per-variant branches exactly.
                let expect_disallow = match believed {
                    BelievedPolicy::DisallowAll => true,
                    BelievedPolicy::Version(PolicyVersion::V3DisallowAll) => !bot.exempt,
                    _ => false,
                };
                let expect_endpoint =
                    matches!(believed, BelievedPolicy::Version(PolicyVersion::V2EndpointOnly))
                        && !bot.exempt;
                let expect_delayed =
                    matches!(believed, BelievedPolicy::Version(PolicyVersion::V1CrawlDelay));
                assert_eq!(lens.disallow_all, expect_disallow, "{agent} {believed:?}");
                assert_eq!(lens.endpoint_only, expect_endpoint, "{agent} {believed:?}");
                assert_eq!(lens.delayed, expect_delayed, "{agent} {believed:?}");
            }
        }
    }

    #[test]
    fn schedule_oracle_matches_schedule() {
        let start = Timestamp::from_date(2025, 1, 15);
        let schedule = PhaseSchedule::paper_schedule(start, 0);
        let oracle = ScheduleOracle { schedule: &schedule };
        let in_v2 = start.plus_secs(30 * 86_400);
        assert_eq!(
            oracle.believed(7, 0, in_v2),
            BelievedPolicy::Version(PolicyVersion::V2EndpointOnly)
        );
        assert_eq!(oracle.believed(7, 3, in_v2), BelievedPolicy::Version(PolicyVersion::Base));
    }

    #[test]
    fn atlas_layout_and_oracle() {
        let mut atlas = BeliefAtlas::new(vec!["A".into(), "B".into()], 3);
        atlas.timeline_mut(1, 2).record(50, BelievedPolicy::DisallowAll);
        assert_eq!(atlas.n_sites(), 3);
        assert_eq!(atlas.believed(1, 2, Timestamp::from_unix(60)), BelievedPolicy::DisallowAll);
        assert_eq!(atlas.believed(1, 1, Timestamp::from_unix(60)), BelievedPolicy::Unfetched);
        assert_eq!(atlas.believed(0, 2, Timestamp::from_unix(60)), BelievedPolicy::Unfetched);
        assert_eq!(atlas.total_transitions(), 1);
    }

    #[test]
    fn served_oracle_reads_site_timelines() {
        let mut healthy = BeliefTimeline::always(BelievedPolicy::Version(PolicyVersion::Base));
        healthy.record(1_000, BelievedPolicy::DisallowAll);
        let sites = vec![BeliefTimeline::always(BelievedPolicy::AllowAll), healthy];
        let oracle = ServedOracle { sites: &sites };
        assert_eq!(oracle.believed(0, 0, Timestamp::from_unix(2_000)), BelievedPolicy::AllowAll);
        assert_eq!(oracle.believed(9, 1, Timestamp::from_unix(2_000)), BelievedPolicy::DisallowAll);
        assert_eq!(
            oracle.believed(9, 1, Timestamp::from_unix(500)),
            BelievedPolicy::Version(PolicyVersion::Base)
        );
    }
}

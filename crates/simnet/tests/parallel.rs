//! Parallel-generation determinism: for a fixed seed, the sharded
//! generator must produce byte-identical output at any worker count,
//! and the table path must agree with the materialized compatibility
//! path record for record.

use botscope_simnet::engine::{
    simulate, simulate_stream_with_threads, simulate_table_with_threads, StreamOptions,
};
use botscope_simnet::scenario::{full_study, full_study_stream, full_study_table};
use botscope_simnet::{PhaseSchedule, SimConfig};
use botscope_weblog::codec;
use botscope_weblog::colfmt::{read_table, BinSink};
use botscope_weblog::sink::{CsvSink, RowSink};

const WORKER_COUNTS: [usize; 3] = [1, 2, 8];

fn cfg_with_seed(seed: u64) -> SimConfig {
    SimConfig { days: 2, scale: 0.05, sites: 8, seed, ..SimConfig::default() }
}

#[test]
fn full_study_byte_identical_across_worker_counts() {
    for seed in [42, 9309] {
        let cfg = cfg_with_seed(seed);
        let schedule = PhaseSchedule::always_base(0, cfg.start, cfg.end());
        let serial = simulate_table_with_threads(&cfg, &schedule, WORKER_COUNTS[0]);
        let serial_csv = codec::encode_table(&serial.table);
        for &threads in &WORKER_COUNTS[1..] {
            let parallel = simulate_table_with_threads(&cfg, &schedule, threads);
            assert_eq!(
                codec::encode_table(&parallel.table),
                serial_csv,
                "seed {seed}: {threads} workers diverged from the serial path"
            );
            assert_eq!(parallel.truth.spoofed_requests, serial.truth.spoofed_requests);
        }
    }
}

#[test]
fn table_path_matches_materialized_path() {
    let cfg = cfg_with_seed(7);
    let schedule = PhaseSchedule::always_base(0, cfg.start, cfg.end());
    let records = simulate(&cfg, &schedule).records;
    let table = simulate_table_with_threads(&cfg, &schedule, 4).table;
    assert_eq!(table.to_records(), records);
}

#[test]
fn streamed_csv_bytes_identical_to_materialized_at_any_worker_count() {
    let cfg = cfg_with_seed(42);
    let schedule = PhaseSchedule::always_base(0, cfg.start, cfg.end());
    let reference = simulate_table_with_threads(&cfg, &schedule, 1);
    let reference_csv = codec::encode_table(&reference.table).into_bytes();
    // Tiny runs force multi-run spills per unit; both sinks fill in one
    // streamed pass.
    let opts = StreamOptions { rows_per_run: 200, spill_dir: None };
    for threads in WORKER_COUNTS {
        let mut csv = CsvSink::new(Vec::new()).expect("csv sink");
        let mut bin = BinSink::new(Vec::new()).expect("bin sink");
        let out = simulate_stream_with_threads(
            &cfg,
            &schedule,
            threads,
            &opts,
            &mut [&mut csv as &mut dyn RowSink, &mut bin as &mut dyn RowSink],
        )
        .expect("streaming simulate");
        assert_eq!(out.rows as usize, reference.table.len(), "{threads} workers");
        assert_eq!(
            csv.into_inner(),
            reference_csv,
            "{threads} workers: streamed CSV diverged from materialized"
        );
        // The binary stream decodes back to the same records.
        let decoded = read_table(&bin.into_inner()[..]).expect("decode streamed binary");
        assert_eq!(
            decoded.to_records(),
            reference.table.to_records(),
            "{threads} workers: streamed binary diverged"
        );
        assert_eq!(out.truth.spoofed_requests, reference.truth.spoofed_requests);
    }
}

#[test]
fn full_study_stream_matches_full_study_table() {
    let cfg = cfg_with_seed(13);
    let reference = full_study_table(&cfg);
    let mut csv = CsvSink::new(Vec::new()).expect("csv sink");
    let out =
        full_study_stream(&cfg, 2, &StreamOptions::default(), &mut [&mut csv as &mut dyn RowSink])
            .expect("streaming scenario");
    assert_eq!(out.rows as usize, reference.table.len());
    assert_eq!(csv.into_inner(), codec::encode_table(&reference.table).into_bytes());
    assert_eq!(out.truth.behaviors, reference.truth.behaviors);
}

#[test]
fn scenario_table_and_record_outputs_agree() {
    let cfg = cfg_with_seed(11);
    let by_records = full_study(&cfg);
    let by_table = full_study_table(&cfg);
    assert_eq!(by_table.table.to_records(), by_records.records);
    assert_eq!(by_table.truth.exempt, by_records.truth.exempt);
}

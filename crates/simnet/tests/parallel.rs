//! Parallel-generation determinism: for a fixed seed, the sharded
//! generator must produce byte-identical output at any worker count,
//! and the table path must agree with the materialized compatibility
//! path record for record.

use botscope_simnet::engine::{simulate, simulate_table_with_threads};
use botscope_simnet::scenario::{full_study, full_study_table};
use botscope_simnet::{PhaseSchedule, SimConfig};
use botscope_weblog::codec;

const WORKER_COUNTS: [usize; 3] = [1, 2, 8];

fn cfg_with_seed(seed: u64) -> SimConfig {
    SimConfig { days: 2, scale: 0.05, sites: 8, seed, ..SimConfig::default() }
}

#[test]
fn full_study_byte_identical_across_worker_counts() {
    for seed in [42, 9309] {
        let cfg = cfg_with_seed(seed);
        let schedule = PhaseSchedule::always_base(0, cfg.start, cfg.end());
        let serial = simulate_table_with_threads(&cfg, &schedule, WORKER_COUNTS[0]);
        let serial_csv = codec::encode_table(&serial.table);
        for &threads in &WORKER_COUNTS[1..] {
            let parallel = simulate_table_with_threads(&cfg, &schedule, threads);
            assert_eq!(
                codec::encode_table(&parallel.table),
                serial_csv,
                "seed {seed}: {threads} workers diverged from the serial path"
            );
            assert_eq!(parallel.truth.spoofed_requests, serial.truth.spoofed_requests);
        }
    }
}

#[test]
fn table_path_matches_materialized_path() {
    let cfg = cfg_with_seed(7);
    let schedule = PhaseSchedule::always_base(0, cfg.start, cfg.end());
    let records = simulate(&cfg, &schedule).records;
    let table = simulate_table_with_threads(&cfg, &schedule, 4).table;
    assert_eq!(table.to_records(), records);
}

#[test]
fn scenario_table_and_record_outputs_agree() {
    let cfg = cfg_with_seed(11);
    let by_records = full_study(&cfg);
    let by_table = full_study_table(&cfg);
    assert_eq!(by_table.table.to_records(), by_records.records);
    assert_eq!(by_table.truth.exempt, by_records.truth.exempt);
}

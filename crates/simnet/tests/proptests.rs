//! Property-based tests for the traffic generator: determinism, scaling,
//! schema integrity, and policy-shaping invariants under arbitrary small
//! configurations.

use botscope_simnet::scenario::full_study;
use botscope_simnet::SimConfig;
use botscope_weblog::time::Timestamp;
use proptest::prelude::*;

fn config_strategy() -> impl Strategy<Value = SimConfig> {
    (any::<u64>(), 1u64..5, 2usize..8, 0.01f64..0.08).prop_map(|(seed, days, sites, scale)| {
        SimConfig {
            seed,
            days,
            sites,
            scale,
            start: Timestamp::from_date(2025, 2, 12),
            spoofing: true,
            anon_traffic: true,
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn generator_is_deterministic(cfg in config_strategy()) {
        let a = full_study(&cfg);
        let b = full_study(&cfg);
        prop_assert_eq!(a.records.len(), b.records.len());
        prop_assert_eq!(&a.records, &b.records);
    }

    #[test]
    fn records_are_schema_valid(cfg in config_strategy()) {
        let out = full_study(&cfg);
        let hard_end = cfg.end().plus_secs(4 * 3600);
        for r in &out.records {
            prop_assert!(!r.useragent.is_empty());
            prop_assert!(!r.asn.is_empty());
            prop_assert!(r.sitename.ends_with(".example.edu"));
            prop_assert!(r.uri_path.starts_with('/'));
            prop_assert!(r.status == 200 || r.status == 404, "status {}", r.status);
            prop_assert!(r.timestamp >= cfg.start && r.timestamp < hard_end);
            prop_assert!(r.bytes >= 200 || r.is_robots_fetch() || r.status == 404);
        }
    }

    #[test]
    fn output_is_time_sorted(cfg in config_strategy()) {
        let out = full_study(&cfg);
        prop_assert!(out.records.windows(2).all(|w| w[0].timestamp <= w[1].timestamp));
    }

    #[test]
    fn seeds_differ(cfg in config_strategy()) {
        let a = full_study(&cfg);
        let b = full_study(&SimConfig { seed: cfg.seed.wrapping_add(1), ..cfg.clone() });
        // Two different seeds virtually never generate identical streams
        // of this size.
        if a.records.len() > 50 {
            prop_assert_ne!(&a.records, &b.records);
        }
    }

    #[test]
    fn disabling_anon_removes_browser_traffic(cfg in config_strategy()) {
        let out = full_study(&SimConfig { anon_traffic: false, spoofing: false, ..cfg });
        // Without anon entities, every record belongs to a fleet bot and
        // none carries a referer (only browsers get referers).
        prop_assert!(out.records.iter().all(|r| r.referer.is_none()));
        prop_assert!(out.truth.spoofed_requests.is_empty());
    }

    #[test]
    fn ground_truth_always_covers_fleet(cfg in config_strategy()) {
        let out = full_study(&cfg);
        prop_assert!(out.truth.behaviors.len() >= 120);
        prop_assert!(out.truth.exempt.len() >= 7);
    }
}

//! Access decisions: RFC 9309 matching semantics.
//!
//! Given a parsed document, a crawler product token and a request path,
//! the matcher:
//!
//! 1. selects the applicable group set — the groups whose `User-agent:`
//!    token is the **longest** case-insensitive boundary-prefix of the
//!    crawler's token; if none match, the `*` groups apply; groups with the
//!    same winning token are **merged** (RFC 9309 §2.2.1: "crawlers MUST
//!    use the union of the groups' rules"),
//! 2. evaluates every rule in the merged set against the path and picks the
//!    most specific match (**most octets**, §2.2.2),
//! 3. breaks ties in favour of `Allow`,
//! 4. defaults to *allowed* when nothing matches,
//! 5. always allows `/robots.txt` itself (§2.2.2: "the /robots.txt URI is
//!    implicitly allowed").

use crate::model::{RobotsTxt, Rule, RuleVerb};
use crate::parser::normalize_agent;
use crate::pattern::normalize_path;

/// The outcome of an access check.
///
/// Borrows the matched rule and agent token from the document so the hot
/// path performs no allocation; use [`Decision::to_owned`] when the outcome
/// must outlive the document.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Decision<'a> {
    /// Whether the fetch is allowed.
    pub allow: bool,
    /// The rule that decided the outcome, if any (`None` means the default
    /// allow applied: no group matched, or no rule matched the path).
    pub matched_rule: Option<&'a Rule>,
    /// The user-agent token of the group set that applied (`"*"` for the
    /// wildcard group, `None` if the document has no applicable group).
    pub matched_agent: Option<&'a str>,
}

impl<'a> Decision<'a> {
    pub(crate) fn default_allow(agent: Option<&'a str>) -> Self {
        Decision { allow: true, matched_rule: None, matched_agent: agent }
    }

    /// Copy the decision out of the document's lifetime.
    pub fn to_owned(&self) -> OwnedDecision {
        OwnedDecision {
            allow: self.allow,
            matched_rule: self.matched_rule.cloned(),
            matched_agent: self.matched_agent.map(str::to_string),
        }
    }
}

/// An owned [`Decision`], for callers that store outcomes past the
/// document's lifetime.
#[derive(Debug, Clone, PartialEq)]
pub struct OwnedDecision {
    /// Whether the fetch is allowed.
    pub allow: bool,
    /// Owned copy of the deciding rule, if any.
    pub matched_rule: Option<Rule>,
    /// Owned copy of the applicable group token, if any.
    pub matched_agent: Option<String>,
}

impl RobotsTxt {
    /// Decide whether `agent_token` may fetch `path`.
    ///
    /// `agent_token` is the crawler's product token (e.g. `"GPTBot"`), not
    /// a full `User-Agent` header; use `botscope-useragent` to extract a
    /// token from a header. `path` must begin with `/` (a missing slash is
    /// tolerated and treated as `/` + path).
    pub fn is_allowed(&self, agent_token: &str, path: &str) -> Decision<'_> {
        let path_owned;
        let path = if path.starts_with('/') {
            path
        } else {
            path_owned = format!("/{path}");
            &path_owned
        };

        // The robots.txt file itself is always fetchable.
        if path == "/robots.txt" {
            return Decision::default_allow(None);
        }

        let token = normalize_agent(agent_token);
        let Some(agent) = self.winning_token(&token) else {
            return Decision::default_allow(None);
        };

        // Normalize the path once; every rule below compares against the
        // same normalized text.
        let normalized = normalize_path(path);

        // Most-specific match wins; Allow wins ties.
        let mut best: Option<&Rule> = None;
        for g in self.groups.iter().filter(|g| g.user_agents.iter().any(|ua| ua == agent)) {
            for rule in &g.rules {
                if rule.pattern.is_empty() || !rule.pattern.matches_normalized(&normalized) {
                    continue;
                }
                let better = match best {
                    None => true,
                    Some(b) => {
                        let (rs, bs) = (rule.pattern.specificity(), b.pattern.specificity());
                        rs > bs
                            || (rs == bs
                                && rule.verb == RuleVerb::Allow
                                && b.verb == RuleVerb::Disallow)
                    }
                };
                if better {
                    best = Some(rule);
                }
            }
        }

        match best {
            Some(rule) => Decision {
                allow: rule.verb == RuleVerb::Allow,
                matched_rule: Some(rule),
                matched_agent: Some(agent),
            },
            None => Decision::default_allow(Some(agent)),
        }
    }

    /// The crawl delay applying to `agent_token`, if any.
    ///
    /// Group selection follows the same most-specific-token rule as path
    /// matching; when several groups merge, the **largest** declared delay
    /// is returned (the conservative reading a compliant bot should take).
    pub fn crawl_delay(&self, agent_token: &str) -> Option<f64> {
        let token = normalize_agent(agent_token);
        let winner = self.winning_token(&token)?;
        self.groups
            .iter()
            .filter(|g| g.user_agents.iter().any(|ua| ua == winner))
            .filter_map(|g| g.crawl_delay)
            .fold(None, |acc: Option<f64>, d| Some(acc.map_or(d, |a| a.max(d))))
    }

    /// The merged rule set applying to `agent_token`, with the winning
    /// group token. `None` when the document has no applicable group.
    pub fn applicable_rules(&self, agent_token: &str) -> Option<(String, Vec<&Rule>)> {
        let token = normalize_agent(agent_token);
        let winner = self.winning_token(&token)?.to_string();
        let rules = self
            .groups
            .iter()
            .filter(|g| g.user_agents.contains(&winner))
            .flat_map(|g| g.rules.iter())
            .collect();
        Some((winner, rules))
    }

    /// Find the most specific group token matching the normalized crawler
    /// token: longest boundary-prefix wins; `*` is the fallback.
    pub(crate) fn winning_token(&self, token: &str) -> Option<&str> {
        let mut best: Option<&str> = None;
        let mut saw_wildcard = false;
        for g in &self.groups {
            for ua in &g.user_agents {
                if ua == "*" {
                    saw_wildcard = true;
                    continue;
                }
                if token_matches(ua, token) && best.is_none_or(|b| ua.len() > b.len()) {
                    best = Some(ua);
                }
            }
        }
        match best {
            Some(b) => Some(b),
            None if saw_wildcard => Some("*"),
            None => None,
        }
    }
}

/// Whether group token `group` applies to crawler token `crawler`
/// (both lowercase): equal, or `group` is a prefix of `crawler` ending at a
/// token boundary (`-`, `_`, or end). This gives `googlebot-news` the
/// `googlebot` group when no more specific one exists, without letting a
/// `google` group capture `googlebot`... unless the boundary allows it —
/// `googlebot` does **not** start with `google-`/`google_`, so it does not.
pub(crate) fn token_matches(group: &str, crawler: &str) -> bool {
    if group == crawler {
        return true;
    }
    if let Some(rest) = crawler.strip_prefix(group) {
        return rest.starts_with('-') || rest.starts_with('_');
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    const FIG1: &str = "User-agent: Googlebot\nAllow: /\nCrawl-delay: 15\n\nUser-agent: *\nAllow: /allowed-data/\nDisallow: /restricted-data/\nCrawl-delay: 30\n";

    #[test]
    fn figure1_semantics() {
        let r = parse(FIG1);
        assert!(r.is_allowed("Googlebot", "/restricted-data/page").allow);
        assert!(!r.is_allowed("Bytespider", "/restricted-data/page").allow);
        assert!(r.is_allowed("Bytespider", "/allowed-data/page").allow);
        assert!(r.is_allowed("Bytespider", "/other").allow); // no rule matches → allow
        assert_eq!(r.crawl_delay("Googlebot"), Some(15.0));
        assert_eq!(r.crawl_delay("GPTBot"), Some(30.0));
    }

    #[test]
    fn robots_txt_always_allowed() {
        let r = RobotsTxt::disallow_all();
        assert!(r.is_allowed("anybot", "/robots.txt").allow);
        assert!(!r.is_allowed("anybot", "/index.html").allow);
    }

    #[test]
    fn empty_doc_allows_everything() {
        let r = parse("");
        let d = r.is_allowed("GPTBot", "/anything");
        assert!(d.allow);
        assert!(d.matched_rule.is_none());
        assert!(d.matched_agent.is_none());
    }

    #[test]
    fn longest_match_wins() {
        let r = parse("User-agent: *\nDisallow: /page\nAllow: /page-data/\n");
        assert!(!r.is_allowed("x", "/page").allow);
        assert!(!r.is_allowed("x", "/pagexyz").allow);
        assert!(r.is_allowed("x", "/page-data/app.json").allow);
    }

    #[test]
    fn allow_wins_ties() {
        let r = parse("User-agent: *\nDisallow: /dir/\nAllow: /dir2/\n");
        // Equal-length distinct patterns that both match can't exist, so
        // craft a genuine tie: same pattern both verbs.
        let r2 = parse("User-agent: *\nDisallow: /x\nAllow: /x\n");
        assert!(r2.is_allowed("bot", "/x").allow);
        assert!(!r.is_allowed("bot", "/dir/a").allow);
    }

    #[test]
    fn most_specific_group_selected() {
        let r = parse(
            "User-agent: googlebot-news\nDisallow: /news-secret/\n\nUser-agent: googlebot\nDisallow: /general/\n\nUser-agent: *\nDisallow: /\n",
        );
        // googlebot-news gets only its own group.
        let d = r.is_allowed("Googlebot-News", "/general/x");
        assert!(d.allow, "news bot not bound by generic googlebot group");
        assert!(!r.is_allowed("Googlebot-News", "/news-secret/x").allow);
        // googlebot gets the googlebot group.
        assert!(!r.is_allowed("Googlebot", "/general/x").allow);
        assert!(r.is_allowed("Googlebot", "/news-secret/x").allow);
        // unknown bots get the wildcard.
        assert!(!r.is_allowed("GPTBot", "/anything").allow);
    }

    #[test]
    fn group_token_boundary() {
        let r = parse("User-agent: google\nDisallow: /\n");
        // `googlebot` does not match group `google` (no boundary).
        assert!(r.is_allowed("googlebot", "/x").allow);
        // `google-images` does.
        assert!(!r.is_allowed("google-images", "/x").allow);
    }

    #[test]
    fn groups_with_same_token_merge() {
        let r = parse(
            "User-agent: a\nDisallow: /one\n\nUser-agent: b\nDisallow: /b\n\nUser-agent: a\nDisallow: /two\n",
        );
        assert!(!r.is_allowed("a", "/one").allow);
        assert!(!r.is_allowed("a", "/two").allow);
        assert!(r.is_allowed("a", "/b").allow);
    }

    #[test]
    fn merged_crawl_delay_takes_max() {
        let r = parse("User-agent: a\nCrawl-delay: 10\n\nUser-agent: a\nCrawl-delay: 40\n");
        assert_eq!(r.crawl_delay("a"), Some(40.0));
    }

    #[test]
    fn no_wildcard_group_means_unlisted_bot_unrestricted() {
        let r = parse("User-agent: badbot\nDisallow: /\n");
        assert!(r.is_allowed("goodbot", "/x").allow);
        assert!(!r.is_allowed("badbot", "/x").allow);
        assert_eq!(r.crawl_delay("goodbot"), None);
    }

    #[test]
    fn full_ua_header_tolerated() {
        let r = parse("User-agent: gptbot\nDisallow: /private/\n");
        let d = r.is_allowed("GPTBot/1.0 (+https://openai.com/gptbot)", "/private/x");
        assert!(!d.allow);
    }

    #[test]
    fn missing_leading_slash_tolerated() {
        let r = parse("User-agent: *\nDisallow: /secret\n");
        assert!(!r.is_allowed("bot", "secret/files").allow);
    }

    #[test]
    fn empty_disallow_restricts_nothing() {
        let r = parse("User-agent: *\nDisallow:\n");
        assert!(r.is_allowed("bot", "/x").allow);
    }

    #[test]
    fn decision_reports_matched_rule() {
        let r = parse("User-agent: *\nDisallow: /secure/*\n");
        let d = r.is_allowed("bot", "/secure/admin");
        assert!(!d.allow);
        assert_eq!(d.matched_rule.unwrap().pattern.as_str(), "/secure/*");
        assert_eq!(d.matched_agent, Some("*"));
    }

    #[test]
    fn decision_to_owned_outlives_document() {
        let owned = {
            let r = parse("User-agent: gptbot\nDisallow: /private/\n");
            r.is_allowed("GPTBot", "/private/x").to_owned()
        };
        assert!(!owned.allow);
        assert_eq!(owned.matched_rule.unwrap().pattern.as_str(), "/private/");
        assert_eq!(owned.matched_agent.as_deref(), Some("gptbot"));
    }

    #[test]
    fn wildcard_pattern_specificity_example() {
        // RFC example-style: /p beats nothing, /page beats /p, /*.html at
        // length 7 beats /page at 5 for /page.html.
        let r = parse("User-agent: *\nAllow: /p\nDisallow: /*.html\n");
        assert!(r.is_allowed("b", "/page").allow);
        assert!(!r.is_allowed("b", "/page.html").allow);
    }
}

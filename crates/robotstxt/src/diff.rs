//! Policy diffing: what changed for whom between two robots.txt versions?
//!
//! The study deploys a gradient of policies "only changing one condition
//! at a time" (§4.1). `diff` makes that gradient inspectable: given two
//! documents and a probe set of (agent, path) pairs, it reports every
//! decision flip and crawl-delay change — the exact deltas a bot operator
//! (or an experimenter validating a rollout) needs.

use crate::model::RobotsTxt;

/// One behavioural difference between two policies.
#[derive(Debug, Clone, PartialEq)]
pub enum PolicyChange {
    /// An (agent, path) decision flipped.
    AccessChanged {
        /// The probing agent token.
        agent: String,
        /// The probed path.
        path: String,
        /// Allowed under the old policy?
        was_allowed: bool,
        /// Allowed under the new policy?
        now_allowed: bool,
    },
    /// An agent's crawl delay changed.
    CrawlDelayChanged {
        /// The agent token.
        agent: String,
        /// Previous delay.
        was: Option<f64>,
        /// New delay.
        now: Option<f64>,
    },
}

/// Compare two policies over a probe matrix of agents × paths.
///
/// Returns changes in deterministic (agent, path) order. Agents and paths
/// are probed as given — pass the user agents you care about and a path
/// sample representative of the site (e.g. its sitemap).
pub fn diff(
    old: &RobotsTxt,
    new: &RobotsTxt,
    agents: &[&str],
    paths: &[&str],
) -> Vec<PolicyChange> {
    let mut changes = Vec::new();
    for agent in agents {
        for path in paths {
            let was = old.is_allowed(agent, path).allow;
            let now = new.is_allowed(agent, path).allow;
            if was != now {
                changes.push(PolicyChange::AccessChanged {
                    agent: (*agent).to_string(),
                    path: (*path).to_string(),
                    was_allowed: was,
                    now_allowed: now,
                });
            }
        }
        let was = old.crawl_delay(agent);
        let now = new.crawl_delay(agent);
        if was != now {
            changes.push(PolicyChange::CrawlDelayChanged { agent: (*agent).to_string(), was, now });
        }
    }
    changes
}

/// Summary counts over a diff: how many probes tightened (allow→deny) and
/// how many loosened (deny→allow).
pub fn summarize(changes: &[PolicyChange]) -> (usize, usize) {
    let mut tightened = 0;
    let mut loosened = 0;
    for c in changes {
        if let PolicyChange::AccessChanged { was_allowed, now_allowed, .. } = c {
            match (was_allowed, now_allowed) {
                (true, false) => tightened += 1,
                (false, true) => loosened += 1,
                _ => unreachable!("diff only records flips"),
            }
        }
    }
    (tightened, loosened)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    const AGENTS: [&str; 3] = ["Googlebot", "GPTBot", "ClaudeBot"];
    const PATHS: [&str; 4] = ["/", "/page-data/x.json", "/news/item", "/secure/a"];

    #[test]
    fn identical_policies_no_changes() {
        let a = parse("User-agent: *\nDisallow: /secure/*\n");
        let b = parse("User-agent: *\nDisallow: /secure/*\n");
        assert!(diff(&a, &b, &AGENTS, &PATHS).is_empty());
    }

    #[test]
    fn v1_to_v2_tightens_non_exempt_bots() {
        // Paper's v1 → v2 transition: everyone keeps access under v1;
        // only page-data survives for non-exempt bots under v2.
        let v1 = parse("User-agent: *\nAllow: /\nDisallow: /secure/*\nCrawl-delay: 30\n");
        let v2 = parse(
            "User-agent: Googlebot\nAllow: /\nDisallow: /secure/*\n\nUser-agent: *\nAllow: /page-data/*\nDisallow: /\n",
        );
        let changes = diff(&v1, &v2, &AGENTS, &PATHS);
        let (tightened, loosened) = summarize(&changes);
        assert!(tightened > 0);
        assert_eq!(loosened, 0, "a stricter file must not loosen: {changes:?}");
        // GPTBot lost "/" and "/news/item" but kept page-data.
        assert!(changes.contains(&PolicyChange::AccessChanged {
            agent: "GPTBot".into(),
            path: "/news/item".into(),
            was_allowed: true,
            now_allowed: false,
        }));
        assert!(!changes.iter().any(|c| matches!(
            c,
            PolicyChange::AccessChanged { agent, path, .. }
            if agent == "GPTBot" && path == "/page-data/x.json"
        )));
        // Googlebot (exempt) sees no access change, but loses the delay.
        assert!(changes.iter().any(|c| matches!(
            c,
            PolicyChange::CrawlDelayChanged { agent, was: Some(d), now: None } if agent == "Googlebot" && *d == 30.0
        )));
    }

    #[test]
    fn crawl_delay_introduction_detected() {
        let base = parse("User-agent: *\nAllow: /\n");
        let v1 = parse("User-agent: *\nAllow: /\nCrawl-delay: 30\n");
        let changes = diff(&base, &v1, &["GPTBot"], &["/"]);
        assert_eq!(
            changes,
            vec![PolicyChange::CrawlDelayChanged {
                agent: "GPTBot".into(),
                was: None,
                now: Some(30.0)
            }]
        );
    }

    #[test]
    fn loosening_detected() {
        let strict = parse("User-agent: *\nDisallow: /\n");
        let open = parse("User-agent: *\nAllow: /\n");
        let changes = diff(&strict, &open, &["GPTBot"], &["/", "/x"]);
        let (tightened, loosened) = summarize(&changes);
        assert_eq!(tightened, 0);
        assert_eq!(loosened, 2);
    }

    #[test]
    fn deterministic_order() {
        let a = parse("User-agent: *\nDisallow: /\n");
        let b = parse("User-agent: *\nAllow: /\n");
        let x = diff(&a, &b, &AGENTS, &PATHS);
        let y = diff(&a, &b, &AGENTS, &PATHS);
        assert_eq!(x, y);
    }
}

//! # botscope-robotstxt
//!
//! A complete, defensive implementation of the Robots Exclusion Protocol
//! (REP) as specified by **RFC 9309**, with the two de-facto extensions the
//! IMC '25 study exercises: the `Crawl-delay` directive and the `Sitemap`
//! directive (paper Table 1).
//!
//! The crate provides:
//!
//! * a tolerant [`parser`](crate::parser) that accepts arbitrary bytes and
//!   never fails (malformed lines are reported as warnings, exactly like
//!   Google's reference parser),
//! * RFC 9309 [`matching`](crate::matcher) semantics: longest-match rule
//!   precedence, allow-wins-ties, `*` wildcards and `$` end anchors,
//!   percent-encoding normalization, most-specific user-agent group
//!   selection with group merging,
//! * a [`builder`](crate::builder) and [`writer`](crate::writer) used to
//!   construct and serialize the study's four experimental policy files
//!   (paper Figures 5–8),
//! * [`fetch`](crate::fetch) semantics: what a compliant crawler must assume
//!   when `robots.txt` returns 4xx (allow all) or 5xx (disallow all), plus a
//!   TTL cache modelling the 24-hour re-check convention (paper §5.1).
//!
//! ## Quickstart
//!
//! ```
//! use botscope_robotstxt::RobotsTxt;
//!
//! let robots = RobotsTxt::parse(
//!     "User-agent: Googlebot\n\
//!      Allow: /\n\
//!      Crawl-delay: 15\n\
//!      \n\
//!      User-agent: *\n\
//!      Allow: /allowed-data/\n\
//!      Disallow: /restricted-data/\n\
//!      Crawl-delay: 30\n\
//!      Sitemap: https://example.edu/sitemap/sitemap-0.xml\n",
//! );
//!
//! assert!(robots.is_allowed("Googlebot", "/restricted-data/x").allow);
//! assert!(!robots.is_allowed("GPTBot", "/restricted-data/x").allow);
//! assert!(robots.is_allowed("GPTBot", "/allowed-data/y").allow);
//! assert_eq!(robots.crawl_delay("GPTBot"), Some(30.0));
//! assert_eq!(robots.crawl_delay("Googlebot"), Some(15.0));
//! assert_eq!(robots.sitemaps().len(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod audit;
pub mod builder;
pub mod compiled;
pub mod diff;
pub mod fetch;
pub mod lexer;
pub mod matcher;
pub mod model;
pub mod parser;
pub mod pattern;
pub mod writer;

pub use analysis::{
    analyze, classify_change, divergence_hazards, rule_liveness, semantic_diff, Analysis,
    ChangeClass, DeviantModel, DiffVerdict, Finding, FindingCode, Hazard, Liveness, RuleLiveness,
    SemanticDiff, Severity,
};
pub use audit::{audit, AuditFinding};
pub use builder::RobotsTxtBuilder;
pub use compiled::{CompiledPolicy, PolicyEstate};
pub use diff::{diff, PolicyChange};
pub use fetch::{EffectivePolicy, FetchOutcome, RobotsCache};
pub use matcher::{Decision, OwnedDecision};
pub use model::{Group, RobotsTxt, Rule, RuleVerb};
pub use pattern::PathPattern;

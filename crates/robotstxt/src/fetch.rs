//! Fetch semantics and the crawler-side cache.
//!
//! RFC 9309 §2.3.1 specifies what a compliant crawler must assume from the
//! HTTP status of the `robots.txt` fetch itself:
//!
//! * **2xx** — parse the body and obey it;
//! * **3xx** — follow at least five redirect hops, then treat as the final
//!   status (we model the *resolved* outcome, so redirects collapse into
//!   one of the other cases);
//! * **4xx** (including 404) — the file is "unavailable": crawl **without
//!   restriction** (allow all);
//! * **5xx** — the file is "unreachable": assume **complete disallow**
//!   until a fresh fetch succeeds;
//! * network failure — same as 5xx.
//!
//! [`RobotsCache`] models the client-side caching convention the paper
//! measures in §5.1: Google's documented standard is to re-fetch every 24
//! hours, but observed bots range from "every 12 h" to "never". The cache
//! records every check time, which is exactly the signal the study's
//! re-check-frequency analysis consumes.

use crate::model::RobotsTxt;

/// The resolved outcome of fetching `/robots.txt`.
#[derive(Debug, Clone, PartialEq)]
pub enum FetchOutcome {
    /// 2xx with a body.
    Success(String),
    /// Resolved 4xx — unavailable.
    ClientError(u16),
    /// Resolved 5xx — unreachable.
    ServerError(u16),
    /// Transport-level failure (DNS, TCP, TLS).
    NetworkError,
}

/// What a compliant crawler must enforce after a fetch.
#[derive(Debug, Clone, PartialEq)]
pub enum EffectivePolicy {
    /// A parsed document to evaluate per request.
    Policy(RobotsTxt),
    /// Crawl without restriction (4xx outcome).
    AllowAll,
    /// Fetch nothing (5xx / network outcome).
    DisallowAll,
}

impl EffectivePolicy {
    /// Derive the policy a compliant crawler must apply from a fetch
    /// outcome (RFC 9309 §2.3.1).
    ///
    /// ```
    /// use botscope_robotstxt::{EffectivePolicy, FetchOutcome};
    /// assert_eq!(
    ///     EffectivePolicy::from_outcome(FetchOutcome::ClientError(404)),
    ///     EffectivePolicy::AllowAll
    /// );
    /// assert_eq!(
    ///     EffectivePolicy::from_outcome(FetchOutcome::ServerError(503)),
    ///     EffectivePolicy::DisallowAll
    /// );
    /// ```
    pub fn from_outcome(outcome: FetchOutcome) -> Self {
        match outcome {
            FetchOutcome::Success(body) => EffectivePolicy::Policy(RobotsTxt::parse(&body)),
            FetchOutcome::ClientError(_) => EffectivePolicy::AllowAll,
            FetchOutcome::ServerError(_) | FetchOutcome::NetworkError => {
                EffectivePolicy::DisallowAll
            }
        }
    }

    /// Whether `agent` may fetch `path` under this policy.
    pub fn is_allowed(&self, agent: &str, path: &str) -> bool {
        match self {
            EffectivePolicy::Policy(doc) => doc.is_allowed(agent, path).allow,
            EffectivePolicy::AllowAll => true,
            // robots.txt itself stays fetchable even in disallow-all.
            EffectivePolicy::DisallowAll => path == "/robots.txt",
        }
    }

    /// The crawl delay for `agent` under this policy.
    pub fn crawl_delay(&self, agent: &str) -> Option<f64> {
        match self {
            EffectivePolicy::Policy(doc) => doc.crawl_delay(agent),
            _ => None,
        }
    }
}

/// A crawler-side robots.txt cache with a fixed time-to-live.
///
/// Time is a plain `u64` of seconds (the simulator's clock); the cache
/// records when each check happened so analyses can reconstruct the bot's
/// re-check cadence.
#[derive(Debug, Clone)]
pub struct RobotsCache {
    ttl_secs: u64,
    cached: Option<(u64, EffectivePolicy)>,
    check_times: Vec<u64>,
}

/// The convention Google documents and the paper cites: re-fetch daily.
pub const DEFAULT_TTL_SECS: u64 = 24 * 3600;

impl RobotsCache {
    /// New cache with the given TTL in seconds.
    pub fn new(ttl_secs: u64) -> Self {
        Self { ttl_secs, cached: None, check_times: Vec::new() }
    }

    /// New cache with the 24-hour default TTL.
    pub fn with_default_ttl() -> Self {
        Self::new(DEFAULT_TTL_SECS)
    }

    /// Whether a fetch is needed at time `now` (no entry, or entry older
    /// than the TTL).
    pub fn needs_fetch(&self, now: u64) -> bool {
        match &self.cached {
            None => true,
            Some((at, _)) => now.saturating_sub(*at) >= self.ttl_secs,
        }
    }

    /// Store the result of a fetch performed at `now`.
    pub fn store(&mut self, now: u64, policy: EffectivePolicy) {
        self.check_times.push(now);
        self.cached = Some((now, policy));
    }

    /// The currently cached policy, if fresh at `now`.
    pub fn get(&self, now: u64) -> Option<&EffectivePolicy> {
        match &self.cached {
            Some((at, policy)) if now.saturating_sub(*at) < self.ttl_secs => Some(policy),
            _ => None,
        }
    }

    /// Every time a fetch was stored — the re-check trace the §5.1
    /// analysis consumes.
    pub fn check_times(&self) -> &[u64] {
        &self.check_times
    }

    /// The configured TTL.
    pub fn ttl_secs(&self) -> u64 {
        self.ttl_secs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcome_mapping() {
        assert!(matches!(
            EffectivePolicy::from_outcome(FetchOutcome::Success(
                "User-agent: *\nDisallow: /\n".into()
            )),
            EffectivePolicy::Policy(_)
        ));
        assert_eq!(
            EffectivePolicy::from_outcome(FetchOutcome::ClientError(404)),
            EffectivePolicy::AllowAll
        );
        assert_eq!(
            EffectivePolicy::from_outcome(FetchOutcome::ClientError(401)),
            EffectivePolicy::AllowAll
        );
        assert_eq!(
            EffectivePolicy::from_outcome(FetchOutcome::ServerError(500)),
            EffectivePolicy::DisallowAll
        );
        assert_eq!(
            EffectivePolicy::from_outcome(FetchOutcome::NetworkError),
            EffectivePolicy::DisallowAll
        );
    }

    #[test]
    fn allow_all_allows_everything() {
        let p = EffectivePolicy::AllowAll;
        assert!(p.is_allowed("any", "/deep/secret"));
        assert_eq!(p.crawl_delay("any"), None);
    }

    #[test]
    fn disallow_all_permits_only_robots_txt() {
        let p = EffectivePolicy::DisallowAll;
        assert!(!p.is_allowed("any", "/index.html"));
        assert!(p.is_allowed("any", "/robots.txt"));
    }

    #[test]
    fn parsed_policy_enforced() {
        let p = EffectivePolicy::from_outcome(FetchOutcome::Success(
            "User-agent: *\nDisallow: /private/\nCrawl-delay: 30\n".into(),
        ));
        assert!(!p.is_allowed("bot", "/private/x"));
        assert!(p.is_allowed("bot", "/public"));
        assert_eq!(p.crawl_delay("bot"), Some(30.0));
    }

    #[test]
    fn cache_ttl_behaviour() {
        let mut c = RobotsCache::new(100);
        assert!(c.needs_fetch(0));
        c.store(10, EffectivePolicy::AllowAll);
        assert!(!c.needs_fetch(50));
        assert!(c.get(50).is_some());
        assert!(c.needs_fetch(110)); // 10 + 100 elapsed
        assert!(c.get(110).is_none());
        c.store(110, EffectivePolicy::DisallowAll);
        assert_eq!(c.check_times(), &[10, 110]);
    }

    #[test]
    fn default_ttl_is_24h() {
        let c = RobotsCache::with_default_ttl();
        assert_eq!(c.ttl_secs(), 86_400);
    }

    #[test]
    fn time_going_backwards_is_tolerated() {
        let mut c = RobotsCache::new(100);
        c.store(1000, EffectivePolicy::AllowAll);
        // A clock that jumps back must not panic; entry counts as fresh.
        assert!(!c.needs_fetch(900));
        assert!(c.get(900).is_some());
    }
}

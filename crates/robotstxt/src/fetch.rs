//! Fetch semantics and the crawler-side cache.
//!
//! RFC 9309 §2.3.1 specifies what a compliant crawler must assume from the
//! HTTP status of the `robots.txt` fetch itself:
//!
//! * **2xx** — parse the body and obey it;
//! * **3xx** — follow at least five redirect hops
//!   ([`resolve_redirects`] implements the §2.3.1.2 hop budget), then
//!   treat as the final status; a chain that exceeds the budget makes the
//!   file "unavailable" (allow all);
//! * **4xx** (including 404) — the file is "unavailable": crawl **without
//!   restriction** (allow all);
//! * **5xx** — the file is "unreachable": assume **complete disallow**
//!   until a fresh fetch succeeds;
//! * network failure — same as 5xx.
//!
//! [`RobotsCache`] models the client-side caching convention the paper
//! measures in §5.1: Google's documented standard is to re-fetch every 24
//! hours, but observed bots range from "every 12 h" to "never". The cache
//! records every check time, which is exactly the signal the study's
//! re-check-frequency analysis consumes.

use crate::model::RobotsTxt;

/// The resolved outcome of fetching `/robots.txt`.
#[derive(Debug, Clone, PartialEq)]
pub enum FetchOutcome {
    /// 2xx with a body.
    Success(String),
    /// `304 Not Modified` in answer to a conditional request
    /// (`If-None-Match` / `If-Modified-Since`): the cached policy is
    /// still current. The crawler must keep enforcing its cached copy —
    /// [`RobotsCache::refresh`] is the matching cache operation; this
    /// outcome never carries a policy of its own.
    NotModified,
    /// Resolved 4xx — unavailable.
    ClientError(u16),
    /// Resolved 5xx — unreachable.
    ServerError(u16),
    /// Transport-level failure (DNS, TCP, TLS).
    NetworkError,
}

/// The redirect-hop budget of RFC 9309 §2.3.1.2: crawlers SHOULD follow
/// at least five consecutive redirects; past that they MAY assume the
/// file is unavailable.
pub const MAX_REDIRECT_HOPS: usize = 5;

/// One wire-level response to a robots.txt request, before redirect
/// resolution. [`resolve_redirects`] folds a chain of these into a
/// [`FetchOutcome`].
#[derive(Debug, Clone, PartialEq)]
pub enum RawResponse {
    /// A terminal status carrying the response body (normally 2xx).
    Body(u16, String),
    /// A 3xx with its `Location` target.
    Redirect(u16, String),
    /// `304 Not Modified`: the server honoured the request's cache
    /// validators. Terminal — the cached body is still authoritative.
    NotModified,
    /// A bodyless terminal status (4xx, 5xx, or anything unexpected).
    Status(u16),
    /// Transport-level failure (DNS, TCP, TLS).
    Failed,
}

/// A redirect-resolved fetch: the final outcome plus chain provenance.
#[derive(Debug, Clone, PartialEq)]
pub struct ResolvedFetch {
    /// What the crawler must act on.
    pub outcome: FetchOutcome,
    /// Redirect hops actually followed.
    pub hops: usize,
    /// Whether resolution stopped because the chain exceeded
    /// [`MAX_REDIRECT_HOPS`] (the outcome is then "unavailable").
    pub capped: bool,
    /// Status of the terminal response: the last 3xx when `capped`, `0`
    /// on transport failure.
    pub status: u16,
}

/// Resolve a redirect chain into a final [`FetchOutcome`] per RFC 9309
/// §2.3.1.2. `follow` is invoked once per followed `Location` target; up
/// to [`MAX_REDIRECT_HOPS`] redirects are followed, and a chain still
/// redirecting after that (including any redirect loop) is treated as
/// **unavailable** — the same `AllowAll` obligation as a 4xx.
///
/// ```
/// use botscope_robotstxt::fetch::{resolve_redirects, FetchOutcome, RawResponse};
/// // One hop to the real file: the body is used.
/// let resolved = resolve_redirects(
///     RawResponse::Redirect(301, "/real/robots.txt".into()),
///     |_| RawResponse::Body(200, "User-agent: *\nDisallow: /\n".into()),
/// );
/// assert_eq!(resolved.hops, 1);
/// assert!(matches!(resolved.outcome, FetchOutcome::Success(_)));
/// ```
pub fn resolve_redirects(
    initial: RawResponse,
    mut follow: impl FnMut(&str) -> RawResponse,
) -> ResolvedFetch {
    let mut hops = 0usize;
    let mut response = initial;
    loop {
        match response {
            RawResponse::Redirect(code, target) => {
                if hops == MAX_REDIRECT_HOPS {
                    // Hop 6+: give up and treat the file as unavailable.
                    return ResolvedFetch {
                        outcome: FetchOutcome::ClientError(code),
                        hops,
                        capped: true,
                        status: code,
                    };
                }
                hops += 1;
                response = follow(&target);
            }
            RawResponse::Body(code, body) => {
                let outcome = match code {
                    200..=299 => FetchOutcome::Success(body),
                    500..=599 => FetchOutcome::ServerError(code),
                    // 4xx and anything unexpected carrying a body:
                    // unavailable (the body of an error page is not a
                    // policy).
                    _ => FetchOutcome::ClientError(code),
                };
                return ResolvedFetch { outcome, hops, capped: false, status: code };
            }
            RawResponse::Status(code) => {
                let outcome = match code {
                    // A bodyless 2xx is an empty policy file: allow all,
                    // via parsing the empty document.
                    200..=299 => FetchOutcome::Success(String::new()),
                    500..=599 => FetchOutcome::ServerError(code),
                    _ => FetchOutcome::ClientError(code),
                };
                return ResolvedFetch { outcome, hops, capped: false, status: code };
            }
            RawResponse::NotModified => {
                return ResolvedFetch {
                    outcome: FetchOutcome::NotModified,
                    hops,
                    capped: false,
                    status: 304,
                };
            }
            RawResponse::Failed => {
                return ResolvedFetch {
                    outcome: FetchOutcome::NetworkError,
                    hops,
                    capped: false,
                    status: 0,
                };
            }
        }
    }
}

/// What a compliant crawler must enforce after a fetch.
#[derive(Debug, Clone, PartialEq)]
pub enum EffectivePolicy {
    /// A parsed document to evaluate per request.
    Policy(RobotsTxt),
    /// Crawl without restriction (4xx outcome).
    AllowAll,
    /// Fetch nothing (5xx / network outcome).
    DisallowAll,
}

impl EffectivePolicy {
    /// Derive the policy a compliant crawler must apply from a fetch
    /// outcome (RFC 9309 §2.3.1).
    ///
    /// ```
    /// use botscope_robotstxt::{EffectivePolicy, FetchOutcome};
    /// assert_eq!(
    ///     EffectivePolicy::from_outcome(FetchOutcome::ClientError(404)),
    ///     EffectivePolicy::AllowAll
    /// );
    /// assert_eq!(
    ///     EffectivePolicy::from_outcome(FetchOutcome::ServerError(503)),
    ///     EffectivePolicy::DisallowAll
    /// );
    /// ```
    pub fn from_outcome(outcome: FetchOutcome) -> Self {
        match outcome {
            FetchOutcome::Success(body) => EffectivePolicy::Policy(RobotsTxt::parse(&body)),
            FetchOutcome::ClientError(_) => EffectivePolicy::AllowAll,
            FetchOutcome::ServerError(_) | FetchOutcome::NetworkError => {
                EffectivePolicy::DisallowAll
            }
            // A 304 has no policy of its own: the crawler must keep the
            // cached one (RobotsCache::refresh). Reaching here is a
            // caller logic error, not a policy question.
            FetchOutcome::NotModified => {
                panic!("NotModified carries no policy; refresh the cache instead")
            }
        }
    }

    /// Whether `agent` may fetch `path` under this policy.
    pub fn is_allowed(&self, agent: &str, path: &str) -> bool {
        match self {
            EffectivePolicy::Policy(doc) => doc.is_allowed(agent, path).allow,
            EffectivePolicy::AllowAll => true,
            // robots.txt itself stays fetchable even in disallow-all.
            EffectivePolicy::DisallowAll => path == "/robots.txt",
        }
    }

    /// The crawl delay for `agent` under this policy.
    pub fn crawl_delay(&self, agent: &str) -> Option<f64> {
        match self {
            EffectivePolicy::Policy(doc) => doc.crawl_delay(agent),
            _ => None,
        }
    }
}

/// A crawler-side robots.txt cache with a fixed time-to-live.
///
/// Time is a plain `u64` of seconds (the simulator's clock); the cache
/// records when each check happened so analyses can reconstruct the bot's
/// re-check cadence.
#[derive(Debug, Clone)]
pub struct RobotsCache {
    ttl_secs: u64,
    cached: Option<(u64, EffectivePolicy)>,
    check_times: Vec<u64>,
}

/// The convention Google documents and the paper cites: re-fetch daily.
pub const DEFAULT_TTL_SECS: u64 = 24 * 3600;

impl RobotsCache {
    /// New cache with the given TTL in seconds.
    pub fn new(ttl_secs: u64) -> Self {
        Self { ttl_secs, cached: None, check_times: Vec::new() }
    }

    /// New cache with the 24-hour default TTL.
    pub fn with_default_ttl() -> Self {
        Self::new(DEFAULT_TTL_SECS)
    }

    /// Whether a fetch is needed at time `now` (no entry, or entry older
    /// than the TTL).
    pub fn needs_fetch(&self, now: u64) -> bool {
        match &self.cached {
            None => true,
            Some((at, _)) => now.saturating_sub(*at) >= self.ttl_secs,
        }
    }

    /// Store the result of a fetch performed at `now`.
    pub fn store(&mut self, now: u64, policy: EffectivePolicy) {
        self.check_times.push(now);
        self.cached = Some((now, policy));
    }

    /// Record a successful re-validation of the cached entry at `now`
    /// (HTTP `304`-style: the server confirmed the policy is unchanged).
    /// The freshness clock restarts and the check joins the re-check
    /// trace, without re-parsing or re-storing the policy. Returns
    /// `false` — and records nothing — when the cache is empty.
    pub fn refresh(&mut self, now: u64) -> bool {
        match self.cached.as_mut() {
            Some((at, _)) => {
                *at = now;
                self.check_times.push(now);
                true
            }
            None => false,
        }
    }

    /// The currently cached policy, if fresh at `now`.
    pub fn get(&self, now: u64) -> Option<&EffectivePolicy> {
        match &self.cached {
            Some((at, policy)) if now.saturating_sub(*at) < self.ttl_secs => Some(policy),
            _ => None,
        }
    }

    /// Every time a fetch was stored — the re-check trace the §5.1
    /// analysis consumes.
    pub fn check_times(&self) -> &[u64] {
        &self.check_times
    }

    /// The configured TTL.
    pub fn ttl_secs(&self) -> u64 {
        self.ttl_secs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcome_mapping() {
        assert!(matches!(
            EffectivePolicy::from_outcome(FetchOutcome::Success(
                "User-agent: *\nDisallow: /\n".into()
            )),
            EffectivePolicy::Policy(_)
        ));
        assert_eq!(
            EffectivePolicy::from_outcome(FetchOutcome::ClientError(404)),
            EffectivePolicy::AllowAll
        );
        assert_eq!(
            EffectivePolicy::from_outcome(FetchOutcome::ClientError(401)),
            EffectivePolicy::AllowAll
        );
        assert_eq!(
            EffectivePolicy::from_outcome(FetchOutcome::ServerError(500)),
            EffectivePolicy::DisallowAll
        );
        assert_eq!(
            EffectivePolicy::from_outcome(FetchOutcome::NetworkError),
            EffectivePolicy::DisallowAll
        );
    }

    #[test]
    fn allow_all_allows_everything() {
        let p = EffectivePolicy::AllowAll;
        assert!(p.is_allowed("any", "/deep/secret"));
        assert_eq!(p.crawl_delay("any"), None);
    }

    #[test]
    fn disallow_all_permits_only_robots_txt() {
        let p = EffectivePolicy::DisallowAll;
        assert!(!p.is_allowed("any", "/index.html"));
        assert!(p.is_allowed("any", "/robots.txt"));
    }

    #[test]
    fn parsed_policy_enforced() {
        let p = EffectivePolicy::from_outcome(FetchOutcome::Success(
            "User-agent: *\nDisallow: /private/\nCrawl-delay: 30\n".into(),
        ));
        assert!(!p.is_allowed("bot", "/private/x"));
        assert!(p.is_allowed("bot", "/public"));
        assert_eq!(p.crawl_delay("bot"), Some(30.0));
    }

    #[test]
    fn cache_ttl_behaviour() {
        let mut c = RobotsCache::new(100);
        assert!(c.needs_fetch(0));
        c.store(10, EffectivePolicy::AllowAll);
        assert!(!c.needs_fetch(50));
        assert!(c.get(50).is_some());
        assert!(c.needs_fetch(110)); // 10 + 100 elapsed
        assert!(c.get(110).is_none());
        c.store(110, EffectivePolicy::DisallowAll);
        assert_eq!(c.check_times(), &[10, 110]);
    }

    #[test]
    fn default_ttl_is_24h() {
        let c = RobotsCache::with_default_ttl();
        assert_eq!(c.ttl_secs(), 86_400);
    }

    /// Serve a chain of `n` redirects, then the body.
    fn chain_of(n: usize) -> (RawResponse, impl FnMut(&str) -> RawResponse) {
        let mut served = 1usize; // the initial redirect is hop target #1
        let follow = move |target: &str| {
            assert!(target.starts_with("/hop-"), "unexpected target {target}");
            if served < n {
                served += 1;
                RawResponse::Redirect(301, format!("/hop-{served}"))
            } else {
                RawResponse::Body(200, "User-agent: *\nDisallow: /private/\n".into())
            }
        };
        (RawResponse::Redirect(301, "/hop-1".into()), follow)
    }

    #[test]
    fn redirect_one_hop_resolves_body() {
        let (first, follow) = chain_of(1);
        let r = resolve_redirects(first, follow);
        assert_eq!(r.hops, 1);
        assert!(!r.capped);
        assert_eq!(r.status, 200);
        let policy = EffectivePolicy::from_outcome(r.outcome);
        assert!(!policy.is_allowed("bot", "/private/x"));
        assert!(policy.is_allowed("bot", "/public"));
    }

    #[test]
    fn redirect_five_hops_still_resolves() {
        let (first, follow) = chain_of(5);
        let r = resolve_redirects(first, follow);
        assert_eq!(r.hops, 5);
        assert!(!r.capped);
        assert!(matches!(r.outcome, FetchOutcome::Success(_)));
    }

    #[test]
    fn redirect_six_hops_is_unavailable() {
        let (first, follow) = chain_of(6);
        let r = resolve_redirects(first, follow);
        assert_eq!(r.hops, MAX_REDIRECT_HOPS);
        assert!(r.capped);
        assert_eq!(r.status, 301);
        assert_eq!(r.outcome, FetchOutcome::ClientError(301));
        // Unavailable ⇒ crawl without restriction.
        assert_eq!(EffectivePolicy::from_outcome(r.outcome), EffectivePolicy::AllowAll);
    }

    #[test]
    fn redirect_loop_is_unavailable() {
        let first = RawResponse::Redirect(302, "/a".into());
        let r = resolve_redirects(first, |target| {
            RawResponse::Redirect(302, if target == "/a" { "/b".into() } else { "/a".into() })
        });
        assert!(r.capped);
        assert_eq!(r.hops, MAX_REDIRECT_HOPS);
        assert_eq!(EffectivePolicy::from_outcome(r.outcome), EffectivePolicy::AllowAll);
    }

    #[test]
    fn redirect_into_error_statuses() {
        let first = RawResponse::Redirect(301, "/gone".into());
        let r = resolve_redirects(first, |_| RawResponse::Status(404));
        assert_eq!((r.hops, r.status), (1, 404));
        assert_eq!(r.outcome, FetchOutcome::ClientError(404));
        let first = RawResponse::Redirect(301, "/down".into());
        let r = resolve_redirects(first, |_| RawResponse::Status(503));
        assert_eq!(r.outcome, FetchOutcome::ServerError(503));
        let first = RawResponse::Redirect(301, "/dead".into());
        let r = resolve_redirects(first, |_| RawResponse::Failed);
        assert_eq!(r.outcome, FetchOutcome::NetworkError);
        assert_eq!(r.status, 0);
    }

    #[test]
    fn not_modified_resolves_terminal() {
        let r = resolve_redirects(RawResponse::NotModified, |_| unreachable!("no follow"));
        assert_eq!((r.hops, r.status, r.capped), (0, 304, false));
        assert_eq!(r.outcome, FetchOutcome::NotModified);
        // ... including behind a redirect (revalidation at the final hop).
        let r = resolve_redirects(RawResponse::Redirect(301, "/real".into()), |_| {
            RawResponse::NotModified
        });
        assert_eq!((r.hops, r.status), (1, 304));
        assert_eq!(r.outcome, FetchOutcome::NotModified);
    }

    #[test]
    #[should_panic(expected = "refresh the cache")]
    fn not_modified_has_no_standalone_policy() {
        let _ = EffectivePolicy::from_outcome(FetchOutcome::NotModified);
    }

    #[test]
    fn non_redirect_initial_passes_through() {
        let r = resolve_redirects(RawResponse::Status(500), |_| unreachable!("no follow"));
        assert_eq!(r.hops, 0);
        assert_eq!(r.outcome, FetchOutcome::ServerError(500));
        // A bodyless 2xx is an empty (allow-everything) policy.
        let r = resolve_redirects(RawResponse::Status(204), |_| unreachable!("no follow"));
        assert!(matches!(r.outcome, FetchOutcome::Success(ref b) if b.is_empty()));
    }

    #[test]
    fn needs_fetch_exactly_at_expiry() {
        let mut c = RobotsCache::new(100);
        c.store(50, EffectivePolicy::AllowAll);
        // One second inside the TTL: fresh. Exactly at expiry: stale.
        assert!(!c.needs_fetch(149));
        assert!(c.get(149).is_some());
        assert!(c.needs_fetch(150));
        assert!(c.get(150).is_none());
    }

    #[test]
    fn refresh_restarts_freshness_without_restoring() {
        let mut c = RobotsCache::new(100);
        assert!(!c.refresh(10), "refresh of an empty cache records nothing");
        assert!(c.check_times().is_empty());
        c.store(10, EffectivePolicy::DisallowAll);
        assert!(c.refresh(90));
        // The entry is now fresh until 190, and the policy is unchanged.
        assert!(!c.needs_fetch(189));
        assert!(c.needs_fetch(190));
        assert_eq!(c.get(100), Some(&EffectivePolicy::DisallowAll));
        assert_eq!(c.check_times(), &[10, 90]);
    }

    #[test]
    fn check_times_stay_monotonic_for_monotonic_stores() {
        let mut c = RobotsCache::new(3600);
        let mut expected = Vec::new();
        for (i, now) in [0u64, 10, 3610, 3615, 7300, 11_000].iter().enumerate() {
            if i % 2 == 0 {
                c.store(*now, EffectivePolicy::AllowAll);
            } else {
                assert!(c.refresh(*now));
            }
            expected.push(*now);
        }
        assert_eq!(c.check_times(), expected.as_slice());
        assert!(c.check_times().windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn time_going_backwards_is_tolerated() {
        let mut c = RobotsCache::new(100);
        c.store(1000, EffectivePolicy::AllowAll);
        // A clock that jumps back must not panic; entry counts as fresh.
        assert!(!c.needs_fetch(900));
        assert!(c.get(900).is_some());
    }
}

//! Path patterns: the value of an `Allow`/`Disallow` line.
//!
//! RFC 9309 §2.2.3 defines two special characters inside rule values:
//!
//! * `*` — matches any sequence of characters (including none),
//! * `$` — when it is the final character, anchors the match to the end of
//!   the path (otherwise it is literal).
//!
//! A rule value without a trailing `$` matches any path it is a *prefix
//! pattern* of; equivalently, an implicit `*` is appended.
//!
//! Rule precedence is by **specificity**: "the match that has the most
//! octets" wins. Like Google's reference implementation we measure
//! specificity as the byte length of the (normalized) pattern text, which
//! reproduces the RFC's intent for all practical files.
//!
//! Both patterns and paths are percent-normalized before comparison:
//! `%XX` triplets are decoded, *except* `%2F` (the path separator `/`),
//! which RFC 9309 requires to stay encoded so that `/a%2Fb` and `/a/b`
//! remain distinct.

use std::borrow::Cow;
use std::fmt;

/// A compiled `Allow`/`Disallow` rule value.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PathPattern {
    /// The normalized pattern text (percent-normalized, `$` retained).
    raw: String,
    /// Pattern split on `*` into literal segments. An empty trailing
    /// segment means the pattern ended with `*`.
    segments: Vec<String>,
    /// Whether the pattern is anchored at the end with `$`.
    anchored: bool,
}

impl PathPattern {
    /// Compile a rule value.
    ///
    /// The empty pattern is valid and matches nothing — RFC 9309 gives
    /// `Disallow:` (empty value) the meaning "no restriction".
    pub fn new(value: &str) -> Self {
        let normalized = normalize_percent(value.trim());
        let (body, anchored) = match normalized.strip_suffix('$') {
            Some(body) => (body.to_string(), true),
            None => (normalized.clone(), false),
        };
        let segments = body.split('*').map(str::to_string).collect();
        Self { raw: normalized, segments, anchored }
    }

    /// The normalized pattern text.
    pub fn as_str(&self) -> &str {
        &self.raw
    }

    /// Whether this pattern can never match anything (the empty pattern).
    pub fn is_empty(&self) -> bool {
        self.raw.is_empty()
    }

    /// Pattern specificity: the number of octets in the normalized pattern.
    /// Higher wins (RFC 9309 §2.2.2 "most octets").
    pub fn specificity(&self) -> usize {
        self.raw.len()
    }

    /// Whether the pattern is anchored at the end with `$`.
    pub fn is_anchored(&self) -> bool {
        self.anchored
    }

    /// The pattern body split on `*` into literal segments (the trailing
    /// `$` anchor removed). An empty trailing segment means the body ended
    /// with `*`.
    pub fn segments(&self) -> &[String] {
        &self.segments
    }

    /// Whether the pattern matches `path`.
    ///
    /// `path` is percent-normalized with the same rules as the pattern. A
    /// non-anchored pattern matches prefixes; an anchored pattern must
    /// consume the entire path.
    ///
    /// ```
    /// use botscope_robotstxt::pattern::PathPattern;
    /// assert!(PathPattern::new("/secure/*").matches("/secure/x/y"));
    /// assert!(PathPattern::new("/page-data/").matches("/page-data/app.json"));
    /// assert!(!PathPattern::new("/page-data/").matches("/other"));
    /// assert!(PathPattern::new("/*.pdf$").matches("/docs/a.pdf"));
    /// assert!(!PathPattern::new("/*.pdf$").matches("/docs/a.pdf.html"));
    /// assert!(!PathPattern::new("").matches("/anything"));
    /// ```
    pub fn matches(&self, path: &str) -> bool {
        self.matches_normalized(&normalize_path(path))
    }

    /// Whether the pattern matches a path that has **already** been
    /// percent-normalized (via [`normalize_path`] or [`normalize_percent`]).
    ///
    /// This is the hot-path entry: callers that evaluate many rules against
    /// one path should normalize the path once and use this for every rule.
    pub fn matches_normalized(&self, path: &str) -> bool {
        if self.raw.is_empty() {
            return false;
        }
        let bytes = path.as_bytes();

        // Greedy wildcard matching over the `*`-split literal segments:
        // the first segment must match at the start; each subsequent
        // segment may float. If anchored, the final segment must end
        // exactly at the path end; otherwise prefix semantics apply
        // (an implicit trailing `*`).
        let mut pos = 0usize;
        for (i, seg) in self.segments.iter().enumerate() {
            let seg_bytes = seg.as_bytes();
            let is_first = i == 0;
            let is_last = i == self.segments.len() - 1;
            if is_first {
                if bytes.len() < seg_bytes.len() || &bytes[..seg_bytes.len()] != seg_bytes {
                    return false;
                }
                pos = seg_bytes.len();
            } else if is_last && self.anchored {
                // Must match at the very end, at or after `pos`.
                if bytes.len() < pos + seg_bytes.len() {
                    return false;
                }
                let start = bytes.len() - seg_bytes.len();
                if start < pos || &bytes[start..] != seg_bytes {
                    return false;
                }
                pos = bytes.len();
            } else {
                // Find the segment anywhere at or after `pos`.
                match find_from(bytes, seg_bytes, pos) {
                    Some(found) => pos = found + seg_bytes.len(),
                    None => return false,
                }
            }
        }
        if self.anchored
            && self.segments.len() > 1
            && self.segments.last().is_some_and(std::string::String::is_empty)
        {
            // Pattern ended `*$` — the `*` eats the rest; always fine.
            return true;
        }
        if self.anchored {
            pos == bytes.len()
        } else {
            true
        }
    }
}

impl fmt::Display for PathPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.raw)
    }
}

/// Percent-normalize a request path, borrowing when normalization is the
/// identity (no `%` and pure ASCII — the overwhelmingly common case for
/// crawler request paths).
pub fn normalize_path(path: &str) -> Cow<'_, str> {
    if path.bytes().all(|b| b != b'%' && b < 0x80) {
        Cow::Borrowed(path)
    } else {
        Cow::Owned(normalize_percent(path))
    }
}

/// Substring search starting at `from`.
fn find_from(haystack: &[u8], needle: &[u8], from: usize) -> Option<usize> {
    if needle.is_empty() {
        return Some(from.min(haystack.len()));
    }
    if from >= haystack.len() || haystack.len() - from < needle.len() {
        return None;
    }
    haystack[from..].windows(needle.len()).position(|w| w == needle).map(|p| p + from)
}

/// Percent-normalization shared by patterns and paths.
///
/// Decodes `%XX` triplets (case-insensitive hex) except `%2F`/`%2f`, which
/// encodes the path separator and must stay distinct from a literal `/`
/// (RFC 9309 §2.2.2). Malformed triplets are kept verbatim. Decoded bytes
/// that are not printable ASCII are re-encoded as uppercase `%XX` so the
/// output is always valid UTF-8 and comparisons stay byte-wise.
pub fn normalize_percent(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = String::with_capacity(s.len());
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'%' && i + 2 < bytes.len() {
            let h1 = hex_val(bytes[i + 1]);
            let h2 = hex_val(bytes[i + 2]);
            if let (Some(a), Some(b)) = (h1, h2) {
                let decoded = a * 16 + b;
                if decoded == b'/' {
                    // Keep %2F encoded, canonicalized to uppercase.
                    out.push_str("%2F");
                } else if (0x21..=0x7E).contains(&decoded) {
                    out.push(decoded as char);
                } else {
                    // Non-printable or non-ASCII: canonical uppercase triplet.
                    out.push('%');
                    out.push(to_hex(decoded >> 4));
                    out.push(to_hex(decoded & 0xF));
                }
                i += 3;
                continue;
            }
        }
        // RFC 9309 §2.2.2 compares percent-encoded octets: canonicalize
        // raw non-ASCII bytes (each byte of a multi-byte UTF-8 character)
        // to uppercase triplets, so `/é` and `/%C3%A9` are the same
        // pattern and match the same paths.
        if bytes[i] >= 0x80 {
            out.push('%');
            out.push(to_hex(bytes[i] >> 4));
            out.push(to_hex(bytes[i] & 0xF));
        } else {
            out.push(bytes[i] as char);
        }
        i += 1;
    }
    out
}

fn hex_val(b: u8) -> Option<u8> {
    match b {
        b'0'..=b'9' => Some(b - b'0'),
        b'a'..=b'f' => Some(b - b'a' + 10),
        b'A'..=b'F' => Some(b - b'A' + 10),
        _ => None,
    }
}

fn to_hex(v: u8) -> char {
    char::from_digit(v as u32, 16).expect("nibble").to_ascii_uppercase()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(pattern: &str, path: &str) -> bool {
        PathPattern::new(pattern).matches(path)
    }

    #[test]
    fn prefix_semantics() {
        assert!(m("/", "/"));
        assert!(m("/", "/anything/at/all"));
        assert!(m("/fish", "/fish"));
        assert!(m("/fish", "/fish.html"));
        assert!(m("/fish", "/fishheads/yummy.html"));
        assert!(!m("/fish", "/Fish.asp")); // case-sensitive
        assert!(!m("/fish", "/catfish"));
    }

    #[test]
    fn directory_pattern() {
        assert!(m("/fish/", "/fish/"));
        assert!(m("/fish/", "/fish/salmon.htm"));
        assert!(!m("/fish/", "/fish"));
        assert!(!m("/fish/", "/fish.html"));
    }

    #[test]
    fn star_wildcard() {
        assert!(m("/fish*", "/fish"));
        assert!(m("/fish*", "/fishheads"));
        assert!(m("/*.php", "/index.php"));
        assert!(m("/*.php", "/folder/filename.php"));
        assert!(m("/*.php", "/folder/filename.php?parameters"));
        assert!(m("/*.php", "/folder/any.php.file.html"));
        assert!(!m("/*.php", "/"));
        assert!(!m("/*.php", "/windows.PHP"));
    }

    #[test]
    fn dollar_anchor() {
        assert!(m("/*.php$", "/filename.php"));
        assert!(m("/*.php$", "/folder/filename.php"));
        assert!(!m("/*.php$", "/filename.php?parameters"));
        assert!(!m("/*.php$", "/filename.php/"));
        assert!(!m("/*.php$", "/filename.php5"));
        assert!(m("/fish$", "/fish"));
        assert!(!m("/fish$", "/fish.html"));
    }

    #[test]
    fn dollar_not_at_end_is_literal() {
        assert!(m("/a$b", "/a$b/c"));
        assert!(!m("/a$b", "/ab"));
    }

    #[test]
    fn star_dollar_combo() {
        // `/x*$` is equivalent to `/x` prefix matching everything after.
        assert!(m("/x*$", "/x"));
        assert!(m("/x*$", "/xyz"));
        assert!(!m("/x*$", "/y"));
    }

    #[test]
    fn multiple_stars() {
        assert!(m("/a*b*c", "/a-b-c"));
        assert!(m("/a*b*c", "/axxbxxc-and-more"));
        assert!(!m("/a*b*c", "/a-c-b"));
        assert!(m("/*/*/deep", "/1/2/deep"));
        assert!(!m("/*/*/deep", "/1/deep"));
    }

    #[test]
    fn empty_pattern_matches_nothing() {
        let p = PathPattern::new("");
        assert!(p.is_empty());
        assert!(!p.matches("/"));
        assert!(!p.matches(""));
    }

    #[test]
    fn leading_star() {
        assert!(m("*/secure/", "/app/secure/x"));
        assert!(m("*/secure/", "/secure/x"));
    }

    #[test]
    fn specificity_is_byte_length() {
        assert_eq!(PathPattern::new("/page-data/*").specificity(), 12);
        assert_eq!(PathPattern::new("/").specificity(), 1);
        assert!(PathPattern::new("/fish/").specificity() > PathPattern::new("/fish").specificity());
    }

    #[test]
    fn percent_normalization_decodes_printables() {
        assert_eq!(normalize_percent("/a%7Eb"), "/a~b");
        assert_eq!(normalize_percent("/a~b"), "/a~b");
        assert!(m("/a%7Eb", "/a~b"));
        assert!(m("/a~b", "/a%7Eb"));
    }

    #[test]
    fn percent_2f_stays_encoded() {
        assert_eq!(normalize_percent("/a%2Fb"), "/a%2Fb");
        assert_eq!(normalize_percent("/a%2fb"), "/a%2Fb");
        assert!(!m("/a%2Fb", "/a/b"));
        assert!(m("/a%2Fb", "/a%2fb"));
        assert!(!m("/a/b", "/a%2Fb"));
    }

    #[test]
    fn malformed_percent_kept_verbatim() {
        assert_eq!(normalize_percent("/100%"), "/100%");
        assert_eq!(normalize_percent("/x%G1y"), "/x%G1y");
        assert!(m("/100%", "/100%"));
    }

    #[test]
    fn non_ascii_percent_canonicalized() {
        // %e2 decodes to a non-printable byte: canonical uppercase form.
        assert_eq!(normalize_percent("/caf%e9"), "/caf%E9");
        assert!(m("/caf%e9", "/caf%E9"));
    }

    #[test]
    fn utf8_percent_equivalence() {
        // Raw multi-byte characters canonicalize to their uppercase
        // percent-encoded octets, so the raw and encoded spellings are
        // one pattern and match each other's paths (RFC 9309 §2.2.2).
        assert_eq!(normalize_percent("/café"), "/caf%C3%A9");
        assert_eq!(normalize_percent("/caf%c3%a9"), "/caf%C3%A9");
        assert!(m("/café", "/café"));
        assert!(m("/café", "/caf%C3%A9"));
        assert!(m("/caf%C3%A9", "/café"));
        assert!(m("/caf%c3%a9", "/café"));
        // Distinct characters stay distinct.
        assert!(!m("/café", "/cafe"));
        // CJK (three-byte) and emoji (four-byte) sequences too.
        assert!(m("/図書館", "/%E5%9B%B3%E6%9B%B8%E9%A4%A8"));
        assert!(m("/%F0%9F%A4%96", "/🤖"));
    }

    #[test]
    fn query_strings_are_plain_characters() {
        assert!(m("/page?", "/page?id=1"));
        assert!(m("/*?lang=en", "/page?lang=en"));
        assert!(!m("/*?lang=en$", "/page?lang=en&x=1"));
    }

    #[test]
    fn normalize_path_borrows_plain_ascii() {
        assert!(matches!(normalize_path("/plain/ascii-path_01.html?q=1"), Cow::Borrowed(_)));
        assert!(matches!(normalize_path("/has%20escape"), Cow::Owned(_)));
        assert!(matches!(normalize_path("/café"), Cow::Owned(_)));
        // The borrowed fast path must agree with full normalization.
        for p in ["/plain", "/a~b!x", "/q?lang=en&x=1", "/100"] {
            assert_eq!(normalize_path(p).as_ref(), normalize_percent(p));
        }
    }

    #[test]
    fn matches_normalized_skips_renormalization() {
        let p = PathPattern::new("/caf%c3%a9");
        assert!(p.matches_normalized("/caf%C3%A9"));
        // Raw (un-normalized) input only matches via `matches`.
        assert!(p.matches("/café"));
        assert!(!p.matches_normalized("/café"));
    }

    #[test]
    fn segment_accessors() {
        let p = PathPattern::new("/a/*/b$");
        assert!(p.is_anchored());
        assert_eq!(p.segments(), &["/a/".to_string(), "/b".to_string()]);
        assert!(!PathPattern::new("/a*").is_anchored());
        assert_eq!(PathPattern::new("/a*").segments(), &["/a".to_string(), String::new()]);
    }

    #[test]
    fn display_roundtrip() {
        let p = PathPattern::new("/a/*/b$");
        assert_eq!(p.to_string(), "/a/*/b$");
        assert_eq!(p.as_str(), "/a/*/b$");
    }
}

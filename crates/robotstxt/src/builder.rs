//! Fluent construction of robots.txt documents.
//!
//! The study deploys four hand-built policy files (paper Figures 5–8);
//! `botscope-core` constructs them with this builder, guaranteeing they are
//! well-formed by construction (the paper validated its files with the
//! Google parser; we validate with our own parser via round-trip tests).

use crate::model::{Group, RobotsTxt, Rule};

/// Builder for a [`RobotsTxt`] document.
///
/// ```
/// use botscope_robotstxt::RobotsTxtBuilder;
///
/// let robots = RobotsTxtBuilder::new()
///     .group(["Googlebot"], |g| g.allow("/").crawl_delay(15.0))
///     .group(["*"], |g| {
///         g.allow("/allowed-data/").disallow("/restricted-data/").crawl_delay(30.0)
///     })
///     .sitemap("https://example.edu/sitemap.xml")
///     .build();
///
/// assert_eq!(robots.groups.len(), 2);
/// assert!(!robots.is_allowed("GPTBot", "/restricted-data/x").allow);
/// ```
#[derive(Debug, Default)]
pub struct RobotsTxtBuilder {
    doc: RobotsTxt,
}

/// Builder scope for a single group; returned by the closure passed to
/// [`RobotsTxtBuilder::group`].
#[derive(Debug)]
pub struct GroupBuilder {
    group: Group,
}

impl GroupBuilder {
    /// Append an `Allow:` rule.
    pub fn allow(mut self, pattern: &str) -> Self {
        self.group.rules.push(Rule::allow(pattern));
        self
    }

    /// Append a `Disallow:` rule.
    pub fn disallow(mut self, pattern: &str) -> Self {
        self.group.rules.push(Rule::disallow(pattern));
        self
    }

    /// Set the `Crawl-delay:` for this group.
    ///
    /// # Panics
    /// Panics on negative or non-finite delays (caller logic error).
    pub fn crawl_delay(mut self, seconds: f64) -> Self {
        assert!(seconds >= 0.0 && seconds.is_finite(), "invalid crawl delay {seconds}");
        self.group.crawl_delay = Some(seconds);
        self
    }
}

impl RobotsTxtBuilder {
    /// Start an empty document.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a group for the given agents, configured by `f`.
    pub fn group<I, S>(mut self, agents: I, f: impl FnOnce(GroupBuilder) -> GroupBuilder) -> Self
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let gb = GroupBuilder { group: Group::for_agents(agents) };
        self.doc.groups.push(f(gb).group);
        self
    }

    /// Add a global `Sitemap:` URL.
    pub fn sitemap(mut self, url: &str) -> Self {
        self.doc.sitemaps.push(url.to_string());
        self
    }

    /// Finish, returning the document.
    pub fn build(self) -> RobotsTxt {
        self.doc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    #[test]
    fn builder_roundtrips_through_text() {
        let built = RobotsTxtBuilder::new()
            .group(["*"], |g| g.allow("/").disallow("/secure/*").crawl_delay(30.0))
            .sitemap("https://x/s.xml")
            .build();
        let reparsed = parse(&built.to_string());
        assert_eq!(reparsed.groups, built.groups);
        assert_eq!(reparsed.sitemaps, built.sitemaps);
    }

    #[test]
    fn multi_agent_group() {
        let r =
            RobotsTxtBuilder::new().group(["Googlebot", "bingbot"], |g| g.disallow("/404")).build();
        assert_eq!(r.groups[0].user_agents, vec!["googlebot", "bingbot"]);
    }

    #[test]
    #[should_panic(expected = "invalid crawl delay")]
    fn negative_delay_panics() {
        let _ = RobotsTxtBuilder::new().group(["*"], |g| g.crawl_delay(-1.0)).build();
    }

    #[test]
    fn empty_builder_is_allow_all() {
        let r = RobotsTxtBuilder::new().build();
        assert!(r.is_allowed("any", "/path").allow);
    }
}

//! Policy auditing: lint a robots.txt document for mistakes that silently
//! weaken it.
//!
//! The paper's §2.2 observes that the REP "requires web hosts to maintain
//! extensive knowledge of user agents" and that misconfigured files are
//! common. The auditor flags the classes of mistake that turn an intended
//! restriction into a no-op: rules that can never win, duplicate groups,
//! empty patterns, unreachable agents, and crawl delays outside the range
//! real bots honour.

use std::collections::BTreeSet;

use crate::model::{Group, RobotsTxt, RuleVerb};

/// One audit finding.
#[derive(Debug, Clone, PartialEq)]
pub enum AuditFinding {
    /// Two rules in the same merged group have the same pattern and
    /// opposite verbs; the Allow always wins ties, so the Disallow is
    /// dead.
    ContradictoryRules {
        /// Group agent token.
        agent: String,
        /// The pattern written twice.
        pattern: String,
    },
    /// The identical rule appears more than once for the same agent.
    DuplicateRule {
        /// Group agent token.
        agent: String,
        /// The repeated pattern.
        pattern: String,
        /// Allow or Disallow.
        verb: RuleVerb,
    },
    /// An empty-pattern rule matches nothing; `Disallow:` (empty) is a
    /// common "disallow nothing" trap for authors who meant `Disallow: /`.
    EmptyPattern {
        /// Group agent token.
        agent: String,
        /// Allow or Disallow.
        verb: RuleVerb,
    },
    /// A rule is shadowed: a strictly more specific rule of the opposite
    /// verb matches everything this rule matches (prefix relation), so
    /// this rule never decides an outcome alone on its own prefix.
    ShadowedRule {
        /// Group agent token.
        agent: String,
        /// The shadowed pattern.
        pattern: String,
        /// The pattern that overrides it.
        by: String,
    },
    /// A group's agent token appears in more than one group; legal (they
    /// merge) but usually an editing accident.
    SplitGroup {
        /// The repeated agent token.
        agent: String,
    },
    /// A crawl delay large enough that major crawlers are documented to
    /// ignore it (Google ignores the directive entirely; Bing caps at
    /// ~180 s).
    ExcessiveCrawlDelay {
        /// Group agent token.
        agent: String,
        /// The configured delay.
        seconds: f64,
    },
    /// No wildcard (`*`) group: unlisted bots are entirely unrestricted.
    NoWildcardGroup,
}

/// Audit a parsed document.
pub fn audit(doc: &RobotsTxt) -> Vec<AuditFinding> {
    let mut findings = Vec::new();

    // Split groups.
    let mut seen_agents: BTreeSet<&str> = BTreeSet::new();
    let mut split: BTreeSet<&str> = BTreeSet::new();
    for g in &doc.groups {
        for a in &g.user_agents {
            if !seen_agents.insert(a) {
                split.insert(a);
            }
        }
    }
    for agent in split {
        findings.push(AuditFinding::SplitGroup { agent: agent.to_string() });
    }

    // Per merged agent: contradictions, duplicates, shadowing, empties.
    let mut all_agents: Vec<&str> = Vec::new();
    for g in &doc.groups {
        for a in &g.user_agents {
            if !all_agents.contains(&a.as_str()) {
                all_agents.push(a);
            }
        }
    }
    for agent in &all_agents {
        let rules: Vec<_> = doc
            .groups
            .iter()
            .filter(|g| g.user_agents.iter().any(|a| a == agent))
            .flat_map(|g| g.rules.iter())
            .collect();

        let mut seen: BTreeSet<(RuleVerb, &str)> = BTreeSet::new();
        for rule in &rules {
            let key = (rule.verb, rule.pattern.as_str());
            if !seen.insert(key) {
                findings.push(AuditFinding::DuplicateRule {
                    agent: agent.to_string(),
                    pattern: rule.pattern.as_str().to_string(),
                    verb: rule.verb,
                });
            }
            if rule.pattern.is_empty() {
                findings
                    .push(AuditFinding::EmptyPattern { agent: agent.to_string(), verb: rule.verb });
            }
        }
        for rule in &rules {
            let opposite = match rule.verb {
                RuleVerb::Allow => RuleVerb::Disallow,
                RuleVerb::Disallow => RuleVerb::Allow,
            };
            if seen.contains(&(opposite, rule.pattern.as_str())) && rule.verb == RuleVerb::Disallow
            {
                findings.push(AuditFinding::ContradictoryRules {
                    agent: agent.to_string(),
                    pattern: rule.pattern.as_str().to_string(),
                });
            }
        }
        // Shadowing: a wildcard-free rule `a` is dead when an
        // opposite-verb rule `b = a + "*"` exists — `b` matches every
        // path `a` matches, is strictly more specific, and therefore
        // always wins. (Exact shadow analysis over arbitrary `*` patterns
        // is regular-language inclusion; this covers the mistake class
        // seen in real files.)
        for a in &rules {
            if a.pattern.is_empty() || a.pattern.as_str().contains('*') {
                continue;
            }
            // `a` is fully shadowed if an opposite-verb rule `b` is a
            // prefix of `a` *and* every path matching `a` also matches a
            // longer opposite rule — the practical case: an Allow that is
            // an extension of this Disallow hides the whole subtree.
            for b in &rules {
                if b.verb != a.verb
                    && !b.pattern.is_empty()
                    && b.pattern.as_str() != a.pattern.as_str()
                    && b.pattern.as_str().starts_with(a.pattern.as_str())
                    && b.pattern.as_str().trim_start_matches(a.pattern.as_str()) == "*"
                {
                    findings.push(AuditFinding::ShadowedRule {
                        agent: agent.to_string(),
                        pattern: a.pattern.as_str().to_string(),
                        by: b.pattern.as_str().to_string(),
                    });
                }
            }
        }
    }

    // Crawl delays.
    for g in &doc.groups {
        if let Some(delay) = g.crawl_delay {
            if delay > 180.0 {
                findings.push(AuditFinding::ExcessiveCrawlDelay {
                    agent: g.user_agents.first().cloned().unwrap_or_default(),
                    seconds: delay,
                });
            }
        }
    }

    // Wildcard coverage.
    if !doc.groups.iter().any(Group::is_wildcard) && !doc.groups.is_empty() {
        findings.push(AuditFinding::NoWildcardGroup);
    }

    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    #[test]
    fn clean_file_has_no_findings() {
        let doc = parse("User-agent: *\nAllow: /\nDisallow: /secure/*\nCrawl-delay: 30\n");
        assert!(audit(&doc).is_empty(), "{:?}", audit(&doc));
    }

    #[test]
    fn contradiction_detected() {
        let doc = parse("User-agent: *\nAllow: /x\nDisallow: /x\n");
        let f = audit(&doc);
        assert!(f.iter().any(
            |x| matches!(x, AuditFinding::ContradictoryRules { pattern, .. } if pattern == "/x")
        ));
    }

    #[test]
    fn duplicate_detected() {
        let doc = parse("User-agent: *\nDisallow: /x\nDisallow: /x\n");
        let f = audit(&doc);
        assert!(f.iter().any(|x| matches!(x, AuditFinding::DuplicateRule { .. })));
    }

    #[test]
    fn empty_pattern_detected() {
        let doc = parse("User-agent: *\nDisallow:\n");
        let f = audit(&doc);
        assert!(f
            .iter()
            .any(|x| matches!(x, AuditFinding::EmptyPattern { verb: RuleVerb::Disallow, .. })));
    }

    #[test]
    fn shadow_detected() {
        // Disallow /private is fully hidden by Allow /private* — every
        // path the Disallow matches, the longer Allow matches and wins.
        let doc = parse("User-agent: *\nDisallow: /private\nAllow: /private*\n");
        let f = audit(&doc);
        assert!(
            f.iter().any(|x| matches!(x, AuditFinding::ShadowedRule { pattern, by, .. } if pattern == "/private" && by == "/private*")),
            "{f:?}"
        );
        // And the matcher agrees the Disallow is dead.
        assert!(doc.is_allowed("bot", "/private/x").allow);
    }

    #[test]
    fn split_group_detected() {
        let doc = parse("User-agent: a\nDisallow: /x\n\nUser-agent: b\nDisallow: /\n\nUser-agent: a\nDisallow: /y\n");
        let f = audit(&doc);
        assert!(f.iter().any(|x| matches!(x, AuditFinding::SplitGroup { agent } if agent == "a")));
    }

    #[test]
    fn excessive_delay_detected() {
        let doc = parse("User-agent: slowbot\nCrawl-delay: 3600\n");
        let f = audit(&doc);
        assert!(f.iter().any(
            |x| matches!(x, AuditFinding::ExcessiveCrawlDelay { seconds, .. } if *seconds == 3600.0)
        ));
    }

    #[test]
    fn missing_wildcard_detected() {
        let doc = parse("User-agent: googlebot\nDisallow: /x\n");
        let f = audit(&doc);
        assert!(f.contains(&AuditFinding::NoWildcardGroup));
        // Empty docs are fine (nothing to protect).
        assert!(!audit(&parse("")).contains(&AuditFinding::NoWildcardGroup));
    }

    #[test]
    fn paper_policies_are_clean() {
        // The four experimental files must audit clean — they were
        // validated against the Google parser in the paper.
        for text in [
            "User-agent: *\nAllow: /\nDisallow: /404\nDisallow: /dev-404-page\nDisallow: /secure/*\n",
            "User-agent: *\nAllow: /page-data/*\nDisallow: /\n",
            "User-agent: *\nDisallow: /\n",
        ] {
            let doc = parse(text);
            assert!(audit(&doc).is_empty(), "{text}: {:?}", audit(&doc));
        }
    }
}

//! Line-level scanning of `robots.txt` text.
//!
//! The lexer is deliberately forgiving, matching the behaviour of the
//! widely-deployed parsers the study validated its files against (the
//! Google robots.txt parser): it strips a UTF-8 BOM, accepts `\n`, `\r\n`
//! and bare `\r` line endings, strips `#` comments, trims whitespace around
//! both the key and the value, and compares keys case-insensitively. It
//! also accepts common misspellings of `user-agent` seen in the wild
//! (`useragent`, `user agent`) and both `crawl-delay` spellings.

/// One meaningful line of a robots.txt file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Line {
    /// `User-agent: <token>`
    UserAgent(String),
    /// `Allow: <pattern>`
    Allow(String),
    /// `Disallow: <pattern>`
    Disallow(String),
    /// `Crawl-delay: <value>` (value kept raw; parsed later).
    CrawlDelay(String),
    /// `Sitemap: <url>`
    Sitemap(String),
    /// A `key: value` line with an unrecognized key (key lowercased).
    Unknown {
        /// Lowercased directive key.
        key: String,
        /// Raw value.
        value: String,
    },
    /// A non-empty, non-comment line with no `:` separator.
    Malformed(String),
}

/// A lexed line with its 1-based position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Spanned {
    /// 1-based line number in the input.
    pub line_no: usize,
    /// The recognized line.
    pub line: Line,
}

/// Lex input text into meaningful lines. Blank lines and comment-only lines
/// are dropped (group structure in RFC 9309 is determined by directives,
/// not blank lines).
pub fn lex(input: &str) -> Vec<Spanned> {
    let input = input.strip_prefix('\u{feff}').unwrap_or(input);
    let mut out = Vec::new();
    for (idx, raw_line) in split_lines(input).into_iter().enumerate() {
        let line_no = idx + 1;
        // Strip comments: everything from the first '#'.
        let body = match raw_line.find('#') {
            Some(pos) => &raw_line[..pos],
            None => raw_line,
        };
        let body = body.trim();
        if body.is_empty() {
            continue;
        }
        let Some(colon) = body.find(':') else {
            out.push(Spanned { line_no, line: Line::Malformed(truncate(body, 80)) });
            continue;
        };
        let key = body[..colon].trim().to_ascii_lowercase();
        let value = body[colon + 1..].trim().to_string();
        let line = match key.as_str() {
            "user-agent" | "useragent" | "user agent" => Line::UserAgent(value),
            "allow" => Line::Allow(value),
            "disallow" | "dissallow" | "disalow" => Line::Disallow(value),
            "crawl-delay" | "crawldelay" => Line::CrawlDelay(value),
            "sitemap" | "site-map" => Line::Sitemap(value),
            _ => Line::Unknown { key, value },
        };
        out.push(Spanned { line_no, line });
    }
    out
}

/// Split on `\n`, `\r\n`, or bare `\r`.
fn split_lines(input: &str) -> Vec<&str> {
    let mut lines = Vec::new();
    let mut start = 0;
    let bytes = input.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'\n' => {
                lines.push(&input[start..i]);
                i += 1;
                start = i;
            }
            b'\r' => {
                lines.push(&input[start..i]);
                i += 1;
                if i < bytes.len() && bytes[i] == b'\n' {
                    i += 1;
                }
                start = i;
            }
            _ => i += 1,
        }
    }
    if start <= input.len() {
        lines.push(&input[start..]);
    }
    lines
}

fn truncate(s: &str, max: usize) -> String {
    if s.len() <= max {
        s.to_string()
    } else {
        let mut end = max;
        while !s.is_char_boundary(end) {
            end -= 1;
        }
        s[..end].to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_directives() {
        let lines = lex("User-agent: Googlebot\nAllow: /\nDisallow: /secure/\n");
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0].line, Line::UserAgent("Googlebot".into()));
        assert_eq!(lines[1].line, Line::Allow("/".into()));
        assert_eq!(lines[2].line, Line::Disallow("/secure/".into()));
        assert_eq!(lines[0].line_no, 1);
        assert_eq!(lines[2].line_no, 3);
    }

    #[test]
    fn case_insensitive_keys() {
        let lines = lex("USER-AGENT: x\nallow: /\nDISALLOW: /\nCRAWL-DELAY: 5\nSiTeMaP: u");
        assert!(matches!(lines[0].line, Line::UserAgent(_)));
        assert!(matches!(lines[1].line, Line::Allow(_)));
        assert!(matches!(lines[2].line, Line::Disallow(_)));
        assert!(matches!(lines[3].line, Line::CrawlDelay(_)));
        assert!(matches!(lines[4].line, Line::Sitemap(_)));
    }

    #[test]
    fn comments_stripped() {
        let lines = lex("# full comment line\nAllow: /x # trailing comment\n   # indented\n");
        assert_eq!(lines.len(), 1);
        assert_eq!(lines[0].line, Line::Allow("/x".into()));
        assert_eq!(lines[0].line_no, 2);
    }

    #[test]
    fn blank_lines_dropped() {
        let lines = lex("\n\n\nAllow: /\n\n");
        assert_eq!(lines.len(), 1);
        assert_eq!(lines[0].line_no, 4);
    }

    #[test]
    fn whitespace_trimmed() {
        let lines = lex("  User-agent :   GPTBot  \n\tDisallow\t:\t/private\t\n");
        assert_eq!(lines[0].line, Line::UserAgent("GPTBot".into()));
        assert_eq!(lines[1].line, Line::Disallow("/private".into()));
    }

    #[test]
    fn crlf_and_cr_endings() {
        let lines = lex("Allow: /a\r\nAllow: /b\rAllow: /c");
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[2].line, Line::Allow("/c".into()));
    }

    #[test]
    fn bom_stripped() {
        let lines = lex("\u{feff}User-agent: *");
        assert_eq!(lines[0].line, Line::UserAgent("*".into()));
    }

    #[test]
    fn malformed_lines_flagged() {
        let lines = lex("this is not a directive\nAllow: /\n");
        assert_eq!(lines[0].line, Line::Malformed("this is not a directive".into()));
        assert_eq!(lines[1].line, Line::Allow("/".into()));
    }

    #[test]
    fn unknown_directives_preserved() {
        let lines = lex("Host: example.com\nClean-param: ref /articles/\n");
        assert_eq!(
            lines[0].line,
            Line::Unknown { key: "host".into(), value: "example.com".into() }
        );
        assert!(matches!(&lines[1].line, Line::Unknown { key, .. } if key == "clean-param"));
    }

    #[test]
    fn empty_values_allowed() {
        let lines = lex("Disallow:\nAllow:");
        assert_eq!(lines[0].line, Line::Disallow(String::new()));
        assert_eq!(lines[1].line, Line::Allow(String::new()));
    }

    #[test]
    fn common_misspellings() {
        let lines = lex("useragent: a\ncrawldelay: 3\ndissallow: /x");
        assert!(matches!(lines[0].line, Line::UserAgent(_)));
        assert!(matches!(lines[1].line, Line::CrawlDelay(_)));
        assert!(matches!(lines[2].line, Line::Disallow(_)));
    }

    #[test]
    fn sitemap_value_keeps_colon() {
        let lines = lex("Sitemap: https://x.edu/sitemap.xml");
        assert_eq!(lines[0].line, Line::Sitemap("https://x.edu/sitemap.xml".into()));
    }

    #[test]
    fn long_malformed_truncated() {
        let long = "z".repeat(500);
        let lines = lex(&long);
        match &lines[0].line {
            Line::Malformed(t) => assert_eq!(t.len(), 80),
            other => panic!("expected malformed, got {other:?}"),
        }
    }
}

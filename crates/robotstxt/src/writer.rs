//! Serialization of a [`RobotsTxt`] document back to canonical text.
//!
//! The writer produces the conventional layout (one blank line between
//! groups, `Sitemap:` lines last) so that the study's policy files render
//! exactly as shown in the paper's Figures 5–8. Parsing the output yields
//! a document equal to the original (round-trip property, tested here and
//! in the crate's proptest suite).

use std::fmt;

use crate::model::RobotsTxt;

impl fmt::Display for RobotsTxt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for group in &self.groups {
            if !first {
                writeln!(f)?;
            }
            first = false;
            for ua in &group.user_agents {
                writeln!(f, "User-agent: {}", display_agent(ua))?;
            }
            for rule in &group.rules {
                writeln!(f, "{}: {}", rule.verb.as_str(), rule.pattern)?;
            }
            if let Some(delay) = group.crawl_delay {
                if delay.fract() == 0.0 {
                    writeln!(f, "Crawl-delay: {}", delay as u64)?;
                } else {
                    writeln!(f, "Crawl-delay: {delay}")?;
                }
            }
        }
        if !self.sitemaps.is_empty() {
            if !first {
                writeln!(f)?;
            }
            for s in &self.sitemaps {
                writeln!(f, "Sitemap: {s}")?;
            }
        }
        Ok(())
    }
}

/// Agents are stored lowercased; emit well-known names with their
/// conventional capitalization for readability.
fn display_agent(token: &str) -> String {
    const CANONICAL: &[(&str, &str)] = &[
        ("googlebot", "Googlebot"),
        ("bingbot", "bingbot"),
        ("slurp", "Slurp"),
        ("yandexbot", "Yandexbot"),
        ("duckduckbot", "DuckDuckBot"),
        ("baiduspider", "BaiduSpider"),
        ("duckassistbot", "DuckAssistBot"),
        ("ia_archiver", "ia_archiver"),
        ("gptbot", "GPTBot"),
        ("claudebot", "ClaudeBot"),
    ];
    for (lower, canon) in CANONICAL {
        if token == *lower {
            return (*canon).to_string();
        }
    }
    token.to_string()
}

#[cfg(test)]
mod tests {
    use crate::builder::RobotsTxtBuilder;
    use crate::parser::parse;

    #[test]
    fn writes_figure5_shape() {
        let r = RobotsTxtBuilder::new()
            .group(["*"], |g| {
                g.allow("/").disallow("/404").disallow("/dev-404-page").disallow("/secure/*")
            })
            .build();
        let text = r.to_string();
        assert_eq!(
            text,
            "User-agent: *\nAllow: /\nDisallow: /404\nDisallow: /dev-404-page\nDisallow: /secure/*\n"
        );
    }

    #[test]
    fn blank_line_between_groups() {
        let r = RobotsTxtBuilder::new()
            .group(["Googlebot"], |g| g.allow("/"))
            .group(["*"], |g| g.disallow("/"))
            .build();
        let text = r.to_string();
        assert!(text.contains("Allow: /\n\nUser-agent: *"));
    }

    #[test]
    fn integral_crawl_delay_has_no_decimal_point() {
        let r = RobotsTxtBuilder::new().group(["*"], |g| g.crawl_delay(30.0)).build();
        assert!(r.to_string().contains("Crawl-delay: 30\n"));
        let r = RobotsTxtBuilder::new().group(["*"], |g| g.crawl_delay(2.5)).build();
        assert!(r.to_string().contains("Crawl-delay: 2.5\n"));
    }

    #[test]
    fn canonical_capitalization() {
        let r = RobotsTxtBuilder::new().group(["GOOGLEBOT"], |g| g.allow("/")).build();
        assert!(r.to_string().starts_with("User-agent: Googlebot\n"));
    }

    #[test]
    fn roundtrip_equality() {
        let r = RobotsTxtBuilder::new()
            .group(["Googlebot", "bingbot"], |g| g.allow("/").disallow("/404").crawl_delay(15.0))
            .group(["*"], |g| g.allow("/page-data/*").disallow("/"))
            .sitemap("https://site.edu/sitemap-0.xml")
            .build();
        let reparsed = parse(&r.to_string());
        assert_eq!(reparsed.groups, r.groups);
        assert_eq!(reparsed.sitemaps, r.sitemaps);
        assert!(reparsed.warnings.is_empty());
    }
}

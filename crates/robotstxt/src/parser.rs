//! Group assembly: turning lexed lines into a [`RobotsTxt`] document.
//!
//! Implements the RFC 9309 §2.2.1 grouping rules:
//!
//! * consecutive `User-agent:` lines share one group ("start-of-group
//!   lines... are followed by the rules that apply to them"),
//! * a rule line after a rule line stays in the current group,
//! * a `User-agent:` line after a rule line starts a *new* group,
//! * rules appearing before any `User-agent:` line belong to no group and
//!   are ignored (with a warning),
//! * `Sitemap:` is global and does not interrupt a group,
//! * input beyond 500 KiB is ignored (RFC 9309 §2.5 minimum; matches the
//!   Google parser's cap).
//!
//! The parser **never fails**: every robots.txt body found in the wild —
//! including HTML error pages mistakenly served at `/robots.txt` — produces
//! a usable (possibly empty) document plus warnings.

use crate::lexer::{lex, Line};
use crate::model::{Group, ParseWarning, RobotsTxt, Rule, RuleVerb};

/// Maximum number of bytes parsed, per RFC 9309 §2.5 / Google parser cap.
pub const MAX_SIZE_BYTES: usize = 500 * 1024;

impl RobotsTxt {
    /// Parse a robots.txt body. Never fails; see module docs.
    pub fn parse(input: &str) -> RobotsTxt {
        parse(input)
    }
}

/// Parse a robots.txt body into a document. See [`RobotsTxt::parse`].
pub fn parse(input: &str) -> RobotsTxt {
    let mut warnings = Vec::new();
    let input = if input.len() > MAX_SIZE_BYTES {
        warnings.push(ParseWarning::Truncated { input_bytes: input.len() });
        // Cut at a char boundary at or below the cap.
        let mut end = MAX_SIZE_BYTES;
        while !input.is_char_boundary(end) {
            end -= 1;
        }
        &input[..end]
    } else {
        input
    };

    let mut groups: Vec<Group> = Vec::new();
    let mut sitemaps: Vec<String> = Vec::new();

    // State machine over line kinds.
    #[derive(PartialEq)]
    enum State {
        /// Before any user-agent line.
        Preamble,
        /// Collecting consecutive user-agent lines for a new group.
        CollectingAgents,
        /// Inside a group's rule list.
        InRules,
    }
    let mut state = State::Preamble;

    for spanned in lex(input) {
        match spanned.line {
            Line::UserAgent(token) => {
                let token = normalize_agent(&token);
                match state {
                    State::CollectingAgents => {
                        groups
                            .last_mut()
                            .expect("collecting implies a group exists")
                            .user_agents
                            .push(token);
                    }
                    _ => {
                        groups.push(Group { user_agents: vec![token], ..Group::default() });
                        state = State::CollectingAgents;
                    }
                }
            }
            Line::Allow(value) | Line::Disallow(value) if state == State::Preamble => {
                let _ = value;
                warnings.push(ParseWarning::RuleOutsideGroup { line: spanned.line_no });
            }
            Line::Allow(value) => {
                groups.last_mut().expect("in group").rules.push(Rule::new(RuleVerb::Allow, &value));
                state = State::InRules;
            }
            Line::Disallow(value) => {
                groups
                    .last_mut()
                    .expect("in group")
                    .rules
                    .push(Rule::new(RuleVerb::Disallow, &value));
                state = State::InRules;
            }
            Line::CrawlDelay(value) => {
                if state == State::Preamble {
                    warnings.push(ParseWarning::RuleOutsideGroup { line: spanned.line_no });
                    continue;
                }
                match value.parse::<f64>() {
                    Ok(secs) if secs >= 0.0 && secs.is_finite() => {
                        groups.last_mut().expect("in group").crawl_delay = Some(secs);
                    }
                    _ => {
                        warnings.push(ParseWarning::BadCrawlDelay { line: spanned.line_no, value });
                    }
                }
                state = State::InRules;
            }
            Line::Sitemap(url) => {
                if !url.is_empty() {
                    sitemaps.push(url);
                }
                // Sitemap is global; it does not change group state.
            }
            Line::Unknown { key, .. } => {
                warnings.push(ParseWarning::UnknownDirective { line: spanned.line_no, key });
                // Unknown directives close an agent-collection run (they
                // count as "rules" for grouping purposes per RFC 9309's
                // "other records" note).
                if state == State::CollectingAgents {
                    state = State::InRules;
                }
            }
            Line::Malformed(text) => {
                warnings.push(ParseWarning::MalformedLine { line: spanned.line_no, text });
            }
        }
    }

    RobotsTxt { groups, sitemaps, warnings }
}

/// Normalize a `User-agent:` value to a lowercase product token: the value
/// is cut at the first character that cannot appear in a product token
/// (anything other than `a-z A-Z 0-9 _ -`), except for the literal `*`.
///
/// This mirrors the reference parser: `User-agent: Googlebot/2.1 (+http://…)`
/// names the token `googlebot`.
pub fn normalize_agent(value: &str) -> String {
    let value = value.trim();
    if value.starts_with('*') {
        return "*".to_string();
    }
    let end = value
        .find(|c: char| !(c.is_ascii_alphanumeric() || c == '-' || c == '_'))
        .unwrap_or(value.len());
    value[..end].to_ascii_lowercase()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_group() {
        let r = parse("User-agent: *\nDisallow: /private/\nAllow: /private/ok\n");
        assert_eq!(r.groups.len(), 1);
        assert!(r.groups[0].is_wildcard());
        assert_eq!(r.groups[0].rules.len(), 2);
        assert!(r.warnings.is_empty());
    }

    #[test]
    fn consecutive_agents_share_group() {
        let r = parse("User-agent: a\nUser-agent: b\nDisallow: /\n");
        assert_eq!(r.groups.len(), 1);
        assert_eq!(r.groups[0].user_agents, vec!["a", "b"]);
    }

    #[test]
    fn agent_after_rule_starts_new_group() {
        let r = parse("User-agent: a\nDisallow: /x\nUser-agent: b\nDisallow: /y\n");
        assert_eq!(r.groups.len(), 2);
        assert_eq!(r.groups[0].user_agents, vec!["a"]);
        assert_eq!(r.groups[1].user_agents, vec!["b"]);
    }

    #[test]
    fn rules_before_any_group_warned_and_ignored() {
        let r = parse("Disallow: /x\nUser-agent: a\nDisallow: /y\n");
        assert_eq!(r.groups.len(), 1);
        assert_eq!(r.groups[0].rules.len(), 1);
        assert!(matches!(r.warnings[0], ParseWarning::RuleOutsideGroup { line: 1 }));
    }

    #[test]
    fn crawl_delay_parsing() {
        let r = parse("User-agent: *\nCrawl-delay: 30\n");
        assert_eq!(r.groups[0].crawl_delay, Some(30.0));
        let r = parse("User-agent: *\nCrawl-delay: 2.5\n");
        assert_eq!(r.groups[0].crawl_delay, Some(2.5));
    }

    #[test]
    fn bad_crawl_delay_warned() {
        let r = parse("User-agent: *\nCrawl-delay: soon\n");
        assert_eq!(r.groups[0].crawl_delay, None);
        assert!(
            matches!(&r.warnings[0], ParseWarning::BadCrawlDelay { value, .. } if value == "soon")
        );
        let r = parse("User-agent: *\nCrawl-delay: -5\n");
        assert_eq!(r.groups[0].crawl_delay, None);
    }

    #[test]
    fn sitemap_global_and_does_not_break_group() {
        let r = parse(
            "User-agent: a\nUser-agent: b\nSitemap: https://x/s.xml\nDisallow: /\nSitemap: https://x/t.xml\n",
        );
        assert_eq!(r.groups.len(), 1);
        assert_eq!(r.groups[0].user_agents, vec!["a", "b"]);
        assert_eq!(r.sitemaps, vec!["https://x/s.xml", "https://x/t.xml"]);
    }

    #[test]
    fn unknown_directive_closes_agent_run() {
        // `Host:` between user-agent lines separates the groups.
        let r = parse("User-agent: a\nHost: x\nUser-agent: b\nDisallow: /\n");
        assert_eq!(r.groups.len(), 2);
        assert!(r
            .warnings
            .iter()
            .any(|w| matches!(w, ParseWarning::UnknownDirective { key, .. } if key == "host")));
    }

    #[test]
    fn agent_token_normalization() {
        assert_eq!(normalize_agent("Googlebot/2.1 (+http://google.com/bot.html)"), "googlebot");
        assert_eq!(normalize_agent("GPTBot"), "gptbot");
        assert_eq!(normalize_agent("  Meta-ExternalAgent  "), "meta-externalagent");
        assert_eq!(normalize_agent("*"), "*");
        assert_eq!(normalize_agent("* wide"), "*");
        assert_eq!(normalize_agent("yandex.com/bots"), "yandex");
    }

    #[test]
    fn html_error_page_yields_empty_doc() {
        let r = parse("<!DOCTYPE html>\n<html><body>404</body></html>\n");
        assert!(r.groups.is_empty());
        assert!(!r.warnings.is_empty());
    }

    #[test]
    fn paper_figure1_file() {
        let r = parse(
            "User-agent: Googlebot\nAllow: /\nCrawl-delay: 15\n\nUser-agent: *\nAllow: /allowed-data/\nDisallow: /restricted-data/\nCrawl-delay: 30\n\nSitemap: https://X.X.X/sitemap/sitemap-0.xml\n",
        );
        assert_eq!(r.groups.len(), 2);
        assert_eq!(r.groups[0].user_agents, vec!["googlebot"]);
        assert_eq!(r.groups[0].crawl_delay, Some(15.0));
        assert_eq!(r.groups[1].crawl_delay, Some(30.0));
        assert_eq!(r.sitemaps.len(), 1);
        assert!(r.warnings.is_empty());
    }

    #[test]
    fn truncation_at_cap() {
        let mut big = String::from("User-agent: *\n");
        while big.len() <= MAX_SIZE_BYTES {
            big.push_str("Disallow: /padding/padding/padding\n");
        }
        big.push_str("Disallow: /after-the-cap\n");
        let r = parse(&big);
        assert!(matches!(r.warnings[0], ParseWarning::Truncated { .. }));
        assert!(!r.groups[0].rules.iter().any(|ru| ru.pattern.as_str() == "/after-the-cap"));
    }

    #[test]
    fn empty_input() {
        let r = parse("");
        assert!(r.groups.is_empty());
        assert!(r.warnings.is_empty());
        assert_eq!(r, RobotsTxt::allow_all());
    }

    #[test]
    fn empty_disallow_produces_unmatched_rule() {
        let r = parse("User-agent: *\nDisallow:\n");
        assert_eq!(r.groups[0].rules.len(), 1);
        assert!(r.groups[0].rules[0].pattern.is_empty());
    }
}

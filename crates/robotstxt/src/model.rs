//! Data model: rules, groups, and the parsed `robots.txt` document.
//!
//! A `robots.txt` file is a sequence of *groups*. Each group names one or
//! more user agents (`User-agent:` lines) and carries the rules that apply
//! to them (`Allow:`/`Disallow:` lines, paper Table 1), plus the de-facto
//! `Crawl-delay` extension. `Sitemap:` lines are global, outside any group.

use crate::pattern::PathPattern;

/// Whether a rule grants or denies access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum RuleVerb {
    /// `Allow:` — the named paths may be fetched.
    Allow,
    /// `Disallow:` — the named paths must not be fetched.
    Disallow,
}

impl RuleVerb {
    /// The canonical directive name as written in a file.
    pub fn as_str(self) -> &'static str {
        match self {
            RuleVerb::Allow => "Allow",
            RuleVerb::Disallow => "Disallow",
        }
    }
}

/// One `Allow`/`Disallow` line.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Rule {
    /// Allow or Disallow.
    pub verb: RuleVerb,
    /// The compiled path pattern.
    pub pattern: PathPattern,
}

impl Rule {
    /// Construct a rule from a verb and a raw pattern string.
    pub fn new(verb: RuleVerb, pattern: &str) -> Self {
        Self { verb, pattern: PathPattern::new(pattern) }
    }

    /// Shorthand for an `Allow` rule.
    pub fn allow(pattern: &str) -> Self {
        Self::new(RuleVerb::Allow, pattern)
    }

    /// Shorthand for a `Disallow` rule.
    pub fn disallow(pattern: &str) -> Self {
        Self::new(RuleVerb::Disallow, pattern)
    }
}

/// A group: one or more user agents and the rules applying to them.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Group {
    /// The `User-agent:` product tokens heading this group. `*` is the
    /// wildcard group. Stored lowercased (matching is case-insensitive).
    pub user_agents: Vec<String>,
    /// Rules in file order.
    pub rules: Vec<Rule>,
    /// Optional `Crawl-delay:` in seconds.
    pub crawl_delay: Option<f64>,
}

impl Group {
    /// A group for the given agents (any case; stored lowercased).
    pub fn for_agents<I, S>(agents: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        Self {
            user_agents: agents.into_iter().map(|a| a.as_ref().to_ascii_lowercase()).collect(),
            rules: Vec::new(),
            crawl_delay: None,
        }
    }

    /// Whether this is the wildcard (`*`) group.
    pub fn is_wildcard(&self) -> bool {
        self.user_agents.iter().any(|a| a == "*")
    }
}

/// A non-fatal problem found while parsing (the parser never fails).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseWarning {
    /// A line had no `:` separator and was not empty/comment.
    MalformedLine {
        /// 1-based line number.
        line: usize,
        /// The offending text (truncated to 80 bytes).
        text: String,
    },
    /// A rule appeared before any `User-agent:` line and was ignored.
    RuleOutsideGroup {
        /// 1-based line number.
        line: usize,
    },
    /// A `Crawl-delay:` value was not a number.
    BadCrawlDelay {
        /// 1-based line number.
        line: usize,
        /// The unparsable value.
        value: String,
    },
    /// An unknown directive was skipped (e.g. `Host:`, `Clean-param:`).
    UnknownDirective {
        /// 1-based line number.
        line: usize,
        /// The directive key, lowercased.
        key: String,
    },
    /// Input exceeded the 500 KiB cap and was truncated (RFC 9309 §2.5
    /// requires parsers to handle at least 500 KiB; we parse exactly that
    /// much and ignore the rest).
    Truncated {
        /// Total input size in bytes.
        input_bytes: usize,
    },
}

/// A parsed `robots.txt` document.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RobotsTxt {
    /// Groups in file order.
    pub groups: Vec<Group>,
    /// Global `Sitemap:` URLs in file order.
    pub sitemaps: Vec<String>,
    /// Non-fatal parse warnings.
    pub warnings: Vec<ParseWarning>,
}

impl RobotsTxt {
    /// An empty document: no groups, which means everything is allowed.
    pub fn allow_all() -> Self {
        Self::default()
    }

    /// A document with a single `User-agent: * / Disallow: /` group.
    pub fn disallow_all() -> Self {
        let mut g = Group::for_agents(["*"]);
        g.rules.push(Rule::disallow("/"));
        Self { groups: vec![g], sitemaps: Vec::new(), warnings: Vec::new() }
    }

    /// The sitemap URLs declared in the file.
    pub fn sitemaps(&self) -> &[String] {
        &self.sitemaps
    }

    /// Total number of rules across all groups.
    pub fn rule_count(&self) -> usize {
        self.groups.iter().map(|g| g.rules.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_lowercases_agents() {
        let g = Group::for_agents(["GoogleBot", "GPTBot"]);
        assert_eq!(g.user_agents, vec!["googlebot", "gptbot"]);
        assert!(!g.is_wildcard());
        assert!(Group::for_agents(["*"]).is_wildcard());
    }

    #[test]
    fn allow_all_has_no_rules() {
        let r = RobotsTxt::allow_all();
        assert_eq!(r.rule_count(), 0);
        assert!(r.groups.is_empty());
    }

    #[test]
    fn disallow_all_shape() {
        let r = RobotsTxt::disallow_all();
        assert_eq!(r.rule_count(), 1);
        assert!(r.groups[0].is_wildcard());
        assert_eq!(r.groups[0].rules[0].verb, RuleVerb::Disallow);
        assert_eq!(r.groups[0].rules[0].pattern.as_str(), "/");
    }

    #[test]
    fn rule_shorthands() {
        assert_eq!(Rule::allow("/x").verb, RuleVerb::Allow);
        assert_eq!(Rule::disallow("/x").verb, RuleVerb::Disallow);
        assert_eq!(RuleVerb::Allow.as_str(), "Allow");
        assert_eq!(RuleVerb::Disallow.as_str(), "Disallow");
    }
}

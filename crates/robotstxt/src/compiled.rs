//! Compiled policy automata: answer "may I crawl?" in a single path scan.
//!
//! The interpreted matcher ([`RobotsTxt::is_allowed`]) re-evaluates every
//! rule of the applicable group against the path on every call. That is
//! fine for analysis, but too slow for an admission layer answering
//! millions of (bot, site, path) queries per second. This module compiles a
//! parsed document once into a per-agent-group automaton over the
//! percent-normalized pattern alphabet, with all RFC 9309 precedence logic
//! (longest match, Allow wins ties, first-rule tie-break) resolved into the
//! automaton's terminal ranks at **build** time:
//!
//! * Literal rules (`/path`), prefix rules (`/path*`) and anchored literal
//!   rules (`/path$`) become terminals of a shared byte **trie**; a check
//!   walks the path bytes once, folding the best terminal rank seen.
//! * Rules with a true interior wildcard (`/a*b`) go to a short side list
//!   evaluated against the same once-normalized path.
//!
//! A terminal rank packs `(specificity, verb, rule index)` into one `u64`
//! such that the numeric **maximum** over all matching rules is exactly the
//! rule the interpreted matcher would pick — so the query path has no
//! precedence branches at all.
//!
//! [`PolicyEstate`] caches compiled policies per site, compiling lazily and
//! recompiling only after [`PolicyEstate::invalidate`] (driven by the
//! monitor's change digests).

use std::collections::HashMap;
use std::sync::Arc;

use crate::matcher::Decision;
use crate::model::{RobotsTxt, Rule, RuleVerb};
use crate::parser::parse;
use crate::pattern::normalize_path;

/// Packed precedence rank: `(specificity << 33) | (allow << 32) |
/// (u32::MAX - rule_index)`. Higher specificity wins, then Allow over
/// Disallow, then the earliest rule — the exact tie-break order of the
/// interpreted matcher. `0` means "no match" (real ranks are always
/// non-zero because empty patterns are never inserted).
const NO_MATCH: u64 = 0;

fn pack(spec: usize, verb: RuleVerb, rule_idx: u32) -> u64 {
    ((spec as u64) << 33)
        | (u64::from(verb == RuleVerb::Allow) << 32)
        | u64::from(u32::MAX - rule_idx)
}

fn unpack_rule(rank: u64) -> usize {
    (u32::MAX - (rank & u64::from(u32::MAX)) as u32) as usize
}

fn unpack_allow(rank: u64) -> bool {
    (rank >> 32) & 1 == 1
}

/// One trie node. Children are kept as a small sorted list — policy tries
/// are shallow and narrow, and a binary search over a `Vec<(u8, u32)>`
/// beats a 256-entry table on cache footprint.
#[derive(Debug, Clone, Default)]
struct TrieNode {
    children: Vec<(u8, u32)>,
    /// Best rank among prefix rules ending at this node (matches every
    /// path that reaches the node).
    prefix: u64,
    /// Best rank among `$`-anchored rules ending at this node (matches
    /// only when the path ends here too).
    exact: u64,
}

/// The automaton for one merged user-agent group.
#[derive(Debug, Clone)]
struct GroupAutomaton {
    /// Merged rules in document order (for decision reporting).
    rules: Vec<Rule>,
    nodes: Vec<TrieNode>,
    /// Rules with a true interior wildcard, evaluated as a side list.
    wild: Vec<(usize, u64)>,
    crawl_delay: Option<f64>,
}

impl GroupAutomaton {
    fn build(rules: Vec<Rule>, crawl_delay: Option<f64>) -> Self {
        let mut nodes = vec![TrieNode::default()];
        let mut wild = Vec::new();
        for (idx, rule) in rules.iter().enumerate() {
            if rule.pattern.is_empty() {
                continue;
            }
            let rank = pack(rule.pattern.specificity(), rule.verb, idx as u32);
            let segments = rule.pattern.segments();
            let tail_is_stars = segments[1..].iter().all(String::is_empty);
            if segments.len() == 1 && rule.pattern.is_anchored() {
                // `X$`: anchored literal — exact terminal.
                insert(&mut nodes, segments[0].as_bytes(), rank, true);
            } else if segments.len() == 1 || tail_is_stars {
                // `X`, `X*`, `X**`, `X*$`: all prefix-of-X semantics.
                insert(&mut nodes, segments[0].as_bytes(), rank, false);
            } else {
                wild.push((idx, rank));
            }
        }
        Self { rules, nodes, wild, crawl_delay }
    }

    /// Best matching rank for an already-normalized path, or [`NO_MATCH`].
    fn scan(&self, path: &str) -> u64 {
        let bytes = path.as_bytes();
        let mut best = NO_MATCH;
        let mut node = &self.nodes[0];
        let mut depth = 0;
        loop {
            best = best.max(node.prefix);
            if depth == bytes.len() {
                best = best.max(node.exact);
                break;
            }
            match node.children.binary_search_by_key(&bytes[depth], |c| c.0) {
                Ok(i) => {
                    node = &self.nodes[node.children[i].1 as usize];
                    depth += 1;
                }
                Err(_) => break,
            }
        }
        for &(idx, rank) in &self.wild {
            if rank > best && self.rules[idx].pattern.matches_normalized(path) {
                best = rank;
            }
        }
        best
    }
}

fn insert(nodes: &mut Vec<TrieNode>, key: &[u8], rank: u64, exact: bool) {
    let mut cur = 0usize;
    for &b in key {
        cur = match nodes[cur].children.binary_search_by_key(&b, |c| c.0) {
            Ok(i) => nodes[cur].children[i].1 as usize,
            Err(i) => {
                let next = nodes.len();
                nodes.push(TrieNode::default());
                nodes[cur].children.insert(i, (b, next as u32));
                next
            }
        };
    }
    let slot = if exact { &mut nodes[cur].exact } else { &mut nodes[cur].prefix };
    *slot = (*slot).max(rank);
}

/// A [`RobotsTxt`] compiled for fast admission checks.
///
/// Decision outcomes (allow/deny, matched rule, matched agent group) are
/// byte-identical to [`RobotsTxt::is_allowed`]; only the evaluation
/// strategy differs.
///
/// ```
/// use botscope_robotstxt::compiled::CompiledPolicy;
/// use botscope_robotstxt::RobotsTxt;
///
/// let doc = RobotsTxt::parse("User-agent: *\nDisallow: /page\nAllow: /page-data/\n");
/// let compiled = CompiledPolicy::compile(&doc);
/// assert!(!compiled.check("GPTBot", "/page").allow);
/// assert!(compiled.check("GPTBot", "/page-data/app.json").allow);
/// assert_eq!(compiled.check_many("GPTBot", &["/page", "/page-data/x", "/other"]), vec![0b110]);
/// ```
#[derive(Debug, Clone)]
pub struct CompiledPolicy {
    /// Named group tokens (lowercase, first-appearance order) with their
    /// automata. The wildcard group is kept separate.
    tokens: Vec<(String, GroupAutomaton)>,
    wildcard: Option<GroupAutomaton>,
}

/// Size counters for a compiled policy, for reporting compile cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompiledStats {
    /// Distinct user-agent group tokens (including `*` if present).
    pub tokens: usize,
    /// Total merged rules across all group automata.
    pub rules: usize,
    /// Total trie nodes across all group automata.
    pub trie_nodes: usize,
    /// Total side-list (interior-wildcard) rules.
    pub wild_rules: usize,
}

impl CompiledPolicy {
    /// Compile a parsed document.
    pub fn compile(doc: &RobotsTxt) -> Self {
        let mut order: Vec<String> = Vec::new();
        for g in &doc.groups {
            for ua in &g.user_agents {
                if !order.contains(ua) {
                    order.push(ua.clone());
                }
            }
        }
        let mut tokens = Vec::new();
        let mut wildcard = None;
        for token in order {
            let merged: Vec<Rule> = doc
                .groups
                .iter()
                .filter(|g| g.user_agents.contains(&token))
                .flat_map(|g| g.rules.iter().cloned())
                .collect();
            let delay = doc
                .groups
                .iter()
                .filter(|g| g.user_agents.contains(&token))
                .filter_map(|g| g.crawl_delay)
                .fold(None, |acc: Option<f64>, d| Some(acc.map_or(d, |a| a.max(d))));
            let automaton = GroupAutomaton::build(merged, delay);
            if token == "*" {
                wildcard = Some(automaton);
            } else {
                tokens.push((token, automaton));
            }
        }
        Self { tokens, wildcard }
    }

    /// Parse and compile in one step.
    pub fn from_text(text: &str) -> Self {
        Self::compile(&parse(text))
    }

    /// Select the automaton for a crawler product token: longest
    /// case-insensitive boundary-prefix group wins, `*` is the fallback.
    /// Mirrors the interpreted matcher's group selection, allocation-free.
    fn resolve(&self, agent_token: &str) -> Option<(&str, &GroupAutomaton)> {
        let trimmed = agent_token.trim();
        if trimmed.starts_with('*') {
            return self.wildcard.as_ref().map(|g| ("*", g));
        }
        let end = trimmed
            .find(|c: char| !(c.is_ascii_alphanumeric() || c == '-' || c == '_'))
            .unwrap_or(trimmed.len());
        let crawler = &trimmed[..end];
        let mut best: Option<(&str, &GroupAutomaton)> = None;
        for (tok, g) in &self.tokens {
            if token_matches_ci(tok, crawler) && best.is_none_or(|(b, _)| tok.len() > b.len()) {
                best = Some((tok.as_str(), g));
            }
        }
        best.or_else(|| self.wildcard.as_ref().map(|g| ("*", g)))
    }

    /// Decide whether `agent_token` may fetch `path`.
    ///
    /// Semantics are identical to [`RobotsTxt::is_allowed`], including the
    /// implicit `/robots.txt` allowance and leading-slash tolerance.
    pub fn check(&self, agent_token: &str, path: &str) -> Decision<'_> {
        let path_owned;
        let path = if path.starts_with('/') {
            path
        } else {
            path_owned = format!("/{path}");
            &path_owned
        };
        if path == "/robots.txt" {
            return Decision::default_allow(None);
        }
        let Some((token, group)) = self.resolve(agent_token) else {
            return Decision::default_allow(None);
        };
        let normalized = normalize_path(path);
        let best = group.scan(&normalized);
        if best == NO_MATCH {
            return Decision::default_allow(Some(token));
        }
        Decision {
            allow: unpack_allow(best),
            matched_rule: Some(&group.rules[unpack_rule(best)]),
            matched_agent: Some(token),
        }
    }

    /// Batch admission check: bit `i` of word `i / 64` is set iff
    /// `paths[i]` is allowed for `agent_token`. Group resolution happens
    /// once for the whole batch.
    pub fn check_many(&self, agent_token: &str, paths: &[&str]) -> Vec<u64> {
        let mut mask = vec![0u64; paths.len().div_ceil(64)];
        let group = self.resolve(agent_token).map(|(_, g)| g);
        for (i, path) in paths.iter().enumerate() {
            let allowed = match group {
                None => true,
                Some(g) => {
                    let path_owned;
                    let path: &str = if path.starts_with('/') {
                        path
                    } else {
                        path_owned = format!("/{path}");
                        &path_owned
                    };
                    if path == "/robots.txt" {
                        true
                    } else {
                        let normalized = normalize_path(path);
                        let best = g.scan(&normalized);
                        best == NO_MATCH || unpack_allow(best)
                    }
                }
            };
            if allowed {
                mask[i / 64] |= 1u64 << (i % 64);
            }
        }
        mask
    }

    /// The crawl delay applying to `agent_token`, if any (max over the
    /// merged groups, like the interpreted matcher).
    pub fn crawl_delay(&self, agent_token: &str) -> Option<f64> {
        self.resolve(agent_token).and_then(|(_, g)| g.crawl_delay)
    }

    /// Size counters, for compile-cost reporting.
    pub fn stats(&self) -> CompiledStats {
        let groups = self.tokens.iter().map(|(_, g)| g).chain(self.wildcard.iter());
        let mut stats = CompiledStats {
            tokens: self.tokens.len() + usize::from(self.wildcard.is_some()),
            rules: 0,
            trie_nodes: 0,
            wild_rules: 0,
        };
        for g in groups {
            stats.rules += g.rules.len();
            stats.trie_nodes += g.nodes.len();
            stats.wild_rules += g.wild.len();
        }
        stats
    }
}

/// Packed-rank helpers for analysis passes that walk automaton internals
/// (see [`crate::analysis`]). The packing is the compiled matcher's whole
/// precedence story: the numeric maximum over matching rules is the rule
/// RFC 9309 selects.
pub mod rank {
    use crate::model::RuleVerb;

    /// The rank of "no rule matched" (always allow).
    pub const NO_MATCH: u64 = super::NO_MATCH;

    /// Pack `(specificity, verb, rule index)` exactly as the trie does.
    pub fn pack(specificity: usize, verb: RuleVerb, rule_index: u32) -> u64 {
        super::pack(specificity, verb, rule_index)
    }

    /// Whether a (non-[`NO_MATCH`]) rank encodes an `Allow` rule.
    pub fn allow(rank: u64) -> bool {
        super::unpack_allow(rank)
    }

    /// The merged-rule index a (non-[`NO_MATCH`]) rank encodes.
    pub fn rule_index(rank: u64) -> usize {
        super::unpack_rule(rank)
    }
}

/// Read-only view of one merged agent group's automaton, exposing the
/// trie and side-list internals the semantic analyzer walks.
#[derive(Debug, Clone, Copy)]
pub struct GroupView<'a> {
    automaton: &'a GroupAutomaton,
}

impl<'a> GroupView<'a> {
    /// The group's merged rules in document order.
    pub fn rules(&self) -> &'a [Rule] {
        &self.automaton.rules
    }

    /// The group's crawl delay, if any.
    pub fn crawl_delay(&self) -> Option<f64> {
        self.automaton.crawl_delay
    }

    /// Indices (into [`rules`](Self::rules)) of side-list rules — those
    /// with a true interior wildcard that the trie cannot represent.
    pub fn wild_rule_indices(&self) -> impl Iterator<Item = usize> + 'a {
        self.automaton.wild.iter().map(|&(idx, _)| idx)
    }

    /// Whether the group has any side-list (interior-wildcard) rules.
    pub fn has_wild(&self) -> bool {
        !self.automaton.wild.is_empty()
    }

    /// Number of trie nodes (node 0 is the root).
    pub fn node_count(&self) -> usize {
        self.automaton.nodes.len()
    }

    /// The trie node at `index` (0 is the root).
    ///
    /// # Panics
    /// Panics when `index >= node_count()`.
    pub fn node(&self, index: usize) -> NodeView<'a> {
        NodeView { node: &self.automaton.nodes[index] }
    }

    /// The best matching packed rank for an **already normalized** path
    /// (see [`rank`]), exactly as an admission check would fold it.
    pub fn scan_rank(&self, normalized_path: &str) -> u64 {
        self.automaton.scan(normalized_path)
    }
}

/// Read-only view of one trie node.
#[derive(Debug, Clone, Copy)]
pub struct NodeView<'a> {
    node: &'a TrieNode,
}

impl<'a> NodeView<'a> {
    /// Outgoing edges as `(byte, child node index)`, byte-ascending.
    pub fn children(&self) -> impl Iterator<Item = (u8, usize)> + 'a {
        self.node.children.iter().map(|&(b, i)| (b, i as usize))
    }

    /// Best rank among prefix rules terminating at this node
    /// ([`rank::NO_MATCH`] when none do).
    pub fn prefix_rank(&self) -> u64 {
        self.node.prefix
    }

    /// Best rank among `$`-anchored rules terminating at this node
    /// ([`rank::NO_MATCH`] when none do).
    pub fn exact_rank(&self) -> u64 {
        self.node.exact
    }
}

impl CompiledPolicy {
    /// Every merged agent group as `(token, view)`, named tokens in
    /// first-appearance order, the `*` group (if any) last.
    pub fn groups(&self) -> impl Iterator<Item = (&str, GroupView<'_>)> {
        self.tokens
            .iter()
            .map(|(t, g)| (t.as_str(), GroupView { automaton: g }))
            .chain(self.wildcard.iter().map(|g| ("*", GroupView { automaton: g })))
    }

    /// Resolve a crawler product token to its applicable group view,
    /// with the same longest-boundary-prefix selection as
    /// [`check`](Self::check). Returns the winning group token.
    pub fn resolve_view(&self, agent_token: &str) -> Option<(&str, GroupView<'_>)> {
        self.resolve(agent_token).map(|(t, g)| (t, GroupView { automaton: g }))
    }
}

/// Case-insensitive boundary-prefix test: `group` (stored lowercase)
/// applies to `crawler` when equal, or when `group` is a prefix ending at a
/// `-`/`_` boundary. `crawler` is a pure-ASCII product-token prefix, so
/// slicing at `group.len()` is safe.
fn token_matches_ci(group: &str, crawler: &str) -> bool {
    if group.len() > crawler.len() {
        return false;
    }
    let (head, rest) = crawler.split_at(group.len());
    head.eq_ignore_ascii_case(group)
        && (rest.is_empty() || rest.starts_with('-') || rest.starts_with('_'))
}

/// A site-keyed cache of compiled policies.
///
/// Documents are registered with [`insert`](PolicyEstate::insert) (or
/// [`insert_text`](PolicyEstate::insert_text)) and compiled **lazily** on
/// first use. [`invalidate`](PolicyEstate::invalidate) drops the compiled
/// artifact so the next check recompiles — the monitor's change digests
/// drive this (see `botscope-monitor`'s estate adapter).
#[derive(Debug, Clone, Default)]
pub struct PolicyEstate {
    sites: HashMap<String, EstateSlot>,
    compiles: u64,
    cache_hits: u64,
}

#[derive(Debug, Clone)]
struct EstateSlot {
    doc: Arc<RobotsTxt>,
    compiled: Option<Arc<CompiledPolicy>>,
}

impl PolicyEstate {
    /// An empty estate.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register (or replace) a site's document. Any compiled artifact for
    /// the site is dropped.
    pub fn insert(&mut self, site: impl Into<String>, doc: RobotsTxt) {
        self.sites.insert(site.into(), EstateSlot { doc: Arc::new(doc), compiled: None });
    }

    /// Parse and register a site's document text.
    pub fn insert_text(&mut self, site: impl Into<String>, text: &str) {
        self.insert(site, parse(text));
    }

    /// Drop the compiled artifact for `site`, forcing recompilation on the
    /// next check. Returns whether the site was known.
    pub fn invalidate(&mut self, site: &str) -> bool {
        match self.sites.get_mut(site) {
            Some(slot) => {
                slot.compiled = None;
                true
            }
            None => false,
        }
    }

    /// Remove a site entirely. Returns whether it was known.
    pub fn remove(&mut self, site: &str) -> bool {
        self.sites.remove(site).is_some()
    }

    /// The parsed document registered for `site`, if any.
    pub fn doc(&self, site: &str) -> Option<&RobotsTxt> {
        self.sites.get(site).map(|s| s.doc.as_ref())
    }

    /// The compiled policy for `site`, compiling on first use.
    pub fn compiled(&mut self, site: &str) -> Option<Arc<CompiledPolicy>> {
        let slot = self.sites.get_mut(site)?;
        match &slot.compiled {
            Some(_) => self.cache_hits += 1,
            None => {
                slot.compiled = Some(Arc::new(CompiledPolicy::compile(&slot.doc)));
                self.compiles += 1;
            }
        }
        slot.compiled.clone()
    }

    /// Admission check against a site's compiled policy. `None` when the
    /// site is unknown (callers decide the fail-open/fail-closed policy).
    pub fn check(&mut self, site: &str, agent_token: &str, path: &str) -> Option<bool> {
        let compiled = self.compiled(site)?;
        Some(compiled.check(agent_token, path).allow)
    }

    /// Number of registered sites.
    pub fn len(&self) -> usize {
        self.sites.len()
    }

    /// Whether the estate has no sites.
    pub fn is_empty(&self) -> bool {
        self.sites.is_empty()
    }

    /// Whether `site` currently holds a compiled artifact (false when the
    /// site is unknown or registered but never checked).
    pub fn is_compiled(&self, site: &str) -> bool {
        self.sites.get(site).is_some_and(|s| s.compiled.is_some())
    }

    /// Number of sites currently holding a compiled artifact.
    pub fn compiled_count(&self) -> usize {
        self.sites.values().filter(|s| s.compiled.is_some()).count()
    }

    /// Total compilations performed over the estate's lifetime (cache
    /// misses + recompiles after invalidation).
    pub fn compiles(&self) -> u64 {
        self.compiles
    }

    /// Lookups answered from an already-compiled artifact — the warm
    /// path [`compiles`](PolicyEstate::compiles) never pays for.
    pub fn cache_hits(&self) -> u64 {
        self.cache_hits
    }

    /// Registered sites whose artifact is *not* currently compiled —
    /// the recompile debt the next admission sweep would pay.
    pub fn compile_debt(&self) -> usize {
        self.sites.values().filter(|s| s.compiled.is_none()).count()
    }

    /// Registered site names, in arbitrary order.
    pub fn sites(&self) -> impl Iterator<Item = &str> {
        self.sites.keys().map(String::as_str)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn both(robots: &str, agent: &str, path: &str) -> (bool, bool) {
        let doc = parse(robots);
        let compiled = CompiledPolicy::compile(&doc);
        (doc.is_allowed(agent, path).allow, compiled.check(agent, path).allow)
    }

    fn assert_same_decision(robots: &str, agent: &str, path: &str) {
        let doc = parse(robots);
        let compiled = CompiledPolicy::compile(&doc);
        let interp = doc.is_allowed(agent, path);
        let comp = compiled.check(agent, path);
        assert_eq!(interp.allow, comp.allow, "allow: {robots:?} {agent} {path}");
        assert_eq!(
            interp.matched_rule.map(|r| (r.verb, r.pattern.as_str().to_string())),
            comp.matched_rule.map(|r| (r.verb, r.pattern.as_str().to_string())),
            "rule: {robots:?} {agent} {path}"
        );
        assert_eq!(interp.matched_agent, comp.matched_agent, "agent: {robots:?} {agent} {path}");
    }

    #[test]
    fn matches_interpreted_on_basics() {
        let robots = "User-agent: Googlebot\nAllow: /\nCrawl-delay: 15\n\nUser-agent: *\nAllow: /allowed-data/\nDisallow: /restricted-data/\nCrawl-delay: 30\n";
        for agent in ["Googlebot", "Bytespider", "GPTBot", "googlebot-news"] {
            for path in ["/restricted-data/page", "/allowed-data/page", "/other", "/robots.txt"] {
                assert_same_decision(robots, agent, path);
            }
        }
        let compiled = CompiledPolicy::from_text(robots);
        assert_eq!(compiled.crawl_delay("Googlebot"), Some(15.0));
        assert_eq!(compiled.crawl_delay("GPTBot"), Some(30.0));
    }

    #[test]
    fn precedence_ties_resolved_at_build_time() {
        // Same pattern both verbs: Allow wins.
        assert_eq!(both("User-agent: *\nDisallow: /x\nAllow: /x\n", "b", "/x"), (true, true));
        assert_eq!(both("User-agent: *\nAllow: /x\nDisallow: /x\n", "b", "/x"), (true, true));
        // Longer rule wins regardless of verb or order.
        assert_eq!(
            both("User-agent: *\nDisallow: /page\nAllow: /page-data/\n", "b", "/page-data/a"),
            (true, true)
        );
        // Same-verb tie reports the earliest rule.
        assert_same_decision("User-agent: *\nDisallow: /x\nDisallow: /x\n", "b", "/xy");
    }

    #[test]
    fn wildcards_and_anchors() {
        for (robots, path) in [
            ("User-agent: *\nDisallow: /*.php$\n", "/folder/filename.php"),
            ("User-agent: *\nDisallow: /*.php$\n", "/filename.php?x"),
            ("User-agent: *\nDisallow: /fish*\n", "/fishheads"),
            ("User-agent: *\nDisallow: /a*b*c\n", "/axxbxxc-and-more"),
            ("User-agent: *\nDisallow: /a*b*c\n", "/a-c-b"),
            ("User-agent: *\nDisallow: /x*$\n", "/xyz"),
            ("User-agent: *\nDisallow: /fish$\n", "/fish"),
            ("User-agent: *\nDisallow: /fish$\n", "/fish.html"),
            ("User-agent: *\nDisallow: *\n", "/anything"),
            ("User-agent: *\nAllow: /p\nDisallow: /*.html\n", "/page.html"),
        ] {
            assert_same_decision(robots, "bot", path);
        }
    }

    #[test]
    fn percent_normalized_alphabet() {
        for (robots, path) in [
            ("User-agent: *\nDisallow: /caf%c3%a9\n", "/café"),
            ("User-agent: *\nDisallow: /café\n", "/caf%C3%A9"),
            ("User-agent: *\nDisallow: /a%2Fb\n", "/a/b"),
            ("User-agent: *\nDisallow: /a%2Fb\n", "/a%2fb"),
            ("User-agent: *\nDisallow: /a%7Eb\n", "/a~b"),
        ] {
            assert_same_decision(robots, "bot", path);
        }
    }

    #[test]
    fn group_selection_matches() {
        let robots = "User-agent: googlebot-news\nDisallow: /news-secret/\n\nUser-agent: googlebot\nDisallow: /general/\n\nUser-agent: *\nDisallow: /\n";
        for agent in ["Googlebot-News", "Googlebot", "Googlebot-Image", "GPTBot", "*"] {
            for path in ["/news-secret/x", "/general/x", "/anything"] {
                assert_same_decision(robots, agent, path);
            }
        }
        // No wildcard group: unknown bots unrestricted, decision has no agent.
        assert_same_decision("User-agent: badbot\nDisallow: /\n", "goodbot", "/x");
    }

    #[test]
    fn missing_slash_and_empty_rules() {
        assert_same_decision("User-agent: *\nDisallow: /secret\n", "bot", "secret/files");
        assert_same_decision("User-agent: *\nDisallow:\n", "bot", "/x");
        assert_same_decision("", "bot", "/x");
    }

    #[test]
    fn check_many_bitmask() {
        let compiled = CompiledPolicy::from_text("User-agent: *\nDisallow: /private/\n");
        let paths: Vec<String> = (0..70)
            .map(|i| if i % 3 == 0 { format!("/private/{i}") } else { format!("/public/{i}") })
            .collect();
        let refs: Vec<&str> = paths.iter().map(String::as_str).collect();
        let mask = compiled.check_many("bot", &refs);
        assert_eq!(mask.len(), 2);
        for (i, p) in refs.iter().enumerate() {
            let expect = compiled.check("bot", p).allow;
            assert_eq!(mask[i / 64] >> (i % 64) & 1 == 1, expect, "path {p}");
        }
        // Unknown-group batch: everything allowed.
        let none = CompiledPolicy::from_text("User-agent: badbot\nDisallow: /\n");
        assert_eq!(none.check_many("goodbot", &["/a", "/b"]), vec![0b11]);
    }

    #[test]
    fn stats_counts() {
        let compiled =
            CompiledPolicy::from_text("User-agent: *\nDisallow: /a\nDisallow: /a*b\nAllow:\n");
        let stats = compiled.stats();
        assert_eq!(stats.tokens, 1);
        assert_eq!(stats.rules, 3);
        assert_eq!(stats.wild_rules, 1);
        assert!(stats.trie_nodes >= 3);
    }

    #[test]
    fn estate_compiles_lazily_and_invalidates() {
        let mut estate = PolicyEstate::new();
        estate.insert_text("a.example.edu", "User-agent: *\nDisallow: /x\n");
        estate.insert_text("b.example.edu", "User-agent: *\nAllow: /\n");
        assert_eq!(estate.len(), 2);
        assert_eq!(estate.compiled_count(), 0);
        assert_eq!(estate.compiles(), 0);

        assert_eq!(estate.check("a.example.edu", "bot", "/x/y"), Some(false));
        assert_eq!(estate.check("a.example.edu", "bot", "/ok"), Some(true));
        assert_eq!(estate.compiles(), 1, "second check reuses the artifact");
        assert_eq!(estate.compiled_count(), 1, "b is registered but not compiled");

        // Invalidation forces exactly one recompile.
        assert!(estate.invalidate("a.example.edu"));
        assert_eq!(estate.compiled_count(), 0);
        assert_eq!(estate.check("a.example.edu", "bot", "/x/y"), Some(false));
        assert_eq!(estate.compiles(), 2);

        // Replacing the document changes answers.
        estate.insert_text("a.example.edu", "User-agent: *\nAllow: /x\nDisallow: /\n");
        assert_eq!(estate.check("a.example.edu", "bot", "/x/y"), Some(true));
        assert_eq!(estate.check("a.example.edu", "bot", "/other"), Some(false));
        assert_eq!(estate.compiles(), 3);

        assert_eq!(estate.check("unknown.example.edu", "bot", "/x"), None);
        assert!(!estate.invalidate("unknown.example.edu"));
        assert!(estate.remove("b.example.edu"));
        assert_eq!(estate.len(), 1);
    }

    #[test]
    fn anchored_root_and_star_edge_cases() {
        for (robots, path) in [
            ("User-agent: *\nDisallow: /$\n", "/"),
            ("User-agent: *\nDisallow: /$\n", "/a"),
            ("User-agent: *\nDisallow: *\n", "/"),
            ("User-agent: *\nDisallow: /**\n", "/deep/path"),
            ("User-agent: *\nDisallow: /a**$\n", "/abc"),
            ("User-agent: *\nDisallow: *x\n", "/prefix-x-suffix"),
        ] {
            assert_same_decision(robots, "bot", path);
        }
    }
}

//! Decision-complete semantic analysis over compiled policies.
//!
//! Where [`crate::audit`] lints the *text* of a policy, this module proves
//! facts about its *decisions* by walking the compiled automata:
//!
//! 1. **Rule liveness** ([`rule_liveness`]): a rule is dead iff no request
//!    path can make it the winning terminal. Every verdict ships a witness —
//!    a concrete path that selects the rule, or the rule that shadows it.
//! 2. **Semantic diff** ([`semantic_diff`], [`classify_change`]): a product
//!    walk of two compiled policies either proves decision-equivalence for
//!    *all* paths and agents, or returns a witness path where they differ.
//! 3. **Parser-divergence hazards** ([`divergence_hazards`]): paths where
//!    RFC 9309 longest-match and a deviant matcher (first-match,
//!    wildcard-unaware, `$`-as-literal) reach different decisions.
//!
//! The engine is a breadth-first product walk over per-rule glob NFAs with
//! two extra automaton components folded into each state key: a
//! *percent-context* automaton that restricts the walk to strings that are
//! fixed points of [`crate::pattern::normalize_percent`] (so every witness
//! is a real, already-normalized request path), and a `/robots.txt`
//! sentinel that identifies the one path carved out by the implicit
//! robots.txt allowance so it is never used as evidence.
//!
//! Groups without interior wildcards skip the walk entirely: the trie's
//! nodes partition path space into finitely many decision classes (the
//! exact path spelled by each node, plus everything that escapes the node
//! with a non-edge byte), and one representative per class decides the
//! whole class.

use std::collections::{BTreeSet, HashMap, HashSet, VecDeque};

use crate::audit::{self, AuditFinding};
use crate::compiled::{rank, CompiledPolicy, GroupView};
use crate::model::{RobotsTxt, Rule, RuleVerb};

/// How serious a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Stylistic or informational; no behavioral impact.
    Info,
    /// Likely author error or interoperability hazard.
    Warning,
    /// The policy provably cannot mean what it says.
    Error,
}

impl Severity {
    /// Lowercase name, stable for JSON output.
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

impl std::fmt::Display for Severity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

impl std::str::FromStr for Severity {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "info" => Ok(Severity::Info),
            "warning" | "warn" => Ok(Severity::Warning),
            "error" => Ok(Severity::Error),
            other => Err(format!("unknown severity `{other}` (info|warning|error)")),
        }
    }
}

/// Whether a policy revision changes any decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ChangeClass {
    /// Provably decision-equivalent: no agent/path verdict or crawl delay
    /// changed (comment edits, reordering, cosmetic rewrites).
    Cosmetic,
    /// At least one decision or crawl delay changed, or equivalence could
    /// not be proven within the walk budget (treated conservatively).
    Behavioral,
}

impl ChangeClass {
    /// Lowercase name, stable for report output.
    pub fn as_str(self) -> &'static str {
        match self {
            ChangeClass::Cosmetic => "cosmetic",
            ChangeClass::Behavioral => "behavioral",
        }
    }
}

impl std::fmt::Display for ChangeClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// The liveness verdict for one rule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Liveness {
    /// The rule wins on at least one real path.
    Alive {
        /// A normalized request path on which this rule decides the outcome.
        witness: String,
    },
    /// The rule matches real paths but never outranks the competition.
    Shadowed {
        /// A normalized path this rule matches but loses on.
        witness: String,
        /// Merged-rule index (within the same group) of the winner there.
        by: usize,
    },
    /// The rule only ever applies to `/robots.txt`, which the implicit
    /// robots.txt allowance carves out before any rule is consulted.
    RobotsTxtOnly,
    /// The rule cannot match any request path at all.
    Unmatchable,
}

/// Liveness verdict for one rule of one merged agent group.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RuleLiveness {
    /// The group's agent token (`"*"` for the wildcard group).
    pub agent: String,
    /// Index into the group's merged rule list.
    pub rule_index: usize,
    /// The rule's verb.
    pub verb: RuleVerb,
    /// The rule's normalized pattern text.
    pub pattern: String,
    /// The verdict, witness-backed where applicable.
    pub verdict: Liveness,
}

/// A concrete agent/path pair on which two policies disagree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Divergence {
    /// The probe agent token that selects the differing groups.
    pub agent: String,
    /// A normalized request path with differing verdicts.
    pub path: String,
    /// The left policy's verdict for `(agent, path)`.
    pub left_allow: bool,
    /// The right policy's verdict for `(agent, path)`.
    pub right_allow: bool,
}

/// Outcome of a semantic comparison of two policies.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DiffVerdict {
    /// Every agent/path decision is identical.
    Equivalent,
    /// A witnessed decision difference.
    Diverges(Divergence),
    /// No difference found, but a walk hit its state budget before the
    /// proof closed; equivalence is unproven.
    Inconclusive,
}

/// A crawl-delay difference between two policies for one probe agent.
#[derive(Debug, Clone, PartialEq)]
pub struct DelayChange {
    /// The probe agent token.
    pub agent: String,
    /// The left policy's effective crawl delay for the agent.
    pub left: Option<f64>,
    /// The right policy's effective crawl delay for the agent.
    pub right: Option<f64>,
}

/// Result of [`semantic_diff`].
#[derive(Debug, Clone, PartialEq)]
pub struct SemanticDiff {
    /// Decision-equivalence verdict over all agents and paths.
    pub verdict: DiffVerdict,
    /// Crawl-delay differences (independent of path decisions).
    pub delay_changes: Vec<DelayChange>,
}

/// A non-conformant matcher model observed in the wild (paper §5.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DeviantModel {
    /// Takes the first rule in document order that matches, instead of the
    /// RFC 9309 most-octets rule.
    FirstMatch,
    /// Treats `*` as a literal byte instead of a wildcard.
    WildcardUnaware,
    /// Treats a trailing `$` as a literal byte instead of an end anchor.
    DollarLiteral,
}

impl DeviantModel {
    /// Stable kebab-case name for report output.
    pub fn as_str(self) -> &'static str {
        match self {
            DeviantModel::FirstMatch => "first-match",
            DeviantModel::WildcardUnaware => "wildcard-unaware",
            DeviantModel::DollarLiteral => "dollar-literal",
        }
    }
}

impl std::fmt::Display for DeviantModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A witnessed decision divergence between RFC 9309 and a deviant matcher.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hazard {
    /// The merged group's agent token.
    pub agent: String,
    /// The deviant matcher model.
    pub model: DeviantModel,
    /// A normalized path where the two matchers disagree.
    pub path: String,
    /// RFC 9309's verdict on the witness path.
    pub rfc_allow: bool,
    /// The deviant matcher's verdict on the witness path.
    pub deviant_allow: bool,
}

/// Machine-readable finding category.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FindingCode {
    /// Same pattern with both verbs in one group (syntactic).
    ContradictoryRules,
    /// Identical rule repeated (syntactic).
    DuplicateRule,
    /// Empty-pattern rule (syntactic).
    EmptyPattern,
    /// Textual prefix shadowing (syntactic).
    PrefixShadowedRule,
    /// Agent token split across groups (syntactic).
    SplitGroup,
    /// Crawl delay large enough that major crawlers ignore it (syntactic).
    ExcessiveCrawlDelay,
    /// No wildcard group (syntactic).
    NoWildcardGroup,
    /// Rule proven to never win on any real path (semantic).
    DeadRule,
    /// Rule proven unable to match any request path (semantic).
    UnreachableRule,
    /// Rule only ever applies to the carved-out `/robots.txt` (semantic).
    RobotsTxtCarveOut,
    /// RFC 9309 and a deviant matcher disagree on a witnessed path
    /// (semantic).
    ParserDivergence,
    /// A walk hit its state budget; semantic verdicts were suppressed.
    AnalysisTruncated,
}

impl FindingCode {
    /// Stable PascalCase name for report output.
    pub fn as_str(self) -> &'static str {
        match self {
            FindingCode::ContradictoryRules => "ContradictoryRules",
            FindingCode::DuplicateRule => "DuplicateRule",
            FindingCode::EmptyPattern => "EmptyPattern",
            FindingCode::PrefixShadowedRule => "PrefixShadowedRule",
            FindingCode::SplitGroup => "SplitGroup",
            FindingCode::ExcessiveCrawlDelay => "ExcessiveCrawlDelay",
            FindingCode::NoWildcardGroup => "NoWildcardGroup",
            FindingCode::DeadRule => "DeadRule",
            FindingCode::UnreachableRule => "UnreachableRule",
            FindingCode::RobotsTxtCarveOut => "RobotsTxtCarveOut",
            FindingCode::ParserDivergence => "ParserDivergence",
            FindingCode::AnalysisTruncated => "AnalysisTruncated",
        }
    }
}

impl std::fmt::Display for FindingCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One analyzer finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Severity class.
    pub severity: Severity,
    /// Machine-readable category.
    pub code: FindingCode,
    /// The agent token the finding concerns, when group-scoped.
    pub agent: Option<String>,
    /// Human-readable description.
    pub message: String,
    /// A concrete witness path, when the verdict is path-backed.
    pub witness: Option<String>,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} {}", self.severity, self.code)?;
        if let Some(agent) = &self.agent {
            write!(f, " [agent={agent}]")?;
        }
        write!(f, ": {}", self.message)?;
        if let Some(w) = &self.witness {
            write!(f, " (witness: {w})")?;
        }
        Ok(())
    }
}

/// Result of [`analyze`]: syntactic and semantic findings, severity-sorted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Analysis {
    /// Findings, most severe first (stable within a severity).
    pub findings: Vec<Finding>,
    /// Whether every semantic pass ran to completion. When `false`, dead-
    /// rule findings are suppressed and an [`FindingCode::AnalysisTruncated`]
    /// info finding is present.
    pub complete: bool,
}

impl Analysis {
    /// The most severe finding present, if any.
    pub fn worst(&self) -> Option<Severity> {
        self.findings.iter().map(|f| f.severity).max()
    }

    /// Number of findings at or above `threshold`.
    pub fn at_or_above(&self, threshold: Severity) -> usize {
        self.findings.iter().filter(|f| f.severity >= threshold).count()
    }
}

// ---------------------------------------------------------------------------
// Engine: per-rule glob NFAs product-walked under a percent-context and a
// `/robots.txt` sentinel.
// ---------------------------------------------------------------------------

/// State budget for one product walk. Real policies compile to a few
/// hundred states; the cap only exists so adversarial inputs terminate.
const STATE_CAP: usize = 60_000;

const SENTINEL_PATH: &[u8] = b"/robots.txt";
const SENT_DEAD: u8 = 255;
const PCTX_CLEAN: u8 = 0;
const PCTX_AFTER_PCT: u8 = 1;

#[derive(Clone, Copy, PartialEq, Eq)]
enum Atom {
    Lit(u8),
    Star,
}

/// One rule's glob NFA, bit-packed into the shared product-state key.
///
/// Position bits `bit ..= bit + atoms.len()` track how much of the pattern
/// has been consumed; unanchored rules add a sticky "has matched a prefix"
/// bit at `bit + atoms.len() + 1`.
struct RuleNfa {
    atoms: Vec<Atom>,
    anchored: bool,
    rank: u64,
    bit: usize,
}

impl RuleNfa {
    fn rfc(pattern: &crate::pattern::PathPattern, rank: u64, bit: usize) -> Self {
        let mut atoms = Vec::new();
        for (i, seg) in pattern.segments().iter().enumerate() {
            if i > 0 {
                atoms.push(Atom::Star);
            }
            atoms.extend(seg.bytes().map(Atom::Lit));
        }
        Self { atoms, anchored: pattern.is_anchored(), rank, bit }
    }

    /// Wildcard-unaware model: the whole `$`-stripped body as literal
    /// bytes, `*` included; the end anchor keeps its meaning.
    fn literal(pattern: &crate::pattern::PathPattern, rank: u64, bit: usize) -> Self {
        let raw = pattern.as_str();
        let body = if pattern.is_anchored() { &raw[..raw.len() - 1] } else { raw };
        Self {
            atoms: body.bytes().map(Atom::Lit).collect(),
            anchored: pattern.is_anchored(),
            rank,
            bit,
        }
    }

    /// Dollar-literal model: `*` keeps its meaning, but the trailing `$`
    /// becomes a literal byte and the rule turns into a prefix pattern.
    fn dollar(pattern: &crate::pattern::PathPattern, rank: u64, bit: usize) -> Self {
        let mut nfa = Self::rfc(pattern, rank, bit);
        nfa.atoms.push(Atom::Lit(b'$'));
        nfa.anchored = false;
        nfa
    }

    fn width(&self) -> usize {
        self.atoms.len() + 1 + usize::from(!self.anchored)
    }

    fn matched(&self, bits: &[u64]) -> bool {
        if self.anchored {
            get_bit(bits, self.bit + self.atoms.len())
        } else {
            get_bit(bits, self.bit + self.atoms.len() + 1)
        }
    }
}

#[derive(Clone, PartialEq, Eq, Hash)]
struct Key {
    bits: Box<[u64]>,
    pctx: u8,
    sentinel: u8,
}

fn get_bit(bits: &[u64], i: usize) -> bool {
    bits[i / 64] >> (i % 64) & 1 == 1
}

fn set_bit(bits: &mut [u64], i: usize) {
    bits[i / 64] |= 1 << (i % 64);
}

fn hex_val(b: u8) -> Option<u8> {
    match b {
        b'0'..=b'9' => Some(b - b'0'),
        b'a'..=b'f' => Some(b - b'a' + 10),
        b'A'..=b'F' => Some(b - b'A' + 10),
        _ => None,
    }
}

/// Whether the decodable triplet `%h1h2` survives
/// [`crate::pattern::normalize_percent`] unchanged.
fn triplet_fixed(h1: u8, h2: u8) -> bool {
    let (Some(a), Some(b)) = (hex_val(h1), hex_val(h2)) else {
        return true; // not decodable: kept verbatim
    };
    let decoded = a * 16 + b;
    if decoded == b'/' {
        // Only the canonical uppercase spelling survives.
        return h1 == b'2' && h2 == b'F';
    }
    if (0x21..=0x7E).contains(&decoded) {
        // Printable: normalization decodes it, changing the string.
        return false;
    }
    // Non-printable: re-encoded as an uppercase triplet.
    !h1.is_ascii_lowercase() && !h2.is_ascii_lowercase()
}

/// Percent-context step. Walk strings must be fixed points of
/// `normalize_percent` so witnesses are real normalized paths; this
/// automaton forbids the one transition that would complete a
/// non-canonical decodable triplet. States: `PCTX_CLEAN`, `PCTX_AFTER_PCT`
/// (just consumed `%`), or the first hex byte of an open triplet (hex
/// bytes are ≥ `0x30`, so they never collide with the named states).
fn pctx_step(state: u8, b: u8) -> Option<u8> {
    match state {
        PCTX_CLEAN => Some(if b == b'%' { PCTX_AFTER_PCT } else { PCTX_CLEAN }),
        PCTX_AFTER_PCT => {
            if b == b'%' {
                // `%%`: the first triplet is malformed (kept verbatim) and
                // the second `%` opens a new one.
                Some(PCTX_AFTER_PCT)
            } else if hex_val(b).is_some() {
                Some(b)
            } else {
                Some(PCTX_CLEAN)
            }
        }
        h1 => {
            if hex_val(b).is_some() {
                if triplet_fixed(h1, b) {
                    Some(PCTX_CLEAN)
                } else {
                    None
                }
            } else if b == b'%' {
                Some(PCTX_AFTER_PCT)
            } else {
                Some(PCTX_CLEAN)
            }
        }
    }
}

/// `/robots.txt` sentinel step: state `n < 11` means the path so far is the
/// first `n` bytes of `/robots.txt`; state `11` means it *is* `/robots.txt`
/// exactly; [`SENT_DEAD`] means it can no longer be.
fn sentinel_step(state: u8, b: u8) -> u8 {
    let s = state as usize;
    if s >= SENTINEL_PATH.len() {
        return SENT_DEAD;
    }
    if SENTINEL_PATH[s] == b {
        state + 1
    } else {
        SENT_DEAD
    }
}

fn sentinel_carved(key: &Key) -> bool {
    key.sentinel as usize == SENTINEL_PATH.len()
}

fn close(nfa: &RuleNfa, bits: &mut [u64]) {
    let n = nfa.atoms.len();
    for p in 0..n {
        if get_bit(bits, nfa.bit + p) && nfa.atoms[p] == Atom::Star {
            set_bit(bits, nfa.bit + p + 1);
        }
    }
    if !nfa.anchored && get_bit(bits, nfa.bit + n) {
        set_bit(bits, nfa.bit + n + 1);
    }
}

fn step(nfas: &[RuleNfa], words: usize, key: &Key, b: u8) -> Option<Key> {
    let pctx = pctx_step(key.pctx, b)?;
    let sentinel = sentinel_step(key.sentinel, b);
    let mut bits = vec![0u64; words].into_boxed_slice();
    for nfa in nfas {
        let n = nfa.atoms.len();
        for p in 0..n {
            if !get_bit(&key.bits, nfa.bit + p) {
                continue;
            }
            match nfa.atoms[p] {
                Atom::Lit(c) => {
                    if c == b {
                        set_bit(&mut bits, nfa.bit + p + 1);
                    }
                }
                Atom::Star => set_bit(&mut bits, nfa.bit + p),
            }
        }
        if !nfa.anchored && get_bit(&key.bits, nfa.bit + n + 1) {
            set_bit(&mut bits, nfa.bit + n + 1);
        }
        close(nfa, &mut bits);
    }
    Some(Key { bits, pctx, sentinel })
}

/// The reduced walk alphabet: every literal byte any rule mentions, `/`,
/// and one "escape" byte no rule mentions. Any byte outside the literal set
/// drives every NFA identically, and the escape byte is chosen non-hex and
/// non-`%` so appending it never completes a decodable triplet — one
/// representative therefore covers the whole residue class while keeping
/// walk strings fixed points of normalization.
fn alphabet_for(nfas: &[RuleNfa]) -> Vec<u8> {
    let mut set: BTreeSet<u8> = nfas
        .iter()
        .flat_map(|n| n.atoms.iter())
        .filter_map(|a| match a {
            Atom::Lit(b) => Some(*b),
            Atom::Star => None,
        })
        .collect();
    set.insert(b'/');
    let other = (0x21u8..=0x7E)
        .find(|b| !set.contains(b) && hex_val(*b).is_none() && *b != b'%')
        .or_else(|| (0x01u8..=0x20).find(|b| !set.contains(b)));
    if let Some(b) = other {
        set.insert(b);
    }
    set.into_iter().collect()
}

struct Walk {
    parent: Vec<(u32, u8)>,
    complete: bool,
}

impl Walk {
    /// Reconstruct the path string that reaches state `id`.
    fn path(&self, mut id: usize) -> String {
        let mut bytes = Vec::new();
        while id != 0 {
            let (p, b) = self.parent[id];
            bytes.push(b);
            id = p as usize;
        }
        bytes.reverse();
        String::from_utf8(bytes).expect("walk alphabet is ASCII")
    }
}

/// Breadth-first product walk. `visit` sees every reachable non-root state
/// once, shortest path first, and returns `true` to stop early. The root
/// (empty path) only expands on `/`: request paths always start there.
fn walk_product(nfas: &[RuleNfa], mut visit: impl FnMut(usize, &Key) -> bool) -> Walk {
    let total_bits: usize = nfas.iter().map(RuleNfa::width).sum();
    let words = (total_bits / 64 + 1).max(1);
    let alphabet = alphabet_for(nfas);
    let mut root_bits = vec![0u64; words].into_boxed_slice();
    for nfa in nfas {
        set_bit(&mut root_bits, nfa.bit);
        close(nfa, &mut root_bits);
    }
    let root = Key { bits: root_bits, pctx: PCTX_CLEAN, sentinel: 0 };
    let mut keys = vec![root.clone()];
    let mut index: HashMap<Key, u32> = HashMap::new();
    index.insert(root, 0);
    let mut parent = vec![(0u32, 0u8)];
    let mut queue: VecDeque<usize> = VecDeque::new();
    queue.push_back(0);
    let mut complete = true;
    'bfs: while let Some(id) = queue.pop_front() {
        let cur = keys[id].clone();
        let bytes: &[u8] = if id == 0 { b"/" } else { &alphabet };
        for &b in bytes {
            let Some(next) = step(nfas, words, &cur, b) else { continue };
            if index.contains_key(&next) {
                continue;
            }
            if keys.len() >= STATE_CAP {
                complete = false;
                break 'bfs;
            }
            let nid = keys.len();
            index.insert(next.clone(), nid as u32);
            keys.push(next);
            parent.push((id as u32, b));
            if visit(nid, &keys[nid]) {
                return Walk { parent, complete };
            }
            queue.push_back(nid);
        }
    }
    Walk { parent, complete }
}

/// Fold the winning rank over a slice of NFAs at a walk state and return
/// the RFC 9309 verdict (no match ⇒ allow).
fn allow_of(nfas: &[RuleNfa], key: &Key) -> bool {
    let mut best = rank::NO_MATCH;
    for nfa in nfas {
        if nfa.matched(&key.bits) {
            best = best.max(nfa.rank);
        }
    }
    best == rank::NO_MATCH || rank::allow(best)
}

/// Build RFC NFAs for a rule list, skipping empty patterns. Returns the
/// NFAs and, parallel to them, each NFA's index into `rules`.
fn build_rfc(rules: &[Rule], bit: &mut usize) -> (Vec<RuleNfa>, Vec<usize>) {
    let mut nfas = Vec::new();
    let mut owners = Vec::new();
    for (idx, rule) in rules.iter().enumerate() {
        if rule.pattern.is_empty() {
            continue;
        }
        let rank = rank::pack(rule.pattern.specificity(), rule.verb, idx as u32);
        let nfa = RuleNfa::rfc(&rule.pattern, rank, *bit);
        *bit += nfa.width();
        owners.push(idx);
        nfas.push(nfa);
    }
    (nfas, owners)
}

// ---------------------------------------------------------------------------
// Pass 1: rule liveness.
// ---------------------------------------------------------------------------

/// Prove, for every non-empty rule of every merged group, whether some
/// real request path makes it the winning terminal. Returns the verdicts
/// and whether every proof closed within the walk budget (when `false`,
/// dead verdicts are evidence-backed but not exhaustive).
pub fn rule_liveness(policy: &CompiledPolicy) -> (Vec<RuleLiveness>, bool) {
    rule_liveness_impl(policy, false)
}

/// Test-only variant that can force the NFA walk even for groups the trie
/// fast path could decide, so the two engines can be differentially tested.
#[doc(hidden)]
pub fn rule_liveness_forced(
    policy: &CompiledPolicy,
    force_walk: bool,
) -> (Vec<RuleLiveness>, bool) {
    rule_liveness_impl(policy, force_walk)
}

fn rule_liveness_impl(policy: &CompiledPolicy, force_walk: bool) -> (Vec<RuleLiveness>, bool) {
    let mut out = Vec::new();
    let mut complete = true;
    for (token, view) in policy.groups() {
        let (verdicts, group_complete) = if force_walk || view.has_wild() {
            walk_liveness(&view)
        } else {
            (trie_liveness(&view), true)
        };
        complete &= group_complete;
        let rules = view.rules();
        for (idx, verdict) in verdicts {
            out.push(RuleLiveness {
                agent: token.to_string(),
                rule_index: idx,
                verb: rules[idx].verb,
                pattern: rules[idx].pattern.as_str().to_string(),
                verdict,
            });
        }
    }
    (out, complete)
}

/// NFA-walk liveness for one group (required when interior wildcards put
/// rules on the side list).
fn walk_liveness(view: &GroupView<'_>) -> (Vec<(usize, Liveness)>, bool) {
    let mut bit = 0;
    let (nfas, owners) = build_rfc(view.rules(), &mut bit);
    if nfas.is_empty() {
        return (Vec::new(), true);
    }
    #[derive(Clone, Default)]
    struct St {
        alive: Option<usize>,
        shadow: Option<(usize, usize)>,
        robots: bool,
    }
    let mut st = vec![St::default(); nfas.len()];
    let mut alive_count = 0usize;
    let walk = walk_product(&nfas, |id, key| {
        let mut best = rank::NO_MATCH;
        for nfa in &nfas {
            if nfa.matched(&key.bits) {
                best = best.max(nfa.rank);
            }
        }
        if best == rank::NO_MATCH {
            return false;
        }
        let carved = sentinel_carved(key);
        for (i, nfa) in nfas.iter().enumerate() {
            if !nfa.matched(&key.bits) {
                continue;
            }
            if carved {
                st[i].robots = true;
            } else if nfa.rank == best {
                if st[i].alive.is_none() {
                    st[i].alive = Some(id);
                    alive_count += 1;
                }
            } else if st[i].shadow.is_none() {
                st[i].shadow = Some((id, rank::rule_index(best)));
            }
        }
        alive_count == nfas.len()
    });
    let verdicts = owners
        .iter()
        .zip(&st)
        .map(|(&idx, s)| {
            let verdict = if let Some(id) = s.alive {
                Liveness::Alive { witness: walk.path(id) }
            } else if let Some((id, by)) = s.shadow {
                Liveness::Shadowed { witness: walk.path(id), by }
            } else if s.robots {
                Liveness::RobotsTxtOnly
            } else {
                Liveness::Unmatchable
            };
            (idx, verdict)
        })
        .collect();
    (verdicts, walk.complete)
}

/// Pick a byte that escapes `node`: not one of its outgoing edges, not a
/// hex digit or `%` (so appending it never completes a decodable triplet,
/// keeping witnesses normalization-fixed), preferably printable.
fn escape_byte(children: &[u8]) -> Option<u8> {
    let taken: HashSet<u8> = children.iter().copied().collect();
    (0x21u8..=0x7E)
        .find(|b| !taken.contains(b) && hex_val(*b).is_none() && *b != b'%')
        .or_else(|| (0x01u8..=0x20).find(|b| !taken.contains(b)))
}

/// Trie fast path for groups with no side-list rules: the trie's `/`
/// subtree partitions path space into one *exact* class per node (the path
/// spelled by the node) and one *escape* class per node (paths leaving the
/// node with a non-edge byte). Every path in a class folds the same ranks,
/// so one representative decides the class, and a rule is alive iff it wins
/// one of these finitely many classes.
fn trie_liveness(view: &GroupView<'_>) -> Vec<(usize, Liveness)> {
    let rules = view.rules();
    let mut alive: Vec<Option<String>> = vec![None; rules.len()];
    let mark = |path: String, alive: &mut Vec<Option<String>>| {
        let r = view.scan_rank(&path);
        if r != rank::NO_MATCH {
            let idx = rank::rule_index(r);
            if alive[idx].is_none() {
                alive[idx] = Some(path);
            }
        }
    };

    let slash = view.node(0).children().find(|&(b, _)| b == b'/').map(|(_, i)| i);
    match slash {
        // No `/` edge at the root: every request path is in the root's
        // escape class and `/` decides it.
        None => mark("/".to_string(), &mut alive),
        Some(slash_idx) => {
            let mut stack: Vec<(usize, String)> = vec![(slash_idx, "/".to_string())];
            while let Some((node_idx, s)) = stack.pop() {
                let node = view.node(node_idx);
                if s != "/robots.txt" {
                    mark(s.clone(), &mut alive);
                }
                let children: Vec<(u8, usize)> = node.children().collect();
                let child_bytes: Vec<u8> = children.iter().map(|&(b, _)| b).collect();
                if let Some(esc) = escape_byte(&child_bytes) {
                    let mut w = s.clone();
                    w.push(esc as char);
                    if w == "/robots.txt" {
                        // The escape byte happened to spell the carved-out
                        // path; a second escape byte stays in the class.
                        w.push(esc as char);
                    }
                    mark(w, &mut alive);
                }
                for (b, child) in children {
                    // Normalized patterns are pure ASCII, so trie edges are
                    // single-byte chars.
                    if b.is_ascii() {
                        let mut cs = s.clone();
                        cs.push(b as char);
                        stack.push((child, cs));
                    }
                }
            }
        }
    }

    let shadowed_at = |witness: String| {
        let by = rank::rule_index(view.scan_rank(&witness));
        Liveness::Shadowed { witness, by }
    };
    let mut out = Vec::new();
    for (idx, rule) in rules.iter().enumerate() {
        if rule.pattern.is_empty() {
            continue;
        }
        if let Some(w) = alive[idx].take() {
            out.push((idx, Liveness::Alive { witness: w }));
            continue;
        }
        let segments = rule.pattern.segments();
        let key = segments[0].as_str();
        let exact = segments.len() == 1 && rule.pattern.is_anchored();
        let verdict = if exact {
            if key == "/robots.txt" {
                Liveness::RobotsTxtOnly
            } else if key.starts_with('/') {
                shadowed_at(key.to_string())
            } else {
                Liveness::Unmatchable
            }
        } else if key.is_empty() {
            // Prefix of everything: it matches `/` but lost there.
            shadowed_at("/".to_string())
        } else if !key.starts_with('/') {
            Liveness::Unmatchable
        } else if key == "/robots.txt" {
            // Matches the carved-out path plus its extensions; witness an
            // extension via the key node's escape byte.
            match node_for(view, key).and_then(|n| {
                let bytes: Vec<u8> = view.node(n).children().map(|(b, _)| b).collect();
                escape_byte(&bytes)
            }) {
                Some(esc) => {
                    let mut w = key.to_string();
                    w.push(esc as char);
                    shadowed_at(w)
                }
                None => Liveness::RobotsTxtOnly,
            }
        } else {
            shadowed_at(key.to_string())
        };
        out.push((idx, verdict));
    }
    out
}

/// Descend the trie along `key`, returning the node index it spells.
fn node_for(view: &GroupView<'_>, key: &str) -> Option<usize> {
    let mut idx = 0usize;
    for b in key.bytes() {
        idx = view.node(idx).children().find(|&(cb, _)| cb == b)?.1;
    }
    Some(idx)
}

// ---------------------------------------------------------------------------
// Pass 2: semantic diff.
// ---------------------------------------------------------------------------

enum GroupDiff {
    Equivalent,
    Diverges(Divergence),
    Inconclusive,
}

fn rules_equal(a: &[Rule], b: &[Rule]) -> bool {
    a.len() == b.len()
        && a.iter()
            .zip(b)
            .all(|(x, y)| x.verb == y.verb && x.pattern.as_str() == y.pattern.as_str())
}

fn group_diff(left: &[Rule], right: &[Rule], agent: &str) -> GroupDiff {
    let mut bit = 0;
    let (mut nfas, _) = build_rfc(left, &mut bit);
    let left_count = nfas.len();
    let (right_nfas, _) = build_rfc(right, &mut bit);
    nfas.extend(right_nfas);
    let mut found: Option<(usize, bool, bool)> = None;
    let walk = walk_product(&nfas, |id, key| {
        if sentinel_carved(key) {
            return false;
        }
        let la = allow_of(&nfas[..left_count], key);
        let ra = allow_of(&nfas[left_count..], key);
        if la == ra {
            false
        } else {
            found = Some((id, la, ra));
            true
        }
    });
    match found {
        Some((id, left_allow, right_allow)) => GroupDiff::Diverges(Divergence {
            agent: agent.to_string(),
            path: walk.path(id),
            left_allow,
            right_allow,
        }),
        None if walk.complete => GroupDiff::Equivalent,
        None => GroupDiff::Inconclusive,
    }
}

/// Prove two compiled policies decision-equivalent for every agent and
/// path, or return a witnessed divergence. Probe agents are every named
/// token of either policy plus one fresh token that only wildcard groups
/// can capture; probes resolving to the same group pair are walked once.
pub fn semantic_diff(left: &CompiledPolicy, right: &CompiledPolicy) -> SemanticDiff {
    let mut probes: BTreeSet<String> = BTreeSet::new();
    for (t, _) in left.groups().chain(right.groups()) {
        if t != "*" {
            probes.insert(t.to_string());
        }
    }
    let mut fresh = String::from("zzfreshbot");
    let named = |p: &CompiledPolicy, t: &str| p.resolve_view(t).is_some_and(|(g, _)| g != "*");
    while named(left, &fresh) || named(right, &fresh) {
        fresh.push('z');
    }
    let mut ordered: Vec<String> = probes.into_iter().collect();
    ordered.push(fresh);

    let mut seen: HashSet<(Option<String>, Option<String>)> = HashSet::new();
    let mut delay_changes = Vec::new();
    let mut verdict = DiffVerdict::Equivalent;
    for probe in ordered {
        let lg = left.resolve_view(&probe);
        let rg = right.resolve_view(&probe);
        let pair = (lg.map(|(t, _)| t.to_string()), rg.map(|(t, _)| t.to_string()));
        if !seen.insert(pair) {
            continue;
        }
        let ld = lg.and_then(|(_, g)| g.crawl_delay());
        let rd = rg.and_then(|(_, g)| g.crawl_delay());
        if ld.map(f64::to_bits) != rd.map(f64::to_bits) {
            delay_changes.push(DelayChange { agent: probe.clone(), left: ld, right: rd });
        }
        if matches!(verdict, DiffVerdict::Diverges(_)) {
            continue; // keep collecting delay changes; first witness stands
        }
        let lr: &[Rule] = lg.map_or(&[][..], |(_, g)| g.rules());
        let rr: &[Rule] = rg.map_or(&[][..], |(_, g)| g.rules());
        if rules_equal(lr, rr) {
            continue;
        }
        match group_diff(lr, rr, &probe) {
            GroupDiff::Equivalent => {}
            GroupDiff::Diverges(d) => verdict = DiffVerdict::Diverges(d),
            GroupDiff::Inconclusive => verdict = DiffVerdict::Inconclusive,
        }
    }
    SemanticDiff { verdict, delay_changes }
}

/// Classify a policy revision: [`ChangeClass::Cosmetic`] iff the two
/// documents are provably decision-equivalent with identical crawl delays;
/// anything else — including an unproven equivalence — is
/// [`ChangeClass::Behavioral`].
pub fn classify_change(old: &RobotsTxt, new: &RobotsTxt) -> ChangeClass {
    let diff = semantic_diff(&CompiledPolicy::compile(old), &CompiledPolicy::compile(new));
    if matches!(diff.verdict, DiffVerdict::Equivalent) && diff.delay_changes.is_empty() {
        ChangeClass::Cosmetic
    } else {
        ChangeClass::Behavioral
    }
}

// ---------------------------------------------------------------------------
// Pass 3: parser-divergence hazards.
// ---------------------------------------------------------------------------

const MODELS: [DeviantModel; 3] =
    [DeviantModel::FirstMatch, DeviantModel::WildcardUnaware, DeviantModel::DollarLiteral];

/// For every merged group, find paths where a deviant matcher model
/// (first-match, wildcard-unaware, `$`-as-literal) disagrees with RFC 9309.
/// One shortest witness is reported per `(group, model)`. Returns the
/// hazards and whether every walk ran to completion.
pub fn divergence_hazards(policy: &CompiledPolicy) -> (Vec<Hazard>, bool) {
    let mut out = Vec::new();
    let mut complete = true;
    for (token, view) in policy.groups() {
        let rules = view.rules();
        let mut bit = 0;
        let (mut nfas, owners) = build_rfc(rules, &mut bit);
        let rfc_count = nfas.len();
        if rfc_count == 0 {
            continue;
        }
        // Deviant automata only where the model changes the rule's
        // language: a `*`-free rule reads the same to a wildcard-unaware
        // matcher, an unanchored rule the same to a dollar-literal one.
        let mut wu_slot: Vec<Option<usize>> = vec![None; rfc_count];
        let mut dl_slot: Vec<Option<usize>> = vec![None; rfc_count];
        for (i, &idx) in owners.iter().enumerate() {
            let p = &rules[idx].pattern;
            if p.segments().len() > 1 {
                let nfa = RuleNfa::literal(p, nfas[i].rank, bit);
                bit += nfa.width();
                wu_slot[i] = Some(nfas.len());
                nfas.push(nfa);
            }
            if p.is_anchored() {
                let nfa = RuleNfa::dollar(p, nfas[i].rank, bit);
                bit += nfa.width();
                dl_slot[i] = Some(nfas.len());
                nfas.push(nfa);
            }
        }
        let applicable = |m: DeviantModel| match m {
            DeviantModel::FirstMatch => rfc_count >= 2,
            DeviantModel::WildcardUnaware => wu_slot.iter().any(Option::is_some),
            DeviantModel::DollarLiteral => dl_slot.iter().any(Option::is_some),
        };
        if !MODELS.into_iter().any(applicable) {
            continue;
        }
        let mut found: HashMap<DeviantModel, (usize, bool, bool)> = HashMap::new();
        let walk = walk_product(&nfas, |id, key| {
            if sentinel_carved(key) {
                return false;
            }
            let rfc_allow = allow_of(&nfas[..rfc_count], key);
            for m in MODELS {
                if !applicable(m) || found.contains_key(&m) {
                    continue;
                }
                let dev = match m {
                    DeviantModel::FirstMatch => nfas[..rfc_count]
                        .iter()
                        .find(|nfa| nfa.matched(&key.bits))
                        .is_none_or(|nfa| rank::allow(nfa.rank)),
                    DeviantModel::WildcardUnaware => {
                        substituted_allow(&nfas, rfc_count, &wu_slot, key)
                    }
                    DeviantModel::DollarLiteral => {
                        substituted_allow(&nfas, rfc_count, &dl_slot, key)
                    }
                };
                if dev != rfc_allow {
                    found.insert(m, (id, rfc_allow, dev));
                }
            }
            MODELS.into_iter().all(|m| !applicable(m) || found.contains_key(&m))
        });
        complete &= walk.complete;
        for m in MODELS {
            if let Some(&(id, rfc_allow, deviant_allow)) = found.get(&m) {
                out.push(Hazard {
                    agent: token.to_string(),
                    model: m,
                    path: walk.path(id),
                    rfc_allow,
                    deviant_allow,
                });
            }
        }
    }
    (out, complete)
}

/// RFC precedence fold where rules with a deviant automaton use its match
/// bit instead of their RFC one.
fn substituted_allow(
    nfas: &[RuleNfa],
    rfc_count: usize,
    slots: &[Option<usize>],
    key: &Key,
) -> bool {
    let mut best = rank::NO_MATCH;
    for i in 0..rfc_count {
        let nfa = &nfas[slots[i].unwrap_or(i)];
        if nfa.matched(&key.bits) {
            best = best.max(nfas[i].rank);
        }
    }
    best == rank::NO_MATCH || rank::allow(best)
}

// ---------------------------------------------------------------------------
// The combined analyzer.
// ---------------------------------------------------------------------------

fn map_audit(f: AuditFinding) -> Finding {
    match f {
        AuditFinding::ContradictoryRules { agent, pattern } => Finding {
            severity: Severity::Warning,
            code: FindingCode::ContradictoryRules,
            message: format!("`{pattern}` is both allowed and disallowed; Allow wins the tie"),
            agent: Some(agent),
            witness: None,
        },
        AuditFinding::DuplicateRule { agent, pattern, verb } => Finding {
            severity: Severity::Warning,
            code: FindingCode::DuplicateRule,
            message: format!("`{}: {pattern}` appears more than once", verb.as_str()),
            agent: Some(agent),
            witness: None,
        },
        AuditFinding::EmptyPattern { agent, verb } => Finding {
            severity: Severity::Info,
            code: FindingCode::EmptyPattern,
            message: format!("`{}:` with an empty value matches nothing", verb.as_str()),
            agent: Some(agent),
            witness: None,
        },
        AuditFinding::ShadowedRule { agent, pattern, by } => Finding {
            severity: Severity::Warning,
            code: FindingCode::PrefixShadowedRule,
            message: format!("`{pattern}` is textually shadowed by `{by}`"),
            agent: Some(agent),
            witness: None,
        },
        AuditFinding::SplitGroup { agent } => Finding {
            severity: Severity::Info,
            code: FindingCode::SplitGroup,
            message: "agent token appears in more than one group".to_string(),
            agent: Some(agent),
            witness: None,
        },
        AuditFinding::ExcessiveCrawlDelay { agent, seconds } => Finding {
            severity: Severity::Warning,
            code: FindingCode::ExcessiveCrawlDelay,
            message: format!("crawl delay of {seconds}s exceeds what major crawlers honor"),
            agent: Some(agent),
            witness: None,
        },
        AuditFinding::NoWildcardGroup => Finding {
            severity: Severity::Info,
            code: FindingCode::NoWildcardGroup,
            message: "no `*` group: unlisted bots are entirely unrestricted".to_string(),
            agent: None,
            witness: None,
        },
    }
}

/// Run every pass over one document: the syntactic audit plus semantic
/// liveness and parser-divergence lints, merged into one severity-sorted
/// finding list. Dead-rule findings are only emitted when their proofs
/// closed ([`Analysis::complete`]).
pub fn analyze(doc: &RobotsTxt) -> Analysis {
    let mut findings: Vec<Finding> = audit::audit(doc).into_iter().map(map_audit).collect();
    let policy = CompiledPolicy::compile(doc);
    let group_rules: HashMap<String, Vec<Rule>> =
        policy.groups().map(|(t, v)| (t.to_string(), v.rules().to_vec())).collect();

    let (liveness, live_complete) = rule_liveness(&policy);
    if live_complete {
        for rl in liveness {
            let finding = match rl.verdict {
                Liveness::Alive { .. } => continue,
                Liveness::Shadowed { witness, by } => {
                    let by_text = group_rules.get(&rl.agent).map_or_else(
                        || "another rule".to_string(),
                        |rules| {
                            let r = &rules[by];
                            format!("`{}: {}`", r.verb.as_str(), r.pattern.as_str())
                        },
                    );
                    Finding {
                        severity: Severity::Warning,
                        code: FindingCode::DeadRule,
                        message: format!(
                            "`{}: {}` never wins: {by_text} outranks it on every path it matches",
                            rl.verb.as_str(),
                            rl.pattern
                        ),
                        agent: Some(rl.agent),
                        witness: Some(witness),
                    }
                }
                Liveness::RobotsTxtOnly => Finding {
                    severity: Severity::Warning,
                    code: FindingCode::RobotsTxtCarveOut,
                    message: format!(
                        "`{}: {}` only ever applies to /robots.txt, which is implicitly allowed",
                        rl.verb.as_str(),
                        rl.pattern
                    ),
                    agent: Some(rl.agent),
                    witness: None,
                },
                Liveness::Unmatchable => Finding {
                    severity: Severity::Error,
                    code: FindingCode::UnreachableRule,
                    message: format!(
                        "`{}: {}` cannot match any request path",
                        rl.verb.as_str(),
                        rl.pattern
                    ),
                    agent: Some(rl.agent),
                    witness: None,
                },
            };
            findings.push(finding);
        }
    }

    let (hazards, hazard_complete) = divergence_hazards(&policy);
    for h in hazards {
        let word = |allow: bool| if allow { "allows" } else { "denies" };
        findings.push(Finding {
            severity: Severity::Warning,
            code: FindingCode::ParserDivergence,
            message: format!(
                "a {} parser {} what RFC 9309 {}",
                h.model,
                word(h.deviant_allow),
                word(h.rfc_allow)
            ),
            agent: Some(h.agent),
            witness: Some(h.path),
        });
    }

    let complete = live_complete && hazard_complete;
    if !complete {
        findings.push(Finding {
            severity: Severity::Info,
            code: FindingCode::AnalysisTruncated,
            message: "a semantic walk hit its state budget; dead-rule verdicts suppressed"
                .to_string(),
            agent: None,
            witness: None,
        });
    }
    findings.sort_by_key(|f| std::cmp::Reverse(f.severity));
    Analysis { findings, complete }
}

// ---------------------------------------------------------------------------
// Reference matchers (brute force) for differential testing.
// ---------------------------------------------------------------------------

/// Brute-force implementations of the RFC and deviant matcher models,
/// evaluated rule-by-rule against an already-normalized path. These exist
/// so tests can replay analyzer witnesses through an independent code path.
pub mod reference {
    use super::rank;
    use crate::model::Rule;

    /// RFC 9309 verdict: most-octets rule wins, Allow wins ties, no match
    /// means allow.
    pub fn rfc_allow(rules: &[Rule], normalized_path: &str) -> bool {
        let mut best = rank::NO_MATCH;
        for (idx, r) in rules.iter().enumerate() {
            if !r.pattern.is_empty() && r.pattern.matches_normalized(normalized_path) {
                best = best.max(rank::pack(r.pattern.specificity(), r.verb, idx as u32));
            }
        }
        best == rank::NO_MATCH || rank::allow(best)
    }

    /// First-match model: the first rule in document order that matches
    /// decides; no match means allow.
    pub fn first_match_allow(rules: &[Rule], normalized_path: &str) -> bool {
        for (idx, r) in rules.iter().enumerate() {
            if !r.pattern.is_empty() && r.pattern.matches_normalized(normalized_path) {
                let rank = rank::pack(r.pattern.specificity(), r.verb, idx as u32);
                return rank::allow(rank);
            }
        }
        true
    }

    /// Wildcard-unaware model: `*` is a literal byte; precedence is still
    /// most-octets.
    pub fn wildcard_unaware_allow(rules: &[Rule], normalized_path: &str) -> bool {
        let mut best = rank::NO_MATCH;
        for (idx, r) in rules.iter().enumerate() {
            if r.pattern.is_empty() {
                continue;
            }
            let raw = r.pattern.as_str();
            let body = if r.pattern.is_anchored() { &raw[..raw.len() - 1] } else { raw };
            let hit = if r.pattern.is_anchored() {
                normalized_path == body
            } else {
                normalized_path.starts_with(body)
            };
            if hit {
                best = best.max(rank::pack(r.pattern.specificity(), r.verb, idx as u32));
            }
        }
        best == rank::NO_MATCH || rank::allow(best)
    }

    /// Dollar-literal model: a trailing `$` is a literal byte (the rule
    /// becomes a prefix glob); `*` keeps its meaning.
    pub fn dollar_literal_allow(rules: &[Rule], normalized_path: &str) -> bool {
        let mut best = rank::NO_MATCH;
        for (idx, r) in rules.iter().enumerate() {
            if r.pattern.is_empty() {
                continue;
            }
            let hit = if r.pattern.is_anchored() {
                let mut segs: Vec<Vec<u8>> =
                    r.pattern.segments().iter().map(|s| s.as_bytes().to_vec()).collect();
                if let Some(last) = segs.last_mut() {
                    last.push(b'$');
                }
                glob_prefix(&segs, normalized_path.as_bytes())
            } else {
                r.pattern.matches_normalized(normalized_path)
            };
            if hit {
                best = best.max(rank::pack(r.pattern.specificity(), r.verb, idx as u32));
            }
        }
        best == rank::NO_MATCH || rank::allow(best)
    }

    /// Greedy unanchored glob: place each `*`-split segment leftmost.
    fn glob_prefix(segments: &[Vec<u8>], path: &[u8]) -> bool {
        let mut pos = 0usize;
        for (i, seg) in segments.iter().enumerate() {
            if i == 0 {
                if path.len() < seg.len() || &path[..seg.len()] != seg.as_slice() {
                    return false;
                }
                pos = seg.len();
            } else if seg.is_empty() {
                // `**` or trailing `*`: matches in place.
            } else {
                match path[pos..].windows(seg.len()).position(|w| w == seg.as_slice()) {
                    Some(found) => pos += found + seg.len(),
                    None => return false,
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use crate::PathPattern;

    fn compiled(text: &str) -> CompiledPolicy {
        CompiledPolicy::compile(&parse(text))
    }

    fn verdict_of<'a>(liveness: &'a [RuleLiveness], pattern: &str) -> &'a Liveness {
        &liveness.iter().find(|rl| rl.pattern == pattern).expect("rule present").verdict
    }

    #[test]
    fn simple_rules_are_alive_with_replayable_witnesses() {
        let policy = compiled("User-agent: *\nDisallow: /secure/\nAllow: /secure/open\n");
        let (liveness, complete) = rule_liveness(&policy);
        assert!(complete);
        for rl in &liveness {
            let Liveness::Alive { witness } = &rl.verdict else {
                panic!("expected alive: {rl:?}");
            };
            let decision = policy.check("anybot", witness);
            assert_eq!(decision.allow, rl.verb == RuleVerb::Allow, "witness {witness}");
            assert_eq!(
                decision.matched_rule.expect("witness selects a rule").pattern.as_str(),
                rl.pattern
            );
        }
    }

    #[test]
    fn contradictory_disallow_is_shadowed_by_allow() {
        let policy = compiled("User-agent: *\nDisallow: /a\nAllow: /a\n");
        let (liveness, complete) = rule_liveness(&policy);
        assert!(complete);
        let dis = liveness.iter().find(|rl| rl.verb == RuleVerb::Disallow).unwrap();
        let Liveness::Shadowed { witness, by } = &dis.verdict else {
            panic!("expected shadowed: {dis:?}");
        };
        assert_eq!(*by, 1); // the Allow
        assert!(policy.check("anybot", witness).allow);
    }

    #[test]
    fn broader_allow_shadows_narrow_disallow() {
        // Allow /ab (spec 3) outranks Disallow /a (spec 2) on every path
        // /a matches? No — /a matches /ax which /ab does not. Alive.
        let policy = compiled("User-agent: *\nDisallow: /a\nAllow: /ab\n");
        let (liveness, _) = rule_liveness(&policy);
        assert!(matches!(verdict_of(&liveness, "/a"), Liveness::Alive { .. }));
        // But a same-prefix Allow with a wildcard tail kills it.
        let policy = compiled("User-agent: *\nDisallow: /a\nAllow: /a*x*\n");
        let (liveness, complete) = rule_liveness(&policy);
        assert!(complete);
        assert!(matches!(verdict_of(&liveness, "/a"), Liveness::Alive { .. }));
    }

    #[test]
    fn wildcard_allow_covering_prefix_shadows_it() {
        let policy = compiled("User-agent: *\nDisallow: /data\nAllow: /dat*\n");
        let (liveness, complete) = rule_liveness(&policy);
        assert!(complete);
        let Liveness::Shadowed { witness, by } = verdict_of(&liveness, "/data") else {
            panic!("expected shadowed");
        };
        assert_eq!(*by, 1);
        assert!(policy.check("anybot", witness).allow);
        // The witness really is a path /data matches.
        assert!(PathPattern::new("/data").matches(witness));
    }

    #[test]
    fn bare_dollar_rule_is_unmatchable() {
        let policy = compiled("User-agent: *\nDisallow: $\nAllow: /\n");
        let (liveness, complete) = rule_liveness(&policy);
        assert!(complete);
        assert!(matches!(verdict_of(&liveness, "$"), Liveness::Unmatchable));
    }

    #[test]
    fn relative_key_rule_is_unmatchable() {
        let policy = compiled("User-agent: *\nDisallow: foo\n");
        let (liveness, complete) = rule_liveness(&policy);
        assert!(complete);
        assert!(matches!(verdict_of(&liveness, "foo"), Liveness::Unmatchable));
    }

    #[test]
    fn robots_txt_exact_rule_is_carved_out() {
        let policy = compiled("User-agent: *\nDisallow: /robots.txt$\n");
        let (liveness, complete) = rule_liveness(&policy);
        assert!(complete);
        assert!(matches!(verdict_of(&liveness, "/robots.txt$"), Liveness::RobotsTxtOnly));
        // Prefix form stays alive via extensions, witnessed off-carve-out.
        let policy = compiled("User-agent: *\nDisallow: /robots.txt\n");
        let (liveness, _) = rule_liveness(&policy);
        let Liveness::Alive { witness } = verdict_of(&liveness, "/robots.txt") else {
            panic!("expected alive");
        };
        assert_ne!(witness, "/robots.txt");
        assert!(!policy.check("anybot", witness).allow);
    }

    #[test]
    fn trie_and_walk_agree_on_wildcard_free_groups() {
        let texts = [
            "User-agent: *\nDisallow: /a\nAllow: /a\nDisallow: /a/b\nAllow: /\n",
            "User-agent: *\nDisallow: /robots.txt$\nDisallow: /x$\nAllow: /x\n",
            "User-agent: a\nDisallow: /p\nUser-agent: b\nAllow: /p\nDisallow: /p/q\n",
            "User-agent: *\nDisallow: $\nDisallow: rel\nDisallow: /\n",
        ];
        for text in texts {
            let policy = compiled(text);
            let (fast, _) = rule_liveness_forced(&policy, false);
            let (slow, complete) = rule_liveness_forced(&policy, true);
            assert!(complete);
            assert_eq!(fast.len(), slow.len(), "{text}");
            for (f, s) in fast.iter().zip(&slow) {
                assert_eq!(
                    std::mem::discriminant(&f.verdict),
                    std::mem::discriminant(&s.verdict),
                    "{text}: {f:?} vs {s:?}"
                );
            }
        }
    }

    #[test]
    fn percent_pattern_witness_is_normalized() {
        let policy = compiled("User-agent: *\nDisallow: /caf%c3%a9\n");
        let (liveness, complete) = rule_liveness(&policy);
        assert!(complete);
        let Liveness::Alive { witness } = verdict_of(&liveness, "/caf%C3%A9") else {
            panic!("expected alive");
        };
        assert_eq!(crate::pattern::normalize_percent(witness), *witness);
        assert!(!policy.check("anybot", witness).allow);
    }

    #[test]
    fn semantic_diff_proves_cosmetic_rewrites_equivalent() {
        let a = compiled("# v1\nUser-agent: *\nDisallow: /private/\nAllow: /public\n");
        let b = compiled(
            "User-agent: *\n# reordered, commented\nAllow: /public\nDisallow: /private/\n",
        );
        let d = semantic_diff(&a, &b);
        assert_eq!(d.verdict, DiffVerdict::Equivalent);
        assert!(d.delay_changes.is_empty());
        // Star-splitting a prefix is also cosmetic: /p* ≡ /p.
        let c = compiled("User-agent: *\nDisallow: /private/*\nAllow: /public\n");
        // Different specificity can flip precedence, so only claim
        // equivalence when the diff engine proves it.
        match semantic_diff(&a, &c).verdict {
            DiffVerdict::Equivalent => {}
            DiffVerdict::Diverges(d) => {
                // Witness must be real: replay through both.
                assert_ne!(a.check("anybot", &d.path).allow, c.check("anybot", &d.path).allow);
            }
            DiffVerdict::Inconclusive => panic!("tiny policies must complete"),
        }
    }

    #[test]
    fn semantic_diff_witnesses_behavioral_changes() {
        let a = compiled("User-agent: *\nDisallow: /secure/\n");
        let b = compiled("User-agent: *\nDisallow: /secure/\nDisallow: /beta\n");
        let d = semantic_diff(&a, &b);
        let DiffVerdict::Diverges(div) = &d.verdict else {
            panic!("expected divergence: {d:?}");
        };
        assert!(a.check(&div.agent, &div.path).allow == div.left_allow);
        assert!(b.check(&div.agent, &div.path).allow == div.right_allow);
        assert_ne!(div.left_allow, div.right_allow);
    }

    #[test]
    fn semantic_diff_sees_named_group_changes() {
        let a = compiled("User-agent: gptbot\nDisallow: /\n\nUser-agent: *\nDisallow: /tmp\n");
        let b = compiled("User-agent: *\nDisallow: /tmp\n");
        let d = semantic_diff(&a, &b);
        let DiffVerdict::Diverges(div) = &d.verdict else {
            panic!("expected divergence: {d:?}");
        };
        assert_eq!(div.agent, "gptbot");
        assert_ne!(a.check("GPTBot", &div.path).allow, b.check("GPTBot", &div.path).allow);
    }

    #[test]
    fn delay_only_changes_are_behavioral() {
        let a = parse("User-agent: *\nDisallow: /x\nCrawl-delay: 5\n");
        let b = parse("User-agent: *\nDisallow: /x\nCrawl-delay: 10\n");
        assert_eq!(classify_change(&a, &b), ChangeClass::Behavioral);
        let d = semantic_diff(&CompiledPolicy::compile(&a), &CompiledPolicy::compile(&b));
        assert_eq!(d.verdict, DiffVerdict::Equivalent);
        assert_eq!(d.delay_changes.len(), 1);
    }

    #[test]
    fn classify_change_cosmetic_for_comment_edits() {
        let a = parse("User-agent: *\nDisallow: /private/\n");
        let b = parse("# robots policy\nUser-agent: *\nDisallow: /private/\n# end\n");
        assert_eq!(classify_change(&a, &b), ChangeClass::Cosmetic);
        let c = parse("User-agent: *\nDisallow: /private/\nDisallow: /private/sub\n");
        // The extra rule is shadowed — decisions are unchanged.
        assert_eq!(classify_change(&a, &c), ChangeClass::Cosmetic);
    }

    #[test]
    fn first_match_hazard_witnessed() {
        let text = "User-agent: *\nDisallow: /a\nAllow: /a/b\n";
        let policy = compiled(text);
        let (hazards, complete) = divergence_hazards(&policy);
        assert!(complete);
        let h = hazards
            .iter()
            .find(|h| h.model == DeviantModel::FirstMatch)
            .expect("first-match hazard");
        let rules = &parse(text).groups[0].rules;
        assert_eq!(reference::rfc_allow(rules, &h.path), h.rfc_allow);
        assert_eq!(reference::first_match_allow(rules, &h.path), h.deviant_allow);
        assert_ne!(h.rfc_allow, h.deviant_allow);
    }

    #[test]
    fn wildcard_unaware_hazard_witnessed() {
        let text = "User-agent: *\nDisallow: /*.php\n";
        let policy = compiled(text);
        let (hazards, complete) = divergence_hazards(&policy);
        assert!(complete);
        let h = hazards
            .iter()
            .find(|h| h.model == DeviantModel::WildcardUnaware)
            .expect("wildcard-unaware hazard");
        let rules = &parse(text).groups[0].rules;
        assert_eq!(reference::rfc_allow(rules, &h.path), h.rfc_allow);
        assert_eq!(reference::wildcard_unaware_allow(rules, &h.path), h.deviant_allow);
        assert_ne!(h.rfc_allow, h.deviant_allow);
    }

    #[test]
    fn dollar_literal_hazard_witnessed() {
        let text = "User-agent: *\nDisallow: /downloads$\n";
        let policy = compiled(text);
        let (hazards, complete) = divergence_hazards(&policy);
        assert!(complete);
        let h = hazards
            .iter()
            .find(|h| h.model == DeviantModel::DollarLiteral)
            .expect("dollar-literal hazard");
        let rules = &parse(text).groups[0].rules;
        assert_eq!(reference::rfc_allow(rules, &h.path), h.rfc_allow);
        assert_eq!(reference::dollar_literal_allow(rules, &h.path), h.deviant_allow);
        assert_ne!(h.rfc_allow, h.deviant_allow);
    }

    #[test]
    fn equivalent_matchers_produce_no_hazard() {
        // One plain prefix rule: every deviant model reads it identically.
        let policy = compiled("User-agent: *\nDisallow: /private/\n");
        let (hazards, complete) = divergence_hazards(&policy);
        assert!(complete);
        assert!(hazards.is_empty(), "{hazards:?}");
    }

    #[test]
    fn analyze_merges_passes_severity_sorted() {
        let analysis = analyze(&parse(
            "User-agent: *\nDisallow: $\nDisallow: /dup\nDisallow: /dup\nAllow: /x\nDisallow: /x\n",
        ));
        assert!(analysis.complete);
        assert_eq!(analysis.worst(), Some(Severity::Error));
        let codes: Vec<FindingCode> = analysis.findings.iter().map(|f| f.code).collect();
        assert!(codes.contains(&FindingCode::UnreachableRule));
        assert!(codes.contains(&FindingCode::DuplicateRule));
        assert!(codes.contains(&FindingCode::DeadRule));
        let sevs: Vec<Severity> = analysis.findings.iter().map(|f| f.severity).collect();
        let mut sorted = sevs.clone();
        sorted.sort_by(|a, b| b.cmp(a));
        assert_eq!(sevs, sorted);
        assert!(analysis.at_or_above(Severity::Error) >= 1);
    }

    #[test]
    fn clean_policy_analyzes_clean() {
        let analysis = analyze(&parse("User-agent: *\nDisallow: /private/\nAllow: /\n"));
        // `/` is shadowed nowhere; /private/ wins under it; only benign
        // syntactic findings (none here) would appear.
        assert!(analysis.complete);
        assert!(
            analysis.findings.iter().all(|f| f.severity == Severity::Info),
            "{:?}",
            analysis.findings
        );
    }

    #[test]
    fn severity_parses_and_orders() {
        assert!(Severity::Error > Severity::Warning);
        assert!(Severity::Warning > Severity::Info);
        assert_eq!("warning".parse::<Severity>().unwrap(), Severity::Warning);
        assert_eq!("ERROR".parse::<Severity>().unwrap(), Severity::Error);
        assert!("bogus".parse::<Severity>().is_err());
    }

    #[test]
    fn pctx_rejects_non_canonical_triplets() {
        // %2f would normalize to %2F: the walk must never spell it.
        assert_eq!(pctx_step(PCTX_AFTER_PCT, b'2'), Some(b'2'));
        assert_eq!(pctx_step(b'2', b'f'), None);
        assert_eq!(pctx_step(b'2', b'F'), Some(PCTX_CLEAN));
        // %41 decodes to 'A' (printable): not a fixed point either way.
        assert_eq!(pctx_step(b'4', b'1'), None);
        // %E9 is non-printable: uppercase spelling is canonical.
        assert_eq!(pctx_step(b'E', b'9'), Some(PCTX_CLEAN));
        assert_eq!(pctx_step(b'e', b'9'), None);
    }
}

//! Property-based tests for the RFC 9309 implementation.

use botscope_robotstxt::parser::parse;
use botscope_robotstxt::pattern::{normalize_percent, PathPattern};
use botscope_robotstxt::{RobotsTxt, RobotsTxtBuilder};
use proptest::prelude::*;

/// Strategy for plausible path-pattern strings.
fn pattern_strategy() -> impl Strategy<Value = String> {
    proptest::string::string_regex("/[a-z0-9/*._-]{0,20}\\$?").expect("valid regex")
}

/// Strategy for plausible request paths.
fn path_strategy() -> impl Strategy<Value = String> {
    proptest::string::string_regex("/[a-z0-9/._-]{0,30}").expect("valid regex")
}

proptest! {
    #[test]
    fn parser_never_panics(input in "\\PC*") {
        let _ = parse(&input);
    }

    #[test]
    fn parser_never_panics_on_structured_garbage(
        lines in prop::collection::vec("[ -~]{0,50}", 0..30)
    ) {
        let _ = parse(&lines.join("\n"));
    }

    #[test]
    fn pattern_matching_never_panics(pat in "\\PC{0,40}", path in "\\PC{0,60}") {
        let p = PathPattern::new(&pat);
        let _ = p.matches(&path);
    }

    #[test]
    fn literal_pattern_is_prefix_match(path in path_strategy(), extra in "[a-z0-9]{0,10}") {
        // A wildcard-free, unanchored pattern matches exactly its prefixes.
        let p = PathPattern::new(&path);
        let extended = format!("{path}{extra}");
        prop_assert!(p.matches(&extended), "{path} should match {extended}");
    }

    #[test]
    fn anchored_literal_matches_only_itself(path in path_strategy()) {
        if !path.contains('*') && !path.contains('$') {
            let p = PathPattern::new(&format!("{path}$"));
            prop_assert!(p.matches(&path));
            let extended = format!("{path}x");
            prop_assert!(!p.matches(&extended));
        }
    }

    #[test]
    fn normalize_is_idempotent(s in "\\PC{0,60}") {
        let once = normalize_percent(&s);
        let twice = normalize_percent(&once);
        prop_assert_eq!(once, twice);
    }

    #[test]
    fn decision_is_deterministic(
        pats in prop::collection::vec(pattern_strategy(), 0..10),
        path in path_strategy(),
    ) {
        let mut body = String::from("User-agent: *\n");
        for (i, p) in pats.iter().enumerate() {
            if i % 2 == 0 {
                body.push_str(&format!("Disallow: {p}\n"));
            } else {
                body.push_str(&format!("Allow: {p}\n"));
            }
        }
        let doc = parse(&body);
        let a = doc.is_allowed("testbot", &path);
        let b = doc.is_allowed("testbot", &path);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn robots_txt_path_always_allowed(
        pats in prop::collection::vec(pattern_strategy(), 0..10),
        agent in "[a-z]{1,12}",
    ) {
        let mut body = String::from("User-agent: *\n");
        for p in &pats {
            body.push_str(&format!("Disallow: {p}\n"));
        }
        let doc = parse(&body);
        prop_assert!(doc.is_allowed(&agent, "/robots.txt").allow);
    }

    #[test]
    fn builder_roundtrip(
        agents in prop::collection::vec("[a-z][a-z0-9-]{0,10}", 1..4),
        allow_pats in prop::collection::vec(pattern_strategy(), 0..5),
        disallow_pats in prop::collection::vec(pattern_strategy(), 0..5),
        delay in prop::option::of(0u32..3600),
    ) {
        let built = RobotsTxtBuilder::new()
            .group(agents.clone(), |mut g| {
                for p in &allow_pats {
                    g = g.allow(p);
                }
                for p in &disallow_pats {
                    g = g.disallow(p);
                }
                if let Some(d) = delay {
                    g = g.crawl_delay(d as f64);
                }
                g
            })
            .build();
        let reparsed = parse(&built.to_string());
        prop_assert_eq!(&reparsed.groups, &built.groups);
        prop_assert!(reparsed.warnings.is_empty(), "warnings: {:?}", reparsed.warnings);
    }

    #[test]
    fn disallow_all_blocks_all_but_robots(agent in "[a-z]{1,12}", path in path_strategy()) {
        let doc = RobotsTxt::disallow_all();
        let d = doc.is_allowed(&agent, &path);
        if path == "/robots.txt" {
            prop_assert!(d.allow);
        } else {
            prop_assert!(!d.allow);
        }
    }

    #[test]
    fn allow_all_allows_everything(agent in "[a-z]{1,12}", path in path_strategy()) {
        prop_assert!(RobotsTxt::allow_all().is_allowed(&agent, &path).allow);
    }

    #[test]
    fn adding_an_allow_rule_never_shrinks_access(
        base_pats in prop::collection::vec(pattern_strategy(), 0..6),
        new_allow in pattern_strategy(),
        path in path_strategy(),
    ) {
        // Monotonicity: appending a (strictly longer-or-equal specificity
        // aside) Allow rule can flip Disallow→Allow but a path that was
        // allowed stays allowed UNLESS the new rule is more specific — an
        // Allow rule can never cause a Disallow, so allowed stays allowed.
        let mut body = String::from("User-agent: *\n");
        for p in &base_pats {
            body.push_str(&format!("Disallow: {p}\n"));
        }
        let before = parse(&body).is_allowed("bot", &path).allow;
        body.push_str(&format!("Allow: {new_allow}\n"));
        let after = parse(&body).is_allowed("bot", &path).allow;
        if before {
            prop_assert!(after, "allow rule must not revoke access");
        }
    }
}

//! Property-based tests for the RFC 9309 implementation.

use botscope_robotstxt::parser::parse;
use botscope_robotstxt::pattern::{normalize_percent, PathPattern};
use botscope_robotstxt::{CompiledPolicy, RobotsTxt, RobotsTxtBuilder};
use proptest::prelude::*;

/// The observable outcome of one check, in a form that owns its data:
/// verdict, winning rule (verb + pattern text), and the agent group it
/// came from.
type Outcome = (bool, Option<(botscope_robotstxt::RuleVerb, String)>, Option<String>);

fn outcome(d: &botscope_robotstxt::Decision<'_>) -> Outcome {
    (
        d.allow,
        d.matched_rule.map(|r| (r.verb, r.pattern.as_str().to_string())),
        d.matched_agent.map(str::to_string),
    )
}

/// Assert the compiled automaton and the interpreted matcher agree on
/// the full decision (not just the verdict) for one (agent, path).
fn assert_compiled_equiv(doc: &RobotsTxt, compiled: &CompiledPolicy, agent: &str, path: &str) {
    let interpreted = outcome(&doc.is_allowed(agent, path));
    let automaton = outcome(&compiled.check(agent, path));
    assert_eq!(interpreted, automaton, "agent={agent:?} path={path:?}");
    assert_eq!(doc.crawl_delay(agent), compiled.crawl_delay(agent), "delay for {agent:?}");
}

/// Strategy for plausible path-pattern strings.
fn pattern_strategy() -> impl Strategy<Value = String> {
    proptest::string::string_regex("/[a-z0-9/*._-]{0,20}\\$?").expect("valid regex")
}

/// Strategy for plausible request paths.
fn path_strategy() -> impl Strategy<Value = String> {
    proptest::string::string_regex("/[a-z0-9/._-]{0,30}").expect("valid regex")
}

proptest! {
    #[test]
    fn parser_never_panics(input in "\\PC*") {
        let _ = parse(&input);
    }

    #[test]
    fn parser_never_panics_on_structured_garbage(
        lines in prop::collection::vec("[ -~]{0,50}", 0..30)
    ) {
        let _ = parse(&lines.join("\n"));
    }

    #[test]
    fn pattern_matching_never_panics(pat in "\\PC{0,40}", path in "\\PC{0,60}") {
        let p = PathPattern::new(&pat);
        let _ = p.matches(&path);
    }

    #[test]
    fn literal_pattern_is_prefix_match(path in path_strategy(), extra in "[a-z0-9]{0,10}") {
        // A wildcard-free, unanchored pattern matches exactly its prefixes.
        let p = PathPattern::new(&path);
        let extended = format!("{path}{extra}");
        prop_assert!(p.matches(&extended), "{path} should match {extended}");
    }

    #[test]
    fn anchored_literal_matches_only_itself(path in path_strategy()) {
        if !path.contains('*') && !path.contains('$') {
            let p = PathPattern::new(&format!("{path}$"));
            prop_assert!(p.matches(&path));
            let extended = format!("{path}x");
            prop_assert!(!p.matches(&extended));
        }
    }

    #[test]
    fn normalize_is_idempotent(s in "\\PC{0,60}") {
        let once = normalize_percent(&s);
        let twice = normalize_percent(&once);
        prop_assert_eq!(once, twice);
    }

    #[test]
    fn decision_is_deterministic(
        pats in prop::collection::vec(pattern_strategy(), 0..10),
        path in path_strategy(),
    ) {
        let mut body = String::from("User-agent: *\n");
        for (i, p) in pats.iter().enumerate() {
            if i % 2 == 0 {
                body.push_str(&format!("Disallow: {p}\n"));
            } else {
                body.push_str(&format!("Allow: {p}\n"));
            }
        }
        let doc = parse(&body);
        let a = doc.is_allowed("testbot", &path);
        let b = doc.is_allowed("testbot", &path);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn robots_txt_path_always_allowed(
        pats in prop::collection::vec(pattern_strategy(), 0..10),
        agent in "[a-z]{1,12}",
    ) {
        let mut body = String::from("User-agent: *\n");
        for p in &pats {
            body.push_str(&format!("Disallow: {p}\n"));
        }
        let doc = parse(&body);
        prop_assert!(doc.is_allowed(&agent, "/robots.txt").allow);
    }

    #[test]
    fn builder_roundtrip(
        agents in prop::collection::vec("[a-z][a-z0-9-]{0,10}", 1..4),
        allow_pats in prop::collection::vec(pattern_strategy(), 0..5),
        disallow_pats in prop::collection::vec(pattern_strategy(), 0..5),
        delay in prop::option::of(0u32..3600),
    ) {
        let built = RobotsTxtBuilder::new()
            .group(agents.clone(), |mut g| {
                for p in &allow_pats {
                    g = g.allow(p);
                }
                for p in &disallow_pats {
                    g = g.disallow(p);
                }
                if let Some(d) = delay {
                    g = g.crawl_delay(d as f64);
                }
                g
            })
            .build();
        let reparsed = parse(&built.to_string());
        prop_assert_eq!(&reparsed.groups, &built.groups);
        prop_assert!(reparsed.warnings.is_empty(), "warnings: {:?}", reparsed.warnings);
    }

    #[test]
    fn disallow_all_blocks_all_but_robots(agent in "[a-z]{1,12}", path in path_strategy()) {
        let doc = RobotsTxt::disallow_all();
        let d = doc.is_allowed(&agent, &path);
        if path == "/robots.txt" {
            prop_assert!(d.allow);
        } else {
            prop_assert!(!d.allow);
        }
    }

    #[test]
    fn allow_all_allows_everything(agent in "[a-z]{1,12}", path in path_strategy()) {
        prop_assert!(RobotsTxt::allow_all().is_allowed(&agent, &path).allow);
    }

    // ---- percent-encoding corpus (RFC 9309 §2.2.2) ----

    #[test]
    fn percent_encoded_pattern_matches_plain_path(path in "/[a-zA-Z0-9._~-]{0,24}") {
        // Encoding every octet except the separator must not change the
        // match set: %XX triplets normalize to the octets they encode.
        let encoded: String = path
            .bytes()
            .map(|b| if b == b'/' { "/".to_string() } else { format!("%{b:02x}") })
            .collect();
        prop_assert!(PathPattern::new(&encoded).matches(&path), "{encoded} vs {path}");
        prop_assert!(PathPattern::new(&path).matches(&encoded), "{path} vs {encoded}");
        // And prefix semantics survive encoding.
        let extended = format!("{path}x");
        prop_assert!(PathPattern::new(&encoded).matches(&extended));
    }

    #[test]
    fn percent_hex_case_is_insensitive(path in "/[a-zA-Z0-9._~-]{0,24}") {
        let lower: String = path
            .bytes()
            .map(|b| if b == b'/' { "/".to_string() } else { format!("%{b:02x}") })
            .collect();
        let upper = lower.to_ascii_uppercase();
        prop_assert_eq!(normalize_percent(&lower), normalize_percent(&upper));
    }

    #[test]
    fn percent_2f_stays_distinct_from_slash(
        a in "[a-z0-9]{1,8}",
        b in "[a-z0-9]{1,8}",
    ) {
        // RFC 9309: %2F encodes a path separator and must not compare
        // equal to a literal `/` — `/a%2Fb` and `/a/b` are distinct.
        let encoded = format!("/{a}%2F{b}");
        let literal = format!("/{a}/{b}");
        prop_assert!(!PathPattern::new(&encoded).matches(&literal));
        prop_assert!(!PathPattern::new(&literal).matches(&encoded));
        // Both casings of the triplet are the same encoded separator.
        let lower = format!("/{a}%2f{b}");
        prop_assert!(PathPattern::new(&lower).matches(&encoded));
        prop_assert!(PathPattern::new(&encoded).matches(&lower));
    }

    #[test]
    fn malformed_triplets_match_verbatim(
        head in "/[a-z0-9]{0,10}",
        trailer in "%[g-z]{0,2}",
        lone_hex in "[0-9a-f]{0,1}",
    ) {
        // A malformed %-sequence (truncated triplet or non-hex digits)
        // is kept verbatim, so the pattern still matches its own text.
        let path = format!("{head}{trailer}{lone_hex}");
        prop_assert!(PathPattern::new(&path).matches(&path), "{path}");
    }

    // ---- `$` anchor + `*` interaction corpus ----

    #[test]
    fn trailing_star_dollar_equals_plain_prefix(
        base in path_strategy(),
        probe in path_strategy(),
    ) {
        // `X*$` anchors after a wildcard that eats the rest: exactly the
        // prefix semantics of the unanchored `X`.
        let anchored = PathPattern::new(&format!("{base}*$"));
        let plain = PathPattern::new(&base);
        prop_assert_eq!(anchored.matches(&probe), plain.matches(&probe));
    }

    #[test]
    fn anchored_matches_are_a_subset_of_unanchored(
        segs in prop::collection::vec("[a-z0-9._-]{0,4}", 1..4),
        probe in path_strategy(),
    ) {
        let body = format!("/{}", segs.join("*"));
        let anchored = PathPattern::new(&format!("{body}$"));
        let plain = PathPattern::new(&body);
        if anchored.matches(&probe) {
            prop_assert!(plain.matches(&probe), "{body}$ matched {probe} but {body} did not");
        }
    }

    #[test]
    fn anchored_star_pattern_requires_terminal_literal(
        segs in prop::collection::vec("[a-z0-9._-]{1,4}", 2..4),
        probe in path_strategy(),
    ) {
        // `/a*b$`-style patterns: any match must end with the literal
        // tail segment.
        let body = format!("/{}", segs.join("*"));
        let pattern = PathPattern::new(&format!("{body}$"));
        if pattern.matches(&probe) {
            let tail = segs.last().expect("non-empty");
            prop_assert!(probe.ends_with(tail.as_str()), "{body}$ matched {probe}");
        }
    }

    #[test]
    fn dollar_inside_pattern_is_literal(
        head in "[a-z0-9]{1,6}",
        tail in "[a-z0-9]{1,6}",
        probe_tail in "[a-z0-9]{0,6}",
    ) {
        // Only a *final* `$` anchors; an interior one is an ordinary
        // octet (RFC 9309 §2.2.3).
        let pattern = PathPattern::new(&format!("/{head}${tail}"));
        prop_assert!(pattern.matches(&format!("/{head}${tail}{probe_tail}")));
        prop_assert!(!pattern.matches(&format!("/{head}{tail}")));
    }

    #[test]
    fn star_dollar_decisions_consistent_in_documents(
        base in "/[a-z0-9/]{0,12}",
        probe in path_strategy(),
    ) {
        // A disallow written `X*$` and one written `X` produce the same
        // decision for every probe (through the whole parser/matcher
        // stack, not just PathPattern).
        let anchored = parse(&format!("User-agent: *\nDisallow: {base}*$\n"));
        let plain = parse(&format!("User-agent: *\nDisallow: {base}\n"));
        prop_assert_eq!(
            anchored.is_allowed("bot", &probe).allow,
            plain.is_allowed("bot", &probe).allow
        );
    }

    #[test]
    fn adding_an_allow_rule_never_shrinks_access(
        base_pats in prop::collection::vec(pattern_strategy(), 0..6),
        new_allow in pattern_strategy(),
        path in path_strategy(),
    ) {
        // Monotonicity: appending a (strictly longer-or-equal specificity
        // aside) Allow rule can flip Disallow→Allow but a path that was
        // allowed stays allowed UNLESS the new rule is more specific — an
        // Allow rule can never cause a Disallow, so allowed stays allowed.
        let mut body = String::from("User-agent: *\n");
        for p in &base_pats {
            body.push_str(&format!("Disallow: {p}\n"));
        }
        let before = parse(&body).is_allowed("bot", &path).allow;
        body.push_str(&format!("Allow: {new_allow}\n"));
        let after = parse(&body).is_allowed("bot", &path).allow;
        if before {
            prop_assert!(after, "allow rule must not revoke access");
        }
    }

    // ---- longest-match tie-breaking (RFC 9309 §2.2.2) ----

    #[test]
    fn identical_pattern_tie_allow_wins(path in path_strategy()) {
        // The exact same value as Allow and Disallow: equal specificity,
        // so the tie MUST break toward Allow — in either rule order.
        // (/robots.txt itself is implicitly allowed, so skip it.)
        if path != "/robots.txt" {
            for body in [
                format!("User-agent: *\nDisallow: {path}\nAllow: {path}\n"),
                format!("User-agent: *\nAllow: {path}\nDisallow: {path}\n"),
            ] {
                let doc = parse(&body);
                prop_assert!(doc.is_allowed("bot", &path).allow, "{body}");
            }
        }
    }

    #[test]
    fn equal_length_distinct_patterns_allow_wins(
        base in "/[a-z0-9]{1,12}",
        last in "[a-z0-9]{1,1}",
    ) {
        // Two *different* patterns of equal octet length that both match
        // the probe path: the exact literal, and its last octet replaced
        // by `*`. Equal specificity ⇒ Allow wins, whichever carries it.
        let path = format!("{base}{last}");
        let starred = format!("{base}*");
        prop_assert_eq!(
            PathPattern::new(&path).specificity(),
            PathPattern::new(&starred).specificity()
        );
        prop_assert!(PathPattern::new(&starred).matches(&path));

        let doc = parse(&format!("User-agent: *\nDisallow: {starred}\nAllow: {path}\n"));
        prop_assert!(doc.is_allowed("bot", &path).allow, "literal Allow loses tie");
        let doc = parse(&format!("User-agent: *\nDisallow: {path}\nAllow: {starred}\n"));
        prop_assert!(doc.is_allowed("bot", &path).allow, "starred Allow loses tie");
    }

    #[test]
    fn strictly_longer_rule_beats_shorter_regardless_of_verb(
        base in "/[a-z0-9]{1,10}",
        extra in "[a-z0-9]{1,6}",
    ) {
        // Sanity around the tie rule: it applies ONLY at equal length.
        // A strictly longer Disallow must beat a shorter Allow (and
        // vice versa) for paths both match.
        let long = format!("{base}/{extra}");
        let doc = parse(&format!("User-agent: *\nAllow: {base}\nDisallow: {long}\n"));
        prop_assert!(!doc.is_allowed("bot", &long).allow);
        prop_assert!(doc.is_allowed("bot", &format!("{base}zz")).allow);
        let doc = parse(&format!("User-agent: *\nDisallow: {base}\nAllow: {long}\n"));
        prop_assert!(doc.is_allowed("bot", &long).allow);
        prop_assert!(!doc.is_allowed("bot", &format!("{base}zz")).allow);
    }

    // ---- UTF-8 paths under percent-encoding equivalence ----

    #[test]
    fn utf8_pattern_and_encoded_pattern_are_one_pattern(
        prefix in "/[a-z0-9]{0,6}/",
        seg in "[à-öø-ÿα-ωа-яぁ-ゖ一-鿋]{1,6}",
        tail in "[a-z0-9]{0,5}",
    ) {
        // A raw multi-byte segment and its uppercase percent-encoded
        // octets normalize identically, so either spelling of the rule
        // matches either spelling of the path.
        let raw = format!("{prefix}{seg}{tail}");
        let encoded: String = raw
            .bytes()
            .map(|b| {
                if b >= 0x80 { format!("%{b:02X}") } else { (b as char).to_string() }
            })
            .collect();
        prop_assert_eq!(normalize_percent(&raw), normalize_percent(&encoded));
        for pat in [&raw, &encoded] {
            for path in [&raw, &encoded] {
                prop_assert!(PathPattern::new(pat).matches(path), "{pat} vs {path}");
            }
        }
        // Prefix semantics hold across the spellings too.
        let extended = format!("{raw}/more");
        prop_assert!(PathPattern::new(&encoded).matches(&extended));
    }

    #[test]
    fn utf8_document_decisions_are_spelling_invariant(
        seg in "[à-öø-ÿα-ωа-яぁ-ゖ一-鿋]{1,5}",
        probe in "[a-z0-9]{0,4}",
    ) {
        // A Disallow written with raw UTF-8 must deny the percent-encoded
        // request spelling, and vice versa — a crawler must not dodge a
        // rule by re-encoding the URL.
        let raw_rule = format!("/wiki/{seg}");
        let encoded_rule: String = raw_rule
            .bytes()
            .map(|b| {
                if b >= 0x80 { format!("%{b:02x}") } else { (b as char).to_string() }
            })
            .collect();
        let raw_path = format!("/wiki/{seg}{probe}");
        let encoded_path: String = raw_path
            .bytes()
            .map(|b| {
                if b >= 0x80 { format!("%{b:02X}") } else { (b as char).to_string() }
            })
            .collect();
        for rule in [&raw_rule, &encoded_rule] {
            let doc = parse(&format!("User-agent: *\nDisallow: {rule}\n"));
            for path in [&raw_path, &encoded_path] {
                prop_assert!(
                    !doc.is_allowed("bot", path).allow,
                    "rule {rule} must deny {path}"
                );
            }
            // Unrelated ASCII paths stay allowed.
            prop_assert!(doc.is_allowed("bot", "/wiki-other").allow);
        }
    }

    // ---- compiled automaton ≡ interpreted matcher ----

    #[test]
    fn compiled_agrees_on_random_documents(
        pats in prop::collection::vec(pattern_strategy(), 0..10),
        agents in prop::collection::vec("[a-z][a-z0-9-]{0,8}", 1..4),
        delay in prop::option::of(1u32..600),
        probe_agent in "[a-z][a-z0-9-]{0,10}",
        path in path_strategy(),
    ) {
        // Multi-group documents with mixed verbs: the compiled policy
        // must reproduce the interpreted decision *exactly* — verdict,
        // winning rule, agent group, and crawl delay.
        let mut body = String::new();
        for (g, agent) in agents.iter().enumerate() {
            body.push_str(&format!("User-agent: {agent}\n"));
            if g == agents.len() - 1 {
                body.push_str("User-agent: *\n");
            }
            for (i, p) in pats.iter().enumerate() {
                if (i + g) % 2 == 0 {
                    body.push_str(&format!("Disallow: {p}\n"));
                } else {
                    body.push_str(&format!("Allow: {p}\n"));
                }
            }
            if let (Some(d), 0) = (delay, g % 2) {
                body.push_str(&format!("Crawl-delay: {d}\n"));
            }
            body.push('\n');
        }
        let doc = parse(&body);
        let compiled = CompiledPolicy::compile(&doc);
        for agent in agents.iter().map(String::as_str).chain([probe_agent.as_str(), "unrelated"]) {
            assert_compiled_equiv(&doc, &compiled, agent, &path);
            assert_compiled_equiv(&doc, &compiled, agent, "/robots.txt");
        }
    }

    #[test]
    fn compiled_agrees_on_garbage_documents(
        body in "\\PC{0,200}",
        agent in "\\PC{0,16}",
        path in "\\PC{0,40}",
    ) {
        let doc = parse(&body);
        let compiled = CompiledPolicy::compile(&doc);
        assert_compiled_equiv(&doc, &compiled, &agent, &path);
    }

    #[test]
    fn compiled_agrees_at_precedence_ties(
        base in "/[a-z0-9]{1,12}",
        last in "[a-z0-9]{1,1}",
    ) {
        // The tie cases the rank packing exists for: identical patterns
        // on both verbs, and equal-length literal-vs-starred patterns,
        // in both rule orders.
        let path = format!("{base}{last}");
        let starred = format!("{base}*");
        for body in [
            format!("User-agent: *\nDisallow: {path}\nAllow: {path}\n"),
            format!("User-agent: *\nAllow: {path}\nDisallow: {path}\n"),
            format!("User-agent: *\nDisallow: {starred}\nAllow: {path}\n"),
            format!("User-agent: *\nAllow: {starred}\nDisallow: {path}\n"),
            format!("User-agent: *\nDisallow: {path}\nDisallow: {path}\n"),
            format!("User-agent: *\nAllow: {base}\nDisallow: {path}\n"),
        ] {
            let doc = parse(&body);
            let compiled = CompiledPolicy::compile(&doc);
            for probe in [path.as_str(), base.as_str(), "/", "/unrelated"] {
                assert_compiled_equiv(&doc, &compiled, "bot", probe);
            }
        }
    }

    #[test]
    fn compiled_agrees_on_utf8_spellings(
        seg in "[à-öø-ÿα-ωа-яぁ-ゖ一-鿋]{1,5}",
        probe in "[a-z0-9]{0,4}",
    ) {
        let raw_rule = format!("/wiki/{seg}");
        let encoded_rule: String = raw_rule
            .bytes()
            .map(|b| if b >= 0x80 { format!("%{b:02x}") } else { (b as char).to_string() })
            .collect();
        let raw_path = format!("/wiki/{seg}{probe}");
        let encoded_path: String = raw_path
            .bytes()
            .map(|b| if b >= 0x80 { format!("%{b:02X}") } else { (b as char).to_string() })
            .collect();
        for rule in [&raw_rule, &encoded_rule] {
            let doc = parse(&format!("User-agent: *\nDisallow: {rule}\n"));
            let compiled = CompiledPolicy::compile(&doc);
            for path in [&raw_path, &encoded_path] {
                assert_compiled_equiv(&doc, &compiled, "bot", path);
            }
            assert_compiled_equiv(&doc, &compiled, "bot", "/wiki-other");
        }
    }

    #[test]
    fn check_many_bitmask_agrees_with_single_checks(
        pats in prop::collection::vec(pattern_strategy(), 0..8),
        paths in prop::collection::vec(path_strategy(), 1..80),
        agent in "[a-z]{1,10}",
    ) {
        let mut body = String::from("User-agent: *\n");
        for (i, p) in pats.iter().enumerate() {
            let verb = if i % 2 == 0 { "Disallow" } else { "Allow" };
            body.push_str(&format!("{verb}: {p}\n"));
        }
        let compiled = CompiledPolicy::from_text(&body);
        let refs: Vec<&str> = paths.iter().map(String::as_str).collect();
        let mask = compiled.check_many(&agent, &refs);
        prop_assert_eq!(mask.len(), refs.len().div_ceil(64));
        for (i, path) in refs.iter().enumerate() {
            let bit = (mask[i / 64] >> (i % 64)) & 1 == 1;
            prop_assert_eq!(
                bit,
                compiled.check(&agent, path).allow,
                "path #{} {:?}", i, path
            );
        }
    }

    #[test]
    fn utf8_specificity_counts_encoded_octets(
        seg in "[à-öø-ÿぁ-ゖ]{1,4}",
    ) {
        // Specificity is measured on the normalized (percent-encoded)
        // text, so both spellings of one rule carry the same weight.
        let raw = format!("/{seg}");
        let encoded: String = raw
            .bytes()
            .map(|b| {
                if b >= 0x80 { format!("%{b:02X}") } else { (b as char).to_string() }
            })
            .collect();
        prop_assert_eq!(
            PathPattern::new(&raw).specificity(),
            PathPattern::new(&encoded).specificity()
        );
    }
}

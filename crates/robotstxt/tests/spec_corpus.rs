//! Specification-compatibility corpus.
//!
//! Data-driven cases from RFC 9309 and the documented interpretation of
//! the Google reference parser (the paper validated its experimental
//! files against that parser, §4.1). Each case runs through the full
//! parse → group-select → match stack.

use botscope_robotstxt::parser::parse;
use botscope_robotstxt::CompiledPolicy;

struct Case {
    name: &'static str,
    robots: &'static str,
    agent: &'static str,
    path: &'static str,
    allow: bool,
}

const CASES: &[Case] = &[
    // ---- Rule precedence (longest match, allow wins ties) ----
    Case {
        name: "specific allow beats general disallow",
        robots: "User-agent: *\nAllow: /p\nDisallow: /\n",
        agent: "bot",
        path: "/page",
        allow: true,
    },
    Case {
        name: "equal patterns tie to allow",
        robots: "User-agent: *\nAllow: /folder\nDisallow: /folder\n",
        agent: "bot",
        path: "/folder/page",
        allow: true,
    },
    Case {
        name: "longer disallow beats shorter allow",
        robots: "User-agent: *\nAllow: /page\nDisallow: /page.html\n",
        agent: "bot",
        path: "/page.html",
        allow: false,
    },
    Case {
        name: "root-anchored allow with global disallow: root allowed",
        robots: "User-agent: *\nAllow: /$\nDisallow: /\n",
        agent: "bot",
        path: "/",
        allow: true,
    },
    Case {
        name: "root-anchored allow with global disallow: page denied",
        robots: "User-agent: *\nAllow: /$\nDisallow: /\n",
        agent: "bot",
        path: "/page.htm",
        allow: false,
    },
    // ---- Wildcard semantics (Google's /fish examples) ----
    Case {
        name: "prefix matches subpaths",
        robots: "User-agent: *\nDisallow: /fish\n",
        agent: "bot",
        path: "/fish/salmon.html",
        allow: false,
    },
    Case {
        name: "prefix matches extended names",
        robots: "User-agent: *\nDisallow: /fish\n",
        agent: "bot",
        path: "/fishheads/yummy.html",
        allow: false,
    },
    Case {
        name: "path matching is case sensitive",
        robots: "User-agent: *\nDisallow: /fish\n",
        agent: "bot",
        path: "/Fish.asp",
        allow: true,
    },
    Case {
        name: "trailing slash restricts to directory",
        robots: "User-agent: *\nDisallow: /fish/\n",
        agent: "bot",
        path: "/fish",
        allow: true,
    },
    Case {
        name: "star matches interior segments",
        robots: "User-agent: *\nDisallow: /*.php\n",
        agent: "bot",
        path: "/folder/any.php.file.html",
        allow: false,
    },
    Case {
        name: "dollar anchors the end",
        robots: "User-agent: *\nDisallow: /*.php$\n",
        agent: "bot",
        path: "/filename.php?parameters",
        allow: true,
    },
    // ---- Group selection ----
    Case {
        name: "most specific group wins: news bot gets news group",
        robots: "User-agent: googlebot-news\nDisallow: /a/\n\nUser-agent: googlebot\nDisallow: /b/\n",
        agent: "Googlebot-News",
        path: "/b/page",
        allow: true,
    },
    Case {
        name: "most specific group wins: news bot bound by news group",
        robots: "User-agent: googlebot-news\nDisallow: /a/\n\nUser-agent: googlebot\nDisallow: /b/\n",
        agent: "Googlebot-News",
        path: "/a/page",
        allow: false,
    },
    Case {
        name: "generic bot falls back to generic group",
        robots: "User-agent: googlebot-news\nDisallow: /a/\n\nUser-agent: googlebot\nDisallow: /b/\n",
        agent: "Googlebot",
        path: "/b/page",
        allow: false,
    },
    Case {
        name: "unlisted bot without wildcard group is free",
        robots: "User-agent: googlebot\nDisallow: /\n",
        agent: "otherbot",
        path: "/anything",
        allow: true,
    },
    Case {
        name: "agent matching is case insensitive",
        robots: "User-agent: GOOGLEBOT\nDisallow: /private/\n",
        agent: "googlebot",
        path: "/private/x",
        allow: false,
    },
    Case {
        name: "groups with same agent merge",
        robots: "User-agent: a\nDisallow: /one\n\nUser-agent: b\nDisallow: /b\n\nUser-agent: a\nDisallow: /two\n",
        agent: "a",
        path: "/two/x",
        allow: false,
    },
    // ---- Multiple user agents per group ----
    Case {
        name: "second agent of a shared group is bound",
        robots: "User-agent: e\nUser-agent: f\nDisallow: /g\n",
        agent: "f",
        path: "/g/page",
        allow: false,
    },
    // ---- Defaults and implicit allowances ----
    Case {
        name: "no matching rule means allow",
        robots: "User-agent: *\nDisallow: /secret/\n",
        agent: "bot",
        path: "/public/page",
        allow: true,
    },
    Case {
        name: "empty disallow restricts nothing",
        robots: "User-agent: *\nDisallow:\n",
        agent: "bot",
        path: "/anything",
        allow: true,
    },
    Case {
        name: "robots.txt is implicitly fetchable",
        robots: "User-agent: *\nDisallow: /\n",
        agent: "bot",
        path: "/robots.txt",
        allow: true,
    },
    // ---- Percent encoding ----
    Case {
        name: "encoded and literal tilde compare equal",
        robots: "User-agent: *\nDisallow: /a%7Eb\n",
        agent: "bot",
        path: "/a~b",
        allow: false,
    },
    Case {
        name: "encoded slash stays distinct from literal slash",
        robots: "User-agent: *\nDisallow: /a%2Fb\n",
        agent: "bot",
        path: "/a/b",
        allow: true,
    },
    // ---- Tolerance ----
    Case {
        name: "directives are case insensitive",
        robots: "USER-AGENT: *\nDISALLOW: /x\n",
        agent: "bot",
        path: "/x/y",
        allow: false,
    },
    Case {
        name: "html garbage disables nothing",
        robots: "<!DOCTYPE html><html><body>not a robots file</body></html>",
        agent: "bot",
        path: "/anything",
        allow: true,
    },
    Case {
        name: "rules without a group are ignored",
        robots: "Disallow: /x\nUser-agent: *\nDisallow: /y\n",
        agent: "bot",
        path: "/x/page",
        allow: true,
    },
];

#[test]
fn spec_corpus() {
    let mut failures = Vec::new();
    for case in CASES {
        let doc = parse(case.robots);
        let got = doc.is_allowed(case.agent, case.path).allow;
        if got != case.allow {
            failures.push(format!(
                "{}: agent={} path={} expected {} got {}",
                case.name, case.agent, case.path, case.allow, got
            ));
        }
    }
    assert!(failures.is_empty(), "{} corpus failures:\n{}", failures.len(), failures.join("\n"));
}

/// Every spec case, replayed through the compiled automaton: the
/// verdict must match the corpus AND the full decision (winning rule,
/// agent group, crawl delay) must match the interpreted matcher.
#[test]
fn spec_corpus_compiled() {
    let mut failures = Vec::new();
    for case in CASES {
        let doc = parse(case.robots);
        let compiled = CompiledPolicy::compile(&doc);
        let interpreted = doc.is_allowed(case.agent, case.path);
        let automaton = compiled.check(case.agent, case.path);
        if automaton.allow != case.allow {
            failures.push(format!(
                "{}: compiled verdict {} != corpus {}",
                case.name, automaton.allow, case.allow
            ));
        }
        let rule = |d: &botscope_robotstxt::Decision<'_>| {
            d.matched_rule.map(|r| (r.verb, r.pattern.as_str().to_string()))
        };
        if rule(&automaton) != rule(&interpreted)
            || automaton.matched_agent != interpreted.matched_agent
        {
            failures.push(format!(
                "{}: compiled decision ({:?}, {:?}) != interpreted ({:?}, {:?})",
                case.name,
                rule(&automaton),
                automaton.matched_agent,
                rule(&interpreted),
                interpreted.matched_agent
            ));
        }
        if compiled.crawl_delay(case.agent) != doc.crawl_delay(case.agent) {
            failures.push(format!("{}: crawl delay disagrees", case.name));
        }
    }
    assert!(failures.is_empty(), "{} corpus failures:\n{}", failures.len(), failures.join("\n"));
}

#[test]
fn corpus_is_nontrivial() {
    assert!(CASES.len() >= 25, "corpus has {} cases", CASES.len());
    // Both outcomes are represented.
    assert!(CASES.iter().any(|c| c.allow));
    assert!(CASES.iter().any(|c| !c.allow));
}

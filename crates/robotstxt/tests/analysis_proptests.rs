//! Differential property tests for the static analyzer.
//!
//! Every analyzer verdict is witness-backed; these tests replay each
//! witness through the interpreted matcher ([`RobotsTxt::is_allowed`]),
//! the compiled automaton ([`CompiledPolicy::check`]), and the deviant
//! reference matchers, and pin the liveness verdicts against a
//! brute-force winner enumeration over sampled paths.

use botscope_robotstxt::analysis::{
    classify_change, divergence_hazards, reference, rule_liveness, semantic_diff, ChangeClass,
    DeviantModel, DiffVerdict, Liveness, RuleLiveness,
};
use botscope_robotstxt::parser::parse;
use botscope_robotstxt::pattern::{normalize_percent, PathPattern};
use botscope_robotstxt::{CompiledPolicy, RobotsTxt, Rule, RuleVerb};
use proptest::prelude::*;

/// Small pattern alphabet so shadowing, duplicates, and wildcard
/// interactions occur often within a few rules.
fn pattern_strategy() -> impl Strategy<Value = String> {
    proptest::string::string_regex("/[ab/.*]{0,8}\\$?").expect("valid regex")
}

fn path_strategy() -> impl Strategy<Value = String> {
    proptest::string::string_regex("/[ab/.]{0,10}").expect("valid regex")
}

type RuleSpec = (bool, String);

/// Render rule specs for one agent group.
fn render_group(out: &mut String, agent: &str, rules: &[RuleSpec]) {
    out.push_str("User-agent: ");
    out.push_str(agent);
    out.push('\n');
    for (allow, pattern) in rules {
        out.push_str(if *allow { "Allow: " } else { "Disallow: " });
        out.push_str(pattern);
        out.push('\n');
    }
}

/// A one- or two-group policy: a wildcard group, plus optionally a
/// named group for `alphabot`.
fn policy_strategy() -> impl Strategy<Value = String> {
    (
        prop::collection::vec((any::<bool>(), pattern_strategy()), 1..6),
        prop::option::of(prop::collection::vec((any::<bool>(), pattern_strategy()), 1..4)),
    )
        .prop_map(|(star, named)| {
            let mut text = String::new();
            render_group(&mut text, "*", &star);
            if let Some(rules) = named {
                text.push('\n');
                render_group(&mut text, "alphabot", &rules);
            }
            text
        })
}

/// A product token that resolves to the group named by the analyzer.
/// `zzqbot` shares no prefix with `alphabot`, so it falls through to
/// the wildcard group.
fn agent_for(group: &str) -> &str {
    if group == "*" {
        "zzqbot"
    } else {
        group
    }
}

/// Document-order rules of every group the token applies to — the rule
/// list the deviant reference matchers score.
fn rules_for<'a>(doc: &'a RobotsTxt, group: &str) -> Vec<&'a Rule> {
    doc.groups
        .iter()
        .filter(|g| g.user_agents.iter().any(|ua| ua == group))
        .flat_map(|g| g.rules.iter())
        .collect()
}

fn verb_allows(verb: RuleVerb) -> bool {
    verb == RuleVerb::Allow
}

/// Replay one liveness verdict against the interpreted and compiled
/// matchers.
fn replay_verdict(doc: &RobotsTxt, compiled: &CompiledPolicy, r: &RuleLiveness) {
    let agent = agent_for(&r.agent);
    match &r.verdict {
        Liveness::Alive { witness } => {
            // The witness is a real (normalization-stable) path on which
            // this exact rule text decides the outcome.
            prop_assert!(normalize_percent(witness) == *witness, "witness not normalized");
            let d = doc.is_allowed(agent, witness);
            let rule = d.matched_rule.unwrap_or_else(|| {
                panic!("alive witness {witness:?} decided by default allow for {r:?}")
            });
            prop_assert_eq!(rule.pattern.as_str(), r.pattern.as_str(), "witness {}", witness);
            prop_assert_eq!(rule.verb, r.verb);
            prop_assert_eq!(d.allow, verb_allows(r.verb));
            let c = compiled.check(agent, witness);
            prop_assert_eq!(c.allow, d.allow);
        }
        Liveness::Shadowed { witness, by } => {
            prop_assert!(normalize_percent(witness) == *witness, "witness not normalized");
            // The shadowed rule matches the witness, yet the decision
            // there is made by the named merged-rule index.
            prop_assert!(
                PathPattern::new(&r.pattern).matches(witness),
                "shadow witness must match the rule"
            );
            let d = doc.is_allowed(agent, witness);
            let winner = d
                .matched_rule
                .unwrap_or_else(|| panic!("shadow witness {witness:?} hit default allow: {r:?}"));
            let (_, view) = compiled
                .groups()
                .find(|(name, _)| *name == r.agent)
                .expect("verdict names a compiled group");
            let by_rule = &view.rules()[*by];
            prop_assert_eq!(winner.pattern.as_str(), by_rule.pattern.as_str(), "at {}", witness);
            prop_assert_eq!(winner.verb, by_rule.verb);
        }
        Liveness::RobotsTxtOnly => {
            // The carve-out: the only path the rule could decide is
            // always answered allow without consulting any rule.
            let d = doc.is_allowed(agent, "/robots.txt");
            prop_assert!(d.allow);
            prop_assert!(d.matched_rule.is_none());
        }
        Liveness::Unmatchable => {
            prop_assert!(!r.pattern.as_str().starts_with('/'));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Every liveness verdict replays: alive witnesses are decided by
    /// that rule, shadow witnesses by the named shadower.
    #[test]
    fn liveness_witnesses_replay(text in policy_strategy()) {
        let doc = parse(&text);
        let compiled = CompiledPolicy::compile(&doc);
        let (verdicts, _complete) = rule_liveness(&compiled);
        for r in &verdicts {
            replay_verdict(&doc, &compiled, r);
        }
    }

    /// Brute force over sampled paths: any rule that ever wins a
    /// decision must have been verdicted Alive.
    #[test]
    fn brute_force_winners_are_alive(
        text in policy_strategy(),
        paths in prop::collection::vec(path_strategy(), 1..40),
    ) {
        let doc = parse(&text);
        let compiled = CompiledPolicy::compile(&doc);
        let (verdicts, complete) = rule_liveness(&compiled);
        if !complete {
            return;
        }
        for group in ["*", "alphabot"] {
            let agent = agent_for(group);
            for path in &paths {
                let d = doc.is_allowed(agent, path);
                let Some(rule) = d.matched_rule else { continue };
                let Some(winner_group) = d.matched_agent else { continue };
                let alive = verdicts.iter().any(|r| {
                    r.agent == winner_group
                        && r.verb == rule.verb
                        && r.pattern.as_str() == rule.pattern.as_str()
                        && matches!(r.verdict, Liveness::Alive { .. })
                });
                prop_assert!(
                    alive,
                    "winner {:?} {:?} at {path:?} has no Alive verdict",
                    rule.verb,
                    rule.pattern.as_str()
                );
            }
        }
    }

    /// Semantic diff is sound both ways: Equivalent policies decide every
    /// sampled probe identically; a Diverges verdict replays exactly.
    #[test]
    fn semantic_diff_matches_decisions(
        left in policy_strategy(),
        right in policy_strategy(),
        paths in prop::collection::vec(path_strategy(), 1..30),
    ) {
        let l = CompiledPolicy::compile(&parse(&left));
        let r = CompiledPolicy::compile(&parse(&right));
        match semantic_diff(&l, &r).verdict {
            DiffVerdict::Equivalent => {
                for agent in ["zzqbot", "alphabot"] {
                    for path in &paths {
                        prop_assert_eq!(
                            l.check(agent, path).allow,
                            r.check(agent, path).allow,
                            "Equivalent but differ at agent={} path={}",
                            agent,
                            path
                        );
                    }
                }
            }
            DiffVerdict::Diverges(d) => {
                prop_assert_eq!(l.check(&d.agent, &d.path).allow, d.left_allow);
                prop_assert_eq!(r.check(&d.agent, &d.path).allow, d.right_allow);
                prop_assert_ne!(d.left_allow, d.right_allow);
                prop_assert!(normalize_percent(&d.path) == d.path);
            }
            DiffVerdict::Inconclusive => {}
        }
    }

    /// The diff is reflexive, and a comment/blank-line edit is always
    /// classified Cosmetic.
    #[test]
    fn cosmetic_edits_classify_cosmetic(text in policy_strategy()) {
        let doc = parse(&text);
        let compiled = CompiledPolicy::compile(&doc);
        let diff = semantic_diff(&compiled, &compiled);
        prop_assert_eq!(diff.verdict, DiffVerdict::Equivalent);
        prop_assert!(diff.delay_changes.is_empty());

        let edited = format!("# mirrored by example.edu\n\n{text}\n# end of policy\n");
        prop_assert_eq!(classify_change(&doc, &parse(&edited)), ChangeClass::Cosmetic);
    }

    /// Every divergence hazard replays through the deviant reference
    /// matcher it names, and genuinely disagrees with RFC 9309.
    #[test]
    fn hazard_witnesses_replay(text in policy_strategy()) {
        let doc = parse(&text);
        let compiled = CompiledPolicy::compile(&doc);
        let (hazards, _complete) = divergence_hazards(&compiled);
        for h in &hazards {
            prop_assert!(normalize_percent(&h.path) == h.path, "witness not normalized");
            prop_assert_ne!(h.rfc_allow, h.deviant_allow);

            let agent = agent_for(&h.agent);
            prop_assert_eq!(
                doc.is_allowed(agent, &h.path).allow,
                h.rfc_allow,
                "rfc replay failed for {:?}",
                h
            );
            prop_assert_eq!(compiled.check(agent, &h.path).allow, h.rfc_allow);

            let rules: Vec<Rule> =
                rules_for(&doc, &h.agent).into_iter().cloned().collect();
            prop_assert_eq!(reference::rfc_allow(&rules, &h.path), h.rfc_allow);
            let deviant = match h.model {
                DeviantModel::FirstMatch => reference::first_match_allow(&rules, &h.path),
                DeviantModel::WildcardUnaware => {
                    reference::wildcard_unaware_allow(&rules, &h.path)
                }
                DeviantModel::DollarLiteral => reference::dollar_literal_allow(&rules, &h.path),
            };
            prop_assert_eq!(deviant, h.deviant_allow, "deviant replay failed for {:?}", h);
        }
    }

    /// Trie fast path and NFA walk agree on every wildcard-free policy:
    /// same verdict kind per rule, and both witnesses replay.
    #[test]
    fn trie_and_walk_agree_on_wildcard_free_policies(
        rules in prop::collection::vec(
            (any::<bool>(), proptest::string::string_regex("/[ab/.]{0,8}\\$?").unwrap()),
            1..6,
        ),
    ) {
        let mut text = String::new();
        render_group(&mut text, "*", &rules);
        let doc = parse(&text);
        let compiled = CompiledPolicy::compile(&doc);
        let (trie, trie_complete) = rule_liveness(&compiled);
        let (walk, walk_complete) =
            botscope_robotstxt::analysis::rule_liveness_forced(&compiled, true);
        prop_assert!(trie_complete && walk_complete);
        prop_assert_eq!(trie.len(), walk.len());
        for (t, w) in trie.iter().zip(&walk) {
            prop_assert_eq!(
                std::mem::discriminant(&t.verdict),
                std::mem::discriminant(&w.verdict),
                "trie={:?} walk={:?}",
                t,
                w
            );
            replay_verdict(&doc, &compiled, t);
            replay_verdict(&doc, &compiled, w);
        }
    }
}

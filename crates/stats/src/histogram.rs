//! Fixed-width histograms.
//!
//! Used by the bench harness for latency/throughput shape reporting and by
//! the ablation benches (e.g. the sessionization-gap sweep).

/// A histogram with fixed-width bins over `[lo, hi)` plus underflow and
/// overflow counters.
#[derive(Debug, Clone)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    underflow: u64,
    overflow: u64,
    count: u64,
}

impl Histogram {
    /// Create a histogram over `[lo, hi)` with `nbins` equal-width bins.
    ///
    /// # Panics
    /// Panics if `nbins == 0`, `lo >= hi`, or either bound is non-finite.
    pub fn new(lo: f64, hi: f64, nbins: usize) -> Self {
        assert!(nbins > 0, "histogram needs at least one bin");
        assert!(lo.is_finite() && hi.is_finite() && lo < hi, "bad range [{lo}, {hi})");
        Self { lo, hi, bins: vec![0; nbins], underflow: 0, overflow: 0, count: 0 }
    }

    /// Record one observation.
    pub fn record(&mut self, x: f64) {
        self.count += 1;
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let width = (self.hi - self.lo) / self.bins.len() as f64;
            let idx = ((x - self.lo) / width) as usize;
            // Guard against floating-point edge landing exactly on len().
            let idx = idx.min(self.bins.len() - 1);
            self.bins[idx] += 1;
        }
    }

    /// Total number of recorded observations, including under/overflow.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Observations below the range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Observations at or above the upper bound.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Per-bin counts.
    pub fn bins(&self) -> &[u64] {
        &self.bins
    }

    /// `(bin_center, count)` pairs for plotting.
    pub fn centers(&self) -> Vec<(f64, u64)> {
        let width = (self.hi - self.lo) / self.bins.len() as f64;
        self.bins
            .iter()
            .enumerate()
            .map(|(i, &c)| (self.lo + width * (i as f64 + 0.5), c))
            .collect()
    }

    /// Render a compact single-line sparkline (for bench logs).
    pub fn sparkline(&self) -> String {
        const GLYPHS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
        let max = self.bins.iter().copied().max().unwrap_or(0);
        if max == 0 {
            return "▁".repeat(self.bins.len());
        }
        self.bins
            .iter()
            .map(|&c| {
                let idx = (c as f64 / max as f64 * (GLYPHS.len() - 1) as f64).round() as usize;
                GLYPHS[idx]
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_land_in_correct_bins() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        h.record(0.0);
        h.record(0.5);
        h.record(9.99);
        h.record(5.0);
        assert_eq!(h.bins()[0], 2);
        assert_eq!(h.bins()[9], 1);
        assert_eq!(h.bins()[5], 1);
        assert_eq!(h.count(), 4);
    }

    #[test]
    fn under_and_overflow() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        h.record(-0.1);
        h.record(1.0); // hi is exclusive
        h.record(55.0);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.bins().iter().sum::<u64>(), 0);
        assert_eq!(h.count(), 3);
    }

    #[test]
    fn centers_are_midpoints() {
        let h = Histogram::new(0.0, 4.0, 4);
        let centers: Vec<f64> = h.centers().iter().map(|&(c, _)| c).collect();
        assert_eq!(centers, vec![0.5, 1.5, 2.5, 3.5]);
    }

    #[test]
    fn sparkline_length_matches_bins() {
        let mut h = Histogram::new(0.0, 1.0, 8);
        for i in 0..100 {
            h.record(i as f64 / 100.0);
        }
        assert_eq!(h.sparkline().chars().count(), 8);
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn zero_bins_panics() {
        let _ = Histogram::new(0.0, 1.0, 0);
    }

    #[test]
    #[should_panic(expected = "bad range")]
    fn inverted_range_panics() {
        let _ = Histogram::new(2.0, 1.0, 4);
    }
}

//! Descriptive statistics: means, weighted means, variance, percentiles.
//!
//! The study's Table 5 aggregates per-bot compliance ratios into category
//! scores with an *access-weighted* average ("we weight the average by
//! number of accesses from a particular bot"); [`weighted_mean`] and
//! [`WeightedMeanAccumulator`] implement that exact computation.

/// Arithmetic mean of a slice. Returns `None` for an empty slice.
pub fn mean(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() {
        return None;
    }
    Some(xs.iter().sum::<f64>() / xs.len() as f64)
}

/// Population variance. Returns `None` for an empty slice.
pub fn variance(xs: &[f64]) -> Option<f64> {
    let m = mean(xs)?;
    Some(xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64)
}

/// Population standard deviation. Returns `None` for an empty slice.
pub fn stddev(xs: &[f64]) -> Option<f64> {
    variance(xs).map(f64::sqrt)
}

/// Weighted mean of `(value, weight)` pairs.
///
/// Returns `None` when the total weight is zero (including the empty case).
/// Negative weights are a caller logic error and panic.
///
/// ```
/// use botscope_stats::describe::weighted_mean;
/// // Two bots: one complies 100% but was seen 10 times, one complies 0%
/// // and was seen 990 times. The category score is dominated by the
/// // common bot, exactly as in the paper's Table 5.
/// let m = weighted_mean(&[(1.0, 10.0), (0.0, 990.0)]).unwrap();
/// assert!((m - 0.01).abs() < 1e-12);
/// ```
pub fn weighted_mean(pairs: &[(f64, f64)]) -> Option<f64> {
    let mut acc = WeightedMeanAccumulator::new();
    for &(v, w) in pairs {
        acc.add(v, w);
    }
    acc.finish()
}

/// Streaming weighted-mean accumulator.
///
/// Useful when per-bot compliance ratios are produced incrementally by the
/// pipeline rather than collected up front.
#[derive(Debug, Default, Clone, Copy)]
pub struct WeightedMeanAccumulator {
    sum: f64,
    weight: f64,
}

impl WeightedMeanAccumulator {
    /// New, empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one observation with the given weight.
    ///
    /// # Panics
    /// Panics if `weight` is negative or not finite.
    pub fn add(&mut self, value: f64, weight: f64) {
        assert!(weight >= 0.0 && weight.is_finite(), "invalid weight {weight}");
        self.sum += value * weight;
        self.weight += weight;
    }

    /// Total accumulated weight.
    pub fn total_weight(&self) -> f64 {
        self.weight
    }

    /// The weighted mean, or `None` if the total weight is zero.
    pub fn finish(&self) -> Option<f64> {
        if self.weight > 0.0 {
            Some(self.sum / self.weight)
        } else {
            None
        }
    }
}

/// Percentile via linear interpolation between closest ranks
/// (the "exclusive" definition used by most spreadsheet software).
///
/// `q` must be in `[0, 1]`. Returns `None` for an empty slice. The input
/// does not need to be sorted.
///
/// ```
/// use botscope_stats::describe::percentile;
/// let xs = [4.0, 1.0, 3.0, 2.0];
/// assert_eq!(percentile(&xs, 0.0), Some(1.0));
/// assert_eq!(percentile(&xs, 1.0), Some(4.0));
/// assert_eq!(percentile(&xs, 0.5), Some(2.5));
/// ```
pub fn percentile(xs: &[f64], q: f64) -> Option<f64> {
    if xs.is_empty() {
        return None;
    }
    assert!((0.0..=1.0).contains(&q), "quantile {q} outside [0,1]");
    let mut sorted: Vec<f64> = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in percentile input"));
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        return Some(sorted[lo]);
    }
    let frac = pos - lo as f64;
    Some(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_basic() {
        assert_eq!(mean(&[]), None);
        assert_eq!(mean(&[2.0]), Some(2.0));
        assert_eq!(mean(&[1.0, 2.0, 3.0]), Some(2.0));
    }

    #[test]
    fn variance_and_stddev() {
        assert_eq!(variance(&[]), None);
        assert_eq!(variance(&[5.0]), Some(0.0));
        let v = variance(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]).unwrap();
        assert!((v - 4.0).abs() < 1e-12);
        assert!((stddev(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]).unwrap() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn weighted_mean_reduces_to_mean_with_equal_weights() {
        let xs = [0.3, 0.8, 0.5, 0.1];
        let pairs: Vec<(f64, f64)> = xs.iter().map(|&x| (x, 7.0)).collect();
        assert!((weighted_mean(&pairs).unwrap() - mean(&xs).unwrap()).abs() < 1e-12);
    }

    #[test]
    fn weighted_mean_zero_weight_is_none() {
        assert_eq!(weighted_mean(&[]), None);
        assert_eq!(weighted_mean(&[(0.5, 0.0), (0.9, 0.0)]), None);
    }

    #[test]
    fn zero_weight_entries_are_ignored() {
        let m = weighted_mean(&[(1000.0, 0.0), (0.25, 4.0)]).unwrap();
        assert!((m - 0.25).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "invalid weight")]
    fn negative_weight_panics() {
        let mut acc = WeightedMeanAccumulator::new();
        acc.add(0.5, -1.0);
    }

    #[test]
    fn accumulator_matches_batch() {
        let pairs = [(0.1, 3.0), (0.9, 1.0), (0.4, 6.0)];
        let mut acc = WeightedMeanAccumulator::new();
        for &(v, w) in &pairs {
            acc.add(v, w);
        }
        assert_eq!(acc.finish(), weighted_mean(&pairs));
        assert!((acc.total_weight() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn percentile_interpolation() {
        let xs = [10.0, 20.0, 30.0, 40.0];
        assert_eq!(percentile(&xs, 0.25), Some(17.5));
        assert_eq!(percentile(&xs, 0.75), Some(32.5));
        assert_eq!(percentile(&[], 0.5), None);
    }

    #[test]
    fn percentile_unsorted_input() {
        let xs = [40.0, 10.0, 30.0, 20.0];
        assert_eq!(percentile(&xs, 0.5), Some(25.0));
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn percentile_rejects_bad_quantile() {
        let _ = percentile(&[1.0], 1.5);
    }
}

//! Wilson score confidence intervals for proportions.
//!
//! The paper reports point compliance ratios; several of its per-bot cells
//! rest on a handful of observations. The Wilson interval quantifies that
//! uncertainty and behaves well at the extremes (ratio 0 or 1, small n),
//! unlike the naive normal interval. Used by the extension reports and the
//! ablation benches.

use crate::normal::normal_quantile;

/// A confidence interval for a proportion.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProportionCi {
    /// Point estimate `x / n`.
    pub estimate: f64,
    /// Lower bound.
    pub lo: f64,
    /// Upper bound.
    pub hi: f64,
    /// Confidence level used (e.g. 0.95).
    pub confidence: f64,
}

impl ProportionCi {
    /// Interval width.
    pub fn width(&self) -> f64 {
        self.hi - self.lo
    }

    /// Whether a hypothesised proportion is inside the interval.
    pub fn contains(&self, p: f64) -> bool {
        (self.lo..=self.hi).contains(&p)
    }
}

/// Wilson score interval for `x` successes in `n` trials at the given
/// confidence level. Returns `None` when `n == 0`.
///
/// # Panics
/// Panics if `x > n` or `confidence` is outside `(0, 1)`.
///
/// ```
/// use botscope_stats::ci::wilson;
/// let ci = wilson(8, 10, 0.95).unwrap();
/// assert!((ci.estimate - 0.8).abs() < 1e-12);
/// assert!(ci.lo > 0.4 && ci.hi < 1.0);
/// // Degenerate cases stay inside [0, 1].
/// let zero = wilson(0, 5, 0.95).unwrap();
/// assert_eq!(zero.lo, 0.0);
/// assert!(zero.hi > 0.0 && zero.hi < 1.0);
/// ```
pub fn wilson(x: u64, n: u64, confidence: f64) -> Option<ProportionCi> {
    assert!(x <= n, "x={x} exceeds n={n}");
    assert!(confidence > 0.0 && confidence < 1.0, "bad confidence {confidence}");
    if n == 0 {
        return None;
    }
    let z = normal_quantile(0.5 + confidence / 2.0);
    let nf = n as f64;
    let p = x as f64 / nf;
    let z2 = z * z;
    let denom = 1.0 + z2 / nf;
    let center = (p + z2 / (2.0 * nf)) / denom;
    let half = (z / denom) * (p * (1.0 - p) / nf + z2 / (4.0 * nf * nf)).sqrt();
    // Exact bounds at the degenerate corners: with zero successes the
    // lower bound is 0 by definition (floating-point residue otherwise
    // leaves ~1e-17), and symmetrically for all-successes.
    let lo = if x == 0 { 0.0 } else { (center - half).max(0.0) };
    let hi = if x == n { 1.0 } else { (center + half).min(1.0) };
    Some(ProportionCi { estimate: p, lo, hi, confidence })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn textbook_value() {
        // Classic example: 10/20 at 95% → ≈ (0.299, 0.701).
        let ci = wilson(10, 20, 0.95).unwrap();
        assert!((ci.lo - 0.299).abs() < 5e-3, "lo={}", ci.lo);
        assert!((ci.hi - 0.701).abs() < 5e-3, "hi={}", ci.hi);
        assert!(ci.contains(0.5));
        assert!(!ci.contains(0.9));
    }

    #[test]
    fn zero_trials_is_none() {
        assert!(wilson(0, 0, 0.95).is_none());
    }

    #[test]
    fn extremes_stay_bounded() {
        let all = wilson(10, 10, 0.95).unwrap();
        assert_eq!(all.hi, 1.0);
        assert!(all.lo > 0.6 && all.lo < 1.0);
        let none = wilson(0, 10, 0.95).unwrap();
        assert_eq!(none.lo, 0.0);
        assert!(none.hi < 0.35);
    }

    #[test]
    fn more_data_narrows() {
        let small = wilson(5, 10, 0.95).unwrap();
        let large = wilson(500, 1000, 0.95).unwrap();
        assert!(large.width() < small.width());
    }

    #[test]
    fn higher_confidence_widens() {
        let c90 = wilson(5, 10, 0.90).unwrap();
        let c99 = wilson(5, 10, 0.99).unwrap();
        assert!(c99.width() > c90.width());
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn impossible_counts_panic() {
        let _ = wilson(11, 10, 0.95);
    }
}

//! Normal-distribution functions: error function, CDF, PDF and quantile.
//!
//! The study's statistical machinery (paper §4.2) reduces every compliance
//! comparison to a z-score, which is converted to a p-value through the
//! standard normal CDF. We implement the error function with the
//! Abramowitz & Stegun 7.1.26 rational approximation (absolute error
//! ≤ 1.5e-7), which is far below the precision any of the paper's reported
//! p-values require, and a quantile function using the Acklam/Wichura-style
//! rational approximation refined with one Halley step.

/// The error function `erf(x)`.
///
/// Uses the Abramowitz & Stegun 7.1.26 approximation; the absolute error is
/// below `1.5e-7` over the whole real line. `erf` is odd: `erf(-x) ==
/// -erf(x)`.
///
/// ```
/// use botscope_stats::normal::erf;
/// assert!(erf(0.0).abs() < 1e-7);
/// assert!((erf(1.0) - 0.8427007929).abs() < 1e-6);
/// assert!((erf(-1.0) + 0.8427007929).abs() < 1e-6);
/// ```
pub fn erf(x: f64) -> f64 {
    // A&S 7.1.26 constants.
    const A1: f64 = 0.254829592;
    const A2: f64 = -0.284496736;
    const A3: f64 = 1.421413741;
    const A4: f64 = -1.453152027;
    const A5: f64 = 1.061405429;
    const P: f64 = 0.3275911;

    if x.is_nan() {
        return f64::NAN;
    }
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();

    let t = 1.0 / (1.0 + P * x);
    let y = 1.0 - (((((A5 * t + A4) * t) + A3) * t + A2) * t + A1) * t * (-x * x).exp();
    sign * y
}

/// The complementary error function `erfc(x) = 1 - erf(x)`.
///
/// For large positive `x`, computing `1 - erf(x)` directly loses all
/// precision; we instead evaluate the exponential tail expression, which
/// keeps p-values meaningful out to `z ≈ 26` (beyond which they underflow to
/// zero, matching the paper's `0.00e+00` entries in Table 10).
pub fn erfc(x: f64) -> f64 {
    if x.is_nan() {
        return f64::NAN;
    }
    if x < 0.0 {
        return 2.0 - erfc(-x);
    }
    // Same A&S kernel, but keeping the tail factored so it underflows
    // gracefully instead of catastrophically cancelling.
    const A1: f64 = 0.254829592;
    const A2: f64 = -0.284496736;
    const A3: f64 = 1.421413741;
    const A4: f64 = -1.453152027;
    const A5: f64 = 1.061405429;
    const P: f64 = 0.3275911;

    let t = 1.0 / (1.0 + P * x);
    (((((A5 * t + A4) * t) + A3) * t + A2) * t + A1) * t * (-x * x).exp()
}

/// Standard normal probability density function.
pub fn normal_pdf(x: f64) -> f64 {
    const INV_SQRT_2PI: f64 = 0.398_942_280_401_432_7;
    INV_SQRT_2PI * (-0.5 * x * x).exp()
}

/// Standard normal cumulative distribution function `Φ(x)`.
///
/// ```
/// use botscope_stats::normal::normal_cdf;
/// assert!((normal_cdf(0.0) - 0.5).abs() < 1e-9);
/// assert!((normal_cdf(1.96) - 0.975).abs() < 1e-3);
/// ```
pub fn normal_cdf(x: f64) -> f64 {
    0.5 * erfc(-x / std::f64::consts::SQRT_2)
}

/// Upper-tail probability `P(Z > x) = 1 - Φ(x)`, computed without
/// cancellation for large `x`.
pub fn normal_sf(x: f64) -> f64 {
    0.5 * erfc(x / std::f64::consts::SQRT_2)
}

/// Standard normal quantile function (inverse CDF).
///
/// Implemented with Peter Acklam's rational approximation, refined with a
/// single Halley iteration; relative error is below `1e-9` for
/// `p ∈ (1e-300, 1 - 1e-16)`.
///
/// Returns `f64::NEG_INFINITY` for `p <= 0` and `f64::INFINITY` for
/// `p >= 1`.
///
/// ```
/// use botscope_stats::normal::{normal_cdf, normal_quantile};
/// let z = normal_quantile(0.975);
/// assert!((z - 1.959964).abs() < 1e-5);
/// assert!((normal_cdf(z) - 0.975).abs() < 1e-9);
/// ```
pub fn normal_quantile(p: f64) -> f64 {
    if p.is_nan() {
        return f64::NAN;
    }
    if p <= 0.0 {
        return f64::NEG_INFINITY;
    }
    if p >= 1.0 {
        return f64::INFINITY;
    }

    // Acklam's coefficients.
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.383_577_518_672_69e2,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;

    let x = if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    };

    // One Halley refinement step against the high-accuracy CDF.
    let e = normal_cdf(x) - p;
    let u = e * std::f64::consts::TAU.sqrt() * (x * x / 2.0).exp();
    x - u / (1.0 + x * u / 2.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erf_known_values() {
        // Reference values from standard tables.
        let cases = [
            (0.0, 0.0),
            (0.5, 0.5204998778),
            (1.0, 0.8427007929),
            (1.5, 0.9661051465),
            (2.0, 0.9953222650),
            (3.0, 0.9999779095),
        ];
        for (x, want) in cases {
            assert!((erf(x) - want).abs() < 2e-7, "erf({x}) = {} want {want}", erf(x));
            assert!((erf(-x) + want).abs() < 2e-7, "erf(-{x})");
        }
    }

    #[test]
    fn erfc_is_complement_in_moderate_range() {
        for i in -40..=40 {
            let x = i as f64 / 10.0;
            assert!((erfc(x) - (1.0 - erf(x))).abs() < 1e-12, "x={x}");
        }
    }

    #[test]
    fn erfc_tail_does_not_cancel() {
        // 1 - erf(6.0) would be 0 in f64 via direct subtraction with our
        // approximation; erfc keeps a nonzero tail.
        let t = erfc(6.0);
        assert!(t > 0.0);
        assert!(t < 1e-15);
    }

    #[test]
    fn cdf_symmetry() {
        for i in 0..50 {
            let x = i as f64 / 7.0;
            let s = normal_cdf(x) + normal_cdf(-x);
            assert!((s - 1.0).abs() < 1e-9, "x={x} sum={s}");
        }
    }

    #[test]
    fn cdf_known_values() {
        assert!((normal_cdf(1.644854) - 0.95).abs() < 1e-4);
        assert!((normal_cdf(2.326348) - 0.99).abs() < 1e-4);
        assert!((normal_cdf(-1.959964) - 0.025).abs() < 1e-4);
    }

    #[test]
    fn quantile_roundtrip() {
        for i in 1..200 {
            let p = i as f64 / 200.0;
            let z = normal_quantile(p);
            assert!((normal_cdf(z) - p).abs() < 1e-7, "p={p} z={z}");
        }
    }

    #[test]
    fn quantile_extremes() {
        assert_eq!(normal_quantile(0.0), f64::NEG_INFINITY);
        assert_eq!(normal_quantile(1.0), f64::INFINITY);
        assert!(normal_quantile(1e-12) < -6.0);
        assert!(normal_quantile(1.0 - 1e-12) > 6.0);
    }

    #[test]
    fn pdf_peak_and_symmetry() {
        assert!((normal_pdf(0.0) - 0.3989422804).abs() < 1e-9);
        assert!((normal_pdf(1.3) - normal_pdf(-1.3)).abs() < 1e-15);
    }

    #[test]
    fn sf_matches_one_minus_cdf() {
        // Tolerance is bounded by the A&S kernel's own absolute error
        // (1.5e-7), not by floating-point rounding.
        for i in -30..=30 {
            let x = i as f64 / 10.0;
            assert!((normal_sf(x) - (1.0 - normal_cdf(x))).abs() < 1.5e-7);
        }
    }

    #[test]
    fn nan_propagates() {
        assert!(erf(f64::NAN).is_nan());
        assert!(erfc(f64::NAN).is_nan());
        assert!(normal_quantile(f64::NAN).is_nan());
    }
}

//! Empirical cumulative distribution functions.
//!
//! Two flavours are needed by the study:
//!
//! * [`Ecdf`] — the ordinary ECDF over a sample of values, used by the
//!   benches and ablations.
//! * [`TimeSeriesCdf`] — the cumulative *share over time* plot in the
//!   paper's Figure 3: for each bot category, the fraction of its total
//!   bytes that had been downloaded by each date. This is a CDF over the
//!   time axis with byte weights.

/// Ordinary empirical CDF over a sample.
#[derive(Debug, Clone)]
pub struct Ecdf {
    sorted: Vec<f64>,
}

impl Ecdf {
    /// Build an ECDF from a sample. NaN values are rejected.
    ///
    /// # Panics
    /// Panics if the sample contains NaN.
    pub fn new(mut sample: Vec<f64>) -> Self {
        assert!(sample.iter().all(|x| !x.is_nan()), "NaN in ECDF sample");
        sample.sort_by(|a, b| a.partial_cmp(b).unwrap());
        Self { sorted: sample }
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Whether the sample is empty.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// `F(x)`: the fraction of observations `<= x`. Returns 0 for an empty
    /// sample.
    ///
    /// ```
    /// use botscope_stats::ecdf::Ecdf;
    /// let e = Ecdf::new(vec![1.0, 2.0, 3.0, 4.0]);
    /// assert_eq!(e.eval(0.5), 0.0);
    /// assert_eq!(e.eval(2.0), 0.5);
    /// assert_eq!(e.eval(9.0), 1.0);
    /// ```
    pub fn eval(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        // partition_point: number of elements <= x.
        let k = self.sorted.partition_point(|&v| v <= x);
        k as f64 / self.sorted.len() as f64
    }

    /// The step points of the ECDF as `(value, cumulative_fraction)` pairs,
    /// deduplicated on the value axis (each distinct value appears once with
    /// its final cumulative height).
    pub fn steps(&self) -> Vec<(f64, f64)> {
        let n = self.sorted.len();
        let mut out: Vec<(f64, f64)> = Vec::new();
        for (i, &v) in self.sorted.iter().enumerate() {
            let frac = (i + 1) as f64 / n as f64;
            match out.last_mut() {
                Some(last) if last.0 == v => last.1 = frac,
                _ => out.push((v, frac)),
            }
        }
        out
    }
}

/// Cumulative share of a weighted quantity over time (paper Figure 3).
///
/// Observations are `(timestamp, weight)` pairs — in the study, the
/// timestamp of a scraping session and the bytes it downloaded. The series
/// produced is the running fraction of the eventual total, evaluated at
/// fixed time buckets (e.g. one per day).
#[derive(Debug, Clone, Default)]
pub struct TimeSeriesCdf {
    /// (timestamp, weight), unsorted until evaluation.
    points: Vec<(u64, f64)>,
}

impl TimeSeriesCdf {
    /// New empty series.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add an observation with `weight` at `time`.
    ///
    /// # Panics
    /// Panics on negative or non-finite weights.
    pub fn add(&mut self, time: u64, weight: f64) {
        assert!(weight >= 0.0 && weight.is_finite(), "invalid weight {weight}");
        self.points.push((time, weight));
    }

    /// Total accumulated weight.
    pub fn total(&self) -> f64 {
        self.points.iter().map(|&(_, w)| w).sum()
    }

    /// Number of observations added.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether any observation has been added.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Evaluate the cumulative fraction at each bucket boundary.
    ///
    /// `bucket_edges` must be ascending timestamps; the result has the same
    /// length, where entry `i` is the fraction of total weight observed at
    /// or before `bucket_edges[i]`. An empty series yields all zeros.
    ///
    /// ```
    /// use botscope_stats::ecdf::TimeSeriesCdf;
    /// let mut s = TimeSeriesCdf::new();
    /// s.add(10, 1.0);
    /// s.add(20, 3.0);
    /// let curve = s.curve(&[5, 10, 15, 20, 25]);
    /// assert_eq!(curve, vec![0.0, 0.25, 0.25, 1.0, 1.0]);
    /// ```
    pub fn curve(&self, bucket_edges: &[u64]) -> Vec<f64> {
        assert!(bucket_edges.windows(2).all(|w| w[0] <= w[1]), "bucket edges must be ascending");
        let total = self.total();
        if total <= 0.0 {
            return vec![0.0; bucket_edges.len()];
        }
        let mut sorted = self.points.clone();
        sorted.sort_by_key(|&(t, _)| t);
        let mut out = Vec::with_capacity(bucket_edges.len());
        let mut acc = 0.0;
        let mut i = 0;
        for &edge in bucket_edges {
            while i < sorted.len() && sorted[i].0 <= edge {
                acc += sorted[i].1;
                i += 1;
            }
            out.push(acc / total);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ecdf_bounds() {
        let e = Ecdf::new(vec![3.0, 1.0, 2.0]);
        assert_eq!(e.eval(f64::NEG_INFINITY), 0.0);
        assert_eq!(e.eval(f64::INFINITY), 1.0);
        assert_eq!(e.len(), 3);
    }

    #[test]
    fn ecdf_monotone() {
        let e = Ecdf::new(vec![5.0, 3.0, 3.0, 8.0, 1.0]);
        let mut prev = 0.0;
        for i in 0..100 {
            let x = i as f64 / 10.0;
            let y = e.eval(x);
            assert!(y >= prev, "ECDF must be nondecreasing");
            prev = y;
        }
    }

    #[test]
    fn ecdf_empty() {
        let e = Ecdf::new(vec![]);
        assert!(e.is_empty());
        assert_eq!(e.eval(1.0), 0.0);
        assert!(e.steps().is_empty());
    }

    #[test]
    fn ecdf_steps_dedup_ties() {
        let e = Ecdf::new(vec![1.0, 1.0, 2.0]);
        let steps = e.steps();
        assert_eq!(steps.len(), 2);
        assert!((steps[0].1 - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(steps[1], (2.0, 1.0));
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn ecdf_rejects_nan() {
        let _ = Ecdf::new(vec![1.0, f64::NAN]);
    }

    #[test]
    fn timeseries_cdf_basic() {
        let mut s = TimeSeriesCdf::new();
        s.add(100, 2.0);
        s.add(50, 2.0);
        s.add(150, 4.0);
        assert_eq!(s.total(), 8.0);
        let curve = s.curve(&[0, 50, 100, 150, 200]);
        assert_eq!(curve, vec![0.0, 0.25, 0.5, 1.0, 1.0]);
    }

    #[test]
    fn timeseries_empty_is_flat_zero() {
        let s = TimeSeriesCdf::new();
        assert_eq!(s.curve(&[1, 2, 3]), vec![0.0, 0.0, 0.0]);
    }

    #[test]
    fn timeseries_curve_reaches_one() {
        let mut s = TimeSeriesCdf::new();
        for t in 0..20 {
            s.add(t, 1.5);
        }
        let curve = s.curve(&[19]);
        assert!((curve[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "ascending")]
    fn timeseries_rejects_unsorted_edges() {
        let mut s = TimeSeriesCdf::new();
        s.add(1, 1.0);
        let _ = s.curve(&[10, 5]);
    }
}

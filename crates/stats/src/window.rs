//! Time-window coverage analysis (paper §5.1, Figure 10).
//!
//! To measure how often a bot re-checks `robots.txt`, the paper segments a
//! bot's access log "into variable length time windows (12hrs, 24hrs, 48hrs,
//! 72hrs, 168hrs) starting from when the bot first accessed any of these
//! robots.txt files", then reports the bot as complying with a window length
//! if **every** window of that length contains at least one robots.txt
//! access. [`window_coverage`] implements that exact rule.

/// Result of segmenting one bot's robots.txt accesses into fixed windows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowCoverage {
    /// Window length in seconds.
    pub window_secs: u64,
    /// Total number of windows between the first access and `horizon_end`.
    pub total_windows: u64,
    /// Number of windows containing at least one access.
    pub covered_windows: u64,
}

impl WindowCoverage {
    /// Whether every window contained at least one access — the paper's
    /// per-bot "complies with this re-check cadence" predicate.
    pub fn fully_covered(&self) -> bool {
        self.total_windows > 0 && self.covered_windows == self.total_windows
    }

    /// Fraction of windows covered (0 when there are no windows).
    pub fn fraction(&self) -> f64 {
        if self.total_windows == 0 {
            0.0
        } else {
            self.covered_windows as f64 / self.total_windows as f64
        }
    }
}

/// Segment `access_times` (seconds; need not be sorted) into consecutive
/// windows of `window_secs`, anchored at the *first* access, extending to
/// `horizon_end`, and count how many windows contain an access.
///
/// Only **complete** windows are evaluated: a trailing partial window (one
/// that would extend past `horizon_end`) is dropped, so a bot is never
/// penalised for a window it did not get the full length of. Returns `None`
/// when there are no accesses at all, or when `window_secs` is zero.
/// Accesses at or after `horizon_end` are ignored; if fewer than
/// `window_secs` seconds elapse between the first access and the horizon
/// there are no complete windows and `total_windows == 0` (which
/// [`WindowCoverage::fully_covered`] reports as not covered).
///
/// ```
/// use botscope_stats::window::window_coverage;
/// // Accesses at t=0 and t=30h; horizon 48h; 24h windows:
/// // window [0,24h) has the t=0 access, window [24h,48h) has t=30h.
/// let h = 3600;
/// let cov = window_coverage(&[0, 30 * h], 24 * h, 48 * h).unwrap();
/// assert!(cov.fully_covered());
/// // 12h windows: windows [12h,24h) and [36h,48h) are empty.
/// let cov = window_coverage(&[0, 30 * h], 12 * h, 48 * h).unwrap();
/// assert!(!cov.fully_covered());
/// assert_eq!(cov.covered_windows, 2);
/// assert_eq!(cov.total_windows, 4);
/// ```
pub fn window_coverage(
    access_times: &[u64],
    window_secs: u64,
    horizon_end: u64,
) -> Option<WindowCoverage> {
    if access_times.is_empty() || window_secs == 0 {
        return None;
    }
    let first = *access_times.iter().min().expect("non-empty");
    if first >= horizon_end {
        return Some(WindowCoverage { window_secs, total_windows: 0, covered_windows: 0 });
    }
    let span = horizon_end - first;
    // Complete windows only: floor division.
    let total_windows = span / window_secs;
    if total_windows == 0 {
        return Some(WindowCoverage { window_secs, total_windows: 0, covered_windows: 0 });
    }
    let mut covered = vec![false; total_windows as usize];
    for &t in access_times {
        if t < first || t >= horizon_end {
            continue;
        }
        let idx = (t - first) / window_secs;
        if idx < total_windows {
            covered[idx as usize] = true;
        }
    }
    let covered_windows = covered.iter().filter(|&&c| c).count() as u64;
    Some(WindowCoverage { window_secs, total_windows, covered_windows })
}

/// The window lengths analysed in the paper, in hours: 12, 24, 48, 72, 168.
pub const PAPER_WINDOWS_HOURS: [u64; 5] = [12, 24, 48, 72, 168];

/// Evaluate [`window_coverage`] for each of the paper's five window lengths.
///
/// Returns one entry per window length (skipping lengths for which coverage
/// is undefined, which only happens for empty input).
pub fn paper_window_profile(access_times: &[u64], horizon_end: u64) -> Vec<WindowCoverage> {
    PAPER_WINDOWS_HOURS
        .iter()
        .filter_map(|&h| window_coverage(access_times, h * 3600, horizon_end))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const H: u64 = 3600;

    #[test]
    fn empty_input_is_none() {
        assert!(window_coverage(&[], H, 100 * H).is_none());
    }

    #[test]
    fn zero_window_is_none() {
        assert!(window_coverage(&[5], 0, 100).is_none());
    }

    #[test]
    fn single_access_near_horizon_has_no_complete_window() {
        // First access at 10h, horizon 20h → only 10h remain, which is less
        // than one 24h window, so there is nothing to evaluate.
        let cov = window_coverage(&[10 * H], 24 * H, 20 * H).unwrap();
        assert_eq!(cov.total_windows, 0);
        assert!(!cov.fully_covered());
    }

    #[test]
    fn single_access_with_room_covers_first_window_only() {
        let cov = window_coverage(&[0], 24 * H, 72 * H).unwrap();
        assert_eq!(cov.total_windows, 3);
        assert_eq!(cov.covered_windows, 1);
        assert!(!cov.fully_covered());
    }

    #[test]
    fn access_after_horizon_ignored() {
        let cov = window_coverage(&[0, 500 * H], 24 * H, 48 * H).unwrap();
        assert_eq!(cov.total_windows, 2);
        assert_eq!(cov.covered_windows, 1);
        assert!(!cov.fully_covered());
    }

    #[test]
    fn first_access_past_horizon_gives_no_windows() {
        let cov = window_coverage(&[100 * H], 24 * H, 50 * H).unwrap();
        assert_eq!(cov.total_windows, 0);
        assert!(!cov.fully_covered());
        assert_eq!(cov.fraction(), 0.0);
    }

    #[test]
    fn dense_accesses_cover_everything() {
        let times: Vec<u64> = (0..240).map(|i| i * H).collect(); // hourly for 10 days
        for &w in &PAPER_WINDOWS_HOURS {
            let cov = window_coverage(&times, w * H, 240 * H).unwrap();
            assert!(cov.fully_covered(), "window {w}h should be covered");
        }
    }

    #[test]
    fn sparse_accesses_cover_only_long_windows() {
        // One access every 36 hours for 15 days (accesses at 0, 36h, …,
        // 324h; horizon 360h).
        let times: Vec<u64> = (0..10).map(|i| i * 36 * H).collect();
        let horizon = 15 * 24 * H;
        // 12h windows: most are empty.
        let c12 = window_coverage(&times, 12 * H, horizon).unwrap();
        assert!(!c12.fully_covered());
        // 24h windows: indices 0,1,3,4,6,7,9,10,12,13 hit — 2,5,8,11,14 miss.
        let c24 = window_coverage(&times, 24 * H, horizon).unwrap();
        assert!(!c24.fully_covered());
        assert_eq!(c24.total_windows, 15);
        assert_eq!(c24.covered_windows, 10);
        // 48h windows: 7 complete windows, every index 0..=6 hit.
        let c48 = window_coverage(&times, 48 * H, horizon).unwrap();
        assert!(c48.fully_covered(), "{c48:?}");
        // 168h windows: 2 complete windows, both hit.
        let c168 = window_coverage(&times, 168 * H, horizon).unwrap();
        assert!(c168.fully_covered(), "{c168:?}");
    }

    #[test]
    fn coverage_monotone_in_window_length() {
        // A bot covered at 12h must be covered at all longer windows when
        // window lengths are multiples; the paper's five lengths satisfy the
        // 12 | 24 | 48 and 24 | 72 divisibility chains we rely on here.
        let times: Vec<u64> = (0..100).map(|i| i * 11 * H).collect();
        let horizon = 100 * 11 * H;
        let fracs: Vec<f64> = [12, 24, 48]
            .iter()
            .map(|&w| window_coverage(&times, w * H, horizon).unwrap().fraction())
            .collect();
        assert!(fracs[0] <= fracs[1] + 1e-12);
        assert!(fracs[1] <= fracs[2] + 1e-12);
    }

    #[test]
    fn unsorted_input_handled() {
        let cov = window_coverage(&[30 * H, 0, 10 * H], 24 * H, 48 * H).unwrap();
        assert_eq!(cov.total_windows, 2);
        assert!(cov.fully_covered());
    }

    #[test]
    fn paper_profile_has_five_entries() {
        let profile = paper_window_profile(&[0, H, 2 * H], 400 * H);
        assert_eq!(profile.len(), 5);
        assert_eq!(profile[0].window_secs, 12 * H);
        assert_eq!(profile[4].window_secs, 168 * H);
    }
}

//! # botscope-stats
//!
//! Statistical primitives used by the botscope compliance-measurement
//! pipeline. This crate is a dependency-free substrate implementing exactly
//! the statistics the IMC '25 study *"Scrapers Selectively Respect
//! robots.txt Directives"* relies on:
//!
//! * the **two-proportion pooled z-test** used for every before/after
//!   compliance comparison (paper §4.2, Table 10),
//! * the **normal distribution** functions (erf / CDF / quantile) backing
//!   p-value computation,
//! * **weighted averages** used for the category-level compliance table
//!   (paper Table 5),
//! * **empirical CDFs** over timestamped byte counts (paper Figure 3),
//! * **time-window coverage** analysis for robots.txt re-check frequency
//!   (paper §5.1, Figure 10),
//! * small descriptive-statistics helpers (means, variance, percentiles)
//!   and fixed-width histograms used by the benches.
//!
//! Everything here is deterministic and allocation-light.
//!
//! ## Example
//!
//! ```
//! use botscope_stats::ztest::two_proportion_z_test;
//!
//! // 90 of 100 accesses complied under the experiment, 60 of 100 under the
//! // baseline: is the shift significant?
//! let t = two_proportion_z_test(90, 100, 60, 100).unwrap();
//! assert!(t.z > 0.0);
//! assert!(t.p_value < 0.05);
//! assert!(t.significant_at(0.05));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ci;
pub mod describe;
pub mod ecdf;
pub mod histogram;
pub mod normal;
pub mod window;
pub mod ztest;

pub use ci::{wilson, ProportionCi};
pub use describe::{mean, percentile, stddev, variance, weighted_mean, WeightedMeanAccumulator};
pub use ecdf::{Ecdf, TimeSeriesCdf};
pub use histogram::Histogram;
pub use normal::{erf, erfc, normal_cdf, normal_pdf, normal_quantile};
pub use window::{window_coverage, WindowCoverage};
pub use ztest::{two_proportion_z_test, ZTestResult};

//! Two-proportion pooled z-test.
//!
//! The paper compares, for every bot, a compliance *proportion* measured
//! under an experimental robots.txt against the proportion measured under
//! the baseline file, and asks whether the shift is statistically
//! significant (§4.2, Table 10, Figures 9/11). The test used is the classic
//! pooled two-proportion z-test:
//!
//! ```text
//!         p1 - p2
//! z = ----------------- ,  p̂ = (x1 + x2) / (n1 + n2)
//!     √(p̂(1-p̂)(1/n1+1/n2))
//! ```
//!
//! with a two-sided p-value `2·(1 - Φ(|z|))`. The paper reports `N/A` when a
//! bot produced no observations under one of the conditions; we model that
//! with [`Option`].

use crate::normal::normal_sf;

/// Result of a two-proportion z-test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ZTestResult {
    /// Sample proportion under condition 1 (the experiment).
    pub p1: f64,
    /// Sample proportion under condition 2 (the baseline).
    pub p2: f64,
    /// The z statistic. Positive means condition 1 has the higher
    /// proportion (compliance increased under the experiment).
    pub z: f64,
    /// Two-sided p-value, `2 · P(Z > |z|)`.
    pub p_value: f64,
    /// Number of successes / trials in condition 1.
    pub x1: u64,
    /// Trials in condition 1.
    pub n1: u64,
    /// Number of successes / trials in condition 2.
    pub x2: u64,
    /// Trials in condition 2.
    pub n2: u64,
}

impl ZTestResult {
    /// Whether the two-sided p-value clears the significance level `alpha`
    /// (the paper uses `p ≤ 0.05`, marked by red dotted lines in Figs 9/11).
    pub fn significant_at(&self, alpha: f64) -> bool {
        self.p_value <= alpha
    }

    /// The difference in proportions `p1 - p2` (the x-axis shift drawn in
    /// the paper's Figure 9).
    pub fn effect(&self) -> f64 {
        self.p1 - self.p2
    }
}

/// Pooled two-proportion z-test of `x1/n1` against `x2/n2`.
///
/// Returns `None` when either sample is empty (`n1 == 0 || n2 == 0`) or when
/// the pooled variance is zero (both proportions 0 or both 1), in which case
/// no shift can be detected — these are exactly the paper's `N/A` rows in
/// Table 10.
///
/// # Panics
///
/// Panics if `x1 > n1` or `x2 > n2`; a success count larger than the trial
/// count is a logic error in the caller, not a data condition.
///
/// ```
/// use botscope_stats::ztest::two_proportion_z_test;
/// let t = two_proportion_z_test(80, 100, 40, 100).unwrap();
/// assert!(t.z > 5.0);
/// assert!(t.p_value < 1e-6);
/// assert!(two_proportion_z_test(0, 0, 5, 10).is_none());
/// assert!(two_proportion_z_test(10, 10, 10, 10).is_none()); // zero variance
/// ```
pub fn two_proportion_z_test(x1: u64, n1: u64, x2: u64, n2: u64) -> Option<ZTestResult> {
    assert!(x1 <= n1, "x1={x1} exceeds n1={n1}");
    assert!(x2 <= n2, "x2={x2} exceeds n2={n2}");
    if n1 == 0 || n2 == 0 {
        return None;
    }
    let p1 = x1 as f64 / n1 as f64;
    let p2 = x2 as f64 / n2 as f64;
    let pooled = (x1 + x2) as f64 / (n1 + n2) as f64;
    let var = pooled * (1.0 - pooled) * (1.0 / n1 as f64 + 1.0 / n2 as f64);
    if var <= 0.0 {
        return None;
    }
    let z = (p1 - p2) / var.sqrt();
    let p_value = (2.0 * normal_sf(z.abs())).min(1.0);
    Some(ZTestResult { p1, p2, z, p_value, x1, n1, x2, n2 })
}

/// Convenience wrapper taking proportions that are already ratios of
/// integer counts.
///
/// `(successes, trials)` pairs; see [`two_proportion_z_test`].
pub fn z_test_counts(a: (u64, u64), b: (u64, u64)) -> Option<ZTestResult> {
    two_proportion_z_test(a.0, a.1, b.0, b.1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn textbook_example() {
        // Standard worked example: 120/200 vs 90/200.
        // p1=.6, p2=.45, pooled=.525, se=√(.525·.475·(1/200+1/200))≈.049938,
        // z = .15/.049938 ≈ 3.00376.
        let t = two_proportion_z_test(120, 200, 90, 200).unwrap();
        assert!((t.z - 3.00376).abs() < 1e-4, "z={}", t.z);
        assert!((t.p_value - 0.00266).abs() < 2e-4, "p={}", t.p_value);
        assert!(t.significant_at(0.05));
        assert!(!t.significant_at(0.001));
    }

    #[test]
    fn sign_convention() {
        let up = two_proportion_z_test(90, 100, 50, 100).unwrap();
        assert!(up.z > 0.0);
        assert!(up.effect() > 0.0);
        let down = two_proportion_z_test(50, 100, 90, 100).unwrap();
        assert!(down.z < 0.0);
        assert!(down.effect() < 0.0);
        assert!((up.z + down.z).abs() < 1e-12, "antisymmetric");
    }

    #[test]
    fn equal_proportions_give_zero_z() {
        let t = two_proportion_z_test(30, 100, 60, 200).unwrap();
        assert!(t.z.abs() < 1e-12);
        assert!((t.p_value - 1.0).abs() < 1e-9);
    }

    #[test]
    fn na_cases() {
        assert!(two_proportion_z_test(0, 0, 0, 0).is_none());
        assert!(two_proportion_z_test(0, 0, 3, 10).is_none());
        assert!(two_proportion_z_test(3, 10, 0, 0).is_none());
        // Degenerate pooled variance: all successes or all failures.
        assert!(two_proportion_z_test(5, 5, 7, 7).is_none());
        assert!(two_proportion_z_test(0, 5, 0, 7).is_none());
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn panics_on_impossible_counts() {
        let _ = two_proportion_z_test(11, 10, 0, 10);
    }

    #[test]
    fn large_z_underflows_to_zero_pvalue() {
        // Mirrors the paper's `0.00e+00` p-values for e.g. GPTBot.
        let t = two_proportion_z_test(100_000, 100_000 + 1, 1, 100_000).unwrap();
        assert!(t.z > 30.0);
        assert_eq!(t.p_value, 0.0);
    }

    #[test]
    fn more_data_shrinks_p() {
        let small = two_proportion_z_test(12, 20, 8, 20).unwrap();
        let big = two_proportion_z_test(1200, 2000, 800, 2000).unwrap();
        assert!(big.p_value < small.p_value);
    }

    #[test]
    fn counts_are_echoed() {
        let t = two_proportion_z_test(3, 9, 4, 11).unwrap();
        assert_eq!((t.x1, t.n1, t.x2, t.n2), (3, 9, 4, 11));
        assert!((t.p1 - 3.0 / 9.0).abs() < 1e-15);
        assert!((t.p2 - 4.0 / 11.0).abs() < 1e-15);
    }
}

//! Property-based tests for the statistics substrate.

use botscope_stats::describe::{mean, percentile, weighted_mean};
use botscope_stats::ecdf::{Ecdf, TimeSeriesCdf};
use botscope_stats::normal::{erf, normal_cdf, normal_quantile};
use botscope_stats::window::window_coverage;
use botscope_stats::ztest::two_proportion_z_test;
use proptest::prelude::*;

proptest! {
    #[test]
    fn erf_is_odd_and_bounded(x in -50.0f64..50.0) {
        let y = erf(x);
        prop_assert!((-1.0..=1.0).contains(&y));
        prop_assert!((erf(-x) + y).abs() < 1e-12);
    }

    #[test]
    fn erf_is_monotone(a in -8.0f64..8.0, b in -8.0f64..8.0) {
        let (lo, hi) = if a < b { (a, b) } else { (b, a) };
        prop_assert!(erf(lo) <= erf(hi) + 1e-12);
    }

    #[test]
    fn cdf_in_unit_interval(x in -40.0f64..40.0) {
        let p = normal_cdf(x);
        prop_assert!((0.0..=1.0).contains(&p));
    }

    #[test]
    fn quantile_inverts_cdf(p in 0.001f64..0.999) {
        let z = normal_quantile(p);
        prop_assert!((normal_cdf(z) - p).abs() < 1e-6);
    }

    #[test]
    fn ztest_is_antisymmetric(
        x1 in 0u64..500, extra1 in 1u64..500,
        x2 in 0u64..500, extra2 in 1u64..500,
    ) {
        let n1 = x1 + extra1;
        let n2 = x2 + extra2;
        let fwd = two_proportion_z_test(x1, n1, x2, n2);
        let rev = two_proportion_z_test(x2, n2, x1, n1);
        match (fwd, rev) {
            (Some(a), Some(b)) => {
                prop_assert!((a.z + b.z).abs() < 1e-9);
                prop_assert!((a.p_value - b.p_value).abs() < 1e-9);
            }
            (None, None) => {}
            _ => prop_assert!(false, "one direction N/A, the other not"),
        }
    }

    #[test]
    fn ztest_pvalue_in_unit_interval(
        x1 in 0u64..1000, extra1 in 1u64..1000,
        x2 in 0u64..1000, extra2 in 1u64..1000,
    ) {
        if let Some(t) = two_proportion_z_test(x1, x1 + extra1, x2, x2 + extra2) {
            prop_assert!((0.0..=1.0).contains(&t.p_value));
            prop_assert!(t.z.is_finite());
        }
    }

    #[test]
    fn weighted_mean_within_range(
        pairs in prop::collection::vec((0.0f64..1.0, 0.0f64..100.0), 1..50)
    ) {
        if let Some(m) = weighted_mean(&pairs) {
            prop_assert!((0.0 - 1e-12..=1.0 + 1e-12).contains(&m));
        }
    }

    #[test]
    fn mean_bounded_by_extremes(xs in prop::collection::vec(-1e6f64..1e6, 1..100)) {
        let m = mean(&xs).unwrap();
        let lo = xs.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(m >= lo - 1e-6 && m <= hi + 1e-6);
    }

    #[test]
    fn percentile_monotone(
        xs in prop::collection::vec(-1e3f64..1e3, 1..60),
        q1 in 0.0f64..1.0,
        q2 in 0.0f64..1.0,
    ) {
        let (lo, hi) = if q1 < q2 { (q1, q2) } else { (q2, q1) };
        let a = percentile(&xs, lo).unwrap();
        let b = percentile(&xs, hi).unwrap();
        prop_assert!(a <= b + 1e-9);
    }

    #[test]
    fn ecdf_monotone_and_bounded(
        sample in prop::collection::vec(-1e3f64..1e3, 0..80),
        probes in prop::collection::vec(-2e3f64..2e3, 2..10),
    ) {
        let e = Ecdf::new(sample);
        let mut sorted_probes = probes;
        sorted_probes.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mut prev = -1e-12;
        for &x in &sorted_probes {
            let y = e.eval(x);
            prop_assert!((0.0..=1.0).contains(&y));
            prop_assert!(y >= prev - 1e-12);
            prev = y;
        }
    }

    #[test]
    fn timeseries_curve_monotone_ends_at_one(
        points in prop::collection::vec((0u64..10_000, 0.1f64..100.0), 1..60),
    ) {
        let mut s = TimeSeriesCdf::new();
        for &(t, w) in &points {
            s.add(t, w);
        }
        let edges: Vec<u64> = (0..=10).map(|i| i * 1000).collect();
        let curve = s.curve(&edges);
        for w in curve.windows(2) {
            prop_assert!(w[0] <= w[1] + 1e-12);
        }
        prop_assert!((curve.last().unwrap() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn window_coverage_counts_consistent(
        times in prop::collection::vec(0u64..1_000_000, 1..100),
        window in 1u64..100_000,
        horizon in 1u64..2_000_000,
    ) {
        if let Some(cov) = window_coverage(&times, window, horizon) {
            prop_assert!(cov.covered_windows <= cov.total_windows);
            prop_assert!((0.0..=1.0).contains(&cov.fraction()));
            let first = *times.iter().min().unwrap();
            if first < horizon {
                let span = horizon - first;
                prop_assert_eq!(cov.total_windows, span / window);
                if cov.total_windows > 0 {
                    // The first complete window contains `first` itself.
                    prop_assert!(cov.covered_windows >= 1);
                }
            } else {
                prop_assert_eq!(cov.total_windows, 0);
            }
        }
    }
}

//! String-distance metrics for fuzzy bot-name standardization.
//!
//! The study standardizes bot names "via fuzzy string matching with a
//! public dataset of common useragent strings" (paper §3.1). We implement
//! the two metrics conventionally used for that task: Levenshtein edit
//! distance (with a normalized similarity form) and Jaro-Winkler
//! similarity, which favours shared prefixes — appropriate for bot tokens
//! like `Googlebot-Image` vs `Googlebot`.

/// Levenshtein edit distance between two strings, computed over Unicode
/// scalar values with the classic two-row dynamic program.
///
/// ```
/// use botscope_useragent::distance::levenshtein;
/// assert_eq!(levenshtein("kitten", "sitting"), 3);
/// assert_eq!(levenshtein("", "abc"), 3);
/// assert_eq!(levenshtein("same", "same"), 0);
/// ```
pub fn levenshtein(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() {
        return b.len();
    }
    if b.is_empty() {
        return a.len();
    }
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0usize; b.len() + 1];
    for (i, &ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, &cb) in b.iter().enumerate() {
            let cost = usize::from(ca != cb);
            cur[j + 1] = (prev[j + 1] + 1).min(cur[j] + 1).min(prev[j] + cost);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

/// Normalized Levenshtein similarity in `[0, 1]`:
/// `1 - distance / max(len_a, len_b)`; two empty strings are similarity 1.
pub fn levenshtein_similarity(a: &str, b: &str) -> f64 {
    let max_len = a.chars().count().max(b.chars().count());
    if max_len == 0 {
        return 1.0;
    }
    1.0 - levenshtein(a, b) as f64 / max_len as f64
}

/// Jaro similarity in `[0, 1]`.
pub fn jaro(a: &str, b: &str) -> f64 {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let window = (a.len().max(b.len()) / 2).saturating_sub(1);
    let mut b_used = vec![false; b.len()];
    let mut matches_a: Vec<char> = Vec::new();

    for (i, &ca) in a.iter().enumerate() {
        let lo = i.saturating_sub(window);
        let hi = (i + window + 1).min(b.len());
        for j in lo..hi {
            if !b_used[j] && b[j] == ca {
                b_used[j] = true;
                matches_a.push(ca);
                break;
            }
        }
    }
    if matches_a.is_empty() {
        return 0.0;
    }
    let matches_b: Vec<char> =
        b.iter().zip(b_used.iter()).filter(|&(_, &u)| u).map(|(&c, _)| c).collect();
    let transpositions =
        matches_a.iter().zip(matches_b.iter()).filter(|(x, y)| x != y).count() as f64 / 2.0;
    let m = matches_a.len() as f64;
    (m / a.len() as f64 + m / b.len() as f64 + (m - transpositions) / m) / 3.0
}

/// Jaro-Winkler similarity: Jaro boosted by up to 4 characters of common
/// prefix with the standard scaling factor 0.1.
///
/// ```
/// use botscope_useragent::distance::jaro_winkler;
/// let jw = jaro_winkler("googlebot", "googlebot-image");
/// assert!(jw > 0.9);
/// assert!(jaro_winkler("bytespider", "bytespider") == 1.0);
/// assert!(jaro_winkler("axios", "scrapy") < 0.6);
/// ```
pub fn jaro_winkler(a: &str, b: &str) -> f64 {
    const PREFIX_SCALE: f64 = 0.1;
    const MAX_PREFIX: usize = 4;
    let j = jaro(a, b);
    let prefix = a.chars().zip(b.chars()).take(MAX_PREFIX).take_while(|(x, y)| x == y).count();
    j + prefix as f64 * PREFIX_SCALE * (1.0 - j)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levenshtein_classic_cases() {
        assert_eq!(levenshtein("flaw", "lawn"), 2);
        assert_eq!(levenshtein("gumbo", "gambol"), 2);
        assert_eq!(levenshtein("a", ""), 1);
        assert_eq!(levenshtein("", ""), 0);
    }

    #[test]
    fn levenshtein_symmetry() {
        assert_eq!(levenshtein("abcdef", "azced"), levenshtein("azced", "abcdef"));
    }

    #[test]
    fn levenshtein_unicode() {
        assert_eq!(levenshtein("café", "cafe"), 1);
        assert_eq!(levenshtein("日本語", "日本"), 1);
    }

    #[test]
    fn similarity_bounds() {
        assert_eq!(levenshtein_similarity("", ""), 1.0);
        assert_eq!(levenshtein_similarity("abc", "abc"), 1.0);
        assert_eq!(levenshtein_similarity("abc", "xyz"), 0.0);
        let s = levenshtein_similarity("googlebot", "googlebot-news");
        assert!(s > 0.6 && s < 1.0);
    }

    #[test]
    fn jaro_known_values() {
        // Classic worked examples.
        assert!((jaro("MARTHA", "MARHTA") - 0.944444).abs() < 1e-5);
        assert!((jaro("DIXON", "DICKSONX") - 0.766667).abs() < 1e-5);
        assert_eq!(jaro("", ""), 1.0);
        assert_eq!(jaro("a", ""), 0.0);
        assert_eq!(jaro("abc", "xyz"), 0.0);
    }

    #[test]
    fn jaro_winkler_known_values() {
        assert!((jaro_winkler("MARTHA", "MARHTA") - 0.961111).abs() < 1e-5);
        assert!((jaro_winkler("DIXON", "DICKSONX") - 0.813333).abs() < 1e-5);
    }

    #[test]
    fn jaro_winkler_prefers_prefix_matches() {
        // Same Jaro-level difference, but shared prefix boosts the first.
        let with_prefix = jaro_winkler("semrushbot", "semrushbot-sa");
        let without = jaro_winkler("semrushbot", "sa-semrushbot");
        assert!(with_prefix > without);
    }

    #[test]
    fn bot_name_variants_score_high() {
        for (a, b) in [
            ("bingbot", "bingbot/2.0"),
            ("claudebot", "claude-bot"),
            ("yandexbot", "yandex-bot"),
            ("facebookexternalhit", "facebookexternalhit/1.1"),
        ] {
            assert!(jaro_winkler(a, b) > 0.85, "{a} vs {b}");
        }
    }
}

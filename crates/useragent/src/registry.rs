//! The known-bot registry.
//!
//! Mirrors the study's combination of a public user-agent corpus (for
//! pattern matching) and the Dark Visitors metadata (category, operator,
//! public robots.txt promise — paper §3.1 and Table 6). The registry is
//! the ground truth the traffic simulator draws its fleet from, and the
//! lookup structure the analysis pipeline standardizes raw user agents
//! against.

use crate::category::BotCategory;
use crate::data;

/// A bot's publicly stated position on robots.txt compliance
/// (the "Promise to respect robots.txt" column of the paper's Table 6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RobotsPromise {
    /// The operator publicly promises to respect robots.txt.
    Yes,
    /// The operator states (or it is documented) that it does not.
    No,
    /// No public statement either way.
    Unknown,
}

impl RobotsPromise {
    /// Table-ready label.
    pub fn label(self) -> &'static str {
        match self {
            RobotsPromise::Yes => "Yes",
            RobotsPromise::No => "No",
            RobotsPromise::Unknown => "Unknown",
        }
    }
}

/// Static description of one known bot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BotSpec {
    /// Canonical display name (as the paper's tables print it).
    pub canonical: &'static str,
    /// Lowercase substrings that identify this bot inside a raw
    /// `User-Agent` header. The first pattern is the most specific.
    pub patterns: &'static [&'static str],
    /// Dark-Visitors-style category.
    pub category: BotCategory,
    /// Sponsoring entity ("Open Source" for community HTTP libraries).
    pub sponsor: &'static str,
    /// Public promise to respect robots.txt.
    pub respects_robots: RobotsPromise,
    /// The autonomous system the bot's legitimate traffic overwhelmingly
    /// originates from (the "Main ASN" column of the paper's Table 8).
    pub home_asn: &'static str,
}

/// Lookup structure over the static bot database.
#[derive(Debug)]
pub struct BotRegistry {
    bots: &'static [BotSpec],
}

impl BotRegistry {
    /// Construct over the built-in database.
    pub fn builtin() -> Self {
        Self { bots: data::BOTS }
    }

    /// All specs.
    pub fn all(&self) -> &'static [BotSpec] {
        self.bots
    }

    /// Number of bots in the registry.
    pub fn len(&self) -> usize {
        self.bots.len()
    }

    /// Whether the registry is empty (never, for the builtin).
    pub fn is_empty(&self) -> bool {
        self.bots.is_empty()
    }

    /// Find by substring pattern match against a raw UA header
    /// (case-insensitive). The bot with the **longest** matching pattern
    /// wins, so `Googlebot-Image` beats `Googlebot` for an image-bot UA.
    pub fn match_user_agent(&self, header: &str) -> Option<&'static BotSpec> {
        let lower = header.to_ascii_lowercase();
        let mut best: Option<(&'static BotSpec, usize)> = None;
        for bot in self.bots {
            for pat in bot.patterns {
                if lower.contains(pat) && best.is_none_or(|(_, len)| pat.len() > len) {
                    best = Some((bot, pat.len()));
                }
            }
        }
        best.map(|(b, _)| b)
    }

    /// Find by canonical name (case-insensitive exact match).
    pub fn by_name(&self, name: &str) -> Option<&'static BotSpec> {
        self.bots.iter().find(|b| b.canonical.eq_ignore_ascii_case(name))
    }

    /// All bots in a category.
    pub fn in_category(&self, category: BotCategory) -> Vec<&'static BotSpec> {
        self.bots.iter().filter(|b| b.category == category).collect()
    }
}

/// The built-in registry (convenience constructor).
pub fn registry() -> BotRegistry {
    BotRegistry::builtin()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn builtin_has_paper_scale() {
        // The study analyzed "130 self-declared bots"; our registry is of
        // the same order.
        let reg = registry();
        assert!(reg.len() >= 120, "registry has {} bots", reg.len());
        assert!(!reg.is_empty());
    }

    #[test]
    fn canonical_names_unique() {
        let reg = registry();
        let names: BTreeSet<&str> = reg.all().iter().map(|b| b.canonical).collect();
        assert_eq!(names.len(), reg.len());
    }

    #[test]
    fn patterns_are_lowercase_and_nonempty() {
        for bot in registry().all() {
            assert!(!bot.patterns.is_empty(), "{} has no patterns", bot.canonical);
            for p in bot.patterns {
                assert!(!p.is_empty());
                assert_eq!(
                    *p,
                    p.to_ascii_lowercase(),
                    "{} pattern {p} not lowercase",
                    bot.canonical
                );
            }
        }
    }

    #[test]
    fn longest_pattern_wins() {
        let reg = registry();
        let image = reg.match_user_agent("Googlebot-Image/1.0").expect("image bot matched");
        assert_eq!(image.canonical, "Googlebot-Image");
        let plain = reg
            .match_user_agent("Mozilla/5.0 (compatible; Googlebot/2.1)")
            .expect("plain googlebot matched");
        assert_eq!(plain.canonical, "Googlebot");
    }

    #[test]
    fn paper_table6_bots_present_with_metadata() {
        let reg = registry();
        // Spot-check rows of the paper's Table 6.
        let cases: &[(&str, BotCategory, RobotsPromise, &str)] = &[
            ("GPTBot", BotCategory::AiDataScraper, RobotsPromise::Yes, "OpenAI"),
            ("ClaudeBot", BotCategory::AiDataScraper, RobotsPromise::Yes, "Anthropic"),
            ("Bytespider", BotCategory::AiDataScraper, RobotsPromise::No, "ByteDance"),
            ("PerplexityBot", BotCategory::AiSearchCrawler, RobotsPromise::No, "Perplexity"),
            ("ChatGPT-User", BotCategory::AiAssistant, RobotsPromise::Yes, "OpenAI"),
            ("Amazonbot", BotCategory::AiSearchCrawler, RobotsPromise::Yes, "Amazon"),
            ("AhrefsBot", BotCategory::SeoCrawler, RobotsPromise::Yes, "Ahrefs"),
            ("SemrushBot", BotCategory::SeoCrawler, RobotsPromise::Yes, "Semrush"),
            ("Applebot", BotCategory::AiSearchCrawler, RobotsPromise::Yes, "Apple"),
            ("PetalBot", BotCategory::SearchEngineCrawler, RobotsPromise::Yes, "Huawei"),
            ("Axios", BotCategory::Other, RobotsPromise::No, "Open Source"),
            ("SeznamBot", BotCategory::SearchEngineCrawler, RobotsPromise::Yes, "Seznam.cz"),
        ];
        for &(name, cat, promise, sponsor) in cases {
            let bot = reg.by_name(name).unwrap_or_else(|| panic!("{name} missing"));
            assert_eq!(bot.category, cat, "{name} category");
            assert_eq!(bot.respects_robots, promise, "{name} promise");
            assert_eq!(bot.sponsor, sponsor, "{name} sponsor");
        }
    }

    #[test]
    fn table8_home_asns() {
        let reg = registry();
        for (name, asn) in [
            ("Googlebot", "GOOGLE"),
            ("ClaudeBot", "AMAZON-02"),
            ("GPTBot", "MICROSOFT-CORP-MSN-AS-BLOCK"),
            ("Amazonbot", "AMAZON-AES"),
            ("AhrefsBot", "OVH"),
            ("Baiduspider", "CHINA169-Backbone"),
            ("facebookexternalhit", "FACEBOOK"),
            ("Twitterbot", "TWITTER"),
        ] {
            assert_eq!(reg.by_name(name).unwrap().home_asn, asn, "{name}");
        }
    }

    #[test]
    fn category_query() {
        let reg = registry();
        let seo = reg.in_category(BotCategory::SeoCrawler);
        assert!(seo.len() >= 8);
        assert!(seo.iter().all(|b| b.category == BotCategory::SeoCrawler));
    }

    #[test]
    fn unknown_ua_matches_nothing() {
        let reg = registry();
        assert!(reg
            .match_user_agent("Mozilla/5.0 (Windows NT 10.0) Chrome/120 Safari/537")
            .is_none());
        assert!(reg.by_name("no-such-bot").is_none());
    }

    #[test]
    fn promise_labels() {
        assert_eq!(RobotsPromise::Yes.label(), "Yes");
        assert_eq!(RobotsPromise::No.label(), "No");
        assert_eq!(RobotsPromise::Unknown.label(), "Unknown");
    }
}

//! # botscope-useragent
//!
//! User-agent intelligence for the botscope pipeline: parsing `User-Agent`
//! header strings, standardizing self-declared bot names, classifying
//! agents into the Dark-Visitors-style category taxonomy the IMC '25 study
//! uses, and a registry of known bots with the metadata the study's tables
//! report (sponsoring entity, category, public promise to respect
//! robots.txt).
//!
//! The study standardizes bot names "via fuzzy string matching with a
//! public dataset of common useragent strings" and then maps bots to the
//! category taxonomy of the Dark Visitors site (paper §3.1). This crate
//! reproduces both steps:
//!
//! * [`registry`] — a curated database of ~130 self-declared crawlers and
//!   scrapers. Entries for every bot named in the paper carry exactly the
//!   metadata of the paper's Tables 3/6/7/8; the remainder is assembled
//!   from public bot-tracking corpora and is representative rather than
//!   exhaustive.
//! * [`standardize`] — substring pattern matching plus Levenshtein /
//!   Jaro-Winkler fuzzy fallback, mirroring the paper's pipeline.
//! * [`detect`] — coarse agent classification: known bot, headless
//!   browser, HTTP library, ordinary browser, or unknown.
//!
//! ```
//! use botscope_useragent::{classify, AgentClass, BotCategory, registry};
//!
//! let reg = registry();
//! let ua = "Mozilla/5.0 AppleWebKit/537.36 (compatible; GPTBot/1.2; +https://openai.com/gptbot)";
//! match classify(&reg, ua) {
//!     AgentClass::KnownBot(bot) => {
//!         assert_eq!(bot.canonical, "GPTBot");
//!         assert_eq!(bot.category, BotCategory::AiDataScraper);
//!     }
//!     other => panic!("expected a known bot, got {other:?}"),
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod category;
pub mod data;
pub mod detect;
pub mod distance;
pub mod parse;
pub mod registry;
pub mod standardize;

pub use category::BotCategory;
pub use detect::{classify, AgentClass};
pub use registry::{registry, BotRegistry, BotSpec, RobotsPromise};
pub use standardize::Standardizer;

//! Bot-name standardization: raw `User-Agent` header → canonical bot name.
//!
//! Reproduces the paper's §3.1 pipeline: exact substring matching against a
//! corpus of known bot patterns, falling back to fuzzy string matching
//! (Jaro-Winkler over candidate tokens) for near-miss spellings such as
//! `Claude-Bot/1.0` or `semrush-bot`.

use crate::distance::jaro_winkler;
use crate::parse::UserAgent;
use crate::registry::{BotRegistry, BotSpec};

/// How a standardization result was obtained.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MatchKind {
    /// A registry pattern appeared verbatim (case-insensitive) in the UA.
    Exact,
    /// A candidate token matched a canonical name by fuzzy similarity.
    Fuzzy,
}

/// A successful standardization.
#[derive(Debug, Clone, Copy)]
pub struct Standardized {
    /// The matched registry entry.
    pub bot: &'static BotSpec,
    /// How the match was found.
    pub kind: MatchKind,
    /// Similarity score (1.0 for exact matches).
    pub score: f64,
}

/// Standardizer with a configurable fuzzy threshold.
#[derive(Debug)]
pub struct Standardizer {
    registry: BotRegistry,
    /// Minimum Jaro-Winkler similarity for a fuzzy match (default 0.93 —
    /// high enough that `bingbot` does not claim `dotbot`).
    pub fuzzy_threshold: f64,
    /// Canonical names pre-normalized once — with their character
    /// histograms — so the fuzzy pass can bound Jaro cheaply before
    /// running the quadratic comparison.
    normalized: Vec<(String, CharCounts, &'static BotSpec)>,
    /// Two-byte-prefix index over the registry's substring patterns.
    patterns: PatternIndex,
}

/// Histogram over the 36-symbol normalized alphabet (`[a-z0-9]`).
type CharCounts = [u8; 36];

/// One registry pattern in the [`PatternIndex`].
#[derive(Debug)]
struct IndexedPattern {
    pattern: &'static str,
    bot: &'static BotSpec,
    /// Position in the registry's bots × patterns iteration, for exact
    /// tie-breaking parity with [`BotRegistry::match_user_agent`].
    order: u32,
}

/// Substring-pattern index keyed on each pattern's first two bytes.
///
/// [`BotRegistry::match_user_agent`] scans every pattern with
/// `str::contains` — ~174 needle scans per header. The index instead
/// walks the lowercased header once: a 64 Ki-bit presence filter over
/// two-byte windows rejects almost every position, and the rare hits
/// verify only the handful of patterns sharing that prefix. Results are
/// identical (same longest-pattern, first-in-registry-order tie-break).
#[derive(Debug)]
struct PatternIndex {
    /// Presence bit per possible two-byte pattern prefix.
    bitmap: Vec<u64>,
    by_prefix: std::collections::HashMap<[u8; 2], Vec<IndexedPattern>>,
}

impl PatternIndex {
    fn build(registry: &BotRegistry) -> PatternIndex {
        let mut bitmap = vec![0u64; (1 << 16) / 64];
        let mut by_prefix: std::collections::HashMap<[u8; 2], Vec<IndexedPattern>> =
            std::collections::HashMap::new();
        let mut order = 0u32;
        for bot in registry.all() {
            for &pattern in bot.patterns {
                assert!(pattern.len() >= 2, "pattern {pattern:?} too short to index");
                let key = [pattern.as_bytes()[0], pattern.as_bytes()[1]];
                let bit = u16::from_be_bytes(key) as usize;
                bitmap[bit / 64] |= 1 << (bit % 64);
                by_prefix.entry(key).or_default().push(IndexedPattern { pattern, bot, order });
                order += 1;
            }
        }
        PatternIndex { bitmap, by_prefix }
    }

    /// Exact replica of [`BotRegistry::match_user_agent`]'s result: the
    /// longest matching pattern wins, ties go to the earliest registry
    /// entry.
    fn match_user_agent(&self, header: &str) -> Option<&'static BotSpec> {
        let lower = header.to_ascii_lowercase();
        let bytes = lower.as_bytes();
        // (pattern length, registry order, bot): max length, min order.
        let mut best: Option<(usize, u32, &'static BotSpec)> = None;
        for i in 0..bytes.len().saturating_sub(1) {
            let key = [bytes[i], bytes[i + 1]];
            let bit = u16::from_be_bytes(key) as usize;
            if self.bitmap[bit / 64] & (1 << (bit % 64)) == 0 {
                continue;
            }
            let Some(candidates) = self.by_prefix.get(&key) else { continue };
            for c in candidates {
                if bytes[i..].starts_with(c.pattern.as_bytes()) {
                    let better = match best {
                        None => true,
                        Some((len, order, _)) => {
                            c.pattern.len() > len || (c.pattern.len() == len && c.order < order)
                        }
                    };
                    if better {
                        best = Some((c.pattern.len(), c.order, c.bot));
                    }
                }
            }
        }
        best.map(|(_, _, bot)| bot)
    }
}

/// Count normalized characters (input is already `[a-z0-9]`-only).
fn char_counts(s: &str) -> CharCounts {
    let mut counts = [0u8; 36];
    for b in s.bytes() {
        let i = match b {
            b'a'..=b'z' => (b - b'a') as usize,
            b'0'..=b'9' => 26 + (b - b'0') as usize,
            _ => continue,
        };
        counts[i] = counts[i].saturating_add(1);
    }
    counts
}

/// Upper bound on the number of Jaro character matches: no matching can
/// pair more occurrences of a character than both strings contain.
fn common_chars_upper_bound(a: &CharCounts, b: &CharCounts) -> usize {
    a.iter().zip(b.iter()).map(|(&x, &y)| x.min(y) as usize).sum()
}

impl Standardizer {
    /// Standardizer over the built-in registry with the default threshold.
    pub fn new() -> Self {
        let registry = BotRegistry::builtin();
        let normalized = registry
            .all()
            .iter()
            .map(|b| {
                let norm = normalize_token(b.canonical);
                let counts = char_counts(&norm);
                (norm, counts, b)
            })
            .collect();
        let patterns = PatternIndex::build(&registry);
        Self { registry, fuzzy_threshold: 0.93, normalized, patterns }
    }

    /// Access the underlying registry.
    pub fn registry(&self) -> &BotRegistry {
        &self.registry
    }

    /// Standardize a raw header. Returns `None` for agents that match no
    /// known bot (ordinary browsers, anonymous scrapers).
    pub fn standardize(&self, header: &str) -> Option<Standardized> {
        // Pass 1: substring patterns (the paper's regex corpus
        // equivalent), via the prefix index — same result as
        // [`BotRegistry::match_user_agent`], one header scan.
        if let Some(bot) = self.patterns.match_user_agent(header) {
            return Some(Standardized { bot, kind: MatchKind::Exact, score: 1.0 });
        }

        // Pass 2: fuzzy matching over candidate tokens.
        let mut best: Option<(f64, &'static BotSpec)> = None;
        for token in UserAgent::parse(header).candidate_tokens() {
            let token_norm = normalize_token(&token);
            if let Some((score, bot)) = self.fuzzy_token(&token_norm) {
                if best.is_none_or(|(s, _)| score > s) {
                    best = Some((score, bot));
                }
            }
        }
        best.map(|(score, bot)| Standardized { bot, kind: MatchKind::Fuzzy, score })
    }

    /// Standardize a whole batch of headers at once, returning one
    /// verdict per header — identical to calling
    /// [`Standardizer::standardize`] on each, but the fuzzy pass runs
    /// once per *distinct normalized token* in the batch instead of once
    /// per header. Real logs repeat the same handful of browser tokens
    /// (`Mozilla`, `AppleWebKit`, `Chrome`…) across thousands of agent
    /// variants, so this collapses the quadratic work almost entirely.
    pub fn standardize_batch(&self, headers: &[&str]) -> Vec<Option<&'static BotSpec>> {
        use std::collections::HashMap;
        let mut verdicts: Vec<Option<&'static BotSpec>> = Vec::with_capacity(headers.len());
        let mut token_lists: Vec<Option<Vec<String>>> = Vec::with_capacity(headers.len());
        let mut token_scores: HashMap<String, Option<(f64, &'static BotSpec)>> = HashMap::new();
        for &header in headers {
            if let Some(bot) = self.patterns.match_user_agent(header) {
                verdicts.push(Some(bot));
                token_lists.push(None);
                continue;
            }
            let tokens: Vec<String> = UserAgent::parse(header)
                .candidate_tokens()
                .iter()
                .map(|t| normalize_token(t))
                .collect();
            for token in &tokens {
                token_scores.entry(token.clone()).or_default();
            }
            verdicts.push(None);
            token_lists.push(Some(tokens));
        }
        for (token, slot) in &mut token_scores {
            *slot = self.fuzzy_token(token);
        }
        for (verdict, tokens) in verdicts.iter_mut().zip(&token_lists) {
            let Some(tokens) = tokens else { continue };
            // Same tie-breaking as the per-header path: the first token
            // with the strictly highest score wins.
            let mut best: Option<(f64, &'static BotSpec)> = None;
            for token in tokens {
                if let Some((score, bot)) = token_scores[token] {
                    if best.is_none_or(|(s, _)| score > s) {
                        best = Some((score, bot));
                    }
                }
            }
            *verdict = best.map(|(_, bot)| bot);
        }
        verdicts
    }

    /// Fuzzy-match one normalized candidate token against every
    /// canonical name. Jaro-Winkler is quadratic and allocates, so pairs
    /// that provably cannot clear the threshold are pruned first:
    /// jw = j + p·0.1·(1 − j) with prefix p ≤ 4 gives jw ≤ 0.4 + 0.6·j,
    /// so the Jaro part must reach j_min = (t − 0.4)/0.6; and with m
    /// character matches Jaro is at most (m/|a| + m/|b| + 1)/3, where m
    /// is bounded by the histogram overlap of the two strings.
    /// Normalized tokens are pure ASCII, so byte length == char count.
    fn fuzzy_token(&self, token_norm: &str) -> Option<(f64, &'static BotSpec)> {
        if token_norm.len() < 4 {
            return None; // too short to match confidently
        }
        let j_min = (self.fuzzy_threshold - 0.4) / 0.6;
        let token_counts = char_counts(token_norm);
        let mut best: Option<(f64, &'static BotSpec)> = None;
        for (canon_norm, canon_counts, bot) in &self.normalized {
            let m = common_chars_upper_bound(&token_counts, canon_counts) as f64;
            let j_bound = (m / token_norm.len() as f64 + m / canon_norm.len() as f64 + 1.0) / 3.0;
            if j_bound < j_min {
                continue;
            }
            let score = jaro_winkler(token_norm, canon_norm);
            if score >= self.fuzzy_threshold && best.is_none_or(|(s, _)| score > s) {
                best = Some((score, bot));
            }
        }
        best
    }
}

impl Default for Standardizer {
    fn default() -> Self {
        Self::new()
    }
}

/// Lowercase and strip separator characters so `Claude-Bot` and
/// `claudebot` compare equal.
fn normalize_token(s: &str) -> String {
    s.chars().filter(char::is_ascii_alphanumeric).map(|c| c.to_ascii_lowercase()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_matches() {
        let s = Standardizer::new();
        for (ua, want) in [
            ("Mozilla/5.0 (compatible; GPTBot/1.2)", "GPTBot"),
            ("Mozilla/5.0 AppleWebKit/537.36 (compatible; ClaudeBot/1.0; +claudebot@anthropic.com)", "ClaudeBot"),
            ("Bytespider; spider-feedback@bytedance.com", "Bytespider"),
            ("python-requests/2.28.1", "Python-requests"),
            ("Mozilla/5.0 (compatible; SemrushBot/7~bl; +http://www.semrush.com/bot.html)", "SemrushBot"),
        ] {
            let got = s.standardize(ua).unwrap_or_else(|| panic!("{ua} unmatched"));
            assert_eq!(got.bot.canonical, want);
            assert_eq!(got.kind, MatchKind::Exact);
            assert_eq!(got.score, 1.0);
        }
    }

    #[test]
    fn fuzzy_matches_near_spellings() {
        let s = Standardizer::new();
        let got = s.standardize("Claude-Bot/2.1 (+https://anthropic.com)").expect("fuzzy match");
        assert_eq!(got.bot.canonical, "ClaudeBot");
        assert_eq!(got.kind, MatchKind::Fuzzy);
        assert!(got.score >= s.fuzzy_threshold);
    }

    #[test]
    fn browsers_do_not_match() {
        let s = Standardizer::new();
        assert!(s
            .standardize("Mozilla/5.0 (Windows NT 10.0; Win64; x64) AppleWebKit/537.36 (KHTML, like Gecko) Chrome/120.0.0.0 Safari/537.36")
            .is_none());
        assert!(s.standardize("").is_none());
    }

    #[test]
    fn short_tokens_do_not_fuzzy_match() {
        let s = Standardizer::new();
        // "Bot/1.0" alone must not fuzz onto anything.
        assert!(s.standardize("Bot/1.0").is_none());
    }

    #[test]
    fn fuzzy_does_not_cross_match_distinct_bots() {
        let s = Standardizer::new();
        let got = s.standardize("Mozilla/5.0 (compatible; bingbot/2.0)").unwrap();
        assert_eq!(got.bot.canonical, "bingbot");
        let got = s.standardize("Mozilla/5.0 (compatible; DotBot/1.2; https://moz.com)").unwrap();
        assert_eq!(got.bot.canonical, "dotbot");
    }

    #[test]
    fn normalize_token_strips_separators() {
        assert_eq!(normalize_token("Claude-Bot"), "claudebot");
        assert_eq!(normalize_token("meta_external.agent"), "metaexternalagent");
    }

    #[test]
    fn pattern_index_matches_registry_scan() {
        // The indexed pass-1 must agree with the reference linear scan on
        // every registry pattern (embedded in realistic noise), on
        // multi-pattern headers (longest wins), and on non-matches.
        let s = Standardizer::new();
        for bot in s.registry().all() {
            for pat in bot.patterns {
                for header in [
                    format!("Mozilla/5.0 (compatible; {pat}/2.1; +https://example.com/bot)"),
                    pat.to_string(),
                    format!("prefix {pat}"),
                    format!("{}{}", pat.to_ascii_uppercase(), "/9.9 (KHTML, like Gecko)"),
                ] {
                    let reference = s.registry().match_user_agent(&header);
                    let indexed = s.patterns.match_user_agent(&header);
                    assert_eq!(
                        indexed.map(|b| b.canonical),
                        reference.map(|b| b.canonical),
                        "disagreement on {header:?}"
                    );
                }
            }
        }
        for header in [
            "",
            "g",
            "Mozilla/5.0 (Windows NT 10.0; Win64; x64) AppleWebKit/537.36 Chrome/120.0",
            "totally unrelated text with no bot names at all",
            // Two patterns in one header: the longer one must win in both.
            "Googlebot-Image/1.0 (compatible; Googlebot/2.1)",
        ] {
            let reference = s.registry().match_user_agent(header);
            let indexed = s.patterns.match_user_agent(header);
            assert_eq!(indexed.map(|b| b.canonical), reference.map(|b| b.canonical));
        }
    }
}

//! Bot-name standardization: raw `User-Agent` header → canonical bot name.
//!
//! Reproduces the paper's §3.1 pipeline: exact substring matching against a
//! corpus of known bot patterns, falling back to fuzzy string matching
//! (Jaro-Winkler over candidate tokens) for near-miss spellings such as
//! `Claude-Bot/1.0` or `semrush-bot`.

use crate::distance::jaro_winkler;
use crate::parse::UserAgent;
use crate::registry::{BotRegistry, BotSpec};

/// How a standardization result was obtained.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MatchKind {
    /// A registry pattern appeared verbatim (case-insensitive) in the UA.
    Exact,
    /// A candidate token matched a canonical name by fuzzy similarity.
    Fuzzy,
}

/// A successful standardization.
#[derive(Debug, Clone, Copy)]
pub struct Standardized {
    /// The matched registry entry.
    pub bot: &'static BotSpec,
    /// How the match was found.
    pub kind: MatchKind,
    /// Similarity score (1.0 for exact matches).
    pub score: f64,
}

/// Standardizer with a configurable fuzzy threshold.
#[derive(Debug)]
pub struct Standardizer {
    registry: BotRegistry,
    /// Minimum Jaro-Winkler similarity for a fuzzy match (default 0.93 —
    /// high enough that `bingbot` does not claim `dotbot`).
    pub fuzzy_threshold: f64,
}

impl Standardizer {
    /// Standardizer over the built-in registry with the default threshold.
    pub fn new() -> Self {
        Self { registry: BotRegistry::builtin(), fuzzy_threshold: 0.93 }
    }

    /// Access the underlying registry.
    pub fn registry(&self) -> &BotRegistry {
        &self.registry
    }

    /// Standardize a raw header. Returns `None` for agents that match no
    /// known bot (ordinary browsers, anonymous scrapers).
    pub fn standardize(&self, header: &str) -> Option<Standardized> {
        // Pass 1: substring patterns (the paper's regex corpus equivalent).
        if let Some(bot) = self.registry.match_user_agent(header) {
            return Some(Standardized { bot, kind: MatchKind::Exact, score: 1.0 });
        }

        // Pass 2: fuzzy matching over candidate tokens.
        let parsed = UserAgent::parse(header);
        let mut best: Option<(f64, &'static BotSpec)> = None;
        for token in parsed.candidate_tokens() {
            let token_norm = normalize_token(&token);
            if token_norm.len() < 4 {
                continue; // too short to match confidently
            }
            for bot in self.registry.all() {
                let canon_norm = normalize_token(bot.canonical);
                let score = jaro_winkler(&token_norm, &canon_norm);
                if score >= self.fuzzy_threshold && best.is_none_or(|(s, _)| score > s) {
                    best = Some((score, bot));
                }
            }
        }
        best.map(|(score, bot)| Standardized { bot, kind: MatchKind::Fuzzy, score })
    }
}

impl Default for Standardizer {
    fn default() -> Self {
        Self::new()
    }
}

/// Lowercase and strip separator characters so `Claude-Bot` and
/// `claudebot` compare equal.
fn normalize_token(s: &str) -> String {
    s.chars().filter(|c| c.is_ascii_alphanumeric()).map(|c| c.to_ascii_lowercase()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_matches() {
        let s = Standardizer::new();
        for (ua, want) in [
            ("Mozilla/5.0 (compatible; GPTBot/1.2)", "GPTBot"),
            ("Mozilla/5.0 AppleWebKit/537.36 (compatible; ClaudeBot/1.0; +claudebot@anthropic.com)", "ClaudeBot"),
            ("Bytespider; spider-feedback@bytedance.com", "Bytespider"),
            ("python-requests/2.28.1", "Python-requests"),
            ("Mozilla/5.0 (compatible; SemrushBot/7~bl; +http://www.semrush.com/bot.html)", "SemrushBot"),
        ] {
            let got = s.standardize(ua).unwrap_or_else(|| panic!("{ua} unmatched"));
            assert_eq!(got.bot.canonical, want);
            assert_eq!(got.kind, MatchKind::Exact);
            assert_eq!(got.score, 1.0);
        }
    }

    #[test]
    fn fuzzy_matches_near_spellings() {
        let s = Standardizer::new();
        let got = s.standardize("Claude-Bot/2.1 (+https://anthropic.com)").expect("fuzzy match");
        assert_eq!(got.bot.canonical, "ClaudeBot");
        assert_eq!(got.kind, MatchKind::Fuzzy);
        assert!(got.score >= s.fuzzy_threshold);
    }

    #[test]
    fn browsers_do_not_match() {
        let s = Standardizer::new();
        assert!(s
            .standardize("Mozilla/5.0 (Windows NT 10.0; Win64; x64) AppleWebKit/537.36 (KHTML, like Gecko) Chrome/120.0.0.0 Safari/537.36")
            .is_none());
        assert!(s.standardize("").is_none());
    }

    #[test]
    fn short_tokens_do_not_fuzzy_match() {
        let s = Standardizer::new();
        // "Bot/1.0" alone must not fuzz onto anything.
        assert!(s.standardize("Bot/1.0").is_none());
    }

    #[test]
    fn fuzzy_does_not_cross_match_distinct_bots() {
        let s = Standardizer::new();
        let got = s.standardize("Mozilla/5.0 (compatible; bingbot/2.0)").unwrap();
        assert_eq!(got.bot.canonical, "bingbot");
        let got = s.standardize("Mozilla/5.0 (compatible; DotBot/1.2; https://moz.com)").unwrap();
        assert_eq!(got.bot.canonical, "dotbot");
    }

    #[test]
    fn normalize_token_strips_separators() {
        assert_eq!(normalize_token("Claude-Bot"), "claudebot");
        assert_eq!(normalize_token("meta_external.agent"), "metaexternalagent");
    }
}

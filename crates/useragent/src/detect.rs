//! Coarse agent classification.
//!
//! The study's dataset splits traffic into "known bots" (self-declared,
//! well-documented user agents) versus everything else — browsers, generic
//! HTTP libraries, and headless browsers presumed to be unidentified
//! scrapers (paper §3.2, Figure 2's "Headless Browsers" category).
//! [`classify`] reproduces that split.

use crate::registry::{BotRegistry, BotSpec};

/// The coarse class of a web agent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AgentClass {
    /// A self-declared, documented bot.
    KnownBot(&'static BotSpec),
    /// A browser running without a GUI — presumed scraper (the paper's
    /// "Headless Browsers" category is "mostly composed of likely scraper
    /// bots that do not identify themselves").
    HeadlessBrowser(&'static BotSpec),
    /// An ordinary interactive browser.
    Browser,
    /// Anything else: empty or unrecognizable user agents.
    Unknown,
}

impl AgentClass {
    /// Whether the agent is any kind of bot (known or headless).
    pub fn is_bot(&self) -> bool {
        matches!(self, AgentClass::KnownBot(_) | AgentClass::HeadlessBrowser(_))
    }
}

/// Tokens that indicate an interactive browser when no bot pattern matched.
const BROWSER_MARKERS: [&str; 6] = ["mozilla/", "chrome/", "safari/", "firefox/", "edg/", "opera/"];

/// Classify a raw `User-Agent` header against the registry.
///
/// Order matters: headless markers are checked *before* the generic
/// browser markers because a headless Chrome UA contains both.
pub fn classify(registry: &BotRegistry, header: &str) -> AgentClass {
    let lower = header.to_ascii_lowercase();
    if lower.trim().is_empty() {
        return AgentClass::Unknown;
    }
    if let Some(bot) = registry.match_user_agent(header) {
        if bot.category == crate::category::BotCategory::HeadlessBrowser {
            return AgentClass::HeadlessBrowser(bot);
        }
        return AgentClass::KnownBot(bot);
    }
    if BROWSER_MARKERS.iter().any(|m| lower.contains(m)) {
        return AgentClass::Browser;
    }
    AgentClass::Unknown
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::registry;

    #[test]
    fn known_bots() {
        let reg = registry();
        let c = classify(&reg, "Mozilla/5.0 (compatible; GPTBot/1.1; +https://openai.com/gptbot)");
        match c {
            AgentClass::KnownBot(b) => assert_eq!(b.canonical, "GPTBot"),
            other => panic!("{other:?}"),
        }
        assert!(c.is_bot());
    }

    #[test]
    fn headless_chrome_is_headless_not_browser() {
        let reg = registry();
        let c = classify(
            &reg,
            "Mozilla/5.0 (X11; Linux x86_64) AppleWebKit/537.36 (KHTML, like Gecko) HeadlessChrome/119.0.0.0 Safari/537.36",
        );
        match c {
            AgentClass::HeadlessBrowser(b) => assert_eq!(b.canonical, "HeadlessChrome"),
            other => panic!("{other:?}"),
        }
        assert!(c.is_bot());
    }

    #[test]
    fn ordinary_browser() {
        let reg = registry();
        let c = classify(
            &reg,
            "Mozilla/5.0 (Macintosh; Intel Mac OS X 10_15_7) AppleWebKit/605.1.15 (KHTML, like Gecko) Version/17.1 Safari/605.1.15",
        );
        assert_eq!(c, AgentClass::Browser);
        assert!(!c.is_bot());
    }

    #[test]
    fn empty_is_unknown() {
        let reg = registry();
        assert_eq!(classify(&reg, ""), AgentClass::Unknown);
        assert_eq!(classify(&reg, "   "), AgentClass::Unknown);
        assert_eq!(classify(&reg, "x"), AgentClass::Unknown);
    }

    #[test]
    fn http_libraries_are_known_bots_in_other_category() {
        let reg = registry();
        match classify(&reg, "python-requests/2.31.0") {
            AgentClass::KnownBot(b) => {
                assert_eq!(b.canonical, "Python-requests");
                assert_eq!(b.category, crate::category::BotCategory::Other);
            }
            other => panic!("{other:?}"),
        }
    }
}

//! The bot-category taxonomy.
//!
//! The study adopts the categories maintained by the Dark Visitors
//! industry tracker (paper §3.1): "AI Agents, AI Assistants, AI Data
//! Scrapers, Archivers, Developer Helpers, Fetchers, Headless Agents,
//! Intelligence Gatherers, Scrapers, Search Engine Crawlers, SEO Crawlers,
//! Uncategorized, and Undocumented AI Agents", plus the AI Search Crawler
//! category used throughout the evaluation and the "Other" catch-all of
//! Table 5.

use std::fmt;

/// Dark-Visitors-style bot categories (paper §3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum BotCategory {
    /// Bots from AI companies operating as part of an agent pipeline.
    AiAgent,
    /// Bots retrieving content to supplement AI queries (e.g. ChatGPT-User).
    AiAssistant,
    /// Bots scraping AI training data (e.g. GPTBot, ClaudeBot, Bytespider).
    AiDataScraper,
    /// Crawlers feeding AI-powered search (e.g. Applebot, PerplexityBot,
    /// Amazonbot).
    AiSearchCrawler,
    /// Web-archiving crawlers (e.g. ia_archiver).
    Archiver,
    /// Site-health / developer tooling (validators, uptime monitors).
    DeveloperHelper,
    /// Link-preview and embed fetchers (e.g. facebookexternalhit).
    Fetcher,
    /// Browsers running without a GUI — typically unidentified scrapers.
    HeadlessBrowser,
    /// Data collection for non-SEO, non-AI purposes (paper §3.1).
    IntelligenceGatherer,
    /// Self-declared scraping frameworks (e.g. Scrapy).
    Scraper,
    /// Traditional search-engine indexing crawlers (e.g. Googlebot).
    SearchEngineCrawler,
    /// Search-engine-optimization auditing crawlers (e.g. SemrushBot).
    SeoCrawler,
    /// AI agents observed in the wild but not documented by their vendor.
    UndocumentedAiAgent,
    /// Known bots that fit none of the above (the paper's "Other" row:
    /// HTTP libraries with declared names, preview proxies, etc.).
    Other,
    /// Could not be categorized at all.
    Uncategorized,
}

impl BotCategory {
    /// All categories, in the display order used by the paper's Table 5
    /// followed by the remaining ones.
    pub const ALL: [BotCategory; 15] = [
        BotCategory::AiAssistant,
        BotCategory::AiDataScraper,
        BotCategory::AiSearchCrawler,
        BotCategory::Fetcher,
        BotCategory::HeadlessBrowser,
        BotCategory::IntelligenceGatherer,
        BotCategory::Other,
        BotCategory::SeoCrawler,
        BotCategory::SearchEngineCrawler,
        BotCategory::AiAgent,
        BotCategory::Archiver,
        BotCategory::DeveloperHelper,
        BotCategory::Scraper,
        BotCategory::UndocumentedAiAgent,
        BotCategory::Uncategorized,
    ];

    /// Human-readable name as printed in the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            BotCategory::AiAgent => "AI Agents",
            BotCategory::AiAssistant => "AI Assistants",
            BotCategory::AiDataScraper => "AI Data Scrapers",
            BotCategory::AiSearchCrawler => "AI Search Crawlers",
            BotCategory::Archiver => "Archivers",
            BotCategory::DeveloperHelper => "Developer Helpers",
            BotCategory::Fetcher => "Fetchers",
            BotCategory::HeadlessBrowser => "Headless Browsers",
            BotCategory::IntelligenceGatherer => "Intelligence Gatherers",
            BotCategory::Scraper => "Scrapers",
            BotCategory::SearchEngineCrawler => "Search Engine Crawlers",
            BotCategory::SeoCrawler => "SEO Crawlers",
            BotCategory::UndocumentedAiAgent => "Undocumented AI Agents",
            BotCategory::Other => "Other",
            BotCategory::Uncategorized => "Uncategorized",
        }
    }

    /// Whether the category is AI-related (used by the paper's discussion
    /// of AI-bot re-check rates in §5.1).
    pub fn is_ai(self) -> bool {
        matches!(
            self,
            BotCategory::AiAgent
                | BotCategory::AiAssistant
                | BotCategory::AiDataScraper
                | BotCategory::AiSearchCrawler
                | BotCategory::UndocumentedAiAgent
        )
    }
}

impl fmt::Display for BotCategory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn names_are_unique() {
        let names: BTreeSet<&str> = BotCategory::ALL.iter().map(|c| c.name()).collect();
        assert_eq!(names.len(), BotCategory::ALL.len());
    }

    #[test]
    fn ai_flag() {
        assert!(BotCategory::AiDataScraper.is_ai());
        assert!(BotCategory::AiAssistant.is_ai());
        assert!(BotCategory::AiSearchCrawler.is_ai());
        assert!(!BotCategory::SeoCrawler.is_ai());
        assert!(!BotCategory::SearchEngineCrawler.is_ai());
        assert!(!BotCategory::HeadlessBrowser.is_ai());
    }

    #[test]
    fn display_matches_paper_table5_labels() {
        assert_eq!(BotCategory::AiAssistant.to_string(), "AI Assistants");
        assert_eq!(BotCategory::SeoCrawler.to_string(), "SEO Crawlers");
        assert_eq!(BotCategory::HeadlessBrowser.to_string(), "Headless Browsers");
        assert_eq!(BotCategory::Other.to_string(), "Other");
    }
}

//! The built-in bot database.
//!
//! Every bot named anywhere in the paper (Tables 3, 6, 7, 8; Figures 9/11;
//! the eight SEO-exempt agents of §4.1) is present with the paper's own
//! metadata. The remaining entries reproduce the scale of the study's
//! corpus ("130 self-declared bots") using publicly documented crawlers
//! from bot-tracking corpora; their metadata is representative.
//!
//! `home_asn` is the autonomous system a bot's legitimate traffic
//! overwhelmingly originates from (paper Table 8, "Main ASN"). The traffic
//! simulator uses it as ground truth; the spoof-detection analysis must
//! then rediscover it from the generated logs.

use crate::category::BotCategory;
use crate::registry::{BotSpec, RobotsPromise};

macro_rules! bot {
    ($canonical:expr, [$($pat:expr),+ $(,)?], $cat:ident, $sponsor:expr, $promise:ident, $asn:expr) => {
        BotSpec {
            canonical: $canonical,
            patterns: &[$($pat),+],
            category: BotCategory::$cat,
            sponsor: $sponsor,
            respects_robots: RobotsPromise::$promise,
            home_asn: $asn,
        }
    };
}

/// The full database. Order is irrelevant; lookups pick the longest
/// matching pattern.
pub const BOTS: &[BotSpec] = &[
    // ===================== AI data scrapers =====================
    bot!("GPTBot", ["gptbot"], AiDataScraper, "OpenAI", Yes, "MICROSOFT-CORP-MSN-AS-BLOCK"),
    bot!("ClaudeBot", ["claudebot"], AiDataScraper, "Anthropic", Yes, "AMAZON-02"),
    bot!("Bytespider", ["bytespider"], AiDataScraper, "ByteDance", No, "CHINANET-BACKBONE"),
    bot!("meta-externalagent", ["meta-externalagent"], AiDataScraper, "Meta", Yes, "FACEBOOK"),
    bot!("CCBot", ["ccbot"], AiDataScraper, "Common Crawl", Yes, "AMAZON-AES"),
    bot!(
        "Applebot-Extended",
        ["applebot-extended"],
        AiDataScraper,
        "Apple",
        Yes,
        "APPLE-ENGINEERING"
    ),
    bot!("FacebookBot", ["facebookbot"], AiDataScraper, "Meta", Yes, "FACEBOOK"),
    bot!("Google-Extended", ["google-extended"], AiDataScraper, "Google", Yes, "GOOGLE"),
    bot!(
        "Google-CloudVertexBot",
        ["google-cloudvertexbot"],
        AiDataScraper,
        "Google",
        Yes,
        "GOOGLE-CLOUD-PLATFORM"
    ),
    bot!(
        "cohere-training-data-crawler",
        ["cohere-training-data"],
        AiDataScraper,
        "Cohere",
        Unknown,
        "AMAZON-02"
    ),
    bot!("AI2Bot", ["ai2bot"], AiDataScraper, "Allen AI", Yes, "AMAZON-02"),
    bot!("PanguBot", ["pangubot"], AiDataScraper, "Huawei", Unknown, "HWCLOUDS-AS-AP"),
    bot!("Diffbot", ["diffbot"], AiDataScraper, "Diffbot", No, "MICROSOFT-CORP-AS"),
    bot!("TikTokSpider", ["tiktokspider"], AiDataScraper, "ByteDance", No, "CHINANET-BACKBONE"),
    bot!("img2dataset", ["img2dataset"], AiDataScraper, "Open Source", Unknown, "OVH"),
    bot!("Timpibot", ["timpibot"], AiDataScraper, "Timpi", Unknown, "AMAZON-02"),
    bot!(
        "VelenPublicWebCrawler",
        ["velenpublicwebcrawler"],
        AiDataScraper,
        "Velen",
        Yes,
        "HETZNER-AS"
    ),
    bot!(
        "Webzio-Extended",
        ["webzio-extended"],
        AiDataScraper,
        "Webz.io",
        Unknown,
        "DIGITALOCEAN-ASN"
    ),
    bot!("Kangaroo Bot", ["kangaroo bot"], AiDataScraper, "Kangaroo", Unknown, "ALIBABA-CN-NET"),
    bot!("Sidetrade indexer bot", ["sidetrade"], AiDataScraper, "Sidetrade", Unknown, "OVH"),
    // ===================== AI assistants =====================
    bot!(
        "ChatGPT-User",
        ["chatgpt-user"],
        AiAssistant,
        "OpenAI",
        Yes,
        "MICROSOFT-CORP-MSN-AS-BLOCK"
    ),
    bot!("Claude-User", ["claude-user"], AiAssistant, "Anthropic", Yes, "AMAZON-02"),
    bot!("Perplexity-User", ["perplexity-user"], AiAssistant, "Perplexity", No, "AMAZON-02"),
    bot!(
        "Meta-ExternalFetcher",
        ["meta-externalfetcher"],
        AiAssistant,
        "Meta",
        Unknown,
        "FACEBOOK"
    ),
    bot!(
        "MistralAI-User",
        ["mistralai-user"],
        AiAssistant,
        "Mistral",
        Yes,
        "GOOGLE-CLOUD-PLATFORM"
    ),
    bot!(
        "DuckAssistBot",
        ["duckassistbot"],
        AiAssistant,
        "DuckDuckGo",
        Yes,
        "MICROSOFT-CORP-MSN-AS-BLOCK"
    ),
    bot!("Cohere-AI", ["cohere-ai"], AiAssistant, "Cohere", Unknown, "AMAZON-02"),
    bot!("YouBot", ["youbot"], AiAssistant, "You.com", Yes, "AMAZON-02"),
    bot!("iAskBot", ["iaskbot"], AiAssistant, "iAsk", Unknown, "CLOUDFLARENET"),
    bot!("LinerBot", ["linerbot"], AiAssistant, "Liner", Unknown, "AMAZON-02"),
    // ===================== AI search crawlers =====================
    bot!("Applebot", ["applebot"], AiSearchCrawler, "Apple", Yes, "APPLE-ENGINEERING"),
    bot!("Amazonbot", ["amazonbot"], AiSearchCrawler, "Amazon", Yes, "AMAZON-AES"),
    bot!("PerplexityBot", ["perplexitybot"], AiSearchCrawler, "Perplexity", No, "AMAZON-02"),
    bot!(
        "OAI-SearchBot",
        ["oai-searchbot"],
        AiSearchCrawler,
        "OpenAI",
        Yes,
        "MICROSOFT-CORP-MSN-AS-BLOCK"
    ),
    bot!("Claude-SearchBot", ["claude-searchbot"], AiSearchCrawler, "Anthropic", Yes, "AMAZON-02"),
    bot!("Andibot", ["andibot"], AiSearchCrawler, "Andi", Unknown, "GOOGLE-CLOUD-PLATFORM"),
    bot!("PhindBot", ["phindbot"], AiSearchCrawler, "Phind", Unknown, "AMAZON-02"),
    bot!("ExaBot-AI", ["exabot-ai"], AiSearchCrawler, "Exa", Unknown, "AMAZON-02"),
    // ===================== AI agents =====================
    bot!(
        "Operator",
        ["operator/openai", "openai-operator"],
        AiAgent,
        "OpenAI",
        Yes,
        "MICROSOFT-CORP-MSN-AS-BLOCK"
    ),
    bot!("Claude-Agent", ["claude-agent"], AiAgent, "Anthropic", Yes, "AMAZON-02"),
    bot!("Google-Mariner", ["google-mariner"], AiAgent, "Google", Yes, "GOOGLE"),
    bot!("NovaAct", ["novaact"], AiAgent, "Amazon", Unknown, "AMAZON-AES"),
    bot!("Devin", ["devin/"], AiAgent, "Cognition", Unknown, "AMAZON-02"),
    bot!("Manus", ["manus/"], AiAgent, "Monica", Unknown, "ALIBABA-CN-NET"),
    // ================= Undocumented AI agents =================
    bot!("AgentQ", ["agentq"], UndocumentedAiAgent, "Unknown", Unknown, "DIGITALOCEAN-ASN"),
    bot!("AutoAgentX", ["autoagentx"], UndocumentedAiAgent, "Unknown", Unknown, "M247"),
    bot!("BrowserPilot", ["browserpilot"], UndocumentedAiAgent, "Unknown", Unknown, "CONTABO"),
    // ================= Search engine crawlers =================
    bot!("Googlebot", ["googlebot/", "googlebot)"], SearchEngineCrawler, "Google", Yes, "GOOGLE"),
    bot!("Googlebot-Image", ["googlebot-image"], SearchEngineCrawler, "Google", Yes, "GOOGLE"),
    bot!("Googlebot-News", ["googlebot-news"], SearchEngineCrawler, "Google", Yes, "GOOGLE"),
    bot!("Googlebot-Video", ["googlebot-video"], SearchEngineCrawler, "Google", Yes, "GOOGLE"),
    bot!(
        "bingbot",
        ["bingbot"],
        SearchEngineCrawler,
        "Microsoft",
        Yes,
        "MICROSOFT-CORP-MSN-AS-BLOCK"
    ),
    bot!("Slurp", ["slurp"], SearchEngineCrawler, "Yahoo", Yes, "YAHOO-INC"),
    bot!(
        "DuckDuckBot",
        ["duckduckbot"],
        SearchEngineCrawler,
        "DuckDuckGo",
        Yes,
        "MICROSOFT-CORP-MSN-AS-BLOCK"
    ),
    bot!("Baiduspider", ["baiduspider"], SearchEngineCrawler, "Baidu", Yes, "CHINA169-Backbone"),
    bot!("Yandexbot", ["yandexbot"], SearchEngineCrawler, "Yandex", Yes, "YANDEX"),
    bot!("yandex.com/bots", ["yandex.com/bots"], SearchEngineCrawler, "Yandex", Yes, "YANDEX"),
    bot!(
        "YisouSpider",
        ["yisouspider", "yisou spider"],
        SearchEngineCrawler,
        "Yisou",
        No,
        "ALIBABA-CN-NET"
    ),
    bot!(
        "Sogou web spider",
        ["sogou web spider"],
        SearchEngineCrawler,
        "Sogou",
        Yes,
        "CHINANET-BACKBONE"
    ),
    bot!(
        "360Spider",
        ["360spider"],
        SearchEngineCrawler,
        "Qihoo 360",
        Unknown,
        "CHINA169-Backbone"
    ),
    bot!("PetalBot", ["petalbot"], SearchEngineCrawler, "Huawei", Yes, "HWCLOUDS-AS-AP"),
    bot!("Coccoc", ["coccoc"], SearchEngineCrawler, "Coc Coc", Yes, "VNPT-AS-VN"),
    bot!("SeznamBot", ["seznambot"], SearchEngineCrawler, "Seznam.cz", Yes, "SEZNAM-CZ"),
    bot!(
        "SemanticScholarBot",
        ["semanticscholarbot"],
        SearchEngineCrawler,
        "Allen AI",
        Yes,
        "AMAZON-02"
    ),
    bot!("Yeti", ["naverbot", "yeti/"], SearchEngineCrawler, "Naver", Yes, "NAVER-KR"),
    bot!("Daumoa", ["daumoa"], SearchEngineCrawler, "Kakao", Yes, "KAKAO-AS-KR-KR51"),
    bot!("Mail.RU_Bot", ["mail.ru_bot"], SearchEngineCrawler, "VK", Yes, "MAILRU-AS"),
    bot!("MojeekBot", ["mojeekbot"], SearchEngineCrawler, "Mojeek", Yes, "MOJEEK-AS"),
    bot!("Qwantbot", ["qwantify", "qwantbot"], SearchEngineCrawler, "Qwant", Yes, "OVH"),
    bot!("SeekportBot", ["seekportbot"], SearchEngineCrawler, "Seekport", Yes, "HETZNER-AS"),
    bot!("MarginaliaBot", ["marginalia"], SearchEngineCrawler, "Marginalia", Yes, "DATACLUB"),
    bot!("Kagibot", ["kagibot"], SearchEngineCrawler, "Kagi", Yes, "GOOGLE-CLOUD-PLATFORM"),
    bot!("Exabot", ["exabot/"], SearchEngineCrawler, "Exalead", Yes, "ORANGE-BUSINESS"),
    bot!("Teoma", ["teoma"], SearchEngineCrawler, "Ask.com", Yes, "ASK-COM"),
    bot!("BraveBot", ["bravebot"], SearchEngineCrawler, "Brave", Yes, "AMAZON-02"),
    // ===================== SEO crawlers =====================
    bot!("SemrushBot", ["semrushbot"], SeoCrawler, "Semrush", Yes, "SEMRUSH-AS"),
    bot!("AhrefsBot", ["ahrefsbot"], SeoCrawler, "Ahrefs", Yes, "OVH"),
    bot!("dotbot", ["dotbot"], SeoCrawler, "Moz", Yes, "AMAZON-02"),
    bot!(
        "BrightEdge Crawler",
        ["brightedge"],
        SeoCrawler,
        "BrightEdge",
        Yes,
        "GOOGLE-CLOUD-PLATFORM"
    ),
    bot!(
        "DataForSEOBot",
        ["dataforseobot", "dataforseo-bot"],
        SeoCrawler,
        "DataForSEO",
        Yes,
        "HETZNER-AS"
    ),
    bot!("MJ12bot", ["mj12bot"], SeoCrawler, "Majestic", Yes, "DISTRIBUTED-MAJESTIC"),
    bot!("BLEXBot", ["blexbot"], SeoCrawler, "WebMeUp", Yes, "HETZNER-AS"),
    bot!("serpstatbot", ["serpstatbot"], SeoCrawler, "Serpstat", Yes, "HETZNER-AS"),
    bot!("SISTRIX Crawler", ["sistrix"], SeoCrawler, "SISTRIX", Yes, "SISTRIX-AS"),
    bot!("SEOkicks", ["seokicks"], SeoCrawler, "SEOkicks", Yes, "HETZNER-AS"),
    bot!(
        "Screaming Frog SEO Spider",
        ["screaming frog"],
        SeoCrawler,
        "Screaming Frog",
        Yes,
        "VARIOUS-RESIDENTIAL"
    ),
    bot!("Barkrowler", ["barkrowler"], SeoCrawler, "Babbar", Yes, "OVH"),
    bot!(
        "AwarioBot",
        ["awariobot", "awariosmartbot"],
        SeoCrawler,
        "Awario",
        Yes,
        "DIGITALOCEAN-ASN"
    ),
    bot!("OnCrawl", ["oncrawl"], SeoCrawler, "OnCrawl", Yes, "OVH"),
    // ===================== Fetchers =====================
    bot!("facebookexternalhit", ["facebookexternalhit"], Fetcher, "Meta", No, "FACEBOOK"),
    bot!("Twitterbot", ["twitterbot"], Fetcher, "X Corp", Yes, "TWITTER"),
    bot!("LinkedInBot", ["linkedinbot"], Fetcher, "Microsoft", Yes, "MICROSOFT-CORP-AS"),
    bot!("WhatsApp", ["whatsapp/"], Fetcher, "Meta", No, "FACEBOOK"),
    bot!("TelegramBot", ["telegrambot"], Fetcher, "Telegram", No, "TELEGRAM"),
    bot!("Discordbot", ["discordbot"], Fetcher, "Discord", Yes, "GOOGLE-CLOUD-PLATFORM"),
    bot!("Pinterestbot", ["pinterestbot", "pinterest/"], Fetcher, "Pinterest", Yes, "AMAZON-02"),
    bot!("redditbot", ["redditbot"], Fetcher, "Reddit", Yes, "AMAZON-02"),
    bot!(
        "Slackbot-LinkExpanding",
        ["slackbot-linkexpanding"],
        Fetcher,
        "Salesforce",
        Yes,
        "AMAZON-AES"
    ),
    bot!("Snap URL Preview Service", ["snap url preview"], Fetcher, "Snap", No, "AMAZON-AES"),
    bot!("Google Web Preview", ["google web preview"], Fetcher, "Google", No, "GOOGLE"),
    bot!("AppleNewsBot", ["applenewsbot"], Fetcher, "Apple", Yes, "APPLE-ENGINEERING"),
    bot!("Embedly", ["embedly"], Fetcher, "Medium", Yes, "AMAZON-AES"),
    bot!("Quora-Bot", ["quora-bot"], Fetcher, "Quora", Unknown, "AMAZON-02"),
    bot!("BitlyBot", ["bitlybot"], Fetcher, "Bitly", Unknown, "AMAZON-AES"),
    // ===================== Archivers =====================
    bot!("ia_archiver", ["ia_archiver"], Archiver, "Internet Archive", Yes, "INTERNET-ARCHIVE"),
    bot!(
        "archive.org_bot",
        ["archive.org_bot"],
        Archiver,
        "Internet Archive",
        Yes,
        "INTERNET-ARCHIVE"
    ),
    bot!("heritrix", ["heritrix"], Archiver, "Internet Archive", Yes, "INTERNET-ARCHIVE"),
    bot!("Arquivo-web-crawler", ["arquivo-web-crawler"], Archiver, "Arquivo.pt", Yes, "FCCN-PT"),
    bot!("NiceCrawler", ["nicecrawler"], Archiver, "NiceCrawler", Unknown, "HETZNER-AS"),
    // ================= Intelligence gatherers =================
    bot!("ZoominfoBot", ["zoominfobot"], IntelligenceGatherer, "ZoomInfo", Unknown, "AMAZON-AES"),
    bot!("BuiltWith", ["builtwith"], IntelligenceGatherer, "BuiltWith", Unknown, "AMAZON-02"),
    bot!(
        "DataproviderBot",
        ["dataprovider"],
        IntelligenceGatherer,
        "Dataprovider.com",
        Yes,
        "LEASEWEB-NL"
    ),
    bot!(
        "TurnitinBot",
        ["turnitinbot", "turnitin"],
        IntelligenceGatherer,
        "Turnitin",
        Yes,
        "TURNITIN-AS"
    ),
    bot!(
        "Omgilibot",
        ["omgilibot", "omgili/"],
        IntelligenceGatherer,
        "Webz.io",
        Unknown,
        "DIGITALOCEAN-ASN"
    ),
    bot!("MeltwaterNews", ["meltwater"], IntelligenceGatherer, "Meltwater", Unknown, "AMAZON-02"),
    bot!("CriteoBot", ["criteobot"], IntelligenceGatherer, "Criteo", Unknown, "CRITEO-AS"),
    bot!("ImagesiftBot", ["imagesiftbot"], IntelligenceGatherer, "Hive", Yes, "DIGITALOCEAN-ASN"),
    bot!(
        "CincrawData",
        ["cincraw"],
        IntelligenceGatherer,
        "Cincraw",
        Unknown,
        "NTT-COMMUNICATIONS"
    ),
    bot!("PiplBot", ["piplbot"], IntelligenceGatherer, "Pipl", Unknown, "AMAZON-AES"),
    // ================= Developer helpers =================
    bot!("UptimeRobot", ["uptimerobot"], DeveloperHelper, "UptimeRobot", Unknown, "M247"),
    bot!("Pingdom", ["pingdom"], DeveloperHelper, "SolarWinds", Unknown, "PINGDOM-AS"),
    bot!("StatusCake", ["statuscake"], DeveloperHelper, "StatusCake", Unknown, "M247"),
    bot!("GTmetrix", ["gtmetrix"], DeveloperHelper, "Carbon60", Unknown, "CARBON60"),
    bot!("W3C_Validator", ["w3c_validator"], DeveloperHelper, "W3C", Yes, "W3C-MIT"),
    bot!("Chrome-Lighthouse", ["chrome-lighthouse"], DeveloperHelper, "Google", No, "GOOGLE"),
    bot!("GoogleOther", ["googleother"], DeveloperHelper, "Google", Yes, "GOOGLE"),
    bot!(
        "Google-InspectionTool",
        ["google-inspectiontool"],
        DeveloperHelper,
        "Google",
        Yes,
        "GOOGLE"
    ),
    bot!("AdsBot-Google", ["adsbot-google"], DeveloperHelper, "Google", Yes, "GOOGLE"),
    bot!(
        "Google-Site-Verification",
        ["google-site-verification"],
        DeveloperHelper,
        "Google",
        Yes,
        "GOOGLE"
    ),
    // ===================== Scrapers =====================
    bot!("Scrapy", ["scrapy"], Scraper, "Open Source", Unknown, "DIGITALOCEAN-ASN"),
    bot!("colly", ["colly - "], Scraper, "Open Source", Unknown, "DIGITALOCEAN-ASN"),
    bot!("HTTrack", ["httrack"], Scraper, "Open Source", Unknown, "VARIOUS-RESIDENTIAL"),
    bot!("webcopier", ["webcopier"], Scraper, "MaximumSoft", No, "VARIOUS-RESIDENTIAL"),
    bot!(
        "NodeCrawler",
        ["node-crawler", "nodecrawler"],
        Scraper,
        "Open Source",
        Unknown,
        "DIGITALOCEAN-ASN"
    ),
    // ================= Headless browsers =================
    bot!(
        "HeadlessChrome",
        ["headlesschrome"],
        HeadlessBrowser,
        "Open Source",
        Unknown,
        "DIGITALOCEAN-ASN"
    ),
    bot!("PhantomJS", ["phantomjs"], HeadlessBrowser, "Open Source", Unknown, "OVH"),
    bot!("Puppeteer", ["puppeteer"], HeadlessBrowser, "Google", Unknown, "AMAZON-02"),
    bot!("Playwright", ["playwright"], HeadlessBrowser, "Microsoft", Unknown, "MICROSOFT-CORP-AS"),
    bot!("Selenium", ["selenium"], HeadlessBrowser, "Open Source", Unknown, "HETZNER-AS"),
    bot!("Electron", ["electron/"], HeadlessBrowser, "OpenJS", Unknown, "VARIOUS-RESIDENTIAL"),
    // =============== HTTP libraries & preview proxies ("Other") ===============
    bot!("Python-requests", ["python-requests"], Other, "Open Source", Unknown, "DIGITALOCEAN-ASN"),
    bot!("python-urllib", ["python-urllib"], Other, "Open Source", Unknown, "DIGITALOCEAN-ASN"),
    bot!("python-httpx", ["python-httpx"], Other, "Open Source", Unknown, "DIGITALOCEAN-ASN"),
    bot!("aiohttp", ["aiohttp"], Other, "Open Source", Unknown, "DIGITALOCEAN-ASN"),
    bot!("Go-http-client", ["go-http-client"], Other, "Open Source", Unknown, "DIGITALOCEAN-ASN"),
    bot!("Axios", ["axios/"], Other, "Open Source", No, "AMAZON-02"),
    bot!("node-fetch", ["node-fetch"], Other, "Open Source", Unknown, "AMAZON-02"),
    bot!("okhttp", ["okhttp"], Other, "Open Source", Unknown, "VARIOUS-RESIDENTIAL"),
    bot!("Apache-HttpClient", ["apache-httpclient"], Other, "Apache", Unknown, "DIGITALOCEAN-ASN"),
    bot!("Java-http-client", ["java/"], Other, "Open Source", Unknown, "AMAZON-AES"),
    bot!("libwww-perl", ["libwww-perl"], Other, "Open Source", Unknown, "HETZNER-AS"),
    bot!("curl", ["curl/"], Other, "Open Source", Unknown, "VARIOUS-RESIDENTIAL"),
    bot!("Wget", ["wget/"], Other, "Open Source", Unknown, "VARIOUS-RESIDENTIAL"),
    bot!("Guzzle", ["guzzlehttp"], Other, "Open Source", Unknown, "OVH"),
    bot!("Faraday", ["faraday v"], Other, "Open Source", Unknown, "HETZNER-AS"),
    bot!(
        "got",
        ["got (https://github.com/sindresorhus/got)"],
        Other,
        "Open Source",
        Unknown,
        "AMAZON-02"
    ),
    bot!(
        "SkypeUriPreview",
        ["skypeuripreview"],
        Other,
        "Microsoft",
        Yes,
        "MICROSOFT-CORP-MSN-AS-BLOCK"
    ),
    bot!(
        "MicrosoftPreview",
        ["microsoftpreview"],
        Other,
        "Microsoft",
        Yes,
        "MICROSOFT-CORP-MSN-AS-BLOCK"
    ),
    bot!("Slack-ImgProxy", ["slack-imgproxy"], Other, "Salesforce", No, "AMAZON-AES"),
    bot!("Iframely", ["iframely"], Other, "Itteco", Yes, "AMAZON-AES"),
    bot!("AcademicBotRTU", ["academicbotrtu"], Other, "Riga Technical", Unknown, "LATNET"),
    bot!("Barracuda Sentinel", ["barracuda sentinel"], Other, "Barracuda", Unknown, "BARRACUDA-AS"),
    bot!("MauiBot", ["mauibot"], Other, "Unknown", Unknown, "AMAZON-AES"),
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn database_scale() {
        assert!(BOTS.len() >= 120, "only {} bots", BOTS.len());
    }

    #[test]
    fn seo_exempt_list_is_complete() {
        // The eight SEO-exempt agents of paper §4.1 must all be resolvable.
        let exempt = [
            "Googlebot",
            "Slurp",
            "bingbot",
            "Yandexbot",
            "DuckDuckBot",
            "Baiduspider",
            "DuckAssistBot",
            "ia_archiver",
        ];
        for name in exempt {
            assert!(
                BOTS.iter().any(|b| b.canonical.eq_ignore_ascii_case(name)),
                "{name} missing from database"
            );
        }
    }

    #[test]
    fn every_category_is_represented() {
        use crate::category::BotCategory;
        for cat in [
            BotCategory::AiAgent,
            BotCategory::AiAssistant,
            BotCategory::AiDataScraper,
            BotCategory::AiSearchCrawler,
            BotCategory::Archiver,
            BotCategory::DeveloperHelper,
            BotCategory::Fetcher,
            BotCategory::HeadlessBrowser,
            BotCategory::IntelligenceGatherer,
            BotCategory::Scraper,
            BotCategory::SearchEngineCrawler,
            BotCategory::SeoCrawler,
            BotCategory::UndocumentedAiAgent,
            BotCategory::Other,
        ] {
            assert!(BOTS.iter().any(|b| b.category == cat), "no bots in {cat:?}");
        }
    }

    #[test]
    fn sponsors_nonempty() {
        for b in BOTS {
            assert!(!b.sponsor.is_empty(), "{} missing sponsor", b.canonical);
            assert!(!b.home_asn.is_empty(), "{} missing home ASN", b.canonical);
        }
    }
}

//! `User-Agent` header tokenization.
//!
//! A UA header is a whitespace-separated sequence of `product/version`
//! tokens, optionally followed by parenthesised comments, e.g.
//!
//! ```text
//! Mozilla/5.0 (compatible; GPTBot/1.2; +https://openai.com/gptbot)
//! ```
//!
//! Bot identities hide both in top-level products and inside comments, so
//! the tokenizer surfaces every candidate product token from both places.

/// One `name/version` product token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Product {
    /// Product name (verbatim case).
    pub name: String,
    /// Version string, if a `/version` suffix was present.
    pub version: Option<String>,
}

/// A tokenized `User-Agent` header.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct UserAgent {
    /// Top-level products, in order.
    pub products: Vec<Product>,
    /// Comment fragments (the `;`-separated pieces inside parentheses),
    /// trimmed.
    pub comments: Vec<String>,
}

impl UserAgent {
    /// Tokenize a raw header value. Never fails; hostile input produces a
    /// (possibly empty) token list.
    pub fn parse(header: &str) -> UserAgent {
        let mut products = Vec::new();
        let mut comments = Vec::new();
        let mut rest = header.trim();

        while !rest.is_empty() {
            if let Some(stripped) = rest.strip_prefix('(') {
                // Comment: read to matching close paren (flat; UA comments
                // don't nest in practice, but tolerate missing close).
                let end = stripped.find(')').unwrap_or(stripped.len());
                for frag in stripped[..end].split(';') {
                    let frag = frag.trim();
                    if !frag.is_empty() {
                        comments.push(frag.to_string());
                    }
                }
                rest = stripped[end..].strip_prefix(')').unwrap_or(&stripped[end..]).trim_start();
            } else {
                let end = rest.find([' ', '\t', '(']).unwrap_or(rest.len());
                let token = &rest[..end];
                if !token.is_empty() {
                    let (name, version) = match token.split_once('/') {
                        Some((n, v)) => (n.to_string(), Some(v.to_string())),
                        None => (token.to_string(), None),
                    };
                    products.push(Product { name, version });
                }
                rest = rest[end..].trim_start();
            }
        }
        UserAgent { products, comments }
    }

    /// Every candidate identity token: product names plus the leading word
    /// of each comment fragment (e.g. `GPTBot/1.2` inside a comment).
    pub fn candidate_tokens(&self) -> Vec<String> {
        let mut out: Vec<String> = Vec::new();
        for p in &self.products {
            out.push(p.name.clone());
        }
        for c in &self.comments {
            // "compatible" and URL fragments are noise.
            let word = c.split_whitespace().next().unwrap_or("");
            let word = word.split('/').next().unwrap_or("");
            if !word.is_empty()
                && !word.eq_ignore_ascii_case("compatible")
                && !word.starts_with('+')
                && !word.starts_with("http")
            {
                out.push(word.trim_end_matches(';').to_string());
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_bot_token() {
        let ua = UserAgent::parse("GPTBot/1.0");
        assert_eq!(ua.products.len(), 1);
        assert_eq!(ua.products[0].name, "GPTBot");
        assert_eq!(ua.products[0].version.as_deref(), Some("1.0"));
    }

    #[test]
    fn mozilla_compatible_style() {
        let ua = UserAgent::parse(
            "Mozilla/5.0 (compatible; Googlebot/2.1; +http://www.google.com/bot.html)",
        );
        assert_eq!(ua.products[0].name, "Mozilla");
        assert_eq!(
            ua.comments,
            vec!["compatible", "Googlebot/2.1", "+http://www.google.com/bot.html"]
        );
        let tokens = ua.candidate_tokens();
        assert!(tokens.iter().any(|t| t == "Googlebot"));
        assert!(!tokens.iter().any(|t| t.eq_ignore_ascii_case("compatible")));
    }

    #[test]
    fn full_browser_string() {
        let ua = UserAgent::parse(
            "Mozilla/5.0 (Windows NT 10.0; Win64; x64) AppleWebKit/537.36 (KHTML, like Gecko) Chrome/120.0 Safari/537.36",
        );
        let names: Vec<&str> = ua.products.iter().map(|p| p.name.as_str()).collect();
        assert_eq!(names, vec!["Mozilla", "AppleWebKit", "Chrome", "Safari"]);
        assert!(ua.comments.contains(&"Windows NT 10.0".to_string()));
    }

    #[test]
    fn headless_chrome_token() {
        let ua = UserAgent::parse(
            "Mozilla/5.0 (X11; Linux x86_64) AppleWebKit/537.36 (KHTML, like Gecko) HeadlessChrome/119.0 Safari/537.36",
        );
        assert!(ua.products.iter().any(|p| p.name == "HeadlessChrome"));
    }

    #[test]
    fn plain_library_tokens() {
        let ua = UserAgent::parse("python-requests/2.31.0");
        assert_eq!(ua.products[0].name, "python-requests");
        let ua = UserAgent::parse("curl/8.0.1");
        assert_eq!(ua.products[0].name, "curl");
    }

    #[test]
    fn empty_and_garbage() {
        assert_eq!(UserAgent::parse(""), UserAgent::default());
        let ua = UserAgent::parse("   (   )  ");
        assert!(ua.products.is_empty());
        assert!(ua.comments.is_empty());
        // Unclosed paren tolerated.
        let ua = UserAgent::parse("Foo/1 (bar; baz");
        assert_eq!(ua.products[0].name, "Foo");
        assert_eq!(ua.comments, vec!["bar", "baz"]);
    }

    #[test]
    fn candidate_tokens_drop_urls() {
        let ua = UserAgent::parse(
            "Mozilla/5.0 (compatible; bingbot/2.0; +http://www.bing.com/bingbot.htm)",
        );
        let tokens = ua.candidate_tokens();
        assert!(tokens.iter().any(|t| t == "bingbot"));
        assert!(!tokens.iter().any(|t| t.starts_with("+http")));
    }
}

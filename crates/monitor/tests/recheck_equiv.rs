//! Cross-crate integration: monitor-emitted fetch logs must be
//! first-class citizens of the §5.1 re-check analysis, and the daemon
//! must be byte-deterministic across worker counts at estate scale.

use botscope_core::pipeline::standardize;
use botscope_core::recheck::{by_category, profiles, profiles_from_table};
use botscope_monitor::daemon::{run, run_with_threads, MonitorConfig, TtlPolicy};
use botscope_monitor::scenario::ScenarioKind;
use botscope_weblog::codec;

fn encode(table: &botscope_weblog::LogTable) -> Vec<u8> {
    let mut out = Vec::new();
    codec::write_table(&mut out, table).expect("in-memory encode");
    out
}

#[test]
fn monitor_profiles_match_equivalent_weblog_rows() {
    let cfg = MonitorConfig {
        sites: 30,
        days: 21,
        bots: 5,
        scenario: ScenarioKind::Mixed,
        ..MonitorConfig::default()
    };
    let out = run(&cfg);
    assert!(!out.table.is_empty());

    // The monitor path: profiles straight from the interned fetch table.
    let from_monitor = profiles_from_table(&out.table, out.horizon_end);

    // The weblog path: the same events materialized as ordinary access
    // records and pushed through the record-slice pipeline.
    let records = out.table.to_records();
    let logs = standardize(&records);
    let from_weblog = profiles(&logs, out.horizon_end);

    assert_eq!(from_monitor, from_weblog);
    // And the Figure 10 aggregation agrees too.
    assert_eq!(by_category(&from_monitor), by_category(&from_weblog));

    // Profiles carry real content: every monitored bot appears, and the
    // recorded check times are exactly the bot's rows in the table.
    assert!(!from_monitor.is_empty());
    let checks = out.table.robots_checks_by_useragent();
    let total_profile_checks: usize = from_monitor.iter().map(|p| p.check_times.len()).sum();
    let total_table_checks: usize = checks.values().map(Vec::len).sum();
    assert_eq!(total_profile_checks, total_table_checks);
}

#[test]
fn dense_fixed_ttl_agents_cover_their_window() {
    // Fixed 12 h TTL on a stable estate: every bot re-checks inside
    // every 24 h window, so Figure 10 coverage must be total at 24 h+.
    let cfg = MonitorConfig {
        sites: 6,
        days: 14,
        bots: 3,
        ttl: TtlPolicy::FixedHours(12),
        scenario: ScenarioKind::Stable,
        swap_every: 0,
        ..MonitorConfig::default()
    };
    let out = run(&cfg);
    let profiles = profiles_from_table(&out.table, out.horizon_end);
    for p in &profiles {
        assert!(p.ever_checked());
        assert!(p.covered[&24], "{} must cover 24h windows", p.bot);
        assert!(p.covered[&168], "{} must cover 168h windows", p.bot);
    }
}

#[test]
fn estate_scale_determinism_across_worker_counts() {
    // Large enough to span many scheduler chunks (>64 agents per chunk
    // boundary effect): 200 sites × 4 bots = 800 agents ≈ 13 chunks.
    let cfg = MonitorConfig {
        sites: 200,
        days: 12,
        bots: 4,
        scenario: ScenarioKind::Mixed,
        swap_every: 3,
        ..MonitorConfig::default()
    };
    let serial = run_with_threads(&cfg, 1);
    let bytes = encode(&serial.table);
    assert!(!bytes.is_empty());
    for threads in [2, 8] {
        let parallel = run_with_threads(&cfg, threads);
        assert_eq!(bytes, encode(&parallel.table), "CSV bytes differ at {threads} workers");
        assert_eq!(serial.stats, parallel.stats, "stats differ at {threads} workers");
        assert_eq!(serial.changes, parallel.changes, "digests differ at {threads} workers");
    }
}

//! Scale check: monitor a large estate and report wall-clock throughput.
//!
//! ```text
//! cargo run --release -p botscope-monitor --example perf_check [sites] [days] [bots] [threads]
//! ```
//!
//! The acceptance bar for this subsystem: 100 000 sites over a 46-day
//! simulated horizon in under 10 s on a single core.
//!
//! With `BOTSCOPE_BENCH_JSON=<path>` set, the run also writes its result
//! as a schema-v2 `BENCH_*.json` document (the same line format the
//! vendored criterion harness emits), so ad-hoc scale checks and the
//! committed baselines stay machine-comparable.

use botscope_monitor::daemon::{run_with_threads, MonitorConfig};
use botscope_obs::bench::{render_bench_json, BenchLine};

fn main() {
    let arg = |i: usize, default: u64| -> u64 {
        std::env::args().nth(i).and_then(|v| v.parse().ok()).unwrap_or(default)
    };
    let cfg = MonitorConfig {
        sites: arg(1, 100_000) as usize,
        days: arg(2, 46),
        bots: arg(3, 2) as usize,
        ..MonitorConfig::default()
    };
    let threads = arg(4, 1) as usize;
    let t = std::time::Instant::now();
    let out = run_with_threads(&cfg, threads);
    let dt = t.elapsed();
    println!(
        "{} sites x {} bots x {} days ({} threads): {} fetch events, {} change digests, {:.2?} ({:.0} events/s)",
        cfg.sites,
        cfg.bots,
        cfg.days,
        threads,
        out.stats.fetches,
        out.changes.len(),
        dt,
        out.stats.fetches as f64 / dt.as_secs_f64()
    );
    if let Ok(path) = std::env::var("BOTSCOPE_BENCH_JSON") {
        let line = BenchLine {
            label: format!("perf_check/daemon_{}d/{}", cfg.days, cfg.sites),
            mean_ns: dt.as_nanos() as f64,
            iters: 1,
            throughput_per_iter: out.stats.fetches as f64,
        };
        let doc = render_bench_json(std::slice::from_ref(&line));
        if let Err(e) = std::fs::write(&path, doc) {
            eprintln!("warning: cannot write bench baseline {path}: {e}");
        }
    }
}

//! Coupled simulation: monitored belief state drives traffic generation.
//!
//! The schedule-driven generator hands every bot perfect knowledge of
//! the live robots.txt — impossible in reality, where a crawler knows
//! only what its last fetch returned. The coupled mode closes that gap
//! end to end:
//!
//! 1. the estate's servers follow the *simulation* schedule (the
//!    four-phase experiment on the experiment site) with scenario
//!    weather on top ([`crate::scenario::build_estate_for_schedule`]);
//! 2. the monitoring daemon runs one fetch agent per (bot, site), TTLs
//!    derived from each bot's own re-check cadence
//!    ([`botscope_simnet::behavior::RobotsCheckPolicy`]), and exports a
//!    [`BeliefAtlas`] of per-(bot, site) believed-policy timelines;
//! 3. the traffic generator consults that atlas instead of the
//!    schedule — obedient bots halt through a believed 5xx
//!    disallow-all window, keep crawling on a stale allow-all cache,
//!    and never-checking bots (belief stuck at `Unfetched`) ignore
//!    everything;
//! 4. the output carries both the atlas and the per-site ground-truth
//!    [`BeliefTimeline`]s, so scoring can attribute every served-policy
//!    violation to deliberate defiance, a stale cache, or a fetch-layer
//!    artifact (`botscope-core`'s attribution module).
//!
//! **Determinism.** Every stage is a pure function of the master seed:
//! the daemon's agents and the generator's units are both byte-identical
//! at any `BOTSCOPE_THREADS`, and the atlas between them is data, not
//! execution order. And under always-healthy servers with
//! [`RefreshModel::Instant`], belief ≡ schedule, so the coupled output
//! reduces *byte-identically* to the schedule-driven baseline — the
//! degenerate-equivalence anchor the tests pin.

use botscope_simnet::belief::{BeliefAtlas, BeliefTimeline, ServedOracle};
use botscope_simnet::engine::simulate_table_oracle;
use botscope_simnet::fleet::build_fleet;
use botscope_simnet::site::EXPERIMENT_SITE;
use botscope_simnet::{worker_threads, PhaseSchedule, SimConfig, SimTableOutput};
use botscope_weblog::time::Timestamp;

use crate::daemon::{run_daemon, DaemonRun, MonitorConfig, MonitorStats, TtlPolicy, TtlSource};
use crate::scenario::{build_estate_for_schedule, ScenarioKind};
use crate::transport::VirtualTransport;

/// How bots' beliefs refresh during a coupled run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RefreshModel {
    /// Each bot's belief comes from a monitor fetch agent running at
    /// the bot's own re-check cadence — never-checkers never fetch,
    /// weekly checkers go stale for a week. The realistic mode.
    Fleet,
    /// Every bot's belief equals the served policy at every instant (a
    /// cache that refreshes continuously). With healthy servers this
    /// reduces to the schedule-driven baseline; with weather it models
    /// a maximally diligent crawler that still suffers the estate's
    /// 4xx/5xx windows.
    Instant,
}

impl RefreshModel {
    /// Parse a CLI token.
    pub fn parse(s: &str) -> Option<RefreshModel> {
        match s {
            "fleet" => Some(RefreshModel::Fleet),
            "instant" => Some(RefreshModel::Instant),
            _ => None,
        }
    }

    /// CLI token for the model.
    pub fn label(self) -> &'static str {
        match self {
            RefreshModel::Fleet => "fleet",
            RefreshModel::Instant => "instant",
        }
    }
}

/// Coupled-run parameters.
#[derive(Debug, Clone)]
pub struct CoupledConfig {
    /// Traffic-generation parameters. `start`/`days` are overridden by
    /// the 8-week experiment schedule, exactly as
    /// [`botscope_simnet::scenario::phase_study_table`] does.
    pub sim: SimConfig,
    /// Server-side weather scripted over the estate.
    pub scenario: ScenarioKind,
    /// How beliefs refresh.
    pub refresh: RefreshModel,
}

impl Default for CoupledConfig {
    fn default() -> Self {
        CoupledConfig {
            sim: SimConfig::default(),
            scenario: ScenarioKind::Mixed,
            refresh: RefreshModel::Fleet,
        }
    }
}

/// Everything a coupled run produces.
#[derive(Debug, Clone)]
pub struct CoupledOutput {
    /// The generated traffic, driven by monitored beliefs.
    pub sim: SimTableOutput,
    /// The deployment schedule the servers followed.
    pub schedule: PhaseSchedule,
    /// Per-(bot, site) believed-policy timelines (fleet order).
    pub beliefs: BeliefAtlas,
    /// Per-site ground-truth effective-policy timelines (what the
    /// estate actually served, weather resolved per RFC 9309).
    pub served: Vec<BeliefTimeline>,
    /// The belief-collection daemon's counters
    /// ([`RefreshModel::Fleet`] only).
    pub monitor_stats: Option<MonitorStats>,
}

/// Run the coupled pipeline with [`worker_threads`] workers.
pub fn run_coupled(cfg: &CoupledConfig) -> CoupledOutput {
    run_coupled_with_threads(cfg, worker_threads())
}

/// [`run_coupled`] with an explicit worker count. Output is
/// byte-identical for a fixed seed regardless of `threads`.
pub fn run_coupled_with_threads(cfg: &CoupledConfig, threads: usize) -> CoupledOutput {
    let obs = botscope_obs::global();
    // The coupled study runs the paper's 8-week experiment window.
    let start = Timestamp::from_date(2025, 1, 15);
    let schedule = PhaseSchedule::paper_schedule(start, EXPERIMENT_SITE);
    let (lo, hi) = schedule.bounds();
    let mut run_span = obs.span("coupled_run");
    run_span.event_range(lo.unix(), hi.unix() + 86_400);
    let sim_cfg = SimConfig { start: lo, days: hi.days_since(lo), ..cfg.sim.clone() };
    sim_cfg.assert_valid();

    let models = build_estate_for_schedule(
        sim_cfg.seed,
        sim_cfg.sites,
        &schedule,
        cfg.scenario,
        lo,
        sim_cfg.days,
    );
    let transport = VirtualTransport::new(models);
    // Ground truth extends one day past the horizon: sessions that
    // start just before it consult the oracle a few seconds later, and
    // the post-experiment restore-to-Base must be visible to them.
    let served = transport.effective_timelines(lo.unix(), hi.unix() + 86_400);

    let fleet = build_fleet();
    let belief_span = {
        let mut span = obs.phase("coupled_belief_stage");
        span.event_range(lo.unix(), hi.unix());
        span
    };
    let (beliefs, monitor_stats) = match cfg.refresh {
        RefreshModel::Instant => {
            // Generation is driven by `ServedOracle` directly (below);
            // the atlas here is pure data plumbing so attribution and
            // the output carry per-bot beliefs in the same shape as the
            // fleet mode — every bot's timeline IS the served one.
            let bots = fleet.iter().map(|b| b.spec.canonical.to_string()).collect();
            let mut atlas = BeliefAtlas::new(bots, sim_cfg.sites);
            for bot in 0..fleet.len() {
                for (site, timeline) in served.iter().enumerate() {
                    *atlas.timeline_mut(bot, site) = timeline.clone();
                }
            }
            (atlas, None)
        }
        RefreshModel::Fleet => {
            let mon_cfg = MonitorConfig {
                seed: sim_cfg.seed,
                sites: sim_cfg.sites,
                days: sim_cfg.days,
                start: lo,
                bots: fleet.len(),
                // TTLs come from each bot's cadence; the policy field
                // is inert under `TtlSource::FleetCadence`.
                ttl: TtlPolicy::Spectrum,
                scenario: cfg.scenario,
                // The served timelines come from the schedule-driven
                // transport above; the swap pattern is inert too.
                swap_every: 0,
            };
            let run = DaemonRun {
                cfg: &mon_cfg,
                fleet: &fleet,
                transport: &transport,
                ttl: TtlSource::FleetCadence,
                collect_beliefs: true,
            };
            let (out, atlas) = run_daemon(&run, threads);
            (atlas.expect("beliefs collected"), Some(out.stats))
        }
    };

    drop(belief_span);
    obs.counter("coupled_belief_transitions_total").add(beliefs.total_transitions() as u64);

    let sim = {
        let mut span = obs.phase("coupled_generate_stage");
        span.event_range(lo.unix(), hi.unix() + 86_400);
        match cfg.refresh {
            RefreshModel::Instant => {
                simulate_table_oracle(&sim_cfg, &ServedOracle { sites: &served }, threads)
            }
            RefreshModel::Fleet => simulate_table_oracle(&sim_cfg, &beliefs, threads),
        }
    };
    obs.counter("coupled_records_total").add(sim.table.len() as u64);
    CoupledOutput { sim, schedule, beliefs, served, monitor_stats }
}

#[cfg(test)]
mod tests {
    use super::*;
    use botscope_simnet::belief::BelievedPolicy;
    use botscope_simnet::scenario::phase_study_table;
    use botscope_simnet::PolicyVersion;

    fn small_sim() -> SimConfig {
        SimConfig {
            scale: 0.05,
            sites: 4,
            spoofing: false,
            anon_traffic: false,
            ..SimConfig::default()
        }
    }

    #[test]
    fn degenerate_equivalence_with_schedule_driven_path() {
        // Always-healthy servers + instant refresh ⇒ every bot believes
        // exactly the scheduled policy ⇒ the coupled output must be
        // byte-identical to the schedule-driven phase study.
        let cfg = CoupledConfig {
            sim: small_sim(),
            scenario: ScenarioKind::Stable,
            refresh: RefreshModel::Instant,
        };
        let coupled = run_coupled_with_threads(&cfg, 2);
        let baseline = phase_study_table(&cfg.sim);
        assert_eq!(coupled.schedule, baseline.schedule);
        assert_eq!(coupled.sim.table.rows(), baseline.sim.table.rows());
        assert_eq!(coupled.sim.table.to_records(), baseline.sim.table.to_records());
    }

    #[test]
    fn coupled_is_deterministic_across_worker_counts() {
        let cfg = CoupledConfig {
            sim: small_sim(),
            scenario: ScenarioKind::Mixed,
            refresh: RefreshModel::Fleet,
        };
        let serial = run_coupled_with_threads(&cfg, 1);
        for threads in [2, 8] {
            let parallel = run_coupled_with_threads(&cfg, threads);
            assert_eq!(serial.sim.table.rows(), parallel.sim.table.rows(), "{threads} workers");
            assert_eq!(serial.sim.table.to_records(), parallel.sim.table.to_records());
            assert_eq!(serial.beliefs, parallel.beliefs);
            assert_eq!(serial.served, parallel.served);
            assert_eq!(serial.monitor_stats, parallel.monitor_stats);
        }
    }

    #[test]
    fn fleet_refresh_leaves_never_checkers_unfetched() {
        let cfg = CoupledConfig {
            sim: small_sim(),
            scenario: ScenarioKind::Stable,
            refresh: RefreshModel::Fleet,
        };
        let out = run_coupled_with_threads(&cfg, 2);
        // axios never fetches robots.txt: its belief never leaves
        // Unfetched on any site.
        let axios = out.beliefs.bots.iter().position(|b| b == "Axios").expect("axios in fleet");
        for site in 0..out.beliefs.n_sites() {
            assert_eq!(out.beliefs.timeline(axios, site).transitions(), 0);
        }
        // A checking bot's belief tracks the experiment site's swaps.
        let gpt = out.beliefs.bots.iter().position(|b| b == "GPTBot").expect("GPTBot in fleet");
        let tl = out.beliefs.timeline(gpt, EXPERIMENT_SITE);
        assert!(tl.transitions() >= 4, "GPTBot re-checks daily, must see the swaps: {tl:?}");
        // No fetch events on the generated side are affected: the log
        // still contains GPTBot robots.txt rows.
        assert!(out
            .sim
            .table
            .iter_records()
            .any(|r| r.useragent.contains("GPTBot") && r.is_robots_fetch()));
    }

    #[test]
    fn stale_belief_keeps_obedient_bot_crawling_under_disallow() {
        // Belief-vs-schedule divergence in its purest form: every bot's
        // belief is pinned to the Base policy forever (a cache that
        // never expires). Fully obedient bots then keep crawling pages
        // straight through the served v3 disallow-all phase — the
        // "honest violation from a stale cache" the coupled layer
        // exists to produce.
        let sim = small_sim();
        let fleet = build_fleet();
        let bots: Vec<String> = fleet.iter().map(|b| b.spec.canonical.to_string()).collect();
        let mut atlas = BeliefAtlas::new(bots, sim.sites);
        for bot in 0..fleet.len() {
            for site in 0..sim.sites {
                *atlas.timeline_mut(bot, site) =
                    BeliefTimeline::always(BelievedPolicy::Version(PolicyVersion::Base));
            }
        }
        let start = Timestamp::from_date(2025, 1, 15);
        let schedule = PhaseSchedule::paper_schedule(start, EXPERIMENT_SITE);
        let (lo, hi) = schedule.bounds();
        let sim_cfg = SimConfig { start: lo, days: hi.days_since(lo), ..sim };
        let stale = simulate_table_oracle(&sim_cfg, &atlas, 2);
        let baseline = phase_study_table(&sim_cfg);

        let (v3_lo, v3_hi) = schedule.window_of(PolicyVersion::V3DisallowAll).unwrap();
        let exp_site = "site-00.example.edu";
        let v3_pages = |records: &[botscope_weblog::record::AccessRecord]| {
            records
                .iter()
                .filter(|r| {
                    r.useragent.contains("ChatGPT-User")
                        && r.sitename == exp_site
                        && !r.is_robots_fetch()
                        && r.timestamp >= v3_lo
                        && r.timestamp < v3_hi
                })
                .count()
        };
        let stale_pages = v3_pages(&stale.table.to_records());
        let informed_pages = v3_pages(&baseline.sim.table.to_records());
        assert_eq!(informed_pages, 0, "fully obedient bot halts when it knows about v3");
        assert!(
            stale_pages > 0,
            "the same bot keeps crawling on a stale Base belief ({stale_pages} pages)"
        );
    }

    #[test]
    fn believed_disallow_window_halts_obedient_bot() {
        // A scripted 5xx episode, as belief: ChatGPT-User believes
        // disallow-all for two mid-study days on every site; the
        // headless browser (disallow compliance ≈ 0) ignores the same
        // belief. Pages stop for the former and not the latter — the
        // engine-level half of the "obedient bot halts through a 5xx
        // window" scenario.
        let sim = SimConfig { days: 6, scale: 0.3, sites: 3, ..small_sim() };
        let fleet = build_fleet();
        let bots: Vec<String> = fleet.iter().map(|b| b.spec.canonical.to_string()).collect();
        let mut atlas = BeliefAtlas::new(bots, sim.sites);
        let w_lo = sim.start.plus_secs(2 * 86_400).unix();
        let w_hi = sim.start.plus_secs(4 * 86_400).unix();
        for (bot, spec) in fleet.iter().enumerate() {
            for site in 0..sim.sites {
                let tl = atlas.timeline_mut(bot, site);
                tl.record(0, BelievedPolicy::Version(PolicyVersion::Base));
                if matches!(spec.spec.canonical, "ChatGPT-User" | "HeadlessChrome") {
                    tl.record(w_lo, BelievedPolicy::DisallowAll);
                    tl.record(w_hi, BelievedPolicy::Version(PolicyVersion::Base));
                }
            }
        }
        let out = simulate_table_oracle(&sim, &atlas, 2);
        let records = out.table.to_records();
        let pages_in_window = |needle: &str| {
            records
                .iter()
                .filter(|r| {
                    r.useragent.contains(needle)
                        && !r.is_robots_fetch()
                        && r.timestamp.unix() >= w_lo
                        && r.timestamp.unix() < w_hi
                })
                .count()
        };
        assert_eq!(pages_in_window("ChatGPT-User"), 0, "obedient bot halts through the window");
        assert!(pages_in_window("HeadlessChrome") > 0, "defiant bot crawls straight through");
        // Outside the window the obedient bot crawls normally.
        let after = records
            .iter()
            .filter(|r| {
                r.useragent.contains("ChatGPT-User")
                    && !r.is_robots_fetch()
                    && r.timestamp.unix() >= w_hi
            })
            .count();
        assert!(after > 0, "crawling resumes once the belief recovers");
    }
}

//! # botscope-monitor
//!
//! The live-fetch layer of the reproduction: a deterministic
//! virtual-network transport plus an event-driven robots.txt monitoring
//! daemon.
//!
//! The paper's §5.1 re-check analysis and the RFC 9309 §2.3.1 fetch
//! semantics (`botscope-robotstxt::fetch`) describe what compliant
//! crawlers must do *over time* — re-fetch on a cadence, assume
//! allow-all on 4xx, disallow-all on 5xx, give up on six-hop redirect
//! chains — but the static pipeline never drives those transitions.
//! This crate does, at estate scale and without a network:
//!
//! * [`transport`] — a scripted, in-process HTTP-for-robots.txt
//!   simulator. Each site's [`transport::ServerModel`] serves the policy
//!   body live under its `simnet` phase timeline, behind scripted 3xx
//!   redirect chains, 4xx/5xx windows, flapping and outage schedules,
//!   and seeded latency/transient-failure distributions. Responses are
//!   pure functions of `(site, time, requester)`, so any execution
//!   order yields identical bytes.
//! * [`scenario`] — per-site weather scripted deterministically from
//!   the master seed (stable / outages / flapping / redirects / mixed),
//!   plus rolling four-phase policy swaps.
//! * [`daemon`] — one `RobotsCache`-backed fetch agent per (bot, site),
//!   TTLs sampled from the observed 12 h–never spectrum, conditional
//!   requests (`ETag`/`Last-Modified` → `304`s with bytes-saved
//!   accounting), exponential backoff on unreachable hosts, policy
//!   re-resolution via `EffectivePolicy::from_outcome`, and change
//!   detection digested through `robotstxt::diff`. The sharded
//!   binary-heap scheduler honours `BOTSCOPE_THREADS` and emits a
//!   byte-identical interned [`botscope_weblog::LogTable`] of fetch
//!   events at any worker count — or streams rows through
//!   [`botscope_weblog::sink::RowSink`]s ([`daemon::run_streaming`])
//!   without ever materializing it. Every agent's believed-policy
//!   timeline can be exported as a
//!   [`botscope_simnet::belief::BeliefAtlas`]
//!   ([`daemon::run_with_beliefs`]).
//! * [`coupled`] — the belief-coupled pipeline: the daemon derives
//!   per-(bot, site) beliefs at each bot's own re-check cadence, the
//!   traffic generator consults them instead of the schedule, and the
//!   output carries served ground-truth timelines so `botscope-core`
//!   can attribute violations (deliberate / stale cache / fetch
//!   artifact).
//!
//! The emitted table is schema-compatible with ordinary access logs
//! (every row is a `/robots.txt` fetch), so the §5.1 re-check profiles
//! (Figure 10) and Table 7's "checked robots.txt" columns recompute
//! directly from *monitored* rather than simulated traffic.
//!
//! ## Quickstart
//!
//! ```
//! use botscope_monitor::daemon::{run, MonitorConfig, TtlPolicy};
//! use botscope_monitor::scenario::ScenarioKind;
//!
//! let cfg = MonitorConfig {
//!     sites: 8,
//!     days: 3,
//!     bots: 2,
//!     ttl: TtlPolicy::FixedHours(12),
//!     scenario: ScenarioKind::Stable,
//!     ..MonitorConfig::default()
//! };
//! let out = run(&cfg);
//! assert!(out.table.len() as u64 == out.stats.fetches);
//! assert!(out.table.iter_records().all(|r| r.is_robots_fetch()));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod admission;
pub mod coupled;
pub mod daemon;
pub mod scenario;
pub mod transport;

pub use admission::{apply_digests, prime_estate, DigestOutcome};
pub use coupled::{
    run_coupled, run_coupled_with_threads, CoupledConfig, CoupledOutput, RefreshModel,
};
pub use daemon::{
    config_site_windows, run, run_streaming, run_with_beliefs, run_with_threads, ChangeDigest,
    MonitorConfig, MonitorOutput, MonitorStats, MonitorSummary, TtlPolicy,
};
pub use scenario::ScenarioKind;
pub use transport::{ServerModel, Validators, VirtualTransport};

//! Estate scenarios: scripted server-side weather for the monitor.
//!
//! A scenario decides, per site and deterministically from the master
//! seed, which condition windows the virtual transport scripts: 5xx
//! outage windows, connection-level blackouts, up/down flapping,
//! redirect chains (including chains past RFC 9309's five-hop budget),
//! and the background transient-failure/latency climate. Policy swaps
//! ride on top: every `swap_every`-th site runs the paper's four-phase
//! schedule, each at its own seeded start offset, so change detection
//! always has real transitions to find.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use botscope_simnet::phases::PhaseSchedule;
use botscope_simnet::server::SitePolicyServer;
use botscope_simnet::{child_seed, PolicyVersion};

use crate::daemon::MonitorConfig;
use crate::transport::{ConditionWindow, LatencyModel, ServeMode, ServerModel};

/// The scripted weather of the estate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScenarioKind {
    /// Every site healthy for the whole horizon.
    Stable,
    /// A fraction of sites suffer one 5xx window and/or one
    /// connection-level blackout.
    Outages,
    /// A fraction of sites flap between healthy and 503 for days.
    Flapping,
    /// A fraction of sites serve robots.txt behind redirect chains of
    /// 1–7 hops (6+ exceeds the RFC 9309 budget).
    Redirects,
    /// All of the above at half intensity — the default.
    Mixed,
}

impl ScenarioKind {
    /// Every scenario, in CLI presentation order.
    pub const ALL: [ScenarioKind; 5] = [
        ScenarioKind::Stable,
        ScenarioKind::Outages,
        ScenarioKind::Flapping,
        ScenarioKind::Redirects,
        ScenarioKind::Mixed,
    ];

    /// CLI token for the scenario.
    pub fn label(self) -> &'static str {
        match self {
            ScenarioKind::Stable => "stable",
            ScenarioKind::Outages => "outages",
            ScenarioKind::Flapping => "flapping",
            ScenarioKind::Redirects => "redirects",
            ScenarioKind::Mixed => "mixed",
        }
    }

    /// Parse a CLI token.
    pub fn parse(s: &str) -> Option<ScenarioKind> {
        ScenarioKind::ALL.into_iter().find(|k| k.label() == s)
    }
}

/// Distinguishes per-site scenario streams from per-agent streams.
const SITE_STREAM: u64 = 0x517E_0000_0000_0000;

/// A window of `dur` seconds placed uniformly inside the horizon.
fn place_window(rng: &mut StdRng, start: u64, horizon_secs: u64, dur: u64) -> (u64, u64) {
    let dur = dur.min(horizon_secs.saturating_sub(1)).max(1);
    let at = start + rng.gen_range(0..horizon_secs - dur);
    (at, at + dur)
}

/// The scenario's background climate: per-request latency distribution
/// and transient connection-failure probability.
fn climate(kind: ScenarioKind) -> (LatencyModel, u32) {
    match kind {
        ScenarioKind::Stable => (LatencyModel { base_ms: 20, jitter_ms: 40 }, 0u32),
        // ≈ 0.1 % of requests fail at the connection level.
        _ => (LatencyModel { base_ms: 15, jitter_ms: 60 }, 66),
    }
}

/// Draw one site's scripted weather windows (sorted, non-overlapping).
fn weather_windows(
    rng: &mut StdRng,
    k: ScenarioKind,
    start: u64,
    horizon_secs: u64,
) -> Vec<ConditionWindow> {
    let mut windows: Vec<ConditionWindow> = Vec::new();
    let mut add = |w: Option<ConditionWindow>| {
        if let Some(w) = w {
            windows.push(w);
        }
    };
    // Probabilities halve under Mixed so the combined weather
    // stays plausible.
    let scale = if k == ScenarioKind::Mixed { 0.5 } else { 1.0 };

    if matches!(k, ScenarioKind::Outages | ScenarioKind::Mixed) {
        add(rng.gen_bool(0.25 * scale).then(|| {
            let code = if rng.gen_bool(0.5) { 503 } else { 500 };
            let dur = rng.gen_range(6 * 3600..48 * 3600 + 1);
            let (s, e) = place_window(rng, start, horizon_secs, dur);
            ConditionWindow { start: s, end: e, mode: ServeMode::ServerError(code) }
        }));
        add(rng.gen_bool(0.10 * scale).then(|| {
            let dur = rng.gen_range(3600..12 * 3600 + 1);
            let (s, e) = place_window(rng, start, horizon_secs, dur);
            ConditionWindow { start: s, end: e, mode: ServeMode::Unreachable }
        }));
        // A slice of the outage estate loses the file instead of
        // the host: 404/410 windows (unavailable ⇒ allow all).
        add(rng.gen_bool(0.10 * scale).then(|| {
            let code = if rng.gen_bool(0.7) { 404 } else { 410 };
            let dur = rng.gen_range(12 * 3600..72 * 3600 + 1);
            let (s, e) = place_window(rng, start, horizon_secs, dur);
            ConditionWindow { start: s, end: e, mode: ServeMode::ClientError(code) }
        }));
    }
    if matches!(k, ScenarioKind::Flapping | ScenarioKind::Mixed) {
        add(rng.gen_bool(0.30 * scale).then(|| {
            let period = rng.gen_range(900..21_601);
            let dur = rng.gen_range(86_400..7 * 86_400 + 1);
            let (s, e) = place_window(rng, start, horizon_secs, dur);
            ConditionWindow { start: s, end: e, mode: ServeMode::Flapping(period) }
        }));
    }
    if matches!(k, ScenarioKind::Redirects | ScenarioKind::Mixed) {
        add(rng.gen_bool(0.40 * scale).then(|| {
            let hops = rng.gen_range(1..8) as u8;
            // Under the pure redirect scenario the chain covers
            // the whole horizon; under Mixed it is bounded to a
            // multi-day window so it cannot shadow the outage /
            // flapping weather drawn above (overlap resolution
            // keeps the earliest window only).
            let (s, e) = if k == ScenarioKind::Redirects {
                (0, u64::MAX)
            } else {
                let dur = rng.gen_range(5 * 86_400..30 * 86_400 + 1);
                place_window(rng, start, horizon_secs, dur)
            };
            ConditionWindow { start: s, end: e, mode: ServeMode::Redirect(hops) }
        }));
    }

    // The transport expects non-overlapping, time-sorted windows:
    // keep the earliest of any overlapping pair.
    windows.sort_by_key(|w| (w.start, w.end));
    let mut scripted: Vec<ConditionWindow> = Vec::with_capacity(windows.len());
    for w in windows {
        if scripted.last().is_none_or(|p| p.end <= w.start) {
            scripted.push(w);
        }
    }
    scripted
}

/// Build the per-site server models for `cfg`.
pub fn build_estate(cfg: &MonitorConfig) -> Vec<ServerModel> {
    let start = cfg.start.unix();
    let horizon_secs = cfg.days * 86_400;
    let (latency, transient) = climate(cfg.scenario);

    (0..cfg.sites)
        .map(|i| {
            let mut rng = StdRng::seed_from_u64(child_seed(cfg.seed, SITE_STREAM ^ i as u64));
            // Policy timeline: every swap_every-th site deploys the
            // four-phase experiment at a seeded offset into the horizon.
            let policy = if cfg.swap_every > 0 && i % cfg.swap_every == 0 {
                let offset = rng.gen_range(0..7 * 86_400);
                let schedule = PhaseSchedule::paper_schedule(cfg.start.plus_secs(offset), i);
                SitePolicyServer::from_schedule(&schedule, i)
            } else {
                SitePolicyServer::always(PolicyVersion::Base)
            };
            let windows = weather_windows(&mut rng, cfg.scenario, start, horizon_secs);

            ServerModel {
                name: format!("site-{i:02}.example.edu"),
                policy,
                windows,
                seed: child_seed(cfg.seed, SITE_STREAM ^ (i as u64).rotate_left(17)),
                latency,
                transient_fail_2e16: transient,
            }
        })
        .collect()
}

/// Build an estate whose served policies follow a *simulation* schedule
/// instead of the rolling swap pattern: the schedule's experiment site
/// deploys the four-phase experiment exactly as the traffic generator
/// assumes, every other site serves Base — while the scenario's weather
/// still scripts outages, flapping and redirect chains on top. This is
/// the coupled mode's ground truth: the same estate the generator
/// crawls, as the monitor daemon sees it.
pub fn build_estate_for_schedule(
    seed: u64,
    sites: usize,
    schedule: &PhaseSchedule,
    kind: ScenarioKind,
    start: botscope_weblog::time::Timestamp,
    days: u64,
) -> Vec<ServerModel> {
    let start_unix = start.unix();
    let horizon_secs = days * 86_400;
    let (latency, transient) = climate(kind);
    (0..sites)
        .map(|i| {
            let mut rng = StdRng::seed_from_u64(child_seed(seed, SITE_STREAM ^ i as u64));
            let windows = weather_windows(&mut rng, kind, start_unix, horizon_secs);
            ServerModel {
                name: format!("site-{i:02}.example.edu"),
                policy: SitePolicyServer::from_schedule(schedule, i),
                windows,
                seed: child_seed(seed, SITE_STREAM ^ (i as u64).rotate_left(17)),
                latency,
                transient_fail_2e16: transient,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::daemon::MonitorConfig;

    fn cfg(kind: ScenarioKind, sites: usize) -> MonitorConfig {
        MonitorConfig { scenario: kind, sites, ..MonitorConfig::default() }
    }

    #[test]
    fn labels_roundtrip() {
        for k in ScenarioKind::ALL {
            assert_eq!(ScenarioKind::parse(k.label()), Some(k));
        }
        assert_eq!(ScenarioKind::parse("weird"), None);
    }

    #[test]
    fn build_is_deterministic() {
        let a = build_estate(&cfg(ScenarioKind::Mixed, 64));
        let b = build_estate(&cfg(ScenarioKind::Mixed, 64));
        assert_eq!(a.len(), 64);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.windows, y.windows);
            assert_eq!(x.seed, y.seed);
        }
    }

    #[test]
    fn stable_estate_is_clean() {
        let models = build_estate(&cfg(ScenarioKind::Stable, 40));
        assert!(models.iter().all(|m| m.windows.is_empty()));
        assert!(models.iter().all(|m| m.transient_fail_2e16 == 0));
    }

    #[test]
    fn swap_sites_have_policy_timelines() {
        let c = MonitorConfig { swap_every: 4, sites: 32, ..MonitorConfig::default() };
        let models = build_estate(&c);
        for (i, m) in models.iter().enumerate() {
            if i % 4 == 0 {
                assert!(!m.policy.is_static(), "site {i} should swap");
            } else {
                assert!(m.policy.is_static(), "site {i} should be static");
            }
        }
    }

    #[test]
    fn windows_are_sorted_and_disjoint() {
        for kind in ScenarioKind::ALL {
            let models = build_estate(&cfg(kind, 200));
            for m in &models {
                for pair in m.windows.windows(2) {
                    assert!(pair[0].end <= pair[1].start, "{}: {:?}", m.name, m.windows);
                }
            }
        }
    }

    #[test]
    fn scenarios_script_their_signature_weather() {
        let outage_windows: usize =
            build_estate(&cfg(ScenarioKind::Outages, 300)).iter().map(|m| m.windows.len()).sum();
        assert!(outage_windows > 30, "outage scenario too quiet: {outage_windows}");
        let redirect_sites = build_estate(&cfg(ScenarioKind::Redirects, 300))
            .iter()
            .filter(|m| m.windows.iter().any(|w| matches!(w.mode, ServeMode::Redirect(_))))
            .count();
        assert!((60..=180).contains(&redirect_sites), "redirect sites: {redirect_sites}");
        // Some redirect chains must exceed the five-hop budget.
        let over_budget = build_estate(&cfg(ScenarioKind::Redirects, 300))
            .iter()
            .filter(|m| m.windows.iter().any(|w| matches!(w.mode, ServeMode::Redirect(h) if h > 5)))
            .count();
        assert!(over_budget > 5, "over-budget chains: {over_budget}");
    }
}

//! Digest-driven maintenance of a [`PolicyEstate`] admission cache.
//!
//! The daemon observes served-policy swaps and digests them into
//! [`ChangeDigest`]s (§5.2's transition observations). An admission
//! service that answers "may I crawl?" from compiled automata must
//! drop exactly the compiled artifacts those transitions obsolete —
//! recompiling the whole estate on every monitoring pass would erase
//! the compile-once economics of [`CompiledPolicy`].
//!
//! [`apply_digests`] is that bridge: for each digest it re-registers
//! the site's *new* document (the digest carries `to:
//! PolicyVersion`), which drops the stale automaton; every untouched
//! site keeps its compiled artifact. [`prime_estate`] is the
//! bootstrap dual, registering a deployment snapshot wholesale.
//!
//! [`CompiledPolicy`]: botscope_robotstxt::CompiledPolicy

use botscope_robotstxt::PolicyEstate;
use botscope_simnet::PolicyVersion;

use crate::daemon::ChangeDigest;

/// Register a deployment snapshot: every `(site, live version)` pair
/// becomes an estate entry. Compilation stays lazy — nothing is
/// compiled until the first admission check against the site.
pub fn prime_estate<'a, I>(estate: &mut PolicyEstate, deployment: I)
where
    I: IntoIterator<Item = (&'a str, PolicyVersion)>,
{
    for (site, version) in deployment {
        estate.insert(site, version.robots_txt());
    }
}

/// Fold a monitoring pass's [`ChangeDigest`]s into the estate.
///
/// Each digest replaces the site's document with the digest's `to`
/// version, dropping any compiled artifact so the next admission
/// check recompiles against the new policy. Sites the digests do not
/// name are untouched (their artifacts stay warm). Digests for sites
/// the estate has never seen insert them fresh — the monitor is the
/// source of truth for what is deployed.
///
/// Returns the number of sites whose compiled artifact was actually
/// dropped (i.e. that were present *and* compiled), which is the
/// recompile debt this pass created.
pub fn apply_digests(estate: &mut PolicyEstate, digests: &[ChangeDigest]) -> usize {
    let mut dropped = 0;
    for digest in digests {
        let site = digest.site.as_str();
        if estate.is_compiled(site) {
            dropped += 1;
        }
        estate.insert(site, digest.to.robots_txt());
    }
    dropped
}

#[cfg(test)]
mod tests {
    use super::*;

    fn digest(site: &str, from: PolicyVersion, to: PolicyVersion) -> ChangeDigest {
        ChangeDigest {
            site: site.to_string(),
            at: 0,
            from,
            to,
            observers: 1,
            tightened: 0,
            loosened: 0,
            delay_changes: 0,
        }
    }

    #[test]
    fn priming_registers_without_compiling() {
        let mut estate = PolicyEstate::new();
        prime_estate(
            &mut estate,
            [
                ("a.example.edu", PolicyVersion::Base),
                ("b.example.edu", PolicyVersion::V1CrawlDelay),
            ],
        );
        assert_eq!(estate.len(), 2);
        assert_eq!(estate.compiled_count(), 0);
        assert_eq!(estate.compiles(), 0);
    }

    #[test]
    fn only_digested_sites_recompile() {
        let mut estate = PolicyEstate::new();
        let sites = ["a.example.edu", "b.example.edu", "c.example.edu"];
        prime_estate(&mut estate, sites.iter().map(|s| (*s, PolicyVersion::Base)));
        // Warm every artifact.
        for site in sites {
            assert_eq!(estate.check(site, "GPTBot", "/news/item-001"), Some(true));
        }
        assert_eq!(estate.compiles(), 3);

        let dropped = apply_digests(
            &mut estate,
            &[digest("b.example.edu", PolicyVersion::Base, PolicyVersion::V3DisallowAll)],
        );
        assert_eq!(dropped, 1);
        // Only b lost its artifact; a and c stay warm.
        assert_eq!(estate.compiled_count(), 2);

        // The re-check answers from the *new* policy and costs exactly
        // one recompile.
        assert_eq!(estate.check("b.example.edu", "GPTBot", "/news/item-001"), Some(false));
        assert_eq!(estate.check("a.example.edu", "GPTBot", "/news/item-001"), Some(true));
        assert_eq!(estate.compiles(), 4);
    }

    #[test]
    fn digest_for_unknown_site_inserts_it() {
        let mut estate = PolicyEstate::new();
        let dropped = apply_digests(
            &mut estate,
            &[digest("new.example.edu", PolicyVersion::Base, PolicyVersion::V2EndpointOnly)],
        );
        assert_eq!(dropped, 0);
        assert_eq!(estate.len(), 1);
        // Unknown sites stay the caller's problem; the v2 wildcard group
        // denies content and allows page-data.
        assert_eq!(estate.check("missing.example.edu", "SomeBot", "/x"), None);
        assert_eq!(estate.check("new.example.edu", "SomeBot", "/news/item-001"), Some(false));
        assert_eq!(
            estate.check("new.example.edu", "SomeBot", "/page-data/item-001/page-data.json"),
            Some(true)
        );
    }

    #[test]
    fn uncompiled_sites_create_no_recompile_debt() {
        let mut estate = PolicyEstate::new();
        prime_estate(&mut estate, [("a.example.edu", PolicyVersion::Base)]);
        // Never checked, so never compiled: the digest swaps the doc but
        // reports zero dropped artifacts.
        let dropped = apply_digests(
            &mut estate,
            &[digest("a.example.edu", PolicyVersion::Base, PolicyVersion::V1CrawlDelay)],
        );
        assert_eq!(dropped, 0);
        assert_eq!(estate.compiles(), 0);
    }
}

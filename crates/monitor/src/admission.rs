//! Digest-driven maintenance of a [`PolicyEstate`] admission cache.
//!
//! The daemon observes served-policy swaps and digests them into
//! [`ChangeDigest`]s (§5.2's transition observations). An admission
//! service that answers "may I crawl?" from compiled automata must
//! drop exactly the compiled artifacts those transitions obsolete —
//! recompiling the whole estate on every monitoring pass would erase
//! the compile-once economics of [`CompiledPolicy`].
//!
//! [`apply_digests`] is that bridge: for each *behavioral* digest it
//! re-registers the site's *new* document (the digest carries `to:
//! PolicyVersion`), which drops the stale automaton. Digests the
//! analyzer proved [`ChangeClass::Cosmetic`] are decision-equivalent
//! for every agent and path, so the site's compiled artifact stays
//! warm — no recompile debt is owed for a comment edit. Every
//! untouched site keeps its artifact. [`prime_estate`] is the
//! bootstrap dual, registering a deployment snapshot wholesale.
//!
//! [`CompiledPolicy`]: botscope_robotstxt::CompiledPolicy

use botscope_robotstxt::analysis::ChangeClass;
use botscope_robotstxt::PolicyEstate;
use botscope_simnet::PolicyVersion;

use crate::daemon::ChangeDigest;

/// Register a deployment snapshot: every `(site, live version)` pair
/// becomes an estate entry. Compilation stays lazy — nothing is
/// compiled until the first admission check against the site.
pub fn prime_estate<'a, I>(estate: &mut PolicyEstate, deployment: I)
where
    I: IntoIterator<Item = (&'a str, PolicyVersion)>,
{
    for (site, version) in deployment {
        estate.insert(site, version.robots_txt());
    }
}

/// What one monitoring pass's digests did to the estate.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DigestOutcome {
    /// Sites whose compiled artifact was dropped (present *and*
    /// compiled): the recompile debt this pass actually created.
    pub dropped: usize,
    /// Digests skipped because the transition was proven cosmetic —
    /// the site's document and compiled artifact were left untouched.
    pub cosmetic_skips: usize,
}

/// Fold a monitoring pass's [`ChangeDigest`]s into the estate.
///
/// Behavioral digests replace the site's document with the digest's
/// `to` version, dropping any compiled artifact so the next admission
/// check recompiles against the new policy. Cosmetic digests for
/// known sites are skipped outright — the analyzer proved the old
/// automaton still decides every request identically, so it stays
/// warm. Sites the digests do not name are untouched. Digests for
/// sites the estate has never seen insert them fresh (whatever their
/// class — the monitor is the source of truth for what is deployed).
///
/// Returns the recompile debt actually owed plus the number of
/// cosmetic transitions skipped.
pub fn apply_digests(estate: &mut PolicyEstate, digests: &[ChangeDigest]) -> DigestOutcome {
    let mut outcome = DigestOutcome::default();
    for digest in digests {
        let site = digest.site.as_str();
        if digest.class == ChangeClass::Cosmetic && estate.doc(site).is_some() {
            outcome.cosmetic_skips += 1;
            continue;
        }
        if estate.is_compiled(site) {
            outcome.dropped += 1;
        }
        estate.insert(site, digest.to.robots_txt());
    }
    let obs = botscope_obs::global();
    obs.counter("admission_digests_applied_total").add(digests.len() as u64);
    obs.counter("admission_compiled_dropped_total").add(outcome.dropped as u64);
    obs.counter("admission_cosmetic_skips_total").add(outcome.cosmetic_skips as u64);
    // The debt this pass leaves outstanding: registered sites whose
    // artifact the next admission sweep must recompile.
    obs.gauge("robotstxt_compile_debt").set(estate.compile_debt() as u64);
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;

    fn digest(site: &str, from: PolicyVersion, to: PolicyVersion) -> ChangeDigest {
        ChangeDigest {
            site: site.to_string(),
            at: 0,
            from,
            to,
            observers: 1,
            tightened: 0,
            loosened: 0,
            delay_changes: 0,
            class: ChangeClass::Behavioral,
        }
    }

    fn cosmetic(site: &str, from: PolicyVersion, to: PolicyVersion) -> ChangeDigest {
        ChangeDigest { class: ChangeClass::Cosmetic, ..digest(site, from, to) }
    }

    #[test]
    fn priming_registers_without_compiling() {
        let mut estate = PolicyEstate::new();
        prime_estate(
            &mut estate,
            [
                ("a.example.edu", PolicyVersion::Base),
                ("b.example.edu", PolicyVersion::V1CrawlDelay),
            ],
        );
        assert_eq!(estate.len(), 2);
        assert_eq!(estate.compiled_count(), 0);
        assert_eq!(estate.compiles(), 0);
    }

    #[test]
    fn only_digested_sites_recompile() {
        let mut estate = PolicyEstate::new();
        let sites = ["a.example.edu", "b.example.edu", "c.example.edu"];
        prime_estate(&mut estate, sites.iter().map(|s| (*s, PolicyVersion::Base)));
        // Warm every artifact.
        for site in sites {
            assert_eq!(estate.check(site, "GPTBot", "/news/item-001"), Some(true));
        }
        assert_eq!(estate.compiles(), 3);

        let outcome = apply_digests(
            &mut estate,
            &[digest("b.example.edu", PolicyVersion::Base, PolicyVersion::V3DisallowAll)],
        );
        assert_eq!(outcome, DigestOutcome { dropped: 1, cosmetic_skips: 0 });
        // Only b lost its artifact; a and c stay warm.
        assert_eq!(estate.compiled_count(), 2);

        // The re-check answers from the *new* policy and costs exactly
        // one recompile.
        assert_eq!(estate.check("b.example.edu", "GPTBot", "/news/item-001"), Some(false));
        assert_eq!(estate.check("a.example.edu", "GPTBot", "/news/item-001"), Some(true));
        assert_eq!(estate.compiles(), 4);
    }

    #[test]
    fn digest_for_unknown_site_inserts_it() {
        let mut estate = PolicyEstate::new();
        let outcome = apply_digests(
            &mut estate,
            &[digest("new.example.edu", PolicyVersion::Base, PolicyVersion::V2EndpointOnly)],
        );
        assert_eq!(outcome, DigestOutcome { dropped: 0, cosmetic_skips: 0 });
        assert_eq!(estate.len(), 1);
        // Unknown sites stay the caller's problem; the v2 wildcard group
        // denies content and allows page-data.
        assert_eq!(estate.check("missing.example.edu", "SomeBot", "/x"), None);
        assert_eq!(estate.check("new.example.edu", "SomeBot", "/news/item-001"), Some(false));
        assert_eq!(
            estate.check("new.example.edu", "SomeBot", "/page-data/item-001/page-data.json"),
            Some(true)
        );
    }

    #[test]
    fn uncompiled_sites_create_no_recompile_debt() {
        let mut estate = PolicyEstate::new();
        prime_estate(&mut estate, [("a.example.edu", PolicyVersion::Base)]);
        // Never checked, so never compiled: the digest swaps the doc but
        // reports zero dropped artifacts.
        let outcome = apply_digests(
            &mut estate,
            &[digest("a.example.edu", PolicyVersion::Base, PolicyVersion::V1CrawlDelay)],
        );
        assert_eq!(outcome, DigestOutcome { dropped: 0, cosmetic_skips: 0 });
        assert_eq!(estate.compiles(), 0);
    }

    #[test]
    fn cosmetic_digests_keep_artifacts_warm() {
        let mut estate = PolicyEstate::new();
        let sites = ["a.example.edu", "b.example.edu"];
        prime_estate(&mut estate, sites.iter().map(|s| (*s, PolicyVersion::Base)));
        for site in sites {
            assert_eq!(estate.check(site, "GPTBot", "/news/item-001"), Some(true));
        }
        assert_eq!(estate.compiles(), 2);

        // A cosmetic transition owes nothing: no drop, no doc swap.
        let outcome = apply_digests(
            &mut estate,
            &[cosmetic("a.example.edu", PolicyVersion::Base, PolicyVersion::Base)],
        );
        assert_eq!(outcome, DigestOutcome { dropped: 0, cosmetic_skips: 1 });
        assert_eq!(estate.compiled_count(), 2);
        // Re-checking costs zero additional compiles.
        assert_eq!(estate.check("a.example.edu", "GPTBot", "/news/item-001"), Some(true));
        assert_eq!(estate.compiles(), 2);
    }

    #[test]
    fn cosmetic_digest_for_unknown_site_still_inserts() {
        let mut estate = PolicyEstate::new();
        let outcome = apply_digests(
            &mut estate,
            &[cosmetic("new.example.edu", PolicyVersion::Base, PolicyVersion::Base)],
        );
        assert_eq!(outcome, DigestOutcome { dropped: 0, cosmetic_skips: 0 });
        assert_eq!(estate.len(), 1);
        assert_eq!(estate.check("new.example.edu", "GPTBot", "/news/item-001"), Some(true));
    }

    #[test]
    fn mixed_pass_counts_each_class() {
        let mut estate = PolicyEstate::new();
        let sites = ["a.example.edu", "b.example.edu", "c.example.edu"];
        prime_estate(&mut estate, sites.iter().map(|s| (*s, PolicyVersion::Base)));
        for site in sites {
            estate.check(site, "GPTBot", "/");
        }
        let outcome = apply_digests(
            &mut estate,
            &[
                digest("a.example.edu", PolicyVersion::Base, PolicyVersion::V3DisallowAll),
                cosmetic("b.example.edu", PolicyVersion::Base, PolicyVersion::Base),
                digest("d.example.edu", PolicyVersion::Base, PolicyVersion::V2EndpointOnly),
            ],
        );
        assert_eq!(outcome, DigestOutcome { dropped: 1, cosmetic_skips: 1 });
        assert_eq!(estate.len(), 4);
        assert_eq!(estate.compiled_count(), 2); // b and c stay warm
    }
}

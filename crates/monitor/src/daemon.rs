//! The monitoring daemon: an event-driven fetch scheduler over a
//! virtual clock.
//!
//! One *fetch agent* runs per (bot, site): it owns a [`RobotsCache`]
//! with a TTL sampled from the paper's observed 12 h–never re-check
//! spectrum (§5.1, Figure 10), fetches the site's robots.txt through
//! the [`VirtualTransport`], re-resolves its effective policy via
//! [`EffectivePolicy::from_outcome`], backs off exponentially on
//! `ServerError`/`NetworkError`, and detects served-policy swaps (the
//! transitions [`crate::transport::ServerModel`] scripts), which are
//! digested through `robotstxt::diff` into [`ChangeDigest`]s.
//!
//! **Scheduling.** Each agent's due times sit in a binary-heap event
//! queue keyed `(time, agent)`. The queue is sharded: agents are split
//! into fixed-size chunks (the chunk grid is independent of the worker
//! count), chunks are processed by `std::thread::scope` workers, and
//! per-chunk [`FetchEventLog`] shards are absorbed in chunk order and
//! canonically sorted. Because every agent stream derives from
//! `child_seed(seed, agent)` and the transport is a pure function of
//! `(site, time, agent)`, output is byte-identical for a fixed seed at
//! any worker count.

use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use botscope_asn::ip_for;
use botscope_robotstxt::analysis::{classify_change, ChangeClass};
use botscope_robotstxt::diff::{diff, summarize, PolicyChange};
use botscope_robotstxt::fetch::{EffectivePolicy, FetchOutcome, RobotsCache};
use botscope_simnet::belief::{BeliefAtlas, BeliefTimeline, BelievedPolicy};
use botscope_simnet::fleet::{build_fleet, SimBot};
use botscope_simnet::{child_seed, worker_threads, PolicyVersion};
use botscope_weblog::fetchlog::FetchEventLog;
use botscope_weblog::intern::Sym;
use botscope_weblog::iphash::IpHasher;
use botscope_weblog::table::LogTable;
use botscope_weblog::time::Timestamp;

use crate::scenario::{build_estate, ScenarioKind};
use crate::transport::{Validators, VirtualTransport};

/// TTL sentinel: fetch once, never re-fetch.
pub const NEVER: u64 = u64::MAX;

/// Distinguishes per-agent streams from per-site scenario streams.
const AGENT_STREAM: u64 = 0xA6E7_0000_0000_0000;

/// Agents per scheduler chunk: a pure function of the agent count (it
/// must NOT depend on the worker count) so shard boundaries — and
/// therefore the merged output — are identical at any
/// `BOTSCOPE_THREADS`. Small estates still split into several chunks so
/// the parallel merge path is always exercised.
fn chunk_agents(n_agents: usize) -> usize {
    (n_agents / 64).clamp(16, 4096)
}

/// First retry delay after a failed fetch; doubles per consecutive
/// failure up to `300 << 7` = 38 400 s, additionally capped by the
/// agent's TTL and by 12 h.
const BACKOFF_BASE_SECS: u64 = 300;

/// How each agent's re-check TTL is chosen.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TtlPolicy {
    /// Sample from the paper's observed spectrum: 12 h/24 h/48 h/72 h/
    /// 168 h/never with weights 5/20/15/20/20/20 %.
    Spectrum,
    /// Every agent uses this many hours.
    FixedHours(u64),
}

impl TtlPolicy {
    /// Parse a CLI token: `spectrum` or an hour count.
    pub fn parse(s: &str) -> Option<TtlPolicy> {
        if s == "spectrum" {
            return Some(TtlPolicy::Spectrum);
        }
        s.parse::<u64>().ok().filter(|&h| h >= 1).map(TtlPolicy::FixedHours)
    }
}

/// (hours, percent weight); `None` hours = never re-fetch.
const TTL_SPECTRUM: [(Option<u64>, u32); 6] =
    [(Some(12), 5), (Some(24), 20), (Some(48), 15), (Some(72), 20), (Some(168), 20), (None, 20)];

fn sample_ttl_secs(policy: TtlPolicy, rng: &mut StdRng) -> u64 {
    match policy {
        TtlPolicy::FixedHours(h) => h.max(1) * 3600,
        TtlPolicy::Spectrum => {
            let roll = rng.gen_range(0u32..100);
            let mut acc = 0;
            for (hours, weight) in TTL_SPECTRUM {
                acc += weight;
                if roll < acc {
                    return hours.map_or(NEVER, |h| h * 3600);
                }
            }
            unreachable!("spectrum weights sum to 100")
        }
    }
}

/// Monitoring-run parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct MonitorConfig {
    /// Master seed; every stream derives from it.
    pub seed: u64,
    /// Estate size (sites to monitor).
    pub sites: usize,
    /// Horizon in simulated days.
    pub days: u64,
    /// First instant.
    pub start: Timestamp,
    /// Number of fleet bots to run agents for (top of the registry by
    /// calibrated daily volume).
    pub bots: usize,
    /// TTL sampling policy.
    pub ttl: TtlPolicy,
    /// Server-side weather.
    pub scenario: ScenarioKind,
    /// Every Nth site deploys the four-phase swap schedule (0 = none).
    pub swap_every: usize,
}

impl Default for MonitorConfig {
    fn default() -> Self {
        MonitorConfig {
            seed: 9309,
            sites: 36,
            days: 46,
            start: Timestamp::from_date(2025, 2, 12),
            bots: 6,
            ttl: TtlPolicy::Spectrum,
            scenario: ScenarioKind::Mixed,
            swap_every: 4,
        }
    }
}

impl MonitorConfig {
    /// End of the horizon (exclusive), unix seconds.
    pub fn horizon_end(&self) -> u64 {
        self.start.unix() + self.days * 86_400
    }

    /// Validate invariants; panics on caller logic errors.
    pub fn assert_valid(&self) {
        assert!(self.sites > 0, "no sites to monitor");
        assert!(self.days > 0, "zero-day horizon");
        assert!(self.bots > 0, "no bots to monitor with");
    }
}

/// Aggregate counters of a monitoring run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MonitorStats {
    /// Fetch agents scheduled.
    pub agents: u64,
    /// Fetch attempts performed (rows emitted).
    pub fetches: u64,
    /// 2xx outcomes.
    pub success: u64,
    /// Subset of `success` that only re-validated an unchanged body —
    /// a conditional request answered `304 Not Modified`, whether the
    /// body sits at the origin or behind a redirect chain.
    pub revalidated: u64,
    /// Body bytes the estate never transferred because conditional
    /// requests were answered `304 Not Modified`.
    pub revalidated_bytes_saved: u64,
    /// Resolved 4xx outcomes (includes redirect-capped chains).
    pub client_errors: u64,
    /// Resolved 5xx outcomes.
    pub server_errors: u64,
    /// Transport-level failures.
    pub network_errors: u64,
    /// Redirect hops followed across all fetches.
    pub redirects_followed: u64,
    /// Chains abandoned at the RFC 9309 five-hop budget.
    pub redirects_capped: u64,
    /// Fetches scheduled by the failure backoff (rather than the TTL).
    pub backoff_retries: u64,
    /// Policy transitions observed by agents (pre-deduplication).
    pub policy_changes_observed: u64,
    /// Summed seeded latency, milliseconds.
    pub latency_ms_sum: u64,
    /// Worst seeded latency, milliseconds.
    pub latency_ms_max: u32,
}

impl MonitorStats {
    fn merge(&mut self, other: &MonitorStats) {
        self.agents += other.agents;
        self.fetches += other.fetches;
        self.success += other.success;
        self.revalidated += other.revalidated;
        self.revalidated_bytes_saved += other.revalidated_bytes_saved;
        self.client_errors += other.client_errors;
        self.server_errors += other.server_errors;
        self.network_errors += other.network_errors;
        self.redirects_followed += other.redirects_followed;
        self.redirects_capped += other.redirects_capped;
        self.backoff_retries += other.backoff_retries;
        self.policy_changes_observed += other.policy_changes_observed;
        self.latency_ms_sum += other.latency_ms_sum;
        self.latency_ms_max = self.latency_ms_max.max(other.latency_ms_max);
    }
}

/// One deduplicated served-policy transition, digested via
/// `robotstxt::diff` over the monitored bots.
#[derive(Debug, Clone, PartialEq)]
pub struct ChangeDigest {
    /// Site that swapped its file.
    pub site: String,
    /// Unix second of the first fetch that observed the new file.
    pub at: u64,
    /// Previous version.
    pub from: PolicyVersion,
    /// New version.
    pub to: PolicyVersion,
    /// How many agents observed this transition.
    pub observers: u64,
    /// Probes that flipped allow → deny.
    pub tightened: usize,
    /// Probes that flipped deny → allow.
    pub loosened: usize,
    /// Agents whose crawl delay changed.
    pub delay_changes: usize,
    /// Semantic classification of the transition: cosmetic edits are
    /// decision-equivalent for every agent and path, behavioral ones are
    /// not (proven by `robotstxt::analysis::classify_change`).
    pub class: ChangeClass,
}

/// The daemon's output.
#[derive(Debug, Clone)]
pub struct MonitorOutput {
    /// Every fetch event, canonically sorted, with its interner.
    pub table: LogTable,
    /// Deduplicated policy transitions in (time, site) order.
    pub changes: Vec<ChangeDigest>,
    /// Aggregate counters.
    pub stats: MonitorStats,
    /// End of the monitored horizon (unix seconds) — the recheck
    /// analyses anchor their windows on it.
    pub horizon_end: u64,
    /// Canonical names of the monitored bots.
    pub bots: Vec<String>,
    /// Per-site policy deployment windows (site name → time-ascending
    /// `(version, from, to)` spans clipped to the horizon) — what
    /// Table 7's "checked robots.txt while vN was live" columns are
    /// judged against.
    pub site_windows: BTreeMap<String, Vec<(PolicyVersion, u64, u64)>>,
}

/// The monitored sub-fleet: the `n` highest-volume calibrated bots
/// (deterministic: volume descending, name ascending).
pub fn monitor_fleet(n: usize) -> Vec<SimBot> {
    let mut fleet = build_fleet();
    fleet.sort_by(|a, b| {
        b.behavior
            .daily_hits
            .total_cmp(&a.behavior.daily_hits)
            .then_with(|| a.spec.canonical.cmp(b.spec.canonical))
    });
    fleet.truncate(n.max(1));
    fleet
}

/// One (bot, site) fetch agent.
struct Agent {
    site: u32,
    ua: Sym,
    asn: Sym,
    site_sym: Sym,
    ip_hash: u64,
    ttl_secs: u64,
    rng: StdRng,
    cache: RobotsCache,
    consecutive_failures: u32,
    /// Version of the last *successful* body — the change-detection
    /// baseline. Deliberately survives error outcomes, so a swap that
    /// happens behind an outage is still detected on recovery.
    last_version: Option<PolicyVersion>,
    /// Whether the cache currently holds the parsed policy of
    /// `last_version` (false after an error stored AllowAll/DisallowAll).
    /// Guards both revalidation paths: after an error the agent must
    /// neither send validators nor take the same-body shortcut — a
    /// success must re-store the parsed policy.
    cache_is_policy: bool,
    /// `ETag`/`Last-Modified` of the cached body, replayed as a
    /// conditional request while `cache_is_policy` holds.
    validators: Option<Validators>,
    /// The agent's belief transitions, when the run collects them.
    beliefs: Option<BeliefTimeline>,
}

impl Agent {
    fn believe(&mut self, now: u64, policy: BelievedPolicy) {
        if let Some(timeline) = &mut self.beliefs {
            timeline.record(now, policy);
        }
    }
}

/// Key of an observed transition: (site, from, to).
type ChangeKey = (u32, u8, u8);

struct Shard {
    log: FetchEventLog,
    stats: MonitorStats,
    /// transition → (first observation time, observers).
    changes: BTreeMap<ChangeKey, (u64, u64)>,
    /// Per-agent belief timelines (chunk-local order; empty unless the
    /// run collects beliefs).
    beliefs: Vec<BeliefTimeline>,
}

/// How a run assigns each agent's re-check TTL.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum TtlSource {
    /// Sample per agent from the run's [`TtlPolicy`] (the monitoring
    /// daemon's default).
    Config,
    /// Derive each agent's TTL from its bot's own
    /// [`botscope_simnet::behavior::RobotsCheckPolicy`] cadence;
    /// never-checking bots schedule no fetches at all and their belief
    /// stays `Unfetched` (coupled mode).
    FleetCadence,
}

/// A fully specified daemon run. The public entry points and the
/// coupled driver both build one of these; everything downstream —
/// chunk grid, scheduling, merging — is shared.
pub(crate) struct DaemonRun<'a> {
    pub(crate) cfg: &'a MonitorConfig,
    pub(crate) fleet: &'a [SimBot],
    pub(crate) transport: &'a VirtualTransport,
    pub(crate) ttl: TtlSource,
    pub(crate) collect_beliefs: bool,
}

/// Run the daemon with [`worker_threads`] workers.
pub fn run(cfg: &MonitorConfig) -> MonitorOutput {
    run_with_threads(cfg, worker_threads())
}

/// [`run`] with an explicit worker count. Output is byte-identical for
/// a fixed seed regardless of `threads`.
pub fn run_with_threads(cfg: &MonitorConfig, threads: usize) -> MonitorOutput {
    cfg.assert_valid();
    let fleet = monitor_fleet(cfg.bots);
    let transport = VirtualTransport::new(build_estate(cfg));
    let run = DaemonRun {
        cfg,
        fleet: &fleet,
        transport: &transport,
        ttl: TtlSource::Config,
        collect_beliefs: false,
    };
    run_daemon(&run, threads).0
}

/// [`run_with_threads`], additionally exporting every agent's
/// [`BeliefTimeline`] as a [`BeliefAtlas`] — the stepwise per-(bot,
/// site) effective policy each monitored crawler believed over the
/// horizon, RFC 9309 error states and backoff gaps included.
pub fn run_with_beliefs(cfg: &MonitorConfig, threads: usize) -> (MonitorOutput, BeliefAtlas) {
    cfg.assert_valid();
    let fleet = monitor_fleet(cfg.bots);
    let transport = VirtualTransport::new(build_estate(cfg));
    let run = DaemonRun {
        cfg,
        fleet: &fleet,
        transport: &transport,
        ttl: TtlSource::Config,
        collect_beliefs: true,
    };
    let (output, atlas) = run_daemon(&run, threads);
    (output, atlas.expect("beliefs collected"))
}

/// Run the chunked scheduler and return per-chunk shards in chunk-grid
/// order.
fn run_shards(run: &DaemonRun<'_>, hasher: &IpHasher, threads: usize) -> Vec<Shard> {
    assert!(threads >= 1, "at least one worker required");
    let n_agents = run.cfg.sites * run.fleet.len();
    let chunk_size = chunk_agents(n_agents);
    let n_chunks = n_agents.div_ceil(chunk_size);

    let run_chunk = |chunk: usize| -> Shard {
        let lo = chunk * chunk_size;
        let hi = (lo + chunk_size).min(n_agents);
        run_agents(run, hasher, lo, hi)
    };

    let threads = threads.min(n_chunks.max(1));
    if threads == 1 {
        return (0..n_chunks).map(run_chunk).collect();
    }
    let next = AtomicUsize::new(0);
    let results: Mutex<Vec<(usize, Shard)>> = Mutex::new(Vec::with_capacity(n_chunks));
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let chunk = next.fetch_add(1, Ordering::Relaxed);
                if chunk >= n_chunks {
                    break;
                }
                let shard = run_chunk(chunk);
                results.lock().expect("no poisoned workers").push((chunk, shard));
            });
        }
    });
    let mut shards = results.into_inner().expect("workers joined");
    // Merge must follow the fixed chunk grid, not completion order.
    shards.sort_by_key(|&(chunk, _)| chunk);
    shards.into_iter().map(|(_, shard)| shard).collect()
}

/// The counters, deduplicated transitions, and deployment windows every
/// assembly path shares (materialized and streaming).
fn merge_shard_summaries(
    run: &DaemonRun<'_>,
    shards: &[Shard],
) -> (MonitorStats, Vec<ChangeDigest>) {
    let mut stats = MonitorStats::default();
    let mut merged_changes: BTreeMap<ChangeKey, (u64, u64)> = BTreeMap::new();
    for shard in shards {
        stats.merge(&shard.stats);
        for (key, &(at, observers)) in &shard.changes {
            let entry = merged_changes.entry(*key).or_insert((at, 0));
            entry.0 = entry.0.min(at);
            entry.1 += observers;
        }
    }
    (stats, digest_changes(run.transport, run.fleet, merged_changes))
}

/// Per-site deployment windows, clipped to the run's horizon.
fn site_windows_of(run: &DaemonRun<'_>) -> BTreeMap<String, Vec<(PolicyVersion, u64, u64)>> {
    let horizon_end = run.cfg.horizon_end();
    (0..run.transport.len())
        .map(|site| {
            let model = run.transport.model(site);
            (model.name.clone(), model.policy.version_windows(horizon_end))
        })
        .collect()
}

/// The deployment windows `cfg` *would* produce, without running the
/// daemon: rebuilds the scripted estate (cheap — O(sites)) and reads
/// each site's version windows. Streaming callers use this to construct
/// report sinks *before* the run starts, since [`run_streaming`] owns
/// its transport internally.
pub fn config_site_windows(
    cfg: &MonitorConfig,
) -> BTreeMap<String, Vec<(PolicyVersion, u64, u64)>> {
    cfg.assert_valid();
    let transport = VirtualTransport::new(build_estate(cfg));
    let horizon_end = cfg.horizon_end();
    (0..transport.len())
        .map(|site| {
            let model = transport.model(site);
            (model.name.clone(), model.policy.version_windows(horizon_end))
        })
        .collect()
}

/// Flush a finished run's aggregate counters into the global telemetry
/// registry. Counters are additive, so repeated runs in one process
/// (test harnesses, the coupled driver) accumulate; the per-scenario
/// change-digest counter keys on the scenario label so mixed workloads
/// stay distinguishable in one exposition.
fn export_telemetry(cfg: &MonitorConfig, stats: &MonitorStats, changes: &[ChangeDigest]) {
    let obs = botscope_obs::global();
    obs.counter("monitor_agents_total").add(stats.agents);
    obs.counter("monitor_fetches_total").add(stats.fetches);
    obs.counter("monitor_fetch_outcomes_total{class=\"2xx\"}").add(stats.success);
    obs.counter("monitor_fetch_outcomes_total{class=\"4xx\"}").add(stats.client_errors);
    obs.counter("monitor_fetch_outcomes_total{class=\"5xx\"}").add(stats.server_errors);
    obs.counter("monitor_fetch_outcomes_total{class=\"network\"}").add(stats.network_errors);
    obs.counter("monitor_cache_revalidations_total").add(stats.revalidated);
    obs.counter("monitor_revalidated_bytes_saved_total").add(stats.revalidated_bytes_saved);
    obs.counter("monitor_redirects_followed_total").add(stats.redirects_followed);
    obs.counter("monitor_redirects_capped_total").add(stats.redirects_capped);
    obs.counter("monitor_backoff_retries_total").add(stats.backoff_retries);
    // Every fetch is scheduled by exactly one of: the agent's first
    // probe, its TTL expiring, or the failure backoff.
    let ttl_expiries = stats.fetches.saturating_sub(stats.agents + stats.backoff_retries);
    obs.counter("monitor_ttl_expiry_fetches_total").add(ttl_expiries);
    obs.counter("monitor_policy_changes_observed_total").add(stats.policy_changes_observed);
    let scenario = cfg.scenario.label();
    obs.counter(&format!("monitor_change_digests_total{{scenario=\"{scenario}\"}}"))
        .add(changes.len() as u64);
    let behavioral = changes.iter().filter(|c| c.class == ChangeClass::Behavioral).count();
    obs.counter(&format!("monitor_behavioral_digests_total{{scenario=\"{scenario}\"}}"))
        .add(behavioral as u64);
}

/// Run to completion and assemble the merged output (plus the belief
/// atlas when the run collects beliefs).
pub(crate) fn run_daemon(
    run: &DaemonRun<'_>,
    threads: usize,
) -> (MonitorOutput, Option<BeliefAtlas>) {
    let obs = botscope_obs::global();
    let mut span = obs.span("monitor_run");
    span.event_range(run.cfg.start.unix(), run.cfg.horizon_end());
    let hasher = IpHasher::from_seed(run.cfg.seed);
    let shards = run_shards(run, &hasher, threads);
    let (stats, changes) = merge_shard_summaries(run, &shards);
    export_telemetry(run.cfg, &stats, &changes);

    let total_rows: usize = shards.iter().map(|s| s.log.len()).sum();
    let mut table = LogTable::with_capacity(total_rows, 1024);
    for shard in &shards {
        table.absorb(shard.log.table());
    }
    table.sort_canonical();

    let atlas = run.collect_beliefs.then(|| {
        let n_bots = run.fleet.len();
        let bots = run.fleet.iter().map(|b| b.spec.canonical.to_string()).collect();
        let mut atlas = BeliefAtlas::new(bots, run.cfg.sites);
        let n_agents = run.cfg.sites * n_bots;
        let chunk_size = chunk_agents(n_agents);
        for (chunk, shard) in shards.iter().enumerate() {
            let lo = chunk * chunk_size;
            for (local, timeline) in shard.beliefs.iter().enumerate() {
                let global = lo + local;
                // Agents are site-major; the atlas is bot-major.
                *atlas.timeline_mut(global % n_bots, global / n_bots) = timeline.clone();
            }
        }
        atlas
    });

    let output = MonitorOutput {
        table,
        changes,
        stats,
        horizon_end: run.cfg.horizon_end(),
        bots: run.fleet.iter().map(|b| b.spec.canonical.to_string()).collect(),
        site_windows: site_windows_of(run),
    };
    (output, atlas)
}

/// A streaming run's summary: everything [`MonitorOutput`] carries
/// except the materialized table, which went to the sinks row by row.
#[derive(Debug, Clone)]
pub struct MonitorSummary {
    /// Aggregate counters.
    pub stats: MonitorStats,
    /// Deduplicated policy transitions in (time, site) order.
    pub changes: Vec<ChangeDigest>,
    /// End of the monitored horizon (unix seconds).
    pub horizon_end: u64,
    /// Canonical names of the monitored bots.
    pub bots: Vec<String>,
    /// Per-site policy deployment windows (cf.
    /// [`MonitorOutput::site_windows`]).
    pub site_windows: BTreeMap<String, Vec<(PolicyVersion, u64, u64)>>,
    /// Rows streamed to each sink.
    pub rows: u64,
}

/// [`run_with_threads`], streaming every fetch event to `sinks` in the
/// canonical output order instead of materializing the merged
/// [`LogTable`]. The per-chunk shards are canonically sorted and k-way
/// merged (ties break on the fixed chunk grid, reproducing the
/// materialized path's stable sort exactly), so the streamed bytes are
/// identical to encoding [`MonitorOutput::table`] — at roughly half the
/// peak memory, since the merged table and its encoded copy never
/// exist.
pub fn run_streaming(
    cfg: &MonitorConfig,
    threads: usize,
    sinks: &mut [&mut dyn botscope_weblog::sink::RowSink],
) -> std::io::Result<MonitorSummary> {
    cfg.assert_valid();
    let fleet = monitor_fleet(cfg.bots);
    let transport = VirtualTransport::new(build_estate(cfg));
    let run = DaemonRun {
        cfg,
        fleet: &fleet,
        transport: &transport,
        ttl: TtlSource::Config,
        collect_beliefs: false,
    };
    let obs = botscope_obs::global();
    let mut span = obs.span("monitor_run");
    span.event_range(cfg.start.unix(), cfg.horizon_end());
    let hasher = IpHasher::from_seed(cfg.seed);
    let shards = run_shards(&run, &hasher, threads);
    let (stats, changes) = merge_shard_summaries(&run, &shards);
    export_telemetry(cfg, &stats, &changes);
    let site_windows = site_windows_of(&run);

    // Each shard becomes one canonically sorted run (MergeRun::from_table
    // sorts stably, so full ties keep push order); the shared k-way merge
    // tiebreaks on run index — exactly the order `concatenate in chunk
    // order + stable sort` produces in the materialized path.
    let runs: Vec<botscope_weblog::MergeRun> = shards
        .into_iter()
        .map(|shard| botscope_weblog::MergeRun::from_table(shard.log.into_table()))
        .collect();
    let rows = botscope_weblog::merge_runs(runs, sinks)?;

    Ok(MonitorSummary {
        stats,
        changes,
        horizon_end: cfg.horizon_end(),
        bots: fleet.iter().map(|b| b.spec.canonical.to_string()).collect(),
        site_windows,
        rows,
    })
}

/// Paths probed when digesting a policy transition: one representative
/// of each family the experimental files regulate.
const PROBE_PATHS: [&str; 6] = [
    "/",
    "/news/item-001",
    "/people/person-0001",
    "/page-data/item-001/page-data.json",
    "/secure/admin-0",
    "/404",
];

/// Deduplicate observed transitions and summarize each through
/// `robotstxt::diff` (the 4×4 version matrix is memoized — a 100k-site
/// estate has at most 12 distinct transitions).
fn digest_changes(
    transport: &VirtualTransport,
    fleet: &[SimBot],
    merged: BTreeMap<ChangeKey, (u64, u64)>,
) -> Vec<ChangeDigest> {
    let mut agents: Vec<&str> = fleet.iter().map(|b| b.spec.canonical).collect();
    agents.push("anybot");
    let mut matrix: BTreeMap<(u8, u8), (usize, usize, usize, ChangeClass)> = BTreeMap::new();
    let mut changes: Vec<ChangeDigest> = merged
        .into_iter()
        .map(|((site, from, to), (at, observers))| {
            let (tightened, loosened, delay_changes, class) =
                *matrix.entry((from, to)).or_insert_with(|| {
                    let old = transport.corpus().doc(PolicyVersion::ALL[from as usize]);
                    let new = transport.corpus().doc(PolicyVersion::ALL[to as usize]);
                    let probe = diff(old, new, &agents, &PROBE_PATHS);
                    let (tightened, loosened) = summarize(&probe);
                    let delays = probe
                        .iter()
                        .filter(|c| matches!(c, PolicyChange::CrawlDelayChanged { .. }))
                        .count();
                    (tightened, loosened, delays, classify_change(old, new))
                });
            ChangeDigest {
                site: transport.model(site as usize).name.clone(),
                at,
                from: PolicyVersion::ALL[from as usize],
                to: PolicyVersion::ALL[to as usize],
                observers,
                tightened,
                loosened,
                delay_changes,
                class,
            }
        })
        .collect();
    changes.sort_by(|a, b| (a.at, &a.site, a.from, a.to).cmp(&(b.at, &b.site, b.from, b.to)));
    changes
}

/// Run agents `[lo, hi)` to completion, returning their shard.
fn run_agents(run: &DaemonRun<'_>, hasher: &IpHasher, lo: usize, hi: usize) -> Shard {
    let DaemonRun { cfg, fleet, transport, .. } = *run;
    let n_bots = fleet.len();
    let horizon = cfg.horizon_end();
    let mut log = FetchEventLog::new();

    // Per-bot fixed symbols, interned once per shard.
    let bot_syms: Vec<(Sym, Sym)> =
        fleet.iter().map(|b| (log.intern(&b.ua_string), log.intern(b.spec.home_asn))).collect();

    let mut agents: Vec<Agent> = Vec::with_capacity(hi - lo);
    let mut queue: BinaryHeap<Reverse<(u64, u32)>> = BinaryHeap::with_capacity(hi - lo);
    for global in lo..hi {
        let site = global / n_bots;
        let bot = &fleet[global % n_bots];
        let mut rng = StdRng::seed_from_u64(child_seed(cfg.seed, AGENT_STREAM ^ global as u64));
        // `None` = this bot never fetches robots.txt at all: no events
        // are scheduled and its belief stays `Unfetched` forever.
        let ttl_secs = match run.ttl {
            TtlSource::Config => Some(sample_ttl_secs(cfg.ttl, &mut rng)),
            TtlSource::FleetCadence => bot.behavior.robots_check.ttl_secs(),
        };
        // First fetch lands inside one TTL window (a day for the
        // never-refetch cohort) so the estate doesn't fetch in lockstep.
        let first_window = ttl_secs.unwrap_or(NEVER).clamp(1, 86_400);
        let first = cfg.start.unix() + rng.gen_range(0..first_window);
        let ip = ip_for(bot.spec.home_asn, rng.gen_range(0..bot.behavior.ip_pool))
            .unwrap_or_else(|| panic!("unknown home ASN {}", bot.spec.home_asn));
        let (ua, asn) = bot_syms[global % n_bots];
        let site_sym = log.intern(&transport.model(site).name);
        let local = agents.len() as u32;
        let ttl = ttl_secs.unwrap_or(NEVER);
        agents.push(Agent {
            site: site as u32,
            ua,
            asn,
            site_sym,
            ip_hash: hasher.hash_ipv4(ip),
            ttl_secs: ttl,
            rng,
            cache: RobotsCache::new(ttl),
            consecutive_failures: 0,
            last_version: None,
            cache_is_policy: false,
            validators: None,
            beliefs: run.collect_beliefs.then(BeliefTimeline::new),
        });
        if ttl_secs.is_some() && first < horizon {
            queue.push(Reverse((first, local)));
        }
    }

    let mut stats = MonitorStats { agents: (hi - lo) as u64, ..MonitorStats::default() };
    let mut changes: BTreeMap<ChangeKey, (u64, u64)> = BTreeMap::new();

    while let Some(Reverse((now, local))) = queue.pop() {
        debug_assert!(now < horizon, "events past the horizon are never queued");
        let agent = &mut agents[local as usize];
        let global = lo + local as usize;
        // Replay the cached body's validators while the cache holds a
        // real parsed policy; after an error outcome the agent needs a
        // full body back, so no conditional request is sent.
        let conditional = if agent.cache_is_policy { agent.validators } else { None };
        let fetch =
            transport.fetch_conditional(agent.site as usize, now, global as u64, conditional);

        log.push(
            agent.ua,
            agent.asn,
            agent.site_sym,
            agent.ip_hash,
            fetch.resolved.status,
            fetch.bytes,
            Timestamp::from_unix(now),
        );
        stats.fetches += 1;
        stats.redirects_followed += fetch.resolved.hops as u64;
        stats.redirects_capped += fetch.resolved.capped as u64;
        stats.latency_ms_sum += fetch.latency_ms as u64;
        stats.latency_ms_max = stats.latency_ms_max.max(fetch.latency_ms);

        // The next fetch can never start before the exchange finished.
        let settled = now + 1 + (fetch.latency_ms / 1000) as u64;
        let version = fetch.version;
        let outcome = fetch.resolved.outcome;

        let next = match outcome {
            FetchOutcome::NotModified => {
                // The server honoured the conditional request: the
                // cached policy is still current. Refresh, count the
                // transfer that never happened, and carry on — belief
                // is unchanged by construction.
                stats.success += 1;
                stats.revalidated += 1;
                stats.revalidated_bytes_saved += fetch.saved_bytes;
                agent.consecutive_failures = 0;
                let refreshed = agent.cache.refresh(now);
                debug_assert!(refreshed, "a 304 implies a cached policy");
                ttl_next(agent, settled)
            }
            FetchOutcome::Success(_) => {
                stats.success += 1;
                agent.consecutive_failures = 0;
                let version = version.expect("success always carries a version");
                agent.believe(now, BelievedPolicy::Version(version));
                if agent.last_version == Some(version)
                    && agent.cache_is_policy
                    && agent.cache.refresh(now)
                {
                    // Unchanged body AND the cache still holds its parsed
                    // policy, but the transfer couldn't be elided — the
                    // agent held no validators to present (conditional
                    // requests answer 304 even behind redirect chains,
                    // so this is a defensive fallback). No re-parse
                    // needed.
                    stats.revalidated += 1;
                } else {
                    if let Some(previous) = agent.last_version {
                        // A transition this agent actually observed.
                        // Recovering the *same* body after an error is
                        // not one — that path only re-parses.
                        if previous != version {
                            stats.policy_changes_observed += 1;
                            let key = (agent.site, previous.index() as u8, version.index() as u8);
                            let entry = changes.entry(key).or_insert((now, 0));
                            entry.0 = entry.0.min(now);
                            entry.1 += 1;
                        }
                    }
                    agent.cache.store(now, EffectivePolicy::from_outcome(outcome));
                    agent.last_version = Some(version);
                    agent.cache_is_policy = true;
                }
                agent.validators = fetch.validators;
                ttl_next(agent, settled)
            }
            FetchOutcome::ClientError(_) => {
                stats.client_errors += 1;
                agent.consecutive_failures = 0;
                // Unavailable ⇒ allow all, and the cadence stays TTL-driven.
                agent.cache.store(now, EffectivePolicy::from_outcome(outcome));
                agent.cache_is_policy = false;
                agent.believe(now, BelievedPolicy::AllowAll);
                ttl_next(agent, settled)
            }
            FetchOutcome::ServerError(_) | FetchOutcome::NetworkError => {
                if matches!(outcome, FetchOutcome::ServerError(_)) {
                    stats.server_errors += 1;
                } else {
                    stats.network_errors += 1;
                }
                // Unreachable ⇒ complete disallow until a fetch succeeds,
                // retried under exponential backoff.
                agent.cache.store(now, EffectivePolicy::from_outcome(outcome));
                agent.cache_is_policy = false;
                agent.believe(now, BelievedPolicy::DisallowAll);
                agent.consecutive_failures += 1;
                stats.backoff_retries += 1;
                let shift = (agent.consecutive_failures - 1).min(7);
                let delay = (BACKOFF_BASE_SECS << shift).min(agent.ttl_secs).min(43_200);
                Some(settled + delay + agent.rng.gen_range(0..31))
            }
        };

        if let Some(at) = next {
            if at < horizon {
                debug_assert!(
                    agent.cache.needs_fetch(at) || agent.consecutive_failures > 0,
                    "TTL-scheduled fetches land at or after expiry"
                );
                queue.push(Reverse((at, local)));
            }
        }
    }

    let beliefs = if run.collect_beliefs {
        agents.into_iter().filter_map(|a| a.beliefs).collect()
    } else {
        Vec::new()
    };
    Shard { log, stats, changes, beliefs }
}

/// The TTL-driven next due time (never for the fetch-once cohort).
fn ttl_next(agent: &mut Agent, settled: u64) -> Option<u64> {
    if agent.ttl_secs == NEVER {
        return None;
    }
    // Schedule exactly at expiry plus a small de-aliasing jitter; the
    // cache's `needs_fetch` is true at the boundary.
    Some(settled - 1 + agent.ttl_secs + agent.rng.gen_range(0..61))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> MonitorConfig {
        MonitorConfig { sites: 12, days: 8, bots: 4, ..MonitorConfig::default() }
    }

    #[test]
    fn deterministic_across_worker_counts() {
        let cfg = small_cfg();
        let serial = run_with_threads(&cfg, 1);
        for threads in [2, 8] {
            let parallel = run_with_threads(&cfg, threads);
            assert_eq!(serial.table.rows(), parallel.table.rows(), "{threads} workers");
            assert_eq!(serial.table.to_records(), parallel.table.to_records());
            assert_eq!(serial.stats, parallel.stats);
            assert_eq!(serial.changes, parallel.changes);
        }
    }

    #[test]
    fn deterministic_across_runs_and_seeds_differ() {
        let cfg = small_cfg();
        let a = run(&cfg);
        let b = run(&cfg);
        assert_eq!(a.table.to_records(), b.table.to_records());
        let c = run(&MonitorConfig { seed: 1234, ..cfg });
        assert_ne!(a.table.to_records(), c.table.to_records());
    }

    #[test]
    fn every_row_is_a_robots_fetch_inside_the_horizon() {
        let cfg = small_cfg();
        let out = run(&cfg);
        assert!(!out.table.is_empty());
        let start = cfg.start.unix();
        for record in out.table.iter_records() {
            assert!(record.is_robots_fetch());
            assert!(record.timestamp.unix() >= start);
            assert!(record.timestamp.unix() < out.horizon_end);
        }
        // Rows are canonically time-sorted.
        let rows = out.table.rows();
        assert!(rows.windows(2).all(|w| w[0].timestamp <= w[1].timestamp));
    }

    #[test]
    fn monitored_fleet_is_the_high_volume_prefix() {
        let four = monitor_fleet(4);
        assert_eq!(four.len(), 4);
        let all = monitor_fleet(usize::MAX);
        for pair in all.windows(2) {
            assert!(
                pair[0].behavior.daily_hits >= pair[1].behavior.daily_hits,
                "fleet must be volume-sorted"
            );
        }
        // The paper's headline heavy hitter leads.
        assert_eq!(four[0].spec.canonical, "YisouSpider");
    }

    #[test]
    fn swap_sites_produce_change_digests() {
        // All sites swap; long horizon so several transitions land.
        let cfg = MonitorConfig {
            sites: 8,
            days: 46,
            bots: 3,
            swap_every: 1,
            scenario: ScenarioKind::Stable,
            ..MonitorConfig::default()
        };
        let out = run(&cfg);
        assert!(!out.changes.is_empty(), "stable estate with swaps must observe them");
        assert!(out.stats.policy_changes_observed as usize >= out.changes.len());
        for change in &out.changes {
            assert_ne!(change.from, change.to);
            assert!(change.observers >= 1);
            assert!(change.at >= cfg.start.unix() && change.at < out.horizon_end);
            // The paper's gradient only tightens; the restore loosens.
            if change.to == PolicyVersion::Base {
                assert_eq!(change.tightened, 0, "{change:?}");
            } else if change.from == PolicyVersion::Base {
                assert_eq!(change.loosened, 0, "{change:?}");
            }
        }
        // Digests are time-ordered.
        assert!(out.changes.windows(2).all(|w| w[0].at <= w[1].at));
    }

    #[test]
    fn stable_estate_sees_no_errors() {
        let cfg = MonitorConfig { scenario: ScenarioKind::Stable, swap_every: 0, ..small_cfg() };
        let out = run(&cfg);
        assert_eq!(out.stats.server_errors, 0);
        assert_eq!(out.stats.network_errors, 0);
        assert_eq!(out.stats.redirects_followed, 0);
        assert_eq!(out.stats.fetches, out.stats.success);
        assert!(out.changes.is_empty());
        // Most successes after the first fetch are revalidations.
        assert!(out.stats.revalidated > 0);
    }

    #[test]
    fn outage_weather_triggers_backoff_and_disallow() {
        let cfg = MonitorConfig {
            sites: 40,
            days: 20,
            bots: 3,
            scenario: ScenarioKind::Outages,
            swap_every: 0,
            ttl: TtlPolicy::FixedHours(24),
            ..MonitorConfig::default()
        };
        let out = run(&cfg);
        assert!(out.stats.server_errors + out.stats.network_errors > 0);
        assert!(out.stats.backoff_retries > 0);
        // Retries densify fetches well beyond one per agent per two days.
        assert!(out.stats.fetches > out.stats.agents * cfg.days / 2);
    }

    #[test]
    fn redirect_weather_exercises_the_hop_budget() {
        let cfg = MonitorConfig {
            sites: 60,
            days: 6,
            bots: 2,
            scenario: ScenarioKind::Redirects,
            swap_every: 0,
            ttl: TtlPolicy::FixedHours(12),
            ..MonitorConfig::default()
        };
        let out = run(&cfg);
        assert!(out.stats.redirects_followed > 0);
        assert!(out.stats.redirects_capped > 0, "some scripted chains exceed five hops");
        // Capped chains resolve to "unavailable", logged with their 3xx.
        assert!(out.table.iter_records().any(|r| r.status == 301));
        // Within-budget chains revalidate at the final hop: unchanged
        // bodies behind 3xx come back 304 with the transfer elided, so
        // bytes-saved accounting covers CDN-fronted sites too.
        assert!(out.stats.revalidated > 0, "{:?}", out.stats);
        assert!(out.stats.revalidated_bytes_saved > 0, "{:?}", out.stats);
        let saw_304 = out.table.iter_records().any(|r| r.status == 304 && r.bytes == 0);
        assert!(saw_304, "304s behind chains reach the log");
    }

    #[test]
    fn fixed_ttl_cadence_matches_expectation() {
        let cfg = MonitorConfig {
            sites: 10,
            days: 10,
            bots: 2,
            ttl: TtlPolicy::FixedHours(24),
            scenario: ScenarioKind::Stable,
            swap_every: 0,
            ..MonitorConfig::default()
        };
        let out = run(&cfg);
        // Each agent fetches once per day, ± the start offset.
        let per_agent = out.stats.fetches as f64 / out.stats.agents as f64;
        assert!((8.0..=11.0).contains(&per_agent), "daily cadence, got {per_agent}");
    }

    #[test]
    fn recovery_after_error_reparses_instead_of_revalidating() {
        use crate::transport::{ConditionWindow, ServeMode, ServerModel, VirtualTransport};
        use botscope_simnet::server::SitePolicyServer;

        let cfg = MonitorConfig {
            sites: 1,
            days: 3,
            bots: 1,
            ttl: TtlPolicy::FixedHours(6),
            scenario: ScenarioKind::Stable,
            swap_every: 0,
            ..MonitorConfig::default()
        };
        let start = cfg.start.unix();
        // Healthy except one scripted 5xx window on day two, longer than
        // the agent's TTL so at least one fetch lands inside it.
        let mut model = ServerModel::healthy(
            "site-00.example.edu".into(),
            SitePolicyServer::always(PolicyVersion::Base),
            1,
        );
        model.windows = vec![ConditionWindow {
            start: start + 86_400,
            end: start + 86_400 + 8 * 3600,
            mode: ServeMode::ServerError(503),
        }];
        let transport = VirtualTransport::new(vec![model]);
        let fleet = monitor_fleet(1);
        let hasher = botscope_weblog::iphash::IpHasher::from_seed(cfg.seed);

        let run = DaemonRun {
            cfg: &cfg,
            fleet: &fleet,
            transport: &transport,
            ttl: TtlSource::Config,
            collect_beliefs: true,
        };
        let shard = run_agents(&run, &hasher, 0, 1);
        let s = &shard.stats;
        assert!(s.server_errors > 0, "the scripted 5xx window must be hit: {s:?}");
        // Every success is a revalidation EXCEPT the very first fetch
        // and the first success after the error episode: the cache held
        // DisallowAll through the outage, so recovery must re-parse the
        // body rather than refresh the error-time policy.
        assert_eq!(s.revalidated, s.success - 2, "{s:?}");
        // Recovering to the same body is not a policy change.
        assert!(shard.changes.is_empty());
        // Belief trace: Unfetched → Base → disallow-all through the
        // outage → Base again on recovery. The recovery re-parse is a
        // belief transition even though it is not a policy change.
        let beliefs = &shard.beliefs[0];
        use BelievedPolicy as B;
        let kinds: Vec<B> = beliefs.segments().iter().map(|&(_, p)| p).collect();
        assert_eq!(
            kinds,
            vec![
                B::Unfetched,
                B::Version(PolicyVersion::Base),
                B::DisallowAll,
                B::Version(PolicyVersion::Base)
            ],
            "{beliefs:?}"
        );
        assert_eq!(beliefs.at(start), B::Unfetched);
        assert_eq!(beliefs.at(start + 86_400 + 4 * 3600), B::DisallowAll, "mid-outage");
    }

    #[test]
    fn conditional_requests_save_bytes_on_stable_estates() {
        let cfg = MonitorConfig { scenario: ScenarioKind::Stable, swap_every: 0, ..small_cfg() };
        let out = run(&cfg);
        let s = &out.stats;
        assert!(s.revalidated > 0);
        // Every revalidation on a healthy static estate is a real 304
        // that saved exactly one Base body.
        let base_len =
            botscope_simnet::server::PolicyCorpus::new().text(PolicyVersion::Base).len() as u64;
        assert_eq!(s.revalidated_bytes_saved, s.revalidated * base_len, "{s:?}");
        // The 304s are visible in the fetch log.
        assert!(out.table.iter_records().any(|r| r.status == 304 && r.bytes == 0));
    }

    #[test]
    fn belief_atlas_exported_per_agent() {
        let cfg = MonitorConfig {
            sites: 8,
            days: 20,
            bots: 3,
            swap_every: 2,
            scenario: ScenarioKind::Stable,
            ttl: TtlPolicy::FixedHours(12),
            ..MonitorConfig::default()
        };
        let (out, atlas) = run_with_beliefs(&cfg, 2);
        assert_eq!(atlas.bots, out.bots);
        assert_eq!(atlas.n_sites(), cfg.sites);
        // Before the horizon every agent is Unfetched; after its first
        // fetch a stable non-swap site is believed Base forever.
        let static_site = 1; // swap_every=2 ⇒ odd sites are static
        for bot in 0..atlas.bots.len() {
            let tl = atlas.timeline(bot, static_site);
            assert_eq!(tl.at(cfg.start.unix()), BelievedPolicy::Unfetched);
            assert_eq!(tl.at(out.horizon_end), BelievedPolicy::Version(PolicyVersion::Base));
            assert_eq!(tl.transitions(), 1, "static site: one belief transition, got {tl:?}");
        }
        // Swap sites accumulate version transitions that the 12h TTL
        // cannot miss.
        let swapped: usize =
            (0..atlas.bots.len()).map(|bot| atlas.timeline(bot, 0).transitions()).sum();
        assert!(swapped > atlas.bots.len(), "swap site must show belief churn: {swapped}");
        // The atlas is identical at any worker count.
        let (_, atlas8) = run_with_beliefs(&cfg, 8);
        assert_eq!(atlas, atlas8);
    }

    #[test]
    fn site_windows_expose_deployments() {
        let cfg = MonitorConfig {
            swap_every: 4,
            scenario: ScenarioKind::Stable,
            days: 46,
            ..small_cfg()
        };
        let out = run(&cfg);
        assert_eq!(out.site_windows.len(), cfg.sites);
        for (site, windows) in &out.site_windows {
            let i: usize = site[5..7].parse().unwrap();
            if i.is_multiple_of(4) {
                // The rolling schedule starts within the first week, so
                // at least Base → v1 → v2 fit inside 46 days.
                assert!(windows.len() >= 3, "{site} deploys the experiment: {windows:?}");
            } else {
                assert_eq!(windows.len(), 1, "{site} is static");
                assert_eq!(windows[0].0, PolicyVersion::Base);
            }
            // Windows tile the horizon in order.
            assert_eq!(windows[0].1, 0);
            assert_eq!(windows.last().unwrap().2, out.horizon_end);
            for pair in windows.windows(2) {
                assert_eq!(pair[0].2, pair[1].1, "contiguous: {windows:?}");
            }
        }
    }

    #[test]
    fn streaming_bytes_match_materialized_table() {
        use botscope_weblog::codec::encode_table;
        use botscope_weblog::sink::{CountingSink, CsvSink};

        let cfg = MonitorConfig { sites: 20, days: 10, bots: 4, ..MonitorConfig::default() };
        let materialized = run_with_threads(&cfg, 2);
        let expected = encode_table(&materialized.table);
        for threads in [1, 2, 8] {
            let mut csv = CsvSink::new(Vec::new()).unwrap();
            let mut count = CountingSink::default();
            let summary = {
                let mut sinks: [&mut dyn botscope_weblog::sink::RowSink; 2] =
                    [&mut csv, &mut count];
                run_streaming(&cfg, threads, &mut sinks).unwrap()
            };
            assert_eq!(
                String::from_utf8(csv.into_inner()).unwrap(),
                expected,
                "streamed CSV differs at {threads} workers"
            );
            assert_eq!(summary.rows, materialized.table.len() as u64);
            assert_eq!(count.rows, summary.rows);
            assert_eq!(summary.stats, materialized.stats);
            assert_eq!(summary.changes, materialized.changes);
            assert_eq!(summary.site_windows, materialized.site_windows);
        }
    }

    #[test]
    fn ttl_policy_parsing() {
        assert_eq!(TtlPolicy::parse("spectrum"), Some(TtlPolicy::Spectrum));
        assert_eq!(TtlPolicy::parse("24"), Some(TtlPolicy::FixedHours(24)));
        assert_eq!(TtlPolicy::parse("0"), None);
        assert_eq!(TtlPolicy::parse("sometimes"), None);
    }

    #[test]
    fn spectrum_includes_never_checkers() {
        let cfg = MonitorConfig {
            sites: 64,
            days: 30,
            bots: 4,
            scenario: ScenarioKind::Stable,
            swap_every: 0,
            ..MonitorConfig::default()
        };
        let out = run(&cfg);
        // Never-TTL agents fetch exactly once; with 256 agents and a 20 %
        // never share, total fetches must sit far below the daily-cadence
        // bound but above one-per-agent.
        assert!(out.stats.fetches > out.stats.agents);
        let checks = out.table.robots_checks_by_useragent();
        assert!(!checks.is_empty());
    }
}

//! The deterministic virtual transport: HTTP-for-robots.txt, in process.
//!
//! No real network exists in the build image, and none is needed: the
//! only requests the monitoring daemon makes are `GET /robots.txt`, and
//! what matters for RFC 9309 semantics is the *status timeline* a site
//! exposes — 2xx bodies (with mid-study policy swaps), 3xx redirect
//! chains, 4xx/5xx windows, flapping, outages, and transport failures.
//! [`ServerModel`] scripts that timeline per site; [`VirtualTransport`]
//! owns the estate plus the shared [`PolicyCorpus`] of the four policy
//! bodies.
//!
//! **Determinism.** A response is a *pure function* of
//! `(model, now, salt)`: scripted windows decide the serve mode, and the
//! per-request randomness (seeded latency, transient connection
//! failures) comes from hashing `(site seed, now, salt)` rather than
//! from mutable RNG state. Agents can therefore fetch in any order — or
//! from any number of worker threads — and observe byte-identical
//! responses for a fixed master seed.

use botscope_robotstxt::fetch::{resolve_redirects, RawResponse, ResolvedFetch, MAX_REDIRECT_HOPS};
use botscope_simnet::belief::{BeliefTimeline, BelievedPolicy};
use botscope_simnet::server::{PolicyCorpus, SitePolicyServer};
use botscope_simnet::PolicyVersion;

/// How a site serves `/robots.txt` during a scripted window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeMode {
    /// Healthy service: `200` with the live policy body.
    Ok,
    /// Bodyless client error (`404`, `410`, …): the file is gone.
    ClientError(u16),
    /// Server error (`500`, `503`, …): the host is unhealthy.
    ServerError(u16),
    /// Connection-level outage: requests never produce a status.
    Unreachable,
    /// Healthy body served behind a redirect chain of this many hops —
    /// chains longer than RFC 9309's five-hop budget are deliberately
    /// constructible.
    Redirect(u8),
    /// Flapping: alternate `Ok` / `ServerError(503)` half-periods of
    /// this many seconds, anchored at the window start.
    Flapping(u32),
}

/// One scripted condition: `[start, end)` in unix seconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConditionWindow {
    /// First affected instant.
    pub start: u64,
    /// First instant back to normal.
    pub end: u64,
    /// What the window serves.
    pub mode: ServeMode,
}

/// Mean/jitter of the seeded per-request latency, in milliseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencyModel {
    /// Fixed floor every request pays.
    pub base_ms: u32,
    /// Uniform jitter added on top (0..=jitter_ms).
    pub jitter_ms: u32,
}

/// One site's scripted robots.txt server.
#[derive(Debug, Clone)]
pub struct ServerModel {
    /// Site hostname (`site-NN.example.edu`).
    pub name: String,
    /// Which policy body is live when (the simnet adapter).
    pub policy: SitePolicyServer,
    /// Scripted condition windows, non-overlapping, time-ascending.
    /// Instants outside every window serve [`ServeMode::Ok`].
    pub windows: Vec<ConditionWindow>,
    /// Derived per-site seed for request-level hashing.
    pub seed: u64,
    /// Seeded latency distribution.
    pub latency: LatencyModel,
    /// Probability of a transient connection failure on any request,
    /// in units of 1/65536 (0 disables).
    pub transient_fail_2e16: u32,
}

/// Cache validators of a served robots.txt body (`ETag` /
/// `Last-Modified`). A crawler stores them with the parsed policy and
/// replays them as `If-None-Match` / `If-Modified-Since` on the next
/// re-check; a healthy server answers `304 Not Modified` when the body
/// is unchanged, saving the transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Validators {
    /// Opaque strong entity tag of the body.
    pub etag: u64,
    /// Unix second the currently served body went live.
    pub last_modified: u64,
}

/// The `ETag` a server advertises for a policy version's body (all
/// sites serve the shared corpus, so the tag is body-global).
pub fn etag_of(version: PolicyVersion) -> u64 {
    request_hash(0xE7A6_0000_0000_0000, version.index() as u64, 0x304)
}

/// A resolved virtual fetch.
#[derive(Debug, Clone, PartialEq)]
pub struct VirtualFetch {
    /// The redirect-resolved outcome (RFC 9309 provenance included).
    pub resolved: ResolvedFetch,
    /// The policy version whose body was served (on success) or
    /// revalidated (on 304).
    pub version: Option<PolicyVersion>,
    /// Bytes of body served (0 for error outcomes and 304s).
    pub bytes: u64,
    /// Body bytes the exchange did *not* transfer because a conditional
    /// request was answered `304 Not Modified`.
    pub saved_bytes: u64,
    /// Validators of the served body, for the crawler's next
    /// conditional request (present on 2xx and 304).
    pub validators: Option<Validators>,
    /// Seeded latency of the whole exchange, milliseconds.
    pub latency_ms: u32,
}

/// splitmix-style avalanche over the request coordinates.
fn request_hash(seed: u64, now: u64, salt: u64) -> u64 {
    let mut z = seed ^ now.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ salt.rotate_left(32);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl ServerModel {
    /// A permanently healthy model with default latency.
    pub fn healthy(name: String, policy: SitePolicyServer, seed: u64) -> ServerModel {
        ServerModel {
            name,
            policy,
            windows: Vec::new(),
            seed,
            latency: LatencyModel { base_ms: 20, jitter_ms: 60 },
            transient_fail_2e16: 0,
        }
    }

    /// The serve mode scripted for `now` (flapping resolved to its
    /// up/down half-period).
    pub fn mode_at(&self, now: u64) -> ServeMode {
        let idx = self.windows.partition_point(|w| w.end <= now);
        match self.windows.get(idx) {
            Some(w) if w.start <= now => match w.mode {
                ServeMode::Flapping(period) => {
                    let period = period.max(1) as u64;
                    if ((now - w.start) / period).is_multiple_of(2) {
                        ServeMode::ServerError(503)
                    } else {
                        ServeMode::Ok
                    }
                }
                mode => mode,
            },
            _ => ServeMode::Ok,
        }
    }

    /// The healthy 200 response at `now`.
    fn healthy_response(&self, corpus: &PolicyCorpus, now: u64) -> (RawResponse, PolicyVersion) {
        let version = self.policy.version_at(now);
        (RawResponse::Body(200, corpus.text(version).to_string()), version)
    }

    /// The validators of the body live at `now`.
    fn validators_at(&self, now: u64) -> Validators {
        Validators {
            etag: etag_of(self.policy.version_at(now)),
            last_modified: self.policy.live_since(now),
        }
    }

    /// Fetch `/robots.txt` at `now`. `salt` individualizes concurrent
    /// requesters (the daemon passes the global agent index); the reply
    /// is a pure function of `(self, now, salt)`.
    pub fn fetch(&self, corpus: &PolicyCorpus, now: u64, salt: u64) -> VirtualFetch {
        self.fetch_conditional(corpus, now, salt, None)
    }

    /// [`ServerModel::fetch`] with optional cache validators
    /// (`If-None-Match` / `If-Modified-Since`). A healthy server whose
    /// live body still matches the presented `ETag` answers
    /// `304 Not Modified` and transfers nothing; the saved body size is
    /// reported in [`VirtualFetch::saved_bytes`]. Validators travel to
    /// the *final* hop of a redirect chain (the chain target owns the
    /// body), so CDN-fronted estates revalidate too — unless the chain
    /// exceeds the five-hop budget, in which case the body is never
    /// reached. Error windows ignore validators entirely.
    pub fn fetch_conditional(
        &self,
        corpus: &PolicyCorpus,
        now: u64,
        salt: u64,
        conditional: Option<Validators>,
    ) -> VirtualFetch {
        let h = request_hash(self.seed, now, salt);
        let latency_ms = self.latency.base_ms
            + if self.latency.jitter_ms == 0 {
                0
            } else {
                ((h >> 16) % (self.latency.jitter_ms as u64 + 1)) as u32
            };

        // Transient connection failure, independent of scripted windows.
        if self.transient_fail_2e16 > 0 && (h & 0xFFFF) < self.transient_fail_2e16 as u64 {
            let resolved = resolve_redirects(RawResponse::Failed, |_| unreachable!());
            return VirtualFetch {
                resolved,
                version: None,
                bytes: 0,
                saved_bytes: 0,
                validators: None,
                latency_ms,
            };
        }

        let mut version = None;
        let initial = match self.mode_at(now) {
            ServeMode::Ok => {
                let served = self.validators_at(now);
                if conditional.is_some_and(|v| v.etag == served.etag) {
                    let v = self.policy.version_at(now);
                    let resolved = resolve_redirects(RawResponse::NotModified, |_| unreachable!());
                    return VirtualFetch {
                        resolved,
                        version: Some(v),
                        bytes: 0,
                        saved_bytes: corpus.text(v).len() as u64,
                        validators: Some(served),
                        latency_ms,
                    };
                }
                let (response, v) = self.healthy_response(corpus, now);
                version = Some(v);
                response
            }
            ServeMode::ClientError(code) => RawResponse::Status(code),
            ServeMode::ServerError(code) => RawResponse::Status(code),
            ServeMode::Unreachable => RawResponse::Failed,
            ServeMode::Flapping(_) => unreachable!("mode_at resolves flapping"),
            ServeMode::Redirect(hops) => {
                // Serve the body behind `hops` consecutive redirects; the
                // resolver enforces the five-hop budget, so chains of 6+
                // come back "unavailable" and `version` stays None. The
                // final hop — and only it — consults the presented
                // validators, exactly as the healthy branch does: an
                // unchanged body behind a 3xx chain is a 304 with the
                // transfer elided.
                let served = self.validators_at(now);
                let revalidate = conditional.is_some_and(|v| v.etag == served.etag);
                let mut followed = 1u8;
                let mut saved_bytes = 0u64;
                let resolved =
                    resolve_redirects(RawResponse::Redirect(301, "/hop-1".into()), |_target| {
                        if followed < hops {
                            followed += 1;
                            RawResponse::Redirect(301, format!("/hop-{followed}"))
                        } else if revalidate {
                            let v = self.policy.version_at(now);
                            version = Some(v);
                            saved_bytes = corpus.text(v).len() as u64;
                            RawResponse::NotModified
                        } else {
                            let (response, v) = self.healthy_response(corpus, now);
                            version = Some(v);
                            response
                        }
                    });
                if resolved.capped {
                    version = None;
                    saved_bytes = 0;
                }
                let bytes = match &resolved.outcome {
                    botscope_robotstxt::FetchOutcome::Success(body) => body.len() as u64,
                    _ => 0,
                };
                // Each hop pays the latency floor again.
                let latency_ms =
                    latency_ms.saturating_add(self.latency.base_ms * resolved.hops as u32);
                return VirtualFetch {
                    resolved,
                    version,
                    bytes,
                    saved_bytes,
                    validators: version.map(|_| self.validators_at(now)),
                    latency_ms,
                };
            }
        };
        let resolved = resolve_redirects(initial, |_| unreachable!("no redirects scripted"));
        let bytes = match &resolved.outcome {
            botscope_robotstxt::FetchOutcome::Success(body) => body.len() as u64,
            _ => 0,
        };
        if !matches!(resolved.outcome, botscope_robotstxt::FetchOutcome::Success(_)) {
            version = None;
        }
        VirtualFetch {
            resolved,
            version,
            bytes,
            saved_bytes: 0,
            validators: version.map(|_| self.validators_at(now)),
            latency_ms,
        }
    }

    /// The stepwise policy this server *effectively* serves over
    /// `[start, end)` — ground truth for belief-vs-served scoring.
    /// Scripted weather is resolved to its RFC 9309 obligation: healthy
    /// service (and redirect chains within the five-hop budget) yield
    /// the live [`PolicyVersion`]; 4xx windows and over-budget chains
    /// yield allow-all; 5xx, blackout and flapping-down half-periods
    /// yield disallow-all. Request-level transient failures are noise,
    /// not server state, and are excluded.
    pub fn effective_timeline(&self, start: u64, end: u64) -> BeliefTimeline {
        let mut tl = BeliefTimeline::new();
        let serve_ok = |tl: &mut BeliefTimeline, from: u64, to: u64| {
            tl.record(from, BelievedPolicy::Version(self.policy.version_at(from)));
            for &(at, v) in self.policy.segments() {
                if at > from && at < to {
                    tl.record(at, BelievedPolicy::Version(v));
                }
            }
        };
        let mut cursor = start;
        for w in &self.windows {
            let ws = w.start.clamp(start, end);
            let we = w.end.clamp(start, end);
            if ws >= we {
                continue;
            }
            if cursor < ws {
                serve_ok(&mut tl, cursor, ws);
            }
            match w.mode {
                ServeMode::Ok => serve_ok(&mut tl, ws, we),
                ServeMode::ClientError(_) => tl.record(ws, BelievedPolicy::AllowAll),
                ServeMode::ServerError(_) | ServeMode::Unreachable => {
                    tl.record(ws, BelievedPolicy::DisallowAll);
                }
                ServeMode::Redirect(hops) if (hops as usize) <= MAX_REDIRECT_HOPS => {
                    serve_ok(&mut tl, ws, we);
                }
                ServeMode::Redirect(_) => tl.record(ws, BelievedPolicy::AllowAll),
                ServeMode::Flapping(period) => {
                    // Half-periods are anchored at the window's scripted
                    // start, which may precede the clip point.
                    let period = period.max(1) as u64;
                    let mut t = ws;
                    while t < we {
                        let k = (t - w.start) / period;
                        let next = (w.start + (k + 1) * period).min(we);
                        if k.is_multiple_of(2) {
                            tl.record(t, BelievedPolicy::DisallowAll);
                        } else {
                            serve_ok(&mut tl, t, next);
                        }
                        t = next;
                    }
                }
            }
            cursor = cursor.max(we);
        }
        if cursor < end {
            serve_ok(&mut tl, cursor, end);
        }
        tl
    }
}

/// The whole estate's transport: per-site models plus the shared corpus.
#[derive(Debug, Clone)]
pub struct VirtualTransport {
    corpus: PolicyCorpus,
    models: Vec<ServerModel>,
}

impl VirtualTransport {
    /// Assemble a transport over `models`.
    pub fn new(models: Vec<ServerModel>) -> VirtualTransport {
        VirtualTransport { corpus: PolicyCorpus::new(), models }
    }

    /// Number of sites.
    pub fn len(&self) -> usize {
        self.models.len()
    }

    /// Whether the estate is empty.
    pub fn is_empty(&self) -> bool {
        self.models.is_empty()
    }

    /// The model of `site`.
    pub fn model(&self, site: usize) -> &ServerModel {
        &self.models[site]
    }

    /// The shared policy corpus.
    pub fn corpus(&self) -> &PolicyCorpus {
        &self.corpus
    }

    /// Fetch `site`'s robots.txt at `now` on behalf of requester `salt`.
    pub fn fetch(&self, site: usize, now: u64, salt: u64) -> VirtualFetch {
        self.models[site].fetch(&self.corpus, now, salt)
    }

    /// [`VirtualTransport::fetch`] with cache validators.
    pub fn fetch_conditional(
        &self,
        site: usize,
        now: u64,
        salt: u64,
        conditional: Option<Validators>,
    ) -> VirtualFetch {
        self.models[site].fetch_conditional(&self.corpus, now, salt, conditional)
    }

    /// Per-site effective served-policy timelines over `[start, end)` —
    /// the estate's ground truth (see
    /// [`ServerModel::effective_timeline`]).
    pub fn effective_timelines(&self, start: u64, end: u64) -> Vec<BeliefTimeline> {
        self.models.iter().map(|m| m.effective_timeline(start, end)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use botscope_robotstxt::FetchOutcome;
    use botscope_simnet::phases::PhaseSchedule;
    use botscope_weblog::time::Timestamp;

    fn corpus() -> PolicyCorpus {
        PolicyCorpus::new()
    }

    fn healthy_model() -> ServerModel {
        ServerModel::healthy(
            "site-00.example.edu".into(),
            SitePolicyServer::always(PolicyVersion::Base),
            42,
        )
    }

    #[test]
    fn fetch_is_pure() {
        let m = healthy_model();
        let c = corpus();
        let a = m.fetch(&c, 1_000, 7);
        let b = m.fetch(&c, 1_000, 7);
        assert_eq!(a, b);
    }

    #[test]
    fn healthy_fetch_serves_live_policy() {
        let start = Timestamp::from_date(2025, 1, 15);
        let schedule = PhaseSchedule::paper_schedule(start, 0);
        let mut m = healthy_model();
        m.policy = SitePolicyServer::from_schedule(&schedule, 0);
        let c = corpus();
        let in_v3 = start.plus_secs(50 * 86_400).unix();
        let f = m.fetch(&c, in_v3, 0);
        assert_eq!(f.version, Some(PolicyVersion::V3DisallowAll));
        assert_eq!(f.resolved.status, 200);
        match &f.resolved.outcome {
            FetchOutcome::Success(body) => {
                assert_eq!(body.as_str(), c.text(PolicyVersion::V3DisallowAll));
                assert_eq!(f.bytes, body.len() as u64);
            }
            other => panic!("expected success, got {other:?}"),
        }
    }

    #[test]
    fn windows_script_the_status_timeline() {
        let mut m = healthy_model();
        m.windows = vec![
            ConditionWindow { start: 100, end: 200, mode: ServeMode::ServerError(503) },
            ConditionWindow { start: 300, end: 400, mode: ServeMode::ClientError(404) },
            ConditionWindow { start: 500, end: 600, mode: ServeMode::Unreachable },
        ];
        let c = corpus();
        assert_eq!(m.fetch(&c, 50, 0).resolved.status, 200);
        assert_eq!(m.fetch(&c, 150, 0).resolved.outcome, FetchOutcome::ServerError(503));
        assert_eq!(m.fetch(&c, 199, 0).resolved.status, 503);
        assert_eq!(m.fetch(&c, 200, 0).resolved.status, 200, "window end is exclusive");
        assert_eq!(m.fetch(&c, 350, 0).resolved.outcome, FetchOutcome::ClientError(404));
        assert_eq!(m.fetch(&c, 550, 0).resolved.outcome, FetchOutcome::NetworkError);
        assert_eq!(m.fetch(&c, 700, 0).resolved.status, 200);
    }

    #[test]
    fn flapping_alternates_half_periods() {
        let mut m = healthy_model();
        m.windows = vec![ConditionWindow { start: 0, end: 10_000, mode: ServeMode::Flapping(100) }];
        let c = corpus();
        // [0,100) down, [100,200) up, [200,300) down ...
        assert_eq!(m.fetch(&c, 50, 0).resolved.status, 503);
        assert_eq!(m.fetch(&c, 150, 0).resolved.status, 200);
        assert_eq!(m.fetch(&c, 250, 0).resolved.status, 503);
    }

    #[test]
    fn redirect_chains_respect_the_hop_budget() {
        let c = corpus();
        for hops in 1..=5u8 {
            let mut m = healthy_model();
            m.windows =
                vec![ConditionWindow { start: 0, end: u64::MAX, mode: ServeMode::Redirect(hops) }];
            let f = m.fetch(&c, 1_000, 0);
            assert_eq!(f.resolved.hops, hops as usize);
            assert!(!f.resolved.capped);
            assert_eq!(f.version, Some(PolicyVersion::Base));
        }
        let mut m = healthy_model();
        m.windows = vec![ConditionWindow { start: 0, end: u64::MAX, mode: ServeMode::Redirect(6) }];
        let f = m.fetch(&c, 1_000, 0);
        assert!(f.resolved.capped);
        assert_eq!(f.resolved.hops, 5);
        assert_eq!(f.version, None, "capped chain never reaches the body");
        assert!(matches!(f.resolved.outcome, FetchOutcome::ClientError(301)));
    }

    #[test]
    fn transient_failures_are_seeded_and_deterministic() {
        let mut m = healthy_model();
        m.transient_fail_2e16 = 6_554; // ≈ 10 %
        let c = corpus();
        let mut failures = 0;
        for now in 0..2_000u64 {
            let a = m.fetch(&c, now, 3);
            let b = m.fetch(&c, now, 3);
            assert_eq!(a, b);
            if a.resolved.outcome == FetchOutcome::NetworkError {
                failures += 1;
            }
        }
        // ≈ 200 expected; accept a generous band.
        assert!((100..400).contains(&failures), "transient failures: {failures}");
    }

    #[test]
    fn latency_is_seeded_within_bounds() {
        let m = healthy_model();
        let c = corpus();
        let mut distinct = std::collections::BTreeSet::new();
        for now in 0..200u64 {
            let f = m.fetch(&c, now, 0);
            assert!(f.latency_ms >= m.latency.base_ms);
            assert!(f.latency_ms <= m.latency.base_ms + m.latency.jitter_ms);
            distinct.insert(f.latency_ms);
        }
        assert!(distinct.len() > 10, "latency should actually vary: {distinct:?}");
    }

    #[test]
    fn conditional_fetch_revalidates_unchanged_body() {
        let m = healthy_model();
        let c = corpus();
        let first = m.fetch(&c, 1_000, 7);
        let validators = first.validators.expect("2xx carries validators");
        assert_eq!(validators.etag, etag_of(PolicyVersion::Base));
        assert_eq!(validators.last_modified, 0);
        assert!(first.bytes > 0);

        let second = m.fetch_conditional(&c, 2_000, 7, Some(validators));
        assert_eq!(second.resolved.status, 304);
        assert_eq!(second.resolved.outcome, FetchOutcome::NotModified);
        assert_eq!(second.version, Some(PolicyVersion::Base));
        assert_eq!(second.bytes, 0);
        assert_eq!(second.saved_bytes, first.bytes, "the 304 saved the whole body");
        assert_eq!(second.validators, Some(validators));
    }

    #[test]
    fn conditional_fetch_serves_full_body_after_swap() {
        let start = Timestamp::from_date(2025, 1, 15);
        let schedule = PhaseSchedule::paper_schedule(start, 0);
        let mut m = healthy_model();
        m.policy = SitePolicyServer::from_schedule(&schedule, 0);
        let c = corpus();
        let in_base = start.plus_secs(3 * 86_400).unix();
        let in_v1 = start.plus_secs(15 * 86_400).unix();
        let validators = m.fetch(&c, in_base, 0).validators.unwrap();
        let after_swap = m.fetch_conditional(&c, in_v1, 0, Some(validators));
        assert_eq!(after_swap.resolved.status, 200, "stale ETag must miss");
        assert_eq!(after_swap.version, Some(PolicyVersion::V1CrawlDelay));
        assert!(after_swap.bytes > 0);
        assert_eq!(after_swap.saved_bytes, 0);
        let fresh = after_swap.validators.unwrap();
        assert_eq!(fresh.etag, etag_of(PolicyVersion::V1CrawlDelay));
        assert_eq!(fresh.last_modified, start.plus_secs(14 * 86_400).unix());
    }

    #[test]
    fn conditional_fetch_revalidates_behind_redirect_chain() {
        // An unchanged body served from behind a 3-hop chain: the final
        // hop answers 304, the transfer is elided, and the whole chain
        // is still walked (hops counted, per-hop latency paid).
        let mut m = healthy_model();
        m.windows = vec![ConditionWindow { start: 0, end: u64::MAX, mode: ServeMode::Redirect(3) }];
        let c = corpus();
        let first = m.fetch(&c, 1_000, 7);
        assert_eq!(first.resolved.status, 200);
        assert_eq!(first.resolved.hops, 3);
        let validators = first.validators.expect("2xx behind a chain carries validators");

        let second = m.fetch_conditional(&c, 2_000, 7, Some(validators));
        assert_eq!(second.resolved.status, 304);
        assert_eq!(second.resolved.outcome, FetchOutcome::NotModified);
        assert_eq!(second.resolved.hops, 3, "the 304 sits behind the same chain");
        assert_eq!(second.version, Some(PolicyVersion::Base));
        assert_eq!(second.bytes, 0);
        assert_eq!(second.saved_bytes, first.bytes, "the 304 saved the whole body");
        assert_eq!(second.validators, Some(validators));
        assert!(second.latency_ms >= m.latency.base_ms * 4, "per-hop latency still paid");

        // A stale ETag behind the same chain misses: full body again.
        let stale = Validators { etag: etag_of(PolicyVersion::V3DisallowAll), last_modified: 0 };
        let miss = m.fetch_conditional(&c, 3_000, 7, Some(stale));
        assert_eq!(miss.resolved.status, 200);
        assert_eq!(miss.bytes, first.bytes);
        assert_eq!(miss.saved_bytes, 0);
    }

    #[test]
    fn over_budget_chains_never_revalidate() {
        let mut m = healthy_model();
        m.windows = vec![ConditionWindow { start: 0, end: u64::MAX, mode: ServeMode::Redirect(6) }];
        let c = corpus();
        let validators = Validators { etag: etag_of(PolicyVersion::Base), last_modified: 0 };
        let f = m.fetch_conditional(&c, 1_000, 0, Some(validators));
        assert!(f.resolved.capped);
        assert_eq!(f.version, None, "capped chain never reaches the body");
        assert_eq!(f.saved_bytes, 0);
        assert_eq!(f.validators, None);
    }

    #[test]
    fn error_windows_ignore_validators() {
        let mut m = healthy_model();
        m.windows =
            vec![ConditionWindow { start: 0, end: 1_000, mode: ServeMode::ServerError(503) }];
        let c = corpus();
        let validators = Validators { etag: etag_of(PolicyVersion::Base), last_modified: 0 };
        let f = m.fetch_conditional(&c, 500, 0, Some(validators));
        assert_eq!(f.resolved.outcome, FetchOutcome::ServerError(503));
        assert_eq!(f.validators, None);
        assert_eq!(f.saved_bytes, 0);
    }

    #[test]
    fn effective_timeline_resolves_weather() {
        let mut m = healthy_model();
        m.windows = vec![
            ConditionWindow { start: 100, end: 200, mode: ServeMode::ServerError(503) },
            ConditionWindow { start: 300, end: 400, mode: ServeMode::ClientError(404) },
            ConditionWindow { start: 500, end: 600, mode: ServeMode::Redirect(7) },
            ConditionWindow { start: 700, end: 800, mode: ServeMode::Redirect(3) },
        ];
        let tl = m.effective_timeline(0, 1_000);
        use BelievedPolicy as B;
        assert_eq!(tl.at(50), B::Version(PolicyVersion::Base));
        assert_eq!(tl.at(150), B::DisallowAll);
        assert_eq!(tl.at(250), B::Version(PolicyVersion::Base));
        assert_eq!(tl.at(350), B::AllowAll, "404 window is allow-all");
        assert_eq!(tl.at(550), B::AllowAll, "over-budget chain is unavailable");
        assert_eq!(tl.at(750), B::Version(PolicyVersion::Base), "3-hop chain still resolves");
        assert_eq!(tl.at(900), B::Version(PolicyVersion::Base));
    }

    #[test]
    fn effective_timeline_tracks_policy_swaps_and_flapping() {
        let start = Timestamp::from_date(2025, 1, 15);
        let schedule = PhaseSchedule::paper_schedule(start, 0);
        let mut m = healthy_model();
        m.policy = SitePolicyServer::from_schedule(&schedule, 0);
        let s = start.unix();
        m.windows =
            vec![ConditionWindow { start: s + 100, end: s + 500, mode: ServeMode::Flapping(100) }];
        let tl = m.effective_timeline(s, s + 60 * 86_400);
        use BelievedPolicy as B;
        // Flapping: [s+100, s+200) down, [s+200, s+300) up, ...
        assert_eq!(tl.at(s + 150), B::DisallowAll);
        assert_eq!(tl.at(s + 250), B::Version(PolicyVersion::Base));
        assert_eq!(tl.at(s + 350), B::DisallowAll);
        // Swaps mirror the schedule.
        let in_v3 = start.plus_secs(50 * 86_400).unix();
        assert_eq!(tl.at(in_v3), B::Version(PolicyVersion::V3DisallowAll));
        let after = start.plus_secs(57 * 86_400).unix();
        assert_eq!(tl.at(after), B::Version(PolicyVersion::Base), "restore after the window");
    }

    #[test]
    fn transport_estate_dispatch() {
        let models = (0..3)
            .map(|i| {
                ServerModel::healthy(
                    format!("site-{i:02}.example.edu"),
                    SitePolicyServer::always(PolicyVersion::Base),
                    i as u64,
                )
            })
            .collect();
        let t = VirtualTransport::new(models);
        assert_eq!(t.len(), 3);
        assert!(!t.is_empty());
        assert_eq!(t.model(1).name, "site-01.example.edu");
        let f = t.fetch(2, 500, 9);
        assert_eq!(f.resolved.status, 200);
    }
}

//! Shared machine-readable bench schema.
//!
//! The vendored criterion shim and the `perf_check`-style examples
//! both emit `BENCH_*.json` trajectories. This module is the single
//! definition of that line format (schema v2): every entry carries
//! `schema_version`, the host's logical core count, and a
//! `manifest_digest` — an FNV-1a 64 mini-manifest over the labels,
//! core count, and the `BOTSCOPE_SEED`/`BOTSCOPE_SCALE`/
//! `BOTSCOPE_THREADS` environment so a results file self-describes
//! which run family produced it.
//!
//! The vendored criterion crate re-implements [`fnv1a64`] and the
//! line format locally (it stays dependency-free); the unit tests
//! over there pin byte-equality against this module's renderer.

use std::fmt::Write as _;

/// Current BENCH line schema version.
pub const BENCH_SCHEMA_VERSION: u32 = 2;

/// One benchmark result line.
#[derive(Debug, Clone)]
pub struct BenchLine {
    /// Human label (`crate/bench_name`).
    pub label: String,
    /// Mean wall time per iteration, nanoseconds.
    pub mean_ns: f64,
    /// Iterations measured.
    pub iters: u64,
    /// Items processed per iteration (rows, checks, ...).
    pub throughput_per_iter: f64,
}

/// Host logical core count (1 when undetectable).
pub fn host_cores() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// FNV-1a 64-bit over `data`.
pub fn fnv1a64(data: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in data {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The mini-manifest digest for a results file: `fnv64:<16 hex>` over
/// the sorted labels plus host core count plus the botscope run-shape
/// environment. Pure function of its inputs — keep in lockstep with
/// the vendored criterion's copy.
pub fn mini_manifest_digest(labels: &[String], host_cores: usize) -> String {
    let mut sorted: Vec<&str> = labels.iter().map(String::as_str).collect();
    sorted.sort_unstable();
    let mut blob = sorted.join("\n");
    let env = |k: &str| std::env::var(k).unwrap_or_else(|_| "-".to_string());
    let _ = write!(
        blob,
        "\n|cores={host_cores}|seed={}|scale={}|threads={}",
        env("BOTSCOPE_SEED"),
        env("BOTSCOPE_SCALE"),
        env("BOTSCOPE_THREADS")
    );
    format!("fnv64:{:016x}", fnv1a64(blob.as_bytes()))
}

/// Render one schema-v2 line (two-space indent, no trailing newline) —
/// the shared shape for criterion and example emitters.
pub fn render_line(line: &BenchLine, host_cores: usize, manifest_digest: &str) -> String {
    format!(
        "  {{\"schema_version\": {BENCH_SCHEMA_VERSION}, \"label\": \"{}\", \"mean_ns\": {:.1}, \"iters\": {}, \"throughput_per_iter\": {:.1}, \"host_cores\": {host_cores}, \"manifest_digest\": \"{manifest_digest}\"}}",
        crate::json_escape(&line.label),
        line.mean_ns,
        line.iters,
        line.throughput_per_iter,
    )
}

/// Render a full `BENCH_*.json` document from `lines` (JSON array,
/// one entry per line, trailing newline).
pub fn render_bench_json(lines: &[BenchLine]) -> String {
    let cores = host_cores();
    let labels: Vec<String> = lines.iter().map(|l| l.label.clone()).collect();
    let digest = mini_manifest_digest(&labels, cores);
    let body: Vec<String> = lines.iter().map(|l| render_line(l, cores, &digest)).collect();
    format!("[\n{}\n]\n", body.join(",\n"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_vectors() {
        // Classic FNV-1a test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn digest_is_label_order_insensitive() {
        let a = mini_manifest_digest(&["x".into(), "y".into()], 4);
        let b = mini_manifest_digest(&["y".into(), "x".into()], 4);
        assert_eq!(a, b);
        let c = mini_manifest_digest(&["y".into(), "x".into()], 8);
        assert_ne!(a, c, "core count is part of the digest");
        assert!(a.starts_with("fnv64:"));
        assert_eq!(a.len(), "fnv64:".len() + 16);
    }

    #[test]
    fn render_shapes_valid_schema_v2() {
        let line = BenchLine {
            label: "obs/counter_disabled".into(),
            mean_ns: 1.234,
            iters: 1_000_000,
            throughput_per_iter: 1.0,
        };
        let doc = render_bench_json(std::slice::from_ref(&line));
        assert!(doc.starts_with("[\n  {\"schema_version\": 2, "), "{doc}");
        assert!(doc.contains("\"label\": \"obs/counter_disabled\""));
        assert!(doc.contains("\"mean_ns\": 1.2, "));
        assert!(doc.contains("\"host_cores\": "));
        assert!(doc.contains("\"manifest_digest\": \"fnv64:"));
        assert!(doc.ends_with("}\n]\n"));
    }
}

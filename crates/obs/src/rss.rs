//! Resident-set-size self-sampling from `/proc/self/status`.
//!
//! Linux-only by nature; on other platforms (or sandboxes without
//! procfs) the samplers return `None` and the manifest reports zero.

use std::fs;

/// A point-in-time memory sample, in kilobytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MemSample {
    /// Current resident set size (`VmRSS`).
    pub rss_kb: u64,
    /// Peak resident set size (`VmHWM`, the high-water mark).
    pub peak_rss_kb: u64,
}

/// Sample the current process; `None` when procfs is unavailable.
pub fn sample_self() -> Option<MemSample> {
    parse_status(&fs::read_to_string("/proc/self/status").ok()?)
}

fn parse_status(status: &str) -> Option<MemSample> {
    let mut rss_kb = None;
    let mut peak_rss_kb = None;
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmRSS:") {
            rss_kb = parse_kb(rest);
        } else if let Some(rest) = line.strip_prefix("VmHWM:") {
            peak_rss_kb = parse_kb(rest);
        }
        if rss_kb.is_some() && peak_rss_kb.is_some() {
            break;
        }
    }
    Some(MemSample { rss_kb: rss_kb?, peak_rss_kb: peak_rss_kb? })
}

fn parse_kb(rest: &str) -> Option<u64> {
    // "	  123456 kB"
    rest.split_whitespace().next()?.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_proc_status_excerpt() {
        let status = "Name:\tbotscope\nVmPeak:\t  200000 kB\nVmHWM:\t  150000 kB\nVmRSS:\t  120000 kB\nThreads:\t8\n";
        assert_eq!(parse_status(status), Some(MemSample { rss_kb: 120_000, peak_rss_kb: 150_000 }));
    }

    #[test]
    fn missing_fields_yield_none() {
        assert_eq!(parse_status("Name:\tx\n"), None);
    }

    #[test]
    fn live_sample_on_linux() {
        if let Some(s) = sample_self() {
            assert!(s.rss_kb > 0, "a running process has resident pages");
            assert!(s.peak_rss_kb >= s.rss_kb);
        }
    }
}

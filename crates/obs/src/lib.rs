//! # botscope-obs
//!
//! Flight-recorder telemetry for the botscope pipeline: atomic
//! counters/gauges and fixed-bucket histograms behind a cheap
//! [`Registry`] handle, lightweight [`Span`]s carrying both monotonic
//! *wall* timings and *event-time* (virtual-clock) ranges, RSS
//! self-sampling from `/proc/self/status`, and three exporters —
//! Prometheus-style text exposition ([`Registry::render_prometheus`]),
//! a JSONL trace sink ([`Registry::set_trace`]), and a per-run
//! [`manifest::RunManifest`] JSON.
//!
//! ## Contract
//!
//! Instrumentation must never perturb output. Every layer that feeds
//! deterministic artifacts (generated logs, monitor tables, reports)
//! records telemetry *about* the run — it never changes scheduling,
//! ordering, or bytes. The disabled path is a near-no-op: counter
//! increments are single relaxed atomic adds, and spans check
//! [`Registry::enabled`] before touching the clock or the trace sink.
//! Instrumented runs are therefore byte-identical to uninstrumented
//! ones at any `BOTSCOPE_THREADS` (CI compares them).
//!
//! Hot loops should not increment shared counters per row; they
//! accumulate locally and [`Counter::add`] the aggregate once — the
//! counters here make the *handles* cheap, not the cache traffic free.
//!
//! ```
//! let reg = botscope_obs::global();
//! let rows = reg.counter("example_rows_total");
//! rows.add(48_000_000);
//! assert!(reg.render_prometheus().contains("example_rows_total 48000000"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bench;
pub mod digest;
pub mod manifest;
pub mod rss;

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::io::Write;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// A monotonically increasing counter. Increments are relaxed atomic
/// adds (~1 ns), safe to leave in place even when telemetry is off.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Add one.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A last-write-wins (or running-max) instantaneous value.
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicU64,
}

impl Gauge {
    /// Overwrite the value.
    #[inline]
    pub fn set(&self, v: u64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Raise the value to `v` if larger (peak tracking).
    #[inline]
    pub fn set_max(&self, v: u64) {
        self.value.fetch_max(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Bucket upper bounds (ns) for duration histograms: 1 µs to ~17 s in
/// powers of four — 13 buckets plus the implicit `+Inf`.
pub const DURATION_NS_BOUNDS: &[u64] = &[
    1 << 10,
    1 << 12,
    1 << 14,
    1 << 16,
    1 << 18,
    1 << 20,
    1 << 22,
    1 << 24,
    1 << 26,
    1 << 28,
    1 << 30,
    1 << 32,
    1 << 34,
];

/// A fixed-bucket histogram: cumulative-style export, relaxed-atomic
/// recording. Bounds are upper-inclusive per bucket, Prometheus-style.
#[derive(Debug)]
pub struct Histogram {
    bounds: &'static [u64],
    buckets: Vec<AtomicU64>,
    /// Overflow bucket (`+Inf`).
    inf: AtomicU64,
    sum: AtomicU64,
    count: AtomicU64,
}

impl Histogram {
    fn new(bounds: &'static [u64]) -> Histogram {
        Histogram {
            bounds,
            buckets: (0..bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            inf: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }

    /// Record one observation.
    #[inline]
    pub fn record(&self, v: u64) {
        match self.bounds.iter().position(|&b| v <= b) {
            Some(i) => self.buckets[i].fetch_add(1, Ordering::Relaxed),
            None => self.inf.fetch_add(1, Ordering::Relaxed),
        };
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of observations.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Per-bucket (upper bound, count) pairs, non-cumulative, without
    /// the overflow bucket.
    pub fn buckets(&self) -> Vec<(u64, u64)> {
        self.bounds
            .iter()
            .zip(&self.buckets)
            .map(|(&b, c)| (b, c.load(Ordering::Relaxed)))
            .collect()
    }
}

/// One recorded output artifact (for the run manifest).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OutputRecord {
    /// Where the artifact went (`stdout` or a path).
    pub target: String,
    /// Bytes written.
    pub bytes: u64,
    /// SHA-256 of the bytes, lowercase hex.
    pub sha256: String,
}

#[derive(Default)]
struct Metrics {
    counters: BTreeMap<String, Arc<Counter>>,
    gauges: BTreeMap<String, Arc<Gauge>>,
    histograms: BTreeMap<String, Arc<Histogram>>,
}

/// The process-wide telemetry registry. Cheap to hand around by
/// `&'static` reference (see [`global`]); every accessor returns an
/// `Arc` handle callers cache outside their hot loops.
pub struct Registry {
    enabled: AtomicBool,
    epoch: Instant,
    metrics: Mutex<Metrics>,
    phases: Mutex<Vec<(String, f64)>>,
    outputs: Mutex<Vec<OutputRecord>>,
    trace: Mutex<Option<Box<dyn Write + Send>>>,
    trace_seq: AtomicU64,
}

impl Default for Registry {
    fn default() -> Self {
        Registry::new()
    }
}

static GLOBAL: OnceLock<Registry> = OnceLock::new();

/// The process-wide registry every instrumented layer reports into.
pub fn global() -> &'static Registry {
    GLOBAL.get_or_init(Registry::new)
}

impl Registry {
    /// A fresh registry (tests; production code uses [`global`]).
    pub fn new() -> Registry {
        Registry {
            enabled: AtomicBool::new(false),
            epoch: Instant::now(),
            metrics: Mutex::new(Metrics::default()),
            phases: Mutex::new(Vec::new()),
            outputs: Mutex::new(Vec::new()),
            trace: Mutex::new(None),
            trace_seq: AtomicU64::new(0),
        }
    }

    /// Whether spans and the trace sink are live. Counters work either
    /// way; this gates everything that costs more than an atomic add.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Turn span/trace recording on or off.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Get or create the counter `name`. Call once per run per site,
    /// cache the handle, `add` aggregates.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut m = self.metrics.lock().expect("metrics lock");
        match m.counters.get(name) {
            Some(c) => Arc::clone(c),
            None => {
                let c = Arc::new(Counter::default());
                m.counters.insert(name.to_string(), Arc::clone(&c));
                c
            }
        }
    }

    /// Get or create the gauge `name`.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut m = self.metrics.lock().expect("metrics lock");
        match m.gauges.get(name) {
            Some(g) => Arc::clone(g),
            None => {
                let g = Arc::new(Gauge::default());
                m.gauges.insert(name.to_string(), Arc::clone(&g));
                g
            }
        }
    }

    /// Get or create the histogram `name` with `bounds` (ignored when
    /// the histogram already exists).
    pub fn histogram(&self, name: &str, bounds: &'static [u64]) -> Arc<Histogram> {
        let mut m = self.metrics.lock().expect("metrics lock");
        match m.histograms.get(name) {
            Some(h) => Arc::clone(h),
            None => {
                let h = Arc::new(Histogram::new(bounds));
                m.histograms.insert(name.to_string(), Arc::clone(&h));
                h
            }
        }
    }

    /// Counter values by name (the manifest's deterministic section).
    pub fn snapshot_counters(&self) -> BTreeMap<String, u64> {
        let m = self.metrics.lock().expect("metrics lock");
        m.counters.iter().map(|(k, v)| (k.clone(), v.get())).collect()
    }

    /// Gauge values by name.
    pub fn snapshot_gauges(&self) -> BTreeMap<String, u64> {
        let m = self.metrics.lock().expect("metrics lock");
        m.gauges.iter().map(|(k, v)| (k.clone(), v.get())).collect()
    }

    // -- spans ---------------------------------------------------------

    /// Open a span. Inert (no clock read, no allocation beyond the
    /// label) unless the registry is enabled. On drop the span records
    /// its wall duration into `span_<name>_ns` and emits one trace
    /// line; [`Span::event_range`] attaches virtual-clock bounds so
    /// traces stay meaningful for deterministic event-time layers.
    pub fn span(&self, name: &str) -> Span<'_> {
        if !self.enabled() {
            return Span { registry: self, name: String::new(), start: None, event: None };
        }
        Span { registry: self, name: name.to_string(), start: Some(Instant::now()), event: None }
    }

    /// Open a phase span: like [`span`](Registry::span), but the wall
    /// duration additionally lands in the manifest's phase-timing map.
    pub fn phase(&self, name: &str) -> PhaseSpan<'_> {
        PhaseSpan { span: self.span(name), record_phase: self.enabled() }
    }

    /// Record a finished phase timing directly (ms).
    pub fn record_phase(&self, name: &str, wall_ms: f64) {
        self.phases.lock().expect("phases lock").push((name.to_string(), wall_ms));
    }

    /// Completed phase timings `(name, wall_ms)` in completion order.
    pub fn snapshot_phases(&self) -> Vec<(String, f64)> {
        self.phases.lock().expect("phases lock").clone()
    }

    // -- outputs -------------------------------------------------------

    /// Record an output artifact digest (the CLI's `write_output`
    /// funnel calls this when a manifest is requested).
    pub fn record_output(&self, target: &str, bytes: u64, sha256: String) {
        self.outputs.lock().expect("outputs lock").push(OutputRecord {
            target: target.to_string(),
            bytes,
            sha256,
        });
    }

    /// Recorded output artifacts, in write order.
    pub fn snapshot_outputs(&self) -> Vec<OutputRecord> {
        self.outputs.lock().expect("outputs lock").clone()
    }

    // -- trace sink ----------------------------------------------------

    /// Attach a JSONL trace sink; each span drop writes one line.
    pub fn set_trace(&self, sink: Box<dyn Write + Send>) {
        *self.trace.lock().expect("trace lock") = Some(sink);
    }

    /// Flush and detach the trace sink, surfacing the final flush error.
    pub fn close_trace(&self) -> std::io::Result<()> {
        if let Some(mut sink) = self.trace.lock().expect("trace lock").take() {
            sink.flush()?;
        }
        Ok(())
    }

    fn trace_event(&self, name: &str, wall_ns: u64, event: Option<(u64, u64)>) {
        let mut guard = self.trace.lock().expect("trace lock");
        let Some(sink) = guard.as_mut() else { return };
        let seq = self.trace_seq.fetch_add(1, Ordering::Relaxed);
        let ts_ns = self.epoch.elapsed().as_nanos();
        let mut line = format!(
            "{{\"seq\":{seq},\"span\":\"{}\",\"ts_ns\":{ts_ns},\"wall_ns\":{wall_ns}",
            json_escape(name)
        );
        if let Some((lo, hi)) = event {
            let _ = write!(line, ",\"event_lo\":{lo},\"event_hi\":{hi}");
        }
        line.push_str("}\n");
        // Trace IO failures must never take the run down; the CLI's
        // close_trace surfaces persistent sink errors at exit.
        let _ = sink.write_all(line.as_bytes());
    }

    // -- exposition ----------------------------------------------------

    /// Render every metric as Prometheus-style text exposition, sorted
    /// by name. Metric names may embed labels (`foo{bar="baz"}`); the
    /// `# TYPE` header uses the base name.
    pub fn render_prometheus(&self) -> String {
        let m = self.metrics.lock().expect("metrics lock");
        let mut out = String::new();
        let mut typed: std::collections::BTreeSet<&str> = std::collections::BTreeSet::new();
        for (name, c) in &m.counters {
            let base = base_name(name);
            if typed.insert(base) {
                let _ = writeln!(out, "# TYPE {base} counter");
            }
            let _ = writeln!(out, "{name} {}", c.get());
        }
        for (name, g) in &m.gauges {
            let base = base_name(name);
            if typed.insert(base) {
                let _ = writeln!(out, "# TYPE {base} gauge");
            }
            let _ = writeln!(out, "{name} {}", g.get());
        }
        for (name, h) in &m.histograms {
            let base = base_name(name);
            if typed.insert(base) {
                let _ = writeln!(out, "# TYPE {base} histogram");
            }
            let mut cumulative = 0u64;
            for (bound, count) in h.buckets() {
                cumulative += count;
                let _ = writeln!(out, "{base}_bucket{{le=\"{bound}\"}} {cumulative}");
            }
            let _ = writeln!(out, "{base}_bucket{{le=\"+Inf\"}} {}", h.count());
            let _ = writeln!(out, "{base}_sum {}", h.sum());
            let _ = writeln!(out, "{base}_count {}", h.count());
        }
        out
    }
}

fn base_name(name: &str) -> &str {
    name.split('{').next().unwrap_or(name)
}

/// Escape a string for embedding in a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// A live span; records wall duration (and optional event-time range)
/// on drop. Inert when the registry was disabled at open time.
pub struct Span<'r> {
    registry: &'r Registry,
    name: String,
    start: Option<Instant>,
    event: Option<(u64, u64)>,
}

impl Span<'_> {
    /// Attach a virtual-clock `[lo, hi)` range (unix seconds of the
    /// simulated events the span covered).
    pub fn event_range(&mut self, lo: u64, hi: u64) {
        if self.start.is_some() {
            self.event = Some((lo, hi));
        }
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        let Some(start) = self.start else { return };
        let wall_ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        self.registry
            .histogram(&format!("span_{}_ns", self.name), DURATION_NS_BOUNDS)
            .record(wall_ns);
        self.registry.trace_event(&self.name, wall_ns, self.event);
    }
}

/// A [`Span`] whose wall time also lands in the manifest phase map.
pub struct PhaseSpan<'r> {
    span: Span<'r>,
    record_phase: bool,
}

impl PhaseSpan<'_> {
    /// Attach a virtual-clock range (see [`Span::event_range`]).
    pub fn event_range(&mut self, lo: u64, hi: u64) {
        self.span.event_range(lo, hi);
    }
}

impl Drop for PhaseSpan<'_> {
    fn drop(&mut self) {
        if self.record_phase {
            if let Some(start) = self.span.start {
                let ms = start.elapsed().as_secs_f64() * 1e3;
                self.span.registry.record_phase(&self.span.name, ms);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_roundtrip() {
        let reg = Registry::new();
        let c = reg.counter("x_total");
        c.incr();
        c.add(4);
        assert_eq!(c.get(), 5);
        assert_eq!(reg.counter("x_total").get(), 5, "same handle by name");
        let g = reg.gauge("g");
        g.set(7);
        g.set_max(3);
        assert_eq!(g.get(), 7);
        g.set_max(11);
        assert_eq!(g.get(), 11);
    }

    #[test]
    fn histogram_buckets_and_overflow() {
        let reg = Registry::new();
        let h = reg.histogram("h_ns", &[10, 100]);
        for v in [1, 10, 11, 100, 5000] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 5122);
        assert_eq!(h.buckets(), vec![(10, 2), (100, 2)]);
        let text = reg.render_prometheus();
        assert!(text.contains("h_ns_bucket{le=\"10\"} 2"), "{text}");
        assert!(text.contains("h_ns_bucket{le=\"100\"} 4"), "cumulative: {text}");
        assert!(text.contains("h_ns_bucket{le=\"+Inf\"} 5"), "{text}");
        assert!(text.contains("h_ns_count 5"), "{text}");
    }

    #[test]
    fn prometheus_renders_sorted_with_types_and_labels() {
        let reg = Registry::new();
        reg.counter("b_total").add(2);
        reg.counter("a_total{scenario=\"mixed\"}").add(1);
        reg.gauge("z_gauge").set(9);
        let text = reg.render_prometheus();
        let a = text.find("a_total").unwrap();
        let b = text.find("b_total").unwrap();
        assert!(a < b, "sorted: {text}");
        assert!(text.contains("# TYPE a_total counter"), "label stripped from TYPE: {text}");
        assert!(text.contains("a_total{scenario=\"mixed\"} 1"), "{text}");
        assert!(text.contains("# TYPE z_gauge gauge"), "{text}");
    }

    #[test]
    fn disabled_span_is_inert_and_enabled_span_records() {
        let reg = Registry::new();
        {
            let _s = reg.span("idle");
        }
        assert!(reg.render_prometheus().is_empty(), "disabled span must record nothing");

        reg.set_enabled(true);
        let sink: Vec<u8> = Vec::new();
        let shared = Arc::new(Mutex::new(sink));
        struct SharedSink(Arc<Mutex<Vec<u8>>>);
        impl Write for SharedSink {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        reg.set_trace(Box::new(SharedSink(Arc::clone(&shared))));
        {
            let mut s = reg.span("work");
            s.event_range(100, 200);
        }
        reg.close_trace().unwrap();
        let trace = String::from_utf8(shared.lock().unwrap().clone()).unwrap();
        assert!(trace.contains("\"span\":\"work\""), "{trace}");
        assert!(trace.contains("\"event_lo\":100,\"event_hi\":200"), "{trace}");
        assert_eq!(reg.histogram("span_work_ns", DURATION_NS_BOUNDS).count(), 1);
    }

    #[test]
    fn phases_and_outputs_snapshot() {
        let reg = Registry::new();
        reg.set_enabled(true);
        {
            let _p = reg.phase("generate");
        }
        let phases = reg.snapshot_phases();
        assert_eq!(phases.len(), 1);
        assert_eq!(phases[0].0, "generate");
        reg.record_output("out.csv", 10, "ab".into());
        assert_eq!(reg.snapshot_outputs().len(), 1);
    }

    #[test]
    fn json_escape_control_chars() {
        assert_eq!(json_escape("a\"b\\c\nd\u{1}"), "a\\\"b\\\\c\\nd\\u0001");
    }
}

//! Per-run manifest export.
//!
//! A [`RunManifest`] is the flight recorder's summary artifact: what
//! command ran, with which config/seed/threads, which counters it
//! accumulated, what it wrote (sizes + SHA-256 digests), and how it
//! performed (wall time, phase timings, peak RSS, host cores).
//!
//! ## Rendering contract
//!
//! [`RunManifest::render`] emits one top-level field per line, with
//! every *stable* (run-deterministic) field before the `"perf"`
//! object, which is always last. Consumers that want a comparable
//! snapshot — the CI manifest gate, the determinism tests — take the
//! prefix of lines before `  "perf"` (e.g. `sed -n '/^  "perf"/q;p'`)
//! and get bytes that depend only on config, seed, and thread count.
//! `manifest_digest` is the SHA-256 of exactly that stable prefix, so
//! a manifest self-certifies which run family it belongs to.

use crate::digest::Sha256;
use crate::{json_escape, OutputRecord};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Current manifest schema version.
pub const SCHEMA_VERSION: u32 = 1;

/// Volatile (machine/run dependent) performance fields; rendered last.
#[derive(Debug, Clone, Default)]
pub struct PerfSection {
    /// End-to-end wall time in milliseconds.
    pub wall_ms: f64,
    /// Host logical core count.
    pub host_cores: usize,
    /// Resident set size at manifest time (kB, 0 when unsampled).
    pub rss_kb: u64,
    /// Peak resident set size (kB, 0 when unsampled).
    pub peak_rss_kb: u64,
    /// Phase timings `(name, wall_ms)` in completion order.
    pub phases: Vec<(String, f64)>,
}

/// A per-run manifest; see the module docs for the rendering contract.
#[derive(Debug, Clone, Default)]
pub struct RunManifest {
    /// Tool name (`botscope`).
    pub tool: String,
    /// Crate version of the binary.
    pub version: String,
    /// Subcommand (`simulate`, `monitor`, ...).
    pub command: String,
    /// Remaining CLI arguments, verbatim, telemetry flags stripped.
    pub args: Vec<String>,
    /// RNG seed when the command has one.
    pub seed: Option<u64>,
    /// Worker thread count the run resolved to.
    pub threads: usize,
    /// Key config knobs as strings (scale, days, sites, ...).
    pub config: BTreeMap<String, String>,
    /// Deterministic counter snapshot from the registry.
    pub counters: BTreeMap<String, u64>,
    /// Output artifacts in write order.
    pub outputs: Vec<OutputRecord>,
    /// Volatile performance section.
    pub perf: PerfSection,
}

impl RunManifest {
    /// Render the stable-prefix lines (everything before
    /// `manifest_digest` and `"perf"`), newline-terminated.
    fn render_stable_prefix(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        let _ = writeln!(s, "  \"schema_version\": {SCHEMA_VERSION},");
        let _ = writeln!(s, "  \"tool\": \"{}\",", json_escape(&self.tool));
        let _ = writeln!(s, "  \"version\": \"{}\",", json_escape(&self.version));
        let _ = writeln!(s, "  \"command\": \"{}\",", json_escape(&self.command));
        let args: Vec<String> =
            self.args.iter().map(|a| format!("\"{}\"", json_escape(a))).collect();
        let _ = writeln!(s, "  \"args\": [{}],", args.join(", "));
        match self.seed {
            Some(seed) => {
                let _ = writeln!(s, "  \"seed\": {seed},");
            }
            None => {
                let _ = writeln!(s, "  \"seed\": null,");
            }
        }
        let _ = writeln!(s, "  \"threads\": {},", self.threads);
        let config: Vec<String> = self
            .config
            .iter()
            .map(|(k, v)| format!("\"{}\": \"{}\"", json_escape(k), json_escape(v)))
            .collect();
        let _ = writeln!(s, "  \"config\": {{{}}},", config.join(", "));
        let counters: Vec<String> =
            self.counters.iter().map(|(k, v)| format!("\"{}\": {v}", json_escape(k))).collect();
        let _ = writeln!(s, "  \"counters\": {{{}}},", counters.join(", "));
        let outputs: Vec<String> = self
            .outputs
            .iter()
            .map(|o| {
                format!(
                    "{{\"target\": \"{}\", \"bytes\": {}, \"sha256\": \"{}\"}}",
                    json_escape(&o.target),
                    o.bytes,
                    json_escape(&o.sha256)
                )
            })
            .collect();
        let _ = writeln!(s, "  \"outputs\": [{}],", outputs.join(", "));
        s
    }

    /// SHA-256 (lowercase hex) of the stable prefix — identical for
    /// runs that share config, seed, thread count, and output bytes.
    pub fn stable_digest(&self) -> String {
        let mut h = Sha256::new();
        h.update(self.render_stable_prefix().as_bytes());
        h.finalize_hex()
    }

    /// Render the full manifest JSON (trailing newline included).
    pub fn render(&self) -> String {
        let mut s = self.render_stable_prefix();
        let _ = writeln!(s, "  \"manifest_digest\": \"sha256:{}\",", self.stable_digest());
        s.push_str("  \"perf\": {\n");
        let _ = writeln!(s, "    \"wall_ms\": {:.3},", self.perf.wall_ms);
        let _ = writeln!(s, "    \"host_cores\": {},", self.perf.host_cores);
        let _ = writeln!(s, "    \"rss_kb\": {},", self.perf.rss_kb);
        let _ = writeln!(s, "    \"peak_rss_kb\": {},", self.perf.peak_rss_kb);
        let phases: Vec<String> = self
            .perf
            .phases
            .iter()
            .map(|(name, ms)| format!("[\"{}\", {ms:.3}]", json_escape(name)))
            .collect();
        let _ = writeln!(s, "    \"phases\": [{}]", phases.join(", "));
        s.push_str("  }\n}\n");
        s
    }
}

/// Extract the stable prefix (lines before `  "perf"`, excluding the
/// `manifest_digest` line) from a rendered manifest. Mirrors the CI
/// gate's `sed -n '/^  "perf"/q;p'` plus the digest-line filter.
pub fn stable_prefix(rendered: &str) -> String {
    let mut out = String::new();
    for line in rendered.lines() {
        if line.starts_with("  \"perf\"") {
            break;
        }
        if line.starts_with("  \"manifest_digest\"") {
            continue;
        }
        out.push_str(line);
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RunManifest {
        RunManifest {
            tool: "botscope".into(),
            version: "0.1.0".into(),
            command: "simulate".into(),
            args: vec!["--stream".into(), "--scale".into(), "0.1".into()],
            seed: Some(4242),
            threads: 2,
            config: BTreeMap::from([("days".to_string(), "46".to_string())]),
            counters: BTreeMap::from([("rows_total".to_string(), 123u64)]),
            outputs: vec![OutputRecord {
                target: "out.csv".into(),
                bytes: 10,
                sha256: "ab".into(),
            }],
            perf: PerfSection {
                wall_ms: 12.5,
                host_cores: 8,
                rss_kb: 100,
                peak_rss_kb: 120,
                phases: vec![("generate".into(), 10.0)],
            },
        }
    }

    #[test]
    fn render_puts_perf_last_and_one_field_per_line() {
        let text = sample().render();
        let perf_at = text.find("  \"perf\": {").expect("perf section");
        for field in ["schema_version", "seed", "threads", "counters", "outputs"] {
            let at = text.find(&format!("\"{field}\"")).unwrap_or_else(|| panic!("{field}"));
            assert!(at < perf_at, "{field} must precede perf");
        }
        assert!(text.ends_with("  }\n}\n"));
        assert!(text.contains("\n  \"seed\": 4242,\n"));
    }

    #[test]
    fn stable_prefix_is_volatile_free_and_digest_matches() {
        let m = sample();
        let prefix = stable_prefix(&m.render());
        assert!(!prefix.contains("wall_ms"));
        assert!(!prefix.contains("manifest_digest"));
        assert!(prefix.contains("\"seed\": 4242"));
        assert_eq!(crate::digest::sha256_hex(prefix.as_bytes()), m.stable_digest());

        // Volatile perf changes must not move the stable digest.
        let mut hot = m.clone();
        hot.perf.wall_ms = 9999.0;
        hot.perf.peak_rss_kb = 1;
        assert_eq!(hot.stable_digest(), m.stable_digest());

        // Stable changes must.
        let mut other = m;
        other.seed = Some(1);
        assert_ne!(other.stable_digest(), other.clone().tap_seed(4242).stable_digest());
    }

    trait Tap {
        fn tap_seed(self, seed: u64) -> Self;
    }
    impl Tap for RunManifest {
        fn tap_seed(mut self, seed: u64) -> Self {
            self.seed = Some(seed);
            self
        }
    }
}

//! JSON-Lines export of access records.
//!
//! Log pipelines (jq, DuckDB, pandas) prefer JSONL over CSV for nested or
//! optional fields. This is an *encoder only*, hand-rolled against RFC
//! 8259 string-escaping rules — the fixed schema makes a serde stack
//! unnecessary (DESIGN.md §7); re-import uses the CSV codec.

use std::fmt::Write as _;

use crate::record::AccessRecord;

/// Escape a string per RFC 8259 §7 into `out` (with surrounding quotes).
fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Encode one record as a single JSON object (no trailing newline).
pub fn encode_record(r: &AccessRecord) -> String {
    let mut out = String::with_capacity(192);
    out.push_str("{\"useragent\":");
    escape_into(&r.useragent, &mut out);
    out.push_str(",\"timestamp\":");
    escape_into(&r.timestamp.to_iso8601(), &mut out);
    let _ = write!(out, ",\"ip_hash\":\"{:016x}\"", r.ip_hash);
    out.push_str(",\"asn\":");
    escape_into(&r.asn, &mut out);
    out.push_str(",\"sitename\":");
    escape_into(&r.sitename, &mut out);
    out.push_str(",\"uri_path\":");
    escape_into(&r.uri_path, &mut out);
    let _ = write!(out, ",\"status\":{},\"bytes\":{}", r.status, r.bytes);
    out.push_str(",\"referer\":");
    match &r.referer {
        Some(referer) => escape_into(referer, &mut out),
        None => out.push_str("null"),
    }
    out.push('}');
    out
}

/// Encode a dataset: one JSON object per line.
pub fn encode(records: &[AccessRecord]) -> String {
    let mut out = String::with_capacity(records.len() * 192);
    for r in records {
        out.push_str(&encode_record(r));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Timestamp;

    fn sample() -> AccessRecord {
        AccessRecord {
            useragent: "Mozilla/5.0 (compatible; \"Quoted\"Bot/1.0)".into(),
            timestamp: Timestamp::from_date(2025, 2, 12),
            ip_hash: 0xDEAD_BEEF,
            asn: "GOOGLE".into(),
            sitename: "site-00.example.edu".into(),
            uri_path: "/a\\b\tc".into(),
            status: 200,
            bytes: 1234,
            referer: None,
        }
    }

    #[test]
    fn object_shape() {
        let line = encode_record(&sample());
        assert!(line.starts_with('{') && line.ends_with('}'));
        assert!(line.contains("\"timestamp\":\"2025-02-12T00:00:00Z\""));
        assert!(line.contains("\"ip_hash\":\"00000000deadbeef\""));
        assert!(line.contains("\"status\":200"));
        assert!(line.contains("\"referer\":null"));
    }

    #[test]
    fn quotes_and_backslashes_escaped() {
        let line = encode_record(&sample());
        assert!(line.contains("\\\"Quoted\\\"Bot"));
        assert!(line.contains("/a\\\\b\\tc"));
        // The line must be a single physical line.
        assert!(!line.contains('\n'));
    }

    #[test]
    fn control_characters_become_unicode_escapes() {
        let mut r = sample();
        r.useragent = "bad\u{01}agent".into();
        let line = encode_record(&r);
        assert!(line.contains("bad\\u0001agent"));
    }

    #[test]
    fn referer_present() {
        let mut r = sample();
        r.referer = Some("https://ref/?q=\"x\"".into());
        let line = encode_record(&r);
        assert!(line.contains("\"referer\":\"https://ref/?q=\\\"x\\\"\""));
    }

    #[test]
    fn one_line_per_record() {
        let records = vec![sample(), sample(), sample()];
        let text = encode(&records);
        assert_eq!(text.lines().count(), 3);
        assert!(text.ends_with('\n'));
        assert!(encode(&[]).is_empty());
    }

    #[test]
    fn balanced_quotes_and_braces() {
        // Structural sanity for hostile inputs: every line has balanced
        // braces and an even number of unescaped quotes.
        let mut r = sample();
        r.useragent = "\\\"\\\\\"\"\n\r\t".into();
        let line = encode_record(&r);
        let unescaped_quotes = {
            let bytes = line.as_bytes();
            let mut count = 0;
            let mut i = 0;
            while i < bytes.len() {
                if bytes[i] == b'\\' {
                    i += 2;
                    continue;
                }
                if bytes[i] == b'"' {
                    count += 1;
                }
                i += 1;
            }
            count
        };
        assert_eq!(unescaped_quotes % 2, 0, "{line}");
    }
}

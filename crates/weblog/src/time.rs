//! Minimal civil-time implementation.
//!
//! The study's logs carry ISO-8601 timestamps (paper §3.1). We implement
//! exactly what the pipeline needs — unix seconds ↔ proleptic-Gregorian
//! civil date conversion (Howard Hinnant's `days_from_civil` algorithm,
//! which is exact over the whole u64 range we use) and `%Y-%m-%dT%H:%M:%SZ`
//! parsing/formatting — rather than pulling a calendar crate.

use std::fmt;

/// A UTC timestamp in whole seconds since the unix epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Timestamp(u64);

/// A broken-down civil date-time (UTC).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Civil {
    /// Year (e.g. 2025).
    pub year: i64,
    /// Month 1–12.
    pub month: u8,
    /// Day of month 1–31.
    pub day: u8,
    /// Hour 0–23.
    pub hour: u8,
    /// Minute 0–59.
    pub minute: u8,
    /// Second 0–59.
    pub second: u8,
}

/// Error parsing an ISO-8601 timestamp.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseTimeError {
    /// What was wrong.
    pub message: String,
}

impl fmt::Display for ParseTimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid timestamp: {}", self.message)
    }
}

impl std::error::Error for ParseTimeError {}

/// Days from 1970-01-01 to `year-month-day` (Hinnant's algorithm).
fn days_from_civil(year: i64, month: u8, day: u8) -> i64 {
    let y = if month <= 2 { year - 1 } else { year };
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = y - era * 400; // [0, 399]
    let mp = (i64::from(month) + 9) % 12; // Mar=0 … Feb=11
    let doy = (153 * mp + 2) / 5 + i64::from(day) - 1; // [0, 365]
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
    era * 146_097 + doe - 719_468
}

/// Inverse of [`days_from_civil`].
fn civil_from_days(z: i64) -> (i64, u8, u8) {
    let z = z + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = z - era * 146_097; // [0, 146096]
    let yoe = (doe - doe / 1460 + doe / 36524 - doe / 146_096) / 365; // [0, 399]
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
    let mp = (5 * doy + 2) / 153; // [0, 11]
    let d = (doy - (153 * mp + 2) / 5 + 1) as u8; // [1, 31]
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u8; // [1, 12]
    (if m <= 2 { y + 1 } else { y }, m, d)
}

impl Timestamp {
    /// From unix seconds.
    pub const fn from_unix(secs: u64) -> Self {
        Timestamp(secs)
    }

    /// As unix seconds.
    pub const fn unix(self) -> u64 {
        self.0
    }

    /// Construct from a civil date-time.
    ///
    /// # Panics
    /// Panics if the civil fields are out of range or the instant is
    /// before the epoch (the study's data is all 2025).
    pub fn from_civil(c: Civil) -> Self {
        assert!((1..=12).contains(&c.month), "month {}", c.month);
        assert!((1..=31).contains(&c.day), "day {}", c.day);
        assert!(c.hour < 24 && c.minute < 60 && c.second < 60, "time fields out of range");
        let days = days_from_civil(c.year, c.month, c.day);
        assert!(days >= 0, "timestamp before unix epoch");
        Timestamp(
            days as u64 * 86_400
                + u64::from(c.hour) * 3600
                + u64::from(c.minute) * 60
                + u64::from(c.second),
        )
    }

    /// Shorthand: midnight UTC on a civil date.
    pub fn from_date(year: i64, month: u8, day: u8) -> Self {
        Self::from_civil(Civil { year, month, day, hour: 0, minute: 0, second: 0 })
    }

    /// Break down into civil fields.
    pub fn civil(self) -> Civil {
        let days = (self.0 / 86_400) as i64;
        let rem = self.0 % 86_400;
        let (year, month, day) = civil_from_days(days);
        Civil {
            year,
            month,
            day,
            hour: (rem / 3600) as u8,
            minute: ((rem % 3600) / 60) as u8,
            second: (rem % 60) as u8,
        }
    }

    /// Format as `YYYY-MM-DDTHH:MM:SSZ`.
    pub fn to_iso8601(self) -> String {
        let c = self.civil();
        format!(
            "{:04}-{:02}-{:02}T{:02}:{:02}:{:02}Z",
            c.year, c.month, c.day, c.hour, c.minute, c.second
        )
    }

    /// Parse `YYYY-MM-DDTHH:MM:SSZ` (also accepts a space separator and a
    /// missing trailing `Z`).
    pub fn parse_iso8601(s: &str) -> Result<Self, ParseTimeError> {
        let err = |m: &str| ParseTimeError { message: format!("{m}: {s:?}") };
        let s = s.trim().strip_suffix('Z').unwrap_or_else(|| s.trim());
        if s.len() != 19 {
            return Err(err("expected YYYY-MM-DDTHH:MM:SS[Z]"));
        }
        let bytes = s.as_bytes();
        let sep = bytes[10];
        if sep != b'T' && sep != b' ' {
            return Err(err("expected 'T' or ' ' separator"));
        }
        if bytes[4] != b'-' || bytes[7] != b'-' || bytes[13] != b':' || bytes[16] != b':' {
            return Err(err("bad field separators"));
        }
        let num = |range: std::ops::Range<usize>| -> Result<i64, ParseTimeError> {
            s[range.clone()]
                .parse::<i64>()
                .map_err(|_| err(&format!("non-numeric field at {range:?}")))
        };
        let year = num(0..4)?;
        let month = num(5..7)?;
        let day = num(8..10)?;
        let hour = num(11..13)?;
        let minute = num(14..16)?;
        let second = num(17..19)?;
        if !(1..=12).contains(&month) || !(1..=31).contains(&day) {
            return Err(err("date field out of range"));
        }
        if !(0..24).contains(&hour) || !(0..60).contains(&minute) || !(0..60).contains(&second) {
            return Err(err("time field out of range"));
        }
        // Reject day numbers invalid for the month (roundtrip check).
        let ts = Timestamp::from_civil(Civil {
            year,
            month: month as u8,
            day: day as u8,
            hour: hour as u8,
            minute: minute as u8,
            second: second as u8,
        });
        let c = ts.civil();
        if i64::from(c.day) != day || i64::from(c.month) != month {
            return Err(err("no such calendar day"));
        }
        Ok(ts)
    }

    /// The timestamp truncated to midnight UTC.
    pub fn day_start(self) -> Timestamp {
        Timestamp(self.0 - self.0 % 86_400)
    }

    /// Days elapsed since `earlier` (saturating).
    pub fn days_since(self, earlier: Timestamp) -> u64 {
        self.0.saturating_sub(earlier.0) / 86_400
    }

    /// Seconds elapsed since `earlier` (saturating).
    pub fn secs_since(self, earlier: Timestamp) -> u64 {
        self.0.saturating_sub(earlier.0)
    }

    /// This timestamp plus `secs` seconds.
    pub fn plus_secs(self, secs: u64) -> Timestamp {
        Timestamp(self.0 + secs)
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_iso8601())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch() {
        let t = Timestamp::from_unix(0);
        assert_eq!(t.to_iso8601(), "1970-01-01T00:00:00Z");
    }

    #[test]
    fn study_period_dates() {
        // Paper: data from February 12 to March 29, 2025.
        let start = Timestamp::from_date(2025, 2, 12);
        assert_eq!(start.to_iso8601(), "2025-02-12T00:00:00Z");
        let end = Timestamp::from_date(2025, 3, 29);
        assert_eq!(end.days_since(start), 45);
        assert_eq!(start.unix(), 1_739_318_400);
    }

    #[test]
    fn roundtrip_random_instants() {
        // Deterministic sweep across years incl. leap boundaries.
        for &secs in &[
            0u64,
            86_399,
            86_400,
            951_782_399,   // 2000-02-28T23:59:59
            951_782_400,   // 2000-02-29 (leap century)
            1_709_164_800, // 2024-02-29 (leap)
            1_739_318_400,
            4_102_444_800, // 2100-01-01 (not leap)
        ] {
            let t = Timestamp::from_unix(secs);
            let parsed = Timestamp::parse_iso8601(&t.to_iso8601()).unwrap();
            assert_eq!(parsed, t, "roundtrip {secs}");
        }
    }

    #[test]
    fn leap_year_handling() {
        assert_eq!(Timestamp::from_unix(951_782_400).to_iso8601(), "2000-02-29T00:00:00Z");
        assert_eq!(Timestamp::from_unix(1_709_164_800).to_iso8601(), "2024-02-29T00:00:00Z");
        // 2100 is not a leap year.
        assert!(Timestamp::parse_iso8601("2100-02-29T00:00:00Z").is_err());
        // 2025 is not a leap year either.
        assert!(Timestamp::parse_iso8601("2025-02-29T12:00:00Z").is_err());
    }

    #[test]
    fn parse_variants() {
        assert!(Timestamp::parse_iso8601("2025-02-12T08:30:15Z").is_ok());
        assert!(Timestamp::parse_iso8601("2025-02-12 08:30:15").is_ok());
        assert!(Timestamp::parse_iso8601("  2025-02-12T08:30:15Z  ").is_ok());
    }

    #[test]
    fn parse_rejects_garbage() {
        for bad in [
            "",
            "2025-02-12",
            "2025-13-01T00:00:00Z",
            "2025-00-01T00:00:00Z",
            "2025-02-32T00:00:00Z",
            "2025-02-12T24:00:00Z",
            "2025-02-12T00:60:00Z",
            "2025-02-12X00:00:00Z",
            "2025/02/12T00:00:00Z",
            "yyyy-mm-ddThh:mm:ssZ",
        ] {
            assert!(Timestamp::parse_iso8601(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn day_arithmetic() {
        let t = Timestamp::parse_iso8601("2025-02-12T13:45:00Z").unwrap();
        assert_eq!(t.day_start().to_iso8601(), "2025-02-12T00:00:00Z");
        assert_eq!(t.plus_secs(3600).to_iso8601(), "2025-02-12T14:45:00Z");
        assert_eq!(t.secs_since(t.day_start()), 13 * 3600 + 45 * 60);
        // Saturating subtraction.
        assert_eq!(t.day_start().secs_since(t), 0);
    }

    #[test]
    fn civil_fields() {
        let c = Timestamp::parse_iso8601("2025-03-29T23:59:59Z").unwrap().civil();
        assert_eq!((c.year, c.month, c.day), (2025, 3, 29));
        assert_eq!((c.hour, c.minute, c.second), (23, 59, 59));
    }

    #[test]
    fn ordering_matches_seconds() {
        let a = Timestamp::from_unix(100);
        let b = Timestamp::from_unix(200);
        assert!(a < b);
        assert_eq!(a.max(b), b);
    }

    #[test]
    #[should_panic(expected = "month")]
    fn from_civil_validates() {
        let _ = Timestamp::from_civil(Civil {
            year: 2025,
            month: 13,
            day: 1,
            hour: 0,
            minute: 0,
            second: 0,
        });
    }

    #[test]
    fn display_is_iso() {
        let t = Timestamp::from_date(2025, 2, 12);
        assert_eq!(format!("{t}"), "2025-02-12T00:00:00Z");
    }
}

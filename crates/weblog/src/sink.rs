//! Row-streaming output sinks.
//!
//! Producers that generate rows in a deterministic order (the
//! monitoring daemon's k-way shard merge, long-horizon generators) can
//! write each [`AccessRecord`] as it is produced instead of
//! materializing a full [`LogTable`] first and encoding it afterwards —
//! bounding memory to the producer's working set rather than the whole
//! dataset.
//!
//! [`CsvSink`] is byte-identical to [`crate::codec::write_table`] over
//! the same rows in the same order, and [`JsonlSink`] to the per-record
//! [`crate::jsonl::encode_record`] loop, so streaming and materialized
//! paths can be `cmp`-verified against each other.

use std::io::{self, Write};

use crate::codec;
use crate::jsonl;
use crate::record::AccessRecord;
use crate::table::LogTable;

/// A destination for a deterministic stream of access records.
pub trait RowSink {
    /// Write one record. Order is the producer's canonical order.
    fn write_row(&mut self, record: &AccessRecord) -> io::Result<()>;

    /// Flush any buffered output; called once after the final row.
    fn finish(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// Streams rows as the workspace CSV schema (header included).
pub struct CsvSink<W: Write> {
    writer: W,
    line: String,
}

impl<W: Write> CsvSink<W> {
    /// Wrap `writer`, emitting the CSV header immediately.
    pub fn new(mut writer: W) -> io::Result<CsvSink<W>> {
        writer.write_all(codec::HEADER.as_bytes())?;
        writer.write_all(b"\n")?;
        Ok(CsvSink { writer, line: String::with_capacity(160) })
    }

    /// Unwrap the inner writer.
    pub fn into_inner(self) -> W {
        self.writer
    }
}

impl<W: Write> RowSink for CsvSink<W> {
    fn write_row(&mut self, record: &AccessRecord) -> io::Result<()> {
        self.line.clear();
        self.line.push_str(&codec::encode_record(record));
        self.line.push('\n');
        self.writer.write_all(self.line.as_bytes())
    }

    fn finish(&mut self) -> io::Result<()> {
        self.writer.flush()
    }
}

/// Streams rows as JSON Lines.
pub struct JsonlSink<W: Write> {
    writer: W,
}

impl<W: Write> JsonlSink<W> {
    /// Wrap `writer`.
    pub fn new(writer: W) -> JsonlSink<W> {
        JsonlSink { writer }
    }

    /// Unwrap the inner writer.
    pub fn into_inner(self) -> W {
        self.writer
    }
}

impl<W: Write> RowSink for JsonlSink<W> {
    fn write_row(&mut self, record: &AccessRecord) -> io::Result<()> {
        self.writer.write_all(jsonl::encode_record(record).as_bytes())?;
        self.writer.write_all(b"\n")
    }

    fn finish(&mut self) -> io::Result<()> {
        self.writer.flush()
    }
}

/// Collects the stream back into a [`LogTable`] — the compatibility
/// sink, and the equivalence anchor for tests.
#[derive(Debug, Default)]
pub struct TableSink {
    /// The collected rows.
    pub table: LogTable,
}

impl TableSink {
    /// An empty collector.
    pub fn new() -> TableSink {
        TableSink::default()
    }
}

impl RowSink for TableSink {
    fn write_row(&mut self, record: &AccessRecord) -> io::Result<()> {
        self.table.push_record(record);
        Ok(())
    }
}

/// Counts rows and discards them (dry runs, throughput probes).
#[derive(Debug, Default)]
pub struct CountingSink {
    /// Rows seen.
    pub rows: u64,
}

impl RowSink for CountingSink {
    fn write_row(&mut self, _record: &AccessRecord) -> io::Result<()> {
        self.rows += 1;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Timestamp;

    fn sample(i: u64) -> AccessRecord {
        AccessRecord {
            useragent: format!("bot/{i}"),
            timestamp: Timestamp::from_unix(1_000 + i),
            ip_hash: i,
            asn: "GOOGLE".into(),
            sitename: "s.example.edu".into(),
            uri_path: "/robots.txt".into(),
            status: 200,
            bytes: 10,
            referer: None,
        }
    }

    #[test]
    fn csv_sink_matches_write_table() {
        let records: Vec<AccessRecord> = (0..5).map(sample).collect();
        let table = LogTable::from_records(&records);
        let mut sink = CsvSink::new(Vec::new()).unwrap();
        for r in &records {
            sink.write_row(r).unwrap();
        }
        sink.finish().unwrap();
        assert_eq!(sink.into_inner(), codec::encode_table(&table).into_bytes());
    }

    #[test]
    fn jsonl_sink_matches_encode_record() {
        let records: Vec<AccessRecord> = (0..3).map(sample).collect();
        let mut sink = JsonlSink::new(Vec::new());
        for r in &records {
            sink.write_row(r).unwrap();
        }
        sink.finish().unwrap();
        let expected: String = records.iter().map(|r| jsonl::encode_record(r) + "\n").collect();
        assert_eq!(sink.into_inner(), expected.into_bytes());
    }

    #[test]
    fn table_and_counting_sinks() {
        let records: Vec<AccessRecord> = (0..4).map(sample).collect();
        let mut table = TableSink::new();
        let mut count = CountingSink::default();
        for r in &records {
            table.write_row(r).unwrap();
            count.write_row(r).unwrap();
        }
        assert_eq!(table.table.to_records(), records);
        assert_eq!(count.rows, 4);
    }
}

//! Keyed one-way IP hashing: SipHash-2-4, implemented in-crate.
//!
//! The study anonymizes visitor IPs with "a one-way cryptographic hash"
//! for IRB compliance (paper §3.1). SipHash-2-4 is a keyed PRF designed
//! exactly for short inputs like addresses; with a secret key it is
//! one-way for any party not holding the key. The implementation below is
//! the reference construction (Aumasson & Bernstein) and is validated
//! against the official test vectors.

/// A keyed IP hasher.
#[derive(Debug, Clone, Copy)]
pub struct IpHasher {
    k0: u64,
    k1: u64,
}

impl IpHasher {
    /// Construct from a 128-bit key given as two words.
    pub fn new(k0: u64, k1: u64) -> Self {
        Self { k0, k1 }
    }

    /// Derive a hasher from a study seed (convenient for the simulator:
    /// one seed drives everything).
    pub fn from_seed(seed: u64) -> Self {
        // Two fixed distinct tweaks; splitmix64 expansion.
        Self {
            k0: splitmix64(seed ^ 0x9E37_79B9_7F4A_7C15),
            k1: splitmix64(seed ^ 0xD1B5_4A32_D192_ED03),
        }
    }

    /// Hash an IPv4 address.
    pub fn hash_ipv4(&self, ip: u32) -> u64 {
        self.hash_bytes(&ip.to_be_bytes())
    }

    /// Hash arbitrary bytes with SipHash-2-4.
    pub fn hash_bytes(&self, data: &[u8]) -> u64 {
        siphash24(self.k0, self.k1, data)
    }
}

/// splitmix64 — used only for key derivation from a seed.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[inline]
fn sipround(v: &mut [u64; 4]) {
    v[0] = v[0].wrapping_add(v[1]);
    v[1] = v[1].rotate_left(13);
    v[1] ^= v[0];
    v[0] = v[0].rotate_left(32);
    v[2] = v[2].wrapping_add(v[3]);
    v[3] = v[3].rotate_left(16);
    v[3] ^= v[2];
    v[0] = v[0].wrapping_add(v[3]);
    v[3] = v[3].rotate_left(21);
    v[3] ^= v[0];
    v[2] = v[2].wrapping_add(v[1]);
    v[1] = v[1].rotate_left(17);
    v[1] ^= v[2];
    v[2] = v[2].rotate_left(32);
}

/// SipHash-2-4 over `data` with key (`k0`, `k1`).
fn siphash24(k0: u64, k1: u64, data: &[u8]) -> u64 {
    let mut v = [
        k0 ^ 0x736f_6d65_7073_6575,
        k1 ^ 0x646f_7261_6e64_6f6d,
        k0 ^ 0x6c79_6765_6e65_7261,
        k1 ^ 0x7465_6462_7974_6573,
    ];

    let mut chunks = data.chunks_exact(8);
    for chunk in &mut chunks {
        let m = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        v[3] ^= m;
        sipround(&mut v);
        sipround(&mut v);
        v[0] ^= m;
    }

    // Final block: remaining bytes plus the length in the top byte.
    let rem = chunks.remainder();
    let mut last = (data.len() as u64 & 0xFF) << 56;
    for (i, &b) in rem.iter().enumerate() {
        last |= u64::from(b) << (8 * i);
    }
    v[3] ^= last;
    sipround(&mut v);
    sipround(&mut v);
    v[0] ^= last;

    v[2] ^= 0xFF;
    for _ in 0..4 {
        sipround(&mut v);
    }
    v[0] ^ v[1] ^ v[2] ^ v[3]
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Official SipHash-2-4 test vectors (key = 000102…0f, messages of
    /// increasing length 0,1,2,…): first four entries.
    #[test]
    fn reference_vectors() {
        let k0 = u64::from_le_bytes([0, 1, 2, 3, 4, 5, 6, 7]);
        let k1 = u64::from_le_bytes([8, 9, 10, 11, 12, 13, 14, 15]);
        let msg: Vec<u8> = (0u8..16).collect();
        let expected: [u64; 16] = [
            0x726f_db47_dd0e_0e31,
            0x74f8_39c5_93dc_67fd,
            0x0d6c_8009_d9a9_4f5a,
            0x8567_6696_d7fb_7e2d,
            0xcf27_94e0_2771_87b7,
            0x1876_5564_cd99_a68d,
            0xcbc9_466e_58fe_e3ce,
            0xab02_00f5_8b01_d137,
            0x93f5_f579_9a93_2462,
            0x9e00_82df_0ba9_e4b0,
            0x7a5d_bbc5_94dd_b9f3,
            0xf4b3_2f46_226b_ada7,
            0x751e_8fbc_860e_e5fb,
            0x14ea_5627_c084_3d90,
            0xf723_ca90_8e7a_f2ee,
            0xa129_ca61_49be_45e5,
        ];
        for (len, want) in expected.iter().enumerate() {
            let got = siphash24(k0, k1, &msg[..len]);
            assert_eq!(got, *want, "len={len}");
        }
    }

    #[test]
    fn keyed_hashes_differ() {
        let a = IpHasher::new(1, 2);
        let b = IpHasher::new(3, 4);
        let ip = 0x0A00_0001;
        assert_ne!(a.hash_ipv4(ip), b.hash_ipv4(ip));
    }

    #[test]
    fn deterministic_per_key() {
        let h = IpHasher::from_seed(9309);
        assert_eq!(h.hash_ipv4(0x0A01_0203), h.hash_ipv4(0x0A01_0203));
        let h2 = IpHasher::from_seed(9309);
        assert_eq!(h.hash_ipv4(123), h2.hash_ipv4(123));
    }

    #[test]
    fn different_ips_rarely_collide() {
        let h = IpHasher::from_seed(7);
        let mut seen = std::collections::HashSet::new();
        for ip in 0..10_000u32 {
            seen.insert(h.hash_ipv4(ip));
        }
        assert_eq!(seen.len(), 10_000, "collision in 10k hashes is ~impossible");
    }

    #[test]
    fn seed_derivation_spreads() {
        let a = IpHasher::from_seed(1);
        let b = IpHasher::from_seed(2);
        assert_ne!(a.hash_ipv4(0), b.hash_ipv4(0));
    }
}

//! Preprocessing filters.
//!
//! The study removes "several IP hashes associated with vulnerability
//! scanning tools and similar entities" (3 hashes, 294,362 accesses) and
//! restricts analysis windows to the deployment period of each robots.txt
//! version (paper §3.1, §4.1). These are the corresponding reusable
//! filters.

use std::collections::HashSet;

use crate::record::AccessRecord;
use crate::time::Timestamp;

/// Remove all records whose IP hash is in `banned` (scanner removal).
/// Returns the retained records and the number removed.
pub fn remove_ip_hashes(
    records: Vec<AccessRecord>,
    banned: &HashSet<u64>,
) -> (Vec<AccessRecord>, usize) {
    let before = records.len();
    let kept: Vec<AccessRecord> =
        records.into_iter().filter(|r| !banned.contains(&r.ip_hash)).collect();
    let removed = before - kept.len();
    (kept, removed)
}

/// Keep only records in `[start, end)`.
pub fn restrict_window(
    records: &[AccessRecord],
    start: Timestamp,
    end: Timestamp,
) -> Vec<AccessRecord> {
    assert!(start <= end, "window start after end");
    records.iter().filter(|r| r.timestamp >= start && r.timestamp < end).cloned().collect()
}

/// Keep only records for one site.
pub fn restrict_site<'a>(records: &'a [AccessRecord], sitename: &str) -> Vec<&'a AccessRecord> {
    records.iter().filter(|r| r.sitename == sitename).collect()
}

/// Identify heavy hitters that look like vulnerability scanners: IP hashes
/// whose request volume exceeds `share` of the whole dataset **and** whose
/// error-status ratio (4xx/5xx) exceeds `error_ratio`. This reproduces the
/// study's manual screening step as an automated heuristic.
pub fn find_scanner_hashes(records: &[AccessRecord], share: f64, error_ratio: f64) -> HashSet<u64> {
    assert!((0.0..=1.0).contains(&share) && (0.0..=1.0).contains(&error_ratio));
    use std::collections::HashMap;
    let mut per_ip: HashMap<u64, (u64, u64)> = HashMap::new(); // (total, errors)
    for r in records {
        let e = per_ip.entry(r.ip_hash).or_default();
        e.0 += 1;
        if r.status >= 400 {
            e.1 += 1;
        }
    }
    let n = records.len() as f64;
    per_ip
        .into_iter()
        .filter(|&(_, (total, errors))| {
            total as f64 / n > share && errors as f64 / total as f64 > error_ratio
        })
        .map(|(ip, _)| ip)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(ip: u64, t: u64, status: u16, site: &str) -> AccessRecord {
        AccessRecord {
            useragent: "x".into(),
            timestamp: Timestamp::from_unix(t),
            ip_hash: ip,
            asn: "GOOGLE".into(),
            sitename: site.into(),
            uri_path: "/".into(),
            status,
            bytes: 1,
            referer: None,
        }
    }

    #[test]
    fn ip_removal() {
        let records = vec![rec(1, 0, 200, "a"), rec(2, 1, 200, "a"), rec(1, 2, 200, "a")];
        let banned: HashSet<u64> = [1].into_iter().collect();
        let (kept, removed) = remove_ip_hashes(records, &banned);
        assert_eq!(removed, 2);
        assert_eq!(kept.len(), 1);
        assert_eq!(kept[0].ip_hash, 2);
    }

    #[test]
    fn window_restriction_half_open() {
        let records = vec![rec(1, 10, 200, "a"), rec(1, 20, 200, "a"), rec(1, 30, 200, "a")];
        let w = restrict_window(&records, Timestamp::from_unix(10), Timestamp::from_unix(30));
        assert_eq!(w.len(), 2);
    }

    #[test]
    #[should_panic(expected = "window")]
    fn inverted_window_panics() {
        let _ = restrict_window(&[], Timestamp::from_unix(10), Timestamp::from_unix(5));
    }

    #[test]
    fn site_restriction() {
        let records = vec![rec(1, 0, 200, "a"), rec(1, 1, 200, "b"), rec(1, 2, 200, "a")];
        assert_eq!(restrict_site(&records, "a").len(), 2);
        assert_eq!(restrict_site(&records, "z").len(), 0);
    }

    #[test]
    fn scanner_detection() {
        // IP 99 floods with 404s (60% of traffic, all errors); IP 1 is a
        // modest legitimate client.
        let mut records = Vec::new();
        for t in 0..60 {
            records.push(rec(99, t, 404, "a"));
        }
        for t in 0..40 {
            records.push(rec(1, t, 200, "a"));
        }
        let scanners = find_scanner_hashes(&records, 0.25, 0.5);
        assert!(scanners.contains(&99));
        assert!(!scanners.contains(&1));
    }

    #[test]
    fn quiet_dataset_has_no_scanners() {
        let records: Vec<AccessRecord> = (0..100).map(|i| rec(i, i, 200, "a")).collect();
        assert!(find_scanner_hashes(&records, 0.05, 0.5).is_empty());
    }
}

//! The access-record schema.
//!
//! One row per page access, with exactly the ten fields the study's
//! dataset carries (paper §3.1): useragent, timestamp, IP hash, ASN,
//! sitename, URI path, status code, bytes, referer.

use crate::time::Timestamp;

/// One anonymized web access.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AccessRecord {
    /// Self-reported `User-Agent` header.
    pub useragent: String,
    /// Time of the request (UTC seconds).
    pub timestamp: Timestamp,
    /// One-way keyed hash of the visitor IP (see [`crate::iphash`]).
    pub ip_hash: u64,
    /// Autonomous-system name of the visitor's network (ARIN-style).
    pub asn: String,
    /// The base website accessed (e.g. `site-03.example.edu`).
    pub sitename: String,
    /// Requested resource path; with `sitename` forms the full URL.
    pub uri_path: String,
    /// HTTP status returned.
    pub status: u16,
    /// Bytes transmitted by the server.
    pub bytes: u64,
    /// Referring URL, if any.
    pub referer: Option<String>,
}

impl AccessRecord {
    /// The τ-tuple key of the study's §4.2 stratification:
    /// (ASN, IP hash, user agent).
    pub fn tau(&self) -> (String, u64, String) {
        (self.asn.clone(), self.ip_hash, self.useragent.clone())
    }

    /// Borrowed form of the τ key, for grouping without allocation.
    pub fn tau_ref(&self) -> (&str, u64, &str) {
        (&self.asn, self.ip_hash, &self.useragent)
    }

    /// Whether this access fetched the robots.txt file itself.
    pub fn is_robots_fetch(&self) -> bool {
        self.uri_path == "/robots.txt"
    }

    /// Whether the full URL (site + path) matches another record's.
    pub fn same_url(&self, other: &AccessRecord) -> bool {
        self.sitename == other.sitename && self.uri_path == other.uri_path
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> AccessRecord {
        AccessRecord {
            useragent: "GPTBot/1.0".into(),
            timestamp: Timestamp::from_unix(1_739_318_400),
            ip_hash: 42,
            asn: "MICROSOFT-CORP-MSN-AS-BLOCK".into(),
            sitename: "site-00.example.edu".into(),
            uri_path: "/page-data/index.json".into(),
            status: 200,
            bytes: 2048,
            referer: None,
        }
    }

    #[test]
    fn tau_tuple() {
        let r = sample();
        let (asn, ip, ua) = r.tau();
        assert_eq!(asn, "MICROSOFT-CORP-MSN-AS-BLOCK");
        assert_eq!(ip, 42);
        assert_eq!(ua, "GPTBot/1.0");
        assert_eq!(r.tau_ref(), (asn.as_str(), 42, ua.as_str()));
    }

    #[test]
    fn robots_fetch_detection() {
        let mut r = sample();
        assert!(!r.is_robots_fetch());
        r.uri_path = "/robots.txt".into();
        assert!(r.is_robots_fetch());
        r.uri_path = "/robots.txt.bak".into();
        assert!(!r.is_robots_fetch());
    }

    #[test]
    fn same_url() {
        let a = sample();
        let mut b = sample();
        assert!(a.same_url(&b));
        b.uri_path = "/other".into();
        assert!(!a.same_url(&b));
    }
}

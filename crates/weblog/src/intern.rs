//! String interning for the log data model.
//!
//! At paper volume the dataset repeats the same few thousand strings
//! (user agents, ASNs, sitenames, URI paths) across hundreds of
//! thousands of rows. [`StringInterner`] stores each distinct string
//! once and hands out a stable 4-byte [`Sym`] id; [`crate::table`]
//! builds the compact row representation on top of it.
//!
//! Ids are assigned in first-intern order, so an interner filled by a
//! deterministic producer is itself deterministic — a property the
//! parallel generator's shard-merge relies on.

use std::collections::HashMap;
use std::hash::{BuildHasher, BuildHasherDefault, DefaultHasher};
use std::num::NonZeroU32;

/// An interned string id. 4 bytes, with a niche: `Option<Sym>` is also
/// 4 bytes, which keeps [`crate::table::RecordRow`] at 48 bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Sym(NonZeroU32);

impl Sym {
    /// The dense index of this symbol in its interner (0-based).
    pub fn index(self) -> usize {
        (self.0.get() - 1) as usize
    }

    pub(crate) fn from_index(index: usize) -> Sym {
        let raw = u32::try_from(index + 1).expect("interner overflow: > u32::MAX - 1 strings");
        Sym(NonZeroU32::new(raw).expect("index + 1 is nonzero"))
    }
}

/// Deterministic SipHash build (seeded with fixed keys): interner
/// behaviour must not vary between processes or runs.
type FixedState = BuildHasherDefault<DefaultHasher>;

/// A deduplicating string table with stable, dense [`Sym`] ids.
///
/// Lookup is a hash map from string hash to candidate ids, so each
/// distinct string is stored exactly once (in the id-indexed vector).
#[derive(Debug, Clone, Default)]
pub struct StringInterner {
    strings: Vec<String>,
    /// string hash → ids of strings with that hash (collision chain).
    buckets: HashMap<u64, Vec<Sym>, FixedState>,
    hasher: FixedState,
}

impl StringInterner {
    /// An empty interner.
    pub fn new() -> StringInterner {
        StringInterner::default()
    }

    /// An empty interner with room for `n` distinct strings.
    pub fn with_capacity(n: usize) -> StringInterner {
        StringInterner {
            strings: Vec::with_capacity(n),
            buckets: HashMap::with_capacity_and_hasher(n, FixedState::default()),
            hasher: FixedState::default(),
        }
    }

    fn hash_of(&self, s: &str) -> u64 {
        self.hasher.hash_one(s)
    }

    /// Intern `s`, returning its id (existing or freshly assigned).
    pub fn intern(&mut self, s: &str) -> Sym {
        let hash = self.hash_of(s);
        let bucket = self.buckets.entry(hash).or_default();
        for &sym in bucket.iter() {
            if self.strings[sym.index()] == s {
                return sym;
            }
        }
        let sym = Sym::from_index(self.strings.len());
        self.strings.push(s.to_string());
        bucket.push(sym);
        sym
    }

    /// The id of `s`, if it has been interned.
    pub fn get(&self, s: &str) -> Option<Sym> {
        let bucket = self.buckets.get(&self.hash_of(s))?;
        bucket.iter().copied().find(|&sym| self.strings[sym.index()] == s)
    }

    /// The string behind an id.
    ///
    /// # Panics
    /// If `sym` did not come from this interner (or one it was cloned
    /// from) — symbol ids are only meaningful relative to their table.
    pub fn resolve(&self, sym: Sym) -> &str {
        &self.strings[sym.index()]
    }

    /// Number of distinct strings interned.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// Whether nothing has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }

    /// All (id, string) pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (Sym, &str)> {
        self.strings.iter().enumerate().map(|(i, s)| (Sym::from_index(i), s.as_str()))
    }

    /// Byte-lexicographic rank of every symbol: `ranks()[sym.index()]`
    /// orders exactly like `resolve(sym)` under `str`'s `Ord`. Lets hot
    /// paths sort rows with integer comparisons instead of string ones.
    pub fn ranks(&self) -> Vec<u32> {
        let mut order: Vec<u32> = (0..self.strings.len() as u32).collect();
        order.sort_unstable_by(|&a, &b| self.strings[a as usize].cmp(&self.strings[b as usize]));
        let mut ranks = vec![0u32; self.strings.len()];
        for (rank, idx) in order.into_iter().enumerate() {
            ranks[idx as usize] = rank as u32;
        }
        ranks
    }

    /// Approximate heap footprint in bytes (for memory reporting).
    pub fn heap_bytes(&self) -> usize {
        let strings: usize =
            self.strings.iter().map(|s| s.capacity() + std::mem::size_of::<String>()).sum();
        let buckets: usize = self
            .buckets
            .values()
            .map(|v| std::mem::size_of::<u64>() + v.capacity() * std::mem::size_of::<Sym>())
            .sum();
        strings + buckets
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_dedups_and_resolves() {
        let mut i = StringInterner::new();
        let a = i.intern("GPTBot/1.0");
        let b = i.intern("ClaudeBot/1.0");
        let a2 = i.intern("GPTBot/1.0");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(i.resolve(a), "GPTBot/1.0");
        assert_eq!(i.resolve(b), "ClaudeBot/1.0");
        assert_eq!(i.len(), 2);
    }

    #[test]
    fn ids_are_insertion_ordered_and_dense() {
        let mut i = StringInterner::new();
        for (n, s) in ["a", "b", "c"].into_iter().enumerate() {
            assert_eq!(i.intern(s).index(), n);
        }
        let collected: Vec<(usize, &str)> = i.iter().map(|(sym, s)| (sym.index(), s)).collect();
        assert_eq!(collected, vec![(0, "a"), (1, "b"), (2, "c")]);
    }

    #[test]
    fn get_without_interning() {
        let mut i = StringInterner::new();
        assert_eq!(i.get("x"), None);
        let x = i.intern("x");
        assert_eq!(i.get("x"), Some(x));
        assert_eq!(i.get("y"), None);
    }

    #[test]
    fn empty_string_is_a_valid_symbol() {
        let mut i = StringInterner::new();
        let e = i.intern("");
        assert_eq!(i.resolve(e), "");
        assert_eq!(i.intern(""), e);
    }

    #[test]
    fn ranks_match_string_order() {
        let mut i = StringInterner::new();
        let syms: Vec<Sym> = ["pear", "apple", "banana", ""].iter().map(|s| i.intern(s)).collect();
        let ranks = i.ranks();
        let mut by_rank: Vec<(u32, &str)> =
            syms.iter().map(|&s| (ranks[s.index()], i.resolve(s))).collect();
        by_rank.sort();
        let ordered: Vec<&str> = by_rank.into_iter().map(|(_, s)| s).collect();
        assert_eq!(ordered, vec!["", "apple", "banana", "pear"]);
    }

    #[test]
    fn option_sym_is_four_bytes() {
        assert_eq!(std::mem::size_of::<Option<Sym>>(), 4);
    }

    #[test]
    fn determinism_across_instances() {
        let mut a = StringInterner::new();
        let mut b = StringInterner::new();
        for s in ["x", "y", "x", "z"] {
            assert_eq!(a.intern(s), b.intern(s));
        }
    }
}

//! K-way merge of canonically sorted row runs.
//!
//! Parallel producers (generation workers, the monitoring daemon's
//! event shards) each emit rows in the canonical order
//! `(timestamp, useragent, ip_hash, uri_path)` — as an in-memory table
//! or as sorted runs spilled to disk. [`merge_runs`] merges any number
//! of such runs into one globally ordered stream of
//! [`AccessRecord`]s pushed through [`RowSink`]s, holding only one row
//! per run in memory.
//!
//! ## Equivalence to materialize-then-sort
//!
//! The reference pipeline concatenates all runs in run order and
//! stable-sorts. The merge reproduces those bytes exactly: the heap
//! holds at most one entry per run, keyed by the canonical tuple with
//! the run index as the final tiebreak, so rows with equal canonical
//! keys drain in run order — which is exactly where a stable sort of
//! the concatenation would put them.
//!
//! [`merge_runs_parallel`] keeps that guarantee while spreading the heap
//! work over worker threads: runs are partitioned into **contiguous**
//! groups, each group runs its own local heap merge on a worker and
//! streams `(key, record)` pairs through a bounded channel, and the
//! calling thread runs a final tournament over the group heads with the
//! group index as the tiebreak. Because groups are contiguous in run
//! order, (group index, local run index) orders equal-key rows exactly
//! like the global run index does — so the output is byte-identical to
//! [`merge_runs`] regardless of thread scheduling, and memory stays
//! bounded by the channel depth per group.

use std::cmp::Reverse;
use std::collections::{BTreeSet, BinaryHeap, HashMap};
use std::io;
use std::sync::mpsc::SyncSender;
use std::sync::Arc;

use crate::codec::DecodeError;
use crate::intern::StringInterner;
use crate::record::AccessRecord;
use crate::sink::RowSink;
use crate::stream::RowStream;
use crate::table::{LogTable, RecordRow};
use crate::time::Timestamp;

/// One canonically sorted run of rows plus the interner its symbols
/// belong to.
pub struct MergeRun {
    interner: Arc<StringInterner>,
    source: Source,
}

enum Source {
    Rows(std::vec::IntoIter<RecordRow>),
    Stream(Box<dyn RowStream + Send>),
}

impl MergeRun {
    /// A run backed by an in-memory table. The table is sorted
    /// canonically here; callers need not pre-sort.
    pub fn from_table(mut table: LogTable) -> MergeRun {
        table.sort_canonical();
        let (interner, rows) = table.into_parts();
        MergeRun { interner: Arc::new(interner), source: Source::Rows(rows.into_iter()) }
    }

    /// A run backed by a stream whose rows are **already** in canonical
    /// order and whose symbols are valid in `interner` (which must be
    /// an append-only superset of the stream's own dictionary — e.g.
    /// the final interner of the worker that spilled the run).
    pub fn from_sorted_stream(
        interner: Arc<StringInterner>,
        stream: Box<dyn RowStream + Send>,
    ) -> MergeRun {
        MergeRun { interner, source: Source::Stream(stream) }
    }

    fn next(&mut self) -> Option<Result<RecordRow, DecodeError>> {
        match &mut self.source {
            Source::Rows(rows) => rows.next().map(Ok),
            Source::Stream(stream) => stream.next_row(),
        }
    }
}

fn materialize(interner: &StringInterner, row: &RecordRow) -> AccessRecord {
    AccessRecord {
        useragent: interner.resolve(row.useragent).to_string(),
        timestamp: row.timestamp,
        ip_hash: row.ip_hash,
        asn: interner.resolve(row.asn).to_string(),
        sitename: interner.resolve(row.sitename).to_string(),
        uri_path: interner.resolve(row.uri_path).to_string(),
        status: row.status,
        bytes: row.bytes,
        referer: row.referer.map(|s| interner.resolve(s).to_string()),
    }
}

/// Merge canonically sorted `runs` into every sink, in the global
/// canonical order with run index as the tiebreak (see module docs for
/// why that reproduces materialize-then-stable-sort byte-for-byte).
/// Calls [`RowSink::finish`] on every sink after the last row and
/// returns the number of rows merged. Decode errors from stream-backed
/// runs surface as [`io::ErrorKind::InvalidData`].
pub fn merge_runs(mut runs: Vec<MergeRun>, sinks: &mut [&mut dyn RowSink]) -> io::Result<u64> {
    let obs = botscope_obs::global();
    let _span = obs.span("weblog_merge");
    obs.counter("weblog_merge_runs_total").add(runs.len() as u64);
    let per_run_ranks = build_rank_tables(&runs);

    // (timestamp, ua rank, ip hash, path rank, run index).
    type Key = (Timestamp, u32, u64, u32, usize);
    let key_of = |ranks: &[u32], row: &RecordRow, run: usize| -> Key {
        (row.timestamp, ranks[row.useragent.index()], row.ip_hash, ranks[row.uri_path.index()], run)
    };
    let decode_err = |e: DecodeError| io::Error::new(io::ErrorKind::InvalidData, e.to_string());

    let mut heap: BinaryHeap<Reverse<Key>> = BinaryHeap::with_capacity(runs.len());
    let mut current: Vec<Option<RecordRow>> = runs.iter().map(|_| None).collect();
    for (i, run) in runs.iter_mut().enumerate() {
        if let Some(row) = run.next() {
            let row = row.map_err(decode_err)?;
            heap.push(Reverse(key_of(&per_run_ranks[i], &row, i)));
            current[i] = Some(row);
        }
    }

    let mut rows = 0u64;
    while let Some(Reverse(key)) = heap.pop() {
        let i = key.4;
        let row = current[i].take().expect("heap entry implies a current row");
        let record = materialize(&runs[i].interner, &row);
        for sink in sinks.iter_mut() {
            sink.write_row(&record)?;
        }
        rows += 1;
        if let Some(next) = runs[i].next() {
            let next = next.map_err(decode_err)?;
            heap.push(Reverse(key_of(&per_run_ranks[i], &next, i)));
            current[i] = Some(next);
        }
    }
    for sink in sinks.iter_mut() {
        sink.finish()?;
    }
    obs.counter("weblog_merge_rows_total").add(rows);
    Ok(rows)
}

/// Global byte-lexicographic ranks across every run's interner, so heap
/// comparisons are over integers, never strings. Stream-backed runs must
/// supply their final interner up front (the `from_sorted_stream`
/// contract), which makes the rank tables total. Runs sharing one `Arc`
/// interner (a spilling worker's runs all do) share one rank table:
/// per-run cost must not scale with dictionary size, or a wide merge over
/// a large-dictionary unit blows the memory budget.
fn build_rank_tables(runs: &[MergeRun]) -> Vec<Arc<Vec<u32>>> {
    let mut seen: BTreeSet<*const StringInterner> = BTreeSet::new();
    let mut global: BTreeSet<&str> = BTreeSet::new();
    for run in runs {
        if seen.insert(Arc::as_ptr(&run.interner)) {
            for (_, s) in run.interner.iter() {
                global.insert(s);
            }
        }
    }
    let rank_of: HashMap<&str, u32> =
        global.into_iter().enumerate().map(|(i, s)| (s, i as u32)).collect();
    let mut cache: HashMap<*const StringInterner, Arc<Vec<u32>>> = HashMap::new();
    runs.iter()
        .map(|run| {
            cache
                .entry(Arc::as_ptr(&run.interner))
                .or_insert_with(|| Arc::new(run.interner.iter().map(|(_, s)| rank_of[s]).collect()))
                .clone()
        })
        .collect()
}

/// Canonical sort key without a run tiebreak: what a group worker ships
/// alongside each materialized record.
type GroupKey = (Timestamp, u32, u64, u32);

/// Bounded depth of each group's output channel. Memory during a parallel
/// merge is `groups × CHANNEL_DEPTH` in-flight records plus one row per
/// run — still bounded, never a materialized table.
const CHANNEL_DEPTH: usize = 1024;

/// [`merge_runs`] with the per-run heap work fanned over `workers`
/// threads. Output is **byte-identical** to the serial merge at any
/// worker count and under any thread scheduling (see module docs); falls
/// back to the serial path when `workers <= 1` or there are fewer than
/// two runs.
pub fn merge_runs_parallel(
    runs: Vec<MergeRun>,
    sinks: &mut [&mut dyn RowSink],
    workers: usize,
) -> io::Result<u64> {
    let groups = workers.min(runs.len());
    if groups <= 1 {
        return merge_runs(runs, sinks);
    }
    let obs = botscope_obs::global();
    let _span = obs.span("weblog_merge_parallel");
    obs.counter("weblog_merge_runs_total").add(runs.len() as u64);
    obs.counter("weblog_merge_groups_total").add(groups as u64);
    let per_run_ranks = build_rank_tables(&runs);

    // Contiguous partition: group g takes the next `base (+1)` runs in
    // run order. Contiguity is what makes (group, local run) order equal
    // to global run order for equal keys.
    let mut parts: Vec<Vec<(MergeRun, Arc<Vec<u32>>)>> = Vec::with_capacity(groups);
    let base = runs.len() / groups;
    let extra = runs.len() % groups;
    let mut paired: std::vec::IntoIter<(MergeRun, Arc<Vec<u32>>)> =
        runs.into_iter().zip(per_run_ranks).collect::<Vec<_>>().into_iter();
    for g in 0..groups {
        let take = base + usize::from(g < extra);
        parts.push(paired.by_ref().take(take).collect());
    }

    let mut rows = 0u64;
    let merged: io::Result<()> = std::thread::scope(|scope| {
        let mut rxs = Vec::with_capacity(groups);
        for part in parts {
            let (tx, rx) = std::sync::mpsc::sync_channel(CHANNEL_DEPTH);
            scope.spawn(move || group_merge(part, &tx));
            rxs.push(rx);
        }

        // Final tournament over the group heads: group index breaks ties.
        let mut heap: BinaryHeap<Reverse<(GroupKey, usize)>> = BinaryHeap::with_capacity(groups);
        let mut current: Vec<Option<AccessRecord>> = (0..groups).map(|_| None).collect();
        let pull = |g: usize,
                    heap: &mut BinaryHeap<Reverse<(GroupKey, usize)>>,
                    current: &mut Vec<Option<AccessRecord>>|
         -> io::Result<()> {
            match rxs[g].recv() {
                Ok(Ok((key, record))) => {
                    heap.push(Reverse((key, g)));
                    current[g] = Some(record);
                    Ok(())
                }
                Ok(Err(e)) => Err(e),
                // Disconnect: the group is exhausted.
                Err(_) => Ok(()),
            }
        };
        for g in 0..groups {
            pull(g, &mut heap, &mut current)?;
        }
        while let Some(Reverse((_, g))) = heap.pop() {
            let record = current[g].take().expect("heap entry implies a current record");
            for sink in sinks.iter_mut() {
                sink.write_row(&record)?;
            }
            rows += 1;
            pull(g, &mut heap, &mut current)?;
        }
        Ok(())
        // An early `?` drops `rxs` here; workers then fail their `send`
        // and exit, so the scope join cannot deadlock.
    });
    merged?;
    for sink in sinks.iter_mut() {
        sink.finish()?;
    }
    obs.counter("weblog_merge_rows_total").add(rows);
    Ok(rows)
}

/// One group worker: a local heap merge over its contiguous slice of
/// runs, shipping materialized records in canonical order. Local run
/// index breaks equal-key ties, exactly like the serial merge does.
fn group_merge(
    mut part: Vec<(MergeRun, Arc<Vec<u32>>)>,
    tx: &SyncSender<io::Result<(GroupKey, AccessRecord)>>,
) {
    type Key = (Timestamp, u32, u64, u32, usize);
    let key_of = |ranks: &[u32], row: &RecordRow, run: usize| -> Key {
        (row.timestamp, ranks[row.useragent.index()], row.ip_hash, ranks[row.uri_path.index()], run)
    };
    let decode_err = |e: DecodeError| io::Error::new(io::ErrorKind::InvalidData, e.to_string());

    let mut heap: BinaryHeap<Reverse<Key>> = BinaryHeap::with_capacity(part.len());
    let mut current: Vec<Option<RecordRow>> = part.iter().map(|_| None).collect();
    for (i, (run, ranks)) in part.iter_mut().enumerate() {
        match run.next() {
            Some(Ok(row)) => {
                heap.push(Reverse(key_of(ranks, &row, i)));
                current[i] = Some(row);
            }
            Some(Err(e)) => {
                let _ = tx.send(Err(decode_err(e)));
                return;
            }
            None => {}
        }
    }
    while let Some(Reverse(key)) = heap.pop() {
        let i = key.4;
        let row = current[i].take().expect("heap entry implies a current row");
        let record = materialize(&part[i].0.interner, &row);
        if tx.send(Ok(((key.0, key.1, key.2, key.3), record))).is_err() {
            // Receiver gone (error or early exit downstream): stop quietly.
            return;
        }
        match part[i].0.next() {
            Some(Ok(next)) => {
                let ranks = &part[i].1;
                heap.push(Reverse(key_of(ranks, &next, i)));
                current[i] = Some(next);
            }
            Some(Err(e)) => {
                let _ = tx.send(Err(decode_err(e)));
                return;
            }
            None => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::TableSink;

    fn rec(ua: &str, ip: u64, t: u64, path: &str) -> AccessRecord {
        AccessRecord {
            useragent: ua.into(),
            timestamp: Timestamp::from_unix(t),
            ip_hash: ip,
            asn: "GOOGLE".into(),
            sitename: "site-00.example.edu".into(),
            uri_path: path.into(),
            status: 200,
            bytes: 64,
            referer: None,
        }
    }

    /// The reference: concatenate run record sets in run order, then
    /// stable-sort by the canonical tuple.
    fn reference(runs: &[Vec<AccessRecord>]) -> Vec<AccessRecord> {
        let mut all: Vec<AccessRecord> = runs.iter().flatten().cloned().collect();
        all.sort_by(|a, b| {
            (a.timestamp, &a.useragent, a.ip_hash, &a.uri_path).cmp(&(
                b.timestamp,
                &b.useragent,
                b.ip_hash,
                &b.uri_path,
            ))
        });
        all
    }

    fn run_sets() -> Vec<Vec<AccessRecord>> {
        vec![
            vec![rec("b", 2, 30, "/x"), rec("a", 1, 10, "/y"), rec("a", 1, 10, "/y")],
            vec![rec("a", 1, 10, "/y"), rec("c", 3, 10, "/z")],
            vec![],
            vec![rec("a", 9, 5, "/q"), rec("b", 2, 30, "/x")],
        ]
    }

    #[test]
    fn table_runs_match_reference() {
        let sets = run_sets();
        let runs: Vec<MergeRun> =
            sets.iter().map(|rs| MergeRun::from_table(LogTable::from_records(rs))).collect();
        let mut sink = TableSink::new();
        let mut sinks: Vec<&mut dyn RowSink> = vec![&mut sink];
        let n = merge_runs(runs, &mut sinks).unwrap();
        assert_eq!(n, 7);
        assert_eq!(sink.table.to_records(), reference(&sets));
    }

    #[test]
    fn stream_runs_match_table_runs() {
        let sets = run_sets();
        // Pre-sorted tables behind TableRowStream, interner shared.
        let tables: Vec<LogTable> = sets
            .iter()
            .map(|rs| {
                let mut t = LogTable::from_records(rs);
                t.sort_canonical();
                t
            })
            .collect();
        let mut bins: Vec<Vec<u8>> = Vec::new();
        for t in &tables {
            let mut bytes = Vec::new();
            crate::colfmt::write_table(&mut bytes, t).unwrap();
            bins.push(bytes);
        }
        let runs: Vec<MergeRun> = tables
            .iter()
            .zip(&bins)
            .map(|(t, bytes)| {
                let reader =
                    crate::colfmt::BinReader::new(std::io::Cursor::new(bytes.clone())).unwrap();
                MergeRun::from_sorted_stream(Arc::new(t.interner().clone()), Box::new(reader))
            })
            .collect();
        let mut sink = TableSink::new();
        let mut sinks: Vec<&mut dyn RowSink> = vec![&mut sink];
        merge_runs(runs, &mut sinks).unwrap();
        assert_eq!(sink.table.to_records(), reference(&sets));
    }

    #[test]
    fn raw_stream_runs_sharing_one_interner_match_reference() {
        // The engine's spill shape: one unit interner shared (by Arc)
        // across several runs, each run read back in raw mode so ids
        // pass through as-written. Rank tables are deduplicated per
        // interner; output must still match the reference sort.
        let sets = run_sets();
        let mut unit = LogTable::new();
        let mut bins: Vec<Vec<u8>> = Vec::new();
        for rs in &sets {
            // Each run interns into the same growing unit dictionary,
            // like ShardWriter keeping its interner across flushes.
            let rows: Vec<RecordRow> = rs
                .iter()
                .map(|r| {
                    unit.push_record(r);
                    *unit.rows().last().expect("pushed")
                })
                .collect();
            let mut run = LogTable::from_parts(unit.interner().clone(), rows);
            run.sort_canonical();
            let mut bytes = Vec::new();
            crate::colfmt::write_table(&mut bytes, &run).unwrap();
            bins.push(bytes);
        }
        let shared = Arc::new(unit.interner().clone());
        let runs: Vec<MergeRun> = bins
            .iter()
            .map(|bytes| {
                let reader =
                    crate::colfmt::BinReader::new_raw(std::io::Cursor::new(bytes.clone())).unwrap();
                MergeRun::from_sorted_stream(shared.clone(), Box::new(reader))
            })
            .collect();
        let mut sink = TableSink::new();
        let mut sinks: Vec<&mut dyn RowSink> = vec![&mut sink];
        merge_runs(runs, &mut sinks).unwrap();
        assert_eq!(sink.table.to_records(), reference(&sets));
    }

    #[test]
    fn equal_keys_drain_in_run_order() {
        // Two runs with identical canonical keys but distinguishable
        // payloads: run order must decide.
        let a = vec![AccessRecord { bytes: 111, ..rec("a", 1, 10, "/y") }];
        let b = vec![AccessRecord { bytes: 222, ..rec("a", 1, 10, "/y") }];
        let runs = vec![
            MergeRun::from_table(LogTable::from_records(&a)),
            MergeRun::from_table(LogTable::from_records(&b)),
        ];
        let mut sink = TableSink::new();
        let mut sinks: Vec<&mut dyn RowSink> = vec![&mut sink];
        merge_runs(runs, &mut sinks).unwrap();
        let out = sink.table.to_records();
        assert_eq!(out[0].bytes, 111);
        assert_eq!(out[1].bytes, 222);
    }

    #[test]
    fn empty_input() {
        let mut sink = TableSink::new();
        let mut sinks: Vec<&mut dyn RowSink> = vec![&mut sink];
        assert_eq!(merge_runs(Vec::new(), &mut sinks).unwrap(), 0);
        assert!(sink.table.is_empty());
        let mut sinks: Vec<&mut dyn RowSink> = vec![&mut sink];
        assert_eq!(merge_runs_parallel(Vec::new(), &mut sinks, 4).unwrap(), 0);
    }

    #[test]
    fn parallel_merge_matches_serial_at_every_worker_count() {
        let sets = run_sets();
        for workers in [1, 2, 3, 4, 8] {
            let runs: Vec<MergeRun> =
                sets.iter().map(|rs| MergeRun::from_table(LogTable::from_records(rs))).collect();
            let mut sink = TableSink::new();
            let mut sinks: Vec<&mut dyn RowSink> = vec![&mut sink];
            let n = merge_runs_parallel(runs, &mut sinks, workers).unwrap();
            assert_eq!(n, 7, "workers={workers}");
            assert_eq!(sink.table.to_records(), reference(&sets), "workers={workers}");
        }
    }

    #[test]
    fn parallel_merge_keeps_equal_keys_in_run_order() {
        // Four runs of identical canonical keys, distinguishable by
        // payload; every grouping must preserve global run order.
        let sets: Vec<Vec<AccessRecord>> = (0..4u64)
            .map(|i| vec![AccessRecord { bytes: 100 + i, ..rec("a", 1, 10, "/y") }])
            .collect();
        for workers in [2, 3, 4] {
            let runs: Vec<MergeRun> =
                sets.iter().map(|rs| MergeRun::from_table(LogTable::from_records(rs))).collect();
            let mut sink = TableSink::new();
            let mut sinks: Vec<&mut dyn RowSink> = vec![&mut sink];
            merge_runs_parallel(runs, &mut sinks, workers).unwrap();
            let bytes: Vec<u64> = sink.table.to_records().iter().map(|r| r.bytes).collect();
            assert_eq!(bytes, vec![100, 101, 102, 103], "workers={workers}");
        }
    }

    #[test]
    fn parallel_merge_over_raw_streams_matches_reference() {
        // The engine's spill shape under the parallel merge: shared unit
        // interner, raw-mode binary runs, two workers.
        let sets = run_sets();
        let mut unit = LogTable::new();
        let mut bins: Vec<Vec<u8>> = Vec::new();
        for rs in &sets {
            let rows: Vec<RecordRow> = rs
                .iter()
                .map(|r| {
                    unit.push_record(r);
                    *unit.rows().last().expect("pushed")
                })
                .collect();
            let mut run = LogTable::from_parts(unit.interner().clone(), rows);
            run.sort_canonical();
            let mut bytes = Vec::new();
            crate::colfmt::write_table(&mut bytes, &run).unwrap();
            bins.push(bytes);
        }
        let shared = Arc::new(unit.interner().clone());
        let runs: Vec<MergeRun> = bins
            .iter()
            .map(|bytes| {
                let reader =
                    crate::colfmt::BinReader::new_raw(std::io::Cursor::new(bytes.clone())).unwrap();
                MergeRun::from_sorted_stream(shared.clone(), Box::new(reader))
            })
            .collect();
        let mut sink = TableSink::new();
        let mut sinks: Vec<&mut dyn RowSink> = vec![&mut sink];
        merge_runs_parallel(runs, &mut sinks, 2).unwrap();
        assert_eq!(sink.table.to_records(), reference(&sets));
    }

    #[test]
    fn parallel_merge_surfaces_decode_errors() {
        let mut table = LogTable::from_records(&[rec("a", 1, 10, "/y"), rec("b", 2, 20, "/z")]);
        table.sort_canonical();
        let mut bytes = Vec::new();
        crate::colfmt::write_table(&mut bytes, &table).unwrap();
        bytes.pop();
        bytes.truncate(bytes.len().saturating_sub(10));
        let reader = crate::colfmt::BinReader::new(std::io::Cursor::new(bytes)).unwrap();
        let bad =
            MergeRun::from_sorted_stream(Arc::new(table.interner().clone()), Box::new(reader));
        let good = MergeRun::from_table(LogTable::from_records(&[rec("c", 3, 30, "/q")]));
        let mut sink = TableSink::new();
        let mut sinks: Vec<&mut dyn RowSink> = vec![&mut sink];
        let e = merge_runs_parallel(vec![bad, good], &mut sinks, 2).unwrap_err();
        assert_eq!(e.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn decode_error_surfaces_as_io_error() {
        let mut table = LogTable::from_records(&[rec("a", 1, 10, "/y")]);
        table.sort_canonical();
        let mut bytes = Vec::new();
        crate::colfmt::write_table(&mut bytes, &table).unwrap();
        bytes.pop(); // drop the end marker
        bytes.truncate(bytes.len().saturating_sub(10)); // cut into the row
        let reader = crate::colfmt::BinReader::new(std::io::Cursor::new(bytes)).unwrap();
        let run =
            MergeRun::from_sorted_stream(Arc::new(table.interner().clone()), Box::new(reader));
        let mut sink = TableSink::new();
        let mut sinks: Vec<&mut dyn RowSink> = vec![&mut sink];
        let e = merge_runs(vec![run], &mut sinks).unwrap_err();
        assert_eq!(e.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn single_table_run_equals_sort() {
        let records = run_sets().concat();
        let runs = vec![MergeRun::from_table(LogTable::from_records(&records))];
        let mut sink = TableSink::new();
        let mut sinks: Vec<&mut dyn RowSink> = vec![&mut sink];
        merge_runs(runs, &mut sinks).unwrap();
        let mut expect = LogTable::from_records(&records);
        expect.sort_canonical();
        assert_eq!(sink.table.to_records(), expect.to_records());
    }

    #[test]
    fn sorted_table_stream_run_matches_table_run() {
        let records = run_sets().concat();
        let mut table = LogTable::from_records(&records);
        table.sort_canonical();
        // Stream-backed run over the same sorted table.
        let bytes = {
            let mut b = Vec::new();
            crate::colfmt::write_table(&mut b, &table).unwrap();
            b
        };
        let reader = crate::colfmt::BinReader::new(std::io::Cursor::new(bytes)).unwrap();
        let stream_run =
            MergeRun::from_sorted_stream(Arc::new(table.interner().clone()), Box::new(reader));
        let table_run = MergeRun::from_table(table.clone());
        let mut a = TableSink::new();
        let mut b = TableSink::new();
        {
            let mut sinks: Vec<&mut dyn RowSink> = vec![&mut a];
            merge_runs(vec![stream_run], &mut sinks).unwrap();
        }
        {
            let mut sinks: Vec<&mut dyn RowSink> = vec![&mut b];
            merge_runs(vec![table_run], &mut sinks).unwrap();
        }
        assert_eq!(a.table.to_records(), b.table.to_records());
    }
}

//! K-way merge of canonically sorted row runs.
//!
//! Parallel producers (generation workers, the monitoring daemon's
//! event shards) each emit rows in the canonical order
//! `(timestamp, useragent, ip_hash, uri_path)` — as an in-memory table
//! or as sorted runs spilled to disk. [`merge_runs`] merges any number
//! of such runs into one globally ordered stream of
//! [`AccessRecord`]s pushed through [`RowSink`]s, holding only one row
//! per run in memory.
//!
//! ## Equivalence to materialize-then-sort
//!
//! The reference pipeline concatenates all runs in run order and
//! stable-sorts. The merge reproduces those bytes exactly: the heap
//! holds at most one entry per run, keyed by the canonical tuple with
//! the run index as the final tiebreak, so rows with equal canonical
//! keys drain in run order — which is exactly where a stable sort of
//! the concatenation would put them.

use std::cmp::Reverse;
use std::collections::{BTreeSet, BinaryHeap, HashMap};
use std::io;
use std::sync::Arc;

use crate::codec::DecodeError;
use crate::intern::StringInterner;
use crate::record::AccessRecord;
use crate::sink::RowSink;
use crate::stream::RowStream;
use crate::table::{LogTable, RecordRow};
use crate::time::Timestamp;

/// One canonically sorted run of rows plus the interner its symbols
/// belong to.
pub struct MergeRun {
    interner: Arc<StringInterner>,
    source: Source,
}

enum Source {
    Rows(std::vec::IntoIter<RecordRow>),
    Stream(Box<dyn RowStream>),
}

impl MergeRun {
    /// A run backed by an in-memory table. The table is sorted
    /// canonically here; callers need not pre-sort.
    pub fn from_table(mut table: LogTable) -> MergeRun {
        table.sort_canonical();
        let (interner, rows) = table.into_parts();
        MergeRun { interner: Arc::new(interner), source: Source::Rows(rows.into_iter()) }
    }

    /// A run backed by a stream whose rows are **already** in canonical
    /// order and whose symbols are valid in `interner` (which must be
    /// an append-only superset of the stream's own dictionary — e.g.
    /// the final interner of the worker that spilled the run).
    pub fn from_sorted_stream(
        interner: Arc<StringInterner>,
        stream: Box<dyn RowStream>,
    ) -> MergeRun {
        MergeRun { interner, source: Source::Stream(stream) }
    }

    fn next(&mut self) -> Option<Result<RecordRow, DecodeError>> {
        match &mut self.source {
            Source::Rows(rows) => rows.next().map(Ok),
            Source::Stream(stream) => stream.next_row(),
        }
    }
}

fn materialize(interner: &StringInterner, row: &RecordRow) -> AccessRecord {
    AccessRecord {
        useragent: interner.resolve(row.useragent).to_string(),
        timestamp: row.timestamp,
        ip_hash: row.ip_hash,
        asn: interner.resolve(row.asn).to_string(),
        sitename: interner.resolve(row.sitename).to_string(),
        uri_path: interner.resolve(row.uri_path).to_string(),
        status: row.status,
        bytes: row.bytes,
        referer: row.referer.map(|s| interner.resolve(s).to_string()),
    }
}

/// Merge canonically sorted `runs` into every sink, in the global
/// canonical order with run index as the tiebreak (see module docs for
/// why that reproduces materialize-then-stable-sort byte-for-byte).
/// Calls [`RowSink::finish`] on every sink after the last row and
/// returns the number of rows merged. Decode errors from stream-backed
/// runs surface as [`io::ErrorKind::InvalidData`].
pub fn merge_runs(mut runs: Vec<MergeRun>, sinks: &mut [&mut dyn RowSink]) -> io::Result<u64> {
    // Global byte-lexicographic ranks across every run's interner, so
    // the heap compares integers, never strings. Stream-backed runs
    // must supply their final interner up front (the `from_sorted_stream`
    // contract), which makes the rank tables total. Runs sharing one
    // `Arc` interner (a spilling worker's runs all do) share one rank
    // table: per-run cost must not scale with dictionary size, or a
    // wide merge over a large-dictionary unit blows the memory budget.
    let per_run_ranks: Vec<Arc<Vec<u32>>> = {
        let mut seen: BTreeSet<*const StringInterner> = BTreeSet::new();
        let mut global: BTreeSet<&str> = BTreeSet::new();
        for run in &runs {
            if seen.insert(Arc::as_ptr(&run.interner)) {
                for (_, s) in run.interner.iter() {
                    global.insert(s);
                }
            }
        }
        let rank_of: HashMap<&str, u32> =
            global.into_iter().enumerate().map(|(i, s)| (s, i as u32)).collect();
        let mut cache: HashMap<*const StringInterner, Arc<Vec<u32>>> = HashMap::new();
        runs.iter()
            .map(|run| {
                cache
                    .entry(Arc::as_ptr(&run.interner))
                    .or_insert_with(|| {
                        Arc::new(run.interner.iter().map(|(_, s)| rank_of[s]).collect())
                    })
                    .clone()
            })
            .collect()
    };

    // (timestamp, ua rank, ip hash, path rank, run index).
    type Key = (Timestamp, u32, u64, u32, usize);
    let key_of = |ranks: &[u32], row: &RecordRow, run: usize| -> Key {
        (row.timestamp, ranks[row.useragent.index()], row.ip_hash, ranks[row.uri_path.index()], run)
    };
    let decode_err = |e: DecodeError| io::Error::new(io::ErrorKind::InvalidData, e.to_string());

    let mut heap: BinaryHeap<Reverse<Key>> = BinaryHeap::with_capacity(runs.len());
    let mut current: Vec<Option<RecordRow>> = runs.iter().map(|_| None).collect();
    for (i, run) in runs.iter_mut().enumerate() {
        if let Some(row) = run.next() {
            let row = row.map_err(decode_err)?;
            heap.push(Reverse(key_of(&per_run_ranks[i], &row, i)));
            current[i] = Some(row);
        }
    }

    let mut rows = 0u64;
    while let Some(Reverse(key)) = heap.pop() {
        let i = key.4;
        let row = current[i].take().expect("heap entry implies a current row");
        let record = materialize(&runs[i].interner, &row);
        for sink in sinks.iter_mut() {
            sink.write_row(&record)?;
        }
        rows += 1;
        if let Some(next) = runs[i].next() {
            let next = next.map_err(decode_err)?;
            heap.push(Reverse(key_of(&per_run_ranks[i], &next, i)));
            current[i] = Some(next);
        }
    }
    for sink in sinks.iter_mut() {
        sink.finish()?;
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::TableSink;

    fn rec(ua: &str, ip: u64, t: u64, path: &str) -> AccessRecord {
        AccessRecord {
            useragent: ua.into(),
            timestamp: Timestamp::from_unix(t),
            ip_hash: ip,
            asn: "GOOGLE".into(),
            sitename: "site-00.example.edu".into(),
            uri_path: path.into(),
            status: 200,
            bytes: 64,
            referer: None,
        }
    }

    /// The reference: concatenate run record sets in run order, then
    /// stable-sort by the canonical tuple.
    fn reference(runs: &[Vec<AccessRecord>]) -> Vec<AccessRecord> {
        let mut all: Vec<AccessRecord> = runs.iter().flatten().cloned().collect();
        all.sort_by(|a, b| {
            (a.timestamp, &a.useragent, a.ip_hash, &a.uri_path).cmp(&(
                b.timestamp,
                &b.useragent,
                b.ip_hash,
                &b.uri_path,
            ))
        });
        all
    }

    fn run_sets() -> Vec<Vec<AccessRecord>> {
        vec![
            vec![rec("b", 2, 30, "/x"), rec("a", 1, 10, "/y"), rec("a", 1, 10, "/y")],
            vec![rec("a", 1, 10, "/y"), rec("c", 3, 10, "/z")],
            vec![],
            vec![rec("a", 9, 5, "/q"), rec("b", 2, 30, "/x")],
        ]
    }

    #[test]
    fn table_runs_match_reference() {
        let sets = run_sets();
        let runs: Vec<MergeRun> =
            sets.iter().map(|rs| MergeRun::from_table(LogTable::from_records(rs))).collect();
        let mut sink = TableSink::new();
        let mut sinks: Vec<&mut dyn RowSink> = vec![&mut sink];
        let n = merge_runs(runs, &mut sinks).unwrap();
        assert_eq!(n, 7);
        assert_eq!(sink.table.to_records(), reference(&sets));
    }

    #[test]
    fn stream_runs_match_table_runs() {
        let sets = run_sets();
        // Pre-sorted tables behind TableRowStream, interner shared.
        let tables: Vec<LogTable> = sets
            .iter()
            .map(|rs| {
                let mut t = LogTable::from_records(rs);
                t.sort_canonical();
                t
            })
            .collect();
        let mut bins: Vec<Vec<u8>> = Vec::new();
        for t in &tables {
            let mut bytes = Vec::new();
            crate::colfmt::write_table(&mut bytes, t).unwrap();
            bins.push(bytes);
        }
        let runs: Vec<MergeRun> = tables
            .iter()
            .zip(&bins)
            .map(|(t, bytes)| {
                let reader =
                    crate::colfmt::BinReader::new(std::io::Cursor::new(bytes.clone())).unwrap();
                MergeRun::from_sorted_stream(Arc::new(t.interner().clone()), Box::new(reader))
            })
            .collect();
        let mut sink = TableSink::new();
        let mut sinks: Vec<&mut dyn RowSink> = vec![&mut sink];
        merge_runs(runs, &mut sinks).unwrap();
        assert_eq!(sink.table.to_records(), reference(&sets));
    }

    #[test]
    fn raw_stream_runs_sharing_one_interner_match_reference() {
        // The engine's spill shape: one unit interner shared (by Arc)
        // across several runs, each run read back in raw mode so ids
        // pass through as-written. Rank tables are deduplicated per
        // interner; output must still match the reference sort.
        let sets = run_sets();
        let mut unit = LogTable::new();
        let mut bins: Vec<Vec<u8>> = Vec::new();
        for rs in &sets {
            // Each run interns into the same growing unit dictionary,
            // like ShardWriter keeping its interner across flushes.
            let rows: Vec<RecordRow> = rs
                .iter()
                .map(|r| {
                    unit.push_record(r);
                    *unit.rows().last().expect("pushed")
                })
                .collect();
            let mut run = LogTable::from_parts(unit.interner().clone(), rows);
            run.sort_canonical();
            let mut bytes = Vec::new();
            crate::colfmt::write_table(&mut bytes, &run).unwrap();
            bins.push(bytes);
        }
        let shared = Arc::new(unit.interner().clone());
        let runs: Vec<MergeRun> = bins
            .iter()
            .map(|bytes| {
                let reader =
                    crate::colfmt::BinReader::new_raw(std::io::Cursor::new(bytes.clone())).unwrap();
                MergeRun::from_sorted_stream(shared.clone(), Box::new(reader))
            })
            .collect();
        let mut sink = TableSink::new();
        let mut sinks: Vec<&mut dyn RowSink> = vec![&mut sink];
        merge_runs(runs, &mut sinks).unwrap();
        assert_eq!(sink.table.to_records(), reference(&sets));
    }

    #[test]
    fn equal_keys_drain_in_run_order() {
        // Two runs with identical canonical keys but distinguishable
        // payloads: run order must decide.
        let a = vec![AccessRecord { bytes: 111, ..rec("a", 1, 10, "/y") }];
        let b = vec![AccessRecord { bytes: 222, ..rec("a", 1, 10, "/y") }];
        let runs = vec![
            MergeRun::from_table(LogTable::from_records(&a)),
            MergeRun::from_table(LogTable::from_records(&b)),
        ];
        let mut sink = TableSink::new();
        let mut sinks: Vec<&mut dyn RowSink> = vec![&mut sink];
        merge_runs(runs, &mut sinks).unwrap();
        let out = sink.table.to_records();
        assert_eq!(out[0].bytes, 111);
        assert_eq!(out[1].bytes, 222);
    }

    #[test]
    fn empty_input() {
        let mut sink = TableSink::new();
        let mut sinks: Vec<&mut dyn RowSink> = vec![&mut sink];
        assert_eq!(merge_runs(Vec::new(), &mut sinks).unwrap(), 0);
        assert!(sink.table.is_empty());
    }

    #[test]
    fn decode_error_surfaces_as_io_error() {
        let mut table = LogTable::from_records(&[rec("a", 1, 10, "/y")]);
        table.sort_canonical();
        let mut bytes = Vec::new();
        crate::colfmt::write_table(&mut bytes, &table).unwrap();
        bytes.pop(); // drop the end marker
        bytes.truncate(bytes.len().saturating_sub(10)); // cut into the row
        let reader = crate::colfmt::BinReader::new(std::io::Cursor::new(bytes)).unwrap();
        let run =
            MergeRun::from_sorted_stream(Arc::new(table.interner().clone()), Box::new(reader));
        let mut sink = TableSink::new();
        let mut sinks: Vec<&mut dyn RowSink> = vec![&mut sink];
        let e = merge_runs(vec![run], &mut sinks).unwrap_err();
        assert_eq!(e.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn single_table_run_equals_sort() {
        let records = run_sets().concat();
        let runs = vec![MergeRun::from_table(LogTable::from_records(&records))];
        let mut sink = TableSink::new();
        let mut sinks: Vec<&mut dyn RowSink> = vec![&mut sink];
        merge_runs(runs, &mut sinks).unwrap();
        let mut expect = LogTable::from_records(&records);
        expect.sort_canonical();
        assert_eq!(sink.table.to_records(), expect.to_records());
    }

    #[test]
    fn sorted_table_stream_run_matches_table_run() {
        let records = run_sets().concat();
        let mut table = LogTable::from_records(&records);
        table.sort_canonical();
        // Stream-backed run over the same sorted table.
        let bytes = {
            let mut b = Vec::new();
            crate::colfmt::write_table(&mut b, &table).unwrap();
            b
        };
        let reader = crate::colfmt::BinReader::new(std::io::Cursor::new(bytes)).unwrap();
        let stream_run =
            MergeRun::from_sorted_stream(Arc::new(table.interner().clone()), Box::new(reader));
        let table_run = MergeRun::from_table(table.clone());
        let mut a = TableSink::new();
        let mut b = TableSink::new();
        {
            let mut sinks: Vec<&mut dyn RowSink> = vec![&mut a];
            merge_runs(vec![stream_run], &mut sinks).unwrap();
        }
        {
            let mut sinks: Vec<&mut dyn RowSink> = vec![&mut b];
            merge_runs(vec![table_run], &mut sinks).unwrap();
        }
        assert_eq!(a.table.to_records(), b.table.to_records());
    }
}

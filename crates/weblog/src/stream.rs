//! Row streams: pull-based readers over interned rows.
//!
//! [`RowStream`] is the input-side dual of [`crate::sink::RowSink`]: a
//! source of [`RecordRow`]s whose symbols live in an interner the stream
//! exposes. Consumers that only need one pass (the streaming analysis
//! engine, the k-way merge) can run off any implementation — an
//! in-memory table ([`TableRowStream`]), a CSV file ([`CsvRowStream`]),
//! or the binary format ([`crate::colfmt::BinReader`]) — with memory
//! bounded by the dictionary plus one row.

use std::io::BufRead;

use crate::codec::{self, DecodeError};
use crate::colfmt::BinReader;
use crate::intern::StringInterner;
use crate::table::{LogTable, RecordRow};

/// A pull-based source of interned rows.
///
/// The symbols in every yielded row belong to [`RowStream::interner`],
/// which may **grow** between rows (streaming decoders intern strings
/// as they first appear) but never invalidates earlier symbols.
/// Streams fuse: after the first `Err` or the first `None`, every
/// subsequent call returns `None`.
pub trait RowStream {
    /// The next row, `None` at end of stream.
    fn next_row(&mut self) -> Option<Result<RecordRow, DecodeError>>;

    /// The interner the yielded rows' symbols belong to.
    fn interner(&self) -> &StringInterner;
}

/// Streams a CSV document (workspace schema, header required) as
/// interned rows, one line at a time.
#[derive(Debug)]
pub struct CsvRowStream<R: BufRead> {
    reader: R,
    interner: StringInterner,
    buf: String,
    /// 1-based number of the last line read (the header is line 1).
    line_no: usize,
    done: bool,
}

impl<R: BufRead> CsvRowStream<R> {
    /// Wrap `reader` and validate the header line.
    pub fn new(mut reader: R) -> Result<CsvRowStream<R>, DecodeError> {
        let mut buf = String::new();
        let n = reader
            .read_line(&mut buf)
            .map_err(|e| DecodeError { line: 1, message: format!("read failed: {e}") })?;
        let done = if n == 0 {
            true // empty input is an empty dataset, like codec::decode
        } else {
            let line = strip_terminator(&buf);
            if line != codec::HEADER {
                return Err(DecodeError {
                    line: 1,
                    message: format!("unexpected header {line:?}"),
                });
            }
            false
        };
        Ok(CsvRowStream { reader, interner: StringInterner::new(), buf, line_no: 1, done })
    }
}

/// Strip exactly one line terminator (`\n` or `\r\n`), matching
/// `str::lines`: a bare `\r` is field content.
fn strip_terminator(buf: &str) -> &str {
    match buf.strip_suffix('\n') {
        Some(rest) => rest.strip_suffix('\r').unwrap_or(rest),
        None => buf,
    }
}

impl<R: BufRead> RowStream for CsvRowStream<R> {
    fn next_row(&mut self) -> Option<Result<RecordRow, DecodeError>> {
        if self.done {
            return None;
        }
        loop {
            self.buf.clear();
            self.line_no += 1;
            let n = match self.reader.read_line(&mut self.buf) {
                Ok(n) => n,
                Err(e) => {
                    self.done = true;
                    return Some(Err(DecodeError {
                        line: self.line_no,
                        message: format!("read failed: {e}"),
                    }));
                }
            };
            if n == 0 {
                self.done = true;
                return None;
            }
            let line = strip_terminator(&self.buf);
            if line.is_empty() {
                continue;
            }
            match codec::decode_record(line, self.line_no) {
                Ok(record) => {
                    let row = RecordRow {
                        useragent: self.interner.intern(&record.useragent),
                        asn: self.interner.intern(&record.asn),
                        sitename: self.interner.intern(&record.sitename),
                        uri_path: self.interner.intern(&record.uri_path),
                        referer: record.referer.as_deref().map(|s| self.interner.intern(s)),
                        timestamp: record.timestamp,
                        ip_hash: record.ip_hash,
                        bytes: record.bytes,
                        status: record.status,
                    };
                    return Some(Ok(row));
                }
                Err(e) => {
                    self.done = true;
                    return Some(Err(e));
                }
            }
        }
    }

    fn interner(&self) -> &StringInterner {
        &self.interner
    }
}

impl<R: BufRead> RowStream for BinReader<R> {
    fn next_row(&mut self) -> Option<Result<RecordRow, DecodeError>> {
        BinReader::next_row(self)
    }

    fn interner(&self) -> &StringInterner {
        BinReader::interner(self)
    }
}

/// Streams an in-memory [`LogTable`]'s rows — the equivalence anchor
/// for stream-vs-table tests, and the adapter that lets streaming
/// consumers run over materialized data.
#[derive(Debug)]
pub struct TableRowStream<'t> {
    table: &'t LogTable,
    next: usize,
}

impl<'t> TableRowStream<'t> {
    /// Stream `table`'s rows in table order.
    pub fn new(table: &'t LogTable) -> TableRowStream<'t> {
        TableRowStream { table, next: 0 }
    }
}

impl RowStream for TableRowStream<'_> {
    fn next_row(&mut self) -> Option<Result<RecordRow, DecodeError>> {
        let row = self.table.rows().get(self.next)?;
        self.next += 1;
        Some(Ok(*row))
    }

    fn interner(&self) -> &StringInterner {
        self.table.interner()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::AccessRecord;
    use crate::time::Timestamp;

    fn sample(i: u64) -> AccessRecord {
        AccessRecord {
            useragent: format!("bot/{}", i % 2),
            timestamp: Timestamp::from_unix(5_000 + i),
            ip_hash: i,
            asn: "GOOGLE".into(),
            sitename: "site-00.example.edu".into(),
            uri_path: format!("/p/{i}"),
            status: 200,
            bytes: 64,
            referer: None,
        }
    }

    fn drain(stream: &mut dyn RowStream) -> Vec<AccessRecord> {
        let mut out = Vec::new();
        while let Some(row) = stream.next_row() {
            let row = row.expect("valid row");
            let i = stream.interner();
            out.push(AccessRecord {
                useragent: i.resolve(row.useragent).to_string(),
                timestamp: row.timestamp,
                ip_hash: row.ip_hash,
                asn: i.resolve(row.asn).to_string(),
                sitename: i.resolve(row.sitename).to_string(),
                uri_path: i.resolve(row.uri_path).to_string(),
                status: row.status,
                bytes: row.bytes,
                referer: row.referer.map(|s| i.resolve(s).to_string()),
            });
        }
        out
    }

    #[test]
    fn csv_stream_matches_decode() {
        let records: Vec<AccessRecord> = (0..7).map(sample).collect();
        let text = codec::encode(&records);
        let mut s = CsvRowStream::new(text.as_bytes()).unwrap();
        assert_eq!(drain(&mut s), records);
        assert!(s.next_row().is_none());
    }

    #[test]
    fn csv_stream_empty_input() {
        let mut s = CsvRowStream::new(&b""[..]).unwrap();
        assert!(s.next_row().is_none());
    }

    #[test]
    fn csv_stream_rejects_bad_header() {
        let e = CsvRowStream::new(&b"nope\n"[..]).unwrap_err();
        assert_eq!(e.line, 1);
    }

    #[test]
    fn csv_stream_error_line_numbers_and_fusing() {
        let text = format!("{}\nonly,three,fields\n", codec::HEADER);
        let mut s = CsvRowStream::new(text.as_bytes()).unwrap();
        let e = s.next_row().unwrap().unwrap_err();
        assert_eq!(e.line, 2);
        assert!(s.next_row().is_none());
    }

    #[test]
    fn table_stream_yields_raw_rows() {
        let records: Vec<AccessRecord> = (0..4).map(sample).collect();
        let table = LogTable::from_records(&records);
        let mut s = TableRowStream::new(&table);
        assert_eq!(drain(&mut s), records);
    }

    #[test]
    fn bin_reader_is_a_row_stream() {
        let records: Vec<AccessRecord> = (0..4).map(sample).collect();
        let table = LogTable::from_records(&records);
        let mut bytes = Vec::new();
        crate::colfmt::write_table(&mut bytes, &table).unwrap();
        let mut s = BinReader::new(&bytes[..]).unwrap();
        assert_eq!(drain(&mut s), records);
    }
}
